// E10 — Figure 17 ablation: embedded replicas vs the tuple-server (RPC)
// configuration.
//
// The paper (§6, Fig. 17) sketches an alternative deployment where
// application hosts run no TS replica: the FT-Linda library forwards each
// AGS with an RPC to a request handler on a dedicated tuple server, which
// submits it to Consul as usual. The trade: one extra network round trip of
// latency per AGS, in exchange for keeping replica work (ordering,
// matching, state) off the application hosts.
//
// We measure AGS latency from an application host in both configurations,
// plus the extra messages the RPC costs, on the LAN profile.
#include "net/network.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kRounds = 200;

Ags incrementAgs() {
  return AgsBuilder()
      .when(guardIn(kTsMain, makePattern("count", fInt())))
      .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
      .build();
}

struct RunStats {
  LatencySamples latency;
  double msgs_per_ags = 0;
};

RunStats runEmbedded(std::uint32_t replicas) {
  SystemConfig cfg;
  cfg.hosts = replicas;
  cfg.net = net::lanProfile(51);
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(replicas - 1);
  rt.out(kTsMain, makeTuple("count", 0));
  sys.network().resetStats();
  RunStats res;
  const Ags ags = incrementAgs();
  for (int i = 0; i < kRounds; ++i) {
    const auto start = Clock::now();
    requireReply(rt.tryExecute(ags));
    res.latency.add(elapsedUs(start, Clock::now()));
  }
  res.msgs_per_ags = static_cast<double>(sys.network().totalStats().messages_sent) / kRounds;
  return res;
}

/// `via_sequencer`: whether the client's assigned tuple server is also the
/// group sequencer (then the RPC hop replaces the request hop) or a plain
/// replica (then the RPC adds a full extra round trip — Fig. 17's general
/// case).
RunStats runTupleServer(std::uint32_t replicas, bool via_sequencer) {
  SystemConfig cfg;
  cfg.hosts = replicas + 2;  // two application hosts, `replicas` servers
  cfg.replica_hosts = replicas;
  cfg.net = net::lanProfile(53);
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  // Client host `replicas` is served by host 0 (the sequencer); client host
  // `replicas + 1` by host 1 (a plain replica).
  auto& rt = sys.remoteRuntime(via_sequencer ? replicas : replicas + 1);
  rt.out(kTsMain, makeTuple("count", 0));
  sys.network().resetStats();
  RunStats res;
  const Ags ags = incrementAgs();
  for (int i = 0; i < kRounds; ++i) {
    const auto start = Clock::now();
    requireReply(rt.tryExecute(ags));
    res.latency.add(elapsedUs(start, Clock::now()));
  }
  res.msgs_per_ags = static_cast<double>(sys.network().totalStats().messages_sent) / kRounds;
  return res;
}

}  // namespace

int main() {
  bench::header("E10", "embedded replicas vs tuple-server (RPC) configuration",
                "§6 / Figure 17: RPC to a request handler on a tuple server");
  std::printf("\n%-9s %-25s %-25s %-25s\n", "", "embedded (app host", "RPC, server=sequencer",
              "RPC, server=replica");
  std::printf("%-9s %-25s %-25s %-25s\n", "", " runs a replica)", "(best placement)",
              "(general case)");
  std::printf("%-9s %-12s %-12s %-12s %-12s %-12s %-12s\n", "replicas", "p50 us", "msgs/AGS",
              "p50 us", "msgs/AGS", "p50 us", "msgs/AGS");
  for (std::uint32_t n : {2u, 3u, 5u}) {
    const RunStats emb = runEmbedded(n);
    const RunStats seq = runTupleServer(n, /*via_sequencer=*/true);
    const RunStats rep = runTupleServer(n, /*via_sequencer=*/false);
    std::printf("%-9u %-12.0f %-12.1f %-12.0f %-12.1f %-12.0f %-12.1f\n", n,
                emb.latency.percentileOr0(50), emb.msgs_per_ags, seq.latency.percentileOr0(50),
                seq.msgs_per_ags, rep.latency.percentileOr0(50), rep.msgs_per_ags);
  }
  std::printf("\nshape check: with the server co-located with the sequencer the RPC hop\n");
  std::printf("replaces the request hop (same latency, +1 message). In the general case\n");
  std::printf("the RPC adds a full extra round trip (~2 LAN hops) and +2 messages per\n");
  std::printf("AGS, independent of replica count — Figure 17's latency/offload trade.\n");
  return 0;
}

// E11 — aggregate AGS throughput versus processors, offered load, and the
// replica apply-batching knobs.
//
// Complements the paper's latency table: the fixed-sequencer design
// serializes ordering at one node, so aggregate throughput is bounded by
// sequencer processing, not by the client count. We measure statements/sec
// with 1..8 concurrently issuing hosts on a zero-latency network (so the
// protocol-processing ceiling — not the simulated wire — is the limit),
// and compare batched apply (ConsulConfig::max_apply_batch > 1: one lock
// acquisition and decode outside the protocol path per RUN of contiguous
// commands) against per-command delivery (max_apply_batch = 1).
//
// Flags: --short (CI smoke: fewer configs, fewer statements)
//        --json <path> (machine-readable results for CI artifacts)
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

struct RunResult {
  double ags_per_sec = 0;
  double mean_batch = 0;  // commands per applyBatch at host 0 (local stat)
};

RunResult measureOpsPerSec(std::uint32_t hosts, int issuers, int per_issuer,
                           std::uint32_t max_apply_batch, Micros apply_batch_window) {
  SystemConfig cfg;
  cfg.hosts = hosts;
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  cfg.consul.max_apply_batch = max_apply_batch;
  cfg.consul.apply_batch_window = apply_batch_window;
  FtLindaSystem sys(cfg);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < issuers; ++i) {
    Runtime* rt = &sys.runtime(static_cast<net::HostId>(i % hosts));
    threads.emplace_back([rt, per_issuer, &go, i] {
      while (!go.load()) std::this_thread::yield();
      for (int k = 0; k < per_issuer; ++k) {
        requireReply(rt->tryExecute(AgsBuilder()
                        .when(guardTrue())
                        .then(opOut(kTsMain, makeTemplate("t", i, k)))
                        .then(opInp(kTsMain, makePatternTemplate("t", i, k)))
                        .build()));
      }
    });
  }
  const auto start = Clock::now();
  go.store(true);
  for (auto& t : threads) t.join();
  const double secs = elapsedUs(start, Clock::now()) / 1e6;
  RunResult res;
  res.ags_per_sec = static_cast<double>(issuers) * per_issuer / secs;
  const auto stats = sys.stateMachine(0).batchStats();
  res.mean_batch =
      stats.batches ? static_cast<double>(stats.commands) / static_cast<double>(stats.batches) : 0;
  return res;
}

std::string jsonRow(const std::string& name, const RunResult& r) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"name\": \"%s\", \"ags_per_sec\": %.1f, \"mean_apply_batch\": %.2f}",
                name.c_str(), r.ags_per_sec, r.mean_batch);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  bench::header("E11", "aggregate AGS throughput (sequencer-bound scaling)",
                "complements §5.3: the single-multicast design's throughput ceiling");
  std::printf("zero-latency network: the protocol/state-machine path is the limit\n");
  std::printf("batch=1 disables apply coalescing; batch=64 is the default pipeline\n\n");
  std::printf("%-34s %12s %12s\n", "configuration", "AGS/sec", "mean batch");

  std::vector<std::string> rows;
  auto run = [&](std::uint32_t hosts, int issuers, int per_issuer, std::uint32_t batch,
                 Micros window, const char* tag) {
    const RunResult r = measureOpsPerSec(hosts, issuers, per_issuer, batch, window);
    char name[96];
    std::snprintf(name, sizeof name, "hosts=%u issuers=%d %s", hosts, issuers, tag);
    std::printf("%-34s %12.0f %12.2f\n", name, r.ags_per_sec, r.mean_batch);
    rows.push_back(jsonRow(name, r));
  };

  const int base = short_mode ? 400 : 2000;
  for (std::uint32_t hosts : (short_mode ? std::vector<std::uint32_t>{2u}
                                         : std::vector<std::uint32_t>{1u, 2u, 4u})) {
    run(hosts, static_cast<int>(hosts), base, 1, Micros{0}, "batch=1");
    run(hosts, static_cast<int>(hosts), base, 64, Micros{0}, "batch=64");
  }
  // More issuer threads than hosts: offered-load scaling at fixed fan-out —
  // where contiguous runs actually form, so where batching should pay.
  for (int issuers : (short_mode ? std::vector<int>{8} : std::vector<int>{8, 12})) {
    const int per = short_mode ? 300 : 1500;
    run(4, issuers, per, 1, Micros{0}, "batch=1");
    run(4, issuers, per, 64, Micros{0}, "batch=64");
    run(4, issuers, per, 64, Micros{200}, "batch=64 window=200us");
  }

  if (json_path) bench::writeBenchJson(json_path, "e11_throughput", rows);

  std::printf("\nshape check: aggregate throughput FALLS as replicas are added (every\n");
  std::printf("statement is applied at all n replicas and multicast to n-1 of them —\n");
  std::printf("replication buys availability, not write throughput), and rises only\n");
  std::printf("modestly with extra issuers at fixed n (request/apply overlap), because\n");
  std::printf("the sequencer serializes ordering. Batched apply shortens the ordering\n");
  std::printf("critical path (decode outside the lock, one acquisition per run), which\n");
  std::printf("shows up once several issuers keep contiguous runs forming.\n");
  return 0;
}

// E11 — aggregate AGS throughput versus processors and offered load.
//
// Complements the paper's latency table: the fixed-sequencer design
// serializes ordering at one node, so aggregate throughput is bounded by
// sequencer processing, not by the client count. We measure statements/sec
// with 1..8 concurrently issuing hosts on a zero-latency network (so the
// protocol-processing ceiling — not the simulated wire — is the limit),
// plus pipelined (asynchronous-client) throughput from one host.
#include <atomic>
#include <thread>

#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

double measureOpsPerSec(std::uint32_t hosts, int issuers, int per_issuer) {
  SystemConfig cfg;
  cfg.hosts = hosts;
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < issuers; ++i) {
    Runtime* rt = &sys.runtime(static_cast<net::HostId>(i % hosts));
    threads.emplace_back([rt, per_issuer, &go, i] {
      while (!go.load()) std::this_thread::yield();
      for (int k = 0; k < per_issuer; ++k) {
        rt->execute(AgsBuilder()
                        .when(guardTrue())
                        .then(opOut(kTsMain, makeTemplate("t", i, k)))
                        .then(opInp(kTsMain, makePatternTemplate("t", i, k)))
                        .build());
      }
    });
  }
  const auto start = Clock::now();
  go.store(true);
  for (auto& t : threads) t.join();
  const double secs = elapsedUs(start, Clock::now()) / 1e6;
  return static_cast<double>(issuers) * per_issuer / secs;
}

}  // namespace

int main() {
  bench::header("E11", "aggregate AGS throughput (sequencer-bound scaling)",
                "complements §5.3: the single-multicast design's throughput ceiling");
  std::printf("zero-latency network: the protocol/state-machine path is the limit\n\n");
  std::printf("%-28s %-16s\n", "configuration", "AGS/sec");
  for (std::uint32_t hosts : {1u, 2u, 4u}) {
    const double ops = measureOpsPerSec(hosts, static_cast<int>(hosts), 2000);
    std::printf("hosts=%u issuers=%-2u          %10.0f\n", hosts, hosts, ops);
  }
  // More issuer threads than hosts: offered-load scaling at fixed fan-out.
  for (int issuers : {8, 12}) {
    const double ops = measureOpsPerSec(4, issuers, 1500);
    std::printf("hosts=4 issuers=%-2d          %10.0f\n", issuers, ops);
  }
  std::printf("\nshape check: aggregate throughput FALLS as replicas are added (every\n");
  std::printf("statement is applied at all n replicas and multicast to n-1 of them —\n");
  std::printf("replication buys availability, not write throughput), and rises only\n");
  std::printf("modestly with extra issuers at fixed n (request/apply overlap), because\n");
  std::printf("the sequencer serializes ordering. Both are inherent to the SMA design.\n");
  return 0;
}

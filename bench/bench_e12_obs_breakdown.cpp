// E12 — AGS cost decomposition from the observability layer itself.
//
// The paper's headline efficiency claim (abstract, §5): one multicast per
// atomic collection of tuple-space operations. E4 established that by
// reading the simulated network's traffic counters directly; HERE the same
// numbers come out of the ftl::obs export path (the network source's
// ftl_net_messages_sent sample), plus the per-stage latency histograms the
// runtime records (verify -> ordering wait -> replica apply -> end-to-end).
// If the obs-derived messages-per-AGS diverges from E4's measurement the
// instrumentation is lying — that cross-check is the point of this bench.
//
// Expected shape (matches EXPERIMENTS.md e4): msgs/AGS ~= n at n replicas
// (1 request hop + n-1 sequencer datagrams, amortized acks on top), and
// e2e ~= ordering wait >> apply >> verify.
//
// Flags: --short (CI smoke)
//        --json <path> (shared BENCH_*.json schema, obs snapshot embedded)
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

struct Breakdown {
  double msgs_per_ags = 0;    // from the obs network source
  double verify_ns_mean = 0;  // ftl_ags_verify_ns
  double apply_ns_mean = 0;   // ftl_sm_apply_ns (every replica's applies)
  double wait_us_mean = 0;    // ftl_ags_wait_ns: submit -> ordered reply
  double e2e_us_mean = 0;     // ftl_ags_e2e_ns: whole replicated execute()
  std::uint64_t ags = 0;      // ftl_ags_replicated delta
};

/// The one live network's ftl_net_messages_sent{net="..."} delta since the
/// baseline. Source-backed, so resetAll() cannot zero it — the snapshot/
/// delta pair is how a bench isolates its own run (docs/OBSERVABILITY.md).
double obsNetMessagesSent(const std::vector<obs::Sample>& baseline) {
  double total = 0;
  for (const auto& s : obs::deltaSince(baseline)) {
    if (s.name.rfind("ftl_net_messages_sent{net=", 0) == 0) total += s.value;
  }
  return total;
}

Breakdown measure(std::uint32_t replicas, int rounds) {
  SystemConfig cfg;
  cfg.hosts = replicas;
  cfg.net = net::lanProfile(11 + replicas);  // e4's profile: comparable numbers
  // Stretch the control-plane timers so message counts isolate the data path
  // (same isolation as E4).
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(replicas > 1 ? 1 : 0);
  rt.out(kTsMain, makeTuple("count", 0));
  const Ags increment =
      AgsBuilder()
          .when(guardIn(kTsMain, makePattern("count", fInt())))
          .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
          .build();
  // Zero the registry metrics, then snapshot: source-backed samples (the
  // network's counters) are isolated by the baseline delta, not by reset.
  obs::resetAll();
  const std::vector<obs::Sample> baseline = obs::snapshotAll();
  for (int i = 0; i < rounds; ++i) requireReply(rt.tryExecute(increment));

  Breakdown b;
  b.ags = obs::counter("ftl_ags_replicated").value();
  b.msgs_per_ags = b.ags ? obsNetMessagesSent(baseline) / static_cast<double>(b.ags) : 0;
  b.verify_ns_mean = obs::histogram("ftl_ags_verify_ns").snapshot().mean();
  b.apply_ns_mean = obs::histogram("ftl_sm_apply_ns").snapshot().mean();
  b.wait_us_mean = obs::histogram("ftl_ags_wait_ns").snapshot().mean() / 1e3;
  b.e2e_us_mean = obs::histogram("ftl_ags_e2e_ns").snapshot().mean() / 1e3;
  return b;
}

/// Ordering-path stage profile at hosts=1, pipelined issue (the ROADMAP
/// latency budget's configuration): per-stage mean latencies from the
/// sampled ftl_stage_* histograms, against the always-on e2e mean.
struct StageProfile {
  std::map<std::string, double> mean_ns;  // stage name -> mean (0 = no samples)
  double e2e_ns_mean = 0;
  double stage_sum_ns = 0;  // critical-path stages (issue+order+apply+reply)
  double coverage = 0;      // stage_sum / e2e
  std::uint64_t ags = 0;
};

StageProfile stageProfile(int rounds) {
  SystemConfig cfg;
  cfg.hosts = 1;
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(0);
  obs::resetAll();
  // Pipelined window of independent deposits, then one drain: the issuer
  // never blocks per-AGS, so e2e is the pipeline's per-AGS time.
  constexpr int kWindow = 64;
  std::vector<AgsFuture> window;
  window.reserve(kWindow);
  for (int i = 0; i < rounds; ++i) {
    window.push_back(rt.executeAsync(
        AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("st", i))).build()));
    if (static_cast<int>(window.size()) == kWindow) {
      for (auto& f : window) (void)f.get();
      window.clear();
    }
  }
  for (auto& f : window) (void)f.get();

  StageProfile p;
  p.ags = obs::counter("ftl_ags_replicated").value();
  p.e2e_ns_mean = obs::histogram("ftl_ags_e2e_ns").snapshot().mean();
  const char* stages[] = {"ftl_ags_verify_ns",      "ftl_stage_issue_ns",
                          "ftl_stage_coalesce_ns",  "ftl_stage_order_ns",
                          "ftl_sm_apply_ns",        "ftl_stage_reply_ns",
                          "ftl_stage_future_wake_ns", "ftl_stage_frame_encode_ns"};
  for (const char* s : stages) p.mean_ns[s] = obs::histogram(s).snapshot().mean();
  // The critical path: issue -> order -> apply -> reply. verify nests
  // inside issue (issuer-side view verify) and coalesce is a sub-interval
  // of order, frame-encode of coalesce; future_wake lands after the e2e
  // span closes — all reported, not summed. At hosts=1 the self-delivery
  // shortcut runs order/apply/reply INLINE inside the issue span
  // (docs/PROTOCOL.md "Self-delivery"), so the sum legitimately exceeds
  // e2e there: the gate reads "every stage is instrumented and accounts
  // for the path", not "the stages tile e2e".
  p.stage_sum_ns = p.mean_ns["ftl_stage_issue_ns"] + p.mean_ns["ftl_stage_order_ns"] +
                   p.mean_ns["ftl_sm_apply_ns"] + p.mean_ns["ftl_stage_reply_ns"];
  p.coverage = p.e2e_ns_mean > 0 ? p.stage_sum_ns / p.e2e_ns_mean : 0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  bench::header("E12", "messages-per-AGS and stage latencies from obs counters",
                "abstract/§5: one multicast per AGS — measured through the metrics layer");
  std::printf("same workload and isolation as E4; numbers read from ftl::obs exports\n\n");
  std::printf("%-10s %10s %12s %12s %12s %12s\n", "hosts", "msgs/AGS", "verify ns", "apply ns",
              "wait us", "e2e us");

  const int rounds = short_mode ? 60 : 300;
  // Whole-bench baseline: the artifact's "obs_delta" member isolates this
  // process's source-backed counts (resetAll can't zero those).
  obs::resetAll();
  const std::vector<obs::Sample> run_baseline = obs::snapshotAll();
  std::vector<std::string> rows;
  bool shape_ok = true;
  for (std::uint32_t n :
       (short_mode ? std::vector<std::uint32_t>{2u, 3u} : std::vector<std::uint32_t>{2u, 3u, 4u, 6u})) {
    const Breakdown b = measure(n, rounds);
    std::printf("%-10u %10.1f %12.0f %12.0f %12.1f %12.1f\n", n, b.msgs_per_ags, b.verify_ns_mean,
                b.apply_ns_mean, b.wait_us_mean, b.e2e_us_mean);
    char row[256];
    std::snprintf(row, sizeof row,
                  "{\"name\": \"hosts=%u\", \"msgs_per_ags\": %.2f, \"verify_ns_mean\": %.0f, "
                  "\"apply_ns_mean\": %.0f, \"wait_us_mean\": %.1f, \"e2e_us_mean\": %.1f, "
                  "\"ags\": %llu}",
                  n, b.msgs_per_ags, b.verify_ns_mean, b.apply_ns_mean, b.wait_us_mean,
                  b.e2e_us_mean, static_cast<unsigned long long>(b.ags));
    rows.push_back(row);
    // Cross-check against E4: msgs/AGS ~= n (within amortized ack slack).
    if (b.msgs_per_ags < 0.8 * n || b.msgs_per_ags > 1.6 * n) shape_ok = false;
  }

  // Stage profile at hosts=1, pipelined — the ROADMAP latency budget's
  // configuration. Stage means are 1-in-16 sampled; e2e is always-on.
  const StageProfile sp = stageProfile(short_mode ? 2'000 : 20'000);
  std::printf("\nhosts=1 pipelined stage profile (n=%llu AGS, sampled 1-in-16):\n",
              static_cast<unsigned long long>(sp.ags));
  for (const auto& [name, mean] : sp.mean_ns) {
    std::printf("  %-28s mean=%9.0f ns\n", name.c_str(), mean);
  }
  std::printf("  %-28s mean=%9.0f ns\n", "ftl_ags_e2e_ns", sp.e2e_ns_mean);
  std::printf("  critical-path stage sum %.0f ns = %.0f%% of e2e (gate: >=80%%; may\n"
              "  exceed 100%% at hosts=1 — self-delivery runs order/apply/reply\n"
              "  inline inside the issue span)\n",
              sp.stage_sum_ns, 100.0 * sp.coverage);
  const bool coverage_ok = sp.coverage >= 0.8;
  if (!coverage_ok) shape_ok = false;
  {
    char row[512];
    std::snprintf(row, sizeof row,
                  "{\"name\": \"stage_profile_hosts1_pipelined\", \"ags\": %llu, "
                  "\"e2e_ns_mean\": %.0f, \"stage_sum_ns\": %.0f, \"coverage\": %.3f, "
                  "\"issue_ns\": %.0f, \"coalesce_ns\": %.0f, \"order_ns\": %.0f, "
                  "\"apply_ns\": %.0f, \"reply_ns\": %.0f, \"future_wake_ns\": %.0f, "
                  "\"frame_encode_ns\": %.0f}",
                  static_cast<unsigned long long>(sp.ags), sp.e2e_ns_mean, sp.stage_sum_ns,
                  sp.coverage, sp.mean_ns.at("ftl_stage_issue_ns"),
                  sp.mean_ns.at("ftl_stage_coalesce_ns"), sp.mean_ns.at("ftl_stage_order_ns"),
                  sp.mean_ns.at("ftl_sm_apply_ns"), sp.mean_ns.at("ftl_stage_reply_ns"),
                  sp.mean_ns.at("ftl_stage_future_wake_ns"),
                  sp.mean_ns.at("ftl_stage_frame_encode_ns"));
    rows.push_back(row);
  }

  if (json_path) bench::writeBenchJson(json_path, "e12_obs_breakdown", rows, run_baseline);

  std::printf("\ncross-check vs E4: msgs/AGS ~= n (e4 measured 2.0/3.0/4.0/6.1 at n=2/3/4/6): %s\n",
              shape_ok ? "OK" : "DIVERGED — obs counters disagree with the network's own books");
  std::printf("shape check: e2e is dominated by the ordering wait; replica apply is tens of\n");
  std::printf("microseconds of it and the verifier pass is noise — the paper's 'single\n");
  std::printf("multicast dominates, TS processing is marginal' decomposition, now visible\n");
  std::printf("from the production metrics rather than bench-side clocks.\n");
  return shape_ok ? 0 : 1;
}

// E12 — AGS cost decomposition from the observability layer itself.
//
// The paper's headline efficiency claim (abstract, §5): one multicast per
// atomic collection of tuple-space operations. E4 established that by
// reading the simulated network's traffic counters directly; HERE the same
// numbers come out of the ftl::obs export path (the network source's
// ftl_net_messages_sent sample), plus the per-stage latency histograms the
// runtime records (verify -> ordering wait -> replica apply -> end-to-end).
// If the obs-derived messages-per-AGS diverges from E4's measurement the
// instrumentation is lying — that cross-check is the point of this bench.
//
// Expected shape (matches EXPERIMENTS.md e4): msgs/AGS ~= n at n replicas
// (1 request hop + n-1 sequencer datagrams, amortized acks on top), and
// e2e ~= ordering wait >> apply >> verify.
//
// Flags: --short (CI smoke)
//        --json <path> (shared BENCH_*.json schema, obs snapshot embedded)
#include <cstring>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

struct Breakdown {
  double msgs_per_ags = 0;    // from the obs network source
  double verify_ns_mean = 0;  // ftl_ags_verify_ns
  double apply_ns_mean = 0;   // ftl_sm_apply_ns (every replica's applies)
  double wait_us_mean = 0;    // ftl_ags_wait_ns: submit -> ordered reply
  double e2e_us_mean = 0;     // ftl_ags_e2e_ns: whole replicated execute()
  std::uint64_t ags = 0;      // ftl_ags_replicated delta
};

/// The one live network's ftl_net_messages_sent{net="..."} sample.
double obsNetMessagesSent() {
  for (const auto& s : obs::collect()) {
    if (s.name.rfind("ftl_net_messages_sent{net=", 0) == 0) return s.value;
  }
  return 0;
}

Breakdown measure(std::uint32_t replicas, int rounds) {
  SystemConfig cfg;
  cfg.hosts = replicas;
  cfg.net = net::lanProfile(11 + replicas);  // e4's profile: comparable numbers
  // Stretch the control-plane timers so message counts isolate the data path
  // (same isolation as E4).
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(replicas > 1 ? 1 : 0);
  rt.out(kTsMain, makeTuple("count", 0));
  const Ags increment =
      AgsBuilder()
          .when(guardIn(kTsMain, makePattern("count", fInt())))
          .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
          .build();
  // Zero both sides of the cross-check: registry metrics AND the network's
  // own counters (the obs source reads the latter live).
  obs::resetAll();
  sys.network().resetStats();
  for (int i = 0; i < rounds; ++i) requireReply(rt.tryExecute(increment));

  Breakdown b;
  b.ags = obs::counter("ftl_ags_replicated").value();
  b.msgs_per_ags = b.ags ? obsNetMessagesSent() / static_cast<double>(b.ags) : 0;
  b.verify_ns_mean = obs::histogram("ftl_ags_verify_ns").snapshot().mean();
  b.apply_ns_mean = obs::histogram("ftl_sm_apply_ns").snapshot().mean();
  b.wait_us_mean = obs::histogram("ftl_ags_wait_ns").snapshot().mean() / 1e3;
  b.e2e_us_mean = obs::histogram("ftl_ags_e2e_ns").snapshot().mean() / 1e3;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  bench::header("E12", "messages-per-AGS and stage latencies from obs counters",
                "abstract/§5: one multicast per AGS — measured through the metrics layer");
  std::printf("same workload and isolation as E4; numbers read from ftl::obs exports\n\n");
  std::printf("%-10s %10s %12s %12s %12s %12s\n", "hosts", "msgs/AGS", "verify ns", "apply ns",
              "wait us", "e2e us");

  const int rounds = short_mode ? 60 : 300;
  std::vector<std::string> rows;
  bool shape_ok = true;
  for (std::uint32_t n :
       (short_mode ? std::vector<std::uint32_t>{2u, 3u} : std::vector<std::uint32_t>{2u, 3u, 4u, 6u})) {
    const Breakdown b = measure(n, rounds);
    std::printf("%-10u %10.1f %12.0f %12.0f %12.1f %12.1f\n", n, b.msgs_per_ags, b.verify_ns_mean,
                b.apply_ns_mean, b.wait_us_mean, b.e2e_us_mean);
    char row[256];
    std::snprintf(row, sizeof row,
                  "{\"name\": \"hosts=%u\", \"msgs_per_ags\": %.2f, \"verify_ns_mean\": %.0f, "
                  "\"apply_ns_mean\": %.0f, \"wait_us_mean\": %.1f, \"e2e_us_mean\": %.1f, "
                  "\"ags\": %llu}",
                  n, b.msgs_per_ags, b.verify_ns_mean, b.apply_ns_mean, b.wait_us_mean,
                  b.e2e_us_mean, static_cast<unsigned long long>(b.ags));
    rows.push_back(row);
    // Cross-check against E4: msgs/AGS ~= n (within amortized ack slack).
    if (b.msgs_per_ags < 0.8 * n || b.msgs_per_ags > 1.6 * n) shape_ok = false;
  }

  if (json_path) bench::writeBenchJson(json_path, "e12_obs_breakdown", rows);

  std::printf("\ncross-check vs E4: msgs/AGS ~= n (e4 measured 2.0/3.0/4.0/6.1 at n=2/3/4/6): %s\n",
              shape_ok ? "OK" : "DIVERGED — obs counters disagree with the network's own books");
  std::printf("shape check: e2e is dominated by the ordering wait; replica apply is tens of\n");
  std::printf("microseconds of it and the verifier pass is noise — the paper's 'single\n");
  std::printf("multicast dominates, TS processing is marginal' decomposition, now visible\n");
  std::printf("from the production metrics rather than bench-side clocks.\n");
  return shape_ok ? 0 : 1;
}

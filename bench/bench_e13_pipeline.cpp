// E13 — pipelined AGS issue: executeAsync() with a sliding window versus the
// synchronous one-at-a-time loop, across hosts × issuers × window depth.
//
// A synchronous issuer spends nearly its whole round trip blocked in get():
// ordering latency and execution latency serialize per statement. With a
// window of outstanding futures the multicast/apply path stays busy while
// the issuer runs ahead, and sender-side request coalescing
// (ConsulConfig::max_send_batch) packs the staged commands into fewer
// sequencer frames. The wait/e2e ratio column shows where the time went:
// ~1.0 means issuers block for the full round trip (synchronous), < 0.5
// means the pipeline hides most of the ordering latency.
//
// Flags: --short (CI smoke: fewer configs, fewer statements)
//        --json <path> (machine-readable results for CI artifacts)
//        --floor <ags_per_sec> (exit 1 if the hosts=1 pipelined run is
//                               slower — the CI regression gate)
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;

namespace {

struct RunResult {
  double ags_per_sec = 0;
  double wait_e2e_ratio = 0;  // issuer blocked-time over end-to-end time
  double mean_send_batch = 0; // commands per request frame (coalescing)
};

RunResult measureRun(std::uint32_t hosts, int issuers, int per_issuer, std::size_t window) {
  SystemConfig cfg;
  cfg.hosts = hosts;
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  obs::resetAll();  // per-run wait/e2e sums
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < issuers; ++i) {
    Runtime* rt = &sys.runtime(static_cast<net::HostId>(i % hosts));
    threads.emplace_back([rt, per_issuer, window, &go, i] {
      while (!go.load()) std::this_thread::yield();
      std::deque<AgsFuture> inflight;
      for (int k = 0; k < per_issuer; ++k) {
        inflight.push_back(rt->executeAsync(AgsBuilder()
                                                .when(guardTrue())
                                                .then(opOut(kTsMain, makeTemplate("t", i, k)))
                                                .then(opInp(kTsMain, makePatternTemplate("t", i, k)))
                                                .build()));
        if (inflight.size() >= window) {
          (void)inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        (void)inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  const auto start = Clock::now();
  go.store(true);
  for (auto& t : threads) t.join();
  const double secs = elapsedUs(start, Clock::now()) / 1e6;
  RunResult res;
  res.ags_per_sec = static_cast<double>(issuers) * per_issuer / secs;
  const auto wait = obs::histogram("ftl_ags_wait_ns").snapshot();
  const auto e2e = obs::histogram("ftl_ags_e2e_ns").snapshot();
  res.wait_e2e_ratio =
      e2e.sum ? static_cast<double>(wait.sum) / static_cast<double>(e2e.sum) : 0;
  const auto send = obs::histogram("ftl_consul_send_batch_size").snapshot();
  res.mean_send_batch =
      send.count ? static_cast<double>(send.sum) / static_cast<double>(send.count) : 0;
  return res;
}

std::string jsonRow(const std::string& name, std::uint32_t hosts, int issuers,
                    std::size_t window, const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\": \"%s\", \"hosts\": %u, \"issuers\": %d, \"window\": %zu, "
                "\"ags_per_sec\": %.1f, \"wait_e2e_ratio\": %.3f, \"mean_send_batch\": %.2f}",
                name.c_str(), hosts, issuers, window, r.ags_per_sec, r.wait_e2e_ratio,
                r.mean_send_batch);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* json_path = nullptr;
  double floor = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    if (std::strcmp(argv[i], "--floor") == 0 && i + 1 < argc) floor = std::atof(argv[++i]);
  }

  bench::header("E13", "pipelined async AGS issue (window sweep)",
                "perf follow-up to E11: overlap ordering latency instead of blocking on it");
  std::printf("window=1 is the synchronous baseline (executeAsync().get() per statement);\n");
  std::printf("deeper windows keep the sequencer fed and let request frames coalesce\n\n");
  std::printf("%-34s %12s %12s %12s\n", "configuration", "AGS/sec", "wait/e2e", "send batch");

  // Whole-bench baseline: the artifact's "obs_delta" member carries the
  // per-stage ftl_stage_* histograms (and every other source-backed count)
  // this process accumulated — measureRun's obs::resetAll() cannot zero
  // those, so the delta is what isolates them. The stage histograms it
  // embeds come from the LAST run (resetAll zeroes the resettable ones per
  // run), which the sweep below arranges to be a pipelined configuration.
  obs::resetAll();
  const std::vector<obs::Sample> run_baseline = obs::snapshotAll();
  std::vector<std::string> rows;
  double hosts1_pipelined = 0;
  double sync_4x8 = 0, pipe_4x8 = 0;
  auto run = [&](std::uint32_t hosts, int issuers, int per_issuer, std::size_t window) {
    const RunResult r = measureRun(hosts, issuers, per_issuer, window);
    char name[96];
    std::snprintf(name, sizeof name, "hosts=%u issuers=%d window=%zu", hosts, issuers, window);
    std::printf("%-34s %12.0f %12.3f %12.2f\n", name, r.ags_per_sec, r.wait_e2e_ratio,
                r.mean_send_batch);
    rows.push_back(jsonRow(name, hosts, issuers, window, r));
    if (hosts == 1 && window > 1) hosts1_pipelined = std::max(hosts1_pipelined, r.ags_per_sec);
    if (hosts == 4 && issuers == 8 && window == 1) sync_4x8 = r.ags_per_sec;
    if (hosts == 4 && issuers == 8 && window > 1) pipe_4x8 = std::max(pipe_4x8, r.ags_per_sec);
    return r;
  };

  const int per = short_mode ? 600 : 3000;
  // Single host: no replication fan-out, so this isolates the issue-path
  // win (the CI floor gate measures this configuration).
  run(1, 4, per, 1);
  run(1, 4, per, 16);
  if (!short_mode) {
    run(2, 4, per, 1);
    run(2, 4, per, 16);
  }
  // The acceptance configuration: 4 hosts, 8 pipelined issuers.
  run(4, 8, short_mode ? 400 : 2000, 1);
  if (!short_mode) run(4, 8, 2000, 8);
  run(4, 8, short_mode ? 400 : 2000, 32);

  if (json_path) bench::writeBenchJson(json_path, "e13_pipeline", rows, run_baseline);

  if (sync_4x8 > 0 && pipe_4x8 > 0) {
    std::printf("\nhosts=4 issuers=8 speedup (window=32 vs window=1): %.2fx\n",
                pipe_4x8 / sync_4x8);
  }
  std::printf("shape check: wait/e2e sits near 1.0 at window=1 and drops well below\n");
  std::printf("0.5 once the window opens — issuers stop paying the ordering round\n");
  std::printf("trip per statement. Mean send-batch > 1 confirms staged commands are\n");
  std::printf("riding shared request frames instead of one datagram each.\n");

  if (floor > 0) {
    if (hosts1_pipelined < floor) {
      std::fprintf(stderr,
                   "FAIL: hosts=1 pipelined throughput %.0f AGS/s below floor %.0f\n",
                   hosts1_pipelined, floor);
      return 1;
    }
    std::printf("floor check passed: hosts=1 pipelined %.0f >= %.0f AGS/s\n",
                hosts1_pipelined, floor);
  }
  return 0;
}

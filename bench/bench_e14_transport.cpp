// E14 — transport backends: the same pipelined AGS workload (E13's
// hosts=1..3 shape) over the in-process simulator versus real UDP sockets
// on loopback.
//
// The simulator hands a Message straight from the sender's critical section
// to the destination inbox; UDP adds two syscalls, a kernel socket queue,
// and a receiver thread wakeup per datagram. This bench quantifies that tax
// (throughput ratio + end-to-end latency histograms) so nobody mistakes
// "works over the simulator" for "fast over a real wire". The acceptance
// gate: UDP-loopback throughput within --max-gap× (default 5×) of sim on
// the 1-host pipelined workload.
//
// Flags: --short (CI smoke: fewer statements)
//        --json <path> (machine-readable results for CI artifacts)
//        --max-gap <x> (exit 1 if sim/udp throughput ratio exceeds x)
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;

namespace {

struct RunResult {
  double ags_per_sec = 0;
  double e2e_p50_us = 0;
  double e2e_p99_us = 0;
  double net_messages = 0;  // non-loopback datagrams for the whole run
};

RunResult measureRun(TransportKind kind, std::uint32_t hosts, int issuers, int per_issuer,
                     std::size_t window) {
  SystemConfig cfg;
  cfg.hosts = hosts;
  cfg.transport = kind;
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  obs::resetAll();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < issuers; ++i) {
    Runtime* rt = &sys.runtime(static_cast<net::HostId>(i % hosts));
    threads.emplace_back([rt, per_issuer, window, &go, i] {
      while (!go.load()) std::this_thread::yield();
      std::deque<AgsFuture> inflight;
      for (int k = 0; k < per_issuer; ++k) {
        inflight.push_back(rt->executeAsync(AgsBuilder()
                                                .when(guardTrue())
                                                .then(opOut(kTsMain, makeTemplate("t", i, k)))
                                                .then(opInp(kTsMain, makePatternTemplate("t", i, k)))
                                                .build()));
        if (inflight.size() >= window) {
          (void)inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        (void)inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  const auto start = Clock::now();
  go.store(true);
  for (auto& t : threads) t.join();
  const double secs = elapsedUs(start, Clock::now()) / 1e6;
  RunResult res;
  res.ags_per_sec = static_cast<double>(issuers) * per_issuer / secs;
  const auto e2e = obs::histogram("ftl_ags_e2e_ns").snapshot();
  res.e2e_p50_us = static_cast<double>(e2e.percentile(50)) / 1e3;
  res.e2e_p99_us = static_cast<double>(e2e.percentile(99)) / 1e3;
  res.net_messages = static_cast<double>(sys.network().totalStats().messages_sent);
  return res;
}

const char* kindName(TransportKind k) { return k == TransportKind::kUdp ? "udp" : "sim"; }

std::string jsonRow(TransportKind kind, std::uint32_t hosts, int issuers, std::size_t window,
                    const RunResult& r) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"name\": \"%s hosts=%u issuers=%d window=%zu\", \"transport\": \"%s\", "
                "\"hosts\": %u, \"issuers\": %d, \"window\": %zu, \"ags_per_sec\": %.1f, "
                "\"e2e_p50_us\": %.1f, \"e2e_p99_us\": %.1f, \"net_messages\": %.0f}",
                kindName(kind), hosts, issuers, window, kindName(kind), hosts, issuers, window,
                r.ags_per_sec, r.e2e_p50_us, r.e2e_p99_us, r.net_messages);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* json_path = nullptr;
  double max_gap = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    if (std::strcmp(argv[i], "--max-gap") == 0 && i + 1 < argc) max_gap = std::atof(argv[++i]);
  }

  bench::header("E14", "transport backends: simulator vs UDP loopback",
                "same pipelined AGS workload, pluggable wire (docs/TRANSPORT.md)");
  std::printf("sim hands messages between threads directly; udp pays two syscalls, a\n");
  std::printf("kernel queue, and a receiver-thread wakeup per datagram\n\n");
  std::printf("%-36s %12s %12s %12s %12s\n", "configuration", "AGS/sec", "p50 us", "p99 us",
              "datagrams");

  std::vector<std::string> rows;
  double sim_1host = 0, udp_1host = 0;
  auto run = [&](TransportKind kind, std::uint32_t hosts, int issuers, int per_issuer,
                 std::size_t window) {
    const RunResult r = measureRun(kind, hosts, issuers, per_issuer, window);
    char name[96];
    std::snprintf(name, sizeof name, "%s hosts=%u issuers=%d window=%zu", kindName(kind), hosts,
                  issuers, window);
    std::printf("%-36s %12.0f %12.1f %12.1f %12.0f\n", name, r.ags_per_sec, r.e2e_p50_us,
                r.e2e_p99_us, r.net_messages);
    rows.push_back(jsonRow(kind, hosts, issuers, window, r));
    if (hosts == 1 && window > 1) {
      (kind == TransportKind::kUdp ? udp_1host : sim_1host) = r.ags_per_sec;
    }
  };

  const int per = short_mode ? 500 : 2500;
  // The acceptance pair: 1 host, pipelined. A 1-host run is loopback on both
  // backends (UdpTransport short-circuits self-sends, no datagrams), so this
  // gate bounds the backend's issue-path bookkeeping overhead; the 3-host
  // rows below show the real per-datagram syscall cost.
  run(TransportKind::kSim, 1, 4, per, 16);
  run(TransportKind::kUdp, 1, 4, per, 16);
  run(TransportKind::kSim, 3, 4, short_mode ? 300 : 1500, 16);
  run(TransportKind::kUdp, 3, 4, short_mode ? 300 : 1500, 16);
  if (!short_mode) {
    run(TransportKind::kSim, 3, 4, 1500, 1);  // synchronous: latency-bound
    run(TransportKind::kUdp, 3, 4, 1500, 1);
  }

  if (json_path) bench::writeBenchJson(json_path, "e14_transport", rows);

  if (sim_1host > 0 && udp_1host > 0) {
    const double gap = sim_1host / udp_1host;
    std::printf("\n1-host pipelined gap (sim/udp): %.2fx\n", gap);
    std::printf("shape check: the gap stays small on 1 host (everything is loopback on\n");
    std::printf("both backends) and grows with hosts as real datagrams enter the path.\n");
    if (max_gap > 0) {
      if (gap > max_gap) {
        std::fprintf(stderr, "FAIL: sim/udp gap %.2fx exceeds --max-gap %.2fx\n", gap, max_gap);
        return 1;
      }
      std::printf("gap check passed: %.2fx <= %.2fx\n", gap, max_gap);
    }
  }
  return 0;
}

// E2 — atomic multicast latency versus replica count.
//
// Paper artifact (§5.3): "For three replicas executing on Sun-3
// workstations connected by a 10 Mb Ethernet, this dissemination and
// ordering time has been measured as approximately 4.0 msec."
//
// We measure the same quantity on the simulated LAN profile: the time from
// broadcast() at a member to the ordered delivery of that message back at
// the SAME member (dissemination + total ordering). Shape to compare: a few
// milliseconds at LAN latencies, growing only mildly with the replica count
// (the sequencer scheme stays one-request + one-ordered-hop deep).
#include <condition_variable>
#include <map>
#include <mutex>

#include "net/network.hpp"
#include "bench_util.hpp"
#include "consul/node.hpp"

using namespace ftl;
using namespace ftl::consul;

namespace {

struct Waiter {
  std::mutex m;
  std::condition_variable cv;
  std::uint64_t delivered_oseq = 0;

  void onDeliver(const Delivery& d, net::HostId self) {
    if (d.origin != self) return;
    {
      std::lock_guard<std::mutex> lock(m);
      delivered_oseq = std::max(delivered_oseq, d.origin_seq);
    }
    cv.notify_all();
  }

  void await(std::uint64_t oseq) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return delivered_oseq >= oseq; });
  }
};

LatencySamples measure(std::uint32_t replicas, int rounds, std::uint64_t seed) {
  net::Network net(replicas, net::lanProfile(seed));
  ConsulConfig cfg;  // default (non-test) timeouts are fine on a quiet net
  cfg.heartbeat_interval = Micros{50'000};
  std::vector<std::unique_ptr<ConsulNode>> nodes;
  std::vector<std::unique_ptr<Waiter>> waiters(replicas);
  std::vector<net::HostId> group;
  for (std::uint32_t i = 0; i < replicas; ++i) group.push_back(i);
  for (std::uint32_t i = 0; i < replicas; ++i) {
    waiters[i] = std::make_unique<Waiter>();
    ConsulNode::Callbacks cb;
    Waiter* w = waiters[i].get();
    cb.on_deliver = [w, i](const Delivery& d) { w->onDeliver(d, i); };
    cb.on_view = [](const ViewInfo&) {};
    nodes.push_back(std::make_unique<ConsulNode>(net, i, group, cfg, std::move(cb)));
  }
  for (auto& n : nodes) n->start();

  LatencySamples lat;
  // Measure from a NON-sequencer member (the paper's processors submit to
  // the ordering service; host 1 pays the request hop like most members).
  const std::uint32_t origin = replicas > 1 ? 1 : 0;
  for (int i = 0; i < rounds; ++i) {
    const auto start = Clock::now();
    const std::uint64_t oseq = nodes[origin]->broadcast(Bytes{static_cast<std::uint8_t>(i)});
    waiters[origin]->await(oseq);
    lat.add(elapsedUs(start, Clock::now()));
  }
  return lat;
}

}  // namespace

int main() {
  bench::header("E2", "atomic multicast dissemination + total ordering latency",
                "Consul measurement quoted in §5.3: ~4.0 ms at 3 replicas, 10 Mb Ethernet");
  std::printf("simulated LAN profile: 500 us mean one-way + U[0,200] us jitter\n\n");
  for (std::uint32_t n : {2u, 3u, 4u, 5u, 7u}) {
    auto lat = measure(n, 300, 42 + n);
    bench::row("replicas=" + std::to_string(n), lat);
  }
  std::printf("\nshape check: milliseconds at LAN latency, mild growth with replicas;\n");
  std::printf("paper reference point: 4.0 ms at 3 replicas on 1989-era hardware/Ethernet.\n");
  return 0;
}

// E3 — end-to-end AGS latency (the paper's derived estimate, §5.3).
//
// The paper estimates total AGS latency as Consul's dissemination/ordering
// time plus the TS-manager processing cost from Table 1. We measure the
// whole path directly — Runtime::execute() on a full FT-Linda system over
// the simulated LAN — varying replica count and body size, and print the
// decomposition (measured end-to-end vs. the ordering-only time from an
// empty-payload run) so the paper's "ordering dominates, processing is
// noise" conclusion can be checked.
//
// Flags: --short (CI smoke: fewer rounds/configs)
//        --trace <path> (write a Chrome trace-event JSON of a traced run:
//        open at ui.perfetto.dev to see the submit -> order -> apply -> wake
//        spans per AGS; see docs/OBSERVABILITY.md)
#include <atomic>
#include <cstring>
#include <fstream>
#include <thread>

#include "net/network.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"
#include "obs/assemble.hpp"
#include "obs/trace.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;

namespace {

Ags agsWithBody(int outs) {
  if (outs == 0) {
    // Minimal REPLICATED statement: a non-blocking guard against the stable
    // space (an AGS referencing nothing would run on the local fast path).
    return AgsBuilder().when(guardRdp(kTsMain, makePattern("never", fInt()))).build();
  }
  AgsBuilder b;
  b.when(guardTrue());
  for (int i = 0; i < outs; ++i) {
    b.then(opOut(kTsMain, makeTemplate("e3", i, 2.5)));
  }
  // Consume what we deposited so the space stays small across iterations.
  for (int i = 0; i < outs; ++i) {
    b.then(opInp(kTsMain, makePatternTemplate("e3", i, tuple::fReal())));
  }
  return b.build();
}

LatencySamples measure(std::uint32_t hosts, int body_outs, int rounds) {
  SystemConfig cfg;
  cfg.hosts = hosts;
  cfg.net = net::lanProfile(7 + hosts);
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(hosts > 1 ? 1 : 0);  // non-sequencer origin
  const Ags ags = agsWithBody(body_outs);
  LatencySamples lat;
  for (int i = 0; i < rounds; ++i) {
    const auto start = Clock::now();
    requireReply(rt.tryExecute(ags));
    lat.add(elapsedUs(start, Clock::now()));
  }
  return lat;
}

}  // namespace

LatencySamples measureWakeLatency(int rounds) {
  // Blocking-in wake latency across hosts: the consumer's AGS queues at the
  // replicas; we time the producer's out() submission to the consumer's
  // in() return (ordering of the out + deterministic wake + local reply).
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.net = net::lanProfile(77);
  FtLindaSystem sys(cfg);
  LatencySamples lat;
  for (int i = 0; i < rounds; ++i) {
    std::atomic<bool> armed{false};
    std::atomic<std::int64_t> woke_ns{0};
    std::thread consumer([&] {
      armed.store(true);
      sys.runtime(2).in(kTsMain, makePattern("wake", i));
      woke_ns.store(nowNanos());
    });
    while (!armed.load()) std::this_thread::yield();
    std::this_thread::sleep_for(Millis{2});  // let the in() block at the replicas
    const auto start = Clock::now();
    sys.runtime(1).out(kTsMain, tuple::makeTuple("wake", i));
    consumer.join();
    const double us =
        static_cast<double>(woke_ns.load() -
                            std::chrono::duration_cast<std::chrono::nanoseconds>(
                                start.time_since_epoch())
                                .count()) /
        1000.0;
    lat.add(us);
  }
  return lat;
}

int main(int argc, char** argv) {
  bool short_mode = false;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) trace_path = argv[++i];
  }
  const int rounds = short_mode ? 40 : 200;

  bench::header("E3", "end-to-end AGS latency (ordering + TS processing)",
                "§5.3 derived estimate: AGS latency = multicast ordering + Table-1 processing");
  std::printf("simulated LAN profile; one AGS = ONE multicast message regardless of body\n\n");

  if (trace_path != nullptr) {
    // Dedicated traced run, small enough that every AGS fits the rings:
    // replicated statements plus a blocking-in wake, so the dump shows the
    // whole submit -> order -> apply -> wake -> reply lifecycle.
    obs::trace::enable();
    measure(3, 1, short_mode ? 10 : 50);
    measureWakeLatency(short_mode ? 3 : 10);
    obs::trace::disable();
    std::ofstream out(trace_path);
    out << obs::trace::chromeJson();
    // `.spans` sidecar: the same rings in assemble's binary format, the
    // offline input of ftl-trace --in (CI merges and validates it).
    const std::string spans_path = std::string(trace_path) + ".spans";
    const Bytes blob = obs::assemble::encodeFile({obs::assemble::captureLocal(0)});
    std::ofstream spans(spans_path, std::ios::binary);
    spans.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    obs::trace::clear();
    std::printf("wrote Chrome trace JSON to %s (open at ui.perfetto.dev)\n", trace_path);
    std::printf("wrote span sidecar to %s (merge with ftl-trace --in)\n\n", spans_path.c_str());
  }

  std::printf("-- latency vs replica count (empty body: pure ordering + dispatch) --\n");
  for (std::uint32_t n : (short_mode ? std::vector<std::uint32_t>{3u}
                                     : std::vector<std::uint32_t>{2u, 3u, 5u})) {
    bench::row("hosts=" + std::to_string(n) + " body=0", measure(n, 0, rounds));
  }

  std::printf("\n-- latency vs body size at 3 hosts (processing is marginal) --\n");
  for (int body : (short_mode ? std::vector<int>{0, 4} : std::vector<int>{0, 1, 4, 16})) {
    bench::row("hosts=3 body=" + std::to_string(body) + " outs+inps", measure(3, body, rounds));
  }

  std::printf("\n-- blocked-statement wake latency (out at host 1 -> blocked in at host 2) --\n");
  bench::row("hosts=3 blocking-in wake", measureWakeLatency(short_mode ? 20 : 100));

  std::printf("\nshape check: latency is dominated by the ordering hop (compare E2);\n");
  std::printf("growing the body barely moves it — the paper's single-multicast design\n");
  std::printf("makes AGS cost independent of the number of TS operations inside.\n");
  return 0;
}

// E4 — ablation: one-multicast AGS versus lock/2PC replicated updates.
//
// Paper claim (abstract, §1, §5): "only a single multicast message is
// needed for each atomic collection of tuple space operations", versus
// replicated-Linda designs (e.g. Xu/Liskov) that need multiple rounds of
// messages per update. We run the same atomic update — withdraw ("count",v)
// and deposit ("count",v+1) on every replica — through both systems and
// report (a) network messages per update and (b) update latency on the LAN
// profile, versus replica count.
//
// Expected shape: FT-Linda sends 1 request + (n-1) ordered datagrams
// (+ amortized heartbeats/acks); the 2PC baseline needs 3 rounds = 6n
// messages, and its latency carries 3 round trips versus FT-Linda's ~2 hops.
#include <memory>

#include "net/network.hpp"
#include "baseline/two_phase.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

struct Result {
  double msgs_per_update = 0;
  LatencySamples latency;
};

Result runFtLinda(std::uint32_t replicas, int rounds) {
  SystemConfig cfg;
  cfg.hosts = replicas;
  cfg.net = net::lanProfile(11 + replicas);
  // Stretch the control-plane timers so message counts isolate the data path.
  cfg.consul = simulationConsulConfig();
  cfg.consul.heartbeat_interval = Micros{5'000'000};
  cfg.consul.ack_interval = Micros{5'000'000};
  cfg.consul.failure_timeout = Micros{60'000'000};
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(replicas > 1 ? 1 : 0);
  rt.out(kTsMain, makeTuple("count", 0));
  const Ags increment =
      AgsBuilder()
          .when(guardIn(kTsMain, makePattern("count", fInt())))
          .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
          .build();
  sys.network().resetStats();
  Result res;
  for (int i = 0; i < rounds; ++i) {
    const auto start = Clock::now();
    requireReply(rt.tryExecute(increment));
    res.latency.add(elapsedUs(start, Clock::now()));
  }
  res.msgs_per_update =
      static_cast<double>(sys.network().totalStats().messages_sent) / rounds;
  return res;
}

Result runTwoPc(std::uint32_t replicas, int rounds) {
  net::Network net(replicas + 1, net::lanProfile(23 + replicas));
  std::vector<std::unique_ptr<baseline::TwoPcReplica>> reps;
  std::vector<net::HostId> rids;
  for (std::uint32_t i = 0; i < replicas; ++i) {
    reps.push_back(std::make_unique<baseline::TwoPcReplica>(net, i));
    rids.push_back(i);
    reps.back()->seed(makeTuple("count", 0));
  }
  baseline::TwoPcClient client(net, replicas, rids);
  for (auto& r : reps) r->start();
  client.start();
  net.resetStats();
  Result res;
  for (int i = 0; i < rounds; ++i) {
    baseline::UpdateSpec spec;
    spec.takes.push_back(makePattern("count", i));
    spec.puts.push_back(makeTuple("count", i + 1));
    const auto start = Clock::now();
    const bool ok = client.atomicUpdate(spec);
    res.latency.add(elapsedUs(start, Clock::now()));
    FTL_CHECK(ok, "2PC update aborted unexpectedly");
  }
  res.msgs_per_update = static_cast<double>(net.totalStats().messages_sent) / rounds;
  return res;
}

}  // namespace

int main() {
  bench::header("E4", "messages + latency per atomic replicated update: AGS vs lock/2PC",
                "single-multicast claim (abstract, §1, §5) vs multi-round designs (§6)");
  constexpr int kRounds = 150;
  std::printf("\n%-10s %-28s %-28s\n", "", "FT-Linda (one multicast)", "lock + 2PC baseline");
  std::printf("%-10s %-12s %-15s %-12s %-15s\n", "replicas", "msgs/update", "p50 latency us",
              "msgs/update", "p50 latency us");
  for (std::uint32_t n : {2u, 3u, 4u, 6u}) {
    auto ft = runFtLinda(n, kRounds);
    auto pc = runTwoPc(n, kRounds);
    std::printf("%-10u %-12.1f %-15.0f %-12.1f %-15.0f\n", n, ft.msgs_per_update,
                ft.latency.percentileOr0(50), pc.msgs_per_update, pc.latency.percentileOr0(50));
  }
  std::printf("\nshape check: FT-Linda ~n msgs/update (1 request + n-1 ordered) and ~2 hops;\n");
  std::printf("2PC ~6n msgs/update (lock/grant, prepare/vote, commit/ack) and 3 round trips.\n");
  std::printf("FT-Linda wins both metrics at every replica count, and the gap grows with n.\n");
  return 0;
}

// E5 — fault-tolerant bag-of-tasks under crashes (paper §2.2, §4.2).
//
// The paper's motivating application: subtask tuples in TSmain, replicated
// workers, in-progress markers, failure tuples + a monitor that regenerates
// a dead worker's subtasks. We run the same bag (N tasks of fixed work)
// under 0, 1, and 2 worker-host crashes and report tasks completed, tasks
// lost, duplicate results, and completion time — for FT-Linda and for the
// classic central-server Linda baseline (which loses the claimed task with
// the worker, and everything with the server).
//
// Expected shape: FT-Linda completes ALL tasks exactly once in every
// scenario; the central server loses the tasks dead workers held (and the
// whole space if its host dies).
#include <atomic>
#include <memory>

#include "net/network.hpp"
#include "baseline/central_server.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kTasks = 60;

std::int64_t spinWork(std::int64_t id) {
  // ~2 ms of "compute" per task, so an injected crash reliably lands while
  // workers hold claimed tasks (both systems run the same work function).
  const auto until = Clock::now() + Millis{2};
  volatile std::int64_t acc = id;
  while (Clock::now() < until) {
    for (int i = 0; i < 1000; ++i) acc += i % 7;
  }
  return acc % 1000;
}

struct Outcome {
  int completed = 0;
  int duplicates = 0;
  int lost = 0;
  double wall_ms = 0;
  bool finished = true;
};

// ---------- FT-Linda ----------

void ftWorker(LindaApi& rt) {
  for (;;) {
    Reply r = requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("subtask", fInt())))
            .then(opOut(kTsMain,
                        makeTemplate("in_progress", static_cast<int>(rt.host()), bound(0))))
            .orWhen(guardIn(kTsMain, makePattern("shutdown")))
            .then(opOut(kTsMain, makeTemplate("shutdown")))
            .build()));
    if (r.branch == 1) return;
    const std::int64_t id = r.boundInt(0);
    const std::int64_t result = spinWork(id);
    requireReply(rt.tryExecute(AgsBuilder()
                   .when(guardIn(kTsMain,
                                 makePattern("in_progress", static_cast<int>(rt.host()), id)))
                   .then(opOut(kTsMain, makeTemplate("result", id, result)))
                   .build()));
  }
}

void ftMonitor(LindaApi& rt) {
  for (;;) {
    Reply fr = requireReply(rt.tryExecute(
        AgsBuilder().when(guardIn(kTsMain, makePattern("failure", fInt()))).build()));
    const std::int64_t dead = fr.boundInt(0);
    for (;;) {
      Reply r = requireReply(rt.tryExecute(AgsBuilder()
                               .when(guardInp(kTsMain, makePattern("in_progress", dead, fInt())))
                               .then(opOut(kTsMain, makeTemplate("subtask", bound(0))))
                               .build()));
      if (!r.succeeded) break;
    }
  }
}

Outcome runFtLinda(int crashes) {
  FtLindaSystem sys({.hosts = 4, .monitor_main = true});
  for (int i = 0; i < kTasks; ++i) sys.runtime(0).out(kTsMain, makeTuple("subtask", i));
  const auto start = Clock::now();
  sys.spawnProcess(0, ftMonitor);
  // Each victim deterministically claims a task, then its host crashes while
  // holding it — the failure mode §2.2 motivates.
  for (int v = 0; v < crashes; ++v) {
    const net::HostId victim = 3 - static_cast<net::HostId>(v);
    auto& rt = sys.runtime(victim);
    requireReply(rt.tryExecute(AgsBuilder()
                   .when(guardIn(kTsMain, makePattern("subtask", fInt())))
                   .then(opOut(kTsMain, makeTemplate("in_progress",
                                                     static_cast<int>(victim), bound(0))))
                   .build()));
    sys.crash(victim);
  }
  for (net::HostId h = 0; h < static_cast<net::HostId>(4 - crashes); ++h) {
    sys.spawnProcess(h, ftWorker);
  }
  Outcome o;
  for (int i = 0; i < kTasks; ++i) {
    sys.runtime(0).rd(kTsMain, makePattern("result", i, fInt()));
  }
  o.wall_ms = elapsedUs(start, Clock::now()) / 1000.0;
  sys.runtime(0).out(kTsMain, makeTuple("shutdown"));
  std::this_thread::sleep_for(Millis{30});
  for (const auto& t : sys.stateMachine(0).spaceContents(kTsMain)) {
    if (t.field(0).asStr() == "result") ++o.completed;
  }
  o.duplicates = o.completed - kTasks;
  o.lost = kTasks - std::min(o.completed, kTasks);
  o.completed = std::min(o.completed, kTasks);
  return o;
}

// ---------- central-server baseline ----------

Outcome runCentral(int crashes, bool crash_server) {
  // host 0: server; hosts 1-4: workers.
  net::Network net(5);
  baseline::CentralServer server(net, 0);
  server.start();
  std::vector<std::unique_ptr<baseline::CentralClient>> clients;
  for (net::HostId h = 1; h <= 4; ++h) {
    clients.push_back(std::make_unique<baseline::CentralClient>(net, h, 0, true));
    clients.back()->start();
  }
  for (int i = 0; i < kTasks; ++i) clients[0]->out(makeTuple("subtask", i));

  const auto start = Clock::now();
  // Victims deterministically claim a task, then their host crashes while
  // they hold it: the claimed subtask is gone for good (no failure tuples,
  // no in-progress markers in plain Linda).
  if (!crash_server) {
    for (int v = 0; v < crashes; ++v) {
      auto& victim = *clients[3 - v];  // hosts 4, then 3
      auto t = victim.inp(makePattern("subtask", fInt()));
      FTL_CHECK(t.has_value(), "bag empty before crash injection");
      net.crash(4 - static_cast<net::HostId>(v));
    }
  }
  std::vector<std::thread> workers;
  const int live_workers = crash_server ? 4 : 4 - crashes;
  for (int w = 0; w < live_workers; ++w) {
    workers.emplace_back([&, w] {
      auto& c = *clients[w];
      try {
        for (;;) {
          auto t = c.inp(makePattern("subtask", fInt()));
          if (!t) return;  // bag empty (no regeneration possible here)
          const std::int64_t id = t->field(1).asInt();
          const std::int64_t result = spinWork(id);
          c.out(makeTuple("result", id, result));
        }
      } catch (const Error&) {
        // host crashed or server lost
      }
    });
  }
  if (crash_server) {
    std::this_thread::sleep_for(Millis{20});
    net.crash(0);
  }
  for (auto& t : workers) t.join();
  Outcome o;
  o.wall_ms = elapsedUs(start, Clock::now()) / 1000.0;
  // Count surviving results at the server.
  if (crash_server) {
    o.completed = 0;  // the whole tuple space died with the server
  } else {
    int results = 0;
    try {
      while (clients[0]->inp(makePattern("result", fInt(), fInt()))) ++results;
    } catch (const Error&) {
    }
    o.completed = results;
  }
  o.lost = kTasks - o.completed;
  return o;
}

void report(const char* label, const Outcome& o) {
  std::printf("%-42s completed=%2d/%2d lost=%2d dup=%d  wall=%7.1f ms\n", label, o.completed,
              kTasks, o.lost, o.duplicates, o.wall_ms);
}

}  // namespace

int main() {
  bench::header("E5", "bag-of-tasks completion under worker/server crashes",
                "§2.2 failure anomaly + §4.2 fault-tolerant bag-of-tasks");
  std::printf("%d tasks, 4 worker hosts, crash(es) injected mid-run\n\n", kTasks);

  report("FT-Linda, no crashes", runFtLinda(0));
  report("FT-Linda, 1 worker-host crash", runFtLinda(1));
  report("FT-Linda, 2 worker-host crashes", runFtLinda(2));
  report("central server, no crashes", runCentral(0, false));
  report("central server, 1 worker crash", runCentral(1, false));
  report("central server, 2 worker crashes", runCentral(2, false));
  report("central server, SERVER crash", runCentral(0, true));

  std::printf("\nshape check: FT-Linda completes every task exactly once in all rows;\n");
  std::printf("the baseline loses the tasks crashed workers held, and the entire bag\n");
  std::printf("when the server host dies.\n");
  return 0;
}

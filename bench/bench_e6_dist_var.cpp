// E6 — the distributed variable under concurrency and crashes (paper §2.2).
//
// Metric: after U updaters each apply K increments to the shared variable
// ("count", v) while one updater host crashes mid-run,
//   - does the variable still exist? (the §2.2 anomaly destroys it)
//   - were any SURVIVOR updates lost?
// FT-Linda's AGS makes the read-modify-write one atomic step; the baseline
// does the conventional non-atomic in(...) then out(...) against a central
// server, so a crash between the two kills the variable (we count how often
// across trials), and the system wedges.
#include <atomic>
#include <memory>

#include "net/network.hpp"
#include "baseline/central_server.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kUpdaters = 4;
constexpr int kIncrements = 40;
constexpr int kTrials = 12;

struct Tally {
  int variable_lost = 0;
  int survivor_updates_lost = 0;
  int trials = 0;
};

Tally runFtLinda() {
  Tally tally;
  for (int trial = 0; trial < kTrials; ++trial) {
    FtLindaSystem sys({.hosts = kUpdaters});
    sys.runtime(0).out(kTsMain, makeTuple("count", 0));
    std::atomic<int> survivor_increments{0};
    for (net::HostId h = 0; h < kUpdaters; ++h) {
      sys.spawnProcess(h, [&survivor_increments](LindaApi& rt) {
        for (int i = 0; i < kIncrements; ++i) {
          requireReply(rt.tryExecute(
              AgsBuilder()
                  .when(guardIn(kTsMain, makePattern("count", fInt())))
                  .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
                  .build()));
          if (rt.host() != kUpdaters - 1) survivor_increments.fetch_add(1);
        }
        rt.out(kTsMain, makeTuple("done", static_cast<int>(rt.host())));
      });
    }
    std::this_thread::sleep_for(Millis{5});
    sys.crash(kUpdaters - 1);  // kill one updater mid-stream
    for (net::HostId h = 0; h + 1 < kUpdaters; ++h) {
      sys.runtime(0).rd(kTsMain, makePattern("done", static_cast<int>(h)));
    }
    auto var = sys.runtime(0).rdp(kTsMain, makePattern("count", fInt()));
    if (!var) {
      ++tally.variable_lost;
    } else {
      // Every survivor increment must be present (the dead host contributed
      // 0..kIncrements of its own, all atomic, so value >= survivors).
      if (var->field(1).asInt() < survivor_increments.load()) {
        ++tally.survivor_updates_lost;
      }
    }
    ++tally.trials;
  }
  return tally;
}

Tally runBaseline() {
  Tally tally;
  for (int trial = 0; trial < kTrials; ++trial) {
    // host 0: server, hosts 1..4: updaters. Non-atomic in-then-out updates.
    net::Network net(kUpdaters + 1);
    baseline::CentralServer server(net, 0);
    server.start();
    std::vector<std::unique_ptr<baseline::CentralClient>> clients;
    for (net::HostId h = 1; h <= kUpdaters; ++h) {
      clients.push_back(std::make_unique<baseline::CentralClient>(net, h, 0, true));
      clients.back()->start();
    }
    clients[0]->out(makeTuple("count", 0));
    std::atomic<bool> victim_holding{false};
    std::vector<std::thread> updaters;
    std::atomic<int> finished{0};
    for (int u = 0; u < kUpdaters; ++u) {
      updaters.emplace_back([&, u] {
        auto& c = *clients[u];
        try {
          for (int i = 0; i < kIncrements; ++i) {
            Tuple t = c.in(makePattern("count", fInt()));  // withdraw...
            if (u == kUpdaters - 1) {
              victim_holding.store(true);  // signal: crash me now
              std::this_thread::sleep_for(Millis{50});
            }
            c.out(makeTuple("count", t.field(1).asInt() + 1));  // ...write back
          }
          finished.fetch_add(1);
        } catch (const Error&) {
        }
      });
    }
    // Crash the victim while it holds the variable.
    while (!victim_holding.load()) std::this_thread::sleep_for(Millis{1});
    net.crash(kUpdaters);  // the victim's host
    // Give survivors a moment; they will wedge on in("count", ?v).
    std::this_thread::sleep_for(Millis{200});
    auto var = clients[0]->inp(makePattern("count", fInt()));
    if (!var) ++tally.variable_lost;
    ++tally.trials;
    // Unwedge everything for teardown.
    net.crash(0);
    for (auto& t : updaters) t.join();
  }
  return tally;
}

}  // namespace

int main() {
  bench::header("E6", "distributed variable: lost variable / lost updates under crashes",
                "§2.2 distributed-variable anomaly; Figure 3's AGS update idiom");
  std::printf("%d updaters x %d increments, one updater host crashed mid-run, %d trials\n\n",
              kUpdaters, kIncrements, kTrials);
  const Tally ft = runFtLinda();
  std::printf("%-34s variable lost: %d/%d trials, survivor updates lost: %d\n",
              "FT-Linda AGS update", ft.variable_lost, ft.trials, ft.survivor_updates_lost);
  const Tally base = runBaseline();
  std::printf("%-34s variable lost: %d/%d trials (survivors wedge forever)\n",
              "central server, in-then-out", base.variable_lost, base.trials);
  std::printf("\nshape check: FT-Linda never loses the variable or a survivor's update;\n");
  std::printf("the non-atomic baseline loses the variable whenever the crash lands\n");
  std::printf("between the in and the out (forced every trial here).\n");
  return 0;
}

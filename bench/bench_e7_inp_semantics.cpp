// E7 — strong versus weak inp semantics (paper §3.2).
//
// FT-Linda's claim: because every AGS occupies one point of the global
// total order, inp returning "no match" GUARANTEES no matching tuple
// existed at that point. Conventional distributed Linda kernels (with
// asynchronous out) cannot promise this: a tuple that was out()'d — and
// even acknowledged to the application — may still be in flight when
// another process's inp looks for it.
//
// Protocol per round: producer deposits ("flag", i), then signals the
// consumer out-of-band (an atomic in shared memory, standing in for any
// external channel — a file, a socket, a human). The consumer then issues
// inp("flag", i). A miss is a SEMANTIC VIOLATION: the out happened-before
// the inp. We count violations over many rounds.
//
// Expected shape: FT-Linda 0 violations; the async-out baseline misses
// often at LAN latencies.
#include <atomic>

#include "net/network.hpp"
#include "baseline/central_server.hpp"
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kRounds = 400;

int runFtLinda() {
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.net = net::lanProfile(31);
  FtLindaSystem sys(cfg);
  std::atomic<int> ready{-1};
  std::atomic<int> violations{0};
  std::atomic<int> consumed{-1};
  sys.spawnProcess(0, [&](LindaApi& rt) {
    for (int i = 0; i < kRounds; ++i) {
      rt.out(kTsMain, makeTuple("flag", i));  // synchronous: ordered when done
      ready.store(i);
      while (consumed.load() < i) std::this_thread::yield();
    }
  });
  sys.spawnProcess(1, [&](LindaApi& rt) {
    for (int i = 0; i < kRounds; ++i) {
      while (ready.load() < i) std::this_thread::yield();
      if (!rt.inp(kTsMain, makePattern("flag", i))) violations.fetch_add(1);
      consumed.store(i);
    }
  });
  sys.joinProcesses();
  return violations.load();
}

int runBaseline() {
  // host 0: server; 1: producer (ASYNC out, the conventional kernel
  // behaviour); 2: consumer.
  net::Network net(3, net::lanProfile(37));
  baseline::CentralServer server(net, 0);
  baseline::CentralClient producer(net, 1, 0, /*sync_out=*/false);
  baseline::CentralClient consumer(net, 2, 0, /*sync_out=*/true);
  server.start();
  producer.start();
  consumer.start();
  std::atomic<int> ready{-1};
  std::atomic<int> consumed{-1};
  std::atomic<int> violations{0};
  std::thread prod([&] {
    for (int i = 0; i < kRounds; ++i) {
      producer.out(makeTuple("flag", i));  // returns before the server has it
      ready.store(i);
      while (consumed.load() < i) std::this_thread::yield();
    }
  });
  std::thread cons([&] {
    for (int i = 0; i < kRounds; ++i) {
      while (ready.load() < i) std::this_thread::yield();
      if (!consumer.inp(makePattern("flag", i))) {
        violations.fetch_add(1);
        // Drain the late tuple so the next round starts clean.
        consumer.in(makePattern("flag", i));
      }
      consumed.store(i);
    }
  });
  prod.join();
  cons.join();
  return violations.load();
}

}  // namespace

int main() {
  bench::header("E7", "strong inp/rdp semantics: happened-before misses",
                "§3.2 strong inp/rdp guarantee (only Plinda [4] offers similar)");
  std::printf("%d rounds of out -> out-of-band signal -> inp, LAN latency profile\n\n", kRounds);
  const int ft = runFtLinda();
  std::printf("%-44s violations: %d/%d\n", "FT-Linda (ordered AGS, synchronous out)", ft,
              kRounds);
  const int base = runBaseline();
  std::printf("%-44s violations: %d/%d\n", "central server with asynchronous out", base,
              kRounds);
  std::printf("\nshape check: FT-Linda must report 0 — a false inp verdict is a proof of\n");
  std::printf("absence at that point of the total order. The async baseline misses\n");
  std::printf("whenever the signal outraces the in-flight out.\n");
  return ft == 0 ? 0 : 1;
}

// E8 — recovery time versus stable tuple-space size (paper §5.2).
//
// The paper's recovery path: a restarted processor multicasts a restart
// message; the membership protocol re-admits it and an existing member
// ships the TS state. We measure wall time from recover() to full
// membership (snapshot installed), and the snapshot size, as a function of
// the number of tuples in stable space.
//
// Expected shape: a constant protocol cost (join round trips) plus a term
// linear in state size.
#include "bench_util.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::makeTuple;

namespace {

struct Point {
  double rejoin_ms = 0;
  std::size_t snapshot_bytes = 0;
};

Point measure(std::size_t tuples) {
  FtLindaSystem sys({.hosts = 3});
  auto& rt = sys.runtime(0);
  // Seed in batches of one AGS with 64 outs each to keep setup fast.
  std::size_t seeded = 0;
  while (seeded < tuples) {
    AgsBuilder b;
    b.when(guardTrue());
    for (int i = 0; i < 64 && seeded < tuples; ++i, ++seeded) {
      b.then(opOut(kTsMain, makeTemplate("payload", static_cast<std::int64_t>(seeded),
                                         "some tuple content for realistic sizing")));
    }
    requireReply(rt.tryExecute(b.build()));
  }
  sys.crash(2);
  bench::waitUntil([&] {
    return sys.stateMachine(0).tupleCount(kTsMain) == tuples;  // settle
  });
  // Let the failure view install before rejoining.
  std::this_thread::sleep_for(Millis{150});
  const auto start = Clock::now();
  const bool ok = sys.recover(2, Millis{30'000});
  Point p;
  p.rejoin_ms = elapsedUs(start, Clock::now()) / 1000.0;
  FTL_CHECK(ok, "recovery did not complete");
  p.snapshot_bytes = sys.stateMachine(2).stateDigestBytes().size();
  FTL_CHECK(sys.stateMachine(2).tupleCount(kTsMain) == tuples,
            "recovered replica is missing tuples");
  return p;
}

}  // namespace

int main() {
  bench::header("E8", "processor recovery time vs stable TS size",
                "§5.2 recovery via Consul membership + state transfer");
  std::printf("3 hosts; host 2 crashes, rejoins, and receives the TS snapshot\n\n");
  std::printf("%-14s %-14s %-16s\n", "tuples", "rejoin ms", "snapshot bytes");
  for (std::size_t n : {100u, 1'000u, 5'000u, 20'000u}) {
    const Point p = measure(n);
    std::printf("%-14zu %-14.1f %-16zu\n", n, p.rejoin_ms, p.snapshot_bytes);
  }
  std::printf("\nshape check: constant join cost plus a linear state-transfer term.\n");
  return 0;
}

// E9 — tuple matching throughput: signature-bucketed store (the FT-lcc
// catalog design point) versus a naive linear-scan store.
//
// Supports the paper's implementation claim that cataloging pattern
// signatures lets the runtime match against only same-signature candidates.
// Shape to expect: the bucketed store is flat in total tuple count when the
// target name is selective; the linear scan degrades linearly.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ts/tuple_space.hpp"

namespace {

using namespace ftl;
using ts::TupleSpace;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;
using tuple::Pattern;
using tuple::Tuple;

/// Straw-man store: what a Linda kernel without signature analysis does —
/// scan everything.
class LinearStore {
 public:
  void put(Tuple t) { tuples_.push_back(std::move(t)); }

  const Tuple* read(const Pattern& p) const {
    for (const auto& t : tuples_) {
      if (p.matches(t)) return &t;
    }
    return nullptr;
  }

 private:
  std::vector<Tuple> tuples_;
};

std::string nameFor(int group) { return "name" + std::to_string(group); }

/// range(0) = total tuples, range(1) = distinct names (groups).
void BM_E9_Bucketed(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  const int groups = static_cast<int>(state.range(1));
  TupleSpace space;
  // Group-major insert so the probed group's tuples sit at the END of a
  // naive scan order: the honest worst case for the linear baseline.
  for (int i = 0; i < total; ++i) space.put(makeTuple(nameFor(i / (total / groups)), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    auto t = space.read(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_Bucketed)
    ->Args({100, 16})
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({10000, 1})
    ->Args({10000, 256});

void BM_E9_LinearScan(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  const int groups = static_cast<int>(state.range(1));
  LinearStore store;
  for (int i = 0; i < total; ++i) store.put(makeTuple(nameFor(i / (total / groups)), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    auto* t = store.read(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_LinearScan)
    ->Args({100, 16})
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({10000, 1})
    ->Args({10000, 256});

/// Insert throughput of the bucketed store (it must not lose on writes).
void BM_E9_BucketedPut(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  TupleSpace space;
  int i = 0;
  for (auto _ : state) {
    space.put(makeTuple(nameFor(i % groups), i));
    ++i;
  }
}
BENCHMARK(BM_E9_BucketedPut)->Arg(1)->Arg(16)->Arg(256);

/// Read-mostly (distributed-variable) workload, the shape the whole-program
/// analyzer detects and plans for: many names resident, repeated rd of one
/// class. range(1) selects the storage plan: 0 = none (bucket + chain
/// lookup per read), 1 = analyzer plan marking the class read_mostly (the
/// one-entry read cache short-circuits both lookups). The ftl_plan_read_
/// cache_hit counter confirms the specialized path served the reads.
void BM_E9_DistVarRead(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  const bool planned = state.range(1) != 0;
  TupleSpace space;
  if (planned) {
    auto plan = std::make_shared<ts::StoragePlan>();
    ts::PlanEntry e;
    e.paradigm = ts::Paradigm::DistributedVariable;
    e.read_mostly = true;
    plan->add(tuple::signatureOf(makeTuple(nameFor(0), 0)), nameFor(groups - 1), e);
    space.setPlan(std::move(plan));
  }
  for (int i = 0; i < groups; ++i) space.put(makeTuple(nameFor(i), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    auto t = space.read(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_DistVarRead)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({256, 0})
    ->Args({256, 1});

/// take() with a leading formal: the store must check multiple chains but
/// still stay far below a full scan.
void BM_E9_BucketedFormalFirst(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  TupleSpace space;
  for (int i = 0; i < total; ++i) space.put(makeTuple(nameFor(i % 16), i));
  const Pattern probe = makePattern(tuple::fStr(), fInt());
  for (auto _ : state) {
    auto t = space.read(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_BucketedFormalFirst)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();

// E9 — tuple matching throughput: signature-bucketed store (the FT-lcc
// catalog design point) versus a naive linear-scan store.
//
// Supports the paper's implementation claim that cataloging pattern
// signatures lets the runtime match against only same-signature candidates.
// Shape to expect: the bucketed store is flat in total tuple count when the
// target name is selective; the linear scan degrades linearly.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ftlinda/ts_state_machine.hpp"
#include "ftlinda/verify.hpp"
#include "ts/tuple_space.hpp"
#include "tuple/view.hpp"

namespace {

using namespace ftl;
using ts::TupleSpace;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;
using tuple::Pattern;
using tuple::Tuple;
using Writer = ftl::Writer;
using Reader = ftl::Reader;

/// Straw-man store: what a Linda kernel without signature analysis does —
/// scan everything.
class LinearStore {
 public:
  void put(Tuple t) { tuples_.push_back(std::move(t)); }

  const Tuple* read(const Pattern& p) const {
    for (const auto& t : tuples_) {
      if (p.matches(t)) return &t;
    }
    return nullptr;
  }

 private:
  std::vector<Tuple> tuples_;
};

std::string nameFor(int group) { return "name" + std::to_string(group); }

/// range(0) = total tuples, range(1) = distinct names (groups).
void BM_E9_Bucketed(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  const int groups = static_cast<int>(state.range(1));
  TupleSpace space;
  // Group-major insert so the probed group's tuples sit at the END of a
  // naive scan order: the honest worst case for the linear baseline.
  for (int i = 0; i < total; ++i) space.put(makeTuple(nameFor(i / (total / groups)), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    const Tuple* t = space.readRef(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_Bucketed)
    ->Args({100, 16})
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({10000, 1})
    ->Args({10000, 256});

void BM_E9_LinearScan(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  const int groups = static_cast<int>(state.range(1));
  LinearStore store;
  for (int i = 0; i < total; ++i) store.put(makeTuple(nameFor(i / (total / groups)), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    auto* t = store.read(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_LinearScan)
    ->Args({100, 16})
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({10000, 1})
    ->Args({10000, 256});

/// Insert throughput of the bucketed store (it must not lose on writes).
void BM_E9_BucketedPut(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  TupleSpace space;
  int i = 0;
  for (auto _ : state) {
    space.put(makeTuple(nameFor(i % groups), i));
    ++i;
    if (i % 100000 == 0) {
      // Bound the store: an ever-growing space measures allocator pressure,
      // not put cost. Rebuild outside the timed region.
      state.PauseTiming();
      space = TupleSpace();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_E9_BucketedPut)->Arg(1)->Arg(16)->Arg(256);

/// Read-mostly (distributed-variable) workload, the shape the whole-program
/// analyzer detects and plans for: many names resident, repeated rd of one
/// class. range(1) selects the storage plan: 0 = none (bucket + chain
/// lookup per read), 1 = analyzer plan marking the class read_mostly (the
/// one-entry read cache short-circuits both lookups). The ftl_plan_read_
/// cache_hit counter confirms the specialized path served the reads.
void BM_E9_DistVarRead(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  const bool planned = state.range(1) != 0;
  TupleSpace space;
  if (planned) {
    auto plan = std::make_shared<ts::StoragePlan>();
    ts::PlanEntry e;
    e.paradigm = ts::Paradigm::DistributedVariable;
    e.read_mostly = true;
    plan->add(tuple::signatureOf(makeTuple(nameFor(0), 0)), nameFor(groups - 1), e);
    space.setPlan(std::move(plan));
  }
  for (int i = 0; i < groups; ++i) space.put(makeTuple(nameFor(i), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    const Tuple* t = space.readRef(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_DistVarRead)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({256, 0})
    ->Args({256, 1});

/// take() with a leading formal: the store must check multiple chains but
/// still stay far below a full scan.
void BM_E9_BucketedFormalFirst(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  TupleSpace space;
  for (int i = 0; i < total; ++i) space.put(makeTuple(nameFor(i % 16), i));
  const Pattern probe = makePattern(tuple::fStr(), fInt());
  for (auto _ : state) {
    const Tuple* t = space.readRef(probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_BucketedFormalFirst)->Arg(1000)->Arg(10000);

/// The pre-view API: read() copies the matched tuple (string allocation per
/// hit). Kept as the before/after comparison for the zero-copy readRef path
/// used by BM_E9_Bucketed.
void BM_E9_OwningRead(benchmark::State& state) {
  const int total = static_cast<int>(state.range(0));
  const int groups = static_cast<int>(state.range(1));
  TupleSpace space;
  for (int i = 0; i < total; ++i) space.put(makeTuple(nameFor(i / (total / groups)), i));
  const Pattern probe = makePattern(nameFor(groups - 1), fInt());
  for (auto _ : state) {
    auto t = space.read(probe);  // std::optional<Tuple>: copies the match
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_OwningRead)->Args({100, 16})->Args({1000, 16})->Args({10000, 16});

/// Wire-to-verdict decode+match: the view path (TupleView/PatternView,
/// zero materialization) versus the owning path (Tuple::decode allocates
/// every field). This is the per-command decode cost on the apply path.
void BM_E9_ViewDecodeMatch(benchmark::State& state) {
  Writer tw;
  makeTuple(nameFor(1), 42, std::string(48, 'p'), Bytes(64, 9)).encode(tw);
  const Bytes tenc = tw.take();
  Writer pw;
  makePattern(nameFor(1), fInt(), tuple::fStr(), tuple::fBlob()).encode(pw);
  const Bytes penc = pw.take();
  for (auto _ : state) {
    Reader tr(tenc);
    Reader pr(penc);
    const tuple::TupleView tv = tuple::TupleView::decode(tr);
    const tuple::PatternView pv = tuple::PatternView::decode(pr);
    bool hit = pv.matches(tv);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_E9_ViewDecodeMatch);

void BM_E9_OwningDecodeMatch(benchmark::State& state) {
  Writer tw;
  makeTuple(nameFor(1), 42, std::string(48, 'p'), Bytes(64, 9)).encode(tw);
  const Bytes tenc = tw.take();
  Writer pw;
  makePattern(nameFor(1), fInt(), tuple::fStr(), tuple::fBlob()).encode(pw);
  const Bytes penc = pw.take();
  for (auto _ : state) {
    Reader tr(tenc);
    Reader pr(penc);
    const Tuple t = Tuple::decode(tr);
    const Pattern p = Pattern::decode(pr);
    bool hit = p.matches(t);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_E9_OwningDecodeMatch);

/// Representative two-branch AGS for the verifier benchmarks: a guarded
/// withdraw with an arithmetic rebind plus a guardTrue fallback — the shape
/// the E13 pipeline issues all day.
ftl::Bytes encodedVerifyFixture() {
  using namespace ftl::ftlinda;
  const Ags ags = AgsBuilder()
                      .when(guardIn(ftl::ts::kTsMain, makePattern(nameFor(1), fInt())))
                      .then(opOut(ftl::ts::kTsMain,
                                  makeTemplate(nameFor(2), boundExpr(0, ArithOp::Add, 1))))
                      .orWhen(guardTrue())
                      .then(opOut(ftl::ts::kTsMain, makeTemplate(nameFor(3), 0)))
                      .build();
  Writer w;
  ags.encode(w);
  return w.take();
}

/// Issuer-side view verify: rule evaluation straight over the encoded
/// statement (the hot path Runtime::executeAsync takes — encode once,
/// verify the bytes, ship the same bytes).
void BM_E9_ViewVerify(benchmark::State& state) {
  using namespace ftl::ftlinda;
  const ftl::Bytes enc = encodedVerifyFixture();
  for (auto _ : state) {
    const VerifyResult vr = verifyEncoded(ftl::BytesView{enc.data(), enc.size()});
    benchmark::DoNotOptimize(vr.ok());
  }
}
BENCHMARK(BM_E9_ViewVerify);

/// The pre-fast-lane comparison point: materialize the Ags from the wire
/// form, then run the owning verifier over it (decode → verify). CI gates
/// on the view/owning ratio staying below 1 (docs/EXPERIMENTS.md E9).
void BM_E9_OwningVerify(benchmark::State& state) {
  using namespace ftl::ftlinda;
  const ftl::Bytes enc = encodedVerifyFixture();
  for (auto _ : state) {
    Reader r(enc);
    const Ags ags = Ags::decode(r);
    const VerifyResult vr = verify(ags);
    benchmark::DoNotOptimize(vr.ok());
  }
}
BENCHMARK(BM_E9_OwningVerify);

/// The replica-facing read side: TsStateMachine::readSnapshot with a
/// read-mostly plan published slot. After the first (fallback) read, every
/// iteration is the lock-free fast path — two atomic loads, no writer lock,
/// no match re-evaluation beyond the cached front probe. range(0) toggles
/// the plan: 0 = no plan (every read takes the shared-lock fallback),
/// 1 = read-mostly plan (slot hits).
void BM_E9_LockFreeReadSnapshot(benchmark::State& state) {
  using namespace ftl::ftlinda;
  TsStateMachine sm;
  if (state.range(0) != 0) {
    auto plan = std::make_shared<ftl::ts::StoragePlan>();
    ftl::ts::PlanEntry e;
    e.paradigm = ftl::ts::Paradigm::DistributedVariable;
    e.read_mostly = true;
    plan->add(tuple::signatureOf(makeTuple("v", 0)), "v", e);
    sm.setPlan(std::move(plan));
  }
  TupleTemplate tmpl;
  const Tuple seed = makeTuple("v", 42);  // named: fields() must outlive the loop
  for (const auto& v : seed.fields()) {
    TemplateField f;
    f.literal = v;
    tmpl.fields.push_back(f);
  }
  rsm::ApplyContext ctx;
  ctx.gseq = 1;
  ctx.origin = 0;
  ctx.origin_seq = 1;
  sm.apply(ctx, makeExecute(1, AgsBuilder()
                                   .when(guardTrue())
                                   .then(opOut(ftl::ts::kTsMain, tmpl))
                                   .build())
                    .encode());
  const Pattern probe = makePattern("v", fInt());
  for (auto _ : state) {
    auto t = sm.readSnapshot(ftl::ts::kTsMain, probe);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_E9_LockFreeReadSnapshot)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();

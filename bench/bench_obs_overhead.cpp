// Micro-benchmark: cost of the observability layer's hot-path primitives
// (docs/OBSERVABILITY.md "Overhead"). The contract this pins down:
//  - a counter increment / histogram observe is a relaxed atomic RMW
//    (single-digit ns, uncontended);
//  - a DISABLED trace record is one relaxed load and a branch (~1ns) — the
//    instrumented protocol paths pay only this when nobody is tracing;
//  - an ENABLED trace record is a clock read plus a ring store.
//
// Run: ./bench/bench_obs_overhead [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

void BM_CounterInc(benchmark::State& state) {
  static ftl::obs::Counter& c = ftl::obs::counter("bench_obs_counter");
  for (auto _ : state) c.inc();
}
BENCHMARK(BM_CounterInc);

void BM_GaugeSet(benchmark::State& state) {
  static ftl::obs::Gauge& g = ftl::obs::gauge("bench_obs_gauge");
  std::int64_t v = 0;
  for (auto _ : state) g.set(v++);
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  static ftl::obs::Histogram& h = ftl::obs::histogram("bench_obs_hist");
  std::uint64_t v = 0;
  for (auto _ : state) h.observe(v++ & 0xffff);
}
BENCHMARK(BM_HistogramObserve);

// The acceptance bar: instrumentation left in production paths must cost
// ~a branch when tracing is off.
void BM_TraceInstantDisabled(benchmark::State& state) {
  ftl::obs::trace::disable();
  for (auto _ : state) ftl::obs::trace::instant("bench.obs", 1);
}
BENCHMARK(BM_TraceInstantDisabled);

void BM_TraceSpanDisabled(benchmark::State& state) {
  ftl::obs::trace::disable();
  for (auto _ : state) {
    ftl::obs::trace::Span span("bench.obs", 1);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceInstantEnabled(benchmark::State& state) {
  ftl::obs::trace::enable(1 << 10);
  for (auto _ : state) ftl::obs::trace::instant("bench.obs", 1);
  ftl::obs::trace::disable();
  ftl::obs::trace::clear();
}
BENCHMARK(BM_TraceInstantEnabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  ftl::obs::trace::enable(1 << 10);
  for (auto _ : state) {
    ftl::obs::trace::Span span("bench.obs", 1);
    benchmark::DoNotOptimize(&span);
  }
  ftl::obs::trace::disable();
  ftl::obs::trace::clear();
}
BENCHMARK(BM_TraceSpanEnabled);

// Registry lookup by name (mutex + map) — why call sites cache references.
void BM_CounterLookupByName(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(&ftl::obs::counter("bench_obs_counter"));
}
BENCHMARK(BM_CounterLookupByName);

}  // namespace

BENCHMARK_MAIN();

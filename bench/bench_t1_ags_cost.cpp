// T1 — reproduction of Table 1 (§5.3): single-processor TS-manager cost of
// AGS processing.
//
// The paper measures, on Sun-3/60 and i386 workstations, the base cost of
// an AGS arriving at the TS state machine plus the marginal cost of each
// kind of operation in the body (out of a 3-element tuple, in with actuals,
// in with formals, ...). We measure the same quantities on the modern host:
// one TsStateMachine::apply() call including command decode, guard
// matching, body execution and reply generation — exactly the work the
// paper's TS manager performs per multicast message. Absolute numbers are
// hardware-dependent; the SHAPE to compare (see EXPERIMENTS.md): every
// entry is small (microseconds), out < in-with-formals, and body cost grows
// linearly with op count.
#include <benchmark/benchmark.h>

#include "ftlinda/ts_state_machine.hpp"

namespace {

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

/// Drives a state machine as the replica would: decode + apply.
class SmHarness {
 public:
  SmHarness() : sm_([](net::HostId, std::uint64_t, const Reply&) {}) {}

  void apply(const Bytes& cmd) {
    rsm::ApplyContext ctx;
    ctx.gseq = ++gseq_;
    ctx.origin = 0;
    ctx.origin_seq = gseq_;
    sm_.apply(ctx, cmd);
  }

  TsStateMachine& sm() { return sm_; }

 private:
  TsStateMachine sm_;
  std::uint64_t gseq_ = 0;
};

Bytes encodeAgs(const Ags& a) { return makeExecute(1, a).encode(); }

// --- base cost: empty AGS < true => > ---
void BM_T1_BaseAgs(benchmark::State& state) {
  SmHarness h;
  const Bytes cmd = encodeAgs(AgsBuilder().when(guardTrue()).build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_BaseAgs);

// --- out of a 3-element tuple ---
void BM_T1_Out3(benchmark::State& state) {
  SmHarness h;
  const Bytes cmd = encodeAgs(
      AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("t", 1, 2.5))).build());
  for (auto _ : state) h.apply(cmd);
  state.SetLabel("space grows; matching untouched");
}
BENCHMARK(BM_T1_Out3);

// --- in with all actuals (withdraw + redeposit so the space is steady) ---
void BM_T1_InActuals(benchmark::State& state) {
  SmHarness h;
  h.apply(encodeAgs(
      AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("t", 1, 2.5))).build()));
  const Bytes cmd = encodeAgs(AgsBuilder()
                                  .when(guardIn(kTsMain, makePattern("t", 1, 2.5)))
                                  .then(opOut(kTsMain, makeTemplate("t", 1, 2.5)))
                                  .build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_InActuals);

// --- in with formals (binds two values) ---
void BM_T1_InFormals(benchmark::State& state) {
  SmHarness h;
  h.apply(encodeAgs(
      AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("t", 1, 2.5))).build()));
  const Bytes cmd = encodeAgs(AgsBuilder()
                                  .when(guardIn(kTsMain, makePattern("t", fInt(), tuple::fReal())))
                                  .then(opOut(kTsMain, makeTemplate("t", bound(0), bound(1))))
                                  .build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_InFormals);

// --- rd with formals ---
void BM_T1_RdFormals(benchmark::State& state) {
  SmHarness h;
  h.apply(encodeAgs(
      AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("t", 1, 2.5))).build()));
  const Bytes cmd = encodeAgs(
      AgsBuilder().when(guardRd(kTsMain, makePattern("t", fInt(), tuple::fReal()))).build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_RdFormals);

// --- inp miss: the strong-semantics "no" verdict ---
void BM_T1_InpMiss(benchmark::State& state) {
  SmHarness h;
  const Bytes cmd =
      encodeAgs(AgsBuilder().when(guardInp(kTsMain, makePattern("absent", fInt()))).build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_InpMiss);

// --- marginal cost per body op: body contains N outs (marginal = slope) ---
void BM_T1_BodyOuts(benchmark::State& state) {
  SmHarness h;
  AgsBuilder b;
  b.when(guardTrue());
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    b.then(opOut(kTsMain, makeTemplate("body", static_cast<int>(i), 2.5)));
  }
  const Bytes cmd = encodeAgs(b.build());
  for (auto _ : state) h.apply(cmd);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_T1_BodyOuts)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- marginal cost per body inp (hit), steady state ---
void BM_T1_BodyInpHit(benchmark::State& state) {
  SmHarness h;
  const std::int64_t n = state.range(0);
  AgsBuilder seed;
  seed.when(guardTrue());
  for (std::int64_t i = 0; i < n; ++i) {
    seed.then(opOut(kTsMain, makeTemplate("body", static_cast<int>(i), 2.5)));
  }
  const Bytes seed_cmd = encodeAgs(seed.build());
  h.apply(seed_cmd);
  AgsBuilder b;
  b.when(guardTrue());
  for (std::int64_t i = 0; i < n; ++i) {
    b.then(opInp(kTsMain, makePatternTemplate("body", static_cast<int>(i), tuple::fReal())));
    b.then(opOut(kTsMain, makeTemplate("body", static_cast<int>(i), 2.5)));
  }
  const Bytes cmd = encodeAgs(b.build());
  for (auto _ : state) h.apply(cmd);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_T1_BodyInpHit)->Arg(1)->Arg(2)->Arg(4);

// --- disjunction: cost of trying k failing branches before the match ---
void BM_T1_Disjunction(benchmark::State& state) {
  SmHarness h;
  h.apply(encodeAgs(
      AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("hit", 1))).build()));
  AgsBuilder b;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    b.when(guardInp(kTsMain, makePattern("miss", static_cast<int>(i))));
  }
  b.when(guardRdp(kTsMain, makePattern("hit", fInt())));
  const Bytes cmd = encodeAgs(b.build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_Disjunction)->Arg(0)->Arg(1)->Arg(4)->Arg(8);

// --- matching against a populated space (1k same-signature tuples) ---
void BM_T1_InAmong1k(benchmark::State& state) {
  SmHarness h;
  for (int i = 0; i < 1000; ++i) {
    h.apply(encodeAgs(AgsBuilder()
                          .when(guardTrue())
                          .then(opOut(kTsMain, makeTemplate("bulk", i)))
                          .build()));
  }
  const Bytes cmd = encodeAgs(AgsBuilder()
                                  .when(guardIn(kTsMain, makePattern("bulk", 500)))
                                  .then(opOut(kTsMain, makeTemplate("bulk", 500)))
                                  .build());
  for (auto _ : state) h.apply(cmd);
}
BENCHMARK(BM_T1_InAmong1k);

}  // namespace

BENCHMARK_MAIN();

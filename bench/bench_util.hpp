// Shared helpers for the table-producing experiment harnesses (E2-E8).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>

#include "common/clock.hpp"
#include "common/stats.hpp"

namespace ftl::bench {

inline void header(const char* id, const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id, title);
  std::printf("paper artifact: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void row(const std::string& label, const LatencySamples& s, const char* unit = "us") {
  std::printf("%-34s n=%-6zu mean=%9.1f%s  p50=%9.1f%s  p95=%9.1f%s  max=%9.1f%s\n",
              label.c_str(), s.count(), s.mean(), unit, s.percentile(50), unit,
              s.percentile(95), unit, s.max(), unit);
}

inline bool waitUntil(const std::function<bool()>& pred, Millis timeout = Millis{10'000}) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(Millis{1});
  }
  return pred();
}

}  // namespace ftl::bench

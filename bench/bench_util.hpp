// Shared helpers for the table-producing experiment harnesses (E2-E8).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace ftl::bench {

inline void header(const char* id, const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s  %s\n", id, title);
  std::printf("paper artifact: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void row(const std::string& label, const LatencySamples& s, const char* unit = "us") {
  std::printf("%-34s n=%-6zu mean=%9.1f%s  p50=%9.1f%s  p95=%9.1f%s  max=%9.1f%s\n",
              label.c_str(), s.count(), s.mean(), unit, s.percentileOr0(50), unit,
              s.percentileOr0(95), unit, s.max(), unit);
}

inline bool waitUntil(const std::function<bool()>& pred, Millis timeout = Millis{10'000}) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(Millis{1});
  }
  return pred();
}

/// Render a LatencySamples as a JSON object fragment (microsecond fields).
inline std::string latencyJson(const LatencySamples& s) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"n\": %zu, \"mean_us\": %.2f, \"p50_us\": %.2f, \"p95_us\": %.2f, "
                "\"p99_us\": %.2f, \"max_us\": %.2f}",
                s.count(), s.mean(), s.percentileOr0(50), s.percentileOr0(95),
                s.percentileOr0(99), s.max());
  return buf;
}

/// The shared BENCH_*.json schema (docs/OBSERVABILITY.md):
///   {"benchmark": "<id>", "results": [<rows>], "obs": <obs::dump()>}
/// Each row is a pre-rendered JSON object; the trailing "obs" member embeds
/// the full metrics snapshot at write time, so every artifact carries the
/// counters that produced it.
inline void writeBenchJson(const char* path, const char* benchmark,
                           const std::vector<std::string>& result_rows) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"results\": [\n", benchmark);
  for (std::size_t i = 0; i < result_rows.size(); ++i) {
    std::fprintf(f, "    %s%s\n", result_rows[i].c_str(), i + 1 < result_rows.size() ? "," : "");
  }
  std::string snapshot = obs::dump();
  while (!snapshot.empty() && snapshot.back() == '\n') snapshot.pop_back();
  std::fprintf(f, "  ],\n  \"obs\": %s\n}\n", snapshot.c_str());
  std::fclose(f);
}

/// writeBenchJson with a per-run baseline: obs::resetAll() cannot zero
/// source-backed samples (the owning subsystems hold those numbers), so a
/// bench that wants this run's counts alone snapshots before the run
/// (obs::snapshotAll()) and passes the baseline here; the artifact gains an
/// "obs_delta" member holding current − baseline (obs::deltaSince).
inline void writeBenchJson(const char* path, const char* benchmark,
                           const std::vector<std::string>& result_rows,
                           const std::vector<obs::Sample>& baseline) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"results\": [\n", benchmark);
  for (std::size_t i = 0; i < result_rows.size(); ++i) {
    std::fprintf(f, "    %s%s\n", result_rows[i].c_str(), i + 1 < result_rows.size() ? "," : "");
  }
  std::string snapshot = obs::dump();
  while (!snapshot.empty() && snapshot.back() == '\n') snapshot.pop_back();
  std::string delta = obs::dumpDeltaJson(baseline);
  while (!delta.empty() && delta.back() == '\n') delta.pop_back();
  std::fprintf(f, "  ],\n  \"obs_delta\": %s,\n  \"obs\": %s\n}\n", delta.c_str(),
               snapshot.c_str());
  std::fclose(f);
}

}  // namespace ftl::bench

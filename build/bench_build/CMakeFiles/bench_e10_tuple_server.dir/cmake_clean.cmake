file(REMOVE_RECURSE
  "../bench/bench_e10_tuple_server"
  "../bench/bench_e10_tuple_server.pdb"
  "CMakeFiles/bench_e10_tuple_server.dir/bench_e10_tuple_server.cpp.o"
  "CMakeFiles/bench_e10_tuple_server.dir/bench_e10_tuple_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_tuple_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

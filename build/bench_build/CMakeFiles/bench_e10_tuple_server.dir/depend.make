# Empty dependencies file for bench_e10_tuple_server.
# This may be replaced when dependencies are built.

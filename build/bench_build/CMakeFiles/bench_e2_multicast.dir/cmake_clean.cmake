file(REMOVE_RECURSE
  "../bench/bench_e2_multicast"
  "../bench/bench_e2_multicast.pdb"
  "CMakeFiles/bench_e2_multicast.dir/bench_e2_multicast.cpp.o"
  "CMakeFiles/bench_e2_multicast.dir/bench_e2_multicast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

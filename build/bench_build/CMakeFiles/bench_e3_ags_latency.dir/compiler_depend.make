# Empty compiler generated dependencies file for bench_e3_ags_latency.
# This may be replaced when dependencies are built.

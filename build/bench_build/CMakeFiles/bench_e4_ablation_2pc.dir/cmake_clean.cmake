file(REMOVE_RECURSE
  "../bench/bench_e4_ablation_2pc"
  "../bench/bench_e4_ablation_2pc.pdb"
  "CMakeFiles/bench_e4_ablation_2pc.dir/bench_e4_ablation_2pc.cpp.o"
  "CMakeFiles/bench_e4_ablation_2pc.dir/bench_e4_ablation_2pc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_ablation_2pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e4_ablation_2pc.
# This may be replaced when dependencies are built.

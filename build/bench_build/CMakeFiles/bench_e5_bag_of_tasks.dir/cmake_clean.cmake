file(REMOVE_RECURSE
  "../bench/bench_e5_bag_of_tasks"
  "../bench/bench_e5_bag_of_tasks.pdb"
  "CMakeFiles/bench_e5_bag_of_tasks.dir/bench_e5_bag_of_tasks.cpp.o"
  "CMakeFiles/bench_e5_bag_of_tasks.dir/bench_e5_bag_of_tasks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_bag_of_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_e5_bag_of_tasks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_e6_dist_var"
  "../bench/bench_e6_dist_var.pdb"
  "CMakeFiles/bench_e6_dist_var.dir/bench_e6_dist_var.cpp.o"
  "CMakeFiles/bench_e6_dist_var.dir/bench_e6_dist_var.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_dist_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_e6_dist_var.
# This may be replaced when dependencies are built.

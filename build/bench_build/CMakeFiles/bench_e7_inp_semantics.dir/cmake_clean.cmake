file(REMOVE_RECURSE
  "../bench/bench_e7_inp_semantics"
  "../bench/bench_e7_inp_semantics.pdb"
  "CMakeFiles/bench_e7_inp_semantics.dir/bench_e7_inp_semantics.cpp.o"
  "CMakeFiles/bench_e7_inp_semantics.dir/bench_e7_inp_semantics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_inp_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

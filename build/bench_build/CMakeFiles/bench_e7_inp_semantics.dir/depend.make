# Empty dependencies file for bench_e7_inp_semantics.
# This may be replaced when dependencies are built.

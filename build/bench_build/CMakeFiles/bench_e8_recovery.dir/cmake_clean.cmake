file(REMOVE_RECURSE
  "../bench/bench_e8_recovery"
  "../bench/bench_e8_recovery.pdb"
  "CMakeFiles/bench_e8_recovery.dir/bench_e8_recovery.cpp.o"
  "CMakeFiles/bench_e8_recovery.dir/bench_e8_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

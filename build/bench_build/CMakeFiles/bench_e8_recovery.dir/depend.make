# Empty dependencies file for bench_e8_recovery.
# This may be replaced when dependencies are built.

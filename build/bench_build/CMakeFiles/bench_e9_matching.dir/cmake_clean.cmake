file(REMOVE_RECURSE
  "../bench/bench_e9_matching"
  "../bench/bench_e9_matching.pdb"
  "CMakeFiles/bench_e9_matching.dir/bench_e9_matching.cpp.o"
  "CMakeFiles/bench_e9_matching.dir/bench_e9_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_t1_ags_cost.cpp" "bench_build/CMakeFiles/bench_t1_ags_cost.dir/bench_t1_ags_cost.cpp.o" "gcc" "bench_build/CMakeFiles/bench_t1_ags_cost.dir/bench_t1_ags_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftlinda/CMakeFiles/ftl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ftl_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/ftl_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/consul/CMakeFiles/ftl_consul.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/ftl_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/ftl_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

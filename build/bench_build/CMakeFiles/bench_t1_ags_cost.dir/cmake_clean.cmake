file(REMOVE_RECURSE
  "../bench/bench_t1_ags_cost"
  "../bench/bench_t1_ags_cost.pdb"
  "CMakeFiles/bench_t1_ags_cost.dir/bench_t1_ags_cost.cpp.o"
  "CMakeFiles/bench_t1_ags_cost.dir/bench_t1_ags_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_ags_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_t1_ags_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../examples/bag_of_tasks"
  "../examples/bag_of_tasks.pdb"
  "CMakeFiles/bag_of_tasks.dir/bag_of_tasks.cpp.o"
  "CMakeFiles/bag_of_tasks.dir/bag_of_tasks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bag_of_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

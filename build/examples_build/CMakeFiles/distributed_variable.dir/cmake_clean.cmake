file(REMOVE_RECURSE
  "../examples/distributed_variable"
  "../examples/distributed_variable.pdb"
  "CMakeFiles/distributed_variable.dir/distributed_variable.cpp.o"
  "CMakeFiles/distributed_variable.dir/distributed_variable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_variable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for distributed_variable.
# This may be replaced when dependencies are built.

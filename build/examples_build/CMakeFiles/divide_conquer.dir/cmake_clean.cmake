file(REMOVE_RECURSE
  "../examples/divide_conquer"
  "../examples/divide_conquer.pdb"
  "CMakeFiles/divide_conquer.dir/divide_conquer.cpp.o"
  "CMakeFiles/divide_conquer.dir/divide_conquer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divide_conquer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

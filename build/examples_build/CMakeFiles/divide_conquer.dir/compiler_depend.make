# Empty compiler generated dependencies file for divide_conquer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../examples/matrix_multiply"
  "../examples/matrix_multiply.pdb"
  "CMakeFiles/matrix_multiply.dir/matrix_multiply.cpp.o"
  "CMakeFiles/matrix_multiply.dir/matrix_multiply.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../examples/piranha"
  "../examples/piranha.pdb"
  "CMakeFiles/piranha.dir/piranha.cpp.o"
  "CMakeFiles/piranha.dir/piranha.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/piranha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for piranha.
# This may be replaced when dependencies are built.

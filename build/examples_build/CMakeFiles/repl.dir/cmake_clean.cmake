file(REMOVE_RECURSE
  "../examples/repl"
  "../examples/repl.pdb"
  "CMakeFiles/repl.dir/repl.cpp.o"
  "CMakeFiles/repl.dir/repl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../examples/replicated_server"
  "../examples/replicated_server.pdb"
  "CMakeFiles/replicated_server.dir/replicated_server.cpp.o"
  "CMakeFiles/replicated_server.dir/replicated_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for replicated_server.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples_build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_bag_of_tasks]=] "/root/repo/build/examples/bag_of_tasks")
set_tests_properties([=[example_bag_of_tasks]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_variable]=] "/root/repo/build/examples/distributed_variable")
set_tests_properties([=[example_distributed_variable]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_piranha]=] "/root/repo/build/examples/piranha")
set_tests_properties([=[example_piranha]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_matrix_multiply]=] "/root/repo/build/examples/matrix_multiply")
set_tests_properties([=[example_matrix_multiply]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_replicated_server]=] "/root/repo/build/examples/replicated_server")
set_tests_properties([=[example_replicated_server]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/ftl_baseline.dir/central_server.cpp.o"
  "CMakeFiles/ftl_baseline.dir/central_server.cpp.o.d"
  "CMakeFiles/ftl_baseline.dir/two_phase.cpp.o"
  "CMakeFiles/ftl_baseline.dir/two_phase.cpp.o.d"
  "libftl_baseline.a"
  "libftl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftl_baseline.a"
)

# Empty compiler generated dependencies file for ftl_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ftl_common.dir/logging.cpp.o"
  "CMakeFiles/ftl_common.dir/logging.cpp.o.d"
  "CMakeFiles/ftl_common.dir/stats.cpp.o"
  "CMakeFiles/ftl_common.dir/stats.cpp.o.d"
  "libftl_common.a"
  "libftl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

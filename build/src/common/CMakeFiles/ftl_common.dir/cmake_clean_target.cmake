file(REMOVE_RECURSE
  "libftl_common.a"
)

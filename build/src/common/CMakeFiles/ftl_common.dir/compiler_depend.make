# Empty compiler generated dependencies file for ftl_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ftl_consul.dir/messages.cpp.o"
  "CMakeFiles/ftl_consul.dir/messages.cpp.o.d"
  "CMakeFiles/ftl_consul.dir/node.cpp.o"
  "CMakeFiles/ftl_consul.dir/node.cpp.o.d"
  "libftl_consul.a"
  "libftl_consul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_consul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftl_consul.a"
)

# Empty dependencies file for ftl_consul.
# This may be replaced when dependencies are built.

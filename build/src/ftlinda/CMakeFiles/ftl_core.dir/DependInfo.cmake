
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftlinda/checkpoint.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/checkpoint.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/ftlinda/executor.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/executor.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/executor.cpp.o.d"
  "/root/repo/src/ftlinda/failure_monitor.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/failure_monitor.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/failure_monitor.cpp.o.d"
  "/root/repo/src/ftlinda/ops.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/ops.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/ops.cpp.o.d"
  "/root/repo/src/ftlinda/protocol.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/protocol.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/protocol.cpp.o.d"
  "/root/repo/src/ftlinda/runtime.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/runtime.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/runtime.cpp.o.d"
  "/root/repo/src/ftlinda/scratch.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/scratch.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/scratch.cpp.o.d"
  "/root/repo/src/ftlinda/system.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/system.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/system.cpp.o.d"
  "/root/repo/src/ftlinda/ts_state_machine.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/ts_state_machine.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/ts_state_machine.cpp.o.d"
  "/root/repo/src/ftlinda/tuple_server.cpp" "src/ftlinda/CMakeFiles/ftl_core.dir/tuple_server.cpp.o" "gcc" "src/ftlinda/CMakeFiles/ftl_core.dir/tuple_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/ftl_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/ftl_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/ftl_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/consul/CMakeFiles/ftl_consul.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ftl_core.dir/checkpoint.cpp.o"
  "CMakeFiles/ftl_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/ftl_core.dir/executor.cpp.o"
  "CMakeFiles/ftl_core.dir/executor.cpp.o.d"
  "CMakeFiles/ftl_core.dir/failure_monitor.cpp.o"
  "CMakeFiles/ftl_core.dir/failure_monitor.cpp.o.d"
  "CMakeFiles/ftl_core.dir/ops.cpp.o"
  "CMakeFiles/ftl_core.dir/ops.cpp.o.d"
  "CMakeFiles/ftl_core.dir/protocol.cpp.o"
  "CMakeFiles/ftl_core.dir/protocol.cpp.o.d"
  "CMakeFiles/ftl_core.dir/runtime.cpp.o"
  "CMakeFiles/ftl_core.dir/runtime.cpp.o.d"
  "CMakeFiles/ftl_core.dir/scratch.cpp.o"
  "CMakeFiles/ftl_core.dir/scratch.cpp.o.d"
  "CMakeFiles/ftl_core.dir/system.cpp.o"
  "CMakeFiles/ftl_core.dir/system.cpp.o.d"
  "CMakeFiles/ftl_core.dir/ts_state_machine.cpp.o"
  "CMakeFiles/ftl_core.dir/ts_state_machine.cpp.o.d"
  "CMakeFiles/ftl_core.dir/tuple_server.cpp.o"
  "CMakeFiles/ftl_core.dir/tuple_server.cpp.o.d"
  "libftl_core.a"
  "libftl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

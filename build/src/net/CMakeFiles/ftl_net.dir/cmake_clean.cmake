file(REMOVE_RECURSE
  "CMakeFiles/ftl_net.dir/network.cpp.o"
  "CMakeFiles/ftl_net.dir/network.cpp.o.d"
  "libftl_net.a"
  "libftl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libftl_net.a"
)

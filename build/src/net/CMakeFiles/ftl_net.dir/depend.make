# Empty dependencies file for ftl_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ftl_rsm.dir/replica.cpp.o"
  "CMakeFiles/ftl_rsm.dir/replica.cpp.o.d"
  "libftl_rsm.a"
  "libftl_rsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_rsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

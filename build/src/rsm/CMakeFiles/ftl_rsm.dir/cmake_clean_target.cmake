file(REMOVE_RECURSE
  "libftl_rsm.a"
)

# Empty dependencies file for ftl_rsm.
# This may be replaced when dependencies are built.

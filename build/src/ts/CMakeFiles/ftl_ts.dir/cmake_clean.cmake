file(REMOVE_RECURSE
  "CMakeFiles/ftl_ts.dir/registry.cpp.o"
  "CMakeFiles/ftl_ts.dir/registry.cpp.o.d"
  "CMakeFiles/ftl_ts.dir/tuple_space.cpp.o"
  "CMakeFiles/ftl_ts.dir/tuple_space.cpp.o.d"
  "libftl_ts.a"
  "libftl_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

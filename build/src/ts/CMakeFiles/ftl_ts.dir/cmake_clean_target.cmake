file(REMOVE_RECURSE
  "libftl_ts.a"
)

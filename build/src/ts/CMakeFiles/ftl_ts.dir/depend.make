# Empty dependencies file for ftl_ts.
# This may be replaced when dependencies are built.

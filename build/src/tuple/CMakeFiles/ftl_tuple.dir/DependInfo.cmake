
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuple/parse.cpp" "src/tuple/CMakeFiles/ftl_tuple.dir/parse.cpp.o" "gcc" "src/tuple/CMakeFiles/ftl_tuple.dir/parse.cpp.o.d"
  "/root/repo/src/tuple/pattern.cpp" "src/tuple/CMakeFiles/ftl_tuple.dir/pattern.cpp.o" "gcc" "src/tuple/CMakeFiles/ftl_tuple.dir/pattern.cpp.o.d"
  "/root/repo/src/tuple/signature.cpp" "src/tuple/CMakeFiles/ftl_tuple.dir/signature.cpp.o" "gcc" "src/tuple/CMakeFiles/ftl_tuple.dir/signature.cpp.o.d"
  "/root/repo/src/tuple/tuple.cpp" "src/tuple/CMakeFiles/ftl_tuple.dir/tuple.cpp.o" "gcc" "src/tuple/CMakeFiles/ftl_tuple.dir/tuple.cpp.o.d"
  "/root/repo/src/tuple/value.cpp" "src/tuple/CMakeFiles/ftl_tuple.dir/value.cpp.o" "gcc" "src/tuple/CMakeFiles/ftl_tuple.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ftl_tuple.dir/parse.cpp.o"
  "CMakeFiles/ftl_tuple.dir/parse.cpp.o.d"
  "CMakeFiles/ftl_tuple.dir/pattern.cpp.o"
  "CMakeFiles/ftl_tuple.dir/pattern.cpp.o.d"
  "CMakeFiles/ftl_tuple.dir/signature.cpp.o"
  "CMakeFiles/ftl_tuple.dir/signature.cpp.o.d"
  "CMakeFiles/ftl_tuple.dir/tuple.cpp.o"
  "CMakeFiles/ftl_tuple.dir/tuple.cpp.o.d"
  "CMakeFiles/ftl_tuple.dir/value.cpp.o"
  "CMakeFiles/ftl_tuple.dir/value.cpp.o.d"
  "libftl_tuple.a"
  "libftl_tuple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

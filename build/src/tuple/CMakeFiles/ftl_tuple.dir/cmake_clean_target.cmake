file(REMOVE_RECURSE
  "libftl_tuple.a"
)

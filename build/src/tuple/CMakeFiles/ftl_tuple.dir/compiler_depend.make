# Empty compiler generated dependencies file for ftl_tuple.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_consul.dir/consul/fault_injection_test.cpp.o"
  "CMakeFiles/test_consul.dir/consul/fault_injection_test.cpp.o.d"
  "CMakeFiles/test_consul.dir/consul/membership_test.cpp.o"
  "CMakeFiles/test_consul.dir/consul/membership_test.cpp.o.d"
  "CMakeFiles/test_consul.dir/consul/multicast_test.cpp.o"
  "CMakeFiles/test_consul.dir/consul/multicast_test.cpp.o.d"
  "CMakeFiles/test_consul.dir/consul/recovery_test.cpp.o"
  "CMakeFiles/test_consul.dir/consul/recovery_test.cpp.o.d"
  "CMakeFiles/test_consul.dir/consul/stress_test.cpp.o"
  "CMakeFiles/test_consul.dir/consul/stress_test.cpp.o.d"
  "test_consul"
  "test_consul.pdb"
  "test_consul[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_consul.
# This may be replaced when dependencies are built.

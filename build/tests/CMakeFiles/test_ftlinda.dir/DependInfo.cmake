
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ftlinda/chaos_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/chaos_test.cpp.o.d"
  "/root/repo/tests/ftlinda/executor_edge_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/executor_edge_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/executor_edge_test.cpp.o.d"
  "/root/repo/tests/ftlinda/executor_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/executor_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/executor_test.cpp.o.d"
  "/root/repo/tests/ftlinda/helpers_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/helpers_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/helpers_test.cpp.o.d"
  "/root/repo/tests/ftlinda/idioms_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/idioms_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/idioms_test.cpp.o.d"
  "/root/repo/tests/ftlinda/metrics_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/metrics_test.cpp.o.d"
  "/root/repo/tests/ftlinda/ops_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/ops_test.cpp.o.d"
  "/root/repo/tests/ftlinda/property_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/property_test.cpp.o.d"
  "/root/repo/tests/ftlinda/protocol_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/protocol_test.cpp.o.d"
  "/root/repo/tests/ftlinda/recovery_stress_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/recovery_stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/recovery_stress_test.cpp.o.d"
  "/root/repo/tests/ftlinda/runtime_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/runtime_test.cpp.o.d"
  "/root/repo/tests/ftlinda/state_machine_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/state_machine_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/state_machine_test.cpp.o.d"
  "/root/repo/tests/ftlinda/system_edge_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/system_edge_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/system_edge_test.cpp.o.d"
  "/root/repo/tests/ftlinda/system_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/system_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/system_test.cpp.o.d"
  "/root/repo/tests/ftlinda/tuple_server_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/tuple_server_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/tuple_server_test.cpp.o.d"
  "/root/repo/tests/ftlinda/verbs_typed_test.cpp" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/verbs_typed_test.cpp.o" "gcc" "tests/CMakeFiles/test_ftlinda.dir/ftlinda/verbs_typed_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ftl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/consul/CMakeFiles/ftl_consul.dir/DependInfo.cmake"
  "/root/repo/build/src/rsm/CMakeFiles/ftl_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/tuple/CMakeFiles/ftl_tuple.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/ftl_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/ftlinda/CMakeFiles/ftl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ftl_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_ftlinda.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_rsm.
# This may be replaced when dependencies are built.

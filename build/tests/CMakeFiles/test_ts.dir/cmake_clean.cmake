file(REMOVE_RECURSE
  "CMakeFiles/test_ts.dir/ts/registry_test.cpp.o"
  "CMakeFiles/test_ts.dir/ts/registry_test.cpp.o.d"
  "CMakeFiles/test_ts.dir/ts/tuple_space_test.cpp.o"
  "CMakeFiles/test_ts.dir/ts/tuple_space_test.cpp.o.d"
  "test_ts"
  "test_ts.pdb"
  "test_ts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_ts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tuple.dir/tuple/parse_test.cpp.o"
  "CMakeFiles/test_tuple.dir/tuple/parse_test.cpp.o.d"
  "CMakeFiles/test_tuple.dir/tuple/pattern_test.cpp.o"
  "CMakeFiles/test_tuple.dir/tuple/pattern_test.cpp.o.d"
  "CMakeFiles/test_tuple.dir/tuple/signature_test.cpp.o"
  "CMakeFiles/test_tuple.dir/tuple/signature_test.cpp.o.d"
  "CMakeFiles/test_tuple.dir/tuple/tuple_test.cpp.o"
  "CMakeFiles/test_tuple.dir/tuple/tuple_test.cpp.o.d"
  "CMakeFiles/test_tuple.dir/tuple/value_test.cpp.o"
  "CMakeFiles/test_tuple.dir/tuple/value_test.cpp.o.d"
  "test_tuple"
  "test_tuple.pdb"
  "test_tuple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_consul[1]_include.cmake")
include("/root/repo/build/tests/test_rsm[1]_include.cmake")
include("/root/repo/build/tests/test_tuple[1]_include.cmake")
include("/root/repo/build/tests/test_ts[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_ftlinda[1]_include.cmake")

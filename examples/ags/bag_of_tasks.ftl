# Fault-tolerant bag-of-tasks (paper sec. 2): a worker withdraws a subtask
# and atomically leaves an in-progress marker, so a monitor process can
# regenerate the subtask if the worker's host fails mid-computation.

< in TSmain ("subtask", ?int)
  => out TSmain ("in_progress", ?0) >

# Worker finishes: publish the result and retire the marker in one atomic
# step (no window where the task is neither in progress nor done).

< in TSmain ("in_progress", ?int)
  => out TSmain ("result", ?0);
     out TSmain ("progress_count", 1) >

# Monitor notices a failed worker and regenerates its task; the `or true`
# branch makes the statement non-blocking.

< inp TSmain ("in_progress", ?int)
  => out TSmain ("subtask", ?0)
  or true => skip >

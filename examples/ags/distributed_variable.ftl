# Distributed variable (paper sec. 2.2): state lives as a ("x", value)
# tuple in the stable space; updates are atomic in/out pairs.

# Read the current value (rd does not withdraw).
< rd TSmain ("x", ?int) => skip >

# Atomic increment: the bound formal feeds an arithmetic template.
< in TSmain ("x", ?int) => out TSmain ("x", ?0 + 1) >

# Initialize-or-double: first branch fires when the variable exists.
< inp TSmain ("x", ?int) => out TSmain ("x", ?0 * 2)
  or true => out TSmain ("x", 1) >

# Quickstart for the FT-Linda dump format (ftl-lint checks this file in CI).
# Plain tuples and patterns use the tuple language of tuple/parse.hpp:

("job", 7, 2.5, true)
("job", ?int, ?real, ?bool)
("payload", b64"AQID")

# Atomic Guarded Statements use the paper's notation. ?N in a body template
# refers to guard formal N (numbered left to right).

< in TSmain ("job", ?int) => out TSmain ("done", ?0) >

# A boolean guard with an alternative branch:

< inp TSmain ("token", ?int) => out TSmain ("token", ?0 + 1)
  or true => out TSmain ("token", 0) >

# Tear down an auxiliary space (never TSmain — the verifier rejects that).

< true => destroy_TS ts7 >

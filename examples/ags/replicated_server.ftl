# Replicated server (paper sec. 4): requests are staged through a scratch
# (volatile, local) space, and the reply is moved into the stable space in
# one atomic statement so clients never observe partial state.

# Make a private scratch space for request staging.
< true => create_TS(volatile, private) >

# Take a request and stage it into scratch space 1.
< in TSmain ("request", ?int, ?str)
  => out scratch1 ("work", ?0, ?1) >

# Publish: move every finished answer from the scratch space to TSmain.
< true => move scratch1 TSmain ("answer", ?int, ?str) >

# Mirror a snapshot of results into an archive space without consuming them.
< true => copy ts3 ts4 ("answer", ?int, ?str) >

# Replicated server (paper sec. 4): requests are staged through a scratch
# (volatile, local) space, and the reply is moved into the stable space in
# one atomic statement so clients never observe partial state.

# Make a private scratch space for request staging.
< true => create_TS(volatile, private) >

# A client submits a request: (tag, request id, payload).
< true => out TSmain ("request", 4, "compute") >

# Take a request and stage it into scratch space 1.
< in TSmain ("request", ?int, ?str)
  => out scratch1 ("work", ?0, ?1) >

# The server computes: withdraw staged work, leave the answer beside it.
< in scratch1 ("work", ?int, ?str)
  => out scratch1 ("answer", ?0, "done") >

# Publish: move every finished answer from the scratch space to TSmain.
< true => move scratch1 TSmain ("answer", ?int, ?str) >

# The client awaits its answer (rd: the archive copy below still sees it).
< rd TSmain ("answer", 4, ?str) => skip >

# Mirror a snapshot of results into an archive space without consuming
# them. (Nothing in this dump reads ts4 — ops tooling does — so
# ftl-analyze reports the archive class as a leak, which is the point.)
< true => copy TSmain ts4 ("answer", ?int, ?str) >

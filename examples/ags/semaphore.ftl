# Semaphore (paper sec. 3): a counting semaphore is just tokens in the
# stable space — no data rides on them, the count IS the number of copies.
# The initial deposit below sets the count to 1 (a mutex); deposit more
# ("sem") tuples for a counting semaphore.

("sem")

# P(sem): block until a token exists, withdraw it atomically.

< in TSmain ("sem") => skip >

# V(sem): release — deposit a token back.

< true => out TSmain ("sem") >

# A barrier built the same way: the last arriver flips the count tuple
# into a "go" token every waiter reads (rd does not withdraw, so one
# deposit releases everyone).

("arrivals", 0)

< in TSmain ("arrivals", ?int) => out TSmain ("arrivals", ?0 + 1) >
< rd TSmain ("arrivals", 4) => out TSmain ("go") >
< rd TSmain ("go") => skip >

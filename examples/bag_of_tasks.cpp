// Fault-tolerant bag-of-tasks (paper §2.2 / §4.2).
//
//   ./examples/bag_of_tasks
//
// The classic replicated-worker paradigm: TSmain is seeded with subtask
// tuples; workers on every processor repeatedly withdraw a subtask, solve
// it, and deposit a result. The FT-Linda twist making it fault-tolerant:
//
//  * a worker claims a subtask ATOMICALLY with leaving an
//    ("in_progress", host, id) marker — one AGS, so a crash can never lose
//    the subtask between the in and the out;
//  * a monitor process blocks on in("failure", ?host); when a processor
//    crashes, the runtime deposits that failure tuple, and the monitor
//    atomically converts the dead worker's in-progress markers back into
//    subtask tuples.
//
// The demo crashes one processor mid-run and shows that all results are
// still produced, exactly once. The workload: count primes in [lo, hi)
// ranges.
#include <cstdio>

#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

std::int64_t countPrimes(std::int64_t lo, std::int64_t hi) {
  std::int64_t count = 0;
  for (std::int64_t n = std::max<std::int64_t>(lo, 2); n < hi; ++n) {
    bool prime = true;
    for (std::int64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) {
        prime = false;
        break;
      }
    }
    if (prime) ++count;
  }
  return count;
}

/// Atomically withdraw a subtask and mark it in-progress. Returns the task
/// id, or nullopt when the bag is empty.
std::optional<std::int64_t> claimSubtask(LindaApi& rt) {
  Reply r = requireReply(rt.tryExecute(
      AgsBuilder()
          .when(guardInp(kTsMain, makePattern("subtask", fInt(), fInt(), fInt())))
          .then(opOut(kTsMain, makeTemplate("in_progress", static_cast<int>(rt.host()),
                                            bound(0), bound(1), bound(2))))
          .build()));
  if (!r.succeeded) return std::nullopt;
  return r.boundInt(0);
}

void workerLoop(LindaApi& rt) {
  for (;;) {
    // Block until there is a subtask OR the shutdown signal; never exit just
    // because the bag is momentarily empty (the monitor may still regenerate
    // tasks a crashed worker held).
    Reply r = requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("subtask", fInt(), fInt(), fInt())))
            .then(opOut(kTsMain, makeTemplate("in_progress", static_cast<int>(rt.host()),
                                              bound(0), bound(1), bound(2))))
            .orWhen(guardIn(kTsMain, makePattern("shutdown")))
            .then(opOut(kTsMain, makeTemplate("shutdown")))  // pass it on
            .build()));
    if (r.branch == 1) return;  // shutdown
    const std::int64_t id = r.boundInt(0);
    const std::int64_t lo = r.boundInt(1);
    const std::int64_t hi = r.boundInt(2);
    const std::int64_t primes = countPrimes(lo, hi);
    // Retire the in-progress marker and deposit the result — atomically, so
    // the result appears exactly once no matter what happens around it.
    requireReply(rt.tryExecute(AgsBuilder()
                   .when(guardIn(kTsMain, makePattern("in_progress",
                                                      static_cast<int>(rt.host()), id, lo, hi)))
                   .then(opOut(kTsMain, makeTemplate("result", id, primes)))
                   .build()));
  }
}

/// The paper's monitor-process idiom: regenerate subtasks lost to crashes.
void monitorLoop(LindaApi& rt) {
  for (;;) {
    Reply fr = requireReply(rt.tryExecute(
        AgsBuilder().when(guardIn(kTsMain, makePattern("failure", fInt()))).build()));
    const std::int64_t dead = fr.boundInt(0);
    std::printf("[monitor] processor %lld failed — regenerating its subtasks\n",
                static_cast<long long>(dead));
    int regenerated = 0;
    for (;;) {
      // < inp("in_progress", dead, ?id, ?lo, ?hi) => out("subtask", id, lo, hi) >
      Reply r = requireReply(rt.tryExecute(
          AgsBuilder()
              .when(guardInp(kTsMain,
                             makePattern("in_progress", dead, fInt(), fInt(), fInt())))
              .then(opOut(kTsMain, makeTemplate("subtask", bound(0), bound(1), bound(2))))
              .build()));
      if (!r.succeeded) break;
      ++regenerated;
    }
    std::printf("[monitor] regenerated %d subtask(s)\n", regenerated);
  }
}

}  // namespace

int main() {
  constexpr int kHosts = 4;
  constexpr int kTasks = 24;
  constexpr std::int64_t kChunk = 2'000;

  FtLindaSystem sys({.hosts = kHosts, .monitor_main = true});

  // Seed the bag: task i counts primes in [i*chunk, (i+1)*chunk).
  for (int i = 0; i < kTasks; ++i) {
    sys.runtime(0).out(kTsMain, makeTuple("subtask", i, i * kChunk, (i + 1) * kChunk));
  }
  std::printf("seeded %d subtasks (%lld numbers each)\n", kTasks,
              static_cast<long long>(kChunk));

  // Monitor runs on processor 0 (the paper runs one monitor per TS; ours is
  // a normal FT-Linda process).
  sys.spawnProcess(0, monitorLoop);

  // Victim claims one subtask and crashes while holding it.
  auto held = claimSubtask(sys.runtime(3));
  std::printf("processor 3 claimed subtask %lld and is about to crash\n",
              static_cast<long long>(held.value()));
  sys.crash(3);

  // Workers on the survivors drain the bag.
  for (net::HostId h = 0; h < 3; ++h) sys.spawnProcess(h, workerLoop);

  // Wait until every result is present, then release the workers.
  auto& rt = sys.runtime(0);
  for (int i = 0; i < kTasks; ++i) {
    rt.rd(kTsMain, makePattern("result", i, fInt()));
  }
  rt.out(kTsMain, makeTuple("shutdown"));

  // Verify: exactly one result per task, and the values are correct.
  std::int64_t total = 0;
  bool all_correct = true;
  for (int i = 0; i < kTasks; ++i) {
    const Tuple r = rt.rd(kTsMain, makePattern("result", i, fInt()));
    const std::int64_t got = r.field(2).asInt();
    const std::int64_t want = countPrimes(i * kChunk, (i + 1) * kChunk);
    if (got != want) {
      std::printf("MISMATCH task %d: got %lld want %lld\n", i, static_cast<long long>(got),
                  static_cast<long long>(want));
      all_correct = false;
    }
    total += got;
  }
  std::printf("all %d results present despite the crash; total primes below %lld: %lld\n",
              kTasks, static_cast<long long>(kTasks * kChunk), static_cast<long long>(total));
  std::printf(all_correct ? "bag-of-tasks: OK\n" : "bag-of-tasks: FAILED\n");
  return all_correct ? 0 : 1;
}

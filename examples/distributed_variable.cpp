// The distributed variable (paper §2.2) — the motivating example for
// multi-op atomicity.
//
//   ./examples/distributed_variable
//
// A shared counter lives in tuple space as ("count", v). Updating it takes
// two tuple operations: in("count", ?v) then out("count", v+1). In standard
// Linda this pair is NOT atomic:
//   * if the updating process crashes between the two ops, the variable
//     VANISHES and every later reader blocks forever;
//   * two concurrent updaters can interleave and lose updates.
// FT-Linda closes both holes with one AGS:
//     < in("count", ?v) => out("count", v+1) >
//
// Part 1 demonstrates the crash anomaly on the central-server baseline
// (non-atomic in..out, crash in the middle). Part 2 runs concurrent
// FT-Linda updaters with a crash mid-run and shows the variable survives
// and ends exactly right.
#include <cstdio>
#include <thread>

#include "net/network.hpp"
#include "baseline/central_server.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

void baselineAnomaly() {
  std::printf("== Part 1: the anomaly in plain Linda (central server) ==\n");
  net::Network net(3);
  baseline::CentralServer server(net, 0);
  baseline::CentralClient updater(net, 1, 0, /*sync_out=*/true);
  baseline::CentralClient reader(net, 2, 0, /*sync_out=*/true);
  server.start();
  updater.start();
  reader.start();

  updater.out(makeTuple("count", 0));
  // The updater withdraws the variable...
  Tuple t = updater.in(makePattern("count", fInt()));
  std::printf("updater read count=%lld, then CRASHES before writing back\n",
              static_cast<long long>(t.field(1).asInt()));
  net.crash(1);  // ...and dies holding it. The variable is gone.

  auto gone = reader.inp(makePattern("count", fInt()));
  std::printf("reader's inp(\"count\", ?v): %s — the variable was LOST; any in() would\n"
              "block forever\n",
              gone ? "hit (unexpected!)" : "miss");
}

void ftLindaVersion() {
  std::printf("\n== Part 2: FT-Linda — atomic update survives crashes ==\n");
  constexpr int kHosts = 4;
  constexpr int kPerHost = 50;
  FtLindaSystem sys({.hosts = kHosts});
  sys.runtime(0).out(kTsMain, makeTuple("count", 0));

  // Concurrent updaters on every processor, each doing atomic increments.
  for (net::HostId h = 0; h < kHosts; ++h) {
    sys.spawnProcess(h, [](LindaApi& rt) {
      for (int i = 0; i < kPerHost; ++i) {
        requireReply(rt.tryExecute(AgsBuilder()
                       .when(guardIn(kTsMain, makePattern("count", fInt())))
                       .then(opOut(kTsMain,
                                   makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
                       .build()));
      }
      rt.out(kTsMain, makeTuple("updater_done", static_cast<int>(rt.host())));
    });
  }

  // Crash processor 3 somewhere in the middle of its work.
  std::this_thread::sleep_for(Millis{15});
  sys.crash(3);
  std::printf("crashed processor 3 mid-run\n");

  // Wait for the three survivors to finish.
  for (net::HostId h = 0; h < 3; ++h) {
    sys.runtime(0).rd(kTsMain, makePattern("updater_done", static_cast<int>(h)));
  }

  const Tuple final = sys.runtime(0).rd(kTsMain, makePattern("count", fInt()));
  const std::int64_t v = final.field(1).asInt();
  // The variable always exists (no crash window), survivors' increments all
  // landed, and the crashed host contributed 0..kPerHost atomic increments.
  const std::int64_t lo = 3 * kPerHost;
  const std::int64_t hi = 4 * kPerHost;
  std::printf("final count = %lld (survivors contributed %d; crashed host 0..%d)\n",
              static_cast<long long>(v), 3 * kPerHost, kPerHost);
  std::printf("variable present: yes; in expected range [%lld, %lld]: %s\n",
              static_cast<long long>(lo), static_cast<long long>(hi),
              (v >= lo && v <= hi) ? "yes" : "NO");
  if (v < lo || v > hi) std::exit(1);
}

}  // namespace

int main() {
  baselineAnomaly();
  ftLindaVersion();
  std::printf("\ndistributed-variable: OK\n");
  return 0;
}

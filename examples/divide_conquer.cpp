// Fault-tolerant divide and conquer (paper §4.1).
//
//   ./examples/divide_conquer
//
// Like the bag-of-tasks, but a worker withdrawing a task may SPLIT it into
// two smaller tasks instead of solving it — the bag holds work at mixed
// granularities. The split, like the solve, is a single AGS: withdrawing the
// parent and depositing both children happens atomically, so a crash can
// never lose half a split. Processor failures are handled by the same
// monitor idiom, and the example also demonstrates RECOVERY: the crashed
// processor rejoins mid-run (receiving a snapshot) and contributes again.
//
// Workload: adaptive numeric integration of f(x) = 4/(1+x^2) over [0,1]
// (which is pi), splitting intervals until they are narrow enough.
#include <cmath>
#include <cstdio>

#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::fReal;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

double f(double x) { return 4.0 / (1.0 + x * x); }

double simpson(double a, double b) {
  const double m = 0.5 * (a + b);
  return (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b));
}

constexpr double kMinWidth = 1.0 / 4096.0;

// Task tuple: ("task", lo, hi). In-progress marker: ("in_progress", host, lo, hi).
// Result piece: ("piece", value). A ("pending", ?int) counter tracks how many
// tasks are outstanding so the collector knows when integration is done.

void workerLoop(LindaApi& rt) {
  for (;;) {
    Reply r = requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("task", fReal(), fReal())))
            .then(opOut(kTsMain, makeTemplate("in_progress", static_cast<int>(rt.host()),
                                              bound(0), bound(1))))
            .orWhen(guardIn(kTsMain, makePattern("done")))
            .then(opOut(kTsMain, makeTemplate("done")))  // re-deposit for other workers
            .build()));
    if (r.branch == 1) return;  // termination signal
    const double lo = r.boundReal(0);
    const double hi = r.boundReal(1);

    if (hi - lo > kMinWidth) {
      // SPLIT: atomically retire the marker, deposit two children, and bump
      // the pending count by one (net: one task became two).
      const double mid = 0.5 * (lo + hi);
      requireReply(rt.tryExecute(
          AgsBuilder()
              .when(guardIn(kTsMain, makePattern("pending", fInt())))
              .then(opInp(kTsMain, makePatternTemplate("in_progress",
                                                       static_cast<int>(rt.host()), lo, hi)))
              .then(opOut(kTsMain, makeTemplate("task", lo, mid)))
              .then(opOut(kTsMain, makeTemplate("task", mid, hi)))
              .then(opOut(kTsMain, makeTemplate("pending", boundExpr(0, ArithOp::Add, 1))))
              .build()));
    } else {
      // SOLVE: atomically retire the marker, deposit the piece, decrement
      // pending.
      const double piece = simpson(lo, hi);
      requireReply(rt.tryExecute(
          AgsBuilder()
              .when(guardIn(kTsMain, makePattern("pending", fInt())))
              .then(opInp(kTsMain, makePatternTemplate("in_progress",
                                                       static_cast<int>(rt.host()), lo, hi)))
              .then(opOut(kTsMain, makeTemplate("piece", piece)))
              .then(opOut(kTsMain, makeTemplate("pending", boundExpr(0, ArithOp::Sub, 1))))
              .build()));
    }
  }
}

void monitorLoop(LindaApi& rt) {
  for (;;) {
    Reply fr = requireReply(rt.tryExecute(
        AgsBuilder().when(guardIn(kTsMain, makePattern("failure", fInt()))).build()));
    const std::int64_t dead = fr.boundInt(0);
    int regenerated = 0;
    for (;;) {
      Reply r = requireReply(rt.tryExecute(
          AgsBuilder()
              .when(guardInp(kTsMain, makePattern("in_progress", dead, fReal(), fReal())))
              .then(opOut(kTsMain, makeTemplate("task", bound(0), bound(1))))
              .build()));
      if (!r.succeeded) break;
      ++regenerated;
    }
    std::printf("[monitor] processor %lld failed; regenerated %d task(s)\n",
                static_cast<long long>(dead), regenerated);
  }
}

}  // namespace

int main() {
  constexpr int kHosts = 4;
  FtLindaSystem sys({.hosts = kHosts, .monitor_main = true});
  auto& rt0 = sys.runtime(0);

  rt0.out(kTsMain, makeTuple("task", 0.0, 1.0));
  rt0.out(kTsMain, makeTuple("pending", 1));
  std::printf("integrating 4/(1+x^2) over [0,1] adaptively (answer: pi)\n");

  sys.spawnProcess(0, monitorLoop);
  for (net::HostId h = 0; h < kHosts; ++h) sys.spawnProcess(h, workerLoop);

  // Let the computation fan out, then kill a worker host mid-run.
  std::this_thread::sleep_for(Millis{50});
  std::printf("crashing processor 3 mid-computation...\n");
  sys.crash(3);

  // ...and bring it back: it rejoins with a state snapshot and works again.
  std::this_thread::sleep_for(Millis{150});
  if (sys.recover(3)) {
    std::printf("processor 3 recovered and rejoined\n");
    sys.spawnProcess(3, workerLoop);
  }

  // Collector: wait until no tasks are outstanding.
  rt0.rd(kTsMain, makePattern("pending", 0));
  // Tell the workers to stop.
  rt0.out(kTsMain, makeTuple("done"));

  // Sweep all pieces into a scratch space atomically and sum them.
  const TsHandle scratch = rt0.createScratch();
  requireReply(rt0.tryExecute(AgsBuilder()
                  .when(guardTrue())
                  .then(opMove(kTsMain, scratch, makePatternTemplate("piece", fReal())))
                  .build()));
  double pi = 0.0;
  int pieces = 0;
  while (auto piece = rt0.inp(scratch, makePattern("piece", fReal()))) {
    pi += piece->field(1).asReal();
    ++pieces;
  }
  std::printf("collected %d pieces; integral = %.12f (pi = %.12f, err = %.2e)\n", pieces, pi,
              M_PI, std::fabs(pi - M_PI));
  // (The monitor process blocks on in("failure") forever; the system
  // destructor crashes all hosts, which unblocks and terminates it.)

  const bool ok = std::fabs(pi - M_PI) < 1e-6;
  std::printf(ok ? "divide-and-conquer: OK\n" : "divide-and-conquer: FAILED\n");
  return ok ? 0 : 1;
}

// Parallel matrix multiplication — the canonical Linda program (Gelernter
// 1985; Carriero & Gelernter's "How to Write Parallel Programs" opens with
// it), run fault-tolerantly on FT-Linda.
//
//   ./examples/matrix_multiply
//
// A and B live in tuple space as row/column tuples (read-only: workers rd
// them); the bag holds one task per result row; workers compute rows and
// deposit ("C", i, blob). The FT twist is the usual one: row tasks are
// claimed atomically with an in-progress marker, and the FailureMonitor
// helper regenerates rows a crashed workstation held. One workstation is
// crashed mid-multiply; the product is still complete and exact.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ftlinda/failure_monitor.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fBlob;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kN = 24;  // N x N matrices
constexpr int kHosts = 4;

Bytes encodeRow(const std::vector<std::int64_t>& row) {
  Writer w;
  for (auto v : row) w.i64(v);
  return w.take();
}

std::vector<std::int64_t> decodeRow(const Bytes& b) {
  Reader r(b);
  std::vector<std::int64_t> row(kN);
  for (auto& v : row) v = r.i64();
  return row;
}

void worker(LindaApi& rt) {
  // Cache B's columns locally in a scratch space: rd them once from the
  // stable space, keep private copies (the paper's scratch-space idiom).
  std::vector<std::vector<std::int64_t>> bcols(kN);
  for (int j = 0; j < kN; ++j) {
    const Tuple t = rt.rd(kTsMain, makePattern("Bcol", j, fBlob()));
    bcols[static_cast<std::size_t>(j)] = decodeRow(t.field(2).asBlob());
  }
  for (;;) {
    Reply r = requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("rowtask", fInt())))
            .then(opOut(kTsMain,
                        makeTemplate("in_progress", static_cast<int>(rt.host()), bound(0))))
            .orWhen(guardIn(kTsMain, makePattern("done")))
            .then(opOut(kTsMain, makeTemplate("done")))
            .build()));
    if (r.branch == 1) return;
    const int i = static_cast<int>(r.boundInt(0));
    const Tuple arow_t = rt.rd(kTsMain, makePattern("Arow", i, fBlob()));
    const auto arow = decodeRow(arow_t.field(2).asBlob());
    std::vector<std::int64_t> crow(kN, 0);
    for (int j = 0; j < kN; ++j) {
      std::int64_t acc = 0;
      for (int k = 0; k < kN; ++k) acc += arow[static_cast<std::size_t>(k)] *
                                          bcols[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
      crow[static_cast<std::size_t>(j)] = acc;
    }
    requireReply(rt.tryExecute(AgsBuilder()
                   .when(guardIn(kTsMain,
                                 makePattern("in_progress", static_cast<int>(rt.host()), i)))
                   .then(opOut(kTsMain, makeTemplate("C", i, Value(encodeRow(crow)))))
                   .build()));
  }
}

}  // namespace

int main() {
  FtLindaSystem sys({.hosts = kHosts, .monitor_main = true});
  auto& rt0 = sys.runtime(0);

  // Deterministic test matrices: A[i][k] = i+k, B[k][j] = k*j+1.
  std::vector<std::vector<std::int64_t>> a(kN, std::vector<std::int64_t>(kN));
  std::vector<std::vector<std::int64_t>> b(kN, std::vector<std::int64_t>(kN));
  for (int i = 0; i < kN; ++i) {
    for (int k = 0; k < kN; ++k) a[i][k] = i + k;
  }
  for (int k = 0; k < kN; ++k) {
    for (int j = 0; j < kN; ++j) b[k][j] = static_cast<std::int64_t>(k) * j + 1;
  }
  for (int i = 0; i < kN; ++i) rt0.out(kTsMain, makeTuple("Arow", i, encodeRow(a[i])));
  for (int j = 0; j < kN; ++j) {
    std::vector<std::int64_t> col(kN);
    for (int k = 0; k < kN; ++k) col[static_cast<std::size_t>(k)] = b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
    rt0.out(kTsMain, makeTuple("Bcol", j, encodeRow(col)));
  }
  for (int i = 0; i < kN; ++i) rt0.out(kTsMain, makeTuple("rowtask", i));
  std::printf("multiplying two %dx%d matrices across %d workstations\n", kN, kN, kHosts);

  // The reusable monitor-process helper regenerates rows of dead workers.
  sys.spawnProcess(0, [](LindaApi& rt) {
    FailureMonitor monitor(rt, kTsMain,
                           FailureMonitor::RegenRule{"in_progress", {ValueType::Int},
                                                     "rowtask"});
    monitor.run();
  });
  for (net::HostId h = 0; h < kHosts; ++h) sys.spawnProcess(h, worker);

  std::this_thread::sleep_for(Millis{25});
  std::printf("crashing workstation 3 mid-multiply...\n");
  sys.crash(3);

  // Collect all result rows, then stop the workers.
  std::vector<std::vector<std::int64_t>> c(kN);
  for (int i = 0; i < kN; ++i) {
    const Tuple t = rt0.in(kTsMain, makePattern("C", i, fBlob()));
    c[static_cast<std::size_t>(i)] = decodeRow(t.field(2).asBlob());
  }
  rt0.out(kTsMain, makeTuple("done"));

  // Verify against a sequential multiply.
  bool ok = true;
  for (int i = 0; i < kN && ok; ++i) {
    for (int j = 0; j < kN && ok; ++j) {
      std::int64_t want = 0;
      for (int k = 0; k < kN; ++k) want += a[i][k] * b[k][j];
      if (c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != want) {
        std::printf("MISMATCH at C[%d][%d]\n", i, j);
        ok = false;
      }
    }
  }
  std::printf("product verified %s despite the crash\n", ok ? "EXACT" : "WRONG");
  std::printf(ok ? "matrix-multiply: OK\n" : "matrix-multiply: FAILED\n");
  return ok ? 0 : 1;
}

// Adaptive parallelism ("Piranha" style) on FT-Linda.
//
//   ./examples/piranha
//
// The paper lists "ease of utilizing idle workstation cycles" among the
// bag-of-tasks advantages, citing Piranha: worker processes run on
// workstations only while they are idle; when an owner reclaims a machine
// the worker RETREATS (here: the host crashes — the harshest retreat), and
// machines join back in when idle again. FT-Linda makes this safe without
// any application-level checkpointing: claimed tasks are protected by
// in-progress markers + failure tuples, and a returning machine receives
// the stable tuple space by state transfer.
//
// The demo runs a bag of tasks while repeatedly "reclaiming" (crashing) and
// "idling" (recovering) workstations, then verifies every task produced
// exactly one result.
#include <cstdio>

#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kHosts = 4;
constexpr int kTasks = 120;

std::int64_t work(std::int64_t id) {
  // ~1 ms of "science" per task.
  const auto until = Clock::now() + Millis{1};
  std::int64_t acc = id;
  while (Clock::now() < until) {
    for (int i = 0; i < 500; ++i) acc = (acc * 1103515245 + 12345) & 0x7fffffff;
  }
  return acc % 997;
}

void piranhaWorker(LindaApi& rt) {
  for (;;) {
    Reply r = requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("task", fInt())))
            .then(opOut(kTsMain,
                        makeTemplate("in_progress", static_cast<int>(rt.host()), bound(0))))
            .orWhen(guardIn(kTsMain, makePattern("feeding_over")))
            .then(opOut(kTsMain, makeTemplate("feeding_over")))
            .build()));
    if (r.branch == 1) return;
    const std::int64_t id = r.boundInt(0);
    const std::int64_t value = work(id);
    requireReply(rt.tryExecute(AgsBuilder()
                   .when(guardIn(kTsMain,
                                 makePattern("in_progress", static_cast<int>(rt.host()), id)))
                   .then(opOut(kTsMain, makeTemplate("result", id, value)))
                   .build()));
  }
}

void monitor(LindaApi& rt) {
  for (;;) {
    Reply fr = requireReply(rt.tryExecute(
        AgsBuilder().when(guardIn(kTsMain, makePattern("failure", fInt()))).build()));
    const std::int64_t dead = fr.boundInt(0);
    int regen = 0;
    for (;;) {
      Reply r = requireReply(rt.tryExecute(AgsBuilder()
                               .when(guardInp(kTsMain, makePattern("in_progress", dead, fInt())))
                               .then(opOut(kTsMain, makeTemplate("task", bound(0))))
                               .build()));
      if (!r.succeeded) break;
      ++regen;
    }
    std::printf("[monitor] workstation %lld reclaimed; %d task(s) back in the bag\n",
                static_cast<long long>(dead), regen);
  }
}

}  // namespace

int main() {
  FtLindaSystem sys({.hosts = kHosts, .monitor_main = true});
  for (int i = 0; i < kTasks; ++i) sys.runtime(0).out(kTsMain, makeTuple("task", i));
  std::printf("seeded %d tasks across %d workstations\n", kTasks, kHosts);

  sys.spawnProcess(0, monitor);
  for (net::HostId h = 0; h < kHosts; ++h) sys.spawnProcess(h, piranhaWorker);

  // Owners come and go: churn workstations 2 and 3 while the bag drains.
  // (Host 0 stays up: it runs the monitor.)
  int churns = 0;
  for (int round = 0; round < 3; ++round) {
    for (net::HostId victim : {3u, 2u}) {
      std::this_thread::sleep_for(Millis{25});
      sys.crash(victim);
      ++churns;
      std::this_thread::sleep_for(Millis{120});
      if (sys.recover(victim)) {
        sys.spawnProcess(victim, piranhaWorker);  // idle again: rejoin the school
      }
    }
  }
  std::printf("churned workstations %d times while computing\n", churns);

  // Wait for all results, then end the feeding frenzy.
  auto& rt = sys.runtime(0);
  for (int i = 0; i < kTasks; ++i) rt.rd(kTsMain, makePattern("result", i, fInt()));
  rt.out(kTsMain, makeTuple("feeding_over"));

  // Verify exactly-once delivery: one result tuple per task id, no extras.
  std::size_t results = 0;
  for (const auto& t : sys.stateMachine(0).spaceContents(kTsMain)) {
    if (t.field(0).asStr() == "result") ++results;
  }
  const bool ok = results == static_cast<std::size_t>(kTasks);
  std::printf("results: %zu/%d (exactly once: %s)\n", results, kTasks, ok ? "yes" : "NO");
  std::printf(ok ? "piranha: OK\n" : "piranha: FAILED\n");
  return ok ? 0 : 1;
}

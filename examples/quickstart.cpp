// Quickstart: the FT-Linda basics in one file.
//
//   ./examples/quickstart
//
// Walks through: depositing/withdrawing tuples, associative matching with
// formals, an Atomic Guarded Statement (atomic read-modify-write),
// disjunction, a private scratch space, and strong inp semantics.
#include <cstdio>

#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

int main() {
  // Three simulated workstations, each hosting a replica of the stable
  // tuple space TSmain.
  FtLindaSystem sys({.hosts = 3});
  LindaApi& p0 = sys.runtime(0);
  LindaApi& p1 = sys.runtime(1);

  std::printf("== 1. out / in: generative communication ==\n");
  p0.out(kTsMain, makeTuple("greeting", "hello from processor 0"));
  Tuple t = p1.in(kTsMain, makePattern("greeting", fStr()));
  std::printf("processor 1 withdrew: %s\n", t.toString().c_str());

  std::printf("\n== 2. associative matching with formals ==\n");
  p0.out(kTsMain, makeTuple("point", 3, 4));
  p0.out(kTsMain, makeTuple("point", 6, 8));
  Tuple pt = p1.in(kTsMain, makePattern("point", 6, fInt()));  // actual 6 selects
  std::printf("matched (\"point\", 6, ?int) -> %s\n", pt.toString().c_str());

  std::printf("\n== 3. AGS: atomic read-modify-write ==\n");
  p0.out(kTsMain, makeTuple("count", 0));
  for (int i = 0; i < 5; ++i) {
    // < in("count", ?v) => out("count", v+1) >  — one atomic step, one
    // multicast message, no lost updates even with concurrent writers.
    requireReply(p1.tryExecute(AgsBuilder()
                   .when(guardIn(kTsMain, makePattern("count", fInt())))
                   .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
                   .build()));
  }
  std::printf("count after 5 atomic increments: %lld\n",
              static_cast<long long>(
                  p0.rd(kTsMain, makePattern("count", fInt())).field(1).asInt()));

  std::printf("\n== 4. disjunction: take whichever job kind is available ==\n");
  p0.out(kTsMain, makeTuple("easy_job", 1));
  Reply r = requireReply(p1.tryExecute(AgsBuilder()
                           .when(guardIn(kTsMain, makePattern("hard_job", fInt())))
                           .orWhen(guardIn(kTsMain, makePattern("easy_job", fInt())))
                           .build()));
  std::printf("branch taken: %d (0=hard, 1=easy)\n", r.branch);

  std::printf("\n== 5. scratch space: volatile, private, zero multicasts ==\n");
  TsHandle scratch = p0.createScratch();
  for (int i = 0; i < 3; ++i) p0.out(scratch, makeTuple("tmp", i));
  std::printf("scratch holds %zu tuples (never left processor 0)\n",
              p0.localTupleCount(scratch));
  // Atomically sweep matching results from the stable space into scratch.
  p1.out(kTsMain, makeTuple("result", 42));
  requireReply(p0.tryExecute(AgsBuilder()
                 .when(guardTrue())
                 .then(opMove(kTsMain, scratch, makePatternTemplate("result", fInt())))
                 .build()));
  std::printf("after move: scratch holds %zu tuples\n", p0.localTupleCount(scratch));

  std::printf("\n== 6. strong inp: a false verdict is a guarantee ==\n");
  auto miss = p0.inp(kTsMain, makePattern("absent"));
  std::printf("inp(\"absent\") -> %s (guaranteed: no such tuple existed at this\n"
              "point in the global total order — most Linda kernels cannot promise this)\n",
              miss ? "hit" : "miss");

  std::printf("\nquickstart done.\n");
  return 0;
}

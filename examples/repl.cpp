// Interactive FT-Linda shell — poke at a live replicated tuple space.
//
//   ./examples/repl
//
//   ftl[0]> out ("greeting", "hello", 42)
//   ftl[0]> host 2
//   ftl[2]> rdp ("greeting", ?str, ?int)
//   ("greeting", "hello", 42)
//   ftl[2]> crash 1
//   ftl[2]> list
//   ...
//
// Commands: out T | in P | rd P | inp P | rdp P | count P | list |
//           host N | crash N | recover N | monitor | metrics | stats |
//           help | quit
// (T is a tuple literal, P a pattern literal — see docs/API.md. `in`/`rd`
// block until a match arrives, like the real primitives.)
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "ftlinda/system.hpp"
#include "obs/metrics.hpp"
#include "tuple/parse.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;

namespace {

constexpr int kHosts = 4;

void help() {
  std::printf(
      "commands:\n"
      "  out (\"name\", 1, 2.5)      deposit a tuple\n"
      "  in  (\"name\", ?int, ?real) withdraw oldest match (BLOCKS)\n"
      "  rd  (pattern)              read oldest match (BLOCKS)\n"
      "  inp (pattern)              withdraw, no blocking (strong verdict)\n"
      "  rdp (pattern)              read, no blocking\n"
      "  count (pattern)            matching-tuple count\n"
      "  list                       dump the stable space\n"
      "  host N                     issue from processor N (0-%d)\n"
      "  crash N | recover N        fail-silent crash / rejoin with snapshot\n"
      "  monitor                    deposit (\"failure\", host) tuples on crashes\n"
      "  metrics                    state-machine op counters\n"
      "  stats                      full ftl::obs dump (Prometheus text):\n"
      "                             network, consul, state machine, runtime\n"
      "  help | quit\n",
      kHosts - 1);
}

}  // namespace

int main() {
  FtLindaSystem sys({.hosts = kHosts});
  net::HostId current = 0;
  std::printf("FT-Linda shell: %d simulated workstations, stable TSmain replicated on all.\n",
              kHosts);
  std::printf("type 'help' for commands.\n");

  std::string line;
  while (true) {
    std::printf("ftl[%u]> ", current);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream is(line);
    std::string cmd;
    is >> cmd;
    std::string rest;
    std::getline(is, rest);
    try {
      if (cmd.empty()) continue;
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        help();
      } else if (cmd == "out") {
        sys.runtime(current).out(kTsMain, tuple::parseTuple(rest));
      } else if (cmd == "in" || cmd == "rd") {
        const auto p = tuple::parsePattern(rest);
        const Tuple t = (cmd == "in") ? sys.runtime(current).in(kTsMain, p)
                                      : sys.runtime(current).rd(kTsMain, p);
        std::printf("%s\n", t.toString().c_str());
      } else if (cmd == "inp" || cmd == "rdp") {
        const auto p = tuple::parsePattern(rest);
        const auto t = (cmd == "inp") ? sys.runtime(current).inp(kTsMain, p)
                                      : sys.runtime(current).rdp(kTsMain, p);
        if (t) {
          std::printf("%s\n", t->toString().c_str());
        } else {
          std::printf("no match (guaranteed: none existed at this point of the order)\n");
        }
      } else if (cmd == "count") {
        std::size_t n = 0;
        const auto p = tuple::parsePattern(rest);
        for (const auto& t : sys.stateMachine(current).spaceContents(kTsMain)) {
          if (p.matches(t)) ++n;
        }
        std::printf("%zu\n", n);
      } else if (cmd == "list") {
        const auto contents = sys.stateMachine(current).spaceContents(kTsMain);
        for (const auto& t : contents) std::printf("  %s\n", t.toString().c_str());
        std::printf("(%zu tuple(s))\n", contents.size());
      } else if (cmd == "host") {
        const int h = std::stoi(rest);
        FTL_CHECK(h >= 0 && h < kHosts, "no such host");
        FTL_CHECK(sys.isUp(static_cast<net::HostId>(h)), "host is crashed");
        current = static_cast<net::HostId>(h);
      } else if (cmd == "crash") {
        const int h = std::stoi(rest);
        FTL_CHECK(h >= 0 && h < kHosts, "no such host");
        FTL_CHECK(static_cast<net::HostId>(h) != current, "switch hosts first");
        sys.crash(static_cast<net::HostId>(h));
        std::printf("processor %d crashed (fail-silent)\n", h);
      } else if (cmd == "recover") {
        const int h = std::stoi(rest);
        FTL_CHECK(h >= 0 && h < kHosts, "no such host");
        std::printf(sys.recover(static_cast<net::HostId>(h))
                        ? "processor %d rejoined with a state snapshot\n"
                        : "processor %d failed to rejoin\n",
                    h);
      } else if (cmd == "monitor") {
        sys.runtime(current).monitorFailures(kTsMain);
        std::printf("TSmain registered for failure tuples\n");
      } else if (cmd == "metrics") {
        const auto m = sys.stateMachine(current).metrics();
        std::printf("executed=%llu failed=%llu blocked=%llu woken=%llu errors=%llu\n",
                    static_cast<unsigned long long>(m.ags_executed),
                    static_cast<unsigned long long>(m.ags_failed),
                    static_cast<unsigned long long>(m.ags_blocked),
                    static_cast<unsigned long long>(m.ags_woken),
                    static_cast<unsigned long long>(m.ags_errors));
        std::printf("out=%llu inp=%llu rdp=%llu move=%llu copy=%llu failure_tuples=%llu\n",
                    static_cast<unsigned long long>(m.ops_out),
                    static_cast<unsigned long long>(m.ops_inp),
                    static_cast<unsigned long long>(m.ops_rdp),
                    static_cast<unsigned long long>(m.ops_move),
                    static_cast<unsigned long long>(m.ops_copy),
                    static_cast<unsigned long long>(m.failure_tuples));
      } else if (cmd == "stats") {
        // The whole deployment shares this process, so one dump covers every
        // host's network/consul/state-machine series (distinguished by their
        // {host=...}/{net=...} labels; docs/OBSERVABILITY.md has the catalog).
        std::fputs(obs::dumpPrometheus().c_str(), stdout);
      } else {
        std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
      }
    } catch (const ProcessorFailure& e) {
      std::printf("!! %s\n", e.what());
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::printf("bye\n");
  return 0;
}

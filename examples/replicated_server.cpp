// A fault-tolerant request/reply SERVICE on FT-Linda: replicated bank-
// account servers coordinating purely through tuple space.
//
//   ./examples/replicated_server
//
// The service pattern (a staple of the fault-tolerance literature the paper
// targets): clients deposit ("request", id, op, account, amount) tuples;
// any of several interchangeable server processes withdraws a request
// ATOMICALLY with marking it in service, applies it to the account tuples,
// and deposits ("reply", id, balance) — again in one AGS, so a server crash
// can never lose a request, apply it twice, or leave an account corrupted.
// A FailureMonitor returns in-service requests of a dead server host to the
// request pool. One server host is crashed mid-run; every client request
// still gets exactly one reply and the books balance exactly.
#include <atomic>
#include <cstdio>
#include <thread>

#include "ftlinda/failure_monitor.hpp"
#include "ftlinda/system.hpp"

using namespace ftl;
using namespace ftl::ftlinda;
using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

namespace {

constexpr int kAccounts = 4;
constexpr int kClients = 2;
constexpr int kRequestsPerClient = 30;
constexpr std::int64_t kOpDeposit = 0;
constexpr std::int64_t kOpWithdraw = 1;

void serverLoop(LindaApi& rt) {
  for (;;) {
    // Claim a request atomically with an in-service marker.
    Reply claim = requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("request", fInt(), fInt(), fInt(), fInt())))
            .then(opOut(kTsMain,
                        makeTemplate("in_service", static_cast<int>(rt.host()), bound(0),
                                     bound(1), bound(2), bound(3))))
            .orWhen(guardIn(kTsMain, makePattern("halt")))
            .then(opOut(kTsMain, makeTemplate("halt")))
            .build()));
    if (claim.branch == 1) return;
    const std::int64_t id = claim.boundInt(0);
    const std::int64_t op = claim.boundInt(1);
    const std::int64_t account = claim.boundInt(2);
    const std::int64_t amount = claim.boundInt(3);
    // Apply + retire marker + reply: ONE atomic statement. The account
    // update uses the guard binding, like the distributed variable.
    const ArithOp arith = (op == kOpDeposit) ? ArithOp::Add : ArithOp::Sub;
    requireReply(rt.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern("account", account, fInt())))
            .then(opInp(kTsMain,
                        makePatternTemplate("in_service", static_cast<int>(rt.host()), id, op,
                                            account, amount)))
            .then(opOut(kTsMain, makeTemplate("account", account, boundExpr(0, arith, amount))))
            .then(opOut(kTsMain, makeTemplate("reply", id, boundExpr(0, arith, amount))))
            .build()));
  }
}

}  // namespace

int main() {
  FtLindaSystem sys({.hosts = 4, .monitor_main = true});
  auto& rt0 = sys.runtime(0);
  for (int a = 0; a < kAccounts; ++a) {
    rt0.out(kTsMain, makeTuple("account", a, 1000));
  }
  std::printf("bank open: %d accounts at balance 1000; servers on hosts 2 and 3\n", kAccounts);

  // Monitor: a dead server's in-service requests go back to the pool.
  sys.spawnProcess(0, [](LindaApi& rt) {
    FailureMonitor monitor(
        rt, kTsMain,
        FailureMonitor::RegenRule{
            "in_service",
            {ValueType::Int, ValueType::Int, ValueType::Int, ValueType::Int},
            "request"});
    monitor.run();
  });
  // Two replicated server processes.
  sys.spawnProcess(2, serverLoop);
  sys.spawnProcess(3, serverLoop);

  // Clients: alternating deposit/withdraw of the same amount — net zero.
  std::atomic<int> replies{0};
  for (int c = 0; c < kClients; ++c) {
    sys.spawnProcess(static_cast<net::HostId>(c), [c, &replies](LindaApi& rt) {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int id = c * kRequestsPerClient + i;
        const std::int64_t op = (i % 2 == 0) ? kOpDeposit : kOpWithdraw;
        rt.out(kTsMain, makeTuple("request", id, op, id % kAccounts, 50));
        rt.in(kTsMain, makePattern("reply", id, fInt()));  // await completion
        replies.fetch_add(1);
      }
    });
  }

  // Crash one of the two server hosts while requests are flowing.
  std::this_thread::sleep_for(Millis{30});
  std::printf("crashing server host 3 mid-service...\n");
  sys.crash(3);

  // Wait for every reply.
  const auto deadline = Clock::now() + Millis{30'000};
  while (replies.load() < kClients * kRequestsPerClient && Clock::now() < deadline) {
    std::this_thread::sleep_for(Millis{5});
  }
  std::printf("replies received: %d/%d\n", replies.load(), kClients * kRequestsPerClient);
  rt0.out(kTsMain, makeTuple("halt"));

  // Audit: every client issued equal counts of +50 deposits and -50
  // withdrawals, so the TOTAL money in the bank must close exactly where it
  // opened — any lost or doubled request application would break the books.
  bool ok = replies.load() == kClients * kRequestsPerClient;
  std::int64_t total = 0;
  for (int a = 0; a < kAccounts; ++a) {
    const Tuple t = rt0.rd(kTsMain, makePattern("account", a, fInt()));
    total += t.field(2).asInt();
  }
  const std::int64_t expected = static_cast<std::int64_t>(kAccounts) * 1000;
  if (total != expected) {
    std::printf("books off by %lld — lost or doubled update!\n",
                static_cast<long long>(total - expected));
    ok = false;
  }
  std::printf("audit: total %lld == expected %lld: %s\n", static_cast<long long>(total),
              static_cast<long long>(expected), total == expected ? "yes" : "NO");
  std::printf(ok ? "replicated-server: OK\n" : "replicated-server: FAILED\n");
  return ok ? 0 : 1;
}

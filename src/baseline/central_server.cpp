#include "baseline/central_server.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace ftl::baseline {

namespace {

constexpr std::uint16_t kReqType = 10;
constexpr std::uint16_t kRepType = 11;
constexpr Micros kTick{5'000};

Bytes encodeRequest(std::uint64_t rid, LindaOp op, const Pattern* p, const Tuple* t) {
  Writer w;
  w.u64(rid);
  w.u8(static_cast<std::uint8_t>(op));
  if (op == LindaOp::Out) {
    t->encode(w);
  } else {
    p->encode(w);
  }
  return w.take();
}

Bytes encodeReply(std::uint64_t rid, bool found, const std::optional<Tuple>& t) {
  Writer w;
  w.u64(rid);
  w.boolean(found);
  w.boolean(t.has_value());
  if (t) t->encode(w);
  return w.take();
}

}  // namespace

CentralServer::CentralServer(net::Transport& net, net::HostId host)
    : net_(net), ep_(net.endpoint(host)), host_(host) {}

CentralServer::~CentralServer() {
  stop();
  if (service_.joinable()) service_.join();
}

void CentralServer::start() {
  service_ = std::thread([this] { serviceLoop(); });
}

void CentralServer::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stop_requested_ = true;
}

std::size_t CentralServer::tupleCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return space_.size();
}

std::size_t CentralServer::blockedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocked_.size();
}

void CentralServer::serviceLoop() {
  while (true) {
    auto m = ep_.recvFor(kTick);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) return;
    if (!m) {
      if (net_.isCrashed(host_)) return;  // crashed: tuple space is GONE
      continue;
    }
    handle(*m);
  }
}

void CentralServer::reply(net::HostId client, std::uint64_t rid, bool found,
                          const std::optional<Tuple>& t) {
  ep_.send(client, kRepType, encodeReply(rid, found, t));
}

void CentralServer::handle(const net::Message& m) {
  Reader r(m.payload);
  const std::uint64_t rid = r.u64();
  const auto op = static_cast<LindaOp>(r.u8());
  switch (op) {
    case LindaOp::Out: {
      space_.put(Tuple::decode(r));
      reply(m.src, rid, true, std::nullopt);  // ack (ignored by async clients)
      retryBlocked();
      break;
    }
    case LindaOp::In:
    case LindaOp::Rd: {
      Pattern p = Pattern::decode(r);
      auto t = (op == LindaOp::In) ? space_.take(p) : space_.read(p);
      if (t) {
        reply(m.src, rid, true, t);
      } else {
        blocked_.push_back(BlockedReq{m.src, rid, op, std::move(p)});
      }
      break;
    }
    case LindaOp::Inp:
    case LindaOp::Rdp: {
      Pattern p = Pattern::decode(r);
      auto t = (op == LindaOp::Inp) ? space_.take(p) : space_.read(p);
      reply(m.src, rid, t.has_value(), t);
      break;
    }
  }
}

void CentralServer::retryBlocked() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = blocked_.begin(); it != blocked_.end();) {
      auto t = (it->op == LindaOp::In) ? space_.take(it->pattern) : space_.read(it->pattern);
      if (t) {
        reply(it->client, it->request_id, true, t);
        it = blocked_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
}

CentralClient::CentralClient(net::Transport& net, net::HostId host, net::HostId server,
                             bool sync_out)
    : net_(net), ep_(net.endpoint(host)), host_(host), server_(server), sync_out_(sync_out) {}

CentralClient::~CentralClient() {
  stop();
  if (recv_.joinable()) recv_.join();
}

void CentralClient::start() {
  recv_ = std::thread([this] { recvLoop(); });
}

void CentralClient::stop() {
  stop_requested_.store(true);
}

void CentralClient::recvLoop() {
  while (!stop_requested_.load()) {
    auto m = ep_.recvFor(kTick);
    if (!m) {
      if (net_.isCrashed(host_)) return;
      continue;
    }
    if (m->type != kRepType) continue;
    Reader r(m->payload);
    const std::uint64_t rid = r.u64();
    const bool found = r.boolean();
    const bool has_tuple = r.boolean();
    std::optional<Tuple> t;
    if (has_tuple) t = Tuple::decode(r);
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      auto it = pending_.find(rid);
      if (it == pending_.end()) continue;
      slot = it->second;
      pending_.erase(it);
    }
    {
      std::lock_guard<std::mutex> lock(slot->m);
      slot->done = true;
      slot->found = found;
      slot->tuple = std::move(t);
    }
    slot->cv.notify_all();
  }
}

std::optional<Tuple> CentralClient::request(LindaOp op, const Pattern* p, const Tuple* t,
                                            bool expect_reply) {
  const std::uint64_t rid = next_rid_.fetch_add(1);
  std::shared_ptr<Slot> slot;
  if (expect_reply) {
    slot = std::make_shared<Slot>();
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(rid, slot);
  }
  ep_.send(server_, kReqType, encodeRequest(rid, op, p, t));
  if (!expect_reply) return std::nullopt;
  std::unique_lock<std::mutex> lock(slot->m);
  const bool blocking_op = (op == LindaOp::In || op == LindaOp::Rd);
  for (;;) {
    if (slot->cv.wait_for(lock, Millis{20}, [&] { return slot->done; })) break;
    if (stop_requested_.load()) throw Error("client stopped while waiting");
    if (net_.isCrashed(host_)) throw Error("client host crashed");
    if (net_.isCrashed(server_)) {
      server_lost_.store(true);
      throw Error("central tuple-space server lost");
    }
    if (!blocking_op) {
      // inp/rdp should answer promptly; a long silence means lost traffic.
      // (Simulated links are reliable unless configured otherwise.)
      continue;
    }
  }
  if (!slot->found) return std::nullopt;
  return slot->tuple;
}

void CentralClient::out(Tuple t) {
  request(LindaOp::Out, nullptr, &t, /*expect_reply=*/sync_out_);
}

Tuple CentralClient::in(Pattern p) {
  auto t = request(LindaOp::In, &p, nullptr, true);
  FTL_ENSURE(t.has_value(), "server answered in() without a tuple");
  return std::move(*t);
}

Tuple CentralClient::rd(Pattern p) {
  auto t = request(LindaOp::Rd, &p, nullptr, true);
  FTL_ENSURE(t.has_value(), "server answered rd() without a tuple");
  return std::move(*t);
}

std::optional<Tuple> CentralClient::inp(Pattern p) {
  return request(LindaOp::Inp, &p, nullptr, true);
}

std::optional<Tuple> CentralClient::rdp(Pattern p) {
  return request(LindaOp::Rdp, &p, nullptr, true);
}

}  // namespace ftl::baseline

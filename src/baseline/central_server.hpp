// Baseline 1: classic central-server Linda — the conventional network Linda
// kernel the paper contrasts with (no replication, no failure handling).
//
// One host runs the tuple-space server; clients on other hosts send
// out/in/rd/inp/rdp requests over the simulated network. Two properties make
// it the foil for FT-Linda's evaluation:
//  - a server crash loses the entire tuple space (E5: tasks vanish);
//  - `out` is asynchronous by default, as in real Linda kernels — a
//    subsequent inp elsewhere may miss a tuple that was already out()'d
//    (weak inp semantics, E7). Synchronous mode is available for the
//    latency comparisons.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "net/transport.hpp"
#include "ts/tuple_space.hpp"

namespace ftl::baseline {

using ts::TupleSpace;
using tuple::Pattern;
using tuple::Tuple;

enum class LindaOp : std::uint8_t { Out = 0, In = 1, Rd = 2, Inp = 3, Rdp = 4 };

/// The tuple-space server. Runs a service thread on its host until the host
/// crashes or stop() is called.
class CentralServer {
 public:
  CentralServer(net::Transport& net, net::HostId host);
  ~CentralServer();

  CentralServer(const CentralServer&) = delete;
  CentralServer& operator=(const CentralServer&) = delete;

  void start();
  void stop();

  net::HostId host() const { return host_; }

  /// Introspection for tests/benches.
  std::size_t tupleCount() const;
  std::size_t blockedCount() const;

 private:
  struct BlockedReq {
    net::HostId client;
    std::uint64_t request_id;
    LindaOp op;  // In or Rd
    Pattern pattern;
  };

  void serviceLoop();
  void handle(const net::Message& m);
  void reply(net::HostId client, std::uint64_t rid, bool found,
             const std::optional<Tuple>& t);
  void retryBlocked();

  net::Transport& net_;
  net::Endpoint ep_;
  const net::HostId host_;

  mutable std::mutex mutex_;
  bool stop_requested_ = false;
  TupleSpace space_;
  std::deque<BlockedReq> blocked_;
  std::thread service_;
};

/// Client library bound to one host.
class CentralClient {
 public:
  /// `sync_out=false` reproduces the conventional asynchronous out.
  CentralClient(net::Transport& net, net::HostId host, net::HostId server, bool sync_out = false);
  ~CentralClient();

  CentralClient(const CentralClient&) = delete;
  CentralClient& operator=(const CentralClient&) = delete;

  void start();
  void stop();

  void out(Tuple t);
  Tuple in(Pattern p);
  Tuple rd(Pattern p);
  std::optional<Tuple> inp(Pattern p);
  std::optional<Tuple> rdp(Pattern p);

  /// True once the server stopped answering (crashed): calls fail fast.
  bool serverLost() const { return server_lost_.load(); }
  /// Give up waiting for replies after this long (server crash detection).
  void setTimeout(Micros t) { timeout_ = t; }

 private:
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    bool found = false;
    std::optional<Tuple> tuple;
  };

  std::optional<Tuple> request(LindaOp op, const Pattern* p, const Tuple* t, bool expect_reply);
  void recvLoop();

  net::Transport& net_;
  net::Endpoint ep_;
  const net::HostId host_;
  const net::HostId server_;
  const bool sync_out_;
  Micros timeout_{2'000'000};

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> server_lost_{false};
  std::atomic<std::uint64_t> next_rid_{1};
  std::mutex pending_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Slot>> pending_;
  std::thread recv_;
};

}  // namespace ftl::baseline

#include "baseline/two_phase.hpp"

#include "common/assert.hpp"

namespace ftl::baseline {

namespace {

// Message types (client -> replica and replica -> client).
constexpr std::uint16_t kLockReq = 20;
constexpr std::uint16_t kLockGrant = 21;
constexpr std::uint16_t kPrepare = 22;
constexpr std::uint16_t kVote = 23;
constexpr std::uint16_t kCommit = 24;   // payload carries apply flag
constexpr std::uint16_t kAck = 25;
constexpr Micros kTick{5'000};

Bytes withTxid(std::uint64_t txid, const Bytes& rest = {}) {
  Writer w;
  w.u64(txid);
  w.raw(rest);
  return w.take();
}

}  // namespace

Bytes UpdateSpec::encode() const {
  Writer w;
  w.u16(static_cast<std::uint16_t>(takes.size()));
  for (const auto& p : takes) p.encode(w);
  w.u16(static_cast<std::uint16_t>(puts.size()));
  for (const auto& t : puts) t.encode(w);
  return w.take();
}

UpdateSpec UpdateSpec::decode(const Bytes& b) {
  Reader r(b);
  UpdateSpec s;
  const std::uint16_t nt = r.u16();
  for (std::uint16_t i = 0; i < nt; ++i) s.takes.push_back(Pattern::decode(r));
  const std::uint16_t np = r.u16();
  for (std::uint16_t i = 0; i < np; ++i) s.puts.push_back(Tuple::decode(r));
  return s;
}

TwoPcReplica::TwoPcReplica(net::Transport& net, net::HostId host)
    : net_(net), ep_(net.endpoint(host)), host_(host) {}

TwoPcReplica::~TwoPcReplica() {
  stop();
  if (service_.joinable()) service_.join();
}

void TwoPcReplica::start() {
  service_ = std::thread([this] { serviceLoop(); });
}

void TwoPcReplica::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stop_requested_ = true;
}

std::size_t TwoPcReplica::tupleCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return space_.size();
}

void TwoPcReplica::seed(Tuple t) {
  std::lock_guard<std::mutex> lock(mutex_);
  space_.put(std::move(t));
}

void TwoPcReplica::serviceLoop() {
  while (true) {
    auto m = ep_.recvFor(kTick);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) return;
    if (!m) {
      if (net_.isCrashed(host_)) return;
      continue;
    }
    handle(*m);
  }
}

void TwoPcReplica::grantNext() {
  if (lock_holder_ || lock_waiters_.empty()) return;
  auto [txid, client] = lock_waiters_.front();
  lock_waiters_.pop_front();
  lock_holder_ = txid;
  lock_client_ = client;
  ep_.send(client, kLockGrant, withTxid(txid));
}

void TwoPcReplica::handle(const net::Message& m) {
  Reader r(m.payload);
  const std::uint64_t txid = r.u64();
  switch (m.type) {
    case kLockReq: {
      lock_waiters_.emplace_back(txid, m.src);
      grantNext();
      break;
    }
    case kPrepare: {
      FTL_CHECK(lock_holder_ == txid, "prepare without lock");
      UpdateSpec spec = UpdateSpec::decode(Bytes(m.payload.begin() + 8, m.payload.end()));
      // Vote yes iff every take has a match (checked non-destructively:
      // distinct patterns are assumed to match distinct tuples here, which
      // holds for the bench/test workloads).
      bool ok = true;
      for (const auto& p : spec.takes) {
        if (!space_.read(p)) {
          ok = false;
          break;
        }
      }
      if (ok) prepared_[txid] = std::move(spec);
      Writer w;
      w.u64(txid);
      w.boolean(ok);
      ep_.send(m.src, kVote, w.take());
      break;
    }
    case kCommit: {
      const bool apply = r.boolean();
      auto it = prepared_.find(txid);
      if (apply && it != prepared_.end()) {
        for (const auto& p : it->second.takes) space_.take(p);
        for (const auto& t : it->second.puts) space_.put(t);
      }
      if (it != prepared_.end()) prepared_.erase(it);
      if (lock_holder_ == txid) {
        lock_holder_.reset();
        lock_client_ = net::kNoHost;
      }
      ep_.send(m.src, kAck, withTxid(txid));
      grantNext();
      break;
    }
    default:
      break;
  }
}

TwoPcClient::TwoPcClient(net::Transport& net, net::HostId host, std::vector<net::HostId> replicas)
    : net_(net),
      ep_(net.endpoint(host)),
      host_(host),
      replicas_(std::move(replicas)),
      // Disjoint txid ranges per client host.
      next_txid_(static_cast<std::uint64_t>(host) << 32 | 1) {}

TwoPcClient::~TwoPcClient() {
  stop();
  if (recv_.joinable()) recv_.join();
}

void TwoPcClient::start() {
  recv_ = std::thread([this] { recvLoop(); });
}

void TwoPcClient::stop() {
  stop_requested_.store(true);
  cv_.notify_all();
}

void TwoPcClient::recvLoop() {
  while (!stop_requested_.load()) {
    auto m = ep_.recvFor(kTick);
    if (!m) {
      if (net_.isCrashed(host_)) return;
      continue;
    }
    Reader r(m->payload);
    const std::uint64_t txid = r.u64();
    bool ok = true;
    if (m->type == kVote) ok = r.boolean();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (round_ && round_->txid == txid && round_->expect == m->type) {
        round_->replies += 1;
        round_->all_ok = round_->all_ok && ok;
      }
    }
    cv_.notify_all();
  }
}

bool TwoPcClient::roundTrip(std::uint16_t type, std::uint16_t expect, std::uint64_t txid,
                            const Bytes& payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    round_ = Round{txid, expect, 0, true};
  }
  for (net::HostId r : replicas_) ep_.send(r, type, payload);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    return stop_requested_.load() || (round_ && round_->replies == replicas_.size());
  });
  FTL_CHECK(!stop_requested_.load(), "2PC client stopped mid-transaction");
  const bool ok = round_->all_ok;
  round_.reset();
  return ok;
}

bool TwoPcClient::atomicUpdate(const UpdateSpec& spec) {
  const std::uint64_t txid = next_txid_.fetch_add(1);
  // Round 1: acquire the global lock at every replica.
  roundTrip(kLockReq, kLockGrant, txid, withTxid(txid));
  // Round 2: prepare + vote.
  const bool ok = roundTrip(kPrepare, kVote, txid, withTxid(txid, spec.encode()));
  // Round 3: commit (or abort) + ack; releases the lock.
  Writer w;
  w.u64(txid);
  w.boolean(ok);
  roundTrip(kCommit, kAck, txid, w.take());
  return ok;
}

}  // namespace ftl::baseline

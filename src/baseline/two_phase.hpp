// Baseline 2: lock + two-phase-commit replicated tuple space, in the style
// of the replicated-Linda designs the paper contrasts with (Xu/Liskov [41]
// and relatives): tuples are replicated on every host, and an atomic update
// (withdraw + deposit) locks the replicas, prepares, votes, and commits —
// multiple rounds of messages per update, versus FT-Linda's single atomic
// multicast per AGS. The E4 ablation measures exactly this difference.
//
// The protocol here is deliberately the LIGHTEST defensible variant (one
// global lock, combined lock+grant, prepare/vote, commit/ack = 6n one-way
// messages per update), so the comparison is conservative.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "ts/tuple_space.hpp"

namespace ftl::baseline {

using ts::TupleSpace;
using tuple::Pattern;
using tuple::Tuple;

/// One atomic replicated update: withdraw every `takes` match-first tuple,
/// then deposit every `puts` tuple. Aborts (voted down) if any take misses.
struct UpdateSpec {
  std::vector<Pattern> takes;
  std::vector<Tuple> puts;

  Bytes encode() const;
  static UpdateSpec decode(const Bytes& b);
};

/// A replica server holding one copy of the tuple space plus the lock.
class TwoPcReplica {
 public:
  TwoPcReplica(net::Transport& net, net::HostId host);
  ~TwoPcReplica();

  TwoPcReplica(const TwoPcReplica&) = delete;
  TwoPcReplica& operator=(const TwoPcReplica&) = delete;

  void start();
  void stop();

  std::size_t tupleCount() const;
  /// Direct local seed (bench setup only; not part of the protocol).
  void seed(Tuple t);

 private:
  void serviceLoop();
  void handle(const net::Message& m);
  void grantNext();

  net::Transport& net_;
  net::Endpoint ep_;
  const net::HostId host_;

  mutable std::mutex mutex_;
  bool stop_requested_ = false;
  TupleSpace space_;
  std::optional<std::uint64_t> lock_holder_;      // txid
  net::HostId lock_client_ = net::kNoHost;
  std::deque<std::pair<std::uint64_t, net::HostId>> lock_waiters_;
  std::map<std::uint64_t, UpdateSpec> prepared_;  // txid -> staged spec
  std::thread service_;
};

/// Client driving the lock/2PC protocol against a fixed replica set.
class TwoPcClient {
 public:
  TwoPcClient(net::Transport& net, net::HostId host, std::vector<net::HostId> replicas);
  ~TwoPcClient();

  TwoPcClient(const TwoPcClient&) = delete;
  TwoPcClient& operator=(const TwoPcClient&) = delete;

  void start();
  void stop();

  /// Run one atomic update across all replicas. Returns true if committed
  /// (every replica's takes matched), false if aborted.
  bool atomicUpdate(const UpdateSpec& spec);

 private:
  enum class Phase : std::uint8_t;
  /// Send `type` to all replicas and wait for one reply of `expect` each.
  /// Returns the AND of the boolean flags in the replies.
  bool roundTrip(std::uint16_t type, std::uint16_t expect, std::uint64_t txid,
                 const Bytes& payload);
  void recvLoop();

  net::Transport& net_;
  net::Endpoint ep_;
  const net::HostId host_;
  const std::vector<net::HostId> replicas_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> next_txid_;

  std::mutex mutex_;
  std::condition_variable cv_;
  struct Round {
    std::uint64_t txid = 0;
    std::uint16_t expect = 0;
    std::size_t replies = 0;
    bool all_ok = true;
  };
  std::optional<Round> round_;
  std::thread recv_;
};

}  // namespace ftl::baseline

// Epoch-scoped bump allocator for the apply hot path.
//
// The replicated delivery path used to heap-allocate a fresh Bytes per
// delivered command (log entry -> apply-buffer copy). The arena replaces
// that with a bump pointer into reusable blocks: allocations are a pointer
// increment, and the WHOLE epoch is freed at once by reset() at an
// applyBatch boundary. Blocks are retained across epochs, so a steady-state
// apply loop performs zero heap traffic.
//
// LIFETIME: everything allocated from an arena — including every BytesView
// returned by copy() and every container using ArenaAllocator — dies at the
// next reset(). Holding an allocation across an epoch is the same bug as
// holding a view past its datagram; ArenaToken (below) makes it checkable:
// take a token when borrowing, and require() it before dereferencing.
// tests/common/arena_test.cpp and the ASan-gated lifetime tests exercise
// both sides.
//
// Thread-compatibility: an Arena is confined to one thread (the consul
// service/apply thread); it is NOT internally synchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/serde.hpp"

namespace ftl {

class Arena;

/// Liveness witness for one arena epoch. alive() is true until the arena's
/// next reset() (or destruction). The PR 5 Endpoint pattern: the arena owns
/// a shared tag per epoch; tokens hold a weak reference to it.
class ArenaToken {
 public:
  ArenaToken() = default;

  /// True while the epoch this token was taken in is still current.
  bool alive() const { return !tag_.expired(); }

  /// Throws ContractViolation when the epoch has ended (use-after-reset).
  void require(const char* what) const {
    FTL_REQUIRE(alive(), what ? what : "arena epoch ended (use-after-reset)");
  }

 private:
  friend class Arena;
  explicit ArenaToken(std::weak_ptr<const std::uint64_t> tag) : tag_(std::move(tag)) {}
  std::weak_ptr<const std::uint64_t> tag_;
};

class Arena {
 public:
  explicit Arena(std::size_t block_size = 64 * 1024)
      : block_size_(block_size), tag_(std::make_shared<const std::uint64_t>(0)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `n` bytes. Valid until the next reset().
  void* allocate(std::size_t n, std::size_t align = alignof(std::max_align_t)) {
    FTL_REQUIRE(align != 0 && (align & (align - 1)) == 0, "alignment must be a power of two");
    if (n == 0) n = 1;
    for (;;) {
      if (block_ < blocks_.size()) {
        // Align the ADDRESS, not the offset: block bases only carry the
        // default operator-new alignment.
        const auto base = reinterpret_cast<std::uintptr_t>(blocks_[block_].data.get());
        const std::size_t aligned =
            static_cast<std::size_t>(((base + offset_ + align - 1) & ~(align - 1)) - base);
        if (aligned + n <= blocks_[block_].size) {
          void* p = blocks_[block_].data.get() + aligned;
          offset_ = aligned + n;
          allocated_ += n;
          return p;
        }
        // Current (retained) block is full or too small: move to the next.
        ++block_;
        offset_ = 0;
        continue;
      }
      // Out of retained blocks: grow (oversized requests get their own).
      const std::size_t want = n + align > block_size_ ? n + align : block_size_;
      Block b;
      b.data = std::make_unique<std::uint8_t[]>(want);
      b.size = want;
      blocks_.push_back(std::move(b));
      block_ = blocks_.size() - 1;
      offset_ = 0;
    }
  }

  /// Copy `src` into the arena; the returned view is valid until reset().
  BytesView copy(BytesView src) {
    if (src.empty()) return BytesView();
    auto* dst = static_cast<std::uint8_t*>(allocate(src.size, 1));
    std::memcpy(dst, src.data, src.size);
    return BytesView(dst, src.size);
  }

  /// End the current epoch: bulk-free every allocation (blocks are kept for
  /// reuse), invalidate outstanding tokens, and start epoch+1.
  void reset() {
    block_ = 0;
    offset_ = 0;
    allocated_ = 0;
    ++resets_;
    tag_ = std::make_shared<const std::uint64_t>(resets_);
  }

  /// Witness for the CURRENT epoch (expires at the next reset()).
  ArenaToken token() const { return ArenaToken(tag_); }

  /// Bytes handed out in the current epoch.
  std::size_t bytesAllocated() const { return allocated_; }
  /// Blocks owned (high-water mark across epochs).
  std::size_t blockCount() const { return blocks_.size(); }
  /// Completed epochs (reset() calls).
  std::uint64_t resets() const { return resets_; }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // current block index (may be == blocks_.size())
  std::size_t offset_ = 0;  // bump offset within the current block
  std::size_t allocated_ = 0;
  std::uint64_t resets_ = 0;
  std::shared_ptr<const std::uint64_t> tag_;  // epoch liveness tag
};

/// Minimal std-allocator adapter over an Arena: containers built with it
/// bump-allocate and never free (the epoch reset frees them wholesale).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // bulk-freed at reset()

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace ftl

// Lightweight contract-checking macros used throughout FT-Linda.
//
// FTL_REQUIRE  -- precondition on a public API; violation is a caller bug.
// FTL_ENSURE   -- postcondition / internal invariant; violation is our bug.
// FTL_CHECK    -- runtime condition that can legitimately fail (I/O, config);
//                 throws ftl::Error with the supplied message.
//
// All three are always on: this library coordinates replicated state, and a
// silently-corrupted replica is far worse than an exception.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ftl {

/// Base exception for all errors raised by the FT-Linda libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised by FTL_REQUIRE / FTL_ENSURE on contract violations.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contractFail(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

[[noreturn]] inline void checkFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ftl

#define FTL_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ftl::detail::contractFail("precondition", #cond, __FILE__, __LINE__, \
                                  (msg));                                   \
  } while (0)

#define FTL_ENSURE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ftl::detail::contractFail("invariant", #cond, __FILE__, __LINE__,  \
                                  (msg));                                  \
  } while (0)

#define FTL_CHECK(cond, msg)                                           \
  do {                                                                 \
    if (!(cond)) ::ftl::detail::checkFail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

// FTL_DASSERT -- debug-only invariant for checks too expensive for release
// hot paths (e.g. re-running the AGS verifier inside replica execution).
// Compiles to nothing when NDEBUG is defined.
#ifdef NDEBUG
#define FTL_DASSERT(cond, msg) \
  do {                         \
  } while (0)
#else
#define FTL_DASSERT(cond, msg) FTL_ENSURE(cond, msg)
#endif

// Small time helpers shared by the network simulator and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace ftl {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;
using Micros = std::chrono::microseconds;
using Millis = std::chrono::milliseconds;

/// Monotonic now() in nanoseconds since an arbitrary epoch.
inline std::int64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

/// Elapsed microseconds between two steady_clock points, as double.
inline double elapsedUs(TimePoint start, TimePoint end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace ftl

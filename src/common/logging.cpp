#include "common/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace ftl::log {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void setLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void write(LogLevel lvl, const std::string& tag, const std::string& message) {
  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%12lld] %s [%s] %s\n", static_cast<long long>(now), levelName(lvl),
               tag.c_str(), message.c_str());
}

}  // namespace ftl::log

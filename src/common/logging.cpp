#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ftl::log {

namespace {

/// Default threshold comes from FTL_LOG_LEVEL when set: a level name
/// ("trace".."off", case-insensitive) or a digit 0..5. Unset or
/// unrecognized values fall back to Warn so tests stay quiet.
int levelFromEnv() {
  const char* e = std::getenv("FTL_LOG_LEVEL");
  if (e == nullptr || *e == '\0') return static_cast<int>(LogLevel::Warn);
  std::string v;
  for (const char* p = e; *p != '\0'; ++p) {
    v.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (v == "trace") return static_cast<int>(LogLevel::Trace);
  if (v == "debug") return static_cast<int>(LogLevel::Debug);
  if (v == "info") return static_cast<int>(LogLevel::Info);
  if (v == "warn" || v == "warning") return static_cast<int>(LogLevel::Warn);
  if (v == "error") return static_cast<int>(LogLevel::Error);
  if (v == "off" || v == "none") return static_cast<int>(LogLevel::Off);
  if (v.size() == 1 && v[0] >= '0' && v[0] <= '5') return v[0] - '0';
  return static_cast<int>(LogLevel::Warn);
}

std::atomic<int> g_level{levelFromEnv()};
std::mutex g_sink_mutex;

/// Small per-thread tag so interleaved lines from the simulated processors
/// can be told apart without full pthread ids.
unsigned threadTag() {
  static std::atomic<unsigned> next{1};
  thread_local unsigned tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

const char* levelName(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

void setLevel(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void write(LogLevel lvl, const std::string& tag, const std::string& message) {
  using namespace std::chrono;
  const auto now = duration_cast<microseconds>(steady_clock::now().time_since_epoch()).count();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%12lld] [t%02u] %s [%s] %s\n", static_cast<long long>(now), threadTag(),
               levelName(lvl), tag.c_str(), message.c_str());
}

}  // namespace ftl::log

// Minimal thread-safe leveled logger.
//
// The simulated network, Consul protocol, and TS state machines all log
// through this sink so protocol traces from concurrent "processors"
// interleave line-atomically. Logging defaults to Warn so tests stay quiet;
// benches and examples raise it when tracing is useful. The default can be
// overridden with the FTL_LOG_LEVEL environment variable (a level name such
// as "debug", or a digit 0..5); setLevel() still wins once called. Each line
// carries a monotonic microsecond timestamp and a small per-thread tag.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace ftl {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

namespace log {

/// Set the global log threshold; messages below it are discarded.
void setLevel(LogLevel level);

/// Current global threshold.
LogLevel level();

/// Emit one line (already formatted) at `level`, tagged with `tag`.
/// Line-atomic across threads.
void write(LogLevel level, const std::string& tag, const std::string& message);

/// True if a message at `l` would be emitted (use to skip formatting work).
inline bool enabled(LogLevel l) { return static_cast<int>(l) >= static_cast<int>(level()); }

}  // namespace log
}  // namespace ftl

#define FTL_LOG(lvl, tag, expr)                                   \
  do {                                                            \
    if (::ftl::log::enabled(lvl)) {                               \
      std::ostringstream _ftl_os;                                 \
      _ftl_os << expr;                                            \
      ::ftl::log::write(lvl, (tag), _ftl_os.str());               \
    }                                                             \
  } while (0)

#define FTL_TRACE(tag, expr) FTL_LOG(::ftl::LogLevel::Trace, tag, expr)
#define FTL_DEBUG(tag, expr) FTL_LOG(::ftl::LogLevel::Debug, tag, expr)
#define FTL_INFO(tag, expr) FTL_LOG(::ftl::LogLevel::Info, tag, expr)
#define FTL_WARN(tag, expr) FTL_LOG(::ftl::LogLevel::Warn, tag, expr)
#define FTL_ERROR(tag, expr) FTL_LOG(::ftl::LogLevel::Error, tag, expr)

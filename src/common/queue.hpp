// Closable blocking queues used for inter-thread message passing.
//
// Every "processor" in the simulated network is a set of threads that talk
// through these queues (CP.mess: prefer message passing to shared mutable
// state). A queue can be closed, which wakes all blocked consumers; pops
// then drain remaining elements and finally report closure. This is how
// crash injection unblocks a processor's service threads promptly.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace ftl {

/// Unbounded multi-producer/multi-consumer blocking queue.
///
/// Semantics:
///  - push() after close() is a no-op returning false (messages to a dead
///    endpoint vanish, matching fail-silent crash semantics).
///  - pop() blocks until an element is available or the queue is closed AND
///    drained; returns std::nullopt only in the latter case.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue an element. Returns false (dropping the element) if closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking dequeue. std::nullopt means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Dequeue with a timeout. std::nullopt on timeout or closed-and-drained;
  /// use closed() to distinguish when it matters.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Non-blocking dequeue.
  std::optional<T> tryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Close the queue: wakes all blocked consumers; subsequent pushes drop.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reopen a closed queue (crash recovery reuses the endpoint's inbox).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  /// Discard all queued elements without closing.
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    items_.clear();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ftl

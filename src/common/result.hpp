// Result<T>: expected-style success-or-error carrier for API boundaries that
// prefer values over exceptions (std::expected is C++23; we target C++20).
//
// The error arm is ApiError: a short machine-readable rule tag plus the full
// human-readable message. For statements refused by the AGS verifier the tag
// is the kebab-case rule name (verify.hpp's ruleIdName, e.g.
// "formal-out-of-range"); for registry-dependent errors produced at the
// replicas it is "registry"; transport-level failures keep throwing (a crash
// is an environmental event, not a property of the statement).
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace ftl {

/// A rule-tagged API error (see file comment for the tag vocabulary).
struct ApiError {
  std::string rule;     // stable machine-readable tag, e.g. "destroy-ts-main"
  std::string message;  // full diagnostic, suitable for logs / exceptions

  const std::string& toString() const { return message; }
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ApiError error) : error_(std::move(error)) {}  // NOLINT

  static Result failure(std::string rule, std::string message) {
    return Result(ApiError{std::move(rule), std::move(message)});
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Preconditions: ok() / !ok() respectively (FTL_REQUIRE-checked).
  const T& value() const& {
    FTL_REQUIRE(ok(), "Result::value() on an error: " + error_.message);
    return *value_;
  }
  T& value() & {
    FTL_REQUIRE(ok(), "Result::value() on an error: " + error_.message);
    return *value_;
  }
  T&& value() && {
    FTL_REQUIRE(ok(), "Result::value() on an error: " + error_.message);
    return std::move(*value_);
  }
  const ApiError& error() const {
    FTL_REQUIRE(!ok(), "Result::error() on a success");
    return error_;
  }

  /// value() or a fallback (does not throw).
  T valueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  ApiError error_;
};

}  // namespace ftl

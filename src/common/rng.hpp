// Deterministic pseudo-random number generation.
//
// The network latency model, workload generators, and failure-injection
// schedules all draw from these generators so that every experiment is
// reproducible from a seed printed in its output header.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace ftl {

/// SplitMix64: tiny, solid generator; also used to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    FTL_REQUIRE(bound > 0, "below() needs a positive bound");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    FTL_REQUIRE(lo <= hi, "range() needs lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t state_[4];
};

}  // namespace ftl

// Byte-level serialization for wire messages, tuples, and snapshots.
//
// Everything a replica ships through Consul (AGS descriptors, tuples, state
// transfer snapshots) is encoded with these two classes. Encoding is
// explicit little-endian with length-prefixed containers, so snapshots are
// byte-identical across replicas — which the determinism property tests
// rely on (DESIGN.md invariant 2).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace ftl {

using Bytes = std::vector<std::uint8_t>;

/// Non-owning span of encoded bytes (a borrowed slice of a datagram, log
/// entry, or arena block). The owner must outlive every view into it —
/// decode-side views (tuple::TupleView, consul deliveries) are only valid
/// for the duration of the callback/epoch that handed them out.
struct BytesView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  BytesView() = default;
  BytesView(const std::uint8_t* d, std::size_t n) : data(d), size(n) {}
  BytesView(const Bytes& b) : data(b.data()), size(b.size()) {}  // NOLINT

  bool empty() const { return size == 0; }
  const std::uint8_t* begin() const { return data; }
  const std::uint8_t* end() const { return data + size; }

  /// Materialize an owning copy (the escape hatch out of view lifetime).
  Bytes toOwned() const { return Bytes(data, data + size); }

  bool operator==(const BytesView& o) const {
    return size == o.size && (size == 0 || std::memcmp(data, o.data, size) == 0);
  }
  bool operator==(const Bytes& o) const { return *this == BytesView(o); }
};

/// Append-only encoder.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }

  // Multi-byte writes stage the little-endian form in a local array and
  // append it in ONE insert: a push_back per byte re-checks capacity eight
  // times for a u64, and encode dominates the issue stage of the ordering
  // hot path (DESIGN.md "Ordering-path fast lane").
  void u16(std::uint16_t v) {
    std::uint8_t le[2];
    for (int i = 0; i < 2; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    buf_.insert(buf_.end(), le, le + sizeof le);
  }

  void u32(std::uint32_t v) {
    std::uint8_t le[4];
    for (int i = 0; i < 4; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    buf_.insert(buf_.end(), le, le + sizeof le);
  }

  void u64(std::uint64_t v) {
    std::uint8_t le[8];
    for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    buf_.insert(buf_.end(), le, le + sizeof le);
  }

  /// Pre-size the underlying buffer (hot encode paths know their rough
  /// frame size; one up-front grow beats log2(n) reallocations).
  void reserve(std::size_t n) { buf_.reserve(n); }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed string.
  void str(std::string_view s) {
    FTL_CHECK(s.size() <= UINT32_MAX, "string too large for u32 length prefix");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed blob.
  void bytes(const Bytes& b) {
    FTL_CHECK(b.size() <= UINT32_MAX, "blob too large for u32 length prefix");
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void bytes(BytesView b) {
    FTL_CHECK(b.size <= UINT32_MAX, "blob too large for u32 length prefix");
    u32(static_cast<std::uint32_t>(b.size));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw append without a length prefix (for nesting pre-encoded buffers).
  void raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  const Bytes& buffer() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sequential decoder; throws ftl::Error on truncated input.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf.data()), size_(buf.size()) {}
  explicit Reader(BytesView view) : buf_(view.data), size_(view.size) {}
  Reader(const std::uint8_t* data, std::size_t size) : buf_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(buf_[pos_++]) << (8 * i);
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes bytes() {
    const std::uint32_t n = u32();
    need(n);
    Bytes b(buf_ + pos_, buf_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// Zero-copy accessors: the returned view aliases the buffer this Reader
  /// decodes from (same lifetime rules as BytesView — do not retain past the
  /// owning buffer).
  std::string_view readStrView() {
    const std::uint32_t n = u32();
    need(n);
    std::string_view s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

  BytesView readBlobView() {
    const std::uint32_t n = u32();
    need(n);
    BytesView b(buf_ + pos_, n);
    pos_ += n;
    return b;
  }

  /// Borrow the next `n` raw bytes (no length prefix) without copying.
  BytesView readRawView(std::size_t n) {
    need(n);
    BytesView b(buf_ + pos_, n);
    pos_ += n;
    return b;
  }

  /// Skip `n` bytes (bounds-checked).
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  std::size_t position() const { return pos_; }
  const std::uint8_t* cursor() const { return buf_ + pos_; }

  bool atEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  // Phrased as a subtraction so a hostile length can't wrap pos_ + n
  // around SIZE_MAX and slip past the bound (pos_ <= size_ always holds).
  void need(std::size_t n) const {
    FTL_CHECK(n <= size_ - pos_, "truncated buffer while decoding");
  }

  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ftl

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace ftl {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void LatencySamples::ensureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencySamples::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencySamples::min() const {
  ensureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double LatencySamples::max() const {
  ensureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::optional<double> LatencySamples::percentile(double p) const {
  FTL_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  if (samples_.empty()) return std::nullopt;
  ensureSorted();
  const auto n = samples_.size();
  // Nearest-rank: ceil(p/100 * n), 1-based.
  std::size_t rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

std::string LatencySamples::summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << percentileOr0(50)
     << " p95=" << percentileOr0(95) << " p99=" << percentileOr0(99)
     << " p99.9=" << percentileOr0(99.9) << " max=" << max();
  return os.str();
}

}  // namespace ftl

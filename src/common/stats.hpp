// Statistics helpers for the benchmark harnesses.
//
// OnlineStats gives streaming mean/variance (Welford); LatencySamples keeps
// raw samples for exact percentiles, which the per-experiment tables in
// EXPERIMENTS.md report.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ftl {

/// Streaming mean / variance / min / max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Raw-sample recorder with exact percentiles. Samples are whatever unit the
/// caller uses (the benches use microseconds).
class LatencySamples {
 public:
  void add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;

  /// Exact percentile by nearest-rank on the sorted samples; p in [0,100].
  /// Empty sample sets have no percentiles: returns std::nullopt.
  std::optional<double> percentile(double p) const;

  /// percentile() for callers that have already checked count() > 0; 0.0 on
  /// an empty set so tables render without a scatter of optional checks.
  double percentileOr0(double p) const { return percentile(p).value_or(0.0); }

  /// "mean=… p50=… p95=… p99=… p99.9=… max=…" one-line summary.
  std::string summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensureSorted() const;
};

/// Scope timer: measures wall time and records it into a LatencySamples in
/// microseconds on destruction.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(LatencySamples& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerUs() {
    const auto dt = std::chrono::steady_clock::now() - start_;
    sink_.add(std::chrono::duration<double, std::micro>(dt).count());
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  LatencySamples& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ftl

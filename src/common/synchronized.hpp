// Synchronized<T>: a mutex defined together with the data it guards
// (C++ Core Guidelines CP.50). Access is only possible through withLock(),
// so forgetting the lock is a compile error rather than a data race.
#pragma once

#include <mutex>
#include <utility>

namespace ftl {

template <typename T>
class Synchronized {
 public:
  Synchronized() = default;
  explicit Synchronized(T initial) : value_(std::move(initial)) {}

  Synchronized(const Synchronized&) = delete;
  Synchronized& operator=(const Synchronized&) = delete;

  /// Run `fn(T&)` while holding the lock; returns fn's result.
  /// decltype(auto), not auto: plain `auto` silently decays a
  /// reference-returning fn to a copy of the referred-to object. A
  /// reference into the guarded value still escapes the lock, though —
  /// return by value from fn unless the target outlives the lock.
  template <typename Fn>
  decltype(auto) withLock(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::forward<Fn>(fn)(value_);
  }

  /// Run `fn(const T&)` while holding the lock; returns fn's result.
  template <typename Fn>
  decltype(auto) withLock(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::forward<Fn>(fn)(value_);
  }

  /// Copy the guarded value out under the lock.
  T copy() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  T value_{};
};

}  // namespace ftl

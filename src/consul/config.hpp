// Tunables for the Consul-like group communication substrate.
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace ftl::consul {

struct ConsulConfig {
  /// Period between heartbeats to every other group member.
  Micros heartbeat_interval{20'000};
  /// Silence longer than this marks a member as suspected-failed and
  /// triggers a view change.
  ///
  /// DEPLOYMENT RULE: the protocol assumes fail-silent crashes (the paper's
  /// model), not partitions — diverged views are never merged. On a lossy
  /// network this timeout must span enough heartbeat periods that false
  /// suspicion is negligible (probability ~ p^k for loss rate p and k
  /// heartbeats per window); a heartbeat from a suspect cancels the
  /// suspicion, but only until a view change completes.
  Micros failure_timeout{120'000};
  /// How often the protocol timer loop runs (recv timeout granularity).
  Micros tick{5'000};
  /// An origin retransmits a request to the sequencer if it has not seen it
  /// delivered within this period (covers lost requests and dead sequencers).
  Micros request_retransmit{60'000};
  /// A member with a sequence gap nacks the sequencer after this period.
  Micros nack_timeout{15'000};
  /// Period between Ack (stability) reports to the sequencer.
  Micros ack_interval{25'000};
  /// A coordinator aborts and restarts a view change that has not completed
  /// within this period (e.g. another member died mid-change).
  Micros view_change_timeout{250'000};

  // ---- apply batching (see docs/PROTOCOL.md "Batched apply") ----

  /// Upper bound on the number of ordered commands handed to the state
  /// machine in one applyBatch() call. 1 disables coalescing entirely
  /// (every command is delivered the moment it is contiguous, exactly the
  /// pre-batching behaviour).
  std::uint32_t max_apply_batch = 64;
  /// How long a partially-filled batch may wait for more contiguous
  /// commands before being flushed to the state machine. 0 (the default)
  /// flushes at the end of every protocol step, so batches form only from
  /// commands that are ALREADY contiguous when the step runs — no added
  /// latency. Non-zero values trade up to (window + tick) of apply latency
  /// for larger batches under a steady trickle of traffic. Batch boundaries
  /// never affect replicated state, only scheduling (state_machine.hpp).
  Micros apply_batch_window{0};

  // ---- send-side coalescing (docs/PROTOCOL.md "Coalesced request frames") ----

  /// Upper bound on the number of commands packed into one Request frame to
  /// the sequencer (and hence one Ordered frame back out). While a frame is
  /// in flight, newly submitted commands are staged and shipped together
  /// once the in-flight commands deliver (or the stage fills). 1 disables
  /// coalescing: every broadcast() sends its own frame immediately, exactly
  /// the pre-batching behaviour. Frame boundaries are local scheduling and
  /// never reach replicated state — the sequencer assigns each packed
  /// command its own gseq.
  std::uint32_t max_send_batch = 64;

  // ---- self-delivery shortcut (docs/PROTOCOL.md "Self-delivery") ----

  /// When the issuing host is the sequencer of a single-member group and
  /// nothing of its own is in flight, broadcast() assigns the gseq locally
  /// and delivers to its own state machine inline — skipping the Request
  /// frame and two thread handoffs. The command is still stamped into the
  /// total order (same gseq/origin_seq bookkeeping as the sequencer's
  /// request handler), so replicated state is byte-identical with the
  /// shortcut on or off. Groups with peers always take the symmetric
  /// request path: completing inline before the Ordered fan-out leaves the
  /// send queue would open a durability window a fail-silent crash could
  /// exploit. Disable to force the request path everywhere
  /// (digest-differential tests).
  bool self_delivery = true;
};

}  // namespace ftl::consul

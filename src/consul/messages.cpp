#include "consul/messages.hpp"

namespace ftl::consul {

namespace {

void encodeHosts(Writer& w, const std::vector<HostId>& hosts) {
  w.u32(static_cast<std::uint32_t>(hosts.size()));
  for (HostId h : hosts) w.u32(h);
}

std::vector<HostId> decodeHosts(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<HostId> hosts;
  hosts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) hosts.push_back(r.u32());
  return hosts;
}

void encodeEntries(Writer& w, const std::vector<LogEntry>& entries) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) e.encode(w);
}

std::vector<LogEntry> decodeEntries(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<LogEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) entries.push_back(LogEntry::decode(r));
  return entries;
}

}  // namespace

void LogEntry::encode(Writer& w) const {
  w.u64(gseq);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(origin);
  w.u64(origin_seq);
  w.bytes(payload);
}

LogEntry LogEntry::decode(Reader& r) {
  LogEntry e;
  e.gseq = r.u64();
  e.kind = static_cast<EntryKind>(r.u8());
  e.origin = r.u32();
  e.origin_seq = r.u64();
  e.payload = r.bytes();
  return e;
}

void ViewEvent::encode(Writer& w) const {
  w.u64(view_id);
  encodeHosts(w, members);
  encodeHosts(w, failed);
  encodeHosts(w, joined);
}

ViewEvent ViewEvent::decode(Reader& r) {
  ViewEvent v;
  v.view_id = r.u64();
  v.members = decodeHosts(r);
  v.failed = decodeHosts(r);
  v.joined = decodeHosts(r);
  return v;
}

Bytes HeartbeatMsg::encode() const {
  Writer w;
  w.u64(view_id);
  w.u64(stable);
  w.u64(last_gseq);
  return w.take();
}

HeartbeatMsg HeartbeatMsg::decode(const Bytes& b) {
  Reader r(b);
  HeartbeatMsg m;
  m.view_id = r.u64();
  m.stable = r.u64();
  m.last_gseq = r.u64();
  return m;
}

Bytes RequestMsg::encode() const {
  Writer w;
  w.u64(origin_seq);
  w.u32(static_cast<std::uint32_t>(payloads.size()));
  for (const Bytes& p : payloads) w.bytes(p);
  return w.take();
}

RequestMsg RequestMsg::decode(const Bytes& b) {
  Reader r(b);
  RequestMsg m;
  m.origin_seq = r.u64();
  const std::uint32_t n = r.u32();
  m.payloads.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.payloads.push_back(r.bytes());
  return m;
}

Bytes OrderedMsg::encode() const {
  Writer w;
  w.u64(view_id);
  w.u64(stable);
  encodeEntries(w, entries);
  return w.take();
}

OrderedMsg OrderedMsg::decode(const Bytes& b) {
  Reader r(b);
  OrderedMsg m;
  m.view_id = r.u64();
  m.stable = r.u64();
  m.entries = decodeEntries(r);
  return m;
}

Bytes NackMsg::encode() const {
  Writer w;
  w.u64(view_id);
  w.u64(from_gseq);
  w.u64(to_gseq);
  return w.take();
}

NackMsg NackMsg::decode(const Bytes& b) {
  Reader r(b);
  NackMsg m;
  m.view_id = r.u64();
  m.from_gseq = r.u64();
  m.to_gseq = r.u64();
  return m;
}

Bytes AckMsg::encode() const {
  Writer w;
  w.u64(view_id);
  w.u64(delivered);
  return w.take();
}

AckMsg AckMsg::decode(const Bytes& b) {
  Reader r(b);
  AckMsg m;
  m.view_id = r.u64();
  m.delivered = r.u64();
  return m;
}

Bytes ViewProbeMsg::encode() const {
  Writer w;
  w.u64(new_view_id);
  encodeHosts(w, proposed_members);
  return w.take();
}

ViewProbeMsg ViewProbeMsg::decode(const Bytes& b) {
  Reader r(b);
  ViewProbeMsg m;
  m.new_view_id = r.u64();
  m.proposed_members = decodeHosts(r);
  return m;
}

Bytes ViewStateMsg::encode() const {
  Writer w;
  w.u64(new_view_id);
  w.u64(delivered);
  encodeEntries(w, log_entries);
  return w.take();
}

ViewStateMsg ViewStateMsg::decode(const Bytes& b) {
  Reader r(b);
  ViewStateMsg m;
  m.new_view_id = r.u64();
  m.delivered = r.u64();
  m.log_entries = decodeEntries(r);
  return m;
}

Bytes NewViewMsg::encode() const {
  Writer w;
  view.encode(w);
  w.u64(view_gseq);
  w.u64(entries_from);
  encodeEntries(w, entries);
  w.boolean(has_snapshot);
  w.u64(snapshot_gseq);
  w.bytes(snapshot);
  return w.take();
}

NewViewMsg NewViewMsg::decode(const Bytes& b) {
  Reader r(b);
  NewViewMsg m;
  m.view = ViewEvent::decode(r);
  m.view_gseq = r.u64();
  m.entries_from = r.u64();
  m.entries = decodeEntries(r);
  m.has_snapshot = r.boolean();
  m.snapshot_gseq = r.u64();
  m.snapshot = r.bytes();
  return m;
}

Bytes JoinRequestMsg::encode() const {
  Writer w;
  w.u64(incarnation);
  return w.take();
}

JoinRequestMsg JoinRequestMsg::decode(const Bytes& b) {
  Reader r(b);
  JoinRequestMsg m;
  m.incarnation = r.u64();
  return m;
}

}  // namespace ftl::consul

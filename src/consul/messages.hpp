// Wire messages of the Consul-like substrate.
//
// The protocol is a fixed-sequencer atomic multicast with view-change
// membership (a standard realization of the replicated state machine
// approach; see DESIGN.md). Message flow:
//
//   origin --Request--> sequencer --Ordered--> every member (total order)
//   member --Nack--> sequencer (gap detected)        } reliability
//   member --Ack--> sequencer (stability/log GC)     }
//   all --Heartbeat--> all (failure detection)
//   coordinator --ViewProbe--> members --ViewState--> coordinator
//   coordinator --NewView(+Snapshot for joiners)--> members
//   recovering host --JoinRequest--> everyone
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.hpp"
#include "net/message.hpp"

namespace ftl::consul {

using net::HostId;

/// net::Message::type values used by this layer.
enum class MsgType : std::uint16_t {
  Heartbeat = 1,
  Request = 2,
  Ordered = 3,
  Nack = 4,
  Ack = 5,
  ViewProbe = 6,
  ViewState = 7,
  NewView = 8,
  JoinRequest = 9,
};

/// What an Ordered slot carries: an application payload or a membership
/// (view change) event. View events flow through the same total order so
/// every replica interleaves failures/joins with data identically.
enum class EntryKind : std::uint8_t { Data = 0, View = 1 };

/// One slot of the totally ordered log.
struct LogEntry {
  std::uint64_t gseq = 0;
  EntryKind kind = EntryKind::Data;
  HostId origin = net::kNoHost;
  std::uint64_t origin_seq = 0;  // per-origin dedup key (Data only)
  Bytes payload;                 // app bytes (Data) or encoded ViewEvent (View)

  void encode(Writer& w) const;
  static LogEntry decode(Reader& r);
};

/// Payload of a View log entry.
struct ViewEvent {
  std::uint64_t view_id = 0;
  std::vector<HostId> members;  // sorted
  std::vector<HostId> failed;   // members removed relative to previous view
  std::vector<HostId> joined;   // members added relative to previous view

  void encode(Writer& w) const;
  static ViewEvent decode(Reader& r);
};

struct HeartbeatMsg {
  std::uint64_t view_id = 0;
  std::uint64_t stable = 0;     // sequencer piggybacks stability; others send 0
  std::uint64_t last_gseq = 0;  // sequencer's highest assigned gseq, so members
                                // detect trailing loss with no later traffic

  Bytes encode() const;
  static HeartbeatMsg decode(const Bytes& b);
};

/// A COALESCED request frame: `payloads[i]` carries the origin's command
/// with per-origin sequence number `origin_seq + i`. Commands an origin
/// submits while an earlier frame is still in flight are staged and packed
/// into the next frame (sender-side batching, the send mirror of the
/// apply-side batch). The sequencer unpacks the frame and assigns each
/// payload its OWN gseq, so frame boundaries never reach replicated state.
struct RequestMsg {
  std::uint64_t origin_seq = 0;  // seq of payloads.front()
  std::vector<Bytes> payloads;   // consecutive origin_seqs, never empty

  Bytes encode() const;
  static RequestMsg decode(const Bytes& b);
};

/// One ordered frame: a run of log entries with CONSECUTIVE gseqs (one
/// entry unless the sequencer just unpacked a coalesced request frame).
struct OrderedMsg {
  std::uint64_t view_id = 0;
  std::uint64_t stable = 0;  // piggybacked stability for log GC
  std::vector<LogEntry> entries;  // gseq-consecutive, never empty

  Bytes encode() const;
  static OrderedMsg decode(const Bytes& b);
};

struct NackMsg {
  std::uint64_t view_id = 0;
  std::uint64_t from_gseq = 0;  // inclusive
  std::uint64_t to_gseq = 0;    // inclusive

  Bytes encode() const;
  static NackMsg decode(const Bytes& b);
};

struct AckMsg {
  std::uint64_t view_id = 0;
  std::uint64_t delivered = 0;  // highest contiguously delivered gseq

  Bytes encode() const;
  static AckMsg decode(const Bytes& b);
};

struct ViewProbeMsg {
  std::uint64_t new_view_id = 0;
  std::vector<HostId> proposed_members;

  Bytes encode() const;
  static ViewProbeMsg decode(const Bytes& b);
};

struct ViewStateMsg {
  std::uint64_t new_view_id = 0;
  std::uint64_t delivered = 0;        // responder's highest contiguous gseq
  std::vector<LogEntry> log_entries;  // everything in responder's log

  Bytes encode() const;
  static ViewStateMsg decode(const Bytes& b);
};

/// Installs a view. For an up-to-date member, `entries` fills its gaps.
/// For a joining member, `snapshot` (plus `snapshot_gseq`) replaces history.
struct NewViewMsg {
  ViewEvent view;
  std::uint64_t view_gseq = 0;        // gseq assigned to the view event itself
  std::uint64_t entries_from = 0;     // entries cover (entries_from, view_gseq)
  std::vector<LogEntry> entries;
  bool has_snapshot = false;
  std::uint64_t snapshot_gseq = 0;    // state covers all gseq <= this
  Bytes snapshot;                     // consul-wrapped app snapshot

  Bytes encode() const;
  static NewViewMsg decode(const Bytes& b);
};

struct JoinRequestMsg {
  std::uint64_t incarnation = 0;  // increases on every recovery of the host

  Bytes encode() const;
  static JoinRequestMsg decode(const Bytes& b);
};

}  // namespace ftl::consul

#include "consul/node.hpp"

#include <algorithm>

#include <atomic>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::consul {

namespace {

std::vector<HostId> sorted(std::vector<HostId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

bool contains(const std::vector<HostId>& v, HostId h) {
  return std::find(v.begin(), v.end(), h) != v.end();
}

}  // namespace

ConsulNode::ConsulNode(net::Transport& net, HostId self, std::vector<HostId> group,
                       ConsulConfig cfg, Callbacks cb, bool join_existing)
    : net_(net),
      ep_(net.endpoint(self)),
      self_(self),
      group_(sorted(std::move(group))),
      cfg_(cfg),
      cb_(std::move(cb)),
      joining_(join_existing) {
  FTL_REQUIRE(contains(group_, self_), "node must be part of its own group");
  FTL_REQUIRE(cb_.on_deliver && cb_.on_view, "on_deliver and on_view callbacks are required");
  if (!join_existing) {
    members_ = group_;
    is_member_ = true;
    joining_ = false;
  }
  obs_token_ = obs::registerSource([this](std::vector<obs::Sample>& out) {
    const std::string host = "{host=\"" + std::to_string(self_) + "\"}";
    std::lock_guard<std::mutex> lock(mutex_);
    out.push_back({"ftl_consul_broadcasts" + host, static_cast<double>(stats_.broadcasts)});
    out.push_back(
        {"ftl_consul_request_frames" + host, static_cast<double>(stats_.request_frames)});
    out.push_back({"ftl_consul_unsent" + host,
                   static_cast<double>(pending_.size() - first_unsent_)});
    out.push_back(
        {"ftl_consul_heartbeats_sent" + host, static_cast<double>(stats_.heartbeats_sent)});
    out.push_back({"ftl_consul_heartbeats_received" + host,
                   static_cast<double>(stats_.heartbeats_received)});
    out.push_back({"ftl_consul_retransmits" + host, static_cast<double>(stats_.retransmits)});
    out.push_back({"ftl_consul_nacks_sent" + host, static_cast<double>(stats_.nacks_sent)});
    out.push_back(
        {"ftl_consul_nacks_received" + host, static_cast<double>(stats_.nacks_received)});
    out.push_back({"ftl_consul_acks_sent" + host, static_cast<double>(stats_.acks_sent)});
    out.push_back({"ftl_consul_view_changes_started" + host,
                   static_cast<double>(stats_.view_changes_started)});
    out.push_back(
        {"ftl_consul_views_installed" + host, static_cast<double>(stats_.views_installed)});
    out.push_back({"ftl_consul_deliveries" + host, static_cast<double>(stats_.deliveries)});
    out.push_back({"ftl_consul_flushes" + host, static_cast<double>(stats_.flushes)});
    out.push_back(
        {"ftl_consul_self_deliveries" + host, static_cast<double>(stats_.self_deliveries)});
    out.push_back({"ftl_consul_log_size" + host, static_cast<double>(log_.size())});
    out.push_back({"ftl_consul_pending" + host, static_cast<double>(pending_.size())});
    out.push_back(
        {"ftl_consul_apply_buffer_occupancy" + host, static_cast<double>(apply_buffer_.size())});
    out.push_back({"ftl_consul_delivered_gseq" + host, static_cast<double>(next_deliver_ - 1)});
    out.push_back({"ftl_consul_stable_gseq" + host, static_cast<double>(stable_)});
    out.push_back({"ftl_consul_view_id" + host, static_cast<double>(view_id_)});
  });
}

ConsulNode::~ConsulNode() {
  obs::unregisterSource(obs_token_);
  shutdown();
}

void ConsulNode::shutdown() {
  stop();
  if (service_.joinable() && service_.get_id() != std::this_thread::get_id()) {
    service_.join();
  }
}

void ConsulNode::start() {
  std::unique_lock<std::mutex> lock(mutex_);
  FTL_REQUIRE(!running_, "start() called twice");
  running_ = true;
  const auto now = Clock::now();
  for (HostId h : members_) last_heard_[h] = now;
  if (is_member_) {
    ViewInfo vi;
    vi.view_id = view_id_;
    vi.gseq = 0;
    vi.members = members_;
    cb_.on_view(vi);
  }
  lock.unlock();
  service_ = std::thread([this] { serviceLoop(); });
}

void ConsulNode::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Graceful stop: hand any staged deliveries to the application first so a
  // non-zero apply_batch_window cannot swallow the tail of the stream.
  flushDeliveries();
  stop_requested_ = true;
}

std::uint64_t ConsulNode::broadcast(Bytes payload, std::uint64_t trace_id) {
  // Ordering-path stage sampling (1-in-16, always-on while tracing): the
  // coalesce stage covers broadcast-enqueue -> first frame send, the order
  // stage enqueue -> origin-side delivery. Unsampled commands pay no clock
  // read here (ROADMAP "Hot-path speed": keep the disabled path ~free).
  static std::atomic<std::uint32_t> stage_sample{0};
  const bool traced = obs::trace::enabled() && trace_id != 0;
  const bool timed =
      traced || (stage_sample.fetch_add(1, std::memory_order_relaxed) & 15u) == 0;
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_REQUIRE(is_member_, "broadcast() requires group membership");
  // Self-delivery shortcut: when this host is the sequencer of a
  // SINGLE-MEMBER group, the request path (frame encode -> endpoint send ->
  // service-thread receive -> handleRequest) collapses to the sequencer
  // bookkeeping it would have performed anyway — assign the gseq here and
  // deliver to the local state machine inline on THIS thread (two handoffs
  // skipped). Two gates are correctness conditions, not tuning knobs:
  //  - members_.size() == 1: with peers, the issuer would observe
  //    completion before the Ordered fan-out is anywhere but this host's
  //    send queue, so a fail-silent crash right after could erase a command
  //    the application already acted on — a durability window the request
  //    path does not have in practice. No peers, no window.
  //  - pending_.empty(): an in-flight Request frame overtaken by a
  //    locally-assigned seq would violate the sequencer's gap-free
  //    per-origin acceptance and strand the frame forever.
  if (cfg_.self_delivery && isSequencer() && members_.size() == 1 && pending_.empty()) {
    const std::uint64_t origin_seq = next_origin_seq_++;
    ++stats_.broadcasts;
    ++stats_.self_deliveries;
    assigned_[self_] = origin_seq;
    LogEntry e;
    e.gseq = next_gseq_++;
    e.kind = EntryKind::Data;
    e.origin = self_;
    e.origin_seq = origin_seq;
    e.payload = std::move(payload);
    known_last_ = std::max(known_last_, e.gseq);
    // Steady state (log drained, nothing staged, no coalescing window):
    // the entry is contiguous AND immediately stable — the sole member has
    // it — so skip the log map, the delivery arena, and the flush plumbing
    // and hand the state machine a single-entry batch directly. The entry
    // never needs retransmission or truncation, so not logging it changes
    // no replicated state (digest-identical with the shortcut off).
    if (log_.empty() && apply_buffer_.empty() && next_deliver_ == e.gseq &&
        cfg_.apply_batch_window.count() == 0) {
      dedup_[self_] = e.origin_seq;
      next_deliver_ = e.gseq + 1;
      member_acks_[self_] = e.gseq;
      stable_ = e.gseq;
      ++stats_.flushes;
      ++stats_.deliveries;
      static obs::Histogram& batch_size = obs::histogram("ftl_consul_apply_batch_size");
      batch_size.observe(1);
      obs::flight::record(obs::flight::Kind::ApplyBatch, self_, 1,
                          static_cast<std::int64_t>(e.gseq));
      Delivery d;
      d.enq_ns = timed ? nowNanos() : 0;
      d.gseq = e.gseq;
      d.origin = e.origin;
      d.origin_seq = e.origin_seq;
      // The payload Bytes is a local: it outlives the callback, which is
      // all the Delivery contract promises (no arena copy needed).
      d.payload = BytesView{e.payload.data(), e.payload.size()};
      apply_buffer_.push_back(std::move(d));  // empty: reuses its capacity
      if (cb_.on_deliver_batch) {
        cb_.on_deliver_batch(apply_buffer_);
      } else if (cb_.on_deliver) {
        cb_.on_deliver(apply_buffer_.front());
      }
      apply_buffer_.clear();
      return origin_seq;
    }
    const std::uint64_t g = e.gseq;
    log_.emplace(g, std::move(e));
    if (timed) fastpath_enq_ns_ = nowNanos();
    deliverReady();
    truncateLog();
    // Deliver synchronously unless the operator asked for a coalescing
    // window — a blocked get()er must not wait a tick for its own command.
    if (cfg_.apply_batch_window.count() > 0) {
      maybeFlushDeliveries(Clock::now());
    } else {
      flushDeliveries();
    }
    return origin_seq;
  }
  Pending p;
  p.origin_seq = next_origin_seq_++;
  p.payload = std::move(payload);
  p.trace_id = traced ? trace_id : 0;
  if (timed) p.enq_ns = nowNanos();
  if (traced) obs::trace::asyncBegin("ags.coalesce", trace_id);
  const std::uint64_t seq = p.origin_seq;
  pending_.push_back(std::move(p));
  ++stats_.broadcasts;
  // Send immediately when nothing is in flight; otherwise stage, so commands
  // submitted while a frame is outstanding pack into the next frame. The
  // stage also flushes once it fills — the network keeps per-pair FIFO order
  // and the sequencer skips seen prefixes, so several in-flight frames are
  // safe.
  const std::size_t unsent = pending_.size() - first_unsent_;
  if (first_unsent_ == 0 || unsent >= std::max<std::uint32_t>(1, cfg_.max_send_batch)) {
    flushUnsentLocked(Clock::now());
  }
  return seq;
}

ConsulNode::Stats ConsulNode::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ConsulNode::joinGroup(std::uint64_t incarnation) {
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_REQUIRE(!is_member_, "joinGroup() called while already a member");
  joining_ = true;
  incarnation_ = incarnation;
  last_join_sent_ = TimePoint{};  // force an immediate JoinRequest on next tick
}

bool ConsulNode::isMember() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return is_member_;
}

std::uint64_t ConsulNode::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_deliver_ - 1;
}

std::size_t ConsulNode::logSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_.size();
}

std::uint64_t ConsulNode::stableSeq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stable_;
}

std::size_t ConsulNode::pendingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

ViewInfo ConsulNode::currentView() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ViewInfo vi;
  vi.view_id = view_id_;
  vi.members = members_;
  return vi;
}

HostId ConsulNode::sequencer() const {
  FTL_ENSURE(!members_.empty(), "no members: sequencer undefined");
  return members_.front();
}

std::vector<HostId> ConsulNode::othersInGroup() const {
  std::vector<HostId> out;
  for (HostId h : group_)
    if (h != self_) out.push_back(h);
  return out;
}

void ConsulNode::sendRequestFrame(std::size_t begin, std::size_t end, TimePoint now) {
  RequestMsg m;
  m.origin_seq = pending_[begin].origin_seq;
  m.payloads.reserve(end - begin);
  // The coalesce stage closes at the command's FIRST frame send;
  // retransmissions of the same range must not re-record it.
  static obs::Histogram& coalesce_ns = obs::histogram("ftl_stage_coalesce_ns");
  for (std::size_t i = begin; i < end; ++i) {
    Pending& p = pending_[i];
    m.payloads.push_back(p.payload);
    p.last_sent = now;
    if (!p.coalesce_done) {
      p.coalesce_done = true;
      if (p.trace_id != 0) obs::trace::asyncEnd("ags.coalesce", p.trace_id);
      if (p.enq_ns != 0) {
        const std::int64_t dt = nowNanos() - p.enq_ns;
        coalesce_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
      }
    }
  }
  ++stats_.request_frames;
  // Frame-size distribution: how well send coalescing packs (EXPERIMENTS.md
  // e13). Process-wide like the apply-batch histogram.
  static obs::Histogram& frame_size = obs::histogram("ftl_consul_send_batch_size");
  frame_size.observe(end - begin);
  // Per-frame encode of coalesced requests — one of the three ordering-path
  // costs ROADMAP names as the remaining hosts=1 budget. Sampled per frame.
  static obs::Histogram& encode_ns = obs::histogram("ftl_stage_frame_encode_ns");
  static std::atomic<std::uint32_t> encode_sample{0};
  if (obs::trace::enabled() ||
      (encode_sample.fetch_add(1, std::memory_order_relaxed) & 15u) == 0) {
    const std::int64_t t0 = nowNanos();
    Bytes wire = m.encode();
    const std::int64_t dt = nowNanos() - t0;
    encode_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
    ep_.send(sequencer(), static_cast<std::uint16_t>(MsgType::Request), std::move(wire));
  } else {
    ep_.send(sequencer(), static_cast<std::uint16_t>(MsgType::Request), m.encode());
  }
}

void ConsulNode::flushUnsentLocked(TimePoint now) {
  const std::size_t cap = std::max<std::uint32_t>(1, cfg_.max_send_batch);
  while (first_unsent_ < pending_.size()) {
    const std::size_t n = std::min(cap, pending_.size() - first_unsent_);
    sendRequestFrame(first_unsent_, first_unsent_ + n, now);
    first_unsent_ += n;
  }
}

void ConsulNode::setForeignHandler(std::function<void(const net::Message&)> handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_REQUIRE(!running_, "setForeignHandler() must precede start()");
  foreign_handler_ = std::move(handler);
}

void ConsulNode::serviceLoop() {
  obs::trace::setThreadName("consul/" + std::to_string(self_));
  // Upper bound on messages handled per protocol step. Draining the inbox
  // before the tick work means a burst of ordered traffic pays one step —
  // and one state-machine apply batch — instead of a full step per message.
  constexpr int kMaxDrainPerStep = 64;
  while (true) {
    // A non-zero apply_batch_window arms a DEADLINE on the recv timeout, not
    // a stall: with staged deliveries and an idle inbox the loop must wake
    // when the window expires, not a full tick later. (Sleeping the whole
    // tick here was the e11 window=200us cliff: every flush waited for the
    // 2ms sim tick while the issuers sat blocked on their replies.)
    Micros wait = cfg_.tick;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!apply_buffer_.empty() && cfg_.apply_batch_window.count() > 0) {
        const auto deadline = apply_buffer_since_ + Duration(cfg_.apply_batch_window);
        const auto t = Clock::now();
        wait = deadline <= t ? Micros{1}
                             : std::min(cfg_.tick, std::chrono::duration_cast<Micros>(
                                                       deadline - t) + Micros{1});
      }
    }
    auto msg = ep_.recvFor(wait);
    const auto now = Clock::now();
    if (msg && msg->type >= kForeignTypeBase) {
      // Demultiplex app-level traffic (e.g. tuple-server RPC) outside the
      // protocol lock so the handler can safely call back into broadcast().
      if (foreign_handler_) foreign_handler_(*msg);
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_requested_) return;
      onTick(now);
      continue;
    }
    std::optional<net::Message> deferred_foreign;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_requested_) return;
      if (!msg && net_.isCrashed(self_)) return;  // fail-silent: halt
      if (msg) {
        handleMessage(*msg, now);
        // The drain is bounded by time as well as count: a burst of slow
        // messages handled back-to-back under the lock must not postpone
        // onTick (our own heartbeats!) into a peer's failure_timeout.
        const auto drain_deadline = now + Duration(cfg_.tick);
        for (int drained = 1; drained < kMaxDrainPerStep; ++drained) {
          if (Clock::now() >= drain_deadline) break;
          auto next = ep_.tryRecv();
          if (!next) break;
          if (next->type >= kForeignTypeBase) {
            // Foreign handlers run without the protocol lock; finish this
            // step first and hand the message over afterwards.
            deferred_foreign = std::move(next);
            break;
          }
          handleMessage(*next, now);
        }
      }
      // Fresh timestamp: the drain may have consumed real time, and timer
      // decisions (heartbeat emission above all) should not lag behind it.
      onTick(msg ? Clock::now() : now);
    }
    if (deferred_foreign && foreign_handler_) foreign_handler_(*deferred_foreign);
  }
}

void ConsulNode::handleMessage(const net::Message& m, TimePoint now) {
  switch (static_cast<MsgType>(m.type)) {
    case MsgType::Heartbeat:
      handleHeartbeat(m.src, HeartbeatMsg::decode(m.payload), now);
      break;
    case MsgType::Request:
      handleRequest(m.src, RequestMsg::decode(m.payload));
      break;
    case MsgType::Ordered:
      handleOrdered(OrderedMsg::decode(m.payload));
      break;
    case MsgType::Nack:
      handleNack(m.src, NackMsg::decode(m.payload));
      break;
    case MsgType::Ack:
      handleAck(m.src, AckMsg::decode(m.payload));
      break;
    case MsgType::ViewProbe:
      last_heard_[m.src] = now;
      handleViewProbe(m.src, ViewProbeMsg::decode(m.payload));
      break;
    case MsgType::ViewState:
      last_heard_[m.src] = now;
      handleViewState(m.src, ViewStateMsg::decode(m.payload));
      break;
    case MsgType::NewView:
      handleNewView(NewViewMsg::decode(m.payload), now);
      break;
    case MsgType::JoinRequest:
      handleJoinRequest(m.src, JoinRequestMsg::decode(m.payload), now);
      break;
    default:
      FTL_WARN("consul", "host " << self_ << ": unknown message type " << m.type);
  }
}

void ConsulNode::handleHeartbeat(HostId src, const HeartbeatMsg& m, TimePoint now) {
  last_heard_[src] = now;
  ++stats_.heartbeats_received;
  // A heartbeat from a suspect proves it alive: cancel the suspicion, and
  // abort any in-flight view change that would have excluded it (message
  // loss can starve the failure detector; real crashes never heartbeat
  // again, so this cannot mask a genuine failure).
  if (suspects_.erase(src) > 0 && vc_) {
    const bool excluded = std::find(vc_->proposed.begin(), vc_->proposed.end(), src) ==
                          vc_->proposed.end();
    if (excluded) {
      FTL_INFO("consul", "host " << self_ << ": aborting view change, suspect " << src
                                 << " is alive");
      vc_.reset();
    }
  }
  if (is_member_ && !members_.empty() && src == sequencer()) {
    stable_ = std::max(stable_, std::min(m.stable, next_deliver_ - 1));
    known_last_ = std::max(known_last_, m.last_gseq);
    updateGapState(now);
    truncateLog();
  } else if (is_member_ && m.view_id > view_id_ && m.last_gseq > 0) {
    // The sender is the sequencer of a NEWER view: we missed a NewView
    // message. Nack it directly — its log retains everything we lack,
    // including the View entry itself (delivered like any ordered entry),
    // which installs the missed view here. Heartbeats recur, so this path
    // self-retries until we catch up.
    known_last_ = std::max(known_last_, m.last_gseq);
    if (known_last_ >= next_deliver_) {
      NackMsg nm;
      nm.view_id = m.view_id;
      nm.from_gseq = next_deliver_;
      nm.to_gseq = known_last_;
      ++stats_.nacks_sent;
      ep_.send(src, static_cast<std::uint16_t>(MsgType::Nack), nm.encode());
      FTL_INFO("consul", "host " << self_ << ": behind view " << m.view_id
                                 << ", pulling entries from host " << src);
    }
  }
}

void ConsulNode::updateGapState(TimePoint now) {
  if (known_last_ >= next_deliver_) {
    if (!have_gap_) {
      have_gap_ = true;
      gap_since_ = now;
    }
  } else {
    have_gap_ = false;
  }
}

void ConsulNode::handleRequest(HostId src, RequestMsg m) {
  if (!isSequencer()) return;  // origin will retransmit to the real sequencer
  // Zombie fencing: once a host's failure view is installed, its in-flight
  // requests must NOT enter the order — an AGS from a failed processor is
  // either ordered before the failure notification or not at all. Without
  // this, failure handlers (which regenerate a dead worker's tasks) could
  // race a late-arriving request from the corpse.
  if (!contains(members_, src)) return;
  if (m.payloads.empty()) return;
  const std::uint64_t seen = std::max(dedup_[src], assigned_[src]);
  const std::uint64_t first = m.origin_seq;
  const std::uint64_t last = first + m.payloads.size() - 1;
  // Per-origin acceptance must stay gap-free: if an earlier request was
  // lost, accepting a later one would make dedup-by-max drop the earlier
  // retransmission forever. A frame whose prefix was already assigned is a
  // retransmission — skip the seen commands and take the rest; a frame
  // starting past seen+1 implies a lost predecessor and is dropped whole
  // (origins retransmit every sent-but-undelivered command as one frame).
  if (first > seen + 1 || last <= seen) return;
  OrderedMsg om;
  om.view_id = view_id_;
  om.stable = stable_;
  om.entries.reserve(static_cast<std::size_t>(last - std::max(first, seen + 1) + 1));
  for (std::uint64_t s = std::max(first, seen + 1); s <= last; ++s) {
    LogEntry e;
    e.gseq = next_gseq_++;
    e.kind = EntryKind::Data;
    e.origin = src;
    e.origin_seq = s;
    e.payload = std::move(m.payloads[static_cast<std::size_t>(s - first)]);
    assigned_[src] = s;
    om.entries.push_back(std::move(e));
  }
  // The whole unpacked frame fans out as ONE ordered message per member:
  // each packed command still gets its own gseq (frame boundaries never
  // reach replicated state), but the ordering fabric pays one send. A
  // single-member group skips the encode — there is no one to send to.
  if (members_.size() > 1) {
    const Bytes wire = om.encode();
    for (HostId h : members_) {
      if (h != self_) ep_.send(h, static_cast<std::uint16_t>(MsgType::Ordered), wire);
    }
  }
  // Append to our own log directly instead of looping the message back
  // through the inbox: the sequencer's log must reflect every assignment it
  // has made the moment a view change starts, or the view event could be
  // assigned a gseq that collides with an in-flight data message (replica
  // divergence).
  for (LogEntry& e : om.entries) {
    const std::uint64_t g = e.gseq;
    known_last_ = std::max(known_last_, g);
    log_.emplace(g, std::move(e));
  }
  deliverReady();
  truncateLog();
}

void ConsulNode::handleOrdered(OrderedMsg m) {
  if (!is_member_) return;
  stable_ = std::max(stable_, std::min(m.stable, next_deliver_ - 1));
  bool inserted = false;
  for (LogEntry& e : m.entries) {
    const std::uint64_t g = e.gseq;
    known_last_ = std::max(known_last_, g);
    if (g >= next_deliver_ && log_.find(g) == log_.end()) {
      next_gseq_ = std::max(next_gseq_, g + 1);
      log_.emplace(g, std::move(e));
      inserted = true;
    }
  }
  if (inserted) deliverReady();
  updateGapState(Clock::now());
  truncateLog();
}

void ConsulNode::handleNack(HostId src, const NackMsg& m) {
  if (!isSequencer()) return;
  ++stats_.nacks_received;
  // Repair entries travel in coalesced frames too (chunked like send frames
  // so one nack over a huge range cannot produce an unbounded message).
  const std::size_t cap = std::max<std::uint32_t>(1, cfg_.max_send_batch);
  OrderedMsg om;
  om.view_id = view_id_;
  om.stable = stable_;
  for (std::uint64_t g = m.from_gseq; g <= m.to_gseq && g < next_gseq_; ++g) {
    auto it = log_.find(g);
    if (it == log_.end()) continue;
    om.entries.push_back(it->second);
    if (om.entries.size() >= cap) {
      ep_.send(src, static_cast<std::uint16_t>(MsgType::Ordered), om.encode());
      om.entries.clear();
    }
  }
  if (!om.entries.empty()) {
    ep_.send(src, static_cast<std::uint16_t>(MsgType::Ordered), om.encode());
  }
}

void ConsulNode::handleAck(HostId src, const AckMsg& m) {
  if (!isSequencer()) return;
  auto& slot = member_acks_[src];
  slot = std::max(slot, m.delivered);
  std::uint64_t candidate = next_deliver_ - 1;
  for (HostId h : members_) {
    auto it = member_acks_.find(h);
    candidate = std::min(candidate, it == member_acks_.end() ? 0 : it->second);
  }
  stable_ = std::max(stable_, candidate);
  truncateLog();
}

void ConsulNode::deliverReady() {
  const auto now = Clock::now();
  while (true) {
    auto it = log_.find(next_deliver_);
    if (it == log_.end()) break;
    const LogEntry& e = it->second;
    if (e.kind == EntryKind::View) {
      // A view is a batch barrier: everything ordered before it must reach
      // the state machine before the membership upcall fires.
      flushDeliveries();
      Reader r(e.payload);
      installViewLocked(ViewEvent::decode(r), e.gseq, now);
    } else {
      bufferDelivery(e);
    }
    ++next_deliver_;
    if (isSequencer()) {
      member_acks_[self_] = next_deliver_ - 1;
      // A single-member group has no Ack senders; its own delivery IS
      // stability (otherwise stable_ never advances and the log grows
      // without bound at hosts=1).
      if (members_.size() == 1) stable_ = next_deliver_ - 1;
    }
  }
  // Staged data entries are flushed by onTick at the end of the SAME service
  // step (not here): a burst of ordered messages drained in one step then
  // reaches the state machine as one batch.
}

void ConsulNode::bufferDelivery(const LogEntry& e) {
  if (e.origin == net::kNoHost) return;  // hole-filling no-op from a view change
  auto& max_seen = dedup_[e.origin];
  if (e.origin_seq <= max_seen) return;  // duplicate across failover
  max_seen = e.origin_seq;
  std::int64_t enq_ns = 0;
  if (e.origin == self_) {
    // Retire the in-flight entries this delivery acknowledges; keep the
    // newest enqueue stamp so the apply side can close the ordering stage
    // (ftl_stage_order_ns) when the command reaches the state machine.
    while (!pending_.empty() && pending_.front().origin_seq <= e.origin_seq) {
      enq_ns = pending_.front().enq_ns;
      pending_.pop_front();
      if (first_unsent_ > 0) --first_unsent_;
    }
    // Everything in flight has delivered: ship the staged commands now.
    if (first_unsent_ == 0 && !pending_.empty()) flushUnsentLocked(Clock::now());
    // A self-delivered command has no Pending to carry its stamp; the
    // shortcut parked it in fastpath_enq_ns_ just before deliverReady().
    if (enq_ns == 0) {
      enq_ns = fastpath_enq_ns_;
      fastpath_enq_ns_ = 0;
    }
  }
  if (apply_buffer_.empty()) apply_buffer_since_ = Clock::now();
  Delivery d;
  d.enq_ns = enq_ns;
  d.gseq = e.gseq;
  d.origin = e.origin;
  d.origin_seq = e.origin_seq;
  // Stage the payload in the delivery arena instead of heap-allocating a
  // Bytes per command: the log entry may be truncated before the flush, so
  // the bytes must be copied somewhere — but a bump allocation that the
  // post-flush reset() frees wholesale costs no heap traffic at steady
  // state (the zero-copy hot path, DESIGN.md).
  d.payload = apply_arena_.copy(e.payload);
  apply_buffer_.push_back(std::move(d));
  if (apply_buffer_.size() >= std::max<std::uint32_t>(1, cfg_.max_apply_batch)) {
    flushDeliveries();
  }
}

void ConsulNode::maybeFlushDeliveries(TimePoint now) {
  if (apply_buffer_.empty()) return;
  if (cfg_.apply_batch_window.count() > 0 &&
      now - apply_buffer_since_ < Duration(cfg_.apply_batch_window)) {
    return;  // still inside the coalescing window; onTick retries
  }
  flushDeliveries();
}

void ConsulNode::flushDeliveries() {
  if (apply_buffer_.empty()) return;
  ++stats_.flushes;
  stats_.deliveries += apply_buffer_.size();
  // Process-wide batch-size distribution: how well the apply_batch_window
  // coalesces ordered traffic (EXPERIMENTS.md e12).
  static obs::Histogram& batch_size = obs::histogram("ftl_consul_apply_batch_size");
  batch_size.observe(apply_buffer_.size());
  obs::flight::record(obs::flight::Kind::ApplyBatch, self_,
                      static_cast<std::int64_t>(apply_buffer_.size()),
                      static_cast<std::int64_t>(apply_buffer_.back().gseq));
  if (cb_.on_deliver_batch) {
    cb_.on_deliver_batch(apply_buffer_);
  } else {
    for (const Delivery& d : apply_buffer_) cb_.on_deliver(d);
  }
  apply_buffer_.clear();
  // End of the delivery epoch: every payload view handed to the callbacks
  // above is now dead. Bulk-free the arena and account for it.
  static obs::Counter& arena_bytes = obs::counter("ftl_arena_alloc_bytes");
  static obs::Counter& arena_resets = obs::counter("ftl_arena_resets");
  arena_bytes.inc(apply_arena_.bytesAllocated());
  arena_resets.inc();
  apply_arena_.reset();
}

void ConsulNode::installViewLocked(const ViewEvent& ve, std::uint64_t gseq, TimePoint now) {
  view_id_ = ve.view_id;
  members_ = ve.members;
  const bool was_member = is_member_;
  is_member_ = contains(members_, self_);
  if (is_member_) joining_ = false;
  for (HostId h : ve.failed) {
    suspects_.erase(h);
    last_heard_.erase(h);
  }
  for (HostId h : members_) last_heard_[h] = now;
  for (HostId h : ve.joined) pending_joiners_.erase(h);
  next_gseq_ = std::max(next_gseq_, gseq + 1);
  if (!log_.empty()) next_gseq_ = std::max(next_gseq_, log_.rbegin()->first + 1);
  if (isSequencer()) {
    // Rebuild sequencer bookkeeping from local state.
    member_acks_.clear();
    for (HostId h : members_) member_acks_[h] = stable_;
    member_acks_[self_] = next_deliver_ - 1;
    assigned_ = dedup_;
    for (const auto& [g, entry] : log_) {
      if (entry.kind == EntryKind::Data && entry.origin != net::kNoHost) {
        auto& slot = assigned_[entry.origin];
        slot = std::max(slot, entry.origin_seq);
      }
    }
  }
  // Requests in flight to a dead sequencer are retransmitted immediately;
  // per-origin dedup makes this safe. Staged entries go along in the same
  // frames — the new sequencer has seen none of them.
  if (is_member_ && !pending_.empty()) {
    stats_.retransmits += first_unsent_;
    obs::flight::record(obs::flight::Kind::Retransmit, self_,
                        static_cast<std::int64_t>(first_unsent_),
                        static_cast<std::int64_t>(ve.view_id), "view install");
    first_unsent_ = 0;
    flushUnsentLocked(now);
  }
  ++stats_.views_installed;
  obs::flight::record(obs::flight::Kind::ViewInstalled, self_,
                      static_cast<std::int64_t>(ve.view_id),
                      static_cast<std::int64_t>(ve.members.size()));
  ViewInfo vi;
  vi.view_id = ve.view_id;
  vi.gseq = gseq;
  vi.members = ve.members;
  vi.failed = ve.failed;
  vi.joined = ve.joined;
  FTL_INFO("consul", "host " << self_ << ": installed view " << vi.view_id << " ("
                             << members_.size() << " members) at gseq " << gseq);
  cb_.on_view(vi);
  (void)was_member;
}

void ConsulNode::onTick(TimePoint now) {
  maybeFlushDeliveries(now);  // apply_batch_window expiry
  if (!is_member_) {
    if (joining_ && now - last_join_sent_ >= Duration(cfg_.request_retransmit)) {
      last_join_sent_ = now;
      JoinRequestMsg jm;
      jm.incarnation = incarnation_;
      const Bytes wire = jm.encode();
      for (HostId h : othersInGroup()) {
        ep_.send(h, static_cast<std::uint16_t>(MsgType::JoinRequest), wire);
      }
    }
    return;
  }

  // Heartbeats.
  if (now - last_heartbeat_sent_ >= Duration(cfg_.heartbeat_interval)) {
    last_heartbeat_sent_ = now;
    HeartbeatMsg hb;
    hb.view_id = view_id_;
    hb.stable = isSequencer() ? stable_ : 0;
    hb.last_gseq = isSequencer() ? next_gseq_ - 1 : 0;
    const Bytes wire = hb.encode();
    for (HostId h : members_) {
      if (h != self_) {
        ++stats_.heartbeats_sent;
        ep_.send(h, static_cast<std::uint16_t>(MsgType::Heartbeat), wire);
      }
    }
  }

  // Stability acks to the sequencer.
  if (!isSequencer() && now - last_ack_sent_ >= Duration(cfg_.ack_interval)) {
    last_ack_sent_ = now;
    AckMsg am;
    am.view_id = view_id_;
    am.delivered = next_deliver_ - 1;
    ++stats_.acks_sent;
    ep_.send(sequencer(), static_cast<std::uint16_t>(MsgType::Ack), am.encode());
  }

  // Gap repair.
  if (have_gap_ && now - gap_since_ >= Duration(cfg_.nack_timeout)) {
    gap_since_ = now;
    NackMsg nm;
    nm.view_id = view_id_;
    nm.from_gseq = next_deliver_;
    nm.to_gseq = known_last_;
    ++stats_.nacks_sent;
    obs::flight::record(obs::flight::Kind::Nack, self_,
                        static_cast<std::int64_t>(nm.from_gseq),
                        static_cast<std::int64_t>(nm.to_gseq), "gap repair");
    ep_.send(sequencer(), static_cast<std::uint16_t>(MsgType::Nack), nm.encode());
  }

  // Request retransmission (lost request or dead sequencer). Only SENT
  // entries carry a meaningful last_sent; if the oldest has timed out,
  // everything sent behind it is undeliverable too (per-origin order is
  // strictly-next at the sequencer), so the whole sent range goes out again
  // as coalesced frames and the sequencer skips whatever it already has.
  if (first_unsent_ > 0 &&
      now - pending_.front().last_sent >= Duration(cfg_.request_retransmit)) {
    stats_.retransmits += first_unsent_;
    obs::flight::record(obs::flight::Kind::Retransmit, self_,
                        static_cast<std::int64_t>(first_unsent_),
                        static_cast<std::int64_t>(view_id_), "request timeout");
    const std::size_t cap = std::max<std::uint32_t>(1, cfg_.max_send_batch);
    for (std::size_t b = 0; b < first_unsent_; b += cap) {
      sendRequestFrame(b, std::min(first_unsent_, b + cap), now);
    }
  }

  // Failure detection.
  for (HostId h : members_) {
    if (h == self_ || suspects_.count(h)) continue;
    auto it = last_heard_.find(h);
    if (it != last_heard_.end() && now - it->second > Duration(cfg_.failure_timeout)) {
      FTL_INFO("consul", "host " << self_ << ": suspects host " << h);
      suspects_.insert(h);
    }
  }

  // View change initiation/retry by the coordinator (lowest unsuspected id).
  if (!suspects_.empty() || !pending_joiners_.empty()) {
    HostId coordinator = net::kNoHost;
    for (HostId h : members_) {
      if (!suspects_.count(h)) {
        coordinator = h;
        break;
      }
    }
    if (coordinator == self_) {
      const bool stalled = vc_ && now - vc_->started > Duration(cfg_.view_change_timeout);
      if (!vc_ || stalled) {
        std::vector<HostId> proposed;
        for (HostId h : members_) {
          if (!suspects_.count(h) && !pending_joiners_.count(h)) proposed.push_back(h);
        }
        for (HostId h : pending_joiners_) proposed.push_back(h);
        startViewChange(sorted(std::move(proposed)), now);
      }
    }
  }
}

void ConsulNode::startViewChange(std::vector<HostId> proposed, TimePoint now) {
  ++stats_.view_changes_started;
  obs::flight::record(obs::flight::Kind::ViewChange, self_,
                      static_cast<std::int64_t>(view_id_),
                      static_cast<std::int64_t>(proposed.size()));
  ViewChange vc;
  vc.new_view_id = std::max(view_id_, vc_ ? vc_->new_view_id : 0) + 1;
  vc.proposed = std::move(proposed);
  vc.started = now;
  for (HostId h : vc.proposed) {
    if (!contains(members_, h) || pending_joiners_.count(h)) vc.joiners.insert(h);
  }
  for (HostId h : vc.proposed) {
    if (h != self_ && contains(members_, h) && !suspects_.count(h) && !vc.joiners.count(h)) {
      vc.awaiting.insert(h);
    }
  }
  FTL_INFO("consul", "host " << self_ << ": starting view change to view " << vc.new_view_id
                             << " (" << vc.proposed.size() << " members, " << vc.joiners.size()
                             << " joiners)");
  ViewProbeMsg pm;
  pm.new_view_id = vc.new_view_id;
  pm.proposed_members = vc.proposed;
  const Bytes wire = pm.encode();
  for (HostId h : vc.awaiting) {
    ep_.send(h, static_cast<std::uint16_t>(MsgType::ViewProbe), wire);
  }
  vc_ = std::move(vc);
  maybeFinishViewChange(now);
}

void ConsulNode::handleViewProbe(HostId src, const ViewProbeMsg& m) {
  ViewStateMsg vs;
  vs.new_view_id = m.new_view_id;
  vs.delivered = next_deliver_ - 1;
  vs.log_entries.reserve(log_.size());
  for (const auto& [g, e] : log_) vs.log_entries.push_back(e);
  ep_.send(src, static_cast<std::uint16_t>(MsgType::ViewState), vs.encode());
}

void ConsulNode::handleViewState(HostId src, ViewStateMsg m) {
  if (!vc_ || m.new_view_id != vc_->new_view_id) return;
  if (!vc_->awaiting.count(src)) return;
  vc_->awaiting.erase(src);
  vc_->responses[src] = std::move(m);
  maybeFinishViewChange(Clock::now());
}

void ConsulNode::maybeFinishViewChange(TimePoint now) {
  if (vc_ && vc_->awaiting.empty()) finishViewChange(now);
}

void ConsulNode::finishViewChange(TimePoint now) {
  ViewChange vc = std::move(*vc_);
  vc_.reset();

  // 1. Union of every survivor's log; compute the weakest member's frontier.
  std::uint64_t min_hd = next_deliver_ - 1;
  for (auto& [h, resp] : vc.responses) {
    min_hd = std::min(min_hd, resp.delivered);
    for (auto& e : resp.log_entries) {
      if (e.gseq >= next_deliver_ && log_.find(e.gseq) == log_.end()) {
        log_.emplace(e.gseq, std::move(e));
      }
    }
  }

  // 2. Fill holes (slots assigned by a dead sequencer whose message reached
  //    no survivor) with no-op entries so the order stays contiguous.
  std::uint64_t max_g = next_deliver_ - 1;
  if (!log_.empty()) max_g = std::max(max_g, log_.rbegin()->first);
  for (std::uint64_t g = next_deliver_; g <= max_g; ++g) {
    if (log_.find(g) == log_.end()) {
      LogEntry hole;
      hole.gseq = g;
      hole.kind = EntryKind::Data;
      hole.origin = net::kNoHost;
      log_.emplace(g, std::move(hole));
    }
  }
  deliverReady();
  FTL_ENSURE(next_deliver_ == max_g + 1, "view-change catch-up left a gap");

  // 3. The view event itself occupies the next slot of the total order.
  const std::uint64_t view_gseq = max_g + 1;
  known_last_ = std::max(known_last_, view_gseq);
  ViewEvent ve;
  ve.view_id = vc.new_view_id;
  ve.members = vc.proposed;
  for (HostId h : members_) {
    if (!contains(vc.proposed, h) || vc.joiners.count(h)) ve.failed.push_back(h);
  }
  for (HostId h : vc.joiners) ve.joined.push_back(h);

  Writer vw;
  ve.encode(vw);
  LogEntry view_entry;
  view_entry.gseq = view_gseq;
  view_entry.kind = EntryKind::View;
  view_entry.payload = vw.take();
  log_.emplace(view_gseq, view_entry);

  // Deliver the view event locally (installs the view, rebuilds sequencer
  // role, notifies the app).
  FTL_ENSURE(next_deliver_ == view_gseq, "view event must be next to deliver");
  deliverReady();
  (void)now;

  // 4. Ship the new view to survivors (with catch-up entries) and joiners
  //    (with a snapshot instead).
  NewViewMsg nv;
  nv.view = ve;
  nv.view_gseq = view_gseq;
  nv.entries_from = min_hd;
  for (auto g = min_hd + 1; g < view_gseq; ++g) {
    auto it = log_.find(g);
    if (it != log_.end()) nv.entries.push_back(it->second);
  }
  const Bytes survivor_wire = nv.encode();
  for (HostId h : ve.members) {
    if (h == self_ || vc.joiners.count(h)) continue;
    ep_.send(h, static_cast<std::uint16_t>(MsgType::NewView), survivor_wire);
  }
  if (!vc.joiners.empty()) {
    NewViewMsg nv_join = nv;
    nv_join.entries.clear();
    nv_join.has_snapshot = true;
    nv_join.snapshot_gseq = view_gseq;
    nv_join.snapshot = wrapSnapshot();
    const Bytes joiner_wire = nv_join.encode();
    for (HostId h : vc.joiners) {
      ep_.send(h, static_cast<std::uint16_t>(MsgType::NewView), joiner_wire);
    }
  }
}

void ConsulNode::handleNewView(NewViewMsg m, TimePoint now) {
  if (m.view.view_id <= view_id_ && is_member_) return;  // stale
  if (m.has_snapshot) {
    if (!joining_) return;  // stale snapshot for an earlier incarnation
    FTL_INFO("consul", "host " << self_ << ": installing snapshot at gseq " << m.snapshot_gseq);
    obs::flight::record(obs::flight::Kind::SnapshotInstall, self_,
                        static_cast<std::int64_t>(m.snapshot_gseq),
                        static_cast<std::int64_t>(m.view.view_id));
    unwrapSnapshot(m.snapshot);
    log_.clear();
    pending_.clear();
    first_unsent_ = 0;
    next_origin_seq_ = dedup_[self_] + 1;  // resume our origin numbering
    next_deliver_ = m.snapshot_gseq + 1;
    stable_ = m.snapshot_gseq;
    known_last_ = m.snapshot_gseq;
    have_gap_ = false;
    // The snapshot already reflects the view event's application effects;
    // report the membership but not the failure/join deltas.
    ViewEvent ve = m.view;
    ve.failed.clear();
    ve.joined.clear();
    installViewLocked(ve, m.view_gseq, now);
    return;
  }
  if (!is_member_) return;
  for (auto& e : m.entries) {
    if (e.gseq >= next_deliver_ && log_.find(e.gseq) == log_.end()) {
      log_.emplace(e.gseq, std::move(e));
    }
  }
  if (m.view_gseq >= next_deliver_ && log_.find(m.view_gseq) == log_.end()) {
    Writer w;
    m.view.encode(w);
    LogEntry view_entry;
    view_entry.gseq = m.view_gseq;
    view_entry.kind = EntryKind::View;
    view_entry.payload = w.take();
    log_.emplace(m.view_gseq, std::move(view_entry));
  }
  known_last_ = std::max(known_last_, m.view_gseq);
  deliverReady();
  updateGapState(now);
  truncateLog();
}

void ConsulNode::handleJoinRequest(HostId src, const JoinRequestMsg& m, TimePoint now) {
  (void)now;
  if (!is_member_) return;
  auto& inc = joiner_incarnation_[src];
  if (m.incarnation < inc) return;
  inc = m.incarnation;
  if (contains(members_, src)) {
    // The host crashed and restarted before the failure was detected: treat
    // it as failed (its volatile state is gone) and re-admit it with a
    // snapshot in the same view change.
    suspects_.insert(src);
  }
  pending_joiners_.insert(src);
}

void ConsulNode::truncateLog() {
  const std::uint64_t keep_above = std::min(stable_, next_deliver_ - 1);
  while (!log_.empty() && log_.begin()->first <= keep_above) {
    log_.erase(log_.begin());
  }
}

Bytes ConsulNode::wrapSnapshot() {
  // take_snapshot must cover everything counted by next_deliver_; staged
  // deliveries that have not reached the state machine yet would be silently
  // skipped by the joiner otherwise.
  flushDeliveries();
  Writer w;
  w.u32(static_cast<std::uint32_t>(dedup_.size()));
  for (const auto& [h, s] : dedup_) {
    w.u32(h);
    w.u64(s);
  }
  w.bytes(cb_.take_snapshot ? cb_.take_snapshot() : Bytes{});
  return w.take();
}

void ConsulNode::unwrapSnapshot(const Bytes& b) {
  Reader r(b);
  apply_buffer_.clear();  // superseded by the snapshot's state
  apply_arena_.reset();   // the dropped deliveries' payload staging with it
  dedup_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const HostId h = r.u32();
    dedup_[h] = r.u64();
  }
  const Bytes app = r.bytes();
  if (cb_.install_snapshot) cb_.install_snapshot(app);
}

}  // namespace ftl::consul

// ConsulNode: the group-communication substrate one simulated processor
// runs (our reproduction of Consul [Mishra/Peterson/Schlichting]; see
// DESIGN.md "Substitutions").
//
// Services provided, mirroring what the FT-Linda implementation needs:
//  - atomic multicast: broadcast() hands in an opaque payload; every group
//    member receives every payload exactly once, in one global total order,
//    via the on_deliver callback;
//  - membership: crashes and joins are detected and delivered through the
//    SAME total order (on_view callback), so every replica interleaves
//    failure notifications with data identically — this is what makes the
//    FT-Linda failure-tuple semantics deterministic;
//  - recovery: a restarted processor calls joinGroup(); the coordinator
//    ships it a state snapshot (via the take/install_snapshot callbacks)
//    plus a view change adding it back.
//
// Protocol: fixed sequencer (lowest-id live member) assigns global sequence
// numbers; gaps are repaired by negative acknowledgements against the
// sequencer's log; periodic acks establish stability for log truncation;
// heartbeat timeouts trigger a coordinator-driven view change that collects
// surviving members' logs, fills holes, and installs the next view as an
// ordered event. Exactly-once delivery across sequencer failover comes from
// per-origin sequence numbers (origins retransmit; replicas dedup).
//
// Threading: one service thread per node runs the protocol and makes all
// upcalls (so upcalls are serialized and ordered). broadcast() may be called
// from any thread. Callbacks MUST NOT call back into ConsulNode.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "consul/config.hpp"
#include "consul/messages.hpp"
#include "net/transport.hpp"

namespace ftl::consul {

/// One totally-ordered application payload. `payload` views the node's
/// delivery arena: it is valid only for the duration of the on_deliver /
/// on_deliver_batch callback (the arena epoch resets right after). Copy
/// (payload.toOwned()) to retain.
struct Delivery {
  std::uint64_t gseq = 0;
  HostId origin = net::kNoHost;
  std::uint64_t origin_seq = 0;
  BytesView payload;
  // Origin-local broadcast-enqueue stamp (nowNanos), carried only on the
  // origin host for sampled commands (0 otherwise). Lets the apply side
  // close the ordering stage (ftl_stage_order_ns) at the point the command
  // actually reaches the state machine — including the apply-batch window —
  // matching the "ags.order" trace span.
  std::int64_t enq_ns = 0;
};

/// One totally-ordered membership event.
struct ViewInfo {
  std::uint64_t view_id = 0;
  std::uint64_t gseq = 0;  // 0 for the synthetic initial view
  std::vector<HostId> members;
  std::vector<HostId> failed;
  std::vector<HostId> joined;
};

class ConsulNode {
 public:
  struct Callbacks {
    /// Ordered application payload (identical sequence at every member).
    std::function<void(const Delivery&)> on_deliver;
    /// Optional batched form, preferred over on_deliver when set: a run of
    /// CONSECUTIVE ordered payloads (gseq strictly increasing, no view event
    /// between them). Coalescing is bounded by ConsulConfig::max_apply_batch
    /// and ConsulConfig::apply_batch_window; batch boundaries are local
    /// scheduling, so the receiver must treat the batch exactly like the
    /// same deliveries arriving one at a time.
    std::function<void(const std::vector<Delivery>&)> on_deliver_batch;
    /// Ordered membership event. Also fired once at start() for the
    /// bootstrap view (gseq 0).
    std::function<void(const ViewInfo&)> on_view;
    /// Serialize application state covering everything delivered so far
    /// (used to bring joiners up to date).
    std::function<Bytes()> take_snapshot;
    /// Replace application state with a snapshot (joiner side).
    std::function<void(const Bytes&)> install_snapshot;
  };

  /// `group` is the full set of hosts that may ever be members. With
  /// `join_existing == false` the node boots as a member of the initial view
  /// (all of `group`); with true it starts outside the group and joinGroup()
  /// must be called.
  ConsulNode(net::Transport& net, HostId self, std::vector<HostId> group, ConsulConfig cfg,
             Callbacks cb, bool join_existing = false);
  ~ConsulNode();

  ConsulNode(const ConsulNode&) = delete;
  ConsulNode& operator=(const ConsulNode&) = delete;

  /// Register a handler for non-Consul messages arriving at this host's
  /// endpoint (message types >= kForeignTypeBase). The node's service thread
  /// demultiplexes, x-kernel style, and invokes the handler WITHOUT holding
  /// protocol locks (so the handler may call broadcast()). Must be set
  /// before start().
  static constexpr std::uint16_t kForeignTypeBase = 32;
  void setForeignHandler(std::function<void(const net::Message&)> handler);

  /// Launch the service thread. Must be called exactly once.
  void start();

  /// Stop the service thread (local shutdown, not a simulated crash — use
  /// Network::crash for that). Idempotent.
  void stop();

  /// stop() and wait for the service thread to exit. Required before a
  /// replacement node may reuse this host's endpoint: an old service thread
  /// that outlives Network::recover() would steal the new node's messages.
  void shutdown();

  /// Atomic multicast of `payload` to the group. Asynchronous: returns the
  /// per-origin sequence number; delivery is signalled through on_deliver at
  /// every member (including this one). Retries across sequencer failures
  /// until delivered. Must only be called while the node is a member.
  /// `trace_id` (0 = untraced) threads the submitting AGS's id into the
  /// ordering-path stage profiler (ags.coalesce span + stage histograms).
  std::uint64_t broadcast(Bytes payload, std::uint64_t trace_id = 0);

  /// Commands submitted here but not yet delivered back (origin backlog) —
  /// the watchdog's ordering-progress probe.
  std::size_t pendingCount() const;

  /// Begin (re)joining the group after recovery; asynchronous, completes
  /// when on_view/install_snapshot fire. `incarnation` should increase on
  /// every recovery of the same host.
  void joinGroup(std::uint64_t incarnation);

  /// True once this node belongs to the current view.
  bool isMember() const;

  /// Highest contiguously delivered global sequence number.
  std::uint64_t delivered() const;

  /// Current view (id + members) as known locally.
  ViewInfo currentView() const;

  /// Entries currently retained for retransmission (log above stability).
  std::size_t logSize() const;

  /// Highest gseq known to be delivered at every member (stability floor).
  std::uint64_t stableSeq() const;

  /// Protocol event counters (monotone since construction). Also exported
  /// through the ftl::obs registry as ftl_consul_*{host="N"} series.
  struct Stats {
    std::uint64_t broadcasts = 0;          // broadcast() calls
    std::uint64_t request_frames = 0;      // Request frames sent (<= broadcasts
                                           // when send coalescing kicks in)
    std::uint64_t heartbeats_sent = 0;     // per-destination
    std::uint64_t heartbeats_received = 0;
    std::uint64_t retransmits = 0;         // request retransmissions (timeout/view)
    std::uint64_t nacks_sent = 0;
    std::uint64_t nacks_received = 0;      // sequencer side: repair requests served
    std::uint64_t acks_sent = 0;
    std::uint64_t view_changes_started = 0;
    std::uint64_t views_installed = 0;
    std::uint64_t deliveries = 0;          // data payloads handed to the app
    std::uint64_t flushes = 0;             // apply batches handed to the app
    std::uint64_t self_deliveries = 0;     // broadcasts taken by the
                                           // sequencer's self-delivery
                                           // shortcut (no Request frame)
  };
  Stats stats() const;

  HostId self() const { return self_; }

 private:
  struct Pending {
    std::uint64_t origin_seq;
    Bytes payload;
    TimePoint last_sent;
    std::uint64_t trace_id = 0;  // AGS trace id, 0 = untraced
    std::int64_t enq_ns = 0;     // broadcast() stamp; 0 = unsampled
    bool coalesce_done = false;  // first frame send already recorded
  };

  // All handlers run on the service thread with mutex_ held.
  void serviceLoop();
  void onTick(TimePoint now);
  void handleMessage(const net::Message& m, TimePoint now);
  void handleHeartbeat(HostId src, const HeartbeatMsg& m, TimePoint now);
  void handleRequest(HostId src, RequestMsg m);
  void handleOrdered(OrderedMsg m);
  void handleNack(HostId src, const NackMsg& m);
  void handleAck(HostId src, const AckMsg& m);
  void handleViewProbe(HostId src, const ViewProbeMsg& m);
  void handleViewState(HostId src, ViewStateMsg m);
  void handleNewView(NewViewMsg m, TimePoint now);
  void handleJoinRequest(HostId src, const JoinRequestMsg& m, TimePoint now);

  void updateGapState(TimePoint now);   // recompute have_gap_/gap_since_
  void deliverReady();                  // drain contiguous log prefix
  void bufferDelivery(const LogEntry& e);      // dedup + stage one data entry
  void maybeFlushDeliveries(TimePoint now);    // honor apply_batch_window
  void flushDeliveries();                      // upcall staged deliveries
  void installViewLocked(const ViewEvent& ve, std::uint64_t gseq, TimePoint now);
  void startViewChange(std::vector<HostId> proposed, TimePoint now);
  void maybeFinishViewChange(TimePoint now);
  void finishViewChange(TimePoint now);
  void truncateLog();
  /// Pack pending_[begin, end) into one Request frame to the sequencer and
  /// stamp last_sent.
  void sendRequestFrame(std::size_t begin, std::size_t end, TimePoint now);
  /// Ship every not-yet-sent pending entry, in frames of max_send_batch.
  void flushUnsentLocked(TimePoint now);
  HostId sequencer() const;  // lowest-id member
  bool isSequencer() const { return is_member_ && !members_.empty() && members_.front() == self_; }
  std::vector<HostId> othersInGroup() const;
  Bytes wrapSnapshot();  // flushes staged deliveries first (snapshot coverage)
  void unwrapSnapshot(const Bytes& b);

  net::Transport& net_;
  net::Endpoint ep_;
  const HostId self_;
  const std::vector<HostId> group_;
  const ConsulConfig cfg_;
  Callbacks cb_;
  std::function<void(const net::Message&)> foreign_handler_;

  mutable std::mutex mutex_;
  bool running_ = false;
  bool stop_requested_ = false;

  // View / membership.
  std::uint64_t view_id_ = 1;
  std::vector<HostId> members_;
  bool is_member_ = false;
  bool joining_ = false;
  std::uint64_t incarnation_ = 0;
  TimePoint last_join_sent_{};

  // Ordered log.
  std::map<std::uint64_t, LogEntry> log_;  // gseq -> entry, truncated below stable_
  std::uint64_t next_deliver_ = 1;
  std::uint64_t stable_ = 0;
  std::map<HostId, std::uint64_t> dedup_;  // origin -> max origin_seq delivered
  std::uint64_t known_last_ = 0;  // highest gseq known to exist (for gap nacks)
  bool have_gap_ = false;
  TimePoint gap_since_{};

  // Contiguous data entries staged for the next (batched) application
  // upcall. next_deliver_ counts them as delivered for protocol purposes
  // (acks, stability); the application sees them at the next flush — at most
  // apply_batch_window + tick later, and always before a view upcall or a
  // snapshot.
  std::vector<Delivery> apply_buffer_;
  TimePoint apply_buffer_since_{};
  // Epoch arena backing apply_buffer_ payloads: payload bytes are staged
  // here (bump-allocated, no per-delivery heap traffic) and bulk-freed by
  // reset() right after each flushDeliveries() upcall returns.
  Arena apply_arena_;

  // Sequencer role.
  std::uint64_t next_gseq_ = 1;
  std::map<HostId, std::uint64_t> member_acks_;
  std::map<HostId, std::uint64_t> assigned_;  // origin -> max origin_seq given a gseq

  // Origin role. pending_ holds every broadcast not yet delivered back, in
  // origin_seq order; the first first_unsent_ entries are in flight to the
  // sequencer, the rest are STAGED (sender-side coalescing): they ship as
  // one frame when the in-flight commands deliver or the stage reaches
  // max_send_batch. Staging is pure scheduling — it never changes what the
  // sequencer orders, only how many frames carry it.
  std::uint64_t next_origin_seq_ = 1;
  std::deque<Pending> pending_;
  std::size_t first_unsent_ = 0;  // index of the first staged (unsent) entry
  /// Enqueue stamp of a broadcast taken by the self-delivery shortcut,
  /// consumed by bufferDelivery() within the same locked section (the
  /// shortcut never stages a Pending, so the stamp cannot ride there).
  /// Feeds the ordering-stage histogram exactly like a Pending's enq_ns.
  std::int64_t fastpath_enq_ns_ = 0;

  // Failure detection.
  std::map<HostId, TimePoint> last_heard_;
  std::set<HostId> suspects_;
  TimePoint last_heartbeat_sent_{};
  TimePoint last_ack_sent_{};

  // View change coordination.
  struct ViewChange {
    std::uint64_t new_view_id = 0;
    std::vector<HostId> proposed;       // next view's members (incl. joiners)
    std::set<HostId> awaiting;          // surviving members yet to respond
    std::map<HostId, ViewStateMsg> responses;
    std::set<HostId> joiners;
    TimePoint started{};
  };
  std::optional<ViewChange> vc_;
  std::set<HostId> pending_joiners_;  // join requests seen, next view change
  std::map<HostId, std::uint64_t> joiner_incarnation_;

  // Observability (stats_ guarded by mutex_ like the protocol state).
  Stats stats_;
  std::uint64_t obs_token_ = 0;

  std::thread service_;
};

}  // namespace ftl::consul

#include "ftlinda/ags_text.hpp"

#include <cctype>
#include <sstream>

#include "common/assert.hpp"
#include "tuple/parse.hpp"

namespace ftl::ftlinda {

namespace {

using tuple::parsePatternAt;
using tuple::parseValueAt;

/// Keyword/punctuation scanner; values, patterns and numbers are delegated
/// to the tuple-language parser at the current offset.
class AgsScanner {
 public:
  AgsScanner(std::string_view text, std::size_t start) : text_(text), pos_(start) {}

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "AGS parse error at offset " << pos_ << ": " << what;
    throw Error(os.str());
  }

  void skipWs() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool tryTake(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!tryTake(c)) fail(std::string("expected '") + c + "'");
  }

  /// Peek the next identifier-like word without consuming it.
  std::string peekWord() {
    skipWs();
    std::size_t p = pos_;
    std::string w;
    while (p < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[p])) || text_[p] == '_')) {
      w.push_back(text_[p++]);
    }
    return w;
  }

  std::string word() {
    const std::string w = peekWord();
    if (w.empty()) fail("expected a word");
    pos_ += w.size();
    return w;
  }

  bool tryWord(const std::string& w) {
    if (peekWord() != w) return false;
    pos_ += w.size();
    return true;
  }

  tuple::Value value() {
    skipWs();
    return parseValueAt(text_, pos_);
  }

  tuple::Pattern pattern() {
    skipWs();
    return parsePatternAt(text_, pos_);
  }

  std::uint64_t integer() {
    skipWs();
    std::uint64_t n = 0;
    std::size_t digits = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      n = n * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
      ++digits;
    }
    if (digits == 0) fail("expected a number");
    return n;
  }

  std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_;
};

TsHandle parseHandle(AgsScanner& s) {
  const std::string w = s.peekWord();
  if (w == "TSmain") {
    s.word();
    return ts::kTsMain;
  }
  if (w.rfind("ts", 0) == 0 && w.size() > 2) {
    s.word();
    TsHandle h = 0;
    for (std::size_t i = 2; i < w.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(w[i]))) s.fail("bad handle '" + w + "'");
      h = h * 10 + static_cast<TsHandle>(w[i] - '0');
    }
    return h;
  }
  if (w.rfind("scratch", 0) == 0 && w.size() > 7) {
    s.word();
    TsHandle h = 0;
    for (std::size_t i = 7; i < w.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(w[i]))) s.fail("bad handle '" + w + "'");
      h = h * 10 + static_cast<TsHandle>(w[i] - '0');
    }
    return h | ts::kLocalHandleBit;
  }
  s.fail("expected a tuple-space handle (TSmain / tsN / scratchN), got '" + w + "'");
}

tuple::ValueType parseTypeWord(AgsScanner& s) {
  const std::string w = s.word();
  if (w == "int") return ValueType::Int;
  if (w == "real") return ValueType::Real;
  if (w == "bool") return ValueType::Bool;
  if (w == "str") return ValueType::Str;
  if (w == "blob") return ValueType::Blob;
  s.fail("unknown type '" + w + "' (want int/real/bool/str/blob)");
}

TupleTemplate parseTemplate(AgsScanner& s) {
  TupleTemplate t;
  s.expect('(');
  if (s.tryTake(')')) return t;
  do {
    if (s.tryTake('?')) {
      const auto idx = static_cast<std::uint16_t>(s.integer());
      if (s.tryTake('+')) {
        t.fields.push_back(boundExpr(idx, ArithOp::Add, s.value()));
      } else if (s.tryTake('-')) {
        t.fields.push_back(boundExpr(idx, ArithOp::Sub, s.value()));
      } else if (s.tryTake('*')) {
        t.fields.push_back(boundExpr(idx, ArithOp::Mul, s.value()));
      } else {
        t.fields.push_back(bound(idx));
      }
    } else {
      TemplateField f;
      f.kind = TemplateField::Kind::Literal;
      f.literal = s.value();
      t.fields.push_back(std::move(f));
    }
  } while (s.tryTake(','));
  s.expect(')');
  return t;
}

PatternTemplate parsePatternTemplate(AgsScanner& s) {
  PatternTemplate p;
  s.expect('(');
  if (s.tryTake(')')) return p;
  do {
    PatternTemplateField f;
    if (s.tryTake('?')) {
      if (std::isdigit(static_cast<unsigned char>(s.peek()))) {
        f.kind = PatternTemplateField::Kind::BoundRef;
        f.ref = static_cast<std::uint16_t>(s.integer());
      } else {
        f.kind = PatternTemplateField::Kind::Formal;
        f.formal_type = parseTypeWord(s);
      }
    } else {
      f.kind = PatternTemplateField::Kind::Actual;
      f.actual = s.value();
    }
    p.fields.push_back(std::move(f));
  } while (s.tryTake(','));
  s.expect(')');
  return p;
}

BodyOp parseBodyOp(AgsScanner& s) {
  const std::string w = s.word();
  if (w == "out") {
    const TsHandle h = parseHandle(s);
    return opOut(h, parseTemplate(s));
  }
  if (w == "inp" || w == "rdp") {
    const TsHandle h = parseHandle(s);
    PatternTemplate p = parsePatternTemplate(s);
    return w == "inp" ? opInp(h, std::move(p)) : opRdp(h, std::move(p));
  }
  if (w == "move" || w == "copy") {
    const TsHandle src = parseHandle(s);
    const TsHandle dst = parseHandle(s);
    PatternTemplate p = parsePatternTemplate(s);
    return w == "move" ? opMove(src, dst, std::move(p)) : opCopy(src, dst, std::move(p));
  }
  if (w == "create_TS") {
    s.expect('(');
    TsAttributes attrs;
    if (s.tryWord("stable")) {
      attrs.stable = true;
    } else if (s.tryWord("volatile")) {
      attrs.stable = false;
    } else {
      s.fail("create_TS wants 'stable' or 'volatile'");
    }
    s.expect(',');
    if (s.tryWord("shared")) {
      attrs.shared = true;
    } else if (s.tryWord("private")) {
      attrs.shared = false;
    } else {
      s.fail("create_TS wants 'shared' or 'private'");
    }
    s.expect(')');
    return opCreateTs(attrs);
  }
  if (w == "destroy_TS") {
    return opDestroyTs(parseHandle(s));
  }
  s.fail("unknown body operation '" + w + "'");
}

Guard parseGuard(AgsScanner& s) {
  if (s.tryWord("true")) return guardTrue();
  const std::string w = s.word();
  Guard::Kind kind;
  if (w == "in") {
    kind = Guard::Kind::In;
  } else if (w == "rd") {
    kind = Guard::Kind::Rd;
  } else if (w == "inp") {
    kind = Guard::Kind::Inp;
  } else if (w == "rdp") {
    kind = Guard::Kind::Rdp;
  } else {
    s.fail("unknown guard '" + w + "' (want true/in/rd/inp/rdp)");
  }
  const TsHandle h = parseHandle(s);
  tuple::Pattern p = s.pattern();
  switch (kind) {
    case Guard::Kind::In: return guardIn(h, std::move(p));
    case Guard::Kind::Rd: return guardRd(h, std::move(p));
    case Guard::Kind::Inp: return guardInp(h, std::move(p));
    default: return guardRdp(h, std::move(p));
  }
}

Branch parseBranch(AgsScanner& s) {
  Branch b;
  b.guard = parseGuard(s);
  s.expect('=');
  s.expect('>');
  if (s.tryWord("skip")) return b;
  do {
    b.body.push_back(parseBodyOp(s));
  } while (s.tryTake(';'));
  return b;
}

std::string valueToText(const Value& v) {
  switch (v.type()) {
    case ValueType::Str: {
      // Value::toString does not escape; emit the grammar's escape set so
      // quotes and newlines round-trip (other bytes pass through raw).
      std::string out = "\"";
      for (char c : v.asStr()) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
      }
      out += '"';
      return out;
    }
    case ValueType::Real: {
      // Value::toString may print a whole real without '.', which would
      // re-parse as an int; force a real-typed literal with full precision.
      std::ostringstream os;
      os.precision(17);
      os << v.asReal();
      std::string s = os.str();
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::Blob: {
      static const char* digits =
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
      const Bytes& b = v.asBlob();
      std::string out = "b64\"";
      for (std::size_t i = 0; i < b.size(); i += 3) {
        std::uint32_t acc = static_cast<std::uint32_t>(b[i]) << 16;
        if (i + 1 < b.size()) acc |= static_cast<std::uint32_t>(b[i + 1]) << 8;
        if (i + 2 < b.size()) acc |= b[i + 2];
        out += digits[(acc >> 18) & 0x3f];
        out += digits[(acc >> 12) & 0x3f];
        out += i + 1 < b.size() ? digits[(acc >> 6) & 0x3f] : '=';
        out += i + 2 < b.size() ? digits[acc & 0x3f] : '=';
      }
      out += '"';
      return out;
    }
    default:
      return v.toString();  // int / bool / quoted string round-trip as-is
  }
}

void renderTemplate(std::ostringstream& os, const TupleTemplate& t) {
  os << '(';
  for (std::size_t i = 0; i < t.fields.size(); ++i) {
    if (i) os << ", ";
    const TemplateField& f = t.fields[i];
    switch (f.kind) {
      case TemplateField::Kind::Literal:
        os << valueToText(f.literal);
        break;
      case TemplateField::Kind::FormalRef:
        os << '?' << f.formal_index;
        break;
      case TemplateField::Kind::Expr: {
        const char* op = f.arith == ArithOp::Add ? "+" : f.arith == ArithOp::Sub ? "-" : "*";
        os << '?' << f.formal_index << ' ' << op << ' ' << valueToText(f.literal);
        break;
      }
    }
  }
  os << ')';
}

void renderPatternTemplate(std::ostringstream& os, const PatternTemplate& p) {
  os << '(';
  for (std::size_t i = 0; i < p.fields.size(); ++i) {
    if (i) os << ", ";
    const PatternTemplateField& f = p.fields[i];
    switch (f.kind) {
      case PatternTemplateField::Kind::Actual:
        os << valueToText(f.actual);
        break;
      case PatternTemplateField::Kind::Formal:
        os << '?' << tuple::valueTypeName(f.formal_type);
        break;
      case PatternTemplateField::Kind::BoundRef:
        os << '?' << f.ref;
        break;
    }
  }
  os << ')';
}

void renderPattern(std::ostringstream& os, const tuple::Pattern& p) {
  os << '(';
  const auto& fields = p.fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << ", ";
    if (fields[i].kind == tuple::PatternField::Kind::Actual) {
      os << valueToText(fields[i].actual);
    } else {
      os << '?' << tuple::valueTypeName(fields[i].formal_type);
    }
  }
  os << ')';
}

}  // namespace

Ags parseAgsAt(std::string_view text, std::size_t& pos) {
  AgsScanner s(text, pos);
  s.expect('<');
  Ags ags;
  do {
    ags.branches.push_back(parseBranch(s));
  } while (s.tryWord("or"));
  s.expect('>');
  pos = s.pos();
  return ags;
}

Ags parseAgs(std::string_view text) {
  std::size_t pos = 0;
  Ags ags = parseAgsAt(text, pos);
  AgsScanner s(text, pos);
  s.skipWs();
  if (s.pos() < text.size()) s.fail("trailing input after AGS");
  return ags;
}

std::string handleToText(TsHandle h) {
  if (h == ts::kTsMain) return "TSmain";
  std::ostringstream os;
  if (ts::isLocalHandle(h)) {
    os << "scratch" << (h & ~ts::kLocalHandleBit);
  } else {
    os << "ts" << h;
  }
  return os.str();
}

std::string agsToText(const Ags& ags) {
  std::ostringstream os;
  os << "< ";
  for (std::size_t i = 0; i < ags.branches.size(); ++i) {
    if (i) os << " or ";
    const Branch& b = ags.branches[i];
    switch (b.guard.kind) {
      case Guard::Kind::True: os << "true"; break;
      case Guard::Kind::In: os << "in "; break;
      case Guard::Kind::Rd: os << "rd "; break;
      case Guard::Kind::Inp: os << "inp "; break;
      case Guard::Kind::Rdp: os << "rdp "; break;
    }
    if (b.guard.kind != Guard::Kind::True) {
      os << handleToText(b.guard.ts) << ' ';
      renderPattern(os, b.guard.pattern);
    }
    os << " => ";
    if (b.body.empty()) {
      os << "skip";
    } else {
      for (std::size_t j = 0; j < b.body.size(); ++j) {
        if (j) os << "; ";
        const BodyOp& op = b.body[j];
        switch (op.op) {
          case OpCode::Out:
            os << "out " << handleToText(op.ts) << ' ';
            renderTemplate(os, op.tmpl);
            break;
          case OpCode::Inp:
          case OpCode::Rdp:
            os << opCodeName(op.op) << ' ' << handleToText(op.ts) << ' ';
            renderPatternTemplate(os, op.pattern);
            break;
          case OpCode::Move:
          case OpCode::Copy:
            os << opCodeName(op.op) << ' ' << handleToText(op.ts) << ' '
               << handleToText(op.dst) << ' ';
            renderPatternTemplate(os, op.pattern);
            break;
          case OpCode::CreateTs:
            os << "create_TS(" << (op.create_attrs.stable ? "stable" : "volatile") << ", "
               << (op.create_attrs.shared ? "shared" : "private") << ')';
            break;
          case OpCode::DestroyTs:
            os << "destroy_TS " << handleToText(op.ts);
            break;
        }
      }
    }
  }
  os << " >";
  return os.str();
}

}  // namespace ftl::ftlinda

// Textual form of an Atomic Guarded Statement — the notation the paper
// writes, embedding the tuple language of tuple/parse.hpp:
//
//   < in TSmain ("count", ?int) => out TSmain ("count", ?0 + 1)
//     or true => out TSmain ("count", 0) >
//
// Grammar (whitespace-insensitive; `#` starts a to-end-of-line comment):
//   ags      := '<' branch ('or' branch)* '>'
//   branch   := guard '=>' body
//   guard    := 'true' | ('in'|'rd'|'inp'|'rdp') handle pattern
//   body     := 'skip' | op (';' op)*
//   op       := 'out' handle template
//            | ('inp'|'rdp') handle ptemplate
//            | ('move'|'copy') handle handle ptemplate
//            | 'create_TS' '(' ('stable'|'volatile') ',' ('shared'|'private') ')'
//            | 'destroy_TS' handle
//   handle   := 'TSmain' | 'ts' INT | 'scratch' INT     (scratch = local)
//   template := '(' [tfield (',' tfield)*] ')'
//   tfield   := value | '?' INT [('+'|'-'|'*') value]   (?N = guard formal N)
//   ptemplate:= '(' [pfield (',' pfield)*] ')'
//   pfield   := value | '?' typename | '?' INT
//   pattern / value := as in tuple/parse.hpp
//
// This is the dump format ftl-lint consumes (tools/ftl_lint.cpp), written by
// agsToText so every statement round-trips: parseAgs(agsToText(a)) == a's
// encoding. Parse errors throw ftl::Error with the absolute input offset.
#pragma once

#include <string>
#include <string_view>

#include "ftlinda/ops.hpp"

namespace ftl::ftlinda {

/// Parse one AGS starting at `pos`; advances `pos` past the closing '>'.
Ags parseAgsAt(std::string_view text, std::size_t& pos);

/// Parse a whole string holding exactly one AGS (trailing input is an error).
Ags parseAgs(std::string_view text);

/// Render in the grammar above, one line. Inverse of parseAgs.
std::string agsToText(const Ags& ags);

/// Render a handle ("TSmain", "ts7", "scratch3").
std::string handleToText(TsHandle h);

}  // namespace ftl::ftlinda

#include "ftlinda/analyze.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/assert.hpp"
#include "ftlinda/ags_text.hpp"
#include "tuple/parse.hpp"

namespace ftl::ftlinda {

using tuple::PatternField;
using tuple::SignatureKey;
using tuple::signatureOf;
using tuple::valueTypeName;

namespace {

/// Signature key of an ordered type list (signatures depend only on types,
/// so a synthetic all-formal pattern hashes identically to any site).
SignatureKey sigOfTypes(const std::vector<ValueType>& types) {
  std::vector<PatternField> fields;
  fields.reserve(types.size());
  for (const ValueType t : types) fields.push_back(tuple::formal(t));
  return signatureOf(Pattern(std::move(fields)));
}

/// How one field of a consumer pattern constrains the tuple field it
/// matches. `concrete`: a single runtime value (actual or bound formal) —
/// usable as a shard key. `formal`: matches anything of the type.
struct FieldView {
  bool concrete = false;
  bool formal = false;
  bool bound_ref = false;  // concrete, but the value flows from the guard
};

/// One consumer site remembered for the satisfiability pass.
struct ConsumerSite {
  ClassId cls;
  std::int32_t statement = -1;
  std::int32_t branch = -1;
  std::int32_t op_index = -1;  // -1: the guard
  RuleId unsat_rule = RuleId::DeadBodyMatch;
};

struct SiteAnchor {
  std::int32_t statement = -1;
  std::int32_t branch = -1;
  std::int32_t op_index = -1;
};

class Analyzer {
 public:
  explicit Analyzer(ProgramAnalysis& out) : out_(out) {}

  void run(const std::vector<Ags>& statements, const std::vector<Tuple>& initial) {
    for (const Tuple& t : initial) {
      ClassId c;
      c.ts = ts::kTsMain;
      c.sig = signatureOf(t);
      if (auto n = tuple::nameOf(t)) c.name = *n;
      std::vector<ValueType> types;
      types.reserve(t.arity());
      for (const auto& v : t.fields()) types.push_back(v.type());
      addProducer(c, types, /*has_data_flow=*/false, {-1, -1, -1});
    }
    for (std::size_t i = 0; i < statements.size(); ++i) {
      const auto idx = static_cast<std::int32_t>(i);
      const VerifyResult vr = verify(statements[i]);
      if (!vr.ok()) {
        out_.invalid.push_back({idx, vr});
        continue;
      }
      statement(statements[i], idx);
    }
    finish(statements.empty() && initial.empty());
  }

 private:
  // ------------------------------------------------------------- walking --

  void statement(const Ags& ags, std::int32_t idx) {
    for (std::size_t bi = 0; bi < ags.branches.size(); ++bi) {
      branch(ags.branches[bi], idx, static_cast<std::int32_t>(bi));
    }
  }

  void branch(const Branch& b, std::int32_t stmt, std::int32_t bi) {
    // Types the guard's formals bind, in slot order (verify() guaranteed
    // every body reference is in range).
    std::vector<ValueType> ftypes;
    for (const auto& f : b.guard.pattern.fields()) {
      if (f.kind == PatternField::Kind::Formal) ftypes.push_back(f.formal_type);
    }

    // Classes this branch deposits into — consulted by the distributed-
    // variable "taker re-deposits" test below.
    std::vector<ClassId> deposits;
    for (const BodyOp& op : b.body) {
      if (op.op == OpCode::Out) {
        deposits.push_back(templateClass(op.ts, op.tmpl, ftypes));
      } else if (op.op == OpCode::Move || op.op == OpCode::Copy) {
        deposits.push_back(patternTemplateClass(op.dst, op.pattern, ftypes));
      }
    }
    const auto redeposits = [&](const ClassId& c) {
      for (const ClassId& d : deposits) {
        if (d.ts == c.ts && d.sig == c.sig && (d.dynamic_name || d.name == c.name)) return true;
      }
      return false;
    };

    if (b.guard.kind != Guard::Kind::True) {
      const ClassId c = guardClass(b.guard);
      std::vector<ValueType> types;
      std::vector<FieldView> views;
      for (const auto& f : b.guard.pattern.fields()) {
        types.push_back(f.type());
        FieldView v;
        v.concrete = f.kind == PatternField::Kind::Actual;
        v.formal = !v.concrete;
        views.push_back(v);
      }
      addConsumer(c, types, views, b.guard.destructive(), b.guard.blocking(),
                  redeposits(c), {stmt, bi, -1},
                  b.guard.blocking() ? RuleId::GuardNeverSatisfied
                                     : RuleId::DeadConditionalGuard);
    }

    for (std::size_t oi = 0; oi < b.body.size(); ++oi) {
      const BodyOp& op = b.body[oi];
      const SiteAnchor at{stmt, bi, static_cast<std::int32_t>(oi)};
      switch (op.op) {
        case OpCode::Out: {
          const ClassId c = templateClass(op.ts, op.tmpl, ftypes);
          bool data_flow = false;
          std::vector<ValueType> types;
          for (const auto& f : op.tmpl.fields) {
            types.push_back(templateFieldType(f, ftypes));
            if (f.kind != TemplateField::Kind::Literal) data_flow = true;
          }
          addProducer(c, types, data_flow, at);
          break;
        }
        case OpCode::Inp:
        case OpCode::Rdp: {
          const ClassId c = patternTemplateClass(op.ts, op.pattern, ftypes);
          auto [types, views] = patternTemplateShape(op.pattern, ftypes);
          addConsumer(c, types, views, /*taker=*/op.op == OpCode::Inp,
                      /*blocking=*/false, redeposits(c), at, RuleId::DeadBodyMatch);
          break;
        }
        case OpCode::Move:
        case OpCode::Copy: {
          const ClassId src = patternTemplateClass(op.ts, op.pattern, ftypes);
          auto [types, views] = patternTemplateShape(op.pattern, ftypes);
          addConsumer(src, types, views, /*taker=*/op.op == OpCode::Move,
                      /*blocking=*/false, redeposits(src), at, RuleId::DeadBodyMatch);
          // The matched tuples land unchanged in dst: a producer whose
          // values flow from the source space.
          const ClassId dst = patternTemplateClass(op.dst, op.pattern, ftypes);
          addProducer(dst, types, /*has_data_flow=*/true, at);
          break;
        }
        case OpCode::CreateTs:
        case OpCode::DestroyTs:
          break;
      }
    }
  }

  // ------------------------------------------------ class/type resolution --

  static ValueType templateFieldType(const TemplateField& f,
                                     const std::vector<ValueType>& ftypes) {
    if (f.kind == TemplateField::Kind::Literal) return f.literal.type();
    return ftypes[f.formal_index];
  }

  static ClassId guardClass(const Guard& g) {
    ClassId c;
    c.ts = g.ts;
    std::vector<ValueType> types;
    for (const auto& f : g.pattern.fields()) types.push_back(f.type());
    c.sig = sigOfTypes(types);
    if (!g.pattern.fields().empty()) {
      const PatternField& f0 = g.pattern.field(0);
      if (f0.type() == ValueType::Str) {
        if (f0.kind == PatternField::Kind::Actual) {
          c.name = f0.actual.asStr();
        } else {
          c.dynamic_name = true;
        }
      }
    }
    return c;
  }

  static ClassId templateClass(TsHandle ts, const TupleTemplate& t,
                               const std::vector<ValueType>& ftypes) {
    ClassId c;
    c.ts = ts;
    std::vector<ValueType> types;
    for (const auto& f : t.fields) types.push_back(templateFieldType(f, ftypes));
    c.sig = sigOfTypes(types);
    if (!t.fields.empty() && types[0] == ValueType::Str) {
      const TemplateField& f0 = t.fields[0];
      if (f0.kind == TemplateField::Kind::Literal) {
        c.name = f0.literal.asStr();
      } else {
        c.dynamic_name = true;
      }
    }
    return c;
  }

  static ClassId patternTemplateClass(TsHandle ts, const PatternTemplate& p,
                                      const std::vector<ValueType>& ftypes) {
    ClassId c;
    c.ts = ts;
    std::vector<ValueType> types;
    for (const auto& f : p.fields) {
      switch (f.kind) {
        case PatternTemplateField::Kind::Actual:
          types.push_back(f.actual.type());
          break;
        case PatternTemplateField::Kind::Formal:
          types.push_back(f.formal_type);
          break;
        case PatternTemplateField::Kind::BoundRef:
          types.push_back(ftypes[f.ref]);
          break;
      }
    }
    c.sig = sigOfTypes(types);
    if (!p.fields.empty() && types[0] == ValueType::Str) {
      const PatternTemplateField& f0 = p.fields[0];
      if (f0.kind == PatternTemplateField::Kind::Actual) {
        c.name = f0.actual.asStr();
      } else {
        c.dynamic_name = true;  // formal or guard-bound: unknown statically
      }
    }
    return c;
  }

  static std::pair<std::vector<ValueType>, std::vector<FieldView>> patternTemplateShape(
      const PatternTemplate& p, const std::vector<ValueType>& ftypes) {
    std::vector<ValueType> types;
    std::vector<FieldView> views;
    for (const auto& f : p.fields) {
      FieldView v;
      switch (f.kind) {
        case PatternTemplateField::Kind::Actual:
          types.push_back(f.actual.type());
          v.concrete = true;
          break;
        case PatternTemplateField::Kind::Formal:
          types.push_back(f.formal_type);
          v.formal = true;
          break;
        case PatternTemplateField::Kind::BoundRef:
          types.push_back(ftypes[f.ref]);
          v.concrete = true;
          v.bound_ref = true;
          break;
      }
      views.push_back(v);
    }
    return {std::move(types), std::move(views)};
  }

  // --------------------------------------------------------- accumulation --

  ClassInfo& cls(const ClassId& id, const std::vector<ValueType>& types) {
    auto [it, inserted] = classes_.try_emplace(id);
    if (inserted) {
      it->second.id = id;
      it->second.types = types;
      it->second.pinned.assign(types.size(), true);
    }
    return it->second;
  }

  void addProducer(const ClassId& id, const std::vector<ValueType>& types, bool has_data_flow,
                   SiteAnchor at) {
    ClassInfo& c = cls(id, types);
    if (c.producers == 0) first_producer_[id] = at;
    ++c.producers;
    if (has_data_flow) c.token_only = false;
  }

  void addConsumer(const ClassId& id, const std::vector<ValueType>& types,
                   const std::vector<FieldView>& views, bool taker, bool blocking,
                   bool redeposits, SiteAnchor at, RuleId unsat_rule) {
    ClassInfo& c = cls(id, types);
    if (taker) {
      ++c.takers;
      if (!redeposits) c.takers_redeposit = false;
      for (std::size_t i = 1; i < views.size(); ++i) {
        if (!views[i].formal) c.consumers_all_formal = false;
      }
    } else {
      ++c.readers;
    }
    if (blocking) ++c.blocking_guards;
    for (std::size_t i = 0; i < views.size(); ++i) {
      if (views[i].formal || views[i].bound_ref) c.token_only = false;
      if (!views[i].concrete) c.pinned[i] = false;
    }
    consumers_.push_back({id, at.statement, at.branch, at.op_index, unsat_rule});
  }

  // ------------------------------------------------------------ finishing --

  static bool compatible(const ClassId& a, const ClassId& b) {
    return a.ts == b.ts && a.sig == b.sig &&
           (a.dynamic_name || b.dynamic_name || a.name == b.name);
  }

  /// The runtime itself deposits ("failure", host:int) into every monitored
  /// space, so such consumers are satisfiable in any space.
  static bool isFailureClass(const ClassId& c) {
    static const SignatureKey kFailureSig =
        sigOfTypes({ValueType::Str, ValueType::Int});
    return c.sig == kFailureSig && (c.dynamic_name || c.name == "failure");
  }

  bool satisfied(const ClassId& c) const {
    if (isFailureClass(c)) return true;
    for (const auto& [id, info] : classes_) {
      if (info.producers > 0 && compatible(id, c)) return true;
    }
    return false;
  }

  bool consumed(const ClassId& p) const {
    for (const auto& [id, info] : classes_) {
      if (info.takers + info.readers > 0 && compatible(id, p)) return true;
    }
    return false;
  }

  /// A producer exists in c's space under c's name with the SAME arity but
  /// DIFFERENT types: almost certainly a typo'd field type, reported as
  /// V520 instead of the generic never-satisfied rules.
  const ClassInfo* conflictingProducer(const ClassId& c) const {
    if (c.dynamic_name || c.name.empty()) return nullptr;
    for (const auto& [id, info] : classes_) {
      if (info.producers == 0 || id.ts != c.ts || id.sig == c.sig) continue;
      if (id.dynamic_name || id.name != c.name) continue;
      const auto cit = classes_.find(c);
      if (cit != classes_.end() && info.types.size() == cit->second.types.size()) return &info;
    }
    return nullptr;
  }

  const ClassInfo* conflictingConsumer(const ClassId& p) const {
    if (p.dynamic_name || p.name.empty()) return nullptr;
    for (const auto& [id, info] : classes_) {
      if (info.takers + info.readers == 0 || id.ts != p.ts || id.sig == p.sig) continue;
      if (id.dynamic_name || id.name != p.name) continue;
      const auto pit = classes_.find(p);
      if (pit != classes_.end() && info.types.size() == pit->second.types.size()) return &info;
    }
    return nullptr;
  }

  void classify(ClassInfo& c) const {
    if (c.token_only && c.takers > 0 && c.producers > 0) {
      c.paradigm = ts::Paradigm::Semaphore;
    } else if (c.readers > 0 && c.producers > 0 &&
               (c.takers == 0 || c.takers_redeposit)) {
      c.paradigm = ts::Paradigm::DistributedVariable;
    } else if (c.takers > 0) {
      c.paradigm = ts::Paradigm::Queue;
    } else {
      c.paradigm = ts::Paradigm::Unknown;
    }
  }

  void diagnose(Severity sev, RuleId rule, SiteAnchor at, std::string msg) {
    ProgramDiagnostic pd;
    pd.statement = at.statement;
    pd.diag.severity = sev;
    pd.diag.branch = at.branch;
    pd.diag.op_index = at.op_index;
    pd.diag.rule_id = rule;
    pd.diag.message = std::move(msg);
    out_.diagnostics.push_back(std::move(pd));
  }

  static std::string describeClass(const ClassId& c, const std::vector<ValueType>& types) {
    std::ostringstream os;
    os << handleToText(c.ts) << " (";
    bool sep = false;
    std::size_t start = 0;
    if (c.dynamic_name) {
      os << "<dynamic>";
      sep = true;
      start = 1;
    } else if (!c.name.empty()) {
      os << '"' << c.name << '"';
      sep = true;
      start = 1;
    }
    for (std::size_t i = start; i < types.size(); ++i) {
      if (sep) os << ", ";
      os << valueTypeName(types[i]);
      sep = true;
    }
    os << ")";
    return os.str();
  }

  void finish(bool empty_program) {
    // Classify every class, then run the satisfiability rules in program
    // order (consumer sites first, leaks after).
    for (auto& [id, info] : classes_) classify(info);

    for (const ConsumerSite& s : consumers_) {
      if (satisfied(s.cls)) continue;
      const auto cit = classes_.find(s.cls);
      const auto& types = cit->second.types;
      if (const ClassInfo* p = conflictingProducer(s.cls)) {
        std::ostringstream os;
        os << "type conflict in class " << describeClass(s.cls, types)
           << ": the only deposits of this name and arity carry types (";
        for (std::size_t i = 0; i < p->types.size(); ++i) {
          if (i) os << ", ";
          os << valueTypeName(p->types[i]);
        }
        os << ")";
        diagnose(Severity::Error, RuleId::ClassTypeConflict,
                 {s.statement, s.branch, s.op_index}, os.str());
        continue;
      }
      std::ostringstream os;
      const char* what = s.op_index >= 0 ? "body match" : "guard";
      os << what << " on class " << describeClass(s.cls, types)
         << ": no statement or initial tuple deposits into this class";
      if (s.unsat_rule == RuleId::GuardNeverSatisfied) {
        os << "; this guard blocks forever";
        diagnose(Severity::Error, s.unsat_rule, {s.statement, s.branch, s.op_index}, os.str());
      } else {
        os << "; this " << what << " can never succeed";
        diagnose(Severity::Warning, s.unsat_rule, {s.statement, s.branch, s.op_index},
                 os.str());
      }
    }

    for (const auto& [id, info] : classes_) {
      if (info.producers == 0 || info.takers + info.readers > 0) continue;
      if (consumed(id)) continue;
      if (conflictingConsumer(id) != nullptr) continue;  // V520 covers it
      if (isFailureClass(id)) continue;  // consumed by failure monitors
      const SiteAnchor at = first_producer_.count(id) ? first_producer_.at(id) : SiteAnchor{};
      std::ostringstream os;
      os << "tuple leak: deposits into class " << describeClass(id, info.types)
         << " are never read or taken by any statement";
      diagnose(Severity::Warning, RuleId::TupleLeak, at, os.str());
    }

    emitPlan();

    out_.classes.reserve(classes_.size());
    for (auto& [id, info] : classes_) out_.classes.push_back(std::move(info));
    (void)empty_program;
  }

  void emitPlan() {
    // Plan entries are keyed (sig, name) only — tuple space handles are a
    // runtime notion. Classes sharing (sig, name) across spaces merge
    // conservatively: hints survive only when every class agrees.
    struct Merged {
      ts::PlanEntry entry;
      bool first = true;
      ts::Paradigm paradigm = ts::Paradigm::Unknown;
    };
    std::map<std::pair<SignatureKey, std::string>, Merged> merged;
    for (const auto& [id, info] : classes_) {
      const std::string key_name = id.dynamic_name ? std::string() : id.name;
      Merged& m = merged[{id.sig, key_name}];
      const bool named = !id.name.empty() && !id.dynamic_name;
      ts::PlanEntry e;
      e.paradigm = info.paradigm;
      e.fifo = named && info.paradigm == ts::Paradigm::Queue && info.consumers_all_formal;
      e.read_mostly =
          named && info.paradigm == ts::Paradigm::DistributedVariable && info.readers > 0;
      e.no_blocking_consumers = info.blocking_guards == 0;
      e.shard_key_field = -1;
      if (info.takers + info.readers > 0) {
        for (std::size_t i = named ? 1 : 0; i < info.pinned.size(); ++i) {
          if (info.pinned[i]) {
            e.shard_key_field = static_cast<std::int32_t>(i);
            break;
          }
        }
      }
      if (m.first) {
        m.entry = e;
        m.paradigm = info.paradigm;
        m.first = false;
      } else {
        if (m.paradigm != info.paradigm) m.entry.paradigm = ts::Paradigm::Unknown;
        m.entry.fifo = m.entry.fifo && e.fifo;
        m.entry.read_mostly = m.entry.read_mostly && e.read_mostly;
        m.entry.no_blocking_consumers =
            m.entry.no_blocking_consumers && e.no_blocking_consumers;
        if (m.entry.shard_key_field != e.shard_key_field) m.entry.shard_key_field = -1;
      }
    }
    for (auto& [key, m] : merged) {
      out_.plan.add(key.first, key.second, m.entry);
    }
  }

  ProgramAnalysis& out_;
  std::map<ClassId, ClassInfo> classes_;
  std::map<ClassId, SiteAnchor> first_producer_;
  std::vector<ConsumerSite> consumers_;
};

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string ProgramDiagnostic::toString() const {
  std::ostringstream os;
  if (statement >= 0) {
    os << "statement " << statement << ": ";
  } else {
    os << "program: ";
  }
  os << diag.toString();
  return os.str();
}

bool ProgramAnalysis::ok() const {
  if (!invalid.empty()) return false;
  for (const auto& d : diagnostics) {
    if (d.diag.severity == Severity::Error) return false;
  }
  return true;
}

const ProgramDiagnostic* ProgramAnalysis::find(RuleId id) const {
  for (const auto& d : diagnostics) {
    if (d.diag.rule_id == id) return &d;
  }
  return nullptr;
}

std::string ProgramAnalysis::toText() const {
  std::ostringstream os;
  os << "ftl-analyze v1\n";
  os << "classes=" << classes.size() << " diagnostics=" << diagnostics.size()
     << " invalid=" << invalid.size() << "\n";
  for (const auto& c : classes) {
    os << "class ts=" << handleToText(c.id.ts) << " sig=0x" << std::hex << c.id.sig
       << std::dec << " name=\"" << c.id.name << "\" dynamic=" << (c.id.dynamic_name ? 1 : 0)
       << " types=(";
    for (std::size_t i = 0; i < c.types.size(); ++i) {
      if (i) os << ",";
      os << valueTypeName(c.types[i]);
    }
    os << ") paradigm=" << ts::paradigmName(c.paradigm) << " producers=" << c.producers
       << " takers=" << c.takers << " readers=" << c.readers
       << " blocking=" << c.blocking_guards << "\n";
  }
  for (const auto& [idx, vr] : invalid) {
    for (const auto& d : vr.diagnostics) {
      os << "statement " << idx << ": " << d.toString() << "\n";
    }
  }
  for (const auto& d : diagnostics) os << d.toString() << "\n";
  os << "plan:\n" << plan.toText();
  return os.str();
}

std::string ProgramAnalysis::toJson() const {
  std::ostringstream os;
  os << "{\n  \"classes\": [";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const auto& c = classes[i];
    os << (i ? ",\n    " : "\n    ") << "{\"ts\": \"" << handleToText(c.id.ts)
       << "\", \"sig\": \"0x" << std::hex << c.id.sig << std::dec << "\", \"name\": \""
       << jsonEscape(c.id.name) << "\", \"dynamic\": " << (c.id.dynamic_name ? "true" : "false")
       << ", \"types\": [";
    for (std::size_t t = 0; t < c.types.size(); ++t) {
      os << (t ? ", " : "") << '"' << valueTypeName(c.types[t]) << '"';
    }
    os << "], \"paradigm\": \"" << ts::paradigmName(c.paradigm)
       << "\", \"producers\": " << c.producers << ", \"takers\": " << c.takers
       << ", \"readers\": " << c.readers << ", \"blocking_guards\": " << c.blocking_guards
       << "}";
  }
  os << "\n  ],\n  \"diagnostics\": [";
  bool first = true;
  for (const auto& [idx, vr] : invalid) {
    for (const auto& d : vr.diagnostics) {
      os << (first ? "\n    " : ",\n    ");
      first = false;
      os << "{\"statement\": " << idx << ", \"severity\": \""
         << (d.severity == Severity::Error ? "error" : "warning") << "\", \"rule\": \""
         << ruleIdName(d.rule_id) << "\", \"branch\": " << d.branch
         << ", \"op\": " << d.op_index << ", \"field\": " << d.field_index
         << ", \"message\": \"" << jsonEscape(d.message) << "\"}";
    }
  }
  for (const auto& pd : diagnostics) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    os << "{\"statement\": " << pd.statement << ", \"severity\": \""
       << (pd.diag.severity == Severity::Error ? "error" : "warning") << "\", \"rule\": \""
       << ruleIdName(pd.diag.rule_id) << "\", \"branch\": " << pd.diag.branch
       << ", \"op\": " << pd.diag.op_index << ", \"field\": " << pd.diag.field_index
       << ", \"message\": \"" << jsonEscape(pd.diag.message) << "\"}";
  }
  os << "\n  ],\n  \"plan\": [";
  const auto entries = plan.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& [key, e] = entries[i];
    os << (i ? ",\n    " : "\n    ") << "{\"sig\": \"0x" << std::hex << key.first << std::dec
       << "\", \"name\": \"" << jsonEscape(key.second) << "\", \"paradigm\": \""
       << ts::paradigmName(e.paradigm) << "\", \"fifo\": " << (e.fifo ? "true" : "false")
       << ", \"read_mostly\": " << (e.read_mostly ? "true" : "false")
       << ", \"no_blocking\": " << (e.no_blocking_consumers ? "true" : "false")
       << ", \"shard_field\": " << e.shard_key_field << "}";
  }
  os << "\n  ],\n  \"ok\": " << (ok() ? "true" : "false") << "\n}\n";
  return os.str();
}

ProgramAnalysis analyzeProgram(const std::vector<Ags>& statements,
                               const std::vector<Tuple>& initial) {
  ProgramAnalysis out;
  Analyzer a(out);
  a.run(statements, initial);
  return out;
}

ProgramInput parseProgramText(std::string_view text) {
  ProgramInput in;
  std::size_t pos = 0;
  const auto skip = [&] {
    for (;;) {
      while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
      if (pos < text.size() && text[pos] == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
        continue;
      }
      return;
    }
  };
  for (;;) {
    skip();
    if (pos >= text.size()) break;
    const char c = text[pos];
    if (c == '<') {
      in.statements.push_back(parseAgsAt(text, pos));
    } else if (c == '(') {
      const Pattern p = tuple::parsePatternAt(text, pos);
      if (p.formalCount() == 0) {
        std::vector<tuple::Value> values;
        values.reserve(p.arity());
        for (const auto& f : p.fields()) values.push_back(f.actual);
        in.initial.push_back(Tuple(std::move(values)));
      }
      // Patterns WITH formals are match templates, not deposits: ignored.
    } else {
      throw Error("program: offset " + std::to_string(pos) +
                  ": expected '<' (AGS) or '(' (tuple/pattern), got '" + std::string(1, c) +
                  "'");
    }
  }
  return in;
}

}  // namespace ftl::ftlinda

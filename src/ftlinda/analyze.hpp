// Whole-program tuple-flow analysis — the cross-statement half of FT-lcc.
//
// verify.hpp checks one Atomic Guarded Statement in isolation (V0xx–V4xx).
// This pass looks at a PROGRAM — every AGS a set of processes will execute,
// plus any initial tuples — and builds a per-signature-class producer/
// consumer graph: who deposits tuples of each (tuple space, signature,
// leading name) class, and who reads or takes them. From that graph it
//
//  1. reports the V5xx rules (docs/VERIFIER.md): blocking guards no deposit
//     in the program can ever satisfy (V500), conditional guards and body
//     matches that can never succeed (V501/V502), deposits nothing consumes
//     — tuple leaks (V510), and out/in type conflicts inside one
//     (space, name, arity) class (V520);
//
//  2. classifies each class into the paper's coordination paradigms —
//     bag-of-tasks queue, distributed variable, semaphore/barrier — from
//     its access shape (paper §2; docs/ANALYZER.md gives the exact rules);
//
//  3. emits a ts::StoragePlan the runtime loads (SystemConfig::plan) so the
//     store can specialize per class: ring-buffer chains for queues, a read
//     cache for distributed variables, wake-index skips for classes with no
//     blocking consumers.
//
// The analysis is CLOSED-WORLD: it assumes the given statements and initial
// tuples are the whole program. The runtime's own failure tuples
// ("failure", host:int) are modeled as an implicit producer in every space,
// so failure-monitor guards don't trip V500.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ftlinda/ops.hpp"
#include "ftlinda/verify.hpp"
#include "ts/plan.hpp"

namespace ftl::ftlinda {

/// One producer/consumer class: tuples of one signature (ordered type list)
/// with one leading string name, in one tuple space. `dynamic_name` marks
/// sites whose leading field is only known at runtime (a formal or a bound
/// reference): they may produce/consume ANY name of the signature.
struct ClassId {
  TsHandle ts = ts::kTsMain;
  tuple::SignatureKey sig = 0;
  std::string name;           // empty when unnamed or dynamic
  bool dynamic_name = false;

  bool operator==(const ClassId& other) const = default;
  bool operator<(const ClassId& other) const {
    if (ts != other.ts) return ts < other.ts;
    if (sig != other.sig) return sig < other.sig;
    if (dynamic_name != other.dynamic_name) return dynamic_name < other.dynamic_name;
    return name < other.name;
  }
};

/// Access-shape summary of one class, accumulated over every site in the
/// program that touches it.
struct ClassInfo {
  ClassId id;
  std::vector<ValueType> types;  // the signature's ordered type list

  // Site counts. A "taker" destroys tuples (in/inp/move); a "reader" copies
  // them (rd/rdp/copy); a "producer" deposits (out/move-dst/copy-dst or an
  // initial tuple).
  int producers = 0;
  int takers = 0;
  int readers = 0;
  int blocking_guards = 0;  // of the consumers, how many are in/rd guards

  // Shape features feeding classification and plan hints.
  bool consumers_all_formal = true;  // every taker matches any value (FIFO-safe)
  bool token_only = true;            // no data flows: fixed tuples in and out
  bool takers_redeposit = true;      // every taking branch re-deposits the class
  std::vector<bool> pinned;          // field i is a concrete value at every consumer

  ts::Paradigm paradigm = ts::Paradigm::Unknown;
};

/// A finding plus the statement (index into the analyzed program) it is
/// anchored to; -1 = the initial-tuple set / the whole program.
struct ProgramDiagnostic {
  std::int32_t statement = -1;
  Diagnostic diag;

  /// "statement 2: error: [guard-never-satisfied] branch 0: ..."
  std::string toString() const;
};

/// A program: the statements plus tuples assumed deposited into TSmain
/// before execution (bare tuples in an ftl-analyze input file).
struct ProgramInput {
  std::vector<Ags> statements;
  std::vector<Tuple> initial;
};

struct ProgramAnalysis {
  std::vector<ClassInfo> classes;  // deterministic order (ts, sig, name)
  std::vector<ProgramDiagnostic> diagnostics;
  ts::StoragePlan plan;
  /// Statements rejected by the per-statement verifier (V0xx–V4xx errors):
  /// they are excluded from the graph. (index, verifier findings).
  std::vector<std::pair<std::int32_t, VerifyResult>> invalid;

  /// True iff no Error-severity finding anywhere (V5xx or per-statement).
  bool ok() const;
  /// First program diagnostic with the given rule, or nullptr.
  const ProgramDiagnostic* find(RuleId id) const;
  /// Deterministic human-readable report (golden-tested; see
  /// docs/ANALYZER.md for the format).
  std::string toText() const;
  /// The same content as one JSON object.
  std::string toJson() const;
};

/// Analyze a whole program. Statements failing verify() are recorded in
/// `invalid` and skipped; everything else feeds the class graph.
ProgramAnalysis analyzeProgram(const std::vector<Ags>& statements,
                               const std::vector<Tuple>& initial = {});
inline ProgramAnalysis analyzeProgram(const ProgramInput& in) {
  return analyzeProgram(in.statements, in.initial);
}

/// Parse the ftl-lint input language (AGS dumps + tuple-language items,
/// '#' comments) into a program: AGSes become statements; bare all-actual
/// patterns become initial tuples; patterns with formals are ignored (they
/// are match templates, not deposits). Throws ftl::Error on a parse error.
ProgramInput parseProgramText(std::string_view text);

}  // namespace ftl::ftlinda

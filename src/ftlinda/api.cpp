#include "ftlinda/api.hpp"

#include "common/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {

namespace {

bool settledLocked(const AgsFutureState& st) {
  return st.result.has_value() || st.processor_failed || !st.env_error.empty();
}

/// Record how long this call actually blocked (0 when the future was already
/// settled). Recorded at most once per future, so the wait histogram counts
/// each replicated AGS exactly once — pipelined issuers show up as a pile of
/// near-zero waits.
void recordWaitLocked(AgsFutureState& st, std::int64_t blocked_ns) {
  if (st.wait_hist == nullptr || st.wait_recorded) return;
  st.wait_recorded = true;
  st.wait_hist->observe(blocked_ns > 0 ? static_cast<std::uint64_t>(blocked_ns) : 0);
  // A call that actually blocked also times the settle→resume hop: the
  // future-wake leg of the reply chain. Futures that were already settled
  // never slept, so there is no wakeup to measure.
  if (blocked_ns > 0 && st.settle_ns != 0) {
    static obs::Histogram& wake_ns = obs::histogram("ftl_stage_future_wake_ns");
    const std::int64_t dt = nowNanos() - st.settle_ns;
    wake_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
    if (st.trace_id != 0) obs::trace::complete("ags.future_wake", st.trace_id, st.settle_ns, dt);
  }
}

void runContinuations(std::vector<std::function<void(const Result<Reply>&)>> fns,
                      const Result<Reply>& r) {
  for (auto& fn : fns) fn(r);
}

/// The error Result continuations see where get() would throw.
Result<Reply> envFailureResult(const AgsFutureState& st) {
  if (st.processor_failed) {
    return Result<Reply>::failure("processor-failure",
                                  "processor " + std::to_string(st.host) + " failed");
  }
  return Result<Reply>::failure("transport", st.env_error);
}

}  // namespace

bool AgsFuture::ready() const {
  FTL_REQUIRE(st_ != nullptr, "ready() on an empty AgsFuture");
  std::lock_guard<std::mutex> lock(st_->m);
  return settledLocked(*st_);
}

void AgsFuture::wait() const {
  FTL_REQUIRE(st_ != nullptr, "wait() on an empty AgsFuture");
  std::unique_lock<std::mutex> lock(st_->m);
  const std::int64_t w0 = settledLocked(*st_) ? 0 : nowNanos();
  st_->cv.wait(lock, [&] { return settledLocked(*st_); });
  recordWaitLocked(*st_, w0 ? nowNanos() - w0 : 0);
}

Result<Reply> AgsFuture::get() {
  FTL_REQUIRE(st_ != nullptr, "get() on an empty AgsFuture");
  std::unique_lock<std::mutex> lock(st_->m);
  FTL_REQUIRE(!st_->consumed, "AgsFuture::get() called twice");
  const std::int64_t w0 = settledLocked(*st_) ? 0 : nowNanos();
  st_->cv.wait(lock, [&] { return settledLocked(*st_); });
  recordWaitLocked(*st_, w0 ? nowNanos() - w0 : 0);
  st_->consumed = true;
  if (st_->processor_failed) throw ProcessorFailure(st_->host);
  if (!st_->env_error.empty()) throw Error(st_->env_error);
  return std::move(*st_->result);
}

void AgsFuture::then(std::function<void(const Result<Reply>&)> fn) {
  FTL_REQUIRE(st_ != nullptr, "then() on an empty AgsFuture");
  std::unique_lock<std::mutex> lock(st_->m);
  if (!settledLocked(*st_)) {
    st_->continuations.push_back(std::move(fn));
    return;
  }
  // Already settled: run inline, outside the lock.
  const Result<Reply> r = st_->result ? *st_->result : envFailureResult(*st_);
  lock.unlock();
  fn(r);
}

AgsFuture AgsFuture::makeReady(Result<Reply> r) {
  auto st = std::make_shared<AgsFutureState>();
  st->result = std::move(r);
  return AgsFuture(std::move(st));
}

AgsFuture AgsFuture::makePending(std::shared_ptr<AgsFutureState> st) {
  return AgsFuture(std::move(st));
}

namespace detail {

void settleFuture(const std::shared_ptr<AgsFutureState>& st, Result<Reply> r) {
  std::vector<std::function<void(const Result<Reply>&)>> fns;
  {
    std::lock_guard<std::mutex> lock(st->m);
    if (settledLocked(*st)) return;
    st->settle_ns = nowNanos();
    st->result = std::move(r);
    fns.swap(st->continuations);
  }
  st->cv.notify_all();
  if (!fns.empty()) runContinuations(std::move(fns), *st->result);
}

void failFutureProcessor(const std::shared_ptr<AgsFutureState>& st) {
  std::vector<std::function<void(const Result<Reply>&)>> fns;
  Result<Reply> r = Result<Reply>::failure("processor-failure", "");
  {
    std::lock_guard<std::mutex> lock(st->m);
    if (settledLocked(*st)) return;
    st->processor_failed = true;
    r = envFailureResult(*st);
    fns.swap(st->continuations);
  }
  st->cv.notify_all();
  if (!fns.empty()) runContinuations(std::move(fns), r);
}

void failFutureEnv(const std::shared_ptr<AgsFutureState>& st, std::string message) {
  std::vector<std::function<void(const Result<Reply>&)>> fns;
  Result<Reply> r = Result<Reply>::failure("transport", "");
  {
    std::lock_guard<std::mutex> lock(st->m);
    if (settledLocked(*st)) return;
    st->env_error = std::move(message);
    r = envFailureResult(*st);
    fns.swap(st->continuations);
  }
  st->cv.notify_all();
  if (!fns.empty()) runContinuations(std::move(fns), r);
}

}  // namespace detail

ApiError verifyApiError(const VerifyResult& vr) {
  const char* rule = "verify";
  for (const auto& d : vr.diagnostics) {
    if (d.severity == Severity::Error) {
      rule = ruleIdName(d.rule_id);
      break;
    }
  }
  return ApiError{rule, "AGS rejected by verifier: " + vr.toString()};
}

Result<Reply> LindaApi::tryExecute(const Ags& ags) { return executeAsync(ags).get(); }

Reply requireReply(Result<Reply> r) {
  if (!r.ok()) throw Error(r.error().message);
  return std::move(r).value();
}

void LindaApi::out(TsHandle ts, Tuple t) {
  TupleTemplate tmpl;
  tmpl.fields.reserve(t.arity());
  for (const auto& v : t.fields()) {
    TemplateField f;
    f.kind = TemplateField::Kind::Literal;
    f.literal = v;
    tmpl.fields.push_back(std::move(f));
  }
  requireReply(tryExecute(AgsBuilder().when(guardTrue()).then(opOut(ts, std::move(tmpl))).build()));
}

Tuple LindaApi::in(TsHandle ts, Pattern p) {
  Reply r = requireReply(tryExecute(AgsBuilder().when(guardIn(ts, std::move(p))).build()));
  FTL_ENSURE(r.guard_tuple.has_value(), "in() reply carries no tuple");
  return std::move(*r.guard_tuple);
}

Tuple LindaApi::rd(TsHandle ts, Pattern p) {
  Reply r = requireReply(tryExecute(AgsBuilder().when(guardRd(ts, std::move(p))).build()));
  FTL_ENSURE(r.guard_tuple.has_value(), "rd() reply carries no tuple");
  return std::move(*r.guard_tuple);
}

std::optional<Tuple> LindaApi::inp(TsHandle ts, Pattern p) {
  return requireReply(tryExecute(AgsBuilder().when(guardInp(ts, std::move(p))).build()))
      .guard_tuple;
}

std::optional<Tuple> LindaApi::rdp(TsHandle ts, Pattern p) {
  return requireReply(tryExecute(AgsBuilder().when(guardRdp(ts, std::move(p))).build()))
      .guard_tuple;
}

}  // namespace ftl::ftlinda

#include "ftlinda/api.hpp"

namespace ftl::ftlinda {

ApiError verifyApiError(const VerifyResult& vr) {
  const char* rule = "verify";
  for (const auto& d : vr.diagnostics) {
    if (d.severity == Severity::Error) {
      rule = ruleIdName(d.rule_id);
      break;
    }
  }
  return ApiError{rule, "AGS rejected by verifier: " + vr.toString()};
}

Reply LindaApi::execute(const Ags& ags) {
  Result<Reply> r = tryExecute(ags);
  if (!r.ok()) throw Error(r.error().message);
  return std::move(r).value();
}

void LindaApi::out(TsHandle ts, Tuple t) {
  TupleTemplate tmpl;
  tmpl.fields.reserve(t.arity());
  for (const auto& v : t.fields()) {
    TemplateField f;
    f.kind = TemplateField::Kind::Literal;
    f.literal = v;
    tmpl.fields.push_back(std::move(f));
  }
  execute(AgsBuilder().when(guardTrue()).then(opOut(ts, std::move(tmpl))).build());
}

Tuple LindaApi::in(TsHandle ts, Pattern p) {
  Reply r = execute(AgsBuilder().when(guardIn(ts, std::move(p))).build());
  FTL_ENSURE(r.guard_tuple.has_value(), "in() reply carries no tuple");
  return std::move(*r.guard_tuple);
}

Tuple LindaApi::rd(TsHandle ts, Pattern p) {
  Reply r = execute(AgsBuilder().when(guardRd(ts, std::move(p))).build());
  FTL_ENSURE(r.guard_tuple.has_value(), "rd() reply carries no tuple");
  return std::move(*r.guard_tuple);
}

std::optional<Tuple> LindaApi::inp(TsHandle ts, Pattern p) {
  return execute(AgsBuilder().when(guardInp(ts, std::move(p))).build()).guard_tuple;
}

std::optional<Tuple> LindaApi::rdp(TsHandle ts, Pattern p) {
  return execute(AgsBuilder().when(guardRdp(ts, std::move(p))).build()).guard_tuple;
}

}  // namespace ftl::ftlinda

// LindaApi: the one client-facing FT-Linda interface (docs/API.md).
//
// Both runtime flavours implement it — the embedded Runtime (co-located
// replica, paper §5) and the tuple-server RemoteRuntime (§6, Fig. 17) — so
// application code, examples and benches are written once against LindaApi&
// and run unchanged in either configuration.
//
// Error model:
//  - tryExecute() is the primitive: it returns Result<Reply>, carrying a
//    rule-tagged ApiError for every DETERMINISTIC refusal (the static
//    verifier's rule name, or "registry" for handle errors produced while
//    executing). It never throws for those.
//  - the verb sugar (out/in/rd/inp/rdp) and the free requireReply() helper
//    convert an error Result into a thrown ftl::Error (message preserved
//    verbatim) for callers that treat refusals as fatal.
//  - Environmental failures are NOT statement errors and always throw:
//    ProcessorFailure when this processor's simulated crash interrupts the
//    call, ftl::Error("tuple server unreachable") on the RPC path.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "ftlinda/protocol.hpp"
#include "ftlinda/verify.hpp"
#include "net/message.hpp"

namespace ftl::obs {
class Histogram;
}

namespace ftl::ftlinda {

/// Thrown by runtime calls on/after the processor's simulated crash.
class ProcessorFailure : public Error {
 public:
  explicit ProcessorFailure(net::HostId host)
      : Error("processor " + std::to_string(host) + " failed") {}
};

/// ApiError for a statement the verifier refused: the tag is the kebab-case
/// name of the FIRST error-severity rule (e.g. "formal-out-of-range"); the
/// message matches what the throwing wrappers raise.
ApiError verifyApiError(const VerifyResult& vr);

/// Completion state shared between an AgsFuture and the runtime that settles
/// it. Runtime plumbing — application code only ever touches AgsFuture.
/// Settled EXACTLY once: with a result (detail::settleFuture), a processor
/// failure, or an environmental error.
struct AgsFutureState {
  std::mutex m;
  std::condition_variable cv;
  std::optional<Result<Reply>> result;
  bool processor_failed = false;  // get() throws ProcessorFailure
  std::string env_error;          // non-empty: get() throws ftl::Error(env_error)
  bool consumed = false;          // get() is single-shot
  bool wait_recorded = false;     // wait_hist observed at most once per future
  net::HostId host = net::kNoHost;
  /// When set (replicated submissions), the first get()/wait() records its
  /// blocking time here — ~0 for a future that completed while the issuer
  /// was elsewhere, which is exactly the pipelining win being measured.
  obs::Histogram* wait_hist = nullptr;
  /// Observability correlation id of the submission (0 for local futures).
  std::uint64_t trace_id = 0;
  /// Stamped by settleFuture under the lock; a get()/wait() that actually
  /// blocked reads it after waking to measure the notify→resume hop
  /// (ags.future_wake / ftl_stage_future_wake_ns).
  std::int64_t settle_ns = 0;
  std::vector<std::function<void(const Result<Reply>&)>> continuations;
};

/// Handle for an in-flight AGS (LindaApi::executeAsync). One-shot future
/// carrying Result<Reply> with optional continuations.
///
/// Semantics:
///  - get(): blocks until completion, then returns the Result exactly like
///    tryExecute() — deterministic refusals are error Results, environmental
///    failures throw (ProcessorFailure after a crash, ftl::Error for an
///    unreachable tuple server). Single-shot: the Reply is moved out.
///  - then(fn): runs fn(result) on the completing thread (the replica's
///    service upcall / RPC receive thread — keep it short and never call
///    back into the runtime from it), or inline if already settled. On
///    environmental failure fn sees an error Result tagged
///    "processor-failure" / "transport" where get() would throw.
///  - Per-issuer FIFO: futures obtained from consecutive executeAsync()
///    calls on one thread complete in submission order (the order is the
///    submission order into the replicated total order).
class AgsFuture {
 public:
  AgsFuture() = default;  // empty; only assignment makes it usable

  bool valid() const { return st_ != nullptr; }
  /// True once settled (get() would not block).
  bool ready() const;
  /// Block until settled (without consuming the result).
  void wait() const;
  /// Block until settled and take the result (see class comment). Throws on
  /// environmental failure; FTL_REQUIREs on an empty or already-consumed
  /// future.
  Result<Reply> get();
  /// Attach a completion continuation (see class comment).
  void then(std::function<void(const Result<Reply>&)> fn);

  /// Runtime constructors — applications never need these.
  static AgsFuture makeReady(Result<Reply> r);
  static AgsFuture makePending(std::shared_ptr<AgsFutureState> st);

 private:
  explicit AgsFuture(std::shared_ptr<AgsFutureState> st) : st_(std::move(st)) {}
  std::shared_ptr<AgsFutureState> st_;
};

namespace detail {
/// Settle with a result; runs continuations on the calling thread.
void settleFuture(const std::shared_ptr<AgsFutureState>& st, Result<Reply> r);
/// Fail after a processor crash: get() throws ProcessorFailure,
/// continuations see an error Result tagged "processor-failure".
void failFutureProcessor(const std::shared_ptr<AgsFutureState>& st);
/// Fail with an environmental error (e.g. "tuple server unreachable"):
/// get() throws ftl::Error(message), continuations see tag "transport".
void failFutureEnv(const std::shared_ptr<AgsFutureState>& st, std::string message);
}  // namespace detail

class LindaApi {
 public:
  virtual ~LindaApi() = default;

  virtual net::HostId host() const = 0;

  /// Submit an AGS and return immediately with a future for its completion
  /// (docs/API.md "Asynchronous execution"). The verifier still runs
  /// per-statement BEFORE anything is enqueued: a refused statement comes
  /// back as an already-settled error future. An AGS that touches only
  /// local scratch spaces executes inline (its blocking semantics cannot be
  /// deferred), so executeAsync() may block for those; replicated
  /// statements never block the caller. Futures from one thread complete in
  /// submission order (per-issuer FIFO).
  virtual AgsFuture executeAsync(const Ags& ags) = 0;

  /// Execute an AGS. Blocks until the statement completes (which may mean
  /// waiting for a guard to become satisfiable). Deterministic refusals —
  /// verifier rejections, registry errors — come back as an error Result;
  /// environmental failures throw (see file comment). Exactly
  /// executeAsync(ags).get().
  Result<Reply> tryExecute(const Ags& ags);

  // ---- single-operation sugar (each is an AGS of its own) ----

  /// out(ts, t): deposit a tuple.
  void out(TsHandle ts, Tuple t);
  /// in(ts, p): withdraw the oldest match, blocking until one exists.
  Tuple in(TsHandle ts, Pattern p);
  /// rd(ts, p): read the oldest match, blocking until one exists.
  Tuple rd(TsHandle ts, Pattern p);
  /// inp(ts, p): withdraw without blocking; strong semantics — nullopt
  /// GUARANTEES no match existed at this point of the total order.
  std::optional<Tuple> inp(TsHandle ts, Pattern p);
  /// rdp(ts, p): non-destructive inp.
  std::optional<Tuple> rdp(TsHandle ts, Pattern p);

  // ---- tuple space management ----

  /// Create a tuple space. Stable+shared spaces are replicated; volatile
  /// ones live only on this processor (scratch). The paper's
  /// create_TS(stability, scope).
  virtual TsHandle createTs(TsAttributes attrs) = 0;
  /// Convenience: volatile private scratch space.
  TsHandle createScratch() { return createTs(TsAttributes{false, false}); }
  virtual void destroyTs(TsHandle ts) = 0;

  /// Register `ts` to receive ("failure", host) tuples when a processor
  /// crashes (fail-stop conversion).
  void monitorFailures(TsHandle ts, bool enable = true) { doMonitorFailures(ts, enable); }

  /// True once this processor's simulated crash has been signalled.
  virtual bool crashed() const = 0;

  /// Local-scratch introspection for tests.
  virtual std::size_t localTupleCount(TsHandle ts) const = 0;

 protected:
  virtual void doMonitorFailures(TsHandle ts, bool enable) = 0;
};

/// Unwrap a tryExecute() Result for callers that treat deterministic
/// refusals as fatal: returns the Reply, or throws ftl::Error carrying the
/// refusal message verbatim. The removed `api.execute(ags)` was exactly
/// `requireReply(api.tryExecute(ags))` (docs/API.md migration table).
Reply requireReply(Result<Reply> r);

}  // namespace ftl::ftlinda

// LindaApi: the one client-facing FT-Linda interface (docs/API.md).
//
// Both runtime flavours implement it — the embedded Runtime (co-located
// replica, paper §5) and the tuple-server RemoteRuntime (§6, Fig. 17) — so
// application code, examples and benches are written once against LindaApi&
// and run unchanged in either configuration.
//
// Error model:
//  - tryExecute() is the primitive: it returns Result<Reply>, carrying a
//    rule-tagged ApiError for every DETERMINISTIC refusal (the static
//    verifier's rule name, or "registry" for handle errors produced while
//    executing). It never throws for those.
//  - execute() and the verb sugar are thin wrappers that convert an error
//    Result into a thrown ftl::Error (message preserved verbatim).
//  - Environmental failures are NOT statement errors and always throw:
//    ProcessorFailure when this processor's simulated crash interrupts the
//    call, ftl::Error("tuple server unreachable") on the RPC path.
#pragma once

#include <optional>

#include "common/result.hpp"
#include "ftlinda/protocol.hpp"
#include "ftlinda/verify.hpp"
#include "net/message.hpp"

namespace ftl::ftlinda {

/// Thrown by runtime calls on/after the processor's simulated crash.
class ProcessorFailure : public Error {
 public:
  explicit ProcessorFailure(net::HostId host)
      : Error("processor " + std::to_string(host) + " failed") {}
};

/// ApiError for a statement the verifier refused: the tag is the kebab-case
/// name of the FIRST error-severity rule (e.g. "formal-out-of-range"); the
/// message matches what the throwing wrappers raise.
ApiError verifyApiError(const VerifyResult& vr);

class LindaApi {
 public:
  virtual ~LindaApi() = default;

  virtual net::HostId host() const = 0;

  /// Execute an AGS. Blocks until the statement completes (which may mean
  /// waiting for a guard to become satisfiable). Deterministic refusals —
  /// verifier rejections, registry errors — come back as an error Result;
  /// environmental failures throw (see file comment).
  virtual Result<Reply> tryExecute(const Ags& ags) = 0;

  /// Throwing wrapper over tryExecute(): converts an error Result into
  /// ftl::Error with the same message. Prefer tryExecute() in new code
  /// (docs/API.md).
  Reply execute(const Ags& ags);

  // ---- single-operation sugar (each is an AGS of its own) ----

  /// out(ts, t): deposit a tuple.
  void out(TsHandle ts, Tuple t);
  /// in(ts, p): withdraw the oldest match, blocking until one exists.
  Tuple in(TsHandle ts, Pattern p);
  /// rd(ts, p): read the oldest match, blocking until one exists.
  Tuple rd(TsHandle ts, Pattern p);
  /// inp(ts, p): withdraw without blocking; strong semantics — nullopt
  /// GUARANTEES no match existed at this point of the total order.
  std::optional<Tuple> inp(TsHandle ts, Pattern p);
  /// rdp(ts, p): non-destructive inp.
  std::optional<Tuple> rdp(TsHandle ts, Pattern p);

  // ---- tuple space management ----

  /// Create a tuple space. Stable+shared spaces are replicated; volatile
  /// ones live only on this processor (scratch). The paper's
  /// create_TS(stability, scope).
  virtual TsHandle createTs(TsAttributes attrs) = 0;
  /// Convenience: volatile private scratch space.
  TsHandle createScratch() { return createTs(TsAttributes{false, false}); }
  virtual void destroyTs(TsHandle ts) = 0;

  /// Register `ts` to receive ("failure", host) tuples when a processor
  /// crashes (fail-stop conversion).
  void monitorFailures(TsHandle ts, bool enable = true) { doMonitorFailures(ts, enable); }

  /// True once this processor's simulated crash has been signalled.
  virtual bool crashed() const = 0;

  /// Local-scratch introspection for tests.
  virtual std::size_t localTupleCount(TsHandle ts) const = 0;

 protected:
  virtual void doMonitorFailures(TsHandle ts, bool enable) = 0;
};

}  // namespace ftl::ftlinda

#include "ftlinda/checkpoint.hpp"

namespace ftl::ftlinda {

using tuple::fBlob;
using tuple::fInt;
using tuple::makePattern;

StableCheckpoint::StableCheckpoint(LindaApi& rt, TsHandle ts, std::string key)
    : rt_(rt), ts_(ts), key_(std::move(key)) {
  FTL_REQUIRE(!ts::isLocalHandle(ts_), "checkpoints need a STABLE tuple space");
}

std::int64_t StableCheckpoint::save(const Bytes& state) {
  Reply r = requireReply(rt_.tryExecute(
      AgsBuilder()
          .when(guardIn(ts_, makePattern("checkpoint", key_, fInt(), fBlob())))
          .then(opOut(ts_, makeTemplate("checkpoint", key_, boundExpr(0, ArithOp::Add, 1),
                                        Value(state))))
          .orWhen(guardTrue())
          .then(opOut(ts_, makeTemplate("checkpoint", key_, 0, Value(state))))
          .build()));
  return r.branch == 0 ? r.bindings.at(0).asInt() + 1 : 0;
}

std::optional<StableCheckpoint::Snapshot> StableCheckpoint::load() {
  auto t = rt_.rdp(ts_, makePattern("checkpoint", key_, fInt(), fBlob()));
  if (!t) return std::nullopt;
  Snapshot s;
  s.version = t->field(2).asInt();
  s.state = t->field(3).asBlob();
  return s;
}

bool StableCheckpoint::clear() {
  return rt_.inp(ts_, makePattern("checkpoint", key_, fInt(), fBlob())).has_value();
}

}  // namespace ftl::ftlinda

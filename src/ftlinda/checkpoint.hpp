// StableCheckpoint: checkpoint-and-recovery on top of stable tuple space.
//
// The paper motivates stable TSs partly as the stable storage that
// checkpoint/recovery techniques require (§2.1, citing Koo & Toueg): a
// process saves key values so that, after a failure, its restarted
// incarnation resumes from the last checkpoint instead of from scratch.
//
// A checkpoint is the tuple ("checkpoint", key, version, state). save()
// REPLACES the previous version atomically — one AGS with a disjunction:
//
//   < in("checkpoint", key, ?v, ?old) => out("checkpoint", key, v+1, new)
//     or true                         => out("checkpoint", key, 0, new) >
//
// so there is never a window where the checkpoint is absent or duplicated,
// no matter when the saver's processor dies (the §2.2 anomaly, solved the
// same way as the distributed variable).
#pragma once

#include <optional>

#include "ftlinda/api.hpp"

namespace ftl::ftlinda {

class StableCheckpoint {
 public:
  /// `key` distinguishes independent checkpoint streams within `ts`.
  StableCheckpoint(LindaApi& rt, TsHandle ts, std::string key);

  /// Atomically replace the checkpoint with `state`. Returns the new
  /// version number (0 for the first save).
  std::int64_t save(const Bytes& state);

  /// The latest checkpoint, if any: (version, state).
  struct Snapshot {
    std::int64_t version = -1;
    Bytes state;
  };
  std::optional<Snapshot> load();

  /// Remove the checkpoint. Returns false if none existed.
  bool clear();

 private:
  LindaApi& rt_;
  const TsHandle ts_;
  const std::string key_;
};

}  // namespace ftl::ftlinda

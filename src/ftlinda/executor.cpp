#include "ftlinda/executor.hpp"

#include "common/assert.hpp"
#include "ftlinda/verify.hpp"

namespace ftl::ftlinda {

namespace {

using ts::isLocalHandle;
using ts::TsRegistry;

/// Is `h` usable as a WRITE-ONLY destination outside the registry?
bool externalLocalDst(TsHandle h, const TsRegistry& reg, ExecMode mode) {
  return mode == ExecMode::Replicated && isLocalHandle(h) && !reg.exists(h);
}

std::string checkHandleReadable(TsHandle h, const TsRegistry& reg, ExecMode mode,
                                const char* what) {
  // Plain concatenation, built only on the failure paths: this runs per
  // body op per apply, and a stream constructed on the success path would
  // cost more than the whole handle check.
  if (mode == ExecMode::Replicated && isLocalHandle(h)) {
    return std::string(what) + ": a volatile local TS cannot be read inside a replicated AGS";
  }
  if (!reg.exists(h)) {
    return std::string(what) + ": unknown tuple space handle";
  }
  return {};
}

std::string checkHandleWritable(TsHandle h, const TsRegistry& reg, ExecMode mode,
                                const char* what) {
  if (externalLocalDst(h, reg, mode)) return {};  // deposit-only target
  return checkHandleReadable(h, reg, mode, what);
}

}  // namespace

std::string validateAgs(const Ags& ags, const TsRegistry& reg, ExecMode mode) {
  // Static (registry-independent) rules first — the same pass the client ran
  // before multicasting, repeated here so a statement that arrived through
  // any other path (hostile client, corrupt snapshot) yields the identical
  // deterministic error at every replica instead of UB. See verify.hpp.
  if (VerifyResult vr = verify(ags); !vr.ok()) return vr.toString();
  for (const auto& branch : ags.branches) {
    if (branch.guard.kind != Guard::Kind::True) {
      if (auto e = checkHandleReadable(branch.guard.ts, reg, mode, "guard"); !e.empty()) {
        return e;
      }
    }
    for (const auto& op : branch.body) {
      switch (op.op) {
        case OpCode::Out: {
          if (auto e = checkHandleWritable(op.ts, reg, mode, "out"); !e.empty()) return e;
          break;
        }
        case OpCode::Inp:
        case OpCode::Rdp: {
          if (auto e = checkHandleReadable(op.ts, reg, mode, opCodeName(op.op)); !e.empty()) {
            return e;
          }
          break;
        }
        case OpCode::Move:
        case OpCode::Copy: {
          if (auto e = checkHandleReadable(op.ts, reg, mode, "move/copy source"); !e.empty()) {
            return e;
          }
          if (auto e = checkHandleWritable(op.dst, reg, mode, "move/copy destination");
              !e.empty()) {
            return e;
          }
          break;
        }
        case OpCode::CreateTs: {
          if (mode == ExecMode::Replicated && !op.create_attrs.stable) {
            return "create_TS: volatile spaces are processor-local, create them locally";
          }
          if (mode == ExecMode::Local && op.create_attrs.stable) {
            return "create_TS: stable spaces must be created through the replicated path";
          }
          break;
        }
        case OpCode::DestroyTs: {
          // TSmain and use-after-destroy are already rejected by verify().
          if (auto e = checkHandleReadable(op.ts, reg, mode, "destroy_TS"); !e.empty()) {
            return e;
          }
          break;
        }
      }
    }
  }
  return {};
}

namespace {

void executeBody(const std::vector<BodyOp>& body, const std::vector<Value>& bindings,
                 TsRegistry& reg, ExecMode mode, ExecResult& result) {
  Reply& reply = result.reply;
  for (const auto& op : body) {
    bool status = true;
    switch (op.op) {
      case OpCode::Out: {
        Tuple t = op.tmpl.eval(bindings);
        if (externalLocalDst(op.ts, reg, mode)) {
          reply.local_deposits.emplace_back(op.ts, std::move(t));
        } else {
          result.deposited.emplace_back(op.ts, tuple::signatureOf(t));
          reg.get(op.ts).put(std::move(t));
        }
        break;
      }
      case OpCode::Inp: {
        status = reg.get(op.ts).take(op.pattern.resolve(bindings)).has_value();
        break;
      }
      case OpCode::Rdp: {
        status = reg.get(op.ts).readRef(op.pattern.resolve(bindings)) != nullptr;
        break;
      }
      case OpCode::Move:
      case OpCode::Copy: {
        const Pattern p = op.pattern.resolve(bindings);
        std::vector<Tuple> tuples = (op.op == OpCode::Move) ? reg.get(op.ts).takeAll(p)
                                                            : reg.get(op.ts).readAll(p);
        status = !tuples.empty();
        if (externalLocalDst(op.dst, reg, mode)) {
          for (auto& t : tuples) reply.local_deposits.emplace_back(op.dst, std::move(t));
        } else {
          auto& dst = reg.get(op.dst);
          // Every tuple matched one pattern, so they share its signature.
          if (!tuples.empty()) result.deposited.emplace_back(op.dst, tuple::signatureOf(p));
          for (auto& t : tuples) dst.put(std::move(t));
        }
        break;
      }
      case OpCode::CreateTs: {
        reply.created.push_back(reg.create(op.create_attrs));
        break;
      }
      case OpCode::DestroyTs: {
        status = reg.destroy(op.ts);
        result.structural = true;
        break;
      }
    }
    reply.op_status.push_back(status);
  }
}

}  // namespace

ExecResult tryExecuteAgs(const Ags& ags, TsRegistry& reg, ExecMode mode) {
  ExecResult result;
  if (auto err = validateAgs(ags, reg, mode); !err.empty()) {
    result.executed = true;
    result.reply.error = std::move(err);
    return result;
  }
  // Replica-side statement of the guarantee: past validation, the statement
  // is statically well-formed — every bindings[] access in eval/resolve is
  // in range and every arith is numeric (debug builds re-check).
  FTL_DASSERT(verify(ags).ok(), "verifier-rejected AGS survived validation");
  for (std::size_t i = 0; i < ags.branches.size(); ++i) {
    const Branch& branch = ags.branches[i];
    const Guard& g = branch.guard;
    // In/Inp extract the tuple (owned); Rd/Rdp borrow it from the store
    // (readRef — no copy). Either way the reply takes ownership below,
    // BEFORE the body runs: body ops may mutate the store and invalidate
    // the borrowed pointer.
    std::optional<Tuple> matched;
    const Tuple* matched_ref = nullptr;
    bool fired = false;
    switch (g.kind) {
      case Guard::Kind::True:
        fired = true;
        break;
      case Guard::Kind::In:
      case Guard::Kind::Inp: {
        matched = reg.get(g.ts).take(g.pattern);
        fired = matched.has_value();
        if (matched) matched_ref = &*matched;
        break;
      }
      case Guard::Kind::Rd:
      case Guard::Kind::Rdp: {
        matched_ref = reg.get(g.ts).readRef(g.pattern);
        fired = matched_ref != nullptr;
        break;
      }
    }
    if (!fired) continue;
    std::vector<Value> bindings;
    if (matched_ref) bindings = g.pattern.bind(*matched_ref);
    result.reply.succeeded = true;
    result.reply.branch = static_cast<std::int32_t>(i);
    if (matched) {
      result.reply.guard_tuple = std::move(matched);  // extracted: move it
    } else if (matched_ref) {
      result.reply.guard_tuple = *matched_ref;  // borrowed: one copy, here only
    }
    matched_ref = nullptr;  // body may invalidate the borrow
    executeBody(branch.body, bindings, reg, mode, result);
    result.reply.bindings = std::move(bindings);
    result.executed = true;
    return result;
  }
  if (ags.blocking()) {
    result.executed = false;  // caller queues the AGS
    return result;
  }
  result.executed = true;
  result.reply.succeeded = false;  // strong inp/rdp verdict
  return result;
}

}  // namespace ftl::ftlinda

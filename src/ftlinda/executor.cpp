#include "ftlinda/executor.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace ftl::ftlinda {

namespace {

using ts::isLocalHandle;
using ts::TsRegistry;
using tuple::PatternField;

/// The types the guard's formals bind, in formal order (empty for True).
std::vector<ValueType> bindingTypes(const Guard& g) {
  std::vector<ValueType> types;
  if (g.kind == Guard::Kind::True) return types;
  for (const auto& f : g.pattern.fields()) {
    if (f.kind == PatternField::Kind::Formal) types.push_back(f.formal_type);
  }
  return types;
}

std::string checkTemplateRefs(const TupleTemplate& t, const std::vector<ValueType>& btypes) {
  for (const auto& f : t.fields) {
    if (f.kind == TemplateField::Kind::Literal) continue;
    if (f.formal_index >= btypes.size()) return "template references formal beyond guard's";
    if (f.kind == TemplateField::Kind::Expr) {
      const ValueType bt = btypes[f.formal_index];
      if (bt != ValueType::Int && bt != ValueType::Real) {
        return "arithmetic requires an int or real formal";
      }
      if (f.literal.type() != bt) return "arithmetic operand type mismatch";
    }
  }
  return {};
}

std::string checkPatternRefs(const PatternTemplate& p, const std::vector<ValueType>& btypes) {
  for (const auto& f : p.fields) {
    if (f.kind == PatternTemplateField::Kind::BoundRef && f.ref >= btypes.size()) {
      return "pattern references formal beyond guard's";
    }
  }
  return {};
}

/// Is `h` usable as a WRITE-ONLY destination outside the registry?
bool externalLocalDst(TsHandle h, const TsRegistry& reg, ExecMode mode) {
  return mode == ExecMode::Replicated && isLocalHandle(h) && !reg.exists(h);
}

std::string checkHandleReadable(TsHandle h, const TsRegistry& reg, ExecMode mode,
                                const char* what) {
  std::ostringstream os;
  if (mode == ExecMode::Replicated && isLocalHandle(h)) {
    os << what << ": a volatile local TS cannot be read inside a replicated AGS";
    return os.str();
  }
  if (!reg.exists(h)) {
    os << what << ": unknown tuple space handle";
    return os.str();
  }
  return {};
}

std::string checkHandleWritable(TsHandle h, const TsRegistry& reg, ExecMode mode,
                                const char* what) {
  if (externalLocalDst(h, reg, mode)) return {};  // deposit-only target
  return checkHandleReadable(h, reg, mode, what);
}

}  // namespace

std::string validateAgs(const Ags& ags, const TsRegistry& reg, ExecMode mode) {
  if (ags.branches.empty()) return "AGS has no branches";
  for (const auto& branch : ags.branches) {
    const auto btypes = bindingTypes(branch.guard);
    if (branch.guard.kind != Guard::Kind::True) {
      if (auto e = checkHandleReadable(branch.guard.ts, reg, mode, "guard"); !e.empty()) {
        return e;
      }
    }
    for (const auto& op : branch.body) {
      switch (op.op) {
        case OpCode::Out: {
          if (auto e = checkHandleWritable(op.ts, reg, mode, "out"); !e.empty()) return e;
          if (auto e = checkTemplateRefs(op.tmpl, btypes); !e.empty()) return e;
          break;
        }
        case OpCode::Inp:
        case OpCode::Rdp: {
          if (auto e = checkHandleReadable(op.ts, reg, mode, opCodeName(op.op)); !e.empty()) {
            return e;
          }
          if (auto e = checkPatternRefs(op.pattern, btypes); !e.empty()) return e;
          break;
        }
        case OpCode::Move:
        case OpCode::Copy: {
          if (auto e = checkHandleReadable(op.ts, reg, mode, "move/copy source"); !e.empty()) {
            return e;
          }
          if (auto e = checkHandleWritable(op.dst, reg, mode, "move/copy destination");
              !e.empty()) {
            return e;
          }
          if (auto e = checkPatternRefs(op.pattern, btypes); !e.empty()) return e;
          break;
        }
        case OpCode::CreateTs: {
          if (mode == ExecMode::Replicated && !op.create_attrs.stable) {
            return "create_TS: volatile spaces are processor-local, create them locally";
          }
          if (mode == ExecMode::Local && op.create_attrs.stable) {
            return "create_TS: stable spaces must be created through the replicated path";
          }
          break;
        }
        case OpCode::DestroyTs: {
          if (auto e = checkHandleReadable(op.ts, reg, mode, "destroy_TS"); !e.empty()) {
            return e;
          }
          if (op.ts == ts::kTsMain) return "destroy_TS: TSmain cannot be destroyed";
          break;
        }
      }
    }
  }
  return {};
}

namespace {

void executeBody(const std::vector<BodyOp>& body, const std::vector<Value>& bindings,
                 TsRegistry& reg, ExecMode mode, Reply& reply) {
  for (const auto& op : body) {
    bool status = true;
    switch (op.op) {
      case OpCode::Out: {
        Tuple t = op.tmpl.eval(bindings);
        if (externalLocalDst(op.ts, reg, mode)) {
          reply.local_deposits.emplace_back(op.ts, std::move(t));
        } else {
          reg.get(op.ts).put(std::move(t));
        }
        break;
      }
      case OpCode::Inp: {
        status = reg.get(op.ts).take(op.pattern.resolve(bindings)).has_value();
        break;
      }
      case OpCode::Rdp: {
        status = reg.get(op.ts).read(op.pattern.resolve(bindings)).has_value();
        break;
      }
      case OpCode::Move:
      case OpCode::Copy: {
        const Pattern p = op.pattern.resolve(bindings);
        std::vector<Tuple> tuples = (op.op == OpCode::Move) ? reg.get(op.ts).takeAll(p)
                                                            : reg.get(op.ts).readAll(p);
        status = !tuples.empty();
        if (externalLocalDst(op.dst, reg, mode)) {
          for (auto& t : tuples) reply.local_deposits.emplace_back(op.dst, std::move(t));
        } else {
          auto& dst = reg.get(op.dst);
          for (auto& t : tuples) dst.put(std::move(t));
        }
        break;
      }
      case OpCode::CreateTs: {
        reply.created.push_back(reg.create(op.create_attrs));
        break;
      }
      case OpCode::DestroyTs: {
        status = reg.destroy(op.ts);
        break;
      }
    }
    reply.op_status.push_back(status);
  }
}

}  // namespace

ExecResult tryExecuteAgs(const Ags& ags, TsRegistry& reg, ExecMode mode) {
  ExecResult result;
  if (auto err = validateAgs(ags, reg, mode); !err.empty()) {
    result.executed = true;
    result.reply.error = std::move(err);
    return result;
  }
  for (std::size_t i = 0; i < ags.branches.size(); ++i) {
    const Branch& branch = ags.branches[i];
    const Guard& g = branch.guard;
    std::vector<Value> bindings;
    std::optional<Tuple> matched;
    bool fired = false;
    switch (g.kind) {
      case Guard::Kind::True:
        fired = true;
        break;
      case Guard::Kind::In:
      case Guard::Kind::Inp: {
        matched = reg.get(g.ts).take(g.pattern);
        fired = matched.has_value();
        break;
      }
      case Guard::Kind::Rd:
      case Guard::Kind::Rdp: {
        matched = reg.get(g.ts).read(g.pattern);
        fired = matched.has_value();
        break;
      }
    }
    if (!fired) continue;
    if (matched) bindings = g.pattern.bind(*matched);
    result.reply.succeeded = true;
    result.reply.branch = static_cast<std::int32_t>(i);
    result.reply.bindings = bindings;
    result.reply.guard_tuple = matched;
    executeBody(branch.body, bindings, reg, mode, result.reply);
    result.executed = true;
    return result;
  }
  if (ags.blocking()) {
    result.executed = false;  // caller queues the AGS
    return result;
  }
  result.executed = true;
  result.reply.succeeded = false;  // strong inp/rdp verdict
  return result;
}

}  // namespace ftl::ftlinda

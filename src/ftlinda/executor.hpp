// AGS executor: evaluates an Atomic Guarded Statement against a tuple-space
// registry, all-or-nothing.
//
// The SAME code runs in two contexts:
//  - inside the replicated TS state machine at every replica (mode
//    Replicated): the registry holds the stable tuple spaces; operations
//    whose destination is a volatile local handle don't touch the registry —
//    their tuples are collected into Reply::local_deposits for the issuing
//    processor's runtime to apply;
//  - inside a processor's runtime against its volatile scratch registry
//    (mode Local): every handle must be local and present.
//
// Execution is strictly deterministic: an AGS is validated completely before
// any mutation, so a branch either (a) fires and runs its whole body, (b)
// reports a deterministic validation error with no state change, or (c)
// cannot fire, in which case the statement blocks (if any guard is blocking)
// or returns succeeded=false (strong inp/rdp semantics).
#pragma once

#include "ftlinda/protocol.hpp"
#include "ts/registry.hpp"

namespace ftl::ftlinda {

enum class ExecMode {
  Replicated,  // stable registry; local handles allowed as deposit targets
  Local,       // scratch registry; all handles must resolve locally
};

struct ExecResult {
  /// False means "no guard can fire now and the AGS blocks" — the caller
  /// queues it. True means `reply` is final (which includes deterministic
  /// errors and failed non-blocking statements).
  bool executed = false;
  Reply reply;

  /// Wake hints for the caller's blocked-guard wait-index: the (space,
  /// signature) of every tuple this statement deposited INTO THE REGISTRY
  /// (out, and move/copy destinations; local_deposits are excluded — they
  /// never wake replica-side guards). Deterministic: derived only from the
  /// statement and the matched tuples. May contain duplicates.
  std::vector<std::pair<TsHandle, tuple::SignatureKey>> deposited;
  /// True if a destroy_TS ran: blocked statements referencing the destroyed
  /// space must be re-validated (they now terminate with an error reply), so
  /// the caller retries its whole wait queue.
  bool structural = false;
};

/// Validate `ags` against `reg` under `mode`. Returns an empty string if
/// valid, else a deterministic diagnostic. Never mutates state.
std::string validateAgs(const Ags& ags, const ts::TsRegistry& reg, ExecMode mode);

/// Try to execute `ags`. Guards are tried in branch order; the first branch
/// whose guard is satisfiable fires atomically.
ExecResult tryExecuteAgs(const Ags& ags, ts::TsRegistry& reg, ExecMode mode);

}  // namespace ftl::ftlinda

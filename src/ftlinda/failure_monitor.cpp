#include "ftlinda/failure_monitor.hpp"

#include "common/logging.hpp"

namespace ftl::ftlinda {

FailureMonitor::FailureMonitor(LindaApi& rt, TsHandle ts, RegenRule rule, Callback on_handled)
    : rt_(rt), ts_(ts), rule_(std::move(rule)), on_handled_(std::move(on_handled)) {
  FTL_REQUIRE(!rule_.marker_name.empty() && !rule_.work_name.empty(),
              "regen rule needs marker and work tuple names");
}

void FailureMonitor::run() {
  rt_.monitorFailures(ts_);
  for (;;) handleOne();
}

net::HostId FailureMonitor::handleOne() {
  Reply fr = requireReply(rt_.tryExecute(AgsBuilder()
                             .when(guardIn(ts_, tuple::makePattern("failure", tuple::fInt())))
                             .build()));
  const std::int64_t dead = fr.bindings.at(0).asInt();
  const int regenerated = regenerate(dead);
  FTL_INFO("monitor", "host " << rt_.host() << ": handled failure of " << dead << ", regenerated "
                              << regenerated << " marker(s)");
  if (on_handled_) on_handled_(static_cast<net::HostId>(dead), regenerated);
  return static_cast<net::HostId>(dead);
}

int FailureMonitor::regenerate(std::int64_t failed_host) {
  // Build < inp(marker, host, ?p0, ?p1, ...) => out(work, p0, p1, ...) >
  // once, then drain markers until the inp misses.
  std::vector<tuple::PatternField> pf;
  pf.push_back(tuple::actual(Value(rule_.marker_name)));
  pf.push_back(tuple::actual(Value(failed_host)));
  for (ValueType t : rule_.payload_types) pf.push_back(tuple::formal(t));
  PatternTemplate marker;
  for (const auto& f : pf) {
    PatternTemplateField g;
    if (f.kind == tuple::PatternField::Kind::Actual) {
      g.kind = PatternTemplateField::Kind::Actual;
      g.actual = f.actual;
    } else {
      g.kind = PatternTemplateField::Kind::Formal;
      g.formal_type = f.formal_type;
    }
    marker.fields.push_back(std::move(g));
  }
  TupleTemplate work;
  {
    TemplateField name;
    name.kind = TemplateField::Kind::Literal;
    name.literal = Value(rule_.work_name);
    work.fields.push_back(std::move(name));
    for (std::uint16_t i = 0; i < rule_.payload_types.size(); ++i) {
      work.fields.push_back(bound(i));
    }
  }
  Ags regen;
  {
    Branch b;
    Guard g;
    g.kind = Guard::Kind::Inp;
    g.ts = ts_;
    g.pattern = marker.resolve({});  // all actuals/formals, no bound refs
    b.guard = std::move(g);
    b.body.push_back(opOut(ts_, std::move(work)));
    regen.branches.push_back(std::move(b));
  }
  int count = 0;
  for (;;) {
    Reply r = requireReply(rt_.tryExecute(regen));
    if (!r.succeeded) break;
    ++count;
  }
  return count;
}

}  // namespace ftl::ftlinda

// FailureMonitor: the paper's §4 monitor-process idiom as a reusable
// component.
//
// Every fault-tolerant FT-Linda application in the paper follows the same
// pattern: a monitor process blocks on
//
//     < in("failure", ?host) => ... >
//
// and, upon a failure notification, atomically repairs the dead processor's
// traces — typically converting each of its ("in_progress", host, ...)
// markers back into work tuples. This class packages that loop: give it the
// marker pattern and the regeneration template, and it runs the handler
// process for you (including the atomic consume-marker/redeposit-work AGS).
//
// A custom callback variant is provided for repairs that don't fit the
// marker->work shape.
#pragma once

#include <functional>

#include "ftlinda/api.hpp"

namespace ftl::ftlinda {

class FailureMonitor {
 public:
  /// Describes the standard regeneration rule. The marker pattern must have
  /// the failed HOST as its field 1 slot filled by the monitor (write the
  /// pattern WITHOUT the host: it is inserted at `host_field_index`).
  struct RegenRule {
    /// Name of the in-progress marker tuples, e.g. "in_progress". The
    /// marker layout is (name, host, payload fields...).
    std::string marker_name;
    /// Types of the marker's payload fields (after name and host).
    std::vector<ValueType> payload_types;
    /// Name of the regenerated work tuple; it receives the payload fields
    /// in order: (work_name, payload...).
    std::string work_name;
  };

  /// Called after each handled failure: (failed host, markers regenerated).
  using Callback = std::function<void(net::HostId, int)>;

  FailureMonitor(LindaApi& rt, TsHandle ts, RegenRule rule, Callback on_handled = {});

  /// Run the monitor loop forever (until the processor fails). Call from a
  /// dedicated process, e.g. sys.spawnProcess(h, [&](LindaApi&){ m.run(); }).
  /// Registers `ts` for failure notification on entry.
  void run();

  /// Handle exactly one failure notification (blocking); returns the failed
  /// host. Useful for tests and custom loops.
  net::HostId handleOne();

 private:
  int regenerate(std::int64_t failed_host);

  LindaApi& rt_;
  const TsHandle ts_;
  const RegenRule rule_;
  const Callback on_handled_;
};

}  // namespace ftl::ftlinda

#include "ftlinda/ops.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace ftl::ftlinda {

namespace {

// Decode-path defence: enum bytes come off the wire (or out of a snapshot),
// so range-check them before the cast — a flipped bit must become a clean
// ftl::Error at decode time, never an out-of-range enum that downstream
// switches treat as UB. The static verifier (verify.hpp) re-checks the same
// ranges for statements constructed in memory.
template <typename E>
E decodeEnum(std::uint8_t raw, E max, const char* what) {
  FTL_CHECK(raw <= static_cast<std::uint8_t>(max), std::string("corrupt ") + what + " byte");
  return static_cast<E>(raw);
}

}  // namespace

Value TemplateField::eval(const std::vector<Value>& bindings) const {
  // bindings[] accesses stay guarded even though the verifier (rule
  // formal-out-of-range) rejects such statements before execution: this is
  // the last line of defence on the replica hot path.
  switch (kind) {
    case Kind::Literal:
      return literal;
    case Kind::FormalRef:
      FTL_CHECK(formal_index < bindings.size(), "template references unbound formal");
      return bindings[formal_index];
    case Kind::Expr: {
      FTL_CHECK(formal_index < bindings.size(), "template references unbound formal");
      const Value& lhs = bindings[formal_index];
      FTL_CHECK(lhs.type() == literal.type(), "arith on mismatched types");
      if (lhs.type() == ValueType::Int) {
        const std::int64_t a = lhs.asInt();
        const std::int64_t b = literal.asInt();
        switch (arith) {
          case ArithOp::Add: return Value(a + b);
          case ArithOp::Sub: return Value(a - b);
          case ArithOp::Mul: return Value(a * b);
        }
      } else if (lhs.type() == ValueType::Real) {
        const double a = lhs.asReal();
        const double b = literal.asReal();
        switch (arith) {
          case ArithOp::Add: return Value(a + b);
          case ArithOp::Sub: return Value(a - b);
          case ArithOp::Mul: return Value(a * b);
        }
      }
      throw Error("arith only supported on int/real formals");
    }
  }
  throw Error("bad template field kind");
}

void TemplateField::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case Kind::Literal:
      literal.encode(w);
      break;
    case Kind::FormalRef:
      w.u16(formal_index);
      break;
    case Kind::Expr:
      w.u16(formal_index);
      w.u8(static_cast<std::uint8_t>(arith));
      literal.encode(w);
      break;
  }
}

TemplateField TemplateField::decode(Reader& r) {
  TemplateField f;
  f.kind = decodeEnum(r.u8(), Kind::Expr, "template-field kind");
  switch (f.kind) {
    case Kind::Literal:
      f.literal = Value::decode(r);
      break;
    case Kind::FormalRef:
      f.formal_index = r.u16();
      break;
    case Kind::Expr:
      f.formal_index = r.u16();
      f.arith = decodeEnum(r.u8(), ArithOp::Mul, "arith op");
      f.literal = Value::decode(r);
      break;
  }
  return f;
}

TemplateField bound(std::uint16_t i) {
  TemplateField f;
  f.kind = TemplateField::Kind::FormalRef;
  f.formal_index = i;
  return f;
}

TemplateField boundExpr(std::uint16_t i, ArithOp op, Value rhs) {
  TemplateField f;
  f.kind = TemplateField::Kind::Expr;
  f.formal_index = i;
  f.arith = op;
  f.literal = std::move(rhs);
  return f;
}

Tuple TupleTemplate::eval(const std::vector<Value>& bindings) const {
  std::vector<Value> vals;
  vals.reserve(fields.size());
  for (const auto& f : fields) vals.push_back(f.eval(bindings));
  return Tuple(std::move(vals));
}

std::size_t TupleTemplate::maxFormalRef() const {
  std::size_t n = 0;
  for (const auto& f : fields) {
    if (f.kind != TemplateField::Kind::Literal) {
      n = std::max(n, static_cast<std::size_t>(f.formal_index) + 1);
    }
  }
  return n;
}

void TupleTemplate::encode(Writer& w) const {
  w.u16(static_cast<std::uint16_t>(fields.size()));
  for (const auto& f : fields) f.encode(w);
}

TupleTemplate TupleTemplate::decode(Reader& r) {
  TupleTemplate t;
  const std::uint16_t n = r.u16();
  t.fields.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) t.fields.push_back(TemplateField::decode(r));
  return t;
}

void PatternTemplateField::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case Kind::Actual: actual.encode(w); break;
    case Kind::Formal: w.u8(static_cast<std::uint8_t>(formal_type)); break;
    case Kind::BoundRef: w.u16(ref); break;
  }
}

PatternTemplateField PatternTemplateField::decode(Reader& r) {
  PatternTemplateField f;
  f.kind = decodeEnum(r.u8(), Kind::BoundRef, "pattern-field kind");
  switch (f.kind) {
    case Kind::Actual: f.actual = Value::decode(r); break;
    case Kind::Formal: f.formal_type = decodeEnum(r.u8(), ValueType::Blob, "value type"); break;
    case Kind::BoundRef: f.ref = r.u16(); break;
  }
  return f;
}

Pattern PatternTemplate::resolve(const std::vector<Value>& bindings) const {
  std::vector<PatternField> out;
  out.reserve(fields.size());
  for (const auto& f : fields) {
    switch (f.kind) {
      case PatternTemplateField::Kind::Actual:
        out.push_back(tuple::actual(f.actual));
        break;
      case PatternTemplateField::Kind::Formal:
        out.push_back(tuple::formal(f.formal_type));
        break;
      case PatternTemplateField::Kind::BoundRef:
        // Guarded despite verifier rule bound-ref-out-of-range — see eval().
        FTL_CHECK(f.ref < bindings.size(), "pattern references unbound formal");
        out.push_back(tuple::actual(bindings[f.ref]));
        break;
    }
  }
  return Pattern(std::move(out));
}

std::size_t PatternTemplate::maxFormalRef() const {
  std::size_t n = 0;
  for (const auto& f : fields) {
    if (f.kind == PatternTemplateField::Kind::BoundRef) {
      n = std::max(n, static_cast<std::size_t>(f.ref) + 1);
    }
  }
  return n;
}

void PatternTemplate::encode(Writer& w) const {
  w.u16(static_cast<std::uint16_t>(fields.size()));
  for (const auto& f : fields) f.encode(w);
}

PatternTemplate PatternTemplate::decode(Reader& r) {
  PatternTemplate p;
  const std::uint16_t n = r.u16();
  p.fields.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) p.fields.push_back(PatternTemplateField::decode(r));
  return p;
}

const char* opCodeName(OpCode op) {
  switch (op) {
    case OpCode::Out: return "out";
    case OpCode::Inp: return "inp";
    case OpCode::Rdp: return "rdp";
    case OpCode::Move: return "move";
    case OpCode::Copy: return "copy";
    case OpCode::CreateTs: return "create_TS";
    case OpCode::DestroyTs: return "destroy_TS";
  }
  return "?";
}

void BodyOp::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(op));
  w.u64(ts);
  w.u64(dst);
  switch (op) {
    case OpCode::Out:
      tmpl.encode(w);
      break;
    case OpCode::Inp:
    case OpCode::Rdp:
    case OpCode::Move:
    case OpCode::Copy:
      pattern.encode(w);
      break;
    case OpCode::CreateTs:
      create_attrs.encode(w);
      break;
    case OpCode::DestroyTs:
      break;
  }
}

BodyOp BodyOp::decode(Reader& r) {
  BodyOp b;
  b.op = decodeEnum(r.u8(), OpCode::DestroyTs, "opcode");
  b.ts = r.u64();
  b.dst = r.u64();
  switch (b.op) {
    case OpCode::Out:
      b.tmpl = TupleTemplate::decode(r);
      break;
    case OpCode::Inp:
    case OpCode::Rdp:
    case OpCode::Move:
    case OpCode::Copy:
      b.pattern = PatternTemplate::decode(r);
      break;
    case OpCode::CreateTs:
      b.create_attrs = TsAttributes::decode(r);
      break;
    case OpCode::DestroyTs:
      break;
  }
  return b;
}

BodyOp opOut(TsHandle ts, TupleTemplate tmpl) {
  BodyOp b;
  b.op = OpCode::Out;
  b.ts = ts;
  b.tmpl = std::move(tmpl);
  return b;
}

BodyOp opInp(TsHandle ts, PatternTemplate pattern) {
  BodyOp b;
  b.op = OpCode::Inp;
  b.ts = ts;
  b.pattern = std::move(pattern);
  return b;
}

BodyOp opRdp(TsHandle ts, PatternTemplate pattern) {
  BodyOp b;
  b.op = OpCode::Rdp;
  b.ts = ts;
  b.pattern = std::move(pattern);
  return b;
}

BodyOp opMove(TsHandle src, TsHandle dst, PatternTemplate pattern) {
  BodyOp b;
  b.op = OpCode::Move;
  b.ts = src;
  b.dst = dst;
  b.pattern = std::move(pattern);
  return b;
}

BodyOp opCopy(TsHandle src, TsHandle dst, PatternTemplate pattern) {
  BodyOp b;
  b.op = OpCode::Copy;
  b.ts = src;
  b.dst = dst;
  b.pattern = std::move(pattern);
  return b;
}

BodyOp opCreateTs(TsAttributes attrs) {
  BodyOp b;
  b.op = OpCode::CreateTs;
  b.create_attrs = attrs;
  return b;
}

BodyOp opDestroyTs(TsHandle ts) {
  BodyOp b;
  b.op = OpCode::DestroyTs;
  b.ts = ts;
  return b;
}

void Guard::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  if (kind != Kind::True) {
    w.u64(ts);
    pattern.encode(w);
  }
}

Guard Guard::decode(Reader& r) {
  Guard g;
  g.kind = decodeEnum(r.u8(), Kind::Rdp, "guard kind");
  if (g.kind != Kind::True) {
    g.ts = r.u64();
    g.pattern = Pattern::decode(r);
  }
  return g;
}

Guard guardTrue() { return Guard{}; }

namespace {
Guard makeGuard(Guard::Kind k, TsHandle ts, Pattern p) {
  Guard g;
  g.kind = k;
  g.ts = ts;
  g.pattern = std::move(p);
  return g;
}
}  // namespace

Guard guardIn(TsHandle ts, Pattern p) { return makeGuard(Guard::Kind::In, ts, std::move(p)); }
Guard guardRd(TsHandle ts, Pattern p) { return makeGuard(Guard::Kind::Rd, ts, std::move(p)); }
Guard guardInp(TsHandle ts, Pattern p) { return makeGuard(Guard::Kind::Inp, ts, std::move(p)); }
Guard guardRdp(TsHandle ts, Pattern p) { return makeGuard(Guard::Kind::Rdp, ts, std::move(p)); }

void Branch::encode(Writer& w) const {
  guard.encode(w);
  w.u16(static_cast<std::uint16_t>(body.size()));
  for (const auto& op : body) op.encode(w);
}

Branch Branch::decode(Reader& r) {
  Branch b;
  b.guard = Guard::decode(r);
  const std::uint16_t n = r.u16();
  b.body.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) b.body.push_back(BodyOp::decode(r));
  return b;
}

bool Ags::blocking() const {
  for (const auto& b : branches) {
    if (b.guard.blocking()) return true;
  }
  return false;
}

void Ags::encode(Writer& w) const {
  w.u16(static_cast<std::uint16_t>(branches.size()));
  for (const auto& b : branches) b.encode(w);
}

Ags Ags::decode(Reader& r) {
  Ags a;
  const std::uint16_t n = r.u16();
  a.branches.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) a.branches.push_back(Branch::decode(r));
  return a;
}

std::string Ags::toString() const {
  std::ostringstream os;
  os << "< ";
  for (std::size_t i = 0; i < branches.size(); ++i) {
    if (i) os << " or ";
    const auto& b = branches[i];
    switch (b.guard.kind) {
      case Guard::Kind::True: os << "true"; break;
      case Guard::Kind::In: os << "in" << b.guard.pattern.toString(); break;
      case Guard::Kind::Rd: os << "rd" << b.guard.pattern.toString(); break;
      case Guard::Kind::Inp: os << "inp" << b.guard.pattern.toString(); break;
      case Guard::Kind::Rdp: os << "rdp" << b.guard.pattern.toString(); break;
    }
    os << " => " << b.body.size() << " ops";
  }
  os << " >";
  return os.str();
}

AgsBuilder& AgsBuilder::when(Guard g) {
  Branch b;
  b.guard = std::move(g);
  ags_.branches.push_back(std::move(b));
  return *this;
}

AgsBuilder& AgsBuilder::then(BodyOp op) {
  FTL_REQUIRE(!ags_.branches.empty(), "then() before when()");
  ags_.branches.back().body.push_back(std::move(op));
  return *this;
}

Ags AgsBuilder::build() {
  FTL_REQUIRE(!ags_.branches.empty(), "AGS needs at least one branch");
  return std::move(ags_);
}

}  // namespace ftl::ftlinda

// The Atomic Guarded Statement (AGS) — the paper's central construct — and
// the opcode representation FT-lcc compiles it into.
//
//     < guard => body  or  guard => body  or ... >
//
// The guard is one (possibly blocking) TS operation or `true`; the body is a
// sequence of non-blocking TS operations. The whole statement executes
// all-or-nothing at one point of the global total order.
//
// Values bound by the guard's formals are numbered left-to-right and may be
// referenced by body operations (as out-template fields or as pattern
// actuals), optionally through a small arithmetic expression — the FT-lcc
// compilation of things like `out("count", x+1)` in the paper's
// distributed-variable example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ts/registry.hpp"
#include "tuple/pattern.hpp"

namespace ftl::ftlinda {

using ts::TsAttributes;
using ts::TsHandle;
using tuple::Pattern;
using tuple::PatternField;
using tuple::Tuple;
using tuple::Value;
using tuple::ValueType;

/// Arithmetic applied to a bound formal inside a body op (the only
/// computation permitted inside an AGS, keeping replica execution
/// deterministic and cheap — see DESIGN.md).
enum class ArithOp : std::uint8_t { Add = 0, Sub = 1, Mul = 2 };

/// One field of an `out` template in an AGS body.
struct TemplateField {
  enum class Kind : std::uint8_t { Literal = 0, FormalRef = 1, Expr = 2 };
  Kind kind = Kind::Literal;
  Value literal;                    // Literal; Expr's right operand
  std::uint16_t formal_index = 0;   // FormalRef / Expr's left operand
  ArithOp arith = ArithOp::Add;     // Expr

  /// Resolve against the guard's bound formals.
  Value eval(const std::vector<Value>& bindings) const;

  void encode(Writer& w) const;
  static TemplateField decode(Reader& r);
};

/// Reference to guard formal `i` (use in templates/pattern-templates).
TemplateField bound(std::uint16_t i);
/// `bound(i) <op> literal`, e.g. boundExpr(0, ArithOp::Add, 1) for `x+1`.
TemplateField boundExpr(std::uint16_t i, ArithOp op, Value rhs);

/// Template for the tuple an `out` deposits.
struct TupleTemplate {
  std::vector<TemplateField> fields;

  Tuple eval(const std::vector<Value>& bindings) const;
  std::size_t maxFormalRef() const;  // 0 if none; else max index + 1

  void encode(Writer& w) const;
  static TupleTemplate decode(Reader& r);
};

/// Variadic template builder mixing literals and bound() refs:
///   makeTemplate("count", boundExpr(0, ArithOp::Add, 1))
template <typename... Args>
TupleTemplate makeTemplate(Args&&... args) {
  TupleTemplate t;
  t.fields.reserve(sizeof...(Args));
  auto push = [&t](auto&& a) {
    using A = std::decay_t<decltype(a)>;
    if constexpr (std::is_same_v<A, TemplateField>) {
      t.fields.push_back(std::forward<decltype(a)>(a));
    } else {
      TemplateField f;
      f.kind = TemplateField::Kind::Literal;
      f.literal = Value(std::forward<decltype(a)>(a));
      t.fields.push_back(std::move(f));
    }
  };
  (push(std::forward<Args>(args)), ...);
  return t;
}

/// One field of a body-op pattern: an actual, a typed formal (matches
/// anything of the type, binds nothing in body position), or a reference to
/// a guard formal used as an actual.
struct PatternTemplateField {
  enum class Kind : std::uint8_t { Actual = 0, Formal = 1, BoundRef = 2 };
  Kind kind = Kind::Actual;
  Value actual;
  ValueType formal_type = ValueType::Int;
  std::uint16_t ref = 0;

  void encode(Writer& w) const;
  static PatternTemplateField decode(Reader& r);
};

/// Pattern whose actuals may come from guard formals.
struct PatternTemplate {
  std::vector<PatternTemplateField> fields;

  Pattern resolve(const std::vector<Value>& bindings) const;
  std::size_t maxFormalRef() const;

  void encode(Writer& w) const;
  static PatternTemplate decode(Reader& r);
};

/// Builder: makePatternTemplate("in_progress", bound(0), fInt()).
template <typename... Args>
PatternTemplate makePatternTemplate(Args&&... args) {
  PatternTemplate p;
  p.fields.reserve(sizeof...(Args));
  auto push = [&p](auto&& a) {
    using A = std::decay_t<decltype(a)>;
    PatternTemplateField f;
    if constexpr (std::is_same_v<A, TemplateField>) {
      // A bound() reference reused in pattern position.
      f.kind = PatternTemplateField::Kind::BoundRef;
      f.ref = a.formal_index;
    } else if constexpr (std::is_same_v<A, PatternField>) {
      if (a.kind == PatternField::Kind::Formal) {
        f.kind = PatternTemplateField::Kind::Formal;
        f.formal_type = a.formal_type;
      } else {
        f.kind = PatternTemplateField::Kind::Actual;
        f.actual = a.actual;
      }
    } else {
      f.kind = PatternTemplateField::Kind::Actual;
      f.actual = Value(std::forward<decltype(a)>(a));
    }
    p.fields.push_back(std::move(f));
  };
  (push(std::forward<Args>(args)), ...);
  return p;
}

/// Body operation codes. In/Rd are guard-only (blocking); bodies use the
/// non-blocking forms.
enum class OpCode : std::uint8_t {
  Out = 0,
  Inp = 1,
  Rdp = 2,
  Move = 3,
  Copy = 4,
  CreateTs = 5,
  DestroyTs = 6,
};

const char* opCodeName(OpCode op);

/// One operation in an AGS body.
struct BodyOp {
  OpCode op = OpCode::Out;
  TsHandle ts = ts::kTsMain;   // target; source for Move/Copy
  TsHandle dst = 0;            // destination for Move/Copy
  TupleTemplate tmpl;          // Out
  PatternTemplate pattern;     // Inp/Rdp/Move/Copy
  TsAttributes create_attrs;   // CreateTs

  void encode(Writer& w) const;
  static BodyOp decode(Reader& r);
};

BodyOp opOut(TsHandle ts, TupleTemplate tmpl);
BodyOp opInp(TsHandle ts, PatternTemplate pattern);
BodyOp opRdp(TsHandle ts, PatternTemplate pattern);
BodyOp opMove(TsHandle src, TsHandle dst, PatternTemplate pattern);
BodyOp opCopy(TsHandle src, TsHandle dst, PatternTemplate pattern);
BodyOp opCreateTs(TsAttributes attrs);
BodyOp opDestroyTs(TsHandle ts);

/// AGS guard: `true` or one TS operation. In/Rd block until a match exists;
/// Inp/Rdp make the branch conditional without blocking.
struct Guard {
  enum class Kind : std::uint8_t { True = 0, In = 1, Rd = 2, Inp = 3, Rdp = 4 };
  Kind kind = Kind::True;
  TsHandle ts = ts::kTsMain;
  Pattern pattern;

  bool blocking() const { return kind == Kind::In || kind == Kind::Rd; }
  bool destructive() const { return kind == Kind::In || kind == Kind::Inp; }

  void encode(Writer& w) const;
  static Guard decode(Reader& r);
};

Guard guardTrue();
Guard guardIn(TsHandle ts, Pattern p);
Guard guardRd(TsHandle ts, Pattern p);
Guard guardInp(TsHandle ts, Pattern p);
Guard guardRdp(TsHandle ts, Pattern p);

/// One disjunct: guard => body.
struct Branch {
  Guard guard;
  std::vector<BodyOp> body;

  void encode(Writer& w) const;
  static Branch decode(Reader& r);
};

/// The Atomic Guarded Statement.
struct Ags {
  std::vector<Branch> branches;

  /// True if failing to satisfy any guard should block (vs return failure):
  /// blocks iff at least one branch has a blocking guard.
  bool blocking() const;

  void encode(Writer& w) const;
  static Ags decode(Reader& r);

  std::string toString() const;
};

/// Fluent builder:
///   Ags a = AgsBuilder()
///             .when(guardIn(ts, pat)).then(opOut(ts, tmpl))
///             .orWhen(guardTrue()).then(opOut(ts, other))
///             .build();
class AgsBuilder {
 public:
  AgsBuilder& when(Guard g);
  AgsBuilder& orWhen(Guard g) { return when(std::move(g)); }
  AgsBuilder& then(BodyOp op);
  Ags build();

 private:
  Ags ags_;
};

}  // namespace ftl::ftlinda

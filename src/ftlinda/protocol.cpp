#include "ftlinda/protocol.hpp"

#include <atomic>

namespace ftl::ftlinda {

std::uint64_t freshRidBase() {
  static std::atomic<std::uint64_t> instance{0};
  return (instance.fetch_add(1, std::memory_order_relaxed) & 0xFFFF) << 32;
}

Bytes Command::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(request_id);
  w.u64(trace_id);
  switch (kind) {
    case CommandKind::ExecuteAgs:
      ags.encode(w);
      break;
    case CommandKind::MonitorFailures:
    case CommandKind::UnmonitorFailures:
      w.u64(ts);
      break;
  }
  return w.take();
}

Command Command::decode(BytesView b) {
  Reader r(b);
  Command c;
  c.kind = static_cast<CommandKind>(r.u8());
  c.request_id = r.u64();
  c.trace_id = r.u64();
  switch (c.kind) {
    case CommandKind::ExecuteAgs:
      c.ags = Ags::decode(r);
      break;
    case CommandKind::MonitorFailures:
    case CommandKind::UnmonitorFailures:
      c.ts = r.u64();
      break;
  }
  return c;
}

CommandHeader CommandHeader::peek(BytesView b) {
  Reader r(b);
  CommandHeader h;
  h.kind = static_cast<CommandKind>(r.u8());
  h.request_id = r.u64();
  h.trace_id = r.u64();
  return h;
}

Command makeExecute(std::uint64_t request_id, Ags ags, std::uint64_t trace_id) {
  Command c;
  c.kind = CommandKind::ExecuteAgs;
  c.request_id = request_id;
  c.ags = std::move(ags);
  c.trace_id = trace_id;
  return c;
}

const Value& Reply::boundValue(std::size_t i) const {
  if (i >= bindings.size()) {
    throw Error("Reply::bound(" + std::to_string(i) + "): statement bound only " +
                std::to_string(bindings.size()) + " formal(s)");
  }
  return bindings[i];
}

Bytes Reply::encode() const {
  Writer w;
  encodeInto(w);
  return w.take();
}

void Reply::encodeInto(Writer& w) const {
  w.boolean(succeeded);
  w.u32(static_cast<std::uint32_t>(branch));
  w.u16(static_cast<std::uint16_t>(bindings.size()));
  for (const auto& v : bindings) v.encode(w);
  w.boolean(guard_tuple.has_value());
  if (guard_tuple) guard_tuple->encode(w);
  w.u16(static_cast<std::uint16_t>(op_status.size()));
  for (bool s : op_status) w.boolean(s);
  w.u32(static_cast<std::uint32_t>(local_deposits.size()));
  for (const auto& [h, t] : local_deposits) {
    w.u64(h);
    t.encode(w);
  }
  w.u16(static_cast<std::uint16_t>(created.size()));
  for (TsHandle h : created) w.u64(h);
  w.str(error);
}

Reply Reply::decode(const Bytes& b) {
  Reader r(b);
  return decode(r);
}

Reply Reply::decode(BytesView b) {
  Reader r(b);
  return decode(r);
}

Reply Reply::decode(Reader& r) {
  Reply rep;
  rep.succeeded = r.boolean();
  rep.branch = static_cast<std::int32_t>(r.u32());
  const std::uint16_t nb = r.u16();
  for (std::uint16_t i = 0; i < nb; ++i) rep.bindings.push_back(Value::decode(r));
  if (r.boolean()) rep.guard_tuple = Tuple::decode(r);
  const std::uint16_t ns = r.u16();
  for (std::uint16_t i = 0; i < ns; ++i) rep.op_status.push_back(r.boolean());
  const std::uint32_t nd = r.u32();
  for (std::uint32_t i = 0; i < nd; ++i) {
    const TsHandle h = r.u64();
    rep.local_deposits.emplace_back(h, Tuple::decode(r));
  }
  const std::uint16_t nc = r.u16();
  for (std::uint16_t i = 0; i < nc; ++i) rep.created.push_back(r.u64());
  rep.error = r.str();
  return rep;
}

Command makeMonitor(std::uint64_t request_id, TsHandle ts, bool enable) {
  Command c;
  c.kind = enable ? CommandKind::MonitorFailures : CommandKind::UnmonitorFailures;
  c.request_id = request_id;
  c.ts = ts;
  return c;
}

}  // namespace ftl::ftlinda

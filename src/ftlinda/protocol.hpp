// Commands shipped through the atomic multicast (one message per AGS — the
// paper's key efficiency property) and the reply the TS state machine
// produces for the issuing processor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ftlinda/ops.hpp"
#include "tuple/view.hpp"

namespace ftl::ftlinda {

using tuple::ValueView;

enum class CommandKind : std::uint8_t {
  ExecuteAgs = 0,
  MonitorFailures = 1,    // register a TS for failure-tuple deposit
  UnmonitorFailures = 2,
};

struct Command {
  CommandKind kind = CommandKind::ExecuteAgs;
  std::uint64_t request_id = 0;  // per-origin; routes the reply
  Ags ags;                       // ExecuteAgs
  TsHandle ts = 0;               // Monitor/UnmonitorFailures
  /// Observability correlation id minted at submission ((host << 48) | rid);
  /// carried through the multicast so every replica's trace events for this
  /// AGS share one id (obs/trace.hpp). 0 = untraced.
  std::uint64_t trace_id = 0;

  Bytes encode() const;
  /// Decode from a borrowed buffer (datagram, log entry, arena block); the
  /// returned Command OWNS everything (safe past the buffer's lifetime).
  static Command decode(BytesView b);
};

/// Encoded size of the fixed command prefix (kind byte + request_id +
/// trace_id): the payload of an ExecuteAgs command is its Ags encoding
/// starting at this offset, and request_id occupies bytes [1, 9) — both
/// facts the fast paths exploit (issuer-side view verify, the tuple
/// server's in-place rid rewrite).
inline constexpr std::size_t kCommandHeaderBytes = 17;
inline constexpr std::size_t kCommandRidOffset = 1;

/// The fixed-size command prefix, decodable without materializing the AGS —
/// for routing/filtering before (or instead of) a full decode.
struct CommandHeader {
  CommandKind kind = CommandKind::ExecuteAgs;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;

  static CommandHeader peek(BytesView b);
};

Command makeExecute(std::uint64_t request_id, Ags ags, std::uint64_t trace_id = 0);
Command makeMonitor(std::uint64_t request_id, TsHandle ts, bool enable);

/// Deterministic trace id for (issuing host, request id): reconstructible at
/// reply time without threading it through the reply path.
inline std::uint64_t makeTraceId(std::uint32_t host, std::uint64_t rid) {
  return (static_cast<std::uint64_t>(host) << 48) | (rid & ((std::uint64_t{1} << 48) - 1));
}

/// Starting rid for a new rid-minting runtime: each instance draws from its
/// own 2^32 block (bits 32..47 of the 48-bit rid field). Trace ids are
/// (host << 48 | rid) and the tracer rings outlive any single System, so
/// without distinct blocks two sequential Systems in one process would mint
/// colliding ids and the cross-host analyzer would stitch spans from
/// different statements together.
std::uint64_t freshRidBase();

/// Result of one AGS, produced identically at every replica and consumed by
/// the issuing processor's runtime.
struct Reply {
  /// A guard fired (or a True branch ran). False only for an entirely
  /// non-blocking AGS whose guards all failed — the strong inp/rdp verdict.
  bool succeeded = false;
  /// Index of the branch that fired; -1 if none.
  std::int32_t branch = -1;
  /// Values bound by the firing guard's formals, in formal order.
  std::vector<Value> bindings;
  /// The tuple the guard matched (In/Rd/Inp/Rdp guards only).
  std::optional<Tuple> guard_tuple;
  /// Per-body-op hit flag for Inp/Rdp ops (parallel to the body, true for
  /// other op kinds).
  std::vector<bool> op_status;
  /// Tuples destined for the issuer's volatile local spaces: (local handle,
  /// tuple), in deposit order. Produced by Out/Move/Copy with a local dst.
  std::vector<std::pair<TsHandle, Tuple>> local_deposits;
  /// Handles allocated by CreateTs ops, in op order.
  std::vector<TsHandle> created;
  /// Deterministic validation error (same at every replica); empty if none.
  /// When set, no state was modified.
  std::string error;

  /// Range-checked access to the firing guard's bindings. Prefer these over
  /// indexing `bindings` directly: a bad index throws ftl::Error naming the
  /// index and the arity instead of undefined behaviour.
  ///
  /// bound()/boundStr()/boundBlob() return NON-OWNING views into this
  /// Reply's bindings: valid while the Reply is alive and `bindings` is not
  /// mutated/moved out of. boundValue() is the owning escape hatch (copy or
  /// bind a const&) for values that must outlive the Reply.
  ValueView bound(std::size_t i) const { return ValueView::of(boundValue(i)); }
  const Value& boundValue(std::size_t i) const;
  std::int64_t boundInt(std::size_t i) const { return boundValue(i).asInt(); }
  double boundReal(std::size_t i) const { return boundValue(i).asReal(); }
  bool boundBool(std::size_t i) const { return boundValue(i).asBool(); }
  std::string_view boundStr(std::size_t i) const { return boundValue(i).asStr(); }
  BytesView boundBlob(std::size_t i) const { return BytesView(boundValue(i).asBlob()); }

  /// Wire form, used by the tuple-server (RPC) configuration of §6/Fig. 17.
  Bytes encode() const;
  /// Append the wire form to an open Writer — the building block of the
  /// ReplyBatch frame (several replies tiled into one buffer, no
  /// intermediate Bytes per reply).
  void encodeInto(Writer& w) const;
  static Reply decode(const Bytes& b);
  /// Decode from a borrowed buffer (datagram payload) without copying it
  /// into an owning Bytes first. The returned Reply owns everything.
  static Reply decode(BytesView b);
  /// Decode one reply from an open Reader, consuming exactly its encoding —
  /// lets a ReplyBatch frame be walked reply-by-reply to its end.
  static Reply decode(Reader& r);
};

}  // namespace ftl::ftlinda

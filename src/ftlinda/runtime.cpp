#include "ftlinda/runtime.hpp"

#include <atomic>
#include <optional>

#include "common/clock.hpp"
#include "common/logging.hpp"
#include "ftlinda/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {

using ts::isLocalHandle;

namespace {

/// AGS lifecycle metrics, resolved once per process (registry lookups are
/// mutex-protected; the references themselves are lock-free).
struct AgsMetrics {
  obs::Counter& submitted = obs::counter("ftl_ags_submitted");
  obs::Counter& rejected = obs::counter("ftl_ags_rejected");
  obs::Counter& local = obs::counter("ftl_ags_local");
  obs::Counter& replicated = obs::counter("ftl_ags_replicated");
  obs::Counter& succeeded = obs::counter("ftl_ags_succeeded");
  obs::Counter& no_branch = obs::counter("ftl_ags_no_branch");
  obs::Histogram& verify_ns = obs::histogram("ftl_ags_verify_ns");
  obs::Histogram& local_ns = obs::histogram("ftl_ags_local_ns");
  obs::Histogram& e2e_ns = obs::histogram("ftl_ags_e2e_ns");
  obs::Histogram& wait_ns = obs::histogram("ftl_ags_wait_ns");
  obs::Histogram& branch_index = obs::histogram("ftl_ags_branch_index");
};

AgsMetrics& agsMetrics() {
  static AgsMetrics m;
  return m;
}

void recordOutcome(AgsMetrics& am, const Reply& r) {
  if (r.succeeded) {
    am.succeeded.inc();
    if (r.branch >= 0) am.branch_index.observe(static_cast<std::uint64_t>(r.branch));
  } else {
    am.no_branch.inc();
  }
}

}  // namespace

Runtime::Runtime(net::HostId host) : host_(host) {}

void Runtime::attach(rsm::Replica* replica, TsStateMachine* sm) {
  FTL_REQUIRE(replica && sm, "attach() needs a replica and a state machine");
  replica_ = replica;
  sm_ = sm;
  sm_->setSelf(host_);
  sm_->setReplySink([this](net::HostId origin, std::uint64_t rid, const Reply& r) {
    if (origin == host_) completeRequest(rid, r);
  });
}

void Runtime::completeRequest(std::uint64_t rid, const Reply& r) {
  obs::trace::instant("ags.reply", makeTraceId(host_, rid));
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    auto it = pending_.find(rid);
    if (it == pending_.end()) return;  // stale reply (pre-crash request)
    slot = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(slot->m);
    slot->reply = r;
  }
  slot->cv.notify_all();
}

void Runtime::markCrashed() {
  crashed_.store(true);
  std::vector<std::shared_ptr<Slot>> slots;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& [rid, slot] : pending_) slots.push_back(slot);
    pending_.clear();
  }
  for (auto& slot : slots) {
    {
      std::lock_guard<std::mutex> lock(slot->m);
      slot->failed = true;
    }
    slot->cv.notify_all();
  }
  scratch_.interrupt();
}

bool entirelyLocalAgs(const Ags& ags) {
  for (const auto& branch : ags.branches) {
    if (branch.guard.kind != Guard::Kind::True && !isLocalHandle(branch.guard.ts)) return false;
    for (const auto& op : branch.body) {
      switch (op.op) {
        case OpCode::Out:
        case OpCode::Inp:
        case OpCode::Rdp:
        case OpCode::DestroyTs:
          if (!isLocalHandle(op.ts)) return false;
          break;
        case OpCode::Move:
        case OpCode::Copy:
          if (!isLocalHandle(op.ts) || !isLocalHandle(op.dst)) return false;
          break;
        case OpCode::CreateTs:
          if (op.create_attrs.stable) return false;
          break;
      }
    }
  }
  return true;
}

Result<Reply> Runtime::tryExecute(const Ags& ags) {
  if (crashed_.load()) throw ProcessorFailure(host_);
  AgsMetrics& am = agsMetrics();
  am.submitted.inc();
  // The request id doubles as the observability correlation id; local AGS
  // burn one too so every submission is traceable.
  const std::uint64_t rid = next_rid_.fetch_add(1);
  const std::uint64_t tid = makeTraceId(host_, rid);
  obs::trace::asyncBegin("ags", tid);
  // Stage timing (verify_ns, local_ns) is SAMPLED 1-in-16 per submission:
  // the scratch-space fast path runs in well under 100ns, where even one
  // clock-read pair would dominate. Traced runs time every statement (the
  // trace spans need real bounds). wait_ns/e2e_ns straddle a multicast and
  // stay always-on — two clock reads vanish against microseconds.
  static std::atomic<std::uint32_t> stage_sample{0};
  const bool timed = obs::trace::enabled() ||
                     (stage_sample.fetch_add(1, std::memory_order_relaxed) & 15u) == 0;
  // FT-lcc rejects malformed statements at compile time; we reject them here,
  // before the statement is encoded or multicast, so a bad AGS costs its
  // issuer a local error instead of work at every replica.
  const std::int64_t v0 = timed ? nowNanos() : 0;
  VerifyResult vr = verify(ags);
  if (timed) {
    const std::int64_t vdt = nowNanos() - v0;
    am.verify_ns.observe(vdt > 0 ? static_cast<std::uint64_t>(vdt) : 0);
    obs::trace::complete("ags.verify", tid, v0, vdt);
  }
  if (!vr.ok()) {
    am.rejected.inc();
    obs::trace::asyncEnd("ags", tid);
    return verifyApiError(vr);
  }
  if (entirelyLocalAgs(ags)) {
    am.local.inc();
    Reply r;
    try {
      std::optional<obs::ScopedTimerNs> t;
      if (timed) t.emplace(am.local_ns);
      r = scratch_.execute(ags, [this] { return crashed_.load(); });
    } catch (const Error&) {
      if (crashed_.load()) throw ProcessorFailure(host_);
      throw;
    }
    recordOutcome(am, r);
    obs::trace::asyncEnd("ags", tid);
    if (!r.error.empty()) return Result<Reply>::failure("registry", r.error);
    return r;
  }
  am.replicated.inc();
  Result<Reply> res = executeReplicated(ags, rid, tid);
  obs::trace::asyncEnd("ags", tid);
  return res;
}

Reply Runtime::submitAndWait(Command cmd) {
  FTL_REQUIRE(replica_ != nullptr, "runtime not attached");
  auto slot = std::make_shared<Slot>();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(cmd.request_id, slot);
  }
  // Re-check after registering: a crash between the entry check and the
  // insert would otherwise leave this slot unfailed forever.
  if (crashed_.load()) {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.erase(cmd.request_id);
    throw ProcessorFailure(host_);
  }
  // "ags.order" spans multicast submission to total-order arrival at THIS
  // replica's state machine (ended there when origin == self).
  obs::trace::asyncBegin("ags.order", cmd.trace_id);
  replica_->submit(cmd.encode());
  const std::int64_t w0 = nowNanos();
  std::unique_lock<std::mutex> lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->reply.has_value() || slot->failed; });
  const std::int64_t wdt = nowNanos() - w0;
  agsMetrics().wait_ns.observe(wdt > 0 ? static_cast<std::uint64_t>(wdt) : 0);
  {
    std::lock_guard<std::mutex> plock(pending_mutex_);
    pending_.erase(cmd.request_id);
  }
  if (slot->failed) throw ProcessorFailure(host_);
  return std::move(*slot->reply);
}

Result<Reply> Runtime::executeReplicated(const Ags& ags, std::uint64_t rid, std::uint64_t tid) {
  AgsMetrics& am = agsMetrics();
  const std::int64_t t0 = nowNanos();
  Reply r = submitAndWait(makeExecute(rid, ags, tid));
  const std::int64_t dt = nowNanos() - t0;
  am.e2e_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
  recordOutcome(am, r);
  if (!r.error.empty()) return Result<Reply>::failure("registry", r.error);
  scratch_.applyDeposits(r.local_deposits);
  return r;
}

TsHandle Runtime::createTs(TsAttributes attrs) {
  if (!attrs.stable) return scratch_.create(attrs);
  Reply r = execute(AgsBuilder().when(guardTrue()).then(opCreateTs(attrs)).build());
  FTL_ENSURE(r.created.size() == 1, "create_TS reply carries no handle");
  return r.created.front();
}

void Runtime::destroyTs(TsHandle ts) {
  if (isLocalHandle(ts)) {
    scratch_.destroy(ts);
    return;
  }
  execute(AgsBuilder().when(guardTrue()).then(opDestroyTs(ts)).build());
}

void Runtime::doMonitorFailures(TsHandle ts, bool enable) {
  FTL_REQUIRE(!isLocalHandle(ts), "only stable spaces receive failure tuples");
  if (crashed_.load()) throw ProcessorFailure(host_);
  const std::uint64_t rid = next_rid_.fetch_add(1);
  Command cmd = makeMonitor(rid, ts, enable);
  cmd.trace_id = makeTraceId(host_, rid);
  submitAndWait(std::move(cmd));
}

std::size_t Runtime::localTupleCount(TsHandle ts) const { return scratch_.tupleCount(ts); }

}  // namespace ftl::ftlinda

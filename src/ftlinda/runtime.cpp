#include "ftlinda/runtime.hpp"

#include <atomic>
#include <optional>

#include "common/clock.hpp"
#include "common/logging.hpp"
#include "ftlinda/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {

using ts::isLocalHandle;

namespace {

/// AGS lifecycle metrics, resolved once per process (registry lookups are
/// mutex-protected; the references themselves are lock-free).
struct AgsMetrics {
  obs::Counter& submitted = obs::counter("ftl_ags_submitted");
  obs::Counter& rejected = obs::counter("ftl_ags_rejected");
  obs::Counter& local = obs::counter("ftl_ags_local");
  obs::Counter& replicated = obs::counter("ftl_ags_replicated");
  obs::Counter& succeeded = obs::counter("ftl_ags_succeeded");
  obs::Counter& no_branch = obs::counter("ftl_ags_no_branch");
  obs::Histogram& verify_ns = obs::histogram("ftl_ags_verify_ns");
  obs::Histogram& local_ns = obs::histogram("ftl_ags_local_ns");
  obs::Histogram& e2e_ns = obs::histogram("ftl_ags_e2e_ns");
  obs::Histogram& wait_ns = obs::histogram("ftl_ags_wait_ns");
  obs::Histogram& branch_index = obs::histogram("ftl_ags_branch_index");
};

AgsMetrics& agsMetrics() {
  static AgsMetrics m;
  return m;
}

void recordOutcome(AgsMetrics& am, const Reply& r) {
  if (r.succeeded) {
    am.succeeded.inc();
    if (r.branch >= 0) am.branch_index.observe(static_cast<std::uint64_t>(r.branch));
  } else {
    am.no_branch.inc();
  }
}

}  // namespace

Runtime::Runtime(net::HostId host) : host_(host) {}

void Runtime::attach(rsm::Replica* replica, TsStateMachine* sm) {
  FTL_REQUIRE(replica && sm, "attach() needs a replica and a state machine");
  replica_ = replica;
  sm_ = sm;
  sm_->setSelf(host_);
  sm_->setReplySink([this](net::HostId origin, std::uint64_t rid, const Reply& r) {
    if (origin == host_) completeRequest(rid, r);
  });
}

void Runtime::completeRequest(std::uint64_t rid, const Reply& r) {
  // "ags.reply" spans reply arrival on the upcall thread through deposit
  // application to just before the future settles — the reply-encode/
  // dispatch leg of the stage taxonomy. Sampled like the other stages.
  const std::uint64_t tid = makeTraceId(host_, rid);
  static std::atomic<std::uint32_t> reply_sample{0};
  const bool timed = obs::trace::enabled() ||
                     (reply_sample.fetch_add(1, std::memory_order_relaxed) & 15u) == 0;
  const std::int64_t r0 = timed ? nowNanos() : 0;
  PendingReq ent;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    auto it = pending_.find(rid);
    if (it == pending_.end()) return;  // stale reply (pre-crash request)
    ent = std::move(it->second);
    pending_.erase(it);
  }
  AgsMetrics& am = agsMetrics();
  if (ent.ags_stats) {
    const std::int64_t dt = nowNanos() - ent.submit_ns;
    am.e2e_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
    recordOutcome(am, r);
  }
  // Scratch deposits land BEFORE the future settles, so a get()er or
  // continuation that immediately reads its scratch spaces sees them.
  // ScratchSpaces has its own lock; calling it from the upcall thread is
  // safe (and it never calls back into the state machine).
  scratch_.applyDeposits(r.local_deposits);
  if (timed) {
    const std::int64_t rdt = nowNanos() - r0;
    static obs::Histogram& reply_ns = obs::histogram("ftl_stage_reply_ns");
    reply_ns.observe(rdt > 0 ? static_cast<std::uint64_t>(rdt) : 0);
    obs::trace::complete("ags.reply", tid, r0, rdt);
  }
  if (ent.ags_stats) obs::trace::asyncEnd("ags", tid);
  if (!r.error.empty()) {
    detail::settleFuture(ent.st, Result<Reply>::failure("registry", r.error));
  } else {
    detail::settleFuture(ent.st, Result<Reply>(r));
  }
}

void Runtime::markCrashed() {
  crashed_.store(true);
  std::vector<std::shared_ptr<AgsFutureState>> sts;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& [rid, ent] : pending_) sts.push_back(ent.st);
    pending_.clear();
  }
  // Every outstanding future — blocked get()ers and pipelined windows alike
  // — fails with ProcessorFailure, the same environmental contract as the
  // synchronous path.
  for (auto& st : sts) detail::failFutureProcessor(st);
  scratch_.interrupt();
}

bool entirelyLocalAgs(const Ags& ags) {
  for (const auto& branch : ags.branches) {
    if (branch.guard.kind != Guard::Kind::True && !isLocalHandle(branch.guard.ts)) return false;
    for (const auto& op : branch.body) {
      switch (op.op) {
        case OpCode::Out:
        case OpCode::Inp:
        case OpCode::Rdp:
        case OpCode::DestroyTs:
          if (!isLocalHandle(op.ts)) return false;
          break;
        case OpCode::Move:
        case OpCode::Copy:
          if (!isLocalHandle(op.ts) || !isLocalHandle(op.dst)) return false;
          break;
        case OpCode::CreateTs:
          if (op.create_attrs.stable) return false;
          break;
      }
    }
  }
  return true;
}

AgsFuture Runtime::executeAsync(const Ags& ags) {
  if (crashed_.load()) throw ProcessorFailure(host_);
  AgsMetrics& am = agsMetrics();
  am.submitted.inc();
  // The request id doubles as the observability correlation id; local AGS
  // burn one too so every submission is traceable.
  const std::uint64_t rid = next_rid_.fetch_add(1);
  const std::uint64_t tid = makeTraceId(host_, rid);
  obs::trace::asyncBegin("ags", tid);
  // Stage timing (verify_ns, local_ns) is SAMPLED 1-in-16 per submission:
  // the scratch-space fast path runs in well under 100ns, where even one
  // clock-read pair would dominate. Traced runs time every statement (the
  // trace spans need real bounds). wait_ns/e2e_ns straddle a multicast and
  // stay always-on — two clock reads vanish against microseconds.
  static std::atomic<std::uint32_t> stage_sample{0};
  const bool timed = obs::trace::enabled() ||
                     (stage_sample.fetch_add(1, std::memory_order_relaxed) & 15u) == 0;
  // Locality is classified BEFORE verification (the scan tolerates corrupt
  // enum bytes) so each path verifies in its own representation: the local
  // path over the in-memory Ags it is about to execute, the replicated path
  // over the encoded bytes it is about to multicast — the owning verify's
  // decode round never happens on the hot path.
  if (entirelyLocalAgs(ags)) {
    // FT-lcc rejects malformed statements at compile time; we reject them
    // here, before execution, so a bad AGS costs its issuer a local error.
    const std::int64_t v0 = timed ? nowNanos() : 0;
    VerifyResult vr = verify(ags);
    if (timed) {
      const std::int64_t vdt = nowNanos() - v0;
      am.verify_ns.observe(vdt > 0 ? static_cast<std::uint64_t>(vdt) : 0);
      obs::trace::complete("ags.verify", tid, v0, vdt);
    }
    if (!vr.ok()) {
      am.rejected.inc();
      obs::trace::asyncEnd("ags", tid);
      return AgsFuture::makeReady(verifyApiError(vr));
    }
    // Local scratch statements keep their blocking semantics (an in() on an
    // empty scratch space must wait for a local deposit), so this branch
    // executes inline — executeAsync() only pipelines the replicated path.
    am.local.inc();
    Reply r;
    try {
      std::optional<obs::ScopedTimerNs> t;
      if (timed) t.emplace(am.local_ns);
      r = scratch_.execute(ags, [this] { return crashed_.load(); });
    } catch (const Error&) {
      if (crashed_.load()) throw ProcessorFailure(host_);
      throw;
    }
    recordOutcome(am, r);
    obs::trace::asyncEnd("ags", tid);
    if (!r.error.empty()) {
      return AgsFuture::makeReady(Result<Reply>::failure("registry", r.error));
    }
    return AgsFuture::makeReady(std::move(r));
  }
  // "ags.issue" covers command encode + view verify + registration up to the
  // multicast handoff — submitEncoded closes it right where "ags.order"
  // begins, so the two stages tile instead of overlapping ("ags.verify" is a
  // sub-span nested inside it, not a stage of its own).
  const std::int64_t i0 = timed ? nowNanos() : 0;
  // Encode ONCE, straight from the caller's Ags — no Command materialization
  // (which would copy the whole statement), no decode for verification.
  Writer w;
  w.reserve(192);  // covers typical statements in one allocation
  w.u8(static_cast<std::uint8_t>(CommandKind::ExecuteAgs));
  w.u64(rid);
  w.u64(tid);
  ags.encode(w);
  Bytes payload = w.take();
  const std::int64_t v0 = timed ? nowNanos() : 0;
  VerifyResult vr = verifyEncoded(
      BytesView(payload.data() + kCommandHeaderBytes, payload.size() - kCommandHeaderBytes));
  if (timed) {
    const std::int64_t vdt = nowNanos() - v0;
    am.verify_ns.observe(vdt > 0 ? static_cast<std::uint64_t>(vdt) : 0);
    obs::trace::complete("ags.verify", tid, v0, vdt);
  }
  if (!vr.ok()) {
    am.rejected.inc();
    obs::trace::asyncEnd("ags", tid);
    return AgsFuture::makeReady(verifyApiError(vr));
  }
  am.replicated.inc();
  return submitEncoded(rid, tid, std::move(payload), /*ags_stats=*/true, i0);
}

AgsFuture Runtime::submitCommand(Command cmd, bool ags_stats, std::int64_t issue_start_ns) {
  return submitEncoded(cmd.request_id, cmd.trace_id, cmd.encode(), ags_stats, issue_start_ns);
}

AgsFuture Runtime::submitEncoded(std::uint64_t rid, std::uint64_t trace_id, Bytes payload,
                                 bool ags_stats, std::int64_t issue_start_ns) {
  FTL_REQUIRE(replica_ != nullptr, "runtime not attached");
  auto st = std::make_shared<AgsFutureState>();
  st->host = host_;
  st->wait_hist = &agsMetrics().wait_ns;
  st->trace_id = trace_id;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    PendingReq ent;
    ent.st = st;
    ent.submit_ns = nowNanos();
    ent.ags_stats = ags_stats;
    pending_.emplace(rid, std::move(ent));
  }
  // Re-check after registering: a crash between the entry check and the
  // insert would otherwise leave this slot unfailed forever.
  if (crashed_.load()) {
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.erase(rid);
    }
    throw ProcessorFailure(host_);
  }
  if (issue_start_ns != 0) {
    const std::int64_t idt = nowNanos() - issue_start_ns;
    static obs::Histogram& issue_ns = obs::histogram("ftl_stage_issue_ns");
    issue_ns.observe(idt > 0 ? static_cast<std::uint64_t>(idt) : 0);
    obs::trace::complete("ags.issue", trace_id, issue_start_ns, idt);
  }
  // "ags.order" spans multicast submission to total-order arrival at THIS
  // replica's state machine (ended there when origin == self).
  obs::trace::asyncBegin("ags.order", trace_id);
  replica_->submit(std::move(payload), trace_id);
  return AgsFuture::makePending(std::move(st));
}

std::int64_t Runtime::oldestPendingNs() const {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  std::int64_t oldest = 0;
  for (const auto& [rid, ent] : pending_) {
    if (oldest == 0 || ent.submit_ns < oldest) oldest = ent.submit_ns;
  }
  return oldest == 0 ? 0 : nowNanos() - oldest;
}

TsHandle Runtime::createTs(TsAttributes attrs) {
  if (!attrs.stable) return scratch_.create(attrs);
  Reply r = requireReply(tryExecute(AgsBuilder().when(guardTrue()).then(opCreateTs(attrs)).build()));
  FTL_ENSURE(r.created.size() == 1, "create_TS reply carries no handle");
  return r.created.front();
}

void Runtime::destroyTs(TsHandle ts) {
  if (isLocalHandle(ts)) {
    scratch_.destroy(ts);
    return;
  }
  requireReply(tryExecute(AgsBuilder().when(guardTrue()).then(opDestroyTs(ts)).build()));
}

void Runtime::doMonitorFailures(TsHandle ts, bool enable) {
  FTL_REQUIRE(!isLocalHandle(ts), "only stable spaces receive failure tuples");
  if (crashed_.load()) throw ProcessorFailure(host_);
  const std::uint64_t rid = next_rid_.fetch_add(1);
  Command cmd = makeMonitor(rid, ts, enable);
  cmd.trace_id = makeTraceId(host_, rid);
  (void)submitCommand(std::move(cmd), /*ags_stats=*/false).get();
}

std::size_t Runtime::localTupleCount(TsHandle ts) const { return scratch_.tupleCount(ts); }

}  // namespace ftl::ftlinda

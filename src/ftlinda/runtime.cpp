#include "ftlinda/runtime.hpp"

#include "common/logging.hpp"
#include "ftlinda/verify.hpp"

namespace ftl::ftlinda {

using ts::isLocalHandle;

Runtime::Runtime(net::HostId host) : host_(host) {}

void Runtime::attach(rsm::Replica* replica, TsStateMachine* sm) {
  FTL_REQUIRE(replica && sm, "attach() needs a replica and a state machine");
  replica_ = replica;
  sm_ = sm;
  sm_->setReplySink([this](net::HostId origin, std::uint64_t rid, const Reply& r) {
    if (origin == host_) completeRequest(rid, r);
  });
}

void Runtime::completeRequest(std::uint64_t rid, const Reply& r) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    auto it = pending_.find(rid);
    if (it == pending_.end()) return;  // stale reply (pre-crash request)
    slot = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(slot->m);
    slot->reply = r;
  }
  slot->cv.notify_all();
}

void Runtime::markCrashed() {
  crashed_.store(true);
  std::vector<std::shared_ptr<Slot>> slots;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& [rid, slot] : pending_) slots.push_back(slot);
    pending_.clear();
  }
  for (auto& slot : slots) {
    {
      std::lock_guard<std::mutex> lock(slot->m);
      slot->failed = true;
    }
    slot->cv.notify_all();
  }
  scratch_.interrupt();
}

bool entirelyLocalAgs(const Ags& ags) {
  for (const auto& branch : ags.branches) {
    if (branch.guard.kind != Guard::Kind::True && !isLocalHandle(branch.guard.ts)) return false;
    for (const auto& op : branch.body) {
      switch (op.op) {
        case OpCode::Out:
        case OpCode::Inp:
        case OpCode::Rdp:
        case OpCode::DestroyTs:
          if (!isLocalHandle(op.ts)) return false;
          break;
        case OpCode::Move:
        case OpCode::Copy:
          if (!isLocalHandle(op.ts) || !isLocalHandle(op.dst)) return false;
          break;
        case OpCode::CreateTs:
          if (op.create_attrs.stable) return false;
          break;
      }
    }
  }
  return true;
}

Result<Reply> Runtime::tryExecute(const Ags& ags) {
  if (crashed_.load()) throw ProcessorFailure(host_);
  // FT-lcc rejects malformed statements at compile time; we reject them here,
  // before the statement is encoded or multicast, so a bad AGS costs its
  // issuer a local error instead of work at every replica.
  if (VerifyResult vr = verify(ags); !vr.ok()) {
    return verifyApiError(vr);
  }
  if (entirelyLocalAgs(ags)) {
    Reply r;
    try {
      r = scratch_.execute(ags, [this] { return crashed_.load(); });
    } catch (const Error&) {
      if (crashed_.load()) throw ProcessorFailure(host_);
      throw;
    }
    if (!r.error.empty()) return Result<Reply>::failure("registry", r.error);
    return r;
  }
  return executeReplicated(ags);
}

Reply Runtime::submitAndWait(Command cmd) {
  FTL_REQUIRE(replica_ != nullptr, "runtime not attached");
  auto slot = std::make_shared<Slot>();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(cmd.request_id, slot);
  }
  // Re-check after registering: a crash between the entry check and the
  // insert would otherwise leave this slot unfailed forever.
  if (crashed_.load()) {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.erase(cmd.request_id);
    throw ProcessorFailure(host_);
  }
  replica_->submit(cmd.encode());
  std::unique_lock<std::mutex> lock(slot->m);
  slot->cv.wait(lock, [&] { return slot->reply.has_value() || slot->failed; });
  {
    std::lock_guard<std::mutex> plock(pending_mutex_);
    pending_.erase(cmd.request_id);
  }
  if (slot->failed) throw ProcessorFailure(host_);
  return std::move(*slot->reply);
}

Result<Reply> Runtime::executeReplicated(const Ags& ags) {
  const std::uint64_t rid = next_rid_.fetch_add(1);
  Reply r = submitAndWait(makeExecute(rid, ags));
  if (!r.error.empty()) return Result<Reply>::failure("registry", r.error);
  scratch_.applyDeposits(r.local_deposits);
  return r;
}

TsHandle Runtime::createTs(TsAttributes attrs) {
  if (!attrs.stable) return scratch_.create(attrs);
  Reply r = execute(AgsBuilder().when(guardTrue()).then(opCreateTs(attrs)).build());
  FTL_ENSURE(r.created.size() == 1, "create_TS reply carries no handle");
  return r.created.front();
}

void Runtime::destroyTs(TsHandle ts) {
  if (isLocalHandle(ts)) {
    scratch_.destroy(ts);
    return;
  }
  execute(AgsBuilder().when(guardTrue()).then(opDestroyTs(ts)).build());
}

void Runtime::doMonitorFailures(TsHandle ts, bool enable) {
  FTL_REQUIRE(!isLocalHandle(ts), "only stable spaces receive failure tuples");
  if (crashed_.load()) throw ProcessorFailure(host_);
  const std::uint64_t rid = next_rid_.fetch_add(1);
  submitAndWait(makeMonitor(rid, ts, enable));
}

std::size_t Runtime::localTupleCount(TsHandle ts) const { return scratch_.tupleCount(ts); }

}  // namespace ftl::ftlinda

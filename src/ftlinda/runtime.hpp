// Runtime: the FT-Linda library a process on one simulated processor links
// against. Provides the classic Linda verbs (out/in/rd/inp/rdp), tuple space
// management, failure monitoring, and AGS execution.
//
// Routing (paper §5.2): an AGS whose operations touch stable tuple spaces is
// compiled into ONE multicast command, submitted into the total order, and
// executed by every replica's TS state machine; the local replica's reply
// completes the call. An AGS that touches only this processor's volatile
// scratch spaces never leaves the processor — it executes locally (with
// identical semantics, including blocking).
//
// Crash semantics: when the processor "fails" (Network::crash), every
// pending and future call throws ProcessorFailure — simulated processes use
// that to halt, mirroring a real process dying with its host.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ftlinda/api.hpp"
#include "ftlinda/scratch.hpp"
#include "ftlinda/ts_state_machine.hpp"
#include "rsm/replica.hpp"

namespace ftl::ftlinda {

class Runtime : public LindaApi {
 public:
  explicit Runtime(net::HostId host);

  /// Wire to this processor's replica and TS state machine (installs the
  /// reply sink). Called once by FtLindaSystem.
  void attach(rsm::Replica* replica, TsStateMachine* sm);

  net::HostId host() const override { return host_; }

  // LindaApi: verbs, execute(), tryExecute() and monitorFailures() are
  // inherited; the primitives below route stable-space statements through
  // the replica. executeAsync() registers the reply slot and returns
  // immediately — completion (metrics, scratch deposits, continuations)
  // happens on the replica's upcall thread when the ordered reply arrives.
  AgsFuture executeAsync(const Ags& ags) override;
  TsHandle createTs(TsAttributes attrs) override;
  void destroyTs(TsHandle ts) override;

  // ---- crash plumbing (driven by FtLindaSystem) ----
  void markCrashed();
  bool crashed() const override { return crashed_.load(); }

  std::size_t localTupleCount(TsHandle ts) const override;

  /// Age in nanoseconds of the oldest outstanding replicated submission
  /// (0 when nothing is pending) — the stall watchdog's future probe.
  std::int64_t oldestPendingNs() const;

 protected:
  void doMonitorFailures(TsHandle ts, bool enable) override;

 private:
  /// One outstanding replicated submission: the future's shared state plus
  /// what completion needs to finish the books (e2e metric, trace span).
  struct PendingReq {
    std::shared_ptr<AgsFutureState> st;
    std::int64_t submit_ns = 0;
    bool ags_stats = false;  // false for non-AGS commands (monitor)
  };

  /// Register a pending slot, submit into the total order, return a future.
  /// issue_start_ns != 0 closes the "ags.issue" stage (histogram + trace
  /// span) at the ordering handoff, so issue and order tile rather than
  /// overlap — the critical-path analyzer sums them (obs/assemble.hpp).
  AgsFuture submitCommand(Command cmd, bool ags_stats, std::int64_t issue_start_ns = 0);
  /// Same, for a command already in wire form — the AGS hot path encodes
  /// once in executeAsync (where the view verifier runs over the bytes) and
  /// hands the buffer straight to the multicast, no Command in between.
  AgsFuture submitEncoded(std::uint64_t rid, std::uint64_t trace_id, Bytes payload,
                          bool ags_stats, std::int64_t issue_start_ns = 0);
  void completeRequest(std::uint64_t rid, const Reply& r);

  const net::HostId host_;
  rsm::Replica* replica_ = nullptr;
  TsStateMachine* sm_ = nullptr;

  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> next_rid_{freshRidBase() + 1};

  mutable std::mutex pending_mutex_;
  std::unordered_map<std::uint64_t, PendingReq> pending_;

  ScratchSpaces scratch_;
};

/// True if every handle the AGS references is a processor-local scratch
/// handle (such statements execute without any multicast). Exposed for both
/// runtime flavours.
bool entirelyLocalAgs(const Ags& ags);

}  // namespace ftl::ftlinda

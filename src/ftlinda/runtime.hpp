// Runtime: the FT-Linda library a process on one simulated processor links
// against. Provides the classic Linda verbs (out/in/rd/inp/rdp), tuple space
// management, failure monitoring, and AGS execution.
//
// Routing (paper §5.2): an AGS whose operations touch stable tuple spaces is
// compiled into ONE multicast command, submitted into the total order, and
// executed by every replica's TS state machine; the local replica's reply
// completes the call. An AGS that touches only this processor's volatile
// scratch spaces never leaves the processor — it executes locally (with
// identical semantics, including blocking).
//
// Crash semantics: when the processor "fails" (Network::crash), every
// pending and future call throws ProcessorFailure — simulated processes use
// that to halt, mirroring a real process dying with its host.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "ftlinda/scratch.hpp"
#include "ftlinda/ts_state_machine.hpp"
#include "rsm/replica.hpp"

namespace ftl::ftlinda {

/// Thrown by runtime calls on/after the processor's simulated crash.
class ProcessorFailure : public Error {
 public:
  explicit ProcessorFailure(net::HostId host)
      : Error("processor " + std::to_string(host) + " failed") {}
};

class Runtime {
 public:
  explicit Runtime(net::HostId host);

  /// Wire to this processor's replica and TS state machine (installs the
  /// reply sink). Called once by FtLindaSystem.
  void attach(rsm::Replica* replica, TsStateMachine* sm);

  net::HostId host() const { return host_; }

  /// Execute an AGS. Blocks until the statement completes (which may mean
  /// waiting for a guard to become satisfiable). Throws ftl::Error for
  /// invalid statements and ProcessorFailure on crash.
  Reply execute(const Ags& ags);

  // ---- single-operation sugar (each is an AGS of its own) ----

  /// out(ts, t): deposit a tuple.
  void out(TsHandle ts, Tuple t);
  /// in(ts, p): withdraw the oldest match, blocking until one exists.
  Tuple in(TsHandle ts, Pattern p);
  /// rd(ts, p): read the oldest match, blocking until one exists.
  Tuple rd(TsHandle ts, Pattern p);
  /// inp(ts, p): withdraw without blocking; strong semantics — nullopt
  /// GUARANTEES no match existed at this point of the total order.
  std::optional<Tuple> inp(TsHandle ts, Pattern p);
  /// rdp(ts, p): non-destructive inp.
  std::optional<Tuple> rdp(TsHandle ts, Pattern p);

  // ---- tuple space management ----

  /// Create a tuple space. Stable+shared spaces are replicated; volatile
  /// ones live only on this processor (scratch). The paper's
  /// create_TS(stability, scope).
  TsHandle createTs(TsAttributes attrs);
  /// Convenience: volatile private scratch space.
  TsHandle createScratch() { return createTs(TsAttributes{false, false}); }
  void destroyTs(TsHandle ts);

  /// Register `ts` to receive ("failure", host) tuples when a processor
  /// crashes (fail-stop conversion).
  void monitorFailures(TsHandle ts, bool enable = true);

  // ---- crash plumbing (driven by FtLindaSystem) ----
  void markCrashed();
  bool crashed() const { return crashed_.load(); }

  /// Local-scratch introspection for tests.
  std::size_t localTupleCount(TsHandle ts) const;

 private:
  struct Slot {
    std::mutex m;
    std::condition_variable cv;
    std::optional<Reply> reply;
    bool failed = false;
  };

  Reply executeReplicated(const Ags& ags);
  void completeRequest(std::uint64_t rid, const Reply& r);
  Reply submitAndWait(Command cmd);

  const net::HostId host_;
  rsm::Replica* replica_ = nullptr;
  TsStateMachine* sm_ = nullptr;

  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> next_rid_{1};

  std::mutex pending_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> pending_;

  ScratchSpaces scratch_;
};

/// True if every handle the AGS references is a processor-local scratch
/// handle (such statements execute without any multicast). Exposed for both
/// runtime flavours.
bool entirelyLocalAgs(const Ags& ags);

}  // namespace ftl::ftlinda

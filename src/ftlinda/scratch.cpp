#include "ftlinda/scratch.hpp"

namespace ftl::ftlinda {

TsHandle ScratchSpaces::create(TsAttributes attrs) {
  std::lock_guard<std::mutex> lock(mutex_);
  return reg_.create(attrs);
}

void ScratchSpaces::destroy(TsHandle h) {
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_CHECK(reg_.destroy(h), "destroy_TS: unknown local handle");
}

Reply ScratchSpaces::execute(const Ags& ags, const std::function<bool()>& aborted) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (aborted && aborted()) throw Error("local execution aborted");
    ExecResult res = tryExecuteAgs(ags, reg_, ExecMode::Local);
    if (res.executed) {
      ++version_;  // the body may have deposited tuples
      lock.unlock();
      cv_.notify_all();
      return res.reply;
    }
    const std::uint64_t seen = version_;
    cv_.wait_for(lock, Millis{20}, [&] { return version_ != seen; });
  }
}

void ScratchSpaces::applyDeposits(const std::vector<std::pair<TsHandle, Tuple>>& deposits) {
  if (deposits.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [h, t] : deposits) {
      if (auto* space = reg_.find(h)) space->put(t);
    }
    ++version_;
  }
  cv_.notify_all();
}

void ScratchSpaces::interrupt() { cv_.notify_all(); }

std::size_t ScratchSpaces::tupleCount(TsHandle h) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto* space = reg_.find(h);
  return space ? space->size() : 0;
}

}  // namespace ftl::ftlinda

// ScratchSpaces: a processor's volatile private tuple spaces.
//
// Shared by both runtime flavours (the embedded Runtime and the
// tuple-server RemoteRuntime of §6/Fig. 17). Provides local execution of
// all-local AGSes — with full blocking semantics against a local condition
// variable — and absorbs the local_deposits carried back in replies from
// the replicated path.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>

#include "common/clock.hpp"
#include "ftlinda/executor.hpp"

namespace ftl::ftlinda {

class ScratchSpaces {
 public:
  ScratchSpaces() = default;
  ScratchSpaces(const ScratchSpaces&) = delete;
  ScratchSpaces& operator=(const ScratchSpaces&) = delete;

  /// Create a volatile space; the handle carries ts::kLocalHandleBit.
  TsHandle create(TsAttributes attrs);
  /// Destroy a local space. Throws on unknown handle.
  void destroy(TsHandle h);

  /// Execute an all-local AGS; blocks (on this processor only) until a
  /// guard can fire. `aborted` is polled so a crashed processor's waiters
  /// wake up; when it returns true this call throws ftl::Error. A
  /// deterministic execution error comes back as a Reply with `error` set
  /// (the caller maps it into its Result), never as an exception.
  Reply execute(const Ags& ags, const std::function<bool()>& aborted);

  /// Absorb (handle, tuple) deposits from a replicated reply; wakes local
  /// waiters. Deposits to destroyed spaces are silently dropped.
  void applyDeposits(const std::vector<std::pair<TsHandle, Tuple>>& deposits);

  /// Wake all local waiters (crash plumbing).
  void interrupt();

  std::size_t tupleCount(TsHandle h) const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  ts::TsRegistry reg_{/*with_main=*/false, ts::kLocalHandleBit};
  std::uint64_t version_ = 0;
};

}  // namespace ftl::ftlinda

#include "ftlinda/system.hpp"

#include "common/logging.hpp"
#include "obs/flight.hpp"

namespace ftl::ftlinda {

consul::ConsulConfig simulationConsulConfig() {
  consul::ConsulConfig cfg;
  cfg.tick = Micros{2'000};
  cfg.heartbeat_interval = Micros{10'000};
  cfg.failure_timeout = Micros{80'000};
  cfg.request_retransmit = Micros{50'000};
  cfg.nack_timeout = Micros{10'000};
  cfg.ack_interval = Micros{20'000};
  cfg.view_change_timeout = Micros{200'000};
  return cfg;
}

consul::ConsulConfig mergedConsulConfig(consul::ConsulConfig user) {
  // Field-by-field over the closed set of protocol timers: a timer still at
  // its declared default gets the simulation-speed value, everything else is
  // the caller's. The old all-or-nothing copy silently reset batching knobs
  // to whatever it remembered to preserve; this shape cannot clobber fields
  // it does not name.
  const consul::ConsulConfig declared{};
  const consul::ConsulConfig sim = simulationConsulConfig();
  if (user.heartbeat_interval == declared.heartbeat_interval)
    user.heartbeat_interval = sim.heartbeat_interval;
  if (user.failure_timeout == declared.failure_timeout) user.failure_timeout = sim.failure_timeout;
  if (user.tick == declared.tick) user.tick = sim.tick;
  if (user.request_retransmit == declared.request_retransmit)
    user.request_retransmit = sim.request_retransmit;
  if (user.nack_timeout == declared.nack_timeout) user.nack_timeout = sim.nack_timeout;
  if (user.ack_interval == declared.ack_interval) user.ack_interval = sim.ack_interval;
  if (user.view_change_timeout == declared.view_change_timeout)
    user.view_change_timeout = sim.view_change_timeout;
  return user;
}

namespace {
std::unique_ptr<net::Transport> makeTransport(const SystemConfig& cfg) {
  if (cfg.transport == TransportKind::kUdp) {
    return std::make_unique<net::UdpTransport>(cfg.hosts, cfg.udp);
  }
  return std::make_unique<net::SimTransport>(cfg.hosts, cfg.net);
}
}  // namespace

FtLindaSystem::FtLindaSystem(SystemConfig cfg)
    : cfg_([&] {
        cfg.consul = mergedConsulConfig(cfg.consul);
        return cfg;
      }()),
      replica_count_(cfg_.replica_hosts == 0 ? cfg_.hosts : cfg_.replica_hosts),
      net_(makeTransport(cfg_)) {
  FTL_REQUIRE(cfg_.hosts > 0, "system needs at least one host");
  FTL_REQUIRE(replica_count_ <= cfg_.hosts, "more replica hosts than hosts");
  for (std::uint32_t h = 0; h < replica_count_; ++h) group_.push_back(h);
  incarnation_.assign(cfg_.hosts, 0);
  ctxs_.resize(cfg_.hosts);
  for (std::uint32_t h = 0; h < cfg_.hosts; ++h) {
    ctxs_[h] = makeCtx(h, /*join_existing=*/false);
  }
  for (auto& ctx : ctxs_) {
    if (ctx.replica) ctx.replica->start();
    if (ctx.remote) ctx.remote->start();
    if (ctx.watchdog) ctx.watchdog->start();
  }
  if (cfg_.monitor_main) {
    runtime(0).monitorFailures(ts::kTsMain);
  }
}

FtLindaSystem::Ctx FtLindaSystem::makeCtx(net::HostId host, bool join_existing) {
  Ctx ctx;
  if (host < replica_count_) {
    ctx.sm = std::make_unique<TsStateMachine>();
    if (cfg_.plan) ctx.sm->setPlan(cfg_.plan);
    ctx.replica = std::make_unique<rsm::Replica>(*net_, host, group_, cfg_.consul, *ctx.sm,
                                                 join_existing);
    ctx.runtime = std::make_unique<Runtime>(host);
    ctx.runtime->attach(ctx.replica.get(), ctx.sm.get());
    if (replica_count_ < cfg_.hosts) {
      // Tuple-server configuration: this replica also serves RPC clients.
      ctx.server = std::make_unique<TupleServer>(*net_, *ctx.replica, *ctx.sm);
    }
    if (cfg_.watchdog) {
      obs::Watchdog::Probes probes;
      Runtime* rt = ctx.runtime.get();
      TsStateMachine* sm = ctx.sm.get();
      rsm::Replica* rep = ctx.replica.get();
      probes.oldest_future_age_ns = [rt] { return rt->oldestPendingNs(); };
      probes.blocked_guards = [sm] { return sm->blockedInfo(); };
      probes.order_progress = [rep] {
        obs::OrderProgressProbe p;
        p.delivered = rep->delivered();
        p.pending = rep->pendingCount();
        return p;
      };
      ctx.watchdog = std::make_unique<obs::Watchdog>(host, cfg_.watchdog_cfg, std::move(probes));
    }
  } else {
    const net::HostId server = host % replica_count_;
    ctx.remote = std::make_unique<RemoteRuntime>(*net_, host, server);
  }
  return ctx;
}

FtLindaSystem::~FtLindaSystem() {
  // Unblock every simulated process, then join them before the stack dies.
  for (std::uint32_t h = 0; h < hostCount(); ++h) {
    if (isUp(h)) crash(h);
  }
  joinProcesses();
}

Runtime& FtLindaSystem::runtime(net::HostId host) {
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_REQUIRE(host < ctxs_.size(), "no such host");
  FTL_REQUIRE(ctxs_[host].runtime != nullptr, "host is an RPC client: use remoteRuntime()");
  return *ctxs_[host].runtime;
}

RemoteRuntime& FtLindaSystem::remoteRuntime(net::HostId host) {
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_REQUIRE(host < ctxs_.size(), "no such host");
  FTL_REQUIRE(ctxs_[host].remote != nullptr, "host runs a replica: use runtime()");
  return *ctxs_[host].remote;
}

TsStateMachine& FtLindaSystem::stateMachine(net::HostId host) {
  std::lock_guard<std::mutex> lock(mutex_);
  FTL_REQUIRE(host < ctxs_.size(), "no such host");
  FTL_REQUIRE(ctxs_[host].sm != nullptr, "client hosts have no replica");
  return *ctxs_[host].sm;
}

void FtLindaSystem::crash(net::HostId host) {
  FTL_REQUIRE(host < ctxs_.size(), "no such host");
  net_->crash(host);
  obs::flight::record(obs::flight::Kind::Crash, host, host);
  std::lock_guard<std::mutex> lock(mutex_);
  // The crashed stack's watchdog stops polling (its probes would otherwise
  // report the failure as a stall of the dead host itself).
  if (ctxs_[host].watchdog) ctxs_[host].watchdog->stop();
  if (ctxs_[host].runtime) ctxs_[host].runtime->markCrashed();
  if (ctxs_[host].remote) ctxs_[host].remote->markCrashed();
  FTL_INFO("system", "processor " << host << " crashed");
}

bool FtLindaSystem::recover(net::HostId host, Millis timeout) {
  FTL_REQUIRE(host < ctxs_.size(), "no such host");
  FTL_REQUIRE(net_->isCrashed(host), "recover() of a live processor");
  Ctx fresh = makeCtx(host, /*join_existing=*/true);
  rsm::Replica* replica = fresh.replica.get();
  RemoteRuntime* remote = fresh.remote.get();
  rsm::Replica* old_replica = nullptr;
  RemoteRuntime* old_remote = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    graveyard_.push_back(std::move(ctxs_[host]));
    ctxs_[host] = std::move(fresh);
    old_replica = graveyard_.back().replica.get();
    old_remote = graveyard_.back().remote.get();
  }
  // The crashed stack's service threads must be fully gone BEFORE the
  // network endpoint reopens, or they would keep draining the inbox and
  // steal the replacement's messages (the objects themselves stay alive in
  // the graveyard for any simulated process still holding a reference).
  if (old_replica) old_replica->shutdown();
  if (old_remote) old_remote->shutdown();
  net_->recover(host);
  ++incarnation_[host];
  obs::flight::record(obs::flight::Kind::Recover, host, host,
                      static_cast<std::int64_t>(incarnation_[host]));
  if (remote) {
    // RPC clients hold no replicated state; recovery is just a fresh library.
    remote->start();
    FTL_INFO("system", "client processor " << host << " restarted");
    return true;
  }
  replica->start();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ctxs_[host].watchdog) ctxs_[host].watchdog->start();
  }
  replica->join(incarnation_[host]);
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (replica->isMember()) {
      FTL_INFO("system", "processor " << host << " rejoined");
      return true;
    }
    std::this_thread::sleep_for(Millis{2});
  }
  return replica->isMember();
}

void FtLindaSystem::spawnProcess(net::HostId host, std::function<void(Runtime&)> fn) {
  Runtime* rt = &runtime(host);
  std::lock_guard<std::mutex> lock(mutex_);
  processes_.emplace_back([rt, host, fn = std::move(fn)] {
    try {
      fn(*rt);
    } catch (const ProcessorFailure&) {
      // The process died with its processor — expected under crash injection.
    } catch (const std::exception& e) {
      FTL_ERROR("system", "process on host " << host << " terminated: " << e.what());
    }
  });
}

void FtLindaSystem::spawnRemoteProcess(net::HostId host,
                                       std::function<void(RemoteRuntime&)> fn) {
  RemoteRuntime* rt = &remoteRuntime(host);
  std::lock_guard<std::mutex> lock(mutex_);
  processes_.emplace_back([rt, host, fn = std::move(fn)] {
    try {
      fn(*rt);
    } catch (const ProcessorFailure&) {
    } catch (const std::exception& e) {
      FTL_ERROR("system", "client process on host " << host << " terminated: " << e.what());
    }
  });
}

void FtLindaSystem::joinProcesses() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(processes_);
  }
  for (auto& t : threads) t.join();
}

}  // namespace ftl::ftlinda

// FtLindaSystem: a complete FT-Linda deployment on a simulated network of
// workstations — the object examples and benches instantiate.
//
// Per processor it wires together the full stack from the paper's Figure
// (user processes / FT-Linda library / TS state machine / Consul / network):
//
//   Runtime  (client library, scratch spaces)
//      |  commands / replies
//   TsStateMachine  (replicated stable tuple spaces)
//      |  totally ordered commands
//   rsm::Replica -> consul::ConsulNode  (atomic multicast, membership)
//      |
//   net::Transport  (SimTransport by default; UdpTransport on request)
//
// crash(h) injects a fail-silent processor failure; recover(h) restarts the
// processor, which rejoins the group and receives a state snapshot.
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "ftlinda/runtime.hpp"
#include "ftlinda/tuple_server.hpp"
#include "net/network.hpp"
#include "net/udp_transport.hpp"
#include "obs/watchdog.hpp"

namespace ftl::ftlinda {

/// Which Transport backend the system builds its stack on.
enum class TransportKind {
  kSim,  // in-process simulated LAN (deterministic; the default)
  kUdp,  // real UDP sockets on loopback (bench_e14, multi-process smoke)
};

struct SystemConfig {
  std::uint32_t hosts = 3;
  TransportKind transport = TransportKind::kSim;
  net::NetworkConfig net;          // kSim backend: default zero latency (fast tests)
  net::UdpTransportConfig udp;     // kUdp backend: default loopback + ephemeral ports
  consul::ConsulConfig consul;     // default: see mergedConsulConfig()
  /// Auto-register TSmain for failure tuples at startup.
  bool monitor_main = false;
  /// Storage plan from the whole-program analyzer (ftl-analyze --plan-out,
  /// loaded with ts::loadPlanFile). Attached to every replica's state
  /// machine, including ones rebuilt by recover(). nullptr = no plan.
  std::shared_ptr<const ts::StoragePlan> plan;
  /// Tuple-server configuration (§6/Fig. 17): only the first `replica_hosts`
  /// hosts run TS replicas (and request handlers); the remaining hosts are
  /// clients whose runtimes forward AGSes by RPC (round-robin assignment).
  /// 0 = every host runs a replica (the default, embedded configuration).
  std::uint32_t replica_hosts = 0;
  /// Run a stall watchdog per replica host (docs/OBSERVABILITY.md "Stall
  /// watchdog"). Off by default — tests that crash hosts on purpose would
  /// otherwise trip it constantly.
  bool watchdog = false;
  obs::WatchdogConfig watchdog_cfg;
};

/// Consul timeouts tuned for simulation speed (milliseconds, not seconds).
consul::ConsulConfig simulationConsulConfig();

/// The ONE place FtLindaSystem defaults a user-supplied ConsulConfig: every
/// protocol timer the caller left at its ConsulConfig{} declared default is
/// replaced by the simulationConsulConfig() value; every field the caller
/// set — timers, batching knobs, anything added later — passes through
/// untouched. (A caller who genuinely wants a production-speed timer equal
/// to the declared default can nudge it by one microsecond.)
consul::ConsulConfig mergedConsulConfig(consul::ConsulConfig user);

class FtLindaSystem {
 public:
  explicit FtLindaSystem(SystemConfig cfg);
  /// Crashes every host (to unblock simulated processes), joins them, and
  /// tears the stack down.
  ~FtLindaSystem();

  FtLindaSystem(const FtLindaSystem&) = delete;
  FtLindaSystem& operator=(const FtLindaSystem&) = delete;

  std::uint32_t hostCount() const { return static_cast<std::uint32_t>(ctxs_.size()); }
  net::Transport& network() { return *net_; }

  /// The live runtime for `host` (replaced on recovery). Only valid for
  /// replica hosts.
  Runtime& runtime(net::HostId host);
  /// The live RPC runtime for a client host (tuple-server configuration).
  RemoteRuntime& remoteRuntime(net::HostId host);
  /// True if `host` runs a replica (vs. being an RPC client).
  bool isReplicaHost(net::HostId host) const { return host < replica_count_; }
  /// The live TS state machine replica hosted on `host` (introspection).
  TsStateMachine& stateMachine(net::HostId host);

  /// Fail-silent crash of a processor: all its traffic stops, its pending
  /// and future runtime calls throw ProcessorFailure, and the survivors
  /// eventually deposit a failure tuple into monitored spaces.
  void crash(net::HostId host);

  /// Restart a crashed processor: fresh runtime + replica that rejoins the
  /// group and installs a snapshot. Blocks until membership (or timeout).
  /// Returns true on successful rejoin.
  bool recover(net::HostId host, Millis timeout = Millis{10'000});

  bool isUp(net::HostId host) const { return !net_->isCrashed(host); }

  /// Run `fn(runtime)` on a dedicated thread bound to `host`, like a process
  /// created on that processor. ProcessorFailure terminates it quietly
  /// (the process dies with its host).
  void spawnProcess(net::HostId host, std::function<void(Runtime&)> fn);

  /// spawnProcess for a client host in the tuple-server configuration.
  void spawnRemoteProcess(net::HostId host, std::function<void(RemoteRuntime&)> fn);

  /// Join all spawned process threads (they must terminate on their own).
  void joinProcesses();

 private:
  struct Ctx {
    // Replica hosts:
    std::unique_ptr<TsStateMachine> sm;
    std::unique_ptr<Runtime> runtime;
    std::unique_ptr<TupleServer> server;
    // Client hosts (tuple-server configuration):
    std::unique_ptr<RemoteRuntime> remote;
    // Declared last so it is destroyed FIRST: ~Replica stops and joins the
    // protocol service thread, which can still be draining its inbox backlog
    // (and flushing staged apply batches) into sm/runtime/server. Everything
    // it can call into must outlive it.
    std::unique_ptr<rsm::Replica> replica;
    // Declared after replica so it is destroyed before anything its probes
    // read (runtime/sm/replica).
    std::unique_ptr<obs::Watchdog> watchdog;
  };

  Ctx makeCtx(net::HostId host, bool join_existing);

  SystemConfig cfg_;
  std::uint32_t replica_count_ = 0;
  // Owns the transport; every Ctx (and the Endpoints inside) is destroyed
  // before it, which is the lifetime rule Endpoint documents.
  std::unique_ptr<net::Transport> net_;
  std::vector<net::HostId> group_;
  std::vector<Ctx> ctxs_;
  std::vector<Ctx> graveyard_;  // keeps crashed stacks alive for old threads
  std::vector<std::uint64_t> incarnation_;
  std::vector<std::thread> processes_;
  std::mutex mutex_;
};

}  // namespace ftl::ftlinda

#include "ftlinda/ts_state_machine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace ftl::ftlinda {

TsStateMachine::TsStateMachine(ReplySink sink) : sink_(std::move(sink)) {}

void TsStateMachine::setReplySink(ReplySink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void TsStateMachine::addReplySink(ReplySink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  extra_sinks_.push_back(std::move(sink));
}

void TsStateMachine::emitLocked(net::HostId origin, std::uint64_t request_id,
                                const Reply& reply) {
  if (sink_) sink_(origin, request_id, reply);
  for (const auto& sink : extra_sinks_) sink(origin, request_id, reply);
}

void TsStateMachine::apply(const rsm::ApplyContext& ctx, const Bytes& command) {
  Command cmd = Command::decode(command);
  std::lock_guard<std::mutex> lock(mutex_);
  switch (cmd.kind) {
    case CommandKind::ExecuteAgs: {
      ExecResult res = tryExecuteAgs(cmd.ags, reg_, ExecMode::Replicated);
      countLocked(cmd.ags, res, /*woken=*/false);
      if (!res.executed) {
        BlockedAgs b;
        b.order = ctx.gseq;
        b.origin = ctx.origin;
        b.request_id = cmd.request_id;
        b.ags = std::move(cmd.ags);
        blocked_.push_back(std::move(b));
        FTL_DEBUG("tssm", "AGS from host " << ctx.origin << " blocked (queue="
                                           << blocked_.size() << ")");
      } else {
        emitLocked(ctx.origin, cmd.request_id, res.reply);
      }
      // Whatever just ran may have deposited tuples that unblock others.
      retryBlockedLocked();
      break;
    }
    case CommandKind::MonitorFailures: {
      auto it = std::lower_bound(monitored_.begin(), monitored_.end(), cmd.ts);
      if (it == monitored_.end() || *it != cmd.ts) monitored_.insert(it, cmd.ts);
      Reply r;
      r.succeeded = true;
      emitLocked(ctx.origin, cmd.request_id, r);
      break;
    }
    case CommandKind::UnmonitorFailures: {
      auto it = std::lower_bound(monitored_.begin(), monitored_.end(), cmd.ts);
      if (it != monitored_.end() && *it == cmd.ts) monitored_.erase(it);
      Reply r;
      r.succeeded = true;
      emitLocked(ctx.origin, cmd.request_id, r);
      break;
    }
  }
}

void TsStateMachine::countLocked(const Ags& ags, const ExecResult& res, bool woken) {
  if (!res.executed) {
    ++metrics_.ags_blocked;
    return;
  }
  if (!res.reply.error.empty()) {
    ++metrics_.ags_errors;
    return;
  }
  if (!res.reply.succeeded) {
    ++metrics_.ags_failed;
    return;
  }
  ++metrics_.ags_executed;
  if (woken) ++metrics_.ags_woken;
  const Branch& br = ags.branches[static_cast<std::size_t>(res.reply.branch)];
  switch (br.guard.kind) {
    case Guard::Kind::In: ++metrics_.guards_in; break;
    case Guard::Kind::Rd: ++metrics_.guards_rd; break;
    case Guard::Kind::Inp: ++metrics_.guards_in; break;
    case Guard::Kind::Rdp: ++metrics_.guards_rd; break;
    case Guard::Kind::True: break;
  }
  for (const auto& op : br.body) {
    switch (op.op) {
      case OpCode::Out: ++metrics_.ops_out; break;
      case OpCode::Inp: ++metrics_.ops_inp; break;
      case OpCode::Rdp: ++metrics_.ops_rdp; break;
      case OpCode::Move: ++metrics_.ops_move; break;
      case OpCode::Copy: ++metrics_.ops_copy; break;
      case OpCode::CreateTs:
      case OpCode::DestroyTs: break;
    }
  }
}

TsStateMachine::Metrics TsStateMachine::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

void TsStateMachine::retryBlockedLocked() {
  // Deterministic wake policy: scan the queue oldest-first; repeat until a
  // full pass wakes nobody (a woken body may enable an older statement).
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = blocked_.begin(); it != blocked_.end();) {
      ExecResult res = tryExecuteAgs(it->ags, reg_, ExecMode::Replicated);
      if (res.executed) {
        countLocked(it->ags, res, /*woken=*/true);
        emitLocked(it->origin, it->request_id, res.reply);
        it = blocked_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
}

void TsStateMachine::onMembership(std::uint64_t gseq, const std::vector<net::HostId>& members,
                                  const std::vector<net::HostId>& failed,
                                  const std::vector<net::HostId>& joined) {
  (void)gseq;
  (void)members;
  (void)joined;
  if (failed.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (net::HostId h : failed) {
    // Fail-silent -> fail-stop: one failure tuple per registered TS, at the
    // same point of the total order at every replica.
    for (TsHandle ts : monitored_) {
      if (auto* space = reg_.find(ts)) {
        space->put(tuple::makeTuple("failure", static_cast<std::int64_t>(h)));
        ++metrics_.failure_tuples;
      }
    }
    // Blocked statements from the dead processor will never be claimed.
    const auto before = blocked_.size();
    blocked_.erase(std::remove_if(blocked_.begin(), blocked_.end(),
                                  [&](const BlockedAgs& b) { return b.origin == h; }),
                   blocked_.end());
    metrics_.cancelled_blocked += before - blocked_.size();
  }
  retryBlockedLocked();
}

Bytes TsStateMachine::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Writer w;
  reg_.encode(w);
  w.u32(static_cast<std::uint32_t>(blocked_.size()));
  for (const auto& b : blocked_) {
    w.u64(b.order);
    w.u32(b.origin);
    w.u64(b.request_id);
    b.ags.encode(w);
  }
  w.u32(static_cast<std::uint32_t>(monitored_.size()));
  for (TsHandle h : monitored_) w.u64(h);
  return w.take();
}

void TsStateMachine::restore(const Bytes& snapshot) {
  Reader r(snapshot);
  std::lock_guard<std::mutex> lock(mutex_);
  reg_ = ts::TsRegistry::decode(r);
  blocked_.clear();
  const std::uint32_t nb = r.u32();
  for (std::uint32_t i = 0; i < nb; ++i) {
    BlockedAgs b;
    b.order = r.u64();
    b.origin = r.u32();
    b.request_id = r.u64();
    b.ags = Ags::decode(r);
    blocked_.push_back(std::move(b));
  }
  monitored_.clear();
  const std::uint32_t nm = r.u32();
  for (std::uint32_t i = 0; i < nm; ++i) monitored_.push_back(r.u64());
}

std::size_t TsStateMachine::blockedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocked_.size();
}

std::size_t TsStateMachine::spaceCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reg_.spaceCount();
}

std::size_t TsStateMachine::tupleCount(TsHandle ts) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto* space = reg_.find(ts);
  return space ? space->size() : 0;
}

std::vector<Tuple> TsStateMachine::spaceContents(TsHandle ts) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto* space = reg_.find(ts);
  return space ? space->contents() : std::vector<Tuple>{};
}

bool TsStateMachine::monitored(TsHandle ts) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::binary_search(monitored_.begin(), monitored_.end(), ts);
}

Bytes TsStateMachine::stateDigestBytes() const { return snapshot(); }

}  // namespace ftl::ftlinda

#include "ftlinda/ts_state_machine.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {

TsStateMachine::TsStateMachine(ReplySink sink) : sink_(std::move(sink)) {
  obs_token_ = obs::registerSource([this](std::vector<obs::Sample>& out) {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const std::string host = "{host=\"" + std::to_string(self_) + "\"}";
    auto put = [&](const char* name, std::uint64_t v) {
      out.push_back({name + host, static_cast<double>(v)});
    };
    put("ftl_sm_ags_executed", metrics_.ags_executed);
    put("ftl_sm_ags_failed", metrics_.ags_failed);
    put("ftl_sm_ags_blocked", metrics_.ags_blocked);
    put("ftl_sm_ags_woken", metrics_.ags_woken);
    put("ftl_sm_ags_errors", metrics_.ags_errors);
    put("ftl_sm_ops_out", metrics_.ops_out);
    put("ftl_sm_ops_inp", metrics_.ops_inp);
    put("ftl_sm_ops_rdp", metrics_.ops_rdp);
    put("ftl_sm_ops_move", metrics_.ops_move);
    put("ftl_sm_ops_copy", metrics_.ops_copy);
    put("ftl_sm_guards_in", metrics_.guards_in);
    put("ftl_sm_guards_rd", metrics_.guards_rd);
    put("ftl_sm_failure_tuples", metrics_.failure_tuples);
    put("ftl_sm_cancelled_blocked", metrics_.cancelled_blocked);
    // Wake-path efficiency: spurious probes = wake_probes - ags_woken.
    put("ftl_sm_wake_probes", metrics_.wake_probes);
    put("ftl_sm_batches", batch_stats_.batches);
    put("ftl_sm_batch_commands", batch_stats_.commands);
    put("ftl_sm_max_batch", batch_stats_.max_batch);
    put("ftl_sm_blocked_now", blocked_.size());
    put("ftl_sm_spaces", reg_.spaceCount());
    // Per-space occupancy: tuples and signature buckets (the store is
    // bucketed by type signature; see ts/tuple_space.hpp).
    for (TsHandle h : reg_.handles()) {
      const auto* space = reg_.find(h);
      if (space == nullptr) continue;
      const std::string lbl =
          "{host=\"" + std::to_string(self_) + "\",ts=\"" + std::to_string(h) + "\"}";
      out.push_back({"ftl_sm_tuples" + lbl, static_cast<double>(space->size())});
      out.push_back({"ftl_sm_sig_buckets" + lbl, static_cast<double>(space->bucketCount())});
    }
  });
}

TsStateMachine::~TsStateMachine() { obs::unregisterSource(obs_token_); }

void TsStateMachine::setReplySink(ReplySink sink) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void TsStateMachine::setPlan(std::shared_ptr<const ts::StoragePlan> plan) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  WriteEpoch epoch(state_version_);  // chain re-representation moves tuples
  plan_ = std::move(plan);
  reg_.setPlan(plan_);
  // The wake filter is sound only while nothing waits on a filtered class;
  // statements already blocked when the plan arrives must be re-checked.
  plan_wake_ok_ = plan_ != nullptr;
  if (plan_) {
    for (const auto& [key, orders] : wait_index_) {
      if (!plan_->sigMayBlock(key.second)) {
        plan_wake_ok_ = false;
        break;
      }
    }
  }
}

void TsStateMachine::setSelf(net::HostId host) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  self_ = host;
}

void TsStateMachine::addReplySink(ReplySink sink) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  extra_sinks_.push_back(std::move(sink));
}

void TsStateMachine::addApplyFlushSink(std::function<void()> hook) {
  std::lock_guard<std::shared_mutex> lock(mutex_);
  flush_sinks_.push_back(std::move(hook));
}

void TsStateMachine::emitLocked(net::HostId origin, std::uint64_t request_id,
                                const Reply& reply) {
  if (sink_) sink_(origin, request_id, reply);
  for (const auto& sink : extra_sinks_) sink(origin, request_id, reply);
}

void TsStateMachine::apply(const rsm::ApplyContext& ctx, BytesView command) {
  Command cmd = Command::decode(command);  // owns its data past the view
  {
    std::lock_guard<std::shared_mutex> lock(mutex_);
    WriteEpoch epoch(state_version_);
    applyCommandLocked(ctx, std::move(cmd));
  }
  for (const auto& hook : flush_sinks_) hook();
}

void TsStateMachine::applyBatch(const std::vector<rsm::BatchItem>& items) {
  // Decode the whole run before taking the lock: deserialization is the
  // per-command cost that does NOT need the state, and the apply path runs
  // on the protocol service thread, so every cycle under the lock lengthens
  // the ordering critical path.
  std::vector<Command> cmds;
  cmds.reserve(items.size());
  for (const auto& item : items) cmds.push_back(Command::decode(item.command));
  static obs::Histogram& batch_size_hist = obs::histogram("ftl_sm_apply_batch_size");
  batch_size_hist.observe(items.size());
  obs::trace::Span span("sm.apply_batch", items.empty() ? 0 : items.front().ctx.gseq);
  {
    std::lock_guard<std::shared_mutex> lock(mutex_);
    // ONE write epoch for the whole run: readers see the batch as a single
    // mutation (intermediate states were never observable under the old
    // exclusive lock either — batch boundaries are local scheduling).
    WriteEpoch epoch(state_version_);
    batch_stats_.batches += 1;
    batch_stats_.commands += items.size();
    batch_stats_.max_batch = std::max<std::uint64_t>(batch_stats_.max_batch, items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      applyCommandLocked(items[i].ctx, std::move(cmds[i]));
    }
  }
  for (const auto& hook : flush_sinks_) hook();
}

void TsStateMachine::applyCommandLocked(const rsm::ApplyContext& ctx, Command&& cmd) {
  // The origin replica alone closes the ordering span and times the apply:
  // every replica executes this command, but the trace should show each AGS
  // stage once.
  // Every command carries a correlation id, so gate on the tracer actually
  // being on — otherwise `traced` would force the per-apply clock reads
  // below for every statement instead of the intended 1-in-16 sample.
  const bool traced = ctx.origin == self_ && cmd.trace_id != 0 && obs::trace::enabled();
  if (traced) obs::trace::asyncEnd("ags.order", cmd.trace_id);
  if (ctx.origin == self_ && ctx.enq_ns != 0) {
    // Ordering stage closes here, where the command reaches the state
    // machine — so the apply-batch window and intra-batch queueing count
    // as ordering time, matching the "ags.order" span's bounds.
    static obs::Histogram& order_ns = obs::histogram("ftl_stage_order_ns");
    const std::int64_t dt = nowNanos() - ctx.enq_ns;
    order_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
  }
  switch (cmd.kind) {
    case CommandKind::ExecuteAgs: {
      static obs::Histogram& apply_ns = obs::histogram("ftl_sm_apply_ns");
      // Stage timing is SAMPLED: two clock reads cost more than a small
      // apply itself (T1 base ≈ 70ns, a clock read ≈ 30ns), so only every
      // 16th command — and every traced one, since the trace span needs
      // real bounds — pays them. The histogram stays statistically honest.
      const bool timed = traced || (apply_sample_++ & 15u) == 0;
      const std::int64_t t0 = timed ? nowNanos() : 0;
      ExecResult res = tryExecuteAgs(cmd.ags, reg_, ExecMode::Replicated);
      if (timed) {
        const std::int64_t dt = nowNanos() - t0;
        apply_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
        if (traced) obs::trace::complete("ags.apply", cmd.trace_id, t0, dt);
      }
      countLocked(cmd.ags, res, /*woken=*/false);
      if (!res.executed) {
        BlockedAgs b;
        b.order = ctx.gseq;
        b.origin = ctx.origin;
        b.request_id = cmd.request_id;
        b.trace_id = cmd.trace_id;
        b.ags = std::move(cmd.ags);
        insertBlockedLocked(std::move(b));
        FTL_DEBUG("tssm", "AGS from host " << ctx.origin << " blocked (queue="
                                           << blocked_.size() << ")");
        break;  // a blocked statement mutated nothing: nobody to wake
      }
      emitLocked(ctx.origin, cmd.request_id, res.reply);
      // Whatever just ran may have deposited tuples that unblock others.
      if (res.structural) {
        retryBlockedLocked(res.deposited, /*wake_all=*/true);
      } else if (!res.deposited.empty()) {
        if (planWakeFilterUsable()) {
          // Deposits into classes the plan proved have no blocking
          // consumers cannot wake anything (no wait-index posting exists
          // for them while plan_wake_ok_ holds): skip the probe.
          static obs::Counter& wake_skips = obs::counter("ftl_plan_wake_skip");
          std::vector<WaitKey> dirty;
          dirty.reserve(res.deposited.size());
          for (const WaitKey& k : res.deposited) {
            if (plan_->sigMayBlock(k.second)) {
              dirty.push_back(k);
            } else {
              wake_skips.inc();
            }
          }
          if (!dirty.empty()) retryBlockedLocked(dirty, /*wake_all=*/false);
        } else {
          retryBlockedLocked(res.deposited, /*wake_all=*/false);
        }
      }
      break;
    }
    case CommandKind::MonitorFailures: {
      auto it = std::lower_bound(monitored_.begin(), monitored_.end(), cmd.ts);
      if (it == monitored_.end() || *it != cmd.ts) monitored_.insert(it, cmd.ts);
      Reply r;
      r.succeeded = true;
      emitLocked(ctx.origin, cmd.request_id, r);
      break;
    }
    case CommandKind::UnmonitorFailures: {
      auto it = std::lower_bound(monitored_.begin(), monitored_.end(), cmd.ts);
      if (it != monitored_.end() && *it == cmd.ts) monitored_.erase(it);
      Reply r;
      r.succeeded = true;
      emitLocked(ctx.origin, cmd.request_id, r);
      break;
    }
  }
}

std::vector<TsStateMachine::WaitKey> TsStateMachine::guardWaitKeys(const Ags& ags) {
  // A blocked statement has no guardTrue() branch (it would have fired), so
  // every branch contributes one (space, pattern-signature) posting. Inp/Rdp
  // guards are included: a retry probes branches in order, and a deposit may
  // let a non-blocking branch fire ahead of the blocking one.
  std::vector<WaitKey> keys;
  keys.reserve(ags.branches.size());
  for (const auto& branch : ags.branches) {
    if (branch.guard.kind == Guard::Kind::True) continue;
    keys.emplace_back(branch.guard.ts, tuple::signatureOf(branch.guard.pattern));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

void TsStateMachine::insertBlockedLocked(BlockedAgs b) {
  if (b.blocked_ns == 0) b.blocked_ns = nowNanos();
  b.keys = guardWaitKeys(b.ags);
  if (plan_ && plan_wake_ok_) {
    // A statement is waiting on a class the plan claimed has no blocking
    // consumers: the plan was built for a different program (or a client
    // bypassed it). Disable wake filtering — correctness over speed.
    for (const WaitKey& k : b.keys) {
      if (!plan_->sigMayBlock(k.second)) {
        static obs::Counter& violations = obs::counter("ftl_plan_violation");
        violations.inc();
        plan_wake_ok_ = false;
        break;
      }
    }
  }
  const std::uint64_t order = b.order;
  for (const WaitKey& k : b.keys) wait_index_[k].push_back(order);  // orders ascend
  blocked_.emplace(order, std::move(b));
}

std::map<std::uint64_t, TsStateMachine::BlockedAgs>::iterator TsStateMachine::eraseBlockedLocked(
    std::map<std::uint64_t, BlockedAgs>::iterator it) {
  for (const WaitKey& k : it->second.keys) {
    auto idx = wait_index_.find(k);
    if (idx == wait_index_.end()) continue;
    auto& orders = idx->second;
    orders.erase(std::remove(orders.begin(), orders.end(), it->first), orders.end());
    if (orders.empty()) wait_index_.erase(idx);
  }
  return blocked_.erase(it);
}

void TsStateMachine::countLocked(const Ags& ags, const ExecResult& res, bool woken) {
  if (!res.executed) {
    ++metrics_.ags_blocked;
    return;
  }
  if (!res.reply.error.empty()) {
    ++metrics_.ags_errors;
    return;
  }
  if (!res.reply.succeeded) {
    ++metrics_.ags_failed;
    return;
  }
  ++metrics_.ags_executed;
  if (woken) ++metrics_.ags_woken;
  const Branch& br = ags.branches[static_cast<std::size_t>(res.reply.branch)];
  switch (br.guard.kind) {
    case Guard::Kind::In: ++metrics_.guards_in; break;
    case Guard::Kind::Rd: ++metrics_.guards_rd; break;
    case Guard::Kind::Inp: ++metrics_.guards_in; break;
    case Guard::Kind::Rdp: ++metrics_.guards_rd; break;
    case Guard::Kind::True: break;
  }
  for (const auto& op : br.body) {
    switch (op.op) {
      case OpCode::Out: ++metrics_.ops_out; break;
      case OpCode::Inp: ++metrics_.ops_inp; break;
      case OpCode::Rdp: ++metrics_.ops_rdp; break;
      case OpCode::Move: ++metrics_.ops_move; break;
      case OpCode::Copy: ++metrics_.ops_copy; break;
      case OpCode::CreateTs:
      case OpCode::DestroyTs: break;
    }
  }
}

TsStateMachine::Metrics TsStateMachine::metrics() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return metrics_;
}

TsStateMachine::BatchStats TsStateMachine::batchStats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return batch_stats_;
}

void TsStateMachine::retryBlockedLocked(const std::vector<WaitKey>& dirty, bool wake_all) {
  // Deterministic wake policy, same fixpoint as the pre-index full rescan:
  // candidates are retried oldest-first; a woken body's deposits add its
  // newly-matchable waiters to the candidate set (possibly OLDER than the
  // statement that just fired — the ordered set handles that). Filtering by
  // wait key only skips retries that would have re-blocked without touching
  // state, so the sequence of state changes and emitted replies is
  // byte-identical to the full rescan.
  std::set<std::uint64_t> candidates;
  auto addKey = [&](const WaitKey& k) {
    auto idx = wait_index_.find(k);
    if (idx == wait_index_.end()) return;
    candidates.insert(idx->second.begin(), idx->second.end());
  };
  if (wake_all) {
    for (const auto& [order, b] : blocked_) candidates.insert(order);
  } else {
    for (const WaitKey& k : dirty) addKey(k);
  }
  while (!candidates.empty()) {
    const std::uint64_t order = *candidates.begin();
    candidates.erase(candidates.begin());
    auto it = blocked_.find(order);
    if (it == blocked_.end()) continue;  // already woken this round
    ++metrics_.wake_probes;
    ExecResult res = tryExecuteAgs(it->second.ags, reg_, ExecMode::Replicated);
    if (!res.executed) continue;  // still blocked; state untouched
    countLocked(it->second.ags, res, /*woken=*/true);
    if (it->second.origin == self_ && it->second.trace_id != 0) {
      obs::trace::instant("ags.wake", it->second.trace_id);
    }
    emitLocked(it->second.origin, it->second.request_id, res.reply);
    eraseBlockedLocked(it);
    if (res.structural) {
      for (const auto& [o, b] : blocked_) candidates.insert(o);
    } else {
      for (const WaitKey& k : res.deposited) addKey(k);
    }
  }
}

void TsStateMachine::onMembership(std::uint64_t gseq, const std::vector<net::HostId>& members,
                                  const std::vector<net::HostId>& failed,
                                  const std::vector<net::HostId>& joined) {
  (void)gseq;
  (void)members;
  (void)joined;
  if (failed.empty()) return;
  {
    std::lock_guard<std::shared_mutex> lock(mutex_);
    WriteEpoch epoch(state_version_);
    std::vector<WaitKey> dirty;
    for (net::HostId h : failed) {
      // Fail-silent -> fail-stop: one failure tuple per registered TS, at
      // the same point of the total order at every replica.
      for (TsHandle ts : monitored_) {
        if (auto* space = reg_.find(ts)) {
          Tuple t = tuple::makeTuple("failure", static_cast<std::int64_t>(h));
          dirty.emplace_back(ts, tuple::signatureOf(t));
          space->put(std::move(t));
          ++metrics_.failure_tuples;
        }
      }
      // Blocked statements from the dead processor will never be claimed.
      for (auto it = blocked_.begin(); it != blocked_.end();) {
        if (it->second.origin == h) {
          it = eraseBlockedLocked(it);
          ++metrics_.cancelled_blocked;
        } else {
          ++it;
        }
      }
    }
    retryBlockedLocked(dirty, /*wake_all=*/false);
  }
  // Cancellations and failure-tuple wakes emit replies too; flush them.
  for (const auto& hook : flush_sinks_) hook();
}

Bytes TsStateMachine::snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  Writer w;
  reg_.encode(w);
  w.u32(static_cast<std::uint32_t>(blocked_.size()));
  for (const auto& [order, b] : blocked_) {
    w.u64(b.order);
    w.u32(b.origin);
    w.u64(b.request_id);
    b.ags.encode(w);
  }
  w.u32(static_cast<std::uint32_t>(monitored_.size()));
  for (TsHandle h : monitored_) w.u64(h);
  return w.take();
}

void TsStateMachine::restore(const Bytes& snapshot) {
  Reader r(snapshot);
  std::lock_guard<std::shared_mutex> lock(mutex_);
  WriteEpoch epoch(state_version_);  // stales every published read slot
  reg_ = ts::TsRegistry::decode(r);
  if (plan_) reg_.setPlan(plan_);
  plan_wake_ok_ = plan_ != nullptr;
  blocked_.clear();
  wait_index_.clear();
  const std::uint32_t nb = r.u32();
  for (std::uint32_t i = 0; i < nb; ++i) {
    BlockedAgs b;
    b.order = r.u64();
    b.origin = r.u32();
    b.request_id = r.u64();
    b.ags = Ags::decode(r);
    insertBlockedLocked(std::move(b));  // rebuilds the wait-index postings
  }
  monitored_.clear();
  const std::uint32_t nm = r.u32();
  for (std::uint32_t i = 0; i < nm; ++i) monitored_.push_back(r.u64());
}

std::size_t TsStateMachine::blockedCount() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return blocked_.size();
}

obs::BlockedGuardsProbe TsStateMachine::blockedInfo() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  obs::BlockedGuardsProbe p;
  p.count = blocked_.size();
  p.wake_probes = metrics_.wake_probes;
  // blocked_ is keyed by arrival gseq, so the first entry is the oldest.
  if (!blocked_.empty()) p.oldest_ns = blocked_.begin()->second.blocked_ns;
  return p;
}

std::size_t TsStateMachine::spaceCount() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return reg_.spaceCount();
}

std::size_t TsStateMachine::tupleCount(TsHandle ts) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto* space = reg_.find(ts);
  return space ? space->size() : 0;
}

std::vector<Tuple> TsStateMachine::spaceContents(TsHandle ts) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto* space = reg_.find(ts);
  return space ? space->contents() : std::vector<Tuple>{};
}

bool TsStateMachine::monitored(TsHandle ts) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return std::binary_search(monitored_.begin(), monitored_.end(), ts);
}

Bytes TsStateMachine::stateDigestBytes() const { return snapshot(); }

std::shared_ptr<const Tuple> TsStateMachine::readSnapshot(TsHandle ts, const Pattern& p) const {
  static obs::Counter& hits = obs::counter("ftl_rd_lockfree_hit");
  static obs::Counter& fallbacks = obs::counter("ftl_rd_lockfree_fallback");
  const tuple::SignatureKey sig = p.signature();
  const std::string* pname = tuple::nameRefOf(p);
  const std::size_t idx = slotIndex(ts, sig);
  if (pname != nullptr) {
    std::shared_ptr<const RdSlot> slot = rd_slots_[idx].load(std::memory_order_acquire);
    // Hit condition: the slot is for this exact chain, the probe matches the
    // chain FRONT (so the front IS the probe's oldest match — chains are
    // FIFO), and the state version is unchanged since publication (an
    // in-flight writer shows as odd ≠ the slot's even stamp). The tuple in
    // the slot is an immutable shared copy, so no torn read is possible.
    if (slot && slot->ts == ts && slot->sig == sig && slot->name == *pname &&
        p.matches(*slot->front) &&
        state_version_.load(std::memory_order_acquire) == slot->version) {
      hits.inc();
      return slot->front;
    }
  }
  fallbacks.inc();
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto* space = reg_.find(ts);
  if (space == nullptr) return nullptr;
  const Tuple* t = space->readRefShared(p);  // cache-write-free: reader-safe
  if (t == nullptr) return nullptr;
  auto result = std::make_shared<const Tuple>(*t);
  // Publish a slot for future lock-free hits — only for classes the plan
  // proved read-mostly (anything hotter would thrash the slot), and always
  // stamped with the CURRENT version, which is stable (and even) while we
  // hold the shared lock. Concurrent publishers race benignly: both slots
  // are valid for this version; last store wins.
  if (pname != nullptr && plan_ != nullptr) {
    if (const ts::PlanEntry* e = plan_->find(sig, *pname); e != nullptr && e->read_mostly) {
      if (const Tuple* front = space->chainFront(sig, *pname)) {
        auto slot = std::make_shared<const RdSlot>(
            RdSlot{ts, sig, *pname,
                   front == t ? result : std::make_shared<const Tuple>(*front),
                   state_version_.load(std::memory_order_acquire)});
        rd_slots_[idx].store(std::move(slot), std::memory_order_release);
      }
    }
  }
  return result;
}

}  // namespace ftl::ftlinda

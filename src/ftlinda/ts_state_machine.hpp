// TsStateMachine: the replicated state machine that realizes STABLE tuple
// spaces (paper §5). One instance runs at every processor; all of them apply
// the same AGS stream in the same total order, so their registries stay
// identical and tuples survive any minority of crashes.
//
// Responsibilities:
//  - execute each AGS command atomically (via the shared executor);
//  - queue AGSes whose guards cannot fire (blocking semantics), waking them
//    deterministically — oldest first — whenever state changes. A blocked
//    statement is indexed by the (space, signature) of each of its guards,
//    so a deposit probes only the statements whose guard signature it can
//    match instead of re-executing the whole wait queue (a destroy_TS still
//    wakes everything: it can turn a blocked statement into an error);
//  - convert membership failures into failure tuples ("failure", host)
//    deposited into every registered TS, at the same point of the total
//    order everywhere (the fail-silent -> fail-stop conversion of §3.3);
//  - cancel blocked statements issued by a failed processor;
//  - snapshot/restore everything for recovering replicas.
//
// Replies are produced at every replica (deterministically) and handed to
// the reply sink; the sink installed by the local runtime keeps only replies
// addressed to its own processor.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>

#include "ftlinda/executor.hpp"
#include "obs/watchdog.hpp"
#include "rsm/state_machine.hpp"

namespace ftl::ftlinda {

class TsStateMachine : public rsm::StateMachine {
 public:
  /// (origin processor, request id, reply). Called while the machine's lock
  /// is held; must not call back into the state machine.
  using ReplySink = std::function<void(net::HostId, std::uint64_t, const Reply&)>;

  explicit TsStateMachine(ReplySink sink = {});
  ~TsStateMachine();

  /// Install/replace the reply sink (the runtime wires itself in here).
  void setReplySink(ReplySink sink);

  /// Attach the analyzer's storage plan (ts/plan.hpp; nullptr clears). The
  /// registry re-represents its chains and deposits into classes the plan
  /// proves have no blocking consumers skip the wake-index probe. Purely an
  /// optimization: if a statement nevertheless blocks on such a class (the
  /// plan was built from a different program), the machine detects it,
  /// counts ftl_plan_violation, and falls back to unfiltered wakes —
  /// liveness never depends on the plan being right. Replicas may hold
  /// different plans without diverging: filtered wake keys have no index
  /// postings, so the filter never changes which statements retry.
  void setPlan(std::shared_ptr<const ts::StoragePlan> plan);

  /// Tell the machine which processor it runs on (the runtime wires this in
  /// at attach()). Used only for observability: trace events that must fire
  /// exactly once per AGS — ordering-arrival, wake — are emitted by the
  /// ORIGIN replica alone.
  void setSelf(net::HostId host);

  /// Add an ADDITIONAL reply sink (the tuple server uses this to intercept
  /// replies for requests it forwarded on behalf of RPC clients). Sinks see
  /// every reply and filter by (origin, request id) themselves.
  void addReplySink(ReplySink sink);

  /// Register a hook invoked AFTER apply()/applyBatch()/onMembership()
  /// release the machine's lock — once every reply sink of the batch has
  /// fired. Unlike ReplySink (called under the lock), a flush hook runs
  /// unlocked and may perform I/O; the tuple server drains its staged
  /// ReplyBatch frames here, keeping reply sends off the apply critical
  /// path. Register before the replica starts (not thread-safe afterwards).
  void addApplyFlushSink(std::function<void()> hook);

  // rsm::StateMachine
  void apply(const rsm::ApplyContext& ctx, BytesView command) override;
  /// Batched apply: decodes every command up front, then executes the run
  /// under ONE lock acquisition. Replicated state after the batch is
  /// byte-identical to applying the items one at a time (batch boundaries
  /// are local scheduling — see rsm::StateMachine::applyBatch).
  void applyBatch(const std::vector<rsm::BatchItem>& items) override;
  void onMembership(std::uint64_t gseq, const std::vector<net::HostId>& members,
                    const std::vector<net::HostId>& failed,
                    const std::vector<net::HostId>& joined) override;
  Bytes snapshot() const override;
  void restore(const Bytes& snapshot) override;

  /// Operation counters, maintained while applying the ordered stream.
  /// Deterministic across replicas (they apply identical streams), so they
  /// double as a cheap divergence probe.
  struct Metrics {
    std::uint64_t ags_executed = 0;      // statements that fired a branch
    std::uint64_t ags_failed = 0;        // non-blocking statements, no match
    std::uint64_t ags_blocked = 0;       // statements that had to queue
    std::uint64_t ags_woken = 0;         // queued statements later fired
    std::uint64_t ags_errors = 0;        // deterministic validation errors
    std::uint64_t ops_out = 0;
    std::uint64_t ops_inp = 0;
    std::uint64_t ops_rdp = 0;
    std::uint64_t ops_move = 0;
    std::uint64_t ops_copy = 0;
    std::uint64_t guards_in = 0;
    std::uint64_t guards_rd = 0;
    std::uint64_t failure_tuples = 0;
    std::uint64_t cancelled_blocked = 0;  // blocked statements of dead hosts
    /// Blocked statements re-executed by the wake path. With the wait-index
    /// this counts only statements whose guard signature a deposit could
    /// match (pre-index it was every blocked statement after every apply).
    std::uint64_t wake_probes = 0;
  };
  Metrics metrics() const;

  /// Apply-batch shape counters. UNLIKE Metrics these are NOT deterministic
  /// across replicas: batch boundaries depend on local scheduling, never on
  /// replicated state. Diagnostics / benches only.
  struct BatchStats {
    std::uint64_t batches = 0;        // applyBatch() calls
    std::uint64_t commands = 0;       // commands applied through batches
    std::uint64_t max_batch = 0;      // largest single batch
  };
  BatchStats batchStats() const;

  // Introspection (tests, benches, examples). Values are copies taken under
  // the machine's lock.
  std::size_t blockedCount() const;
  /// Stall-watchdog probe: blocked-guard count, the monotonic stamp of the
  /// oldest blocked statement, and the cumulative wake-probe count.
  obs::BlockedGuardsProbe blockedInfo() const;
  std::size_t spaceCount() const;
  std::size_t tupleCount(TsHandle ts) const;
  std::vector<Tuple> spaceContents(TsHandle ts) const;
  bool monitored(TsHandle ts) const;
  /// Byte-identical across replicas with equal state (determinism checks).
  Bytes stateDigestBytes() const;

  /// Lock-free (common case) non-destructive read: a shared snapshot of the
  /// oldest tuple matching `p` in `ts`, or nullptr when nothing matches.
  /// Linearizes against the apply stream: the result is some state that
  /// existed between the call's start and end.
  ///
  /// Fast path: a per-(space, signature, name) slot published by earlier
  /// readers holds the chain-front tuple stamped with the state version; if
  /// the version still matches (no mutation since publication) and the probe
  /// matches the front, the read completes with TWO atomic loads and no lock
  /// (ftl_rd_lockfree_hit). Otherwise a reader-shared lock is taken, the
  /// store probed cache-write-free, and — for classes the storage plan marks
  /// read-mostly — a fresh slot published (ftl_rd_lockfree_fallback).
  ///
  /// The returned tuple is an immutable shared copy: safe to hold across
  /// any later mutation of the machine.
  std::shared_ptr<const Tuple> readSnapshot(TsHandle ts, const Pattern& p) const;

 private:
  /// Wait-index key: a blocked guard waits on (space, pattern signature); a
  /// deposit dirties (space, tuple signature). Strict signature matching
  /// (signature.hpp) guarantees a pattern only ever matches tuples with an
  /// equal key, so filtering by key can never miss a wake (hash collisions
  /// cause spurious probes, which are harmless).
  using WaitKey = std::pair<TsHandle, tuple::SignatureKey>;

  struct BlockedAgs {
    std::uint64_t order = 0;  // gseq at arrival: deterministic wake order
    net::HostId origin = net::kNoHost;
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;  // observability only; NOT snapshotted
    std::int64_t blocked_ns = 0;  // monotonic stamp at queueing; NOT snapshotted
    Ags ags;
    std::vector<WaitKey> keys;  // sorted unique guard keys (index postings)
  };

  static std::vector<WaitKey> guardWaitKeys(const Ags& ags);

  void applyCommandLocked(const rsm::ApplyContext& ctx, Command&& cmd);
  void insertBlockedLocked(BlockedAgs b);
  /// Remove one blocked statement and its index postings.
  std::map<std::uint64_t, BlockedAgs>::iterator eraseBlockedLocked(
      std::map<std::uint64_t, BlockedAgs>::iterator it);
  /// Retry blocked statements whose guard keys intersect `dirty` (or all of
  /// them when `wake_all`), oldest first, to fixpoint: a woken body's own
  /// deposits extend the candidate set.
  void retryBlockedLocked(const std::vector<WaitKey>& dirty, bool wake_all);
  void emitLocked(net::HostId origin, std::uint64_t request_id, const Reply& reply);
  void countLocked(const Ags& ags, const ExecResult& res, bool woken);

  /// True while NO blocked statement has ever waited on a class the plan
  /// marks no-blocking-consumers; once false, wake filtering is disabled
  /// for the life of the plan (reset by setPlan/restore).
  bool planWakeFilterUsable() const { return plan_ != nullptr && plan_wake_ok_; }

  /// One published lock-free read slot: the front (oldest) tuple of the
  /// (ts, sig, name) chain as of state version `version`. Immutable after
  /// publication; replaced wholesale (atomic shared_ptr swap).
  struct RdSlot {
    TsHandle ts = 0;
    tuple::SignatureKey sig = 0;
    std::string name;
    std::shared_ptr<const Tuple> front;  // never null in a published slot
    std::uint64_t version = 0;           // state_version_ at publication (even)
  };
  static constexpr std::size_t kRdSlots = 64;
  static std::size_t slotIndex(TsHandle ts, tuple::SignatureKey sig) {
    return static_cast<std::size_t>((static_cast<std::uint64_t>(ts) * 0x9e3779b97f4a7c15ULL) ^
                                    sig) %
           kRdSlots;
  }

  /// RAII write epoch: state_version_ is ODD while any mutation is in
  /// progress and even otherwise, so a published slot (always stamped even,
  /// under the shared lock) validates iff the version is EQUAL — covering
  /// both "a write completed since" and "a write is in flight".
  class WriteEpoch {
   public:
    explicit WriteEpoch(std::atomic<std::uint64_t>& v) : v_(v) {
      v_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~WriteEpoch() { v_.fetch_add(1, std::memory_order_acq_rel); }
    WriteEpoch(const WriteEpoch&) = delete;
    WriteEpoch& operator=(const WriteEpoch&) = delete;

   private:
    std::atomic<std::uint64_t>& v_;
  };

  // Reader-writer lock: apply/membership/restore take it unique; the
  // introspection accessors and the readSnapshot fallback take it shared,
  // so read-side probes never serialize behind each other — only behind
  // actual mutations.
  mutable std::shared_mutex mutex_;
  ReplySink sink_;
  std::vector<ReplySink> extra_sinks_;
  std::vector<std::function<void()>> flush_sinks_;  // see addApplyFlushSink
  ts::TsRegistry reg_{/*with_main=*/true};
  std::map<std::uint64_t, BlockedAgs> blocked_;          // order -> statement
  std::map<WaitKey, std::vector<std::uint64_t>> wait_index_;  // key -> orders
  std::vector<TsHandle> monitored_;       // sorted; failure-notify targets
  Metrics metrics_;                       // NOT part of snapshots (local)
  BatchStats batch_stats_;                // local-only (see accessor)
  net::HostId self_ = net::kNoHost;       // observability only (setSelf)
  std::uint32_t apply_sample_ = 0;        // 1-in-16 stage-timing sampler
  std::uint64_t obs_token_ = 0;           // obs::registerSource token
  std::shared_ptr<const ts::StoragePlan> plan_;
  bool plan_wake_ok_ = true;              // see planWakeFilterUsable()

  /// Seqlock-style state version (see WriteEpoch). Bumped on entry AND exit
  /// of every mutating section; readers validate published slots against it
  /// without taking any lock.
  mutable std::atomic<std::uint64_t> state_version_{0};
  /// Lock-free read slots, indexed by slotIndex(ts, sig). Collisions just
  /// evict (last publisher wins) — the slot is a cache, never authoritative.
  mutable std::array<std::atomic<std::shared_ptr<const RdSlot>>, kRdSlots> rd_slots_{};
};

}  // namespace ftl::ftlinda

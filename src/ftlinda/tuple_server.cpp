#include "ftlinda/tuple_server.hpp"

#include "common/clock.hpp"
#include "common/logging.hpp"
#include "ftlinda/verify.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {

namespace {

Bytes encodeRpcReply(std::uint64_t client_rid, const Reply& reply) {
  Writer w;
  w.u64(client_rid);
  w.bytes(reply.encode());
  return w.take();
}

struct RpcMetrics {
  obs::Counter& requests = obs::counter("ftl_rpc_requests");
  obs::Counter& rejected = obs::counter("ftl_rpc_rejected");
  obs::Counter& replies = obs::counter("ftl_rpc_replies");
  obs::Counter& reply_batches = obs::counter("ftl_rpc_reply_batches");
  obs::Histogram& reply_batch_size = obs::histogram("ftl_rpc_reply_batch_size");
  obs::Counter& stats_requests = obs::counter("ftl_rpc_stats_requests");
  obs::Counter& client_calls = obs::counter("ftl_rpc_client_calls");
  obs::Counter& replies_received = obs::counter("ftl_rpc_replies_received");
  obs::Histogram& client_rtt_ns = obs::histogram("ftl_rpc_client_rtt_ns");
  // Shared with the embedded runtime so ftl_ags_wait_ns covers both flavours.
  obs::Histogram& wait_ns = obs::histogram("ftl_ags_wait_ns");
};

RpcMetrics& rpcMetrics() {
  static RpcMetrics m;
  return m;
}

}  // namespace

TupleServer::TupleServer(net::Transport& net, rsm::Replica& replica, TsStateMachine& sm)
    : ep_(net.endpoint(replica.self())), host_(replica.self()), replica_(replica) {
  replica_.setForeignMessageHandler([this](const net::Message& m) {
    if (m.type == kRpcRequestType) onRpcRequest(m);
    if (m.type == kRpcStatsType) onStatsRequest(m);
    if (m.type == kRpcTraceType) onTraceRequest(m);
  });
  sm.addReplySink([this](net::HostId origin, std::uint64_t rid, const Reply& reply) {
    onReply(origin, rid, reply);
  });
  // Replies stage into per-client ReplyBatch frames under the sm lock and
  // go out here, once per apply batch, after the lock is released.
  sm.addApplyFlushSink([this] { flushReplyBatches(); });
  // Origin-side observability (the "ags.order" close, apply span, stage
  // histograms) keys on the state machine knowing which host it serves.
  // With an embedded Runtime, attach() sets this to the same id; a pure
  // server process (ftl-node) has no Runtime, so set it here too.
  sm.setSelf(replica.self());
}

std::size_t TupleServer::pendingForwards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return forwards_.size();
}

void TupleServer::onStatsRequest(const net::Message& m) {
  rpcMetrics().stats_requests.inc();
  Reader r(m.payload);
  const std::uint64_t client_rid = r.u64();
  const std::string json = obs::dumpJson();
  Writer w;
  w.u64(client_rid);
  w.bytes(Bytes(json.begin(), json.end()));
  ep_.send(m.src, kRpcStatsReplyType, w.take());
}

void TupleServer::onTraceRequest(const net::Message& m) {
  static obs::Counter& trace_requests = obs::counter("ftl_rpc_trace_requests");
  trace_requests.inc();
  Reader r(m.payload);
  const std::uint64_t client_rid = r.u64();
  const std::uint8_t mode = r.u8();
  if (mode == 0) {
    Writer w;
    w.u64(client_rid);
    w.i64(nowNanos());
    w.u8(0);
    ep_.send(m.src, kRpcTraceReplyType, w.take());
    return;
  }
  // A busy host's span blob easily exceeds one UDP datagram (65000 bytes),
  // so mode-1 replies ship as a numbered chunk series the client
  // reassembles; every chunk repeats rid/server_now so any of them can
  // serve as the clock sample.
  const Bytes blob = obs::assemble::encode(obs::assemble::captureLocal(host_));
  constexpr std::size_t kChunkBytes = 48 * 1024;
  const std::uint32_t chunks =
      blob.empty() ? 1
                   : static_cast<std::uint32_t>((blob.size() + kChunkBytes - 1) / kChunkBytes);
  for (std::uint32_t i = 0; i < chunks; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * kChunkBytes;
    const std::size_t len = std::min(kChunkBytes, blob.size() - off);
    Writer w;
    w.u64(client_rid);
    w.i64(nowNanos());
    w.u8(1);
    w.u32(i);
    w.u32(chunks);
    w.bytes(BytesView(blob.data() + off, len));
    ep_.send(m.src, kRpcTraceReplyType, w.take());
  }
}

void TupleServer::onRpcRequest(const net::Message& m) {
  rpcMetrics().requests.inc();
  const CommandHeader hdr = CommandHeader::peek(m.payload);
  const std::uint64_t client_rid = hdr.request_id;
  // Defensive re-verification at the trust boundary: the client library ran
  // the same pass, but RPC clients are not part of the replica group, so a
  // malformed statement is refused HERE with a direct error reply rather
  // than multicast to every replica. The view verifier runs straight over
  // the client's encoded bytes — the command is never decoded on this path
  // (a malformed encoding fails verification instead of throwing).
  if (hdr.kind == CommandKind::ExecuteAgs) {
    VerifyResult vr = verifyEncoded(BytesView(m.payload.data() + kCommandHeaderBytes,
                                              m.payload.size() - kCommandHeaderBytes));
    if (!vr.ok()) {
      rpcMetrics().rejected.inc();
      Reply reject;
      reject.error = "AGS rejected by verifier: " + vr.toString();
      ep_.send(m.src, kRpcReplyType, encodeRpcReply(client_rid, reject));
      return;
    }
  }
  const std::uint64_t server_rid = next_rid_.fetch_add(1);
  const std::uint64_t trace_id = hdr.trace_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    forwards_[server_rid] = {m.src, client_rid, trace_id};
  }
  // "This handler immediately submits it to Consul's multicast service as
  // before" — the request enters the total order exactly like a local one.
  // The client's trace id rides along so the ordering stages correlate.
  // This server is the ORIGIN of the ordering path for its RPC clients, so
  // when tracing it emits the same critical-path stages the embedded
  // Runtime does: "ags" bounds the server-side e2e, "ags.issue" the rid
  // rewrite up to the ordering handoff, and "ags.order" begins here (the
  // state machine closes it at apply, origin-side).
  const bool traced = obs::trace::enabled() && trace_id != 0;
  std::int64_t i0 = 0;
  if (traced) {
    obs::trace::asyncBegin("ags", trace_id);
    i0 = nowNanos();
  }
  // The client's buffer is already the wire form; the only difference on
  // the ordered path is the request id, which lives at a fixed offset —
  // patch it in place instead of decode + re-encode.
  Bytes payload = m.payload;
  for (int i = 0; i < 8; ++i) {
    payload[kCommandRidOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(server_rid >> (8 * i));
  }
  if (traced) {
    obs::trace::complete("ags.issue", trace_id, i0, nowNanos() - i0);
    obs::trace::asyncBegin("ags.order", trace_id);
  }
  replica_.submit(std::move(payload), trace_id);
}

void TupleServer::onReply(net::HostId origin, std::uint64_t rid, const Reply& reply) {
  if (origin != host_ || (rid & kServerRidBit) == 0) return;
  Forward dest;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = forwards_.find(rid);
    if (it == forwards_.end()) return;
    dest = it->second;
    forwards_.erase(it);
  }
  rpcMetrics().replies.inc();
  // "ags.reply" here is the reply-encode/stage leg; together with the
  // "ags" end it lets the critical-path analyzer tile the server-side e2e
  // of a proxied statement just like an embedded one. The encoded record
  // leaves the host when flushReplyBatches() sends the client's frame.
  const bool traced = obs::trace::enabled() && dest.trace_id != 0;
  const std::int64_t r0 = traced ? nowNanos() : 0;
  std::optional<Bytes> overflow;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Writer& w = staged_[dest.client];
    w.u64(dest.client_rid);
    reply.encodeInto(w);
    // Keep frames under the datagram ceiling: an oversize frame departs
    // immediately, mid-batch, and staging restarts empty for this client.
    if (w.size() >= kReplyBatchFlushBytes) {
      overflow = w.take();
      staged_.erase(dest.client);
    }
  }
  if (overflow) {
    rpcMetrics().reply_batches.inc();
    ep_.send(dest.client, kRpcReplyBatchType, std::move(*overflow));
  }
  if (traced) {
    obs::trace::complete("ags.reply", dest.trace_id, r0, nowNanos() - r0);
    obs::trace::asyncEnd("ags", dest.trace_id);
  }
}

void TupleServer::flushReplyBatches() {
  std::map<net::HostId, Writer> staged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (staged_.empty()) return;
    staged.swap(staged_);
  }
  RpcMetrics& rm = rpcMetrics();
  for (auto& [client, w] : staged) {
    rm.reply_batches.inc();
    rm.reply_batch_size.observe(w.size());
    ep_.send(client, kRpcReplyBatchType, w.take());
  }
}

RemoteRuntime::RemoteRuntime(net::Transport& net, net::HostId host, net::HostId server)
    : net_(net), ep_(net.endpoint(host)), host_(host), server_(server) {}

RemoteRuntime::~RemoteRuntime() { shutdown(); }

void RemoteRuntime::start() {
  recv_ = std::thread([this] { recvLoop(); });
}

void RemoteRuntime::stop() { stop_requested_.store(true); }

void RemoteRuntime::shutdown() {
  stop();
  if (recv_.joinable()) recv_.join();
}

void RemoteRuntime::markCrashed() {
  crashed_.store(true);
  scratch_.interrupt();
  failAllPending(/*processor_failure=*/true);
}

void RemoteRuntime::failAllPending(bool processor_failure) {
  std::vector<std::shared_ptr<AgsFutureState>> sts;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& [rid, ent] : pending_) sts.push_back(ent.st);
    pending_.clear();
  }
  for (auto& st : sts) {
    if (processor_failure) {
      detail::failFutureProcessor(st);
    } else {
      detail::failFutureEnv(st, "tuple server unreachable");
    }
  }
  window_cv_.notify_all();
}

void RemoteRuntime::setPipelineWindow(std::size_t window) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pipeline_window_ = window == 0 ? 1 : window;
  window_cv_.notify_all();
}

std::size_t RemoteRuntime::pipelineWindow() const {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  return pipeline_window_;
}

void RemoteRuntime::recvLoop() {
  obs::trace::setThreadName("rpc-client/" + std::to_string(host_));
  while (!stop_requested_.load()) {
    auto m = ep_.recvFor(Micros{5'000});
    if (!m) {
      if (net_.isCrashed(host_)) return;
      // A dead tuple server can never answer the outstanding window; fail
      // the futures now instead of leaving pipelined issuers blocked.
      if (net_.isCrashed(server_)) failAllPending(/*processor_failure=*/false);
      continue;
    }
    if (m->type == kRpcStatsReplyType) {
      Reader r(m->payload);
      const std::uint64_t rid = r.u64();
      const Bytes raw = r.bytes();
      std::shared_ptr<StatsSlot> slot;
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        auto it = stats_pending_.find(rid);
        if (it == stats_pending_.end()) continue;
        slot = it->second;
        stats_pending_.erase(it);
      }
      {
        std::lock_guard<std::mutex> lock(slot->m);
        slot->json = std::string(raw.begin(), raw.end());
      }
      slot->cv.notify_all();
      continue;
    }
    if (m->type == kRpcTraceReplyType) {
      const std::int64_t t1 = nowNanos();
      Reader r(m->payload);
      const std::uint64_t rid = r.u64();
      const std::int64_t server_ns = r.i64();
      const std::uint8_t has_spans = r.u8();
      std::shared_ptr<TraceSlot> slot;
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        auto it = trace_pending_.find(rid);
        if (it == trace_pending_.end()) continue;
        slot = it->second;
      }
      bool complete = false;
      if (has_spans == 0) {
        std::lock_guard<std::mutex> lock(slot->m);
        slot->t1_ns = t1;
        slot->server_ns = server_ns;
        slot->done = true;
        complete = true;
      } else {
        const std::uint32_t idx = r.u32();
        const std::uint32_t count = r.u32();
        Bytes chunk = r.bytes();
        std::lock_guard<std::mutex> lock(slot->m);
        // First chunk of a series — or of a resent series with a different
        // shape — (re)initializes the reassembly buffer.
        if (slot->chunk_count != count) {
          slot->chunk_count = count;
          slot->chunks.assign(count, Bytes{});
          slot->chunks_received = 0;
        }
        if (idx < count && slot->chunks[idx].empty()) {
          slot->chunks[idx] = std::move(chunk);
          ++slot->chunks_received;
        }
        if (slot->chunks_received == slot->chunk_count) {
          slot->blob.clear();
          for (const Bytes& c : slot->chunks) slot->blob.insert(slot->blob.end(), c.begin(), c.end());
          slot->t1_ns = t1;
          slot->server_ns = server_ns;
          slot->done = true;
          complete = true;
        }
      }
      if (complete) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        trace_pending_.erase(rid);
      }
      slot->cv.notify_all();
      continue;
    }
    if (m->type == kRpcReplyBatchType) {
      // One frame, many completions: walk the tiled {rid, Reply} records to
      // the end of the payload, decoding each straight off the datagram.
      Reader r(m->payload);
      try {
        while (!r.atEnd()) {
          const std::uint64_t rid = r.u64();
          completeRpc(rid, Reply::decode(r));
        }
      } catch (const Error&) {
        // Truncated or corrupt frame: records decoded before the bad byte
        // already settled their futures; the rest are indistinguishable
        // from a lost datagram (their futures fail on server death, like
        // any other drop). Never let a malformed frame kill the receive
        // thread.
      }
      continue;
    }
    if (m->type != kRpcReplyType) continue;
    Reader r(m->payload);
    const std::uint64_t rid = r.u64();
    // View decode: the blob slice borrows the datagram, the Reply owns its
    // fields — no intermediate owning copy of the encoded bytes.
    completeRpc(rid, Reply::decode(r.readBlobView()));
  }
}

void RemoteRuntime::completeRpc(std::uint64_t rid, Reply&& reply) {
  PendingRpc ent;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    auto it = pending_.find(rid);
    if (it == pending_.end()) return;
    ent = std::move(it->second);
    pending_.erase(it);
  }
  window_cv_.notify_all();  // a pipeline slot just freed up
  RpcMetrics& rm = rpcMetrics();
  rm.replies_received.inc();
  const std::int64_t dt = nowNanos() - ent.t0_ns;
  rm.client_rtt_ns.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
  obs::trace::asyncEnd("ags.rpc", ent.trace_id);
  // Deposits land before the future settles (same contract as Runtime).
  scratch_.applyDeposits(reply.local_deposits);
  if (!reply.error.empty()) {
    detail::settleFuture(ent.st, Result<Reply>::failure("registry", reply.error));
  } else {
    detail::settleFuture(ent.st, Result<Reply>(std::move(reply)));
  }
}

AgsFuture RemoteRuntime::submitRpc(Command cmd) {
  RpcMetrics& rm = rpcMetrics();
  rm.client_calls.inc();
  auto st = std::make_shared<AgsFutureState>();
  st->host = host_;
  st->wait_hist = &rm.wait_ns;
  {
    // Window admission: block while pipeline_window_ RPCs are outstanding.
    // The 20ms poll mirrors the old synchronous wait — crash of this host or
    // the server must be able to unblock a full window.
    std::unique_lock<std::mutex> lock(pending_mutex_);
    for (;;) {
      if (window_cv_.wait_for(lock, Millis{20},
                              [&] { return pending_.size() < pipeline_window_; })) {
        break;
      }
      if (crashed_.load()) throw ProcessorFailure(host_);
      if (net_.isCrashed(server_)) throw Error("tuple server unreachable");
    }
    PendingRpc ent;
    ent.st = st;
    ent.t0_ns = nowNanos();
    ent.trace_id = cmd.trace_id;
    pending_.emplace(cmd.request_id, std::move(ent));
  }
  // Re-check after registering (same crash race as Runtime::submitCommand).
  if (crashed_.load()) {
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.erase(cmd.request_id);
    }
    throw ProcessorFailure(host_);
  }
  obs::trace::asyncBegin("ags.rpc", cmd.trace_id);
  ep_.send(server_, kRpcRequestType, cmd.encode());
  return AgsFuture::makePending(std::move(st));
}

std::string RemoteRuntime::serverStatsJson() {
  if (crashed_.load()) throw ProcessorFailure(host_);
  const std::uint64_t rid = next_rid_.fetch_add(1);
  auto slot = std::make_shared<StatsSlot>();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    stats_pending_.emplace(rid, slot);
  }
  Writer w;
  w.u64(rid);
  ep_.send(server_, kRpcStatsType, w.take());
  std::unique_lock<std::mutex> lock(slot->m);
  for (;;) {
    if (slot->cv.wait_for(lock, Millis{20}, [&] { return slot->json.has_value(); })) break;
    if (crashed_.load()) throw ProcessorFailure(host_);
    if (net_.isCrashed(server_)) {
      std::lock_guard<std::mutex> plock(pending_mutex_);
      stats_pending_.erase(rid);
      throw Error("tuple server unreachable");
    }
  }
  return std::move(*slot->json);
}

std::shared_ptr<RemoteRuntime::TraceSlot> RemoteRuntime::traceRequest(std::uint8_t mode,
                                                                      std::int64_t& t0_ns) {
  if (crashed_.load()) throw ProcessorFailure(host_);
  const std::uint64_t rid = next_rid_.fetch_add(1);
  auto slot = std::make_shared<TraceSlot>();
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    trace_pending_.emplace(rid, slot);
  }
  Writer w;
  w.u64(rid);
  w.u8(mode);
  const Bytes request = w.take();
  t0_ns = nowNanos();
  ep_.send(server_, kRpcTraceType, request);
  std::unique_lock<std::mutex> lock(slot->m);
  int ticks = 0;
  for (;;) {
    if (slot->cv.wait_for(lock, Millis{20}, [&] { return slot->done; })) break;
    if (crashed_.load()) throw ProcessorFailure(host_);
    if (net_.isCrashed(server_)) {
      std::lock_guard<std::mutex> plock(pending_mutex_);
      trace_pending_.erase(rid);
      throw Error("tuple server unreachable");
    }
    // A lost datagram (request or any reply chunk) would wedge the wait;
    // periodically restart the exchange from scratch. Discarding partial
    // chunks avoids stitching two different server captures together.
    if (++ticks % 25 == 0) {
      slot->chunk_count = 0;
      slot->chunks.clear();
      slot->chunks_received = 0;
      t0_ns = nowNanos();
      ep_.send(server_, kRpcTraceType, request);
    }
  }
  return slot;
}

obs::assemble::PingSample RemoteRuntime::serverClockPing() {
  std::int64_t t0 = 0;
  auto slot = traceRequest(/*mode=*/0, t0);
  obs::assemble::PingSample s;
  s.t0_ns = t0;
  s.t1_ns = slot->t1_ns;
  s.server_ns = slot->server_ns;
  return s;
}

obs::assemble::HostSpans RemoteRuntime::serverTraceSpans() {
  std::int64_t t0 = 0;
  auto slot = traceRequest(/*mode=*/1, t0);
  Reader r(slot->blob);
  return obs::assemble::decode(r);
}

AgsFuture RemoteRuntime::executeAsync(const Ags& ags) {
  if (crashed_.load()) throw ProcessorFailure(host_);
  // Same submission-time gate as Runtime::executeAsync: a malformed statement
  // never reaches the wire (here: the RPC to the tuple server).
  if (VerifyResult vr = verify(ags); !vr.ok()) {
    return AgsFuture::makeReady(verifyApiError(vr));
  }
  if (entirelyLocalAgs(ags)) {
    // Local scratch statements keep their blocking semantics, so this path
    // executes inline; only the RPC path pipelines.
    Reply r;
    try {
      r = scratch_.execute(ags, [this] { return crashed_.load(); });
    } catch (const Error&) {
      if (crashed_.load()) throw ProcessorFailure(host_);
      throw;
    }
    if (!r.error.empty()) {
      return AgsFuture::makeReady(Result<Reply>::failure("registry", r.error));
    }
    return AgsFuture::makeReady(std::move(r));
  }
  const std::uint64_t rid = next_rid_.fetch_add(1);
  return submitRpc(makeExecute(rid, ags, makeTraceId(host_, rid)));
}

TsHandle RemoteRuntime::createTs(TsAttributes attrs) {
  if (!attrs.stable) return scratch_.create(attrs);
  Reply r = requireReply(tryExecute(AgsBuilder().when(guardTrue()).then(opCreateTs(attrs)).build()));
  FTL_ENSURE(r.created.size() == 1, "create_TS reply carries no handle");
  return r.created.front();
}

void RemoteRuntime::destroyTs(TsHandle ts) {
  if (ts::isLocalHandle(ts)) {
    scratch_.destroy(ts);
    return;
  }
  requireReply(tryExecute(AgsBuilder().when(guardTrue()).then(opDestroyTs(ts)).build()));
}

void RemoteRuntime::doMonitorFailures(TsHandle ts, bool enable) {
  FTL_REQUIRE(!ts::isLocalHandle(ts), "only stable spaces receive failure tuples");
  if (crashed_.load()) throw ProcessorFailure(host_);
  const std::uint64_t rid = next_rid_.fetch_add(1);
  Command cmd = makeMonitor(rid, ts, enable);
  cmd.trace_id = makeTraceId(host_, rid);
  (void)submitRpc(std::move(cmd)).get();
}

}  // namespace ftl::ftlinda

// Tuple-server configuration (paper §6, Figure 17).
//
// In the default configuration every processor hosts a TS replica. The
// paper's alternative dedicates a subset of machines as TUPLE SERVERS:
// application hosts run no replica; instead their FT-Linda library forwards
// each AGS with an RPC to a request-handler process on a tuple server,
// which "immediately submits it to Consul's multicast service as before"
// and returns the reply when its replica produces it.
//
//   client host                    tuple server host
//   ┌────────────────┐   RPC req   ┌──────────────────────────────┐
//   │ RemoteRuntime  │ ──────────► │ TupleServer (request handler)│
//   │ (scratch only) │ ◄────────── │   └► Replica/Consul (ordered)│
//   └────────────────┘   RPC reply └──────────────────────────────┘
//
// Costs one extra network round trip per AGS relative to the embedded
// configuration (quantified by bench_e10_tuple_server) but frees
// application hosts from replica work — the trade the paper discusses.
//
// Known limitations of this configuration (documented trade-offs):
//  - client hosts are NOT members of the replica group, so their crashes
//    are invisible to the membership service: no failure tuples for them,
//    and statements they left blocked at the replicas stay queued (the
//    paper's failure-handling idioms assume workers run on replica hosts);
//  - a client is bound to one tuple server; if that server dies the client
//    gets an error rather than failing over (automatic failover would need
//    client-level request ids threaded through the order for dedup).
#pragma once

#include <map>
#include <memory>

#include "ftlinda/runtime.hpp"
#include "obs/assemble.hpp"

namespace ftl::ftlinda {

/// Message types used by the RPC path (must be >= ConsulNode's
/// kForeignTypeBase so the protocol demultiplexer hands them over).
constexpr std::uint16_t kRpcRequestType = 40;
constexpr std::uint16_t kRpcReplyType = 41;
/// Observability: a client asks the server for its obs::dumpJson() snapshot
/// (metrics of the server process: consul, state machine, network, RPC).
constexpr std::uint16_t kRpcStatsType = 42;
constexpr std::uint16_t kRpcStatsReplyType = 43;
/// Observability: trace-dump RPC (docs/OBSERVABILITY.md "Trace-dump RPC").
/// Request payload: u64 client_rid, u8 mode (0 = clock ping only, 1 = also
/// ship the tracer rings). Reply payload: u64 client_rid, i64 server_now_ns
/// (the server's monotonic clock at handling time, for NTP-style offset
/// estimation), u8 has_spans; mode-1 replies then carry u32 chunk_index,
/// u32 chunk_count, and a bytes slice of one assemble::encode(HostSpans)
/// blob — span blobs outgrow a UDP datagram, so the blob ships as a chunk
/// series the client reassembles (and re-requests wholesale on loss).
constexpr std::uint16_t kRpcTraceType = 44;
constexpr std::uint16_t kRpcTraceReplyType = 45;
/// Batched reply frame (PROTOCOL.md "ReplyBatch"): concatenated records of
/// {u64 client_rid, Reply wire form}, walked record-by-record to the end of
/// the payload — no count prefix, the frame length delimits it. The server
/// stages every reply produced by one apply batch per destination client
/// and flushes one frame per client when the batch ends (or inline at the
/// datagram-safe cap), so N completions cost one send instead of N. The
/// unbatched kRpcReplyType remains the vehicle for verifier rejects (which
/// never enter the ordered path) and as the compatibility single-reply form.
constexpr std::uint16_t kRpcReplyBatchType = 46;

/// Flush threshold for a staged ReplyBatch frame: stay under the UDP
/// datagram ceiling (~65000 bytes) with the same margin the trace-dump
/// chunking uses.
constexpr std::size_t kReplyBatchFlushBytes = 48 * 1024;

/// Request ids the server allocates carry this bit so they can never
/// collide with the co-located embedded Runtime's ids.
constexpr std::uint64_t kServerRidBit = 1ull << 62;

/// The request-handler side, co-located with a replica. Construct after the
/// Replica (it registers the foreign-message handler) and BEFORE
/// Replica::start().
class TupleServer {
 public:
  TupleServer(net::Transport& net, rsm::Replica& replica, TsStateMachine& sm);

  TupleServer(const TupleServer&) = delete;
  TupleServer& operator=(const TupleServer&) = delete;

  net::HostId host() const { return host_; }

  /// RPC requests currently awaiting their ordered reply (introspection).
  std::size_t pendingForwards() const;

 private:
  void onRpcRequest(const net::Message& m);
  void onStatsRequest(const net::Message& m);
  void onTraceRequest(const net::Message& m);
  void onReply(net::HostId origin, std::uint64_t rid, const Reply& reply);
  /// Send every staged ReplyBatch frame (one per destination client).
  /// Invoked by the state machine's apply-flush hook once the batch's lock
  /// is released — reply sends happen off the apply critical path.
  void flushReplyBatches();

  /// Where a proxied command's ordered reply goes back to, plus the client's
  /// trace id so the server — the ORIGIN of the ordering path for RPC
  /// clients — can close the reply/e2e trace spans it opened at receipt.
  struct Forward {
    net::HostId client = net::kNoHost;
    std::uint64_t client_rid = 0;
    std::uint64_t trace_id = 0;
  };

  net::Endpoint ep_;
  const net::HostId host_;
  rsm::Replica& replica_;
  std::atomic<std::uint64_t> next_rid_{kServerRidBit | 1};
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Forward> forwards_;
  /// Per-client ReplyBatch frames under construction for the current apply
  /// batch (guarded by mutex_; filled by onReply, drained by
  /// flushReplyBatches).
  std::map<net::HostId, Writer> staged_;
};

/// The client-side FT-Linda library for hosts that run no replica. Same
/// LindaApi as the embedded Runtime; stable-space statements travel by RPC,
/// volatile scratch spaces live locally as usual.
class RemoteRuntime : public LindaApi {
 public:
  RemoteRuntime(net::Transport& net, net::HostId host, net::HostId server);
  ~RemoteRuntime() override;

  RemoteRuntime(const RemoteRuntime&) = delete;
  RemoteRuntime& operator=(const RemoteRuntime&) = delete;

  void start();
  void stop();
  /// stop() and join the receive thread (must precede endpoint reuse after
  /// recovery).
  void shutdown();

  net::HostId host() const override { return host_; }
  net::HostId server() const { return server_; }

  /// Submit an AGS over the RPC channel and return a future (blocking
  /// semantics preserved end-to-end: a blocked statement waits at the
  /// replicas; the RPC reply arrives when it fires). The connection runs a
  /// WINDOWED PIPELINE: up to pipelineWindow() RPCs stay outstanding, each
  /// tagged by request id and demultiplexed by the receive thread; when the
  /// window is full, executeAsync() blocks until a reply frees a slot.
  /// Throws ProcessorFailure if this host crashes, ftl::Error if the tuple
  /// server becomes unreachable.
  AgsFuture executeAsync(const Ags& ags) override;

  /// Cap on outstanding RPCs (default 64). 1 degenerates to the synchronous
  /// one-at-a-time behaviour.
  void setPipelineWindow(std::size_t window);
  std::size_t pipelineWindow() const;

  TsHandle createTs(TsAttributes attrs) override;
  void destroyTs(TsHandle ts) override;

  void markCrashed();
  bool crashed() const override { return crashed_.load(); }
  std::size_t localTupleCount(TsHandle ts) const override { return scratch_.tupleCount(ts); }

  /// Fetch the tuple server's obs::dumpJson() metrics snapshot over the RPC
  /// channel (the "stats" request type). Blocks like an AGS; throws
  /// ftl::Error if the server is unreachable.
  std::string serverStatsJson();

  /// One clock-ping exchange over the trace-dump RPC: t0/t1 stamped on this
  /// host's clock around the round trip, server_ns the server's clock at
  /// handling time. Feed several into assemble::estimateOffset().
  obs::assemble::PingSample serverClockPing();

  /// Fetch the server's tracer rings as a HostSpans blob (offset_ns left 0
  /// for the caller to fill in from clock pings).
  obs::assemble::HostSpans serverTraceSpans();

 protected:
  void doMonitorFailures(TsHandle ts, bool enable) override;

 private:
  struct PendingRpc {
    std::shared_ptr<AgsFutureState> st;
    std::int64_t t0_ns = 0;       // client-side RTT measurement
    std::uint64_t trace_id = 0;
  };
  struct StatsSlot {
    std::mutex m;
    std::condition_variable cv;
    std::optional<std::string> json;
  };
  struct TraceSlot {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::int64_t t1_ns = 0;       // receive stamp (recv thread's clock read)
    std::int64_t server_ns = 0;
    Bytes blob;                   // assemble::encode() payload (mode 1)
    // Mode-1 chunk reassembly (recv thread, under m): the server splits a
    // span blob across datagrams; blob is stitched when all chunks land.
    std::uint32_t chunk_count = 0;
    std::uint32_t chunks_received = 0;
    std::vector<Bytes> chunks;
  };

  /// Admit into the pipeline window (may block), send, return the future.
  AgsFuture submitRpc(Command cmd);
  /// Settle one RPC future off an incoming reply (single frame or one
  /// record of a ReplyBatch frame). Unknown rids are ignored (stale reply
  /// after a crash).
  void completeRpc(std::uint64_t rid, Reply&& reply);
  /// Send a trace-dump request and wait for its slot; returns the filled
  /// slot plus the send stamp t0.
  std::shared_ptr<TraceSlot> traceRequest(std::uint8_t mode, std::int64_t& t0_ns);
  void recvLoop();
  /// Fail every outstanding RPC future (crash or unreachable server).
  void failAllPending(bool processor_failure);

  net::Transport& net_;
  net::Endpoint ep_;
  const net::HostId host_;
  const net::HostId server_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> next_rid_{freshRidBase() + 1};
  mutable std::mutex pending_mutex_;
  std::condition_variable window_cv_;  // signalled when the window drains
  std::size_t pipeline_window_ = 64;
  std::map<std::uint64_t, PendingRpc> pending_;
  std::map<std::uint64_t, std::shared_ptr<StatsSlot>> stats_pending_;
  std::map<std::uint64_t, std::shared_ptr<TraceSlot>> trace_pending_;
  ScratchSpaces scratch_;
  std::thread recv_;
};

}  // namespace ftl::ftlinda

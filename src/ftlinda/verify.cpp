#include "ftlinda/verify.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace ftl::ftlinda {

namespace {

using tuple::PatternField;

constexpr std::uint8_t kMaxGuardKind = static_cast<std::uint8_t>(Guard::Kind::Rdp);
constexpr std::uint8_t kMaxOpCode = static_cast<std::uint8_t>(OpCode::DestroyTs);
constexpr std::uint8_t kMaxArithOp = static_cast<std::uint8_t>(ArithOp::Mul);
constexpr std::uint8_t kMaxValueType = static_cast<std::uint8_t>(ValueType::Blob);

const char* arithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::Add: return "+";
    case ArithOp::Sub: return "-";
    case ArithOp::Mul: return "*";
  }
  return "?";
}

/// Collects diagnostics while walking one statement.
class Checker {
 public:
  Checker(const VerifyLimits& limits, VerifyResult& out) : limits_(limits), out_(out) {}

  void statement(const Ags& ags) {
    if (ags.branches.empty()) {
      add(Severity::Error, RuleId::NoBranches, "AGS has no branches");
      return;
    }
    if (ags.branches.size() > limits_.max_branches) {
      std::ostringstream os;
      os << ags.branches.size() << " branches exceed the limit of " << limits_.max_branches;
      add(Severity::Error, RuleId::TooManyBranches, os.str());
    }
    bool saw_true_guard = false;
    for (std::size_t i = 0; i < ags.branches.size(); ++i) {
      branch_ = static_cast<std::int32_t>(i);
      op_ = -1;
      field_ = -1;
      if (saw_true_guard) {
        add(Severity::Warning, RuleId::UnreachableBranch,
            "unreachable: an earlier branch has guard `true`, which always fires first");
        saw_true_guard = false;  // one warning marks the rest
      }
      // A guard that repeats an earlier branch's (ts, pattern) is dead: all
      // four guard kinds fire exactly when a match exists, and branches are
      // tried in order, so the earlier branch always wins.
      const Guard& g = ags.branches[i].guard;
      if (g.kind != Guard::Kind::True) {
        for (std::size_t e = 0; e < i; ++e) {
          const Guard& prev = ags.branches[e].guard;
          if (prev.kind == Guard::Kind::True || prev.ts != g.ts || !(prev.pattern == g.pattern))
            continue;
          std::ostringstream os;
          os << "dead branch: guard matches exactly when branch " << e
             << "'s guard does, and earlier branches fire first";
          add(Severity::Warning, RuleId::DuplicateGuard, os.str());
          break;
        }
      }
      branch(ags.branches[i]);
      if (ags.branches[i].guard.kind == Guard::Kind::True) saw_true_guard = true;
    }
  }

 private:
  void add(Severity sev, RuleId id, std::string msg) {
    Diagnostic d;
    d.severity = sev;
    d.branch = branch_;
    d.op_index = op_;
    d.field_index = field_;
    d.rule_id = id;
    d.message = std::move(msg);
    out_.diagnostics.push_back(std::move(d));
  }

  void branch(const Branch& b) {
    current_guard_ = &b.guard;
    const std::size_t formals = guard(b.guard);
    if (b.body.size() > limits_.max_body_ops) {
      std::ostringstream os;
      os << b.body.size() << " body operations exceed the limit of " << limits_.max_body_ops;
      add(Severity::Error, RuleId::BodyTooLong, os.str());
    }
    // Handles destroyed so far in this body: any later reference is a
    // deterministic error at execution time, so flag it statically.
    std::vector<TsHandle> destroyed;
    const auto dead = [&](TsHandle h) {
      return std::find(destroyed.begin(), destroyed.end(), h) != destroyed.end();
    };
    for (std::size_t j = 0; j < b.body.size(); ++j) {
      op_ = static_cast<std::int32_t>(j);
      field_ = -1;
      const BodyOp& op = b.body[j];
      if (static_cast<std::uint8_t>(op.op) > kMaxOpCode) {
        std::ostringstream os;
        os << "opcode byte " << static_cast<unsigned>(op.op)
           << " is outside the body-operation set";
        add(Severity::Error, RuleId::BadOpCode, os.str());
        continue;  // nothing else is interpretable
      }
      switch (op.op) {
        case OpCode::Out:
          checkDead(dead, op.ts, "out");
          tupleTemplate(op.tmpl, formals);
          break;
        case OpCode::Inp:
        case OpCode::Rdp:
          checkDead(dead, op.ts, opCodeName(op.op));
          patternTemplate(op.pattern, formals);
          break;
        case OpCode::Move:
        case OpCode::Copy: {
          const bool is_move = op.op == OpCode::Move;
          checkDead(dead, op.ts, "move/copy source");
          checkDead(dead, op.dst, "move/copy destination");
          if (op.ts == op.dst) {
            if (is_move) {
              add(Severity::Error, RuleId::MoveAliasedHandles,
                  "move with identical source and destination is a no-op that "
                  "reorders the space");
            } else {
              add(Severity::Warning, RuleId::CopyAliasedHandles,
                  "copy with identical source and destination duplicates every match");
            }
          }
          patternTemplate(op.pattern, formals);
          break;
        }
        case OpCode::CreateTs:
          break;
        case OpCode::DestroyTs:
          if (op.ts == ts::kTsMain) {
            add(Severity::Error, RuleId::DestroyTsMain, "destroy_TS targets TSmain");
          }
          checkDead(dead, op.ts, "destroy_TS");
          destroyed.push_back(op.ts);
          break;
      }
    }
    op_ = -1;
  }

  template <typename DeadFn>
  void checkDead(const DeadFn& dead, TsHandle h, const char* what) {
    if (!dead(h)) return;
    std::ostringstream os;
    os << what << " references a tuple space destroyed earlier in this body";
    add(Severity::Error, RuleId::UseAfterDestroy, os.str());
  }

  /// Checks the guard and returns the number of formals it binds (what the
  /// body may reference). A corrupt guard binds nothing.
  std::size_t guard(const Guard& g) {
    if (static_cast<std::uint8_t>(g.kind) > kMaxGuardKind) {
      std::ostringstream os;
      os << "guard kind byte " << static_cast<unsigned>(g.kind) << " is outside the guard set";
      add(Severity::Error, RuleId::BadGuardKind, os.str());
      return 0;
    }
    if (g.kind == Guard::Kind::True) return 0;
    if (g.pattern.arity() > limits_.max_fields) {
      std::ostringstream os;
      os << "guard pattern has " << g.pattern.arity() << " fields, limit "
         << limits_.max_fields;
      add(Severity::Error, RuleId::TooManyFields, os.str());
    }
    std::size_t formals = 0;
    const auto& fields = g.pattern.fields();
    for (std::size_t k = 0; k < fields.size(); ++k) {
      field_ = static_cast<std::int32_t>(k);
      const PatternField& f = fields[k];
      if (static_cast<std::uint8_t>(f.kind) > 1) {
        add(Severity::Error, RuleId::BadFieldKind, "guard pattern field kind is corrupt");
        continue;
      }
      if (f.kind == PatternField::Kind::Formal) {
        if (static_cast<std::uint8_t>(f.formal_type) > kMaxValueType) {
          add(Severity::Error, RuleId::BadValueType, "guard formal has a corrupt type byte");
        } else {
          ++formals;
        }
      }
    }
    field_ = -1;
    return formals;
  }

  /// Type of guard formal `i` (only valid when i < formal count). Looked up
  /// lazily: formals are numbered left-to-right across the guard pattern.
  ValueType formalType(const Guard& g, std::size_t i) const {
    std::size_t seen = 0;
    for (const auto& f : g.pattern.fields()) {
      if (f.kind != PatternField::Kind::Formal) continue;
      if (seen == i) return f.formal_type;
      ++seen;
    }
    return ValueType::Int;  // unreachable when callers bound-check first
  }

  void tupleTemplate(const TupleTemplate& t, std::size_t formals) {
    if (t.fields.size() > limits_.max_fields) {
      std::ostringstream os;
      os << "out template has " << t.fields.size() << " fields, limit " << limits_.max_fields;
      add(Severity::Error, RuleId::TooManyFields, os.str());
    }
    for (std::size_t k = 0; k < t.fields.size(); ++k) {
      field_ = static_cast<std::int32_t>(k);
      const TemplateField& f = t.fields[k];
      if (static_cast<std::uint8_t>(f.kind) > 2) {
        add(Severity::Error, RuleId::BadFieldKind, "template field kind is corrupt");
        continue;
      }
      if (f.kind == TemplateField::Kind::Literal) continue;
      if (f.formal_index >= formals) {
        std::ostringstream os;
        os << "field references formal ?" << f.formal_index << " but the guard binds "
           << formals << " formal(s)";
        add(Severity::Error, RuleId::FormalOutOfRange, os.str());
        continue;
      }
      if (f.kind == TemplateField::Kind::Expr) {
        if (static_cast<std::uint8_t>(f.arith) > kMaxArithOp) {
          add(Severity::Error, RuleId::BadArithOp, "arithmetic opcode byte is corrupt");
          continue;
        }
        const ValueType bt = formalType(*current_guard_, f.formal_index);
        if (bt != ValueType::Int && bt != ValueType::Real) {
          std::ostringstream os;
          os << "arithmetic `?" << f.formal_index << " " << arithOpName(f.arith)
             << " ...` requires an int or real formal, got " << tuple::valueTypeName(bt);
          add(Severity::Error, RuleId::ArithNonNumericFormal, os.str());
        } else if (f.literal.type() != bt) {
          std::ostringstream os;
          os << "arithmetic operand is " << tuple::valueTypeName(f.literal.type())
             << " but formal ?" << f.formal_index << " is " << tuple::valueTypeName(bt);
          add(Severity::Error, RuleId::ArithOperandMismatch, os.str());
        }
      }
    }
    field_ = -1;
  }

  void patternTemplate(const PatternTemplate& p, std::size_t formals) {
    if (p.fields.size() > limits_.max_fields) {
      std::ostringstream os;
      os << "pattern has " << p.fields.size() << " fields, limit " << limits_.max_fields;
      add(Severity::Error, RuleId::TooManyFields, os.str());
    }
    for (std::size_t k = 0; k < p.fields.size(); ++k) {
      field_ = static_cast<std::int32_t>(k);
      const PatternTemplateField& f = p.fields[k];
      if (static_cast<std::uint8_t>(f.kind) > 2) {
        add(Severity::Error, RuleId::BadFieldKind, "pattern field kind is corrupt");
        continue;
      }
      if (f.kind == PatternTemplateField::Kind::Formal &&
          static_cast<std::uint8_t>(f.formal_type) > kMaxValueType) {
        add(Severity::Error, RuleId::BadValueType, "pattern formal has a corrupt type byte");
      }
      if (f.kind == PatternTemplateField::Kind::BoundRef && f.ref >= formals) {
        std::ostringstream os;
        os << "pattern references formal ?" << f.ref << " but the guard binds " << formals
           << " formal(s)";
        add(Severity::Error, RuleId::BoundRefOutOfRange, os.str());
      }
    }
    field_ = -1;
  }

  const VerifyLimits& limits_;
  VerifyResult& out_;
  const Guard* current_guard_ = nullptr;
  std::int32_t branch_ = -1;
  std::int32_t op_ = -1;
  std::int32_t field_ = -1;
};

/// View-based twin of Checker: evaluates the same rules in one
/// left-to-right scan of the Ags wire encoding. The scan is an exact
/// structural inverse of the encoders in ops.cpp/pattern.cpp — INCLUDING
/// their behaviour on corrupt enum bytes (each writes a deterministic, if
/// degenerate, byte shape) — which is what makes the diagnostics match the
/// owning verifier on every encodable statement, corrupt fixtures included.
class EncodedChecker {
 public:
  EncodedChecker(const VerifyLimits& limits, VerifyResult& out) : limits_(limits), out_(out) {}

  void statement(BytesView bytes) {
    base_ = bytes.data;
    Reader r(bytes);
    const std::uint16_t nb = r.u16();
    if (nb == 0) {
      add(Severity::Error, RuleId::NoBranches, "AGS has no branches");
      return;
    }
    if (nb > limits_.max_branches) {
      std::ostringstream os;
      os << nb << " branches exceed the limit of " << limits_.max_branches;
      add(Severity::Error, RuleId::TooManyBranches, os.str());
    }
    struct PrevGuard {
      bool is_true;
      std::uint64_t ts;
      const std::uint8_t* pat;
      std::size_t pat_len;
    };
    std::vector<PrevGuard> prev_guards;
    prev_guards.reserve(nb);
    bool saw_true_guard = false;
    for (std::size_t i = 0; i < nb; ++i) {
      branch_ = static_cast<std::int32_t>(i);
      op_ = -1;
      field_ = -1;
      if (saw_true_guard) {
        add(Severity::Warning, RuleId::UnreachableBranch,
            "unreachable: an earlier branch has guard `true`, which always fires first");
        saw_true_guard = false;  // one warning marks the rest
      }
      // Silent structural pass first: the duplicate-guard warning must
      // precede the guard's own diagnostics (Checker emits it before
      // guard()), and it needs the full pattern byte range. Canonical
      // encoding makes a raw byte comparison equivalent to the owning
      // Pattern equality (modulo the Real -0.0/NaN caveat in the header).
      const std::size_t guard_start = r.position();
      GuardInfo g = scanGuard(r, /*emit=*/false);
      if (g.kind != 0) {
        for (std::size_t e = 0; e < prev_guards.size(); ++e) {
          const PrevGuard& prev = prev_guards[e];
          if (prev.is_true || prev.ts != g.ts || prev.pat_len != g.pat_len ||
              std::memcmp(prev.pat, g.pat, g.pat_len) != 0)
            continue;
          std::ostringstream os;
          os << "dead branch: guard matches exactly when branch " << e
             << "'s guard does, and earlier branches fire first";
          add(Severity::Warning, RuleId::DuplicateGuard, os.str());
          break;
        }
        // Diagnostic pass over the same range.
        Reader gr(base_ + guard_start, r.position() - guard_start);
        scanGuard(gr, /*emit=*/true);
      }
      prev_guards.push_back({g.kind == 0, g.ts, g.pat, g.pat_len});
      body(r, g);
      if (g.kind == 0) saw_true_guard = true;
    }
  }

 private:
  /// Everything the body checks need from the guard, captured off the wire.
  struct GuardInfo {
    std::uint8_t kind = 0;
    std::uint64_t ts = 0;
    const std::uint8_t* pat = nullptr;  // encoded pattern range (dup compare)
    std::size_t pat_len = 0;
    std::size_t formals = 0;  // count of VALID formal fields
    // Type bytes of every Formal-kind field in order, valid or not —
    // mirrors Checker::formalType, which indexes Formal fields lazily.
    std::vector<std::uint8_t> formal_types;
  };

  void add(Severity sev, RuleId id, std::string msg) {
    Diagnostic d;
    d.severity = sev;
    d.branch = branch_;
    d.op_index = op_;
    d.field_index = field_;
    d.rule_id = id;
    d.message = std::move(msg);
    out_.diagnostics.push_back(std::move(d));
  }

  /// Advance past one encoded Value; returns its type tag. Tags outside the
  /// Value set never come from Value::encode (the variant cannot hold one),
  /// so they mark non-encoder bytes: reported as MalformedEncoding upstream.
  std::uint8_t skipValue(Reader& r) {
    const std::uint8_t tag = r.u8();
    switch (tag) {
      case 0:  // Int
      case 1:  // Real
        r.skip(8);
        break;
      case 2:  // Bool
        r.skip(1);
        break;
      case 3:  // Str
      case 4:  // Blob
        r.skip(r.u32());
        break;
      default:
        throw Error("value tag byte " + std::to_string(tag) + " is outside the value set");
    }
    return tag;
  }

  /// Structural inverse of Guard::encode. With emit=false only the shape is
  /// captured; with emit=true the same diagnostics as Checker::guard() go
  /// out (a corrupt guard kind suppresses the pattern-field diagnostics,
  /// exactly like the owning early return).
  GuardInfo scanGuard(Reader& r, bool emit) {
    GuardInfo g;
    g.kind = r.u8();
    if (g.kind == 0) return g;  // True: nothing follows, binds nothing
    const bool bad_kind = g.kind > kMaxGuardKind;
    if (emit && bad_kind) {
      std::ostringstream os;
      os << "guard kind byte " << static_cast<unsigned>(g.kind) << " is outside the guard set";
      add(Severity::Error, RuleId::BadGuardKind, os.str());
    }
    const bool diag = emit && !bad_kind;
    g.ts = r.u64();
    const std::size_t pat_start = r.position();
    const std::uint16_t n = r.u16();
    if (diag && n > limits_.max_fields) {
      std::ostringstream os;
      os << "guard pattern has " << n << " fields, limit " << limits_.max_fields;
      add(Severity::Error, RuleId::TooManyFields, os.str());
    }
    for (std::uint16_t k = 0; k < n; ++k) {
      if (diag) field_ = static_cast<std::int32_t>(k);
      const std::uint8_t fk = r.u8();
      if (fk == 0) {  // Actual: a Value follows
        skipValue(r);
        continue;
      }
      // PatternField::encode writes the formal-type byte for EVERY non-
      // Actual kind, corrupt ones included.
      const std::uint8_t t = r.u8();
      if (fk > 1) {
        if (diag) add(Severity::Error, RuleId::BadFieldKind, "guard pattern field kind is corrupt");
        continue;
      }
      g.formal_types.push_back(t);
      if (t > kMaxValueType) {
        if (diag) add(Severity::Error, RuleId::BadValueType, "guard formal has a corrupt type byte");
      } else {
        ++g.formals;
      }
    }
    if (diag) field_ = -1;
    g.pat = base_ + pat_start;
    g.pat_len = r.position() - pat_start;
    if (bad_kind) {  // a corrupt guard binds nothing (Checker returns 0)
      g.formals = 0;
      g.formal_types.clear();
    }
    return g;
  }

  std::uint8_t formalType(const GuardInfo& g, std::size_t i) const {
    return i < g.formal_types.size() ? g.formal_types[i] : 0;  // unreachable when bound-checked
  }

  void checkDead(const std::vector<std::uint64_t>& destroyed, std::uint64_t h,
                 const char* what) {
    if (std::find(destroyed.begin(), destroyed.end(), h) == destroyed.end()) return;
    std::ostringstream os;
    os << what << " references a tuple space destroyed earlier in this body";
    add(Severity::Error, RuleId::UseAfterDestroy, os.str());
  }

  void body(Reader& r, const GuardInfo& g) {
    const std::uint16_t nops = r.u16();
    if (nops > limits_.max_body_ops) {
      std::ostringstream os;
      os << nops << " body operations exceed the limit of " << limits_.max_body_ops;
      add(Severity::Error, RuleId::BodyTooLong, os.str());
    }
    std::vector<std::uint64_t> destroyed;
    for (std::uint16_t j = 0; j < nops; ++j) {
      op_ = static_cast<std::int32_t>(j);
      field_ = -1;
      const std::uint8_t op = r.u8();
      const std::uint64_t ts = r.u64();
      const std::uint64_t dst = r.u64();
      if (op > kMaxOpCode) {
        // BodyOp::encode writes nothing past ts/dst for a corrupt opcode.
        std::ostringstream os;
        os << "opcode byte " << static_cast<unsigned>(op) << " is outside the body-operation set";
        add(Severity::Error, RuleId::BadOpCode, os.str());
        continue;  // nothing else is interpretable
      }
      switch (static_cast<OpCode>(op)) {
        case OpCode::Out:
          checkDead(destroyed, ts, "out");
          tupleTemplate(r, g);
          break;
        case OpCode::Inp:
        case OpCode::Rdp:
          checkDead(destroyed, ts, opCodeName(static_cast<OpCode>(op)));
          patternTemplate(r, g);
          break;
        case OpCode::Move:
        case OpCode::Copy: {
          const bool is_move = static_cast<OpCode>(op) == OpCode::Move;
          checkDead(destroyed, ts, "move/copy source");
          checkDead(destroyed, dst, "move/copy destination");
          if (ts == dst) {
            if (is_move) {
              add(Severity::Error, RuleId::MoveAliasedHandles,
                  "move with identical source and destination is a no-op that "
                  "reorders the space");
            } else {
              add(Severity::Warning, RuleId::CopyAliasedHandles,
                  "copy with identical source and destination duplicates every match");
            }
          }
          patternTemplate(r, g);
          break;
        }
        case OpCode::CreateTs:
          r.skip(2);  // TsAttributes: stable + shared boolean bytes
          break;
        case OpCode::DestroyTs:
          if (ts == ts::kTsMain) {
            add(Severity::Error, RuleId::DestroyTsMain, "destroy_TS targets TSmain");
          }
          checkDead(destroyed, ts, "destroy_TS");
          destroyed.push_back(ts);
          break;
      }
    }
    op_ = -1;
  }

  void tupleTemplate(Reader& r, const GuardInfo& g) {
    const std::uint16_t n = r.u16();
    if (n > limits_.max_fields) {
      std::ostringstream os;
      os << "out template has " << n << " fields, limit " << limits_.max_fields;
      add(Severity::Error, RuleId::TooManyFields, os.str());
    }
    for (std::uint16_t k = 0; k < n; ++k) {
      field_ = static_cast<std::int32_t>(k);
      const std::uint8_t fk = r.u8();
      if (fk > 2) {
        // TemplateField::encode writes nothing past a corrupt kind byte.
        add(Severity::Error, RuleId::BadFieldKind, "template field kind is corrupt");
        continue;
      }
      if (fk == 0) {  // Literal
        skipValue(r);
        continue;
      }
      const std::uint16_t idx = r.u16();
      std::uint8_t arith = 0;
      std::uint8_t lit_type = 0;
      if (fk == 2) {  // Expr: arith byte + literal operand follow
        arith = r.u8();
        lit_type = skipValue(r);
      }
      if (idx >= g.formals) {
        std::ostringstream os;
        os << "field references formal ?" << idx << " but the guard binds " << g.formals
           << " formal(s)";
        add(Severity::Error, RuleId::FormalOutOfRange, os.str());
        continue;
      }
      if (fk == 2) {
        if (arith > kMaxArithOp) {
          add(Severity::Error, RuleId::BadArithOp, "arithmetic opcode byte is corrupt");
          continue;
        }
        const std::uint8_t bt = formalType(g, idx);
        if (bt != static_cast<std::uint8_t>(ValueType::Int) &&
            bt != static_cast<std::uint8_t>(ValueType::Real)) {
          std::ostringstream os;
          os << "arithmetic `?" << idx << " " << arithOpName(static_cast<ArithOp>(arith))
             << " ...` requires an int or real formal, got "
             << tuple::valueTypeName(static_cast<ValueType>(bt));
          add(Severity::Error, RuleId::ArithNonNumericFormal, os.str());
        } else if (lit_type != bt) {
          std::ostringstream os;
          os << "arithmetic operand is " << tuple::valueTypeName(static_cast<ValueType>(lit_type))
             << " but formal ?" << idx << " is "
             << tuple::valueTypeName(static_cast<ValueType>(bt));
          add(Severity::Error, RuleId::ArithOperandMismatch, os.str());
        }
      }
    }
    field_ = -1;
  }

  void patternTemplate(Reader& r, const GuardInfo& g) {
    const std::uint16_t n = r.u16();
    if (n > limits_.max_fields) {
      std::ostringstream os;
      os << "pattern has " << n << " fields, limit " << limits_.max_fields;
      add(Severity::Error, RuleId::TooManyFields, os.str());
    }
    for (std::uint16_t k = 0; k < n; ++k) {
      field_ = static_cast<std::int32_t>(k);
      const std::uint8_t fk = r.u8();
      if (fk > 2) {
        // PatternTemplateField::encode writes nothing past a corrupt kind.
        add(Severity::Error, RuleId::BadFieldKind, "pattern field kind is corrupt");
        continue;
      }
      if (fk == 0) {  // Actual
        skipValue(r);
        continue;
      }
      if (fk == 1) {  // Formal
        const std::uint8_t t = r.u8();
        if (t > kMaxValueType) {
          add(Severity::Error, RuleId::BadValueType, "pattern formal has a corrupt type byte");
        }
        continue;
      }
      const std::uint16_t ref = r.u16();  // BoundRef
      if (ref >= g.formals) {
        std::ostringstream os;
        os << "pattern references formal ?" << ref << " but the guard binds " << g.formals
           << " formal(s)";
        add(Severity::Error, RuleId::BoundRefOutOfRange, os.str());
      }
    }
    field_ = -1;
  }

  const VerifyLimits& limits_;
  VerifyResult& out_;
  const std::uint8_t* base_ = nullptr;
  std::int32_t branch_ = -1;
  std::int32_t op_ = -1;
  std::int32_t field_ = -1;
};

}  // namespace

const char* ruleIdName(RuleId id) {
  switch (id) {
    case RuleId::NoBranches: return "no-branches";
    case RuleId::BadGuardKind: return "bad-guard-kind";
    case RuleId::BadOpCode: return "bad-opcode";
    case RuleId::BadArithOp: return "bad-arith-op";
    case RuleId::BadFieldKind: return "bad-field-kind";
    case RuleId::BadValueType: return "bad-value-type";
    case RuleId::UnreachableBranch: return "unreachable-branch";
    case RuleId::FormalOutOfRange: return "formal-out-of-range";
    case RuleId::BoundRefOutOfRange: return "bound-ref-out-of-range";
    case RuleId::ArithNonNumericFormal: return "arith-non-numeric-formal";
    case RuleId::ArithOperandMismatch: return "arith-operand-mismatch";
    case RuleId::MoveAliasedHandles: return "move-aliased-handles";
    case RuleId::CopyAliasedHandles: return "copy-aliased-handles";
    case RuleId::DestroyTsMain: return "destroy-ts-main";
    case RuleId::UseAfterDestroy: return "use-after-destroy";
    case RuleId::TooManyBranches: return "too-many-branches";
    case RuleId::BodyTooLong: return "body-too-long";
    case RuleId::TooManyFields: return "too-many-fields";
    case RuleId::DuplicateGuard: return "duplicate-guard";
    case RuleId::GuardNeverSatisfied: return "guard-never-satisfied";
    case RuleId::DeadConditionalGuard: return "dead-conditional-guard";
    case RuleId::DeadBodyMatch: return "dead-body-match";
    case RuleId::TupleLeak: return "tuple-leak";
    case RuleId::ClassTypeConflict: return "class-type-conflict";
    case RuleId::MalformedEncoding: return "malformed-encoding";
  }
  return "unknown-rule";
}

std::string Diagnostic::toString() const {
  std::ostringstream os;
  os << (severity == Severity::Error ? "error" : "warning") << ": [" << ruleIdName(rule_id)
     << "]";
  if (branch >= 0) {
    os << " branch " << branch;
    if (op_index >= 0) os << ", op " << op_index;
    if (field_index >= 0) os << ", field " << field_index;
  }
  os << ": " << message;
  return os.str();
}

bool VerifyResult::ok() const {
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::Error) return false;
  }
  return true;
}

const Diagnostic* VerifyResult::find(RuleId id) const {
  for (const auto& d : diagnostics) {
    if (d.rule_id == id) return &d;
  }
  return nullptr;
}

std::string VerifyResult::toString() const {
  std::string out;
  for (const auto& d : diagnostics) {
    if (!out.empty()) out += "; ";
    out += d.toString();
  }
  return out;
}

VerifyResult verify(const Ags& ags, const VerifyLimits& limits) {
  VerifyResult result;
  Checker c(limits, result);
  c.statement(ags);
  return result;
}

VerifyResult verifyEncoded(BytesView ags_bytes, const VerifyLimits& limits) {
  VerifyResult result;
  try {
    EncodedChecker c(limits, result);
    c.statement(ags_bytes);
  } catch (const std::exception& e) {
    // Bytes no encoder produces: truncation (Reader ran out) or a value tag
    // outside the Value set. Diagnostics gathered before the malformed point
    // are kept — they are exactly what the owning verifier would have said
    // about the well-formed prefix.
    Diagnostic d;
    d.severity = Severity::Error;
    d.rule_id = RuleId::MalformedEncoding;
    d.message = std::string("statement bytes are not an AGS encoding: ") + e.what();
    result.diagnostics.push_back(std::move(d));
  }
  return result;
}

}  // namespace ftl::ftlinda

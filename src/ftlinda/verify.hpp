// Static verification of Atomic Guarded Statements — the checks FT-lcc
// performs at compile time (paper §4): guards are the only blocking
// operations, bodies are non-blocking straight-line code, and every formal
// reference is well-typed and in range.
//
// Our AGSes are built at runtime (there is no compiler front end), so the
// same guarantees are established by this pass instead. It runs
//
//  - at SUBMISSION time in Runtime/RemoteRuntime::execute, before the
//    statement is encoded or multicast — a rejected AGS never leaves the
//    issuing processor;
//  - at the top of the shared executor's validation (defence in depth: a
//    hostile or buggy client that bypasses the library still produces the
//    same deterministic error Reply at every replica, never UB);
//  - in ftl-lint (tools/) over the textual AGS dump format, for CI.
//
// Everything here is registry-INDEPENDENT: a verdict depends only on the
// statement itself, so it is identical at every replica and on the client.
// Registry-dependent checks (does this handle exist?) stay in
// executor.cpp's validateAgs.
//
// docs/VERIFIER.md lists every rule with the paper clause it enforces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftlinda/ops.hpp"

namespace ftl::ftlinda {

/// Errors make verify() fail (the AGS is refused); warnings flag legal but
/// suspicious statements (ftl-lint prints them, execution ignores them).
enum class Severity : std::uint8_t { Error = 0, Warning = 1 };

/// Stable identifiers for every rule the verifier enforces, grouped by
/// hundreds: V0xx structural, V1xx formal references, V2xx types, V3xx
/// handles, V4xx resource limits.
enum class RuleId : std::uint8_t {
  // structural (V0xx)
  NoBranches = 0,        // AGS has an empty branch list
  BadGuardKind,          // guard kind byte outside the Guard::Kind enum
  BadOpCode,             // body opcode byte outside the OpCode enum
  BadArithOp,            // ArithOp byte outside the enum
  BadFieldKind,          // template/pattern field kind outside its enum
  BadValueType,          // formal type byte outside the ValueType enum
  UnreachableBranch,     // warning: branch after a guardTrue() branch
  // formal references (V1xx)
  FormalOutOfRange,      // out-template bound()/boundExpr() index >= formals
  BoundRefOutOfRange,    // body-pattern bound() index >= formals
  // type rules (V2xx)
  ArithNonNumericFormal, // boundExpr() on a formal that is not int/real
  ArithOperandMismatch,  // boundExpr() literal type != the formal's type
  // handle rules (V3xx)
  MoveAliasedHandles,    // move with src == dst (a no-op that reorders FIFO)
  CopyAliasedHandles,    // warning: copy with src == dst (duplicates)
  DestroyTsMain,         // destroy_TS(TSmain)
  UseAfterDestroy,       // body op targets a TS destroyed earlier in the body
  // resource limits (V4xx)
  TooManyBranches,
  BodyTooLong,
  TooManyFields,
  // structural (V0xx, appended to keep earlier wire values stable)
  DuplicateGuard,        // warning: branch guard repeats an earlier branch's
                         // guard (same kind-class, ts, pattern): dead branch
  // whole-program rules (V5xx) — produced by ftlinda/analyze.hpp, never by
  // verify() (they need every statement of the program at once)
  GuardNeverSatisfied,   // in/rd guard no deposit in the program can satisfy
  DeadConditionalGuard,  // warning: inp/rdp guard that can never match
  DeadBodyMatch,         // warning: body inp/rdp/move/copy pattern that can
                         // never match
  TupleLeak,             // warning: deposits no operation ever consumes
  ClassTypeConflict,     // out/in type mismatch within one (ts, name, arity)
  // structural (V0xx, appended) — produced only by verifyEncoded(): the
  // input bytes are not an Ags encoding at all (truncated buffer, value tag
  // outside the Value set). The owning verifier cannot see this state (an
  // in-memory Ags always has a shape); a decode of the same bytes throws.
  MalformedEncoding,
};

/// Kebab-case rule name, e.g. "formal-out-of-range" (stable; used by
/// ftl-lint output and the test suite).
const char* ruleIdName(RuleId id);

/// One finding. branch/op_index/field_index are -1 when the finding applies
/// to the whole statement / the guard / the whole operation respectively.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::int32_t branch = -1;
  std::int32_t op_index = -1;
  std::int32_t field_index = -1;
  RuleId rule_id = RuleId::NoBranches;
  std::string message;

  /// "error: [destroy-ts-main] branch 0, op 2: destroy_TS targets TSmain"
  std::string toString() const;
};

/// Resource ceilings (rule V4xx) so a hostile or buggy client cannot
/// multicast an unbounded statement to every replica. Generous relative to
/// anything the paper's programs build; the wire format caps each count at
/// 65535 regardless.
struct VerifyLimits {
  std::size_t max_branches = 128;
  std::size_t max_body_ops = 1024;
  std::size_t max_fields = 256;  // per template / pattern
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;

  /// True iff no Error-severity diagnostic was produced.
  bool ok() const;
  /// First diagnostic with the given rule, or nullptr.
  const Diagnostic* find(RuleId id) const;
  /// All diagnostics joined with "; " (empty string when clean).
  std::string toString() const;
};

/// Run every static check over `ags`. Never throws, never mutates.
VerifyResult verify(const Ags& ags, const VerifyLimits& limits = {});

/// Run the same checks over an ENCODED statement (the `Ags::encode` bytes —
/// i.e. a Command payload past its 17-byte header) in a single left-to-right
/// scan, with no owning decode and no per-field allocation. This is the
/// submission-path verifier: the runtime encodes the command once and
/// verifies the bytes it is about to multicast, eliminating the
/// encode→decode→verify→re-encode round (ISSUE 9 / ROADMAP "Hot-path
/// speed").
///
/// Equivalence contract (exercised by verify_test's differential suite):
/// for any in-memory Ags — including ones holding corrupt enum bytes —
/// verifyEncoded(encode(ags)) yields the same diagnostics as verify(ags),
/// because the scanner inverts the encoders' byte shapes exactly, corrupt
/// enums included. Sole exception: DuplicateGuard compares canonical
/// pattern ENCODINGS rather than Value equality, so Real actuals that
/// differ only as -0.0 vs 0.0 (or compare unequal as NaN) can flip that
/// one warning. Bytes no encoder produces (truncation, a value tag outside
/// the Value set) yield a MalformedEncoding error instead of an exception.
VerifyResult verifyEncoded(BytesView ags_bytes, const VerifyLimits& limits = {});

}  // namespace ftl::ftlinda

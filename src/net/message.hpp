// Wire-level message for the simulated workstation network.
#pragma once

#include <cstdint>
#include <string>

#include "common/serde.hpp"

namespace ftl::net {

/// Identity of a simulated workstation ("processor" in the paper's terms).
/// Hosts are numbered 0..n-1 at network construction.
using HostId = std::uint32_t;

constexpr HostId kNoHost = 0xffffffffu;

/// One datagram. `type` is an application-level discriminator (the Consul
/// layer defines its own enum); `payload` is an opaque encoded body.
struct Message {
  HostId src = kNoHost;
  HostId dst = kNoHost;
  std::uint16_t type = 0;
  Bytes payload;
};

}  // namespace ftl::net

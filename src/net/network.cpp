#include "net/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace ftl::net {

NetworkConfig lanProfile(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.latency_mean = Micros{500};
  cfg.latency_jitter = Micros{200};
  cfg.drop_probability = 0.0;
  cfg.seed = seed;
  return cfg;
}

SimTransport::SimTransport(std::uint32_t host_count, NetworkConfig config)
    : config_(config), rng_(config.seed) {
  FTL_REQUIRE(host_count > 0, "network needs at least one host");
  inboxes_.reserve(host_count);
  for (std::uint32_t i = 0; i < host_count; ++i) {
    inboxes_.push_back(std::make_unique<BlockingQueue<Message>>());
  }
  last_delivery_.assign(static_cast<std::size_t>(host_count) * host_count, TimePoint{});
  crashed_.assign(host_count, false);
  stats_.assign(host_count, TrafficStats{});
  registerTrafficObs();
  scheduler_ = std::thread([this] { schedulerLoop(); });
}

SimTransport::~SimTransport() {
  unregisterTrafficObs();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  scheduler_.join();
  for (auto& q : inboxes_) q->close();
}

std::optional<Message> SimTransport::recvOn(HostId host) { return inboxes_[host]->pop(); }

std::optional<Message> SimTransport::recvOnFor(HostId host, Micros timeout) {
  return inboxes_[host]->popFor(timeout);
}

std::optional<Message> SimTransport::tryRecvOn(HostId host) { return inboxes_[host]->tryPop(); }

std::size_t SimTransport::inFlightCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_.size();
}

void SimTransport::purgeInFlightLocked(HostId host) {
  std::vector<InFlight> keep;
  keep.reserve(in_flight_.size());
  while (!in_flight_.empty()) {
    InFlight f = std::move(const_cast<InFlight&>(in_flight_.top()));
    in_flight_.pop();
    if (f.msg.src != host && f.msg.dst != host) keep.push_back(std::move(f));
  }
  for (auto& f : keep) in_flight_.push(std::move(f));
  if (in_flight_.empty()) cv_.notify_all();  // wake drain()
}

void SimTransport::crash(HostId host) {
  FTL_REQUIRE(host < hostCount(), "crash(): no such host");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    crashed_[host] = true;
    // Fail-silent contract: ALL traffic to/from the host vanishes — its own
    // in-flight sends included. Delivery re-checks crashed_[src] too, so a
    // message from the crashed host can never surface later, not even into
    // the host's own post-recover incarnation.
    purgeInFlightLocked(host);
  }
  inboxes_[host]->close();
  inboxes_[host]->clear();
  FTL_INFO("net", "host " << host << " crashed (fail-silent)");
}

void SimTransport::recover(HostId host) {
  FTL_REQUIRE(host < hostCount(), "recover(): no such host");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    crashed_[host] = false;
    // Messages addressed to the host while it was down vanish, even if their
    // simulated delivery time falls after the recovery.
    purgeInFlightLocked(host);
  }
  inboxes_[host]->clear();
  inboxes_[host]->reopen();
  FTL_INFO("net", "host " << host << " recovered");
}

bool SimTransport::isCrashed(HostId host) const {
  FTL_REQUIRE(host < hostCount(), "isCrashed(): no such host");
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_[host];
}

TrafficStats SimTransport::stats(HostId host) const {
  FTL_REQUIRE(host < hostCount(), "stats(): no such host");
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_[host];
}

TrafficStats SimTransport::totalStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TrafficStats total;
  for (const auto& s : stats_) total.add(s);
  return total;
}

std::map<std::uint16_t, std::uint64_t> SimTransport::sentByType() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint16_t, std::uint64_t> out;
  for (std::size_t type = 0; type < sent_by_type_.size(); ++type) {
    if (sent_by_type_[type] != 0) out.emplace(static_cast<std::uint16_t>(type), sent_by_type_[type]);
  }
  return out;
}

void SimTransport::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : stats_) s = TrafficStats{};
  std::fill(sent_by_type_.begin(), sent_by_type_.end(), 0);
}

void SimTransport::setDropFilter(DropFilter filter) {
  std::lock_guard<std::mutex> lock(mutex_);
  drop_filter_ = std::move(filter);
}

void SimTransport::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return in_flight_.empty() || shutdown_; });
}

void SimTransport::sendMessage(Message msg) {
  FTL_REQUIRE(msg.dst < hostCount(), "send(): no such destination");
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_ || crashed_[msg.src]) return;  // sender dead: message never existed
  // Self-addressed messages are local loopback: no loss, no latency, and not
  // counted as network traffic (the E4 message-count ablation relies on this).
  const bool loopback = msg.src == msg.dst;
  if (!loopback) {
    auto& sender_stats = stats_[msg.src];
    sender_stats.messages_sent += 1;
    sender_stats.bytes_sent += msg.payload.size();
    if (msg.type >= sent_by_type_.size()) sent_by_type_.resize(msg.type + 1, 0);
    sent_by_type_[msg.type] += 1;
    if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
      sender_stats.messages_dropped += 1;
      return;
    }
    if (drop_filter_ && drop_filter_(msg)) {
      sender_stats.messages_dropped += 1;
      return;
    }
  }
  const auto now = Clock::now();
  Duration latency = loopback ? Duration::zero() : Duration(config_.latency_mean);
  if (!loopback && config_.latency_jitter.count() > 0) {
    latency += Micros{static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(config_.latency_jitter.count()) + 1))};
  }
  TimePoint due = now + latency;
  // FIFO per (src,dst): never schedule before the pair's previous delivery.
  auto& floor = last_delivery_[static_cast<std::size_t>(msg.src) * hostCount() + msg.dst];
  if (due < floor) due = floor;
  floor = due;
  // Duplicates are scheduled OUTSIDE the FIFO floor: the copy may overtake
  // later traffic, like a real re-routed datagram.
  if (!loopback && config_.duplicate_probability > 0.0 &&
      rng_.chance(config_.duplicate_probability)) {
    stats_[msg.src].messages_duplicated += 1;
    in_flight_.push(
        InFlight{due + config_.latency_mean + Micros{50}, next_seq_++, msg});
  }
  in_flight_.push(InFlight{due, next_seq_++, std::move(msg)});
  cv_.notify_all();
}

void SimTransport::schedulerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (in_flight_.empty()) {
      cv_.wait(lock, [&] { return shutdown_ || !in_flight_.empty(); });
      continue;
    }
    const TimePoint due = in_flight_.top().due;
    const auto now = Clock::now();
    if (due > now) {
      cv_.wait_until(lock, due);
      continue;  // re-check: new earlier message or shutdown may have arrived
    }
    Message msg = std::move(const_cast<InFlight&>(in_flight_.top()).msg);
    in_flight_.pop();
    // Fail-silent both ways: neither a crashed destination nor a crashed
    // source delivers (crash() purges the heap, but a message can become due
    // in the window before purge runs — this check closes it).
    const bool deliverable = !crashed_[msg.dst] && !crashed_[msg.src];
    if (deliverable && msg.src != msg.dst) stats_[msg.dst].messages_delivered += 1;
    const HostId dst = msg.dst;
    if (in_flight_.empty()) cv_.notify_all();  // wake drain()
    lock.unlock();
    if (deliverable) inboxes_[dst]->push(std::move(msg));
    lock.lock();
  }
}

}  // namespace ftl::net

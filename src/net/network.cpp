#include "net/network.hpp"

#include <algorithm>
#include <atomic>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace ftl::net {

namespace {
/// Distinguishes the obs series of networks that coexist in one process
/// (tests spin up several). Monotone across the process lifetime.
std::uint64_t nextNetId() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

NetworkConfig lanProfile(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.latency_mean = Micros{500};
  cfg.latency_jitter = Micros{200};
  cfg.drop_probability = 0.0;
  cfg.seed = seed;
  return cfg;
}

void Endpoint::send(HostId dst, std::uint16_t type, Bytes payload) {
  Message m;
  m.src = host_;
  m.dst = dst;
  m.type = type;
  m.payload = std::move(payload);
  net_->enqueue(std::move(m));
}

void Endpoint::multicast(const std::vector<HostId>& dsts, std::uint16_t type,
                         const Bytes& payload) {
  for (HostId d : dsts) send(d, type, payload);
}

std::optional<Message> Endpoint::recv() { return net_->inboxes_[host_]->pop(); }

std::optional<Message> Endpoint::recvFor(Micros timeout) {
  return net_->inboxes_[host_]->popFor(timeout);
}

std::optional<Message> Endpoint::tryRecv() { return net_->inboxes_[host_]->tryPop(); }

Network::Network(std::uint32_t host_count, NetworkConfig config)
    : config_(config), rng_(config.seed) {
  FTL_REQUIRE(host_count > 0, "network needs at least one host");
  inboxes_.reserve(host_count);
  for (std::uint32_t i = 0; i < host_count; ++i) {
    inboxes_.push_back(std::make_unique<BlockingQueue<Message>>());
  }
  last_delivery_.assign(static_cast<std::size_t>(host_count) * host_count, TimePoint{});
  crashed_.assign(host_count, false);
  stats_.assign(host_count, TrafficStats{});
  net_id_ = nextNetId();
  obs_token_ = obs::registerSource([this](std::vector<obs::Sample>& out) {
    const std::string net = "{net=\"" + std::to_string(net_id_) + "\"}";
    std::lock_guard<std::mutex> lock(mutex_);
    TrafficStats total;
    for (const auto& s : stats_) {
      total.messages_sent += s.messages_sent;
      total.bytes_sent += s.bytes_sent;
      total.messages_delivered += s.messages_delivered;
      total.messages_dropped += s.messages_dropped;
      total.messages_duplicated += s.messages_duplicated;
    }
    out.push_back({"ftl_net_messages_sent" + net, static_cast<double>(total.messages_sent)});
    out.push_back({"ftl_net_bytes_sent" + net, static_cast<double>(total.bytes_sent)});
    out.push_back(
        {"ftl_net_messages_delivered" + net, static_cast<double>(total.messages_delivered)});
    out.push_back({"ftl_net_messages_dropped" + net, static_cast<double>(total.messages_dropped)});
    out.push_back(
        {"ftl_net_messages_duplicated" + net, static_cast<double>(total.messages_duplicated)});
    out.push_back({"ftl_net_in_flight" + net, static_cast<double>(in_flight_.size())});
    out.push_back({"ftl_net_hosts" + net, static_cast<double>(inboxes_.size())});
    for (std::size_t type = 0; type < sent_by_type_.size(); ++type) {
      if (sent_by_type_[type] == 0) continue;
      out.push_back({"ftl_net_sent_by_type{net=\"" + std::to_string(net_id_) + "\",type=\"" +
                         std::to_string(type) + "\"}",
                     static_cast<double>(sent_by_type_[type])});
    }
  });
  scheduler_ = std::thread([this] { schedulerLoop(); });
}

Network::~Network() {
  obs::unregisterSource(obs_token_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  scheduler_.join();
  for (auto& q : inboxes_) q->close();
}

Endpoint Network::endpoint(HostId host) {
  FTL_REQUIRE(host < hostCount(), "endpoint(): no such host");
  return Endpoint(*this, host);
}

void Network::crash(HostId host) {
  FTL_REQUIRE(host < hostCount(), "crash(): no such host");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    crashed_[host] = true;
  }
  inboxes_[host]->close();
  inboxes_[host]->clear();
  FTL_INFO("net", "host " << host << " crashed (fail-silent)");
}

void Network::recover(HostId host) {
  FTL_REQUIRE(host < hostCount(), "recover(): no such host");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    crashed_[host] = false;
    // Messages addressed to the host while it was down vanish, even if their
    // simulated delivery time falls after the recovery.
    std::vector<InFlight> keep;
    keep.reserve(in_flight_.size());
    while (!in_flight_.empty()) {
      InFlight f = std::move(const_cast<InFlight&>(in_flight_.top()));
      in_flight_.pop();
      if (f.msg.dst != host) keep.push_back(std::move(f));
    }
    for (auto& f : keep) in_flight_.push(std::move(f));
  }
  inboxes_[host]->clear();
  inboxes_[host]->reopen();
  FTL_INFO("net", "host " << host << " recovered");
}

bool Network::isCrashed(HostId host) const {
  FTL_REQUIRE(host < hostCount(), "isCrashed(): no such host");
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_[host];
}

TrafficStats Network::stats(HostId host) const {
  FTL_REQUIRE(host < hostCount(), "stats(): no such host");
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_[host];
}

TrafficStats Network::totalStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.messages_delivered += s.messages_delivered;
    total.messages_dropped += s.messages_dropped;
    total.messages_duplicated += s.messages_duplicated;
  }
  return total;
}

std::map<std::uint16_t, std::uint64_t> Network::sentByType() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint16_t, std::uint64_t> out;
  for (std::size_t type = 0; type < sent_by_type_.size(); ++type) {
    if (sent_by_type_[type] != 0) out.emplace(static_cast<std::uint16_t>(type), sent_by_type_[type]);
  }
  return out;
}

void Network::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : stats_) s = TrafficStats{};
  std::fill(sent_by_type_.begin(), sent_by_type_.end(), 0);
}

void Network::setDropFilter(DropFilter filter) {
  std::lock_guard<std::mutex> lock(mutex_);
  drop_filter_ = std::move(filter);
}

void Network::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return in_flight_.empty() || shutdown_; });
}

void Network::enqueue(Message msg) {
  FTL_REQUIRE(msg.dst < hostCount(), "send(): no such destination");
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_ || crashed_[msg.src]) return;  // sender dead: message never existed
  // Self-addressed messages are local loopback: no loss, no latency, and not
  // counted as network traffic (the E4 message-count ablation relies on this).
  const bool loopback = msg.src == msg.dst;
  if (!loopback) {
    auto& sender_stats = stats_[msg.src];
    sender_stats.messages_sent += 1;
    sender_stats.bytes_sent += msg.payload.size();
    if (msg.type >= sent_by_type_.size()) sent_by_type_.resize(msg.type + 1, 0);
    sent_by_type_[msg.type] += 1;
    if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
      sender_stats.messages_dropped += 1;
      return;
    }
    if (drop_filter_ && drop_filter_(msg)) {
      sender_stats.messages_dropped += 1;
      return;
    }
  }
  const auto now = Clock::now();
  Duration latency = loopback ? Duration::zero() : Duration(config_.latency_mean);
  if (!loopback && config_.latency_jitter.count() > 0) {
    latency += Micros{static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(config_.latency_jitter.count()) + 1))};
  }
  TimePoint due = now + latency;
  // FIFO per (src,dst): never schedule before the pair's previous delivery.
  auto& floor = last_delivery_[static_cast<std::size_t>(msg.src) * hostCount() + msg.dst];
  if (due < floor) due = floor;
  floor = due;
  // Duplicates are scheduled OUTSIDE the FIFO floor: the copy may overtake
  // later traffic, like a real re-routed datagram.
  if (!loopback && config_.duplicate_probability > 0.0 &&
      rng_.chance(config_.duplicate_probability)) {
    stats_[msg.src].messages_duplicated += 1;
    in_flight_.push(
        InFlight{due + config_.latency_mean + Micros{50}, next_seq_++, msg});
  }
  in_flight_.push(InFlight{due, next_seq_++, std::move(msg)});
  cv_.notify_all();
}

void Network::schedulerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (shutdown_) return;
    if (in_flight_.empty()) {
      cv_.wait(lock, [&] { return shutdown_ || !in_flight_.empty(); });
      continue;
    }
    const TimePoint due = in_flight_.top().due;
    const auto now = Clock::now();
    if (due > now) {
      cv_.wait_until(lock, due);
      continue;  // re-check: new earlier message or shutdown may have arrived
    }
    Message msg = std::move(const_cast<InFlight&>(in_flight_.top()).msg);
    in_flight_.pop();
    const bool dst_alive = !crashed_[msg.dst];
    if (dst_alive && msg.src != msg.dst) stats_[msg.dst].messages_delivered += 1;
    const HostId dst = msg.dst;
    if (in_flight_.empty()) cv_.notify_all();  // wake drain()
    lock.unlock();
    if (dst_alive) inboxes_[dst]->push(std::move(msg));
    lock.lock();
  }
}

}  // namespace ftl::net

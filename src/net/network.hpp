// Simulated network of workstations (the paper's x-kernel/Ethernet
// substitute; see DESIGN.md "Substitutions").
//
// Properties provided to the layers above:
//  - point-to-point datagrams with configurable latency (mean + jitter);
//  - per-(src,dst) FIFO ordering (delivery times are monotone per pair);
//  - optional probabilistic message loss, to exercise Consul retransmission;
//  - fail-silent crash injection: a crashed host's traffic vanishes in both
//    directions until recover() is called;
//  - traffic accounting (messages/bytes per host), used by the E4
//    messages-per-update ablation.
//
// A single scheduler thread owns the in-flight message heap and delivers
// each message into the destination host's inbox queue at its due time.
// With a zero-latency profile, messages are handed over immediately and the
// whole network behaves like a set of blocking queues — which is what the
// unit tests use so they run fast.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace ftl::net {

/// Latency/loss profile for every link in the network.
struct NetworkConfig {
  /// Mean one-way latency. Zero means "deliver immediately".
  Micros latency_mean{0};
  /// Uniform jitter: actual latency is mean + U[0, jitter].
  Micros latency_jitter{0};
  /// Probability that a datagram is silently dropped (exercises
  /// retransmission in the multicast layer). 0 = reliable links.
  double drop_probability = 0.0;
  /// Probability that a datagram is DELIVERED TWICE, the copy arriving
  /// after an extra `latency_mean` (UDP-realistic; exercises every
  /// dedup path — the duplicate may arrive out of order).
  double duplicate_probability = 0.0;
  /// Seed for the latency/loss RNG; experiments print it for reproducibility.
  std::uint64_t seed = 42;
};

/// Ethernet-like LAN profile used by latency-sensitive benches; roughly the
/// 10 Mb Ethernet RTTs of the paper's testbed.
NetworkConfig lanProfile(std::uint64_t seed = 42);

/// Per-host traffic counters (monotone; survive crash/recover).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  /// Extra copies scheduled by duplicate_probability (the original is
  /// counted in messages_sent; the copy only here).
  std::uint64_t messages_duplicated = 0;
};

class Network;

/// A host's handle onto the network. Each simulated processor owns exactly
/// one Endpoint; its service threads block in recv().
class Endpoint {
 public:
  HostId host() const { return host_; }

  /// Send one datagram. Silently dropped if this host or dst is crashed.
  void send(HostId dst, std::uint16_t type, Bytes payload);

  /// Send the same payload to every host in `dsts`.
  void multicast(const std::vector<HostId>& dsts, std::uint16_t type, const Bytes& payload);

  /// Blocking receive; std::nullopt when the host has been crashed/shut down.
  std::optional<Message> recv();

  /// Receive with timeout; std::nullopt on timeout or crash.
  std::optional<Message> recvFor(Micros timeout);

  /// Non-blocking receive; std::nullopt when the inbox is empty. Unlike
  /// recvFor(0) this never touches the condition variable (a zero-timeout
  /// wait still costs a futex syscall — ruinous on a hot poll path).
  std::optional<Message> tryRecv();

 private:
  friend class Network;
  Endpoint(Network& net, HostId host) : net_(&net), host_(host) {}
  Network* net_;
  HostId host_;
};

/// The network itself. Construct with a host count and a config; then hand
/// each simulated processor its endpoint().
class Network {
 public:
  Network(std::uint32_t host_count, NetworkConfig config = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::uint32_t hostCount() const { return static_cast<std::uint32_t>(inboxes_.size()); }

  /// The (singleton) endpoint for `host`.
  Endpoint endpoint(HostId host);

  /// Fail-silent crash: all traffic to/from `host` vanishes and its blocked
  /// recv() calls return std::nullopt. Idempotent.
  void crash(HostId host);

  /// Undo crash(): the inbox reopens empty. The recovering protocol layer is
  /// responsible for state transfer. Idempotent.
  void recover(HostId host);

  bool isCrashed(HostId host) const;

  /// Snapshot of a host's traffic counters.
  TrafficStats stats(HostId host) const;

  /// Sum of all hosts' counters.
  TrafficStats totalStats() const;

  /// Messages sent per message type (non-loopback, pre-drop), network-wide.
  std::map<std::uint16_t, std::uint64_t> sentByType() const;

  /// Zero all traffic counters (between bench phases).
  void resetStats();

  /// Deterministic fault injection for tests: every outgoing message is
  /// offered to `filter`; returning true DROPS it (counted in
  /// messages_dropped). Pass nullptr to clear. Loopback traffic is exempt,
  /// like probabilistic loss. The filter runs under the network lock — keep
  /// it trivial and never call back into the network.
  using DropFilter = std::function<bool(const Message&)>;
  void setDropFilter(DropFilter filter);

  /// Deliver-everything barrier for zero-latency configs in tests: returns
  /// once the in-flight heap is empty. (With nonzero latency this waits for
  /// due messages too.)
  void drain();

 private:
  friend class Endpoint;

  struct InFlight {
    TimePoint due;
    std::uint64_t seq;  // tie-break => deterministic order for equal due times
    Message msg;
  };
  struct DueLater {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void enqueue(Message msg);
  void schedulerLoop();

  NetworkConfig config_;
  std::vector<std::unique_ptr<BlockingQueue<Message>>> inboxes_;

  mutable std::mutex mutex_;  // guards everything below
  std::condition_variable cv_;
  std::priority_queue<InFlight, std::vector<InFlight>, DueLater> in_flight_;
  std::vector<TimePoint> last_delivery_;  // per (src*n+dst) FIFO floor
  std::vector<bool> crashed_;
  std::vector<TrafficStats> stats_;
  // Indexed by message type, grown on demand: the per-send accounting is
  // under the hot network lock, where a map lookup was measurable.
  std::vector<std::uint64_t> sent_by_type_;
  DropFilter drop_filter_;
  Xoshiro256 rng_;
  std::uint64_t next_seq_ = 0;
  bool shutdown_ = false;

  std::uint64_t net_id_ = 0;     // distinguishes obs series of coexisting networks
  std::uint64_t obs_token_ = 0;  // obs::registerSource token, 0 = none

  std::thread scheduler_;  // started last, joined in dtor
};

}  // namespace ftl::net

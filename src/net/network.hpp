// Simulated network of workstations (the paper's x-kernel/Ethernet
// substitute; see DESIGN.md "Substitutions"). One of the two Transport
// backends — see net/transport.hpp for the contract and docs/TRANSPORT.md
// for the backend comparison.
//
// Properties provided to the layers above:
//  - point-to-point datagrams with configurable latency (mean + jitter);
//  - per-(src,dst) FIFO ordering (delivery times are monotone per pair);
//  - optional probabilistic message loss, to exercise Consul retransmission;
//  - fail-silent crash injection: a crashed host's traffic vanishes in both
//    directions until recover() is called;
//  - traffic accounting (messages/bytes per host), used by the E4
//    messages-per-update ablation.
//
// A single scheduler thread owns the in-flight message heap and delivers
// each message into the destination host's inbox queue at its due time.
// With a zero-latency profile, messages are handed over immediately and the
// whole network behaves like a set of blocking queues — which is what the
// unit tests use so they run fast.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"

namespace ftl::net {

/// Latency/loss profile for every link in the network.
struct NetworkConfig {
  /// Mean one-way latency. Zero means "deliver immediately".
  Micros latency_mean{0};
  /// Uniform jitter: actual latency is mean + U[0, jitter].
  Micros latency_jitter{0};
  /// Probability that a datagram is silently dropped (exercises
  /// retransmission in the multicast layer). 0 = reliable links.
  double drop_probability = 0.0;
  /// Probability that a datagram is DELIVERED TWICE, the copy arriving
  /// after an extra `latency_mean` (UDP-realistic; exercises every
  /// dedup path — the duplicate may arrive out of order).
  double duplicate_probability = 0.0;
  /// Seed for the latency/loss RNG; experiments print it for reproducibility.
  std::uint64_t seed = 42;
};

/// Ethernet-like LAN profile used by latency-sensitive benches; roughly the
/// 10 Mb Ethernet RTTs of the paper's testbed.
NetworkConfig lanProfile(std::uint64_t seed = 42);

/// The simulated-network backend. Construct with a host count and a config;
/// then hand each simulated processor its endpoint().
class SimTransport final : public Transport {
 public:
  explicit SimTransport(std::uint32_t host_count, NetworkConfig config = {});
  ~SimTransport() override;

  std::uint32_t hostCount() const override {
    return static_cast<std::uint32_t>(inboxes_.size());
  }

  void crash(HostId host) override;
  void recover(HostId host) override;
  bool isCrashed(HostId host) const override;

  TrafficStats stats(HostId host) const override;
  TrafficStats totalStats() const override;
  std::map<std::uint16_t, std::uint64_t> sentByType() const override;
  void resetStats() override;
  void setDropFilter(DropFilter filter) override;

  /// Deliver-everything barrier for zero-latency configs in tests: returns
  /// once the in-flight heap is empty. (With nonzero latency this waits for
  /// due messages too.)
  void drain() override;

 protected:
  void sendMessage(Message msg) override;
  std::optional<Message> recvOn(HostId host) override;
  std::optional<Message> recvOnFor(HostId host, Micros timeout) override;
  std::optional<Message> tryRecvOn(HostId host) override;
  std::size_t inFlightCount() const override;

 private:
  struct InFlight {
    TimePoint due;
    std::uint64_t seq;  // tie-break => deterministic order for equal due times
    Message msg;
  };
  struct DueLater {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  /// Remove every in-flight message with `host` as src and/or dst. Caller
  /// holds mutex_.
  void purgeInFlightLocked(HostId host);
  void schedulerLoop();

  NetworkConfig config_;
  std::vector<std::unique_ptr<BlockingQueue<Message>>> inboxes_;

  mutable std::mutex mutex_;  // guards everything below
  std::condition_variable cv_;
  std::priority_queue<InFlight, std::vector<InFlight>, DueLater> in_flight_;
  std::vector<TimePoint> last_delivery_;  // per (src*n+dst) FIFO floor
  std::vector<bool> crashed_;
  std::vector<TrafficStats> stats_;
  // Indexed by message type, grown on demand: the per-send accounting is
  // under the hot network lock, where a map lookup was measurable.
  std::vector<std::uint64_t> sent_by_type_;
  DropFilter drop_filter_;
  Xoshiro256 rng_;
  std::uint64_t next_seq_ = 0;
  bool shutdown_ = false;

  std::thread scheduler_;  // started last, joined in dtor
};

/// Historical name: the simulator predates the Transport split and most of
/// the repo (tests, benches, docs) still says "Network".
using Network = SimTransport;

}  // namespace ftl::net

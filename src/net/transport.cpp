#include "net/transport.hpp"

#include <atomic>
#include <string>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace ftl::net {

namespace {
std::uint64_t nextNetId() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Transport::Transport()
    : net_id_(nextNetId()), liveness_(std::make_shared<int>(0)) {}

Transport::~Transport() {
  // A well-behaved backend already unregistered in its own destructor; this
  // is the no-op fallback (unregisterSource tolerates token 0 / repeats).
  unregisterTrafficObs();
  liveness_.reset();
}

Endpoint Transport::endpoint(HostId host) {
  FTL_REQUIRE(host < hostCount(), "endpoint(): no such host");
  return Endpoint(*this, host, liveness_);
}

void Transport::registerTrafficObs() {
  if (obs_token_ != 0) return;
  obs_token_ = obs::registerSource([this](std::vector<obs::Sample>& out) {
    const std::string net = "{net=\"" + std::to_string(net_id_) + "\"}";
    const TrafficStats total = totalStats();
    out.push_back({"ftl_net_messages_sent" + net, static_cast<double>(total.messages_sent)});
    out.push_back({"ftl_net_bytes_sent" + net, static_cast<double>(total.bytes_sent)});
    out.push_back(
        {"ftl_net_messages_delivered" + net, static_cast<double>(total.messages_delivered)});
    out.push_back({"ftl_net_messages_dropped" + net, static_cast<double>(total.messages_dropped)});
    out.push_back(
        {"ftl_net_messages_duplicated" + net, static_cast<double>(total.messages_duplicated)});
    out.push_back({"ftl_net_in_flight" + net, static_cast<double>(inFlightCount())});
    out.push_back({"ftl_net_hosts" + net, static_cast<double>(hostCount())});
    for (const auto& [type, count] : sentByType()) {
      out.push_back({"ftl_net_sent_by_type{net=\"" + std::to_string(net_id_) + "\",type=\"" +
                         std::to_string(type) + "\"}",
                     static_cast<double>(count)});
    }
  });
}

void Transport::unregisterTrafficObs() {
  if (obs_token_ == 0) return;
  obs::unregisterSource(obs_token_);
  obs_token_ = 0;
}

void Endpoint::checkAlive() const {
  FTL_DASSERT(!liveness_.expired(), "Endpoint used after its Transport was destroyed");
}

void Endpoint::send(HostId dst, std::uint16_t type, Bytes payload) {
  checkAlive();
  Message m;
  m.src = host_;
  m.dst = dst;
  m.type = type;
  m.payload = std::move(payload);
  t_->sendMessage(std::move(m));
}

void Endpoint::multicast(const std::vector<HostId>& dsts, std::uint16_t type,
                         const Bytes& payload) {
  for (HostId d : dsts) send(d, type, payload);
}

std::optional<Message> Endpoint::recv() {
  checkAlive();
  return t_->recvOn(host_);
}

std::optional<Message> Endpoint::recvFor(Micros timeout) {
  checkAlive();
  return t_->recvOnFor(host_, timeout);
}

std::optional<Message> Endpoint::tryRecv() {
  checkAlive();
  return t_->tryRecvOn(host_);
}

}  // namespace ftl::net

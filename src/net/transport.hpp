// Pluggable transport substrate (the x-kernel slot; see DESIGN.md
// "Substitutions" and docs/TRANSPORT.md).
//
// Every layer above the wire — Consul, the replicas, the tuple-server RPC
// path, the baselines — talks to a `Transport`, never to a concrete
// backend. Two backends exist:
//
//   SimTransport  (net/network.hpp)        in-process simulated LAN; the
//                                          default, and what the unit tests
//                                          and deterministic benches use;
//   UdpTransport  (net/udp_transport.hpp)  one real UDP socket per host,
//                                          usable across OS processes via
//                                          tools/ftl-node.
//
// The contract every backend must satisfy (enforced by the conformance
// suite, tests/net/transport_conformance_test.cpp):
//
//  - point-to-point datagrams, FIFO per (src,dst) link;
//  - self-addressed messages are local loopback: reliable, immediate, and
//    not counted as network traffic;
//  - fail-silent crash(h): once crash() returns, no further message from or
//    to `h` is delivered anywhere — including h's own in-flight sends and
//    any post-recover incarnation of h — and h's blocked recv() calls
//    return std::nullopt;
//  - recover(h): the inbox reopens empty; pre-crash traffic never surfaces;
//  - traffic accounting per host (TrafficStats) plus a deterministic
//    drop-filter hook, both exported through ftl::obs as ftl_net_* series.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "net/message.hpp"

namespace ftl::net {

/// Per-host traffic counters (monotone; survive crash/recover).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  /// Extra copies scheduled by duplicate injection (the original is counted
  /// in messages_sent; the copy only here). Always 0 on backends that do not
  /// inject duplicates.
  std::uint64_t messages_duplicated = 0;

  void add(const TrafficStats& s) {
    messages_sent += s.messages_sent;
    bytes_sent += s.bytes_sent;
    messages_delivered += s.messages_delivered;
    messages_dropped += s.messages_dropped;
    messages_duplicated += s.messages_duplicated;
  }
};

class Transport;

/// A host's handle onto its transport. Each simulated processor owns exactly
/// one Endpoint; its service threads block in recv().
///
/// LIFETIME: an Endpoint is a non-owning handle — it must not outlive the
/// Transport that minted it. FtLindaSystem guarantees this by destroying
/// every per-host stack before the transport; ftl-node style deployments
/// must do the same. Debug builds verify the rule on every call (via a
/// liveness token); release builds document it here and crash undefined
/// otherwise.
class Endpoint {
 public:
  HostId host() const { return host_; }

  /// Send one datagram. Silently dropped if this host or dst is crashed.
  void send(HostId dst, std::uint16_t type, Bytes payload);

  /// Send the same payload to every host in `dsts`.
  void multicast(const std::vector<HostId>& dsts, std::uint16_t type, const Bytes& payload);

  /// Blocking receive; std::nullopt when the host has been crashed/shut down.
  std::optional<Message> recv();

  /// Receive with timeout; std::nullopt on timeout or crash.
  std::optional<Message> recvFor(Micros timeout);

  /// Non-blocking receive; std::nullopt when the inbox is empty. Unlike
  /// recvFor(0) this never touches the condition variable (a zero-timeout
  /// wait still costs a futex syscall — ruinous on a hot poll path).
  std::optional<Message> tryRecv();

 private:
  friend class Transport;
  Endpoint(Transport& t, HostId host, std::weak_ptr<const void> liveness)
      : t_(&t), host_(host), liveness_(std::move(liveness)) {}
  void checkAlive() const;

  Transport* t_;
  HostId host_;
  /// Expires when the Transport dies; checked by FTL_DASSERT in debug builds.
  std::weak_ptr<const void> liveness_;
};

/// Abstract transport. Construct a concrete backend with a host count; then
/// hand each processor its endpoint().
class Transport {
 public:
  virtual ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual std::uint32_t hostCount() const = 0;

  /// The (singleton) endpoint for `host`.
  Endpoint endpoint(HostId host);

  /// Fail-silent crash: all traffic to/from `host` vanishes and its blocked
  /// recv() calls return std::nullopt. Idempotent.
  virtual void crash(HostId host) = 0;

  /// Undo crash(): the inbox reopens empty. The recovering protocol layer is
  /// responsible for state transfer. Idempotent.
  virtual void recover(HostId host) = 0;

  virtual bool isCrashed(HostId host) const = 0;

  /// Snapshot of a host's traffic counters.
  virtual TrafficStats stats(HostId host) const = 0;

  /// Sum of all hosts' counters.
  virtual TrafficStats totalStats() const = 0;

  /// Messages sent per message type (non-loopback, pre-drop), network-wide.
  virtual std::map<std::uint16_t, std::uint64_t> sentByType() const = 0;

  /// Zero all traffic counters (between bench phases).
  virtual void resetStats() = 0;

  /// Deterministic fault injection for tests: every outgoing message is
  /// offered to `filter`; returning true DROPS it (counted in
  /// messages_dropped). Pass nullptr to clear. Loopback traffic is exempt,
  /// like probabilistic loss. The filter runs under the transport lock —
  /// keep it trivial and never call back into the transport.
  using DropFilter = std::function<bool(const Message&)>;
  virtual void setDropFilter(DropFilter filter) = 0;

  /// Deliver-everything barrier for tests: returns once every message
  /// already sent has either reached its destination inbox or been dropped.
  virtual void drain() = 0;

 protected:
  Transport();

  // The Endpoint-facing half, implemented by each backend.
  friend class Endpoint;
  virtual void sendMessage(Message msg) = 0;
  virtual std::optional<Message> recvOn(HostId host) = 0;
  virtual std::optional<Message> recvOnFor(HostId host, Micros timeout) = 0;
  virtual std::optional<Message> tryRecvOn(HostId host) = 0;

  /// Messages accepted but not yet handed to an inbox (obs gauge only).
  virtual std::size_t inFlightCount() const { return 0; }

  /// Register/unregister the shared ftl_net_* obs source (TrafficStats +
  /// sent-by-type + in-flight gauges). Call registerTrafficObs() at the END
  /// of the derived constructor (the callback makes virtual calls) and
  /// unregisterTrafficObs() at the START of the derived destructor.
  void registerTrafficObs();
  void unregisterTrafficObs();

  /// Distinguishes the obs series of transports that coexist in one process
  /// (tests spin up several). Assigned at construction.
  std::uint64_t netId() const { return net_id_; }

 private:
  std::uint64_t net_id_ = 0;
  std::uint64_t obs_token_ = 0;  // obs::registerSource token, 0 = none
  /// Liveness token handed (weakly) to every Endpoint; reset in ~Transport
  /// so stale endpoints are detectable in debug builds.
  std::shared_ptr<const void> liveness_;
};

}  // namespace ftl::net

#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/serde.hpp"
#include "obs/flight.hpp"

namespace ftl::net {

namespace {

constexpr std::uint16_t kFrameMagic = 0xF71D;
// magic + type + src + dst + incarnation + payload length prefix.
constexpr std::size_t kHeaderBytes = 2 + 2 + 4 + 4 + 4 + 4;
// Stay clear of the IPv4 UDP datagram ceiling (65507 payload bytes).
constexpr std::size_t kMaxDatagram = 65000;

std::uint32_t parseIpv4(const std::string& addr) {
  in_addr out{};
  FTL_REQUIRE(inet_pton(AF_INET, addr.c_str(), &out) == 1,
              ("UdpTransport: bad IPv4 address '" + addr + "'").c_str());
  return out.s_addr;  // network byte order
}

}  // namespace

UdpTransport::UdpTransport(std::uint32_t host_count, UdpTransportConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  FTL_REQUIRE(host_count > 0, "UdpTransport needs at least one host");
  hosts_.resize(host_count);
  crashed_.assign(host_count, false);
  incarnation_.assign(host_count, 0);
  stats_.assign(host_count, TrafficStats{});

  std::vector<bool> local(host_count, config_.local_hosts.empty());
  for (HostId h : config_.local_hosts) {
    FTL_REQUIRE(h < host_count, "local_hosts entry out of range");
    local[h] = true;
  }

  const std::uint32_t default_ip = parseIpv4(config_.bind_address);
  for (HostId h = 0; h < host_count; ++h) {
    HostState& hs = hosts_[h];
    hs.local = local[h];
    hs.peer_ip = default_ip;
    if (h < config_.peer_addresses.size() && !config_.peer_addresses[h].empty()) {
      const std::string& spec = config_.peer_addresses[h];
      const auto colon = spec.rfind(':');
      FTL_REQUIRE(colon != std::string::npos,
                  ("peer address '" + spec + "' is not ip:port").c_str());
      hs.peer_ip = parseIpv4(spec.substr(0, colon));
      hs.port = static_cast<std::uint16_t>(std::stoul(spec.substr(colon + 1)));
    } else if (config_.port_base != 0) {
      hs.port = static_cast<std::uint16_t>(config_.port_base + h);
    } else {
      FTL_REQUIRE(hs.local, "remote host needs a peer address or a nonzero port_base");
    }
    if (hs.local) {
      hs.inbox = std::make_unique<BlockingQueue<Message>>();
      hs.stop = std::make_unique<std::atomic<bool>>(false);
      openSocket(h, hs.port);  // fills hs.port when ephemeral
    }
  }
  registerTrafficObs();
  for (HostId h = 0; h < host_count; ++h) {
    if (hosts_[h].local) startReceiver(h);
  }
}

UdpTransport::~UdpTransport() {
  unregisterTrafficObs();
  for (HostId h = 0; h < hosts_.size(); ++h) {
    teardownSocket(h);
    if (hosts_[h].inbox) hosts_[h].inbox->close();
  }
}

void UdpTransport::openSocket(HostId host, std::uint16_t bind_port) {
  HostState& hs = hosts_[host];
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  FTL_CHECK(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config_.rcvbuf_bytes, sizeof(config_.rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parseIpv4(config_.bind_address);
  addr.sin_port = htons(bind_port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = "bind(" + config_.bind_address + ":" + std::to_string(bind_port) +
                            ") failed: " + std::strerror(errno);
    ::close(fd);
    FTL_CHECK(false, why.c_str());
  }
  socklen_t len = sizeof(addr);
  FTL_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
            "getsockname() failed");
  hs.port = ntohs(addr.sin_port);
  hs.fd = fd;
}

void UdpTransport::startReceiver(HostId host) {
  HostState& hs = hosts_[host];
  hs.stop->store(false, std::memory_order_relaxed);
  hs.rx = std::thread([this, host, fd = hs.fd, stop = hs.stop.get()] {
    receiverLoop(host, fd, stop);
  });
}

void UdpTransport::teardownSocket(HostId host) {
  HostState& hs = hosts_[host];
  if (!hs.local) return;
  if (hs.rx.joinable()) {
    hs.stop->store(true, std::memory_order_relaxed);
    hs.rx.join();  // the 20ms poll timeout bounds the wait
  }
  std::lock_guard<std::mutex> lock(mutex_);  // no sendto on a closing fd
  if (hs.fd >= 0) {
    ::close(hs.fd);
    hs.fd = -1;
  }
}

void UdpTransport::receiverLoop(HostId host, int fd, std::atomic<bool>* stop) {
  std::vector<std::uint8_t> buf(kMaxDatagram + kHeaderBytes);
  while (!stop->load(std::memory_order_relaxed)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 20);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const ssize_t n = ::recvfrom(fd, buf.data(), buf.size(), 0, nullptr, nullptr);
    if (n <= 0) continue;
    deliverFrame(host, buf.data(), static_cast<std::size_t>(n));
  }
}

void UdpTransport::deliverFrame(HostId host, const std::uint8_t* data, std::size_t len) {
  Message msg;
  std::uint32_t incarnation = 0;
  try {
    Reader r(data, len);
    if (r.u16() != kFrameMagic) throw Error("bad magic");
    msg.type = r.u16();
    msg.src = r.u32();
    msg.dst = r.u32();
    incarnation = r.u32();
    msg.payload = r.bytes();
    if (!r.atEnd()) throw Error("trailing bytes");
  } catch (const Error&) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_[host].messages_dropped += 1;
    obs::flight::record(obs::flight::Kind::Drop, host, 0, 0, "bad frame");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (msg.src >= hosts_.size() || msg.dst != host) {
      stats_[host].messages_dropped += 1;
      return;
    }
    // Learn newer incarnations from the wire (a remote process bumped its
    // counter when it crashed/recovered); drop anything older — that is the
    // fail-silent guarantee for datagrams already in kernel buffers.
    if (incarnation > incarnation_[msg.src]) incarnation_[msg.src] = incarnation;
    if (incarnation < incarnation_[msg.src] || crashed_[msg.src] || crashed_[host]) {
      stats_[host].messages_dropped += 1;
      obs::flight::record(obs::flight::Kind::Drop, host, msg.src, incarnation,
                          "stale incarnation");
      return;
    }
    stats_[host].messages_delivered += 1;
  }
  hosts_[host].inbox->push(std::move(msg));
}

void UdpTransport::sendMessage(Message msg) {
  FTL_REQUIRE(msg.dst < hosts_.size(), "send(): no such destination");
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_[msg.src]) return;  // sender dead: message never existed
  if (msg.src == msg.dst) {
    // Local loopback: reliable, immediate, uncounted (same as SimTransport).
    if (hosts_[msg.dst].local) hosts_[msg.dst].inbox->push(std::move(msg));
    return;
  }
  FTL_REQUIRE(hosts_[msg.src].local, "send(): source host lives in another process");
  auto& sender_stats = stats_[msg.src];
  sender_stats.messages_sent += 1;
  sender_stats.bytes_sent += msg.payload.size();
  if (msg.type >= sent_by_type_.size()) sent_by_type_.resize(msg.type + 1, 0);
  sent_by_type_[msg.type] += 1;
  if (msg.payload.size() > kMaxDatagram) {
    sender_stats.messages_dropped += 1;
    obs::flight::record(obs::flight::Kind::Drop, msg.src, msg.dst,
                        static_cast<std::int64_t>(msg.payload.size()), "oversize datagram");
    FTL_WARN("net", "UDP payload of " << msg.payload.size() << " bytes exceeds datagram limit");
    return;
  }
  if (config_.drop_probability > 0.0 && rng_.chance(config_.drop_probability)) {
    sender_stats.messages_dropped += 1;
    return;
  }
  if (drop_filter_ && drop_filter_(msg)) {
    sender_stats.messages_dropped += 1;
    return;
  }

  Writer w;
  w.u16(kFrameMagic);
  w.u16(msg.type);
  w.u32(msg.src);
  w.u32(msg.dst);
  w.u32(incarnation_[msg.src]);
  w.bytes(msg.payload);
  const Bytes& frame = w.buffer();

  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = hosts_[msg.dst].peer_ip;
  to.sin_port = htons(hosts_[msg.dst].port);
  const ssize_t n = ::sendto(hosts_[msg.src].fd, frame.data(), frame.size(), 0,
                             reinterpret_cast<const sockaddr*>(&to), sizeof(to));
  if (n != static_cast<ssize_t>(frame.size())) {
    // ECONNREFUSED etc. — real-world loss; the layers above retransmit.
    sender_stats.messages_dropped += 1;
    obs::flight::record(obs::flight::Kind::Drop, msg.src, msg.dst, 0, "sendto failed");
  }
}

std::optional<Message> UdpTransport::recvOn(HostId host) { return inboxOf(host).pop(); }

std::optional<Message> UdpTransport::recvOnFor(HostId host, Micros timeout) {
  return inboxOf(host).popFor(timeout);
}

std::optional<Message> UdpTransport::tryRecvOn(HostId host) { return inboxOf(host).tryPop(); }

BlockingQueue<Message>& UdpTransport::inboxOf(HostId host) {
  FTL_REQUIRE(hosts_[host].local, "recv(): host lives in another process");
  return *hosts_[host].inbox;
}

std::uint16_t UdpTransport::port(HostId host) const {
  FTL_REQUIRE(host < hosts_.size(), "port(): no such host");
  return hosts_[host].port;
}

bool UdpTransport::isLocal(HostId host) const {
  FTL_REQUIRE(host < hosts_.size(), "isLocal(): no such host");
  return hosts_[host].local;
}

void UdpTransport::crash(HostId host) {
  FTL_REQUIRE(host < hosts_.size(), "crash(): no such host");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (crashed_[host]) return;
    crashed_[host] = true;
    // Stale-frame fence: everything the host sent so far carries the old
    // incarnation and will be dropped on receipt, wherever it is buffered.
    incarnation_[host] += 1;
    obs::flight::record(obs::flight::Kind::IncarnationFence, host, host,
                        incarnation_[host]);
  }
  if (hosts_[host].local) {
    teardownSocket(host);  // port quarantined until recover()
    hosts_[host].inbox->close();
    hosts_[host].inbox->clear();
  }
  FTL_INFO("net", "host " << host << " crashed (udp; port quarantined)");
}

void UdpTransport::recover(HostId host) {
  FTL_REQUIRE(host < hosts_.size(), "recover(): no such host");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!crashed_[host]) return;
    crashed_[host] = false;
  }
  if (hosts_[host].local) {
    hosts_[host].inbox->clear();
    hosts_[host].inbox->reopen();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      openSocket(host, hosts_[host].port);  // rebind the quarantined port
    }
    startReceiver(host);
  }
  FTL_INFO("net", "host " << host << " recovered (udp)");
}

bool UdpTransport::isCrashed(HostId host) const {
  FTL_REQUIRE(host < hosts_.size(), "isCrashed(): no such host");
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_[host];
}

TrafficStats UdpTransport::stats(HostId host) const {
  FTL_REQUIRE(host < hosts_.size(), "stats(): no such host");
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_[host];
}

TrafficStats UdpTransport::totalStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TrafficStats total;
  for (const auto& s : stats_) total.add(s);
  return total;
}

std::map<std::uint16_t, std::uint64_t> UdpTransport::sentByType() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint16_t, std::uint64_t> out;
  for (std::size_t type = 0; type < sent_by_type_.size(); ++type) {
    if (sent_by_type_[type] != 0) out.emplace(static_cast<std::uint16_t>(type), sent_by_type_[type]);
  }
  return out;
}

void UdpTransport::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : stats_) s = TrafficStats{};
  std::fill(sent_by_type_.begin(), sent_by_type_.end(), 0);
}

void UdpTransport::setDropFilter(DropFilter filter) {
  std::lock_guard<std::mutex> lock(mutex_);
  drop_filter_ = std::move(filter);
}

void UdpTransport::drain() {
  // No global in-flight heap to watch: settle once every live local socket's
  // kernel buffer has been empty on two consecutive checks (loopback delivery
  // is near-synchronous, so this converges in a few milliseconds).
  int stable = 0;
  for (int spin = 0; spin < 500 && stable < 2; ++spin) {
    bool all_empty = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const HostState& hs : hosts_) {
        if (hs.fd < 0) continue;
        int pending = 0;
        if (::ioctl(hs.fd, FIONREAD, &pending) == 0 && pending > 0) {
          all_empty = false;
          break;
        }
      }
    }
    stable = all_empty ? stable + 1 : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace ftl::net

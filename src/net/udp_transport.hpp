// UdpTransport: the real-socket Transport backend (docs/TRANSPORT.md).
//
// One non-blocking UDP socket per LOCAL host, each drained by a receiver
// thread into the host's inbox queue; sends go straight to the destination
// host's socket address. The same process can own every host (loopback
// testing, bench_e14_transport) or just one of them (tools/ftl-node runs a
// tuple server or client per OS process and lists the peers in a hosts
// file).
//
// Wire framing (length-delimited by the datagram itself, fields encoded
// with common/serde, little-endian):
//
//   u16 magic (0xF71D) | u16 type | u32 src | u32 dst | u32 incarnation |
//   u32 payload_len | payload bytes
//
// Frames that fail to decode, carry the wrong magic, or arrive for the
// wrong host are dropped and counted in messages_dropped of the RECEIVING
// host (malformed traffic is the receiver's problem; send-side drops —
// filter, loss injection, EMSGSIZE — are the sender's).
//
// Crash semantics. crash(h) marks the host, stops its receiver thread,
// closes its socket, and QUARANTINES its port: nothing listens there until
// recover(h) rebinds the same port. The incarnation field makes the
// fail-silent contract exact even though real sockets have no global
// in-flight heap to purge: every crash(h) bumps h's incarnation, sends are
// stamped with the sender's current incarnation, and receivers drop frames
// whose incarnation is below the highest they have seen for that source —
// so a datagram a host sent before crashing can never be delivered after
// the crash, not even to the host's own rejoined incarnation.
//
// Known caveats (also in docs/TRANSPORT.md):
//  - payloads are bounded by the UDP datagram limit (~64 KiB with the
//    framing overhead); oversized sends are dropped and counted;
//  - kernel socket buffers can overflow under burst load — real loss, which
//    the Consul layer already retransmits around (rcvbuf_bytes raises the
//    ceiling);
//  - crash()/isCrashed() of a REMOTE host only suppresses local delivery
//    from it; it cannot stop the remote process (ftl-node kills processes
//    for real crash testing).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"

namespace ftl::net {

struct UdpTransportConfig {
  /// Address the local hosts' sockets bind to.
  std::string bind_address = "127.0.0.1";
  /// Host i binds (and is reached at) port_base + i. 0 = kernel-assigned
  /// ephemeral ports, which only works when every host is local to this
  /// process (peers learn each other's ports through shared memory).
  std::uint16_t port_base = 0;
  /// Multi-process deployments: "ip:port" per host id, overriding
  /// bind_address/port_base for REMOTE hosts. Empty = all hosts local.
  std::vector<std::string> peer_addresses;
  /// Hosts this process owns sockets for. Empty = all of them.
  std::vector<HostId> local_hosts;
  /// Send-side probabilistic loss injection, mirroring
  /// NetworkConfig::drop_probability.
  double drop_probability = 0.0;
  /// Seed for the loss RNG.
  std::uint64_t seed = 42;
  /// SO_RCVBUF request per socket (burst headroom on loopback).
  int rcvbuf_bytes = 1 << 20;
};

class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(std::uint32_t host_count, UdpTransportConfig config = {});
  ~UdpTransport() override;

  std::uint32_t hostCount() const override {
    return static_cast<std::uint32_t>(hosts_.size());
  }

  /// The UDP port a local host is bound to (resolves ephemeral ports).
  std::uint16_t port(HostId host) const;
  bool isLocal(HostId host) const;

  void crash(HostId host) override;
  void recover(HostId host) override;
  bool isCrashed(HostId host) const override;

  TrafficStats stats(HostId host) const override;
  TrafficStats totalStats() const override;
  std::map<std::uint16_t, std::uint64_t> sentByType() const override;
  void resetStats() override;
  void setDropFilter(DropFilter filter) override;

  /// Settles once every local socket's kernel receive buffer has drained
  /// into the inboxes and stayed empty briefly. Real sockets have no global
  /// in-flight heap, so this is a bounded-wait barrier (~1 s worst case),
  /// not an exact one; loopback delivery is effectively synchronous, which
  /// is what makes it reliable in practice.
  void drain() override;

 protected:
  void sendMessage(Message msg) override;
  std::optional<Message> recvOn(HostId host) override;
  std::optional<Message> recvOnFor(HostId host, Micros timeout) override;
  std::optional<Message> tryRecvOn(HostId host) override;

 private:
  struct HostState {
    bool local = false;
    int fd = -1;
    std::uint16_t port = 0;                    // bound (local) or peer port
    std::uint32_t peer_ip = 0;                 // network byte order
    std::unique_ptr<BlockingQueue<Message>> inbox;  // local hosts only
    std::unique_ptr<std::atomic<bool>> stop;        // receiver-thread flag
    std::thread rx;
  };

  void openSocket(HostId host, std::uint16_t bind_port);
  void startReceiver(HostId host);
  /// Stop + join host's receiver and close its socket (idempotent).
  void teardownSocket(HostId host);
  void receiverLoop(HostId host, int fd, std::atomic<bool>* stop);
  /// Decode + filter one datagram; push to the inbox on acceptance.
  void deliverFrame(HostId host, const std::uint8_t* data, std::size_t len);
  BlockingQueue<Message>& inboxOf(HostId host);

  UdpTransportConfig config_;
  std::vector<HostState> hosts_;

  mutable std::mutex mutex_;  // guards everything below (fds are thread-owned)
  std::vector<bool> crashed_;
  /// Highest incarnation known per host: bumped by local crash(), raised by
  /// frames from remotes that recovered. Frames below it are stale.
  std::vector<std::uint32_t> incarnation_;
  std::vector<TrafficStats> stats_;
  std::vector<std::uint64_t> sent_by_type_;
  DropFilter drop_filter_;
  Xoshiro256 rng_;
};

}  // namespace ftl::net

#include "obs/assemble.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/assert.hpp"
#include "common/clock.hpp"

namespace ftl::obs::assemble {

namespace {

constexpr std::uint32_t kSpanMagic = 0x46545350;  // "FTSP" (one host)
constexpr std::uint32_t kFileMagic = 0x46545341;  // "FTSA" (host set)
constexpr std::uint8_t kVersion = 1;

/// Stage names in pipeline order; the index doubles as the monotonicity
/// rank for offset-corrected start times.
constexpr const char* kStageOrder[] = {"ags.issue",  "ags.verify", "ags.order", "ags.coalesce",
                                       "ags.apply", "ags.reply", "ags.future_wake"};

/// Stages whose durations tile the e2e span (verify is a sub-interval of
/// issue — the issuer verifies the already-encoded command bytes mid-issue —
/// coalesce is a sub-interval of order, future_wake runs after the e2e span
/// closes; all three are reported but excluded from the critical-path sum).
constexpr const char* kCriticalPath[] = {"ags.issue", "ags.order", "ags.apply", "ags.reply"};

int stageRank(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kStageOrder); ++i) {
    if (name == kStageOrder[i]) return static_cast<int>(i);
  }
  return -1;
}

bool onCriticalPath(const std::string& name) {
  for (const char* s : kCriticalPath) {
    if (name == s) return true;
  }
  return false;
}

std::string jsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::int64_t TraceReport::AgsRow::stageSumNs() const {
  std::int64_t sum = 0;
  for (const auto& [name, ns] : stage_ns) {
    if (onCriticalPath(name)) sum += ns;
  }
  return sum;
}

HostSpans captureLocal(std::uint32_t host) {
  HostSpans hs;
  hs.host = host;
  hs.clock_ns = nowNanos();
  hs.spans = trace::exportEvents();
  return hs;
}

Bytes encode(const HostSpans& hs) {
  Writer w;
  w.u32(kSpanMagic);
  w.u8(kVersion);
  w.u32(hs.host);
  w.i64(hs.clock_ns);
  w.i64(hs.offset_ns);
  w.u32(static_cast<std::uint32_t>(hs.spans.size()));
  for (const auto& e : hs.spans) {
    w.str(e.name);
    w.u8(static_cast<std::uint8_t>(e.phase));
    w.u64(e.id);
    w.i64(e.ts_ns);
    w.i64(e.dur_ns);
    w.u32(e.tid);
    w.str(e.thread_name);
  }
  return w.take();
}

HostSpans decode(Reader& r) {
  FTL_CHECK(r.u32() == kSpanMagic, "bad span-dump magic");
  FTL_CHECK(r.u8() == kVersion, "unsupported span-dump version");
  HostSpans hs;
  hs.host = r.u32();
  hs.clock_ns = r.i64();
  hs.offset_ns = r.i64();
  const std::uint32_t n = r.u32();
  hs.spans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    trace::RawEvent e;
    e.name = r.str();
    e.phase = static_cast<char>(r.u8());
    e.id = r.u64();
    e.ts_ns = r.i64();
    e.dur_ns = r.i64();
    e.tid = r.u32();
    e.thread_name = r.str();
    hs.spans.push_back(std::move(e));
  }
  return hs;
}

Bytes encodeFile(const std::vector<HostSpans>& hosts) {
  Writer w;
  w.u32(kFileMagic);
  w.u8(kVersion);
  w.u32(static_cast<std::uint32_t>(hosts.size()));
  for (const auto& hs : hosts) w.bytes(encode(hs));
  return w.take();
}

std::vector<HostSpans> decodeFile(BytesView bytes) {
  Reader r(bytes);
  FTL_CHECK(r.u32() == kFileMagic, "bad spans-file magic");
  FTL_CHECK(r.u8() == kVersion, "unsupported spans-file version");
  const std::uint32_t n = r.u32();
  std::vector<HostSpans> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const BytesView blob = r.readBlobView();
    Reader hr(blob);
    out.push_back(decode(hr));
  }
  return out;
}

std::int64_t estimateOffset(const std::vector<PingSample>& samples) {
  std::int64_t best_rtt = std::numeric_limits<std::int64_t>::max();
  std::int64_t offset = 0;
  for (const auto& s : samples) {
    const std::int64_t rtt = s.t1_ns - s.t0_ns;
    if (rtt < 0 || rtt >= best_rtt) continue;
    best_rtt = rtt;
    offset = s.server_ns - (s.t0_ns + s.t1_ns) / 2;
  }
  return offset;
}

std::string mergedChromeJson(const std::vector<HostSpans>& hosts) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  };
  for (const auto& hs : hosts) {
    {
      std::ostringstream m;
      m << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << hs.host
        << ",\"args\":{\"name\":\"host " << hs.host << "\"}}";
      emit(m.str());
    }
    // One thread_name metadata record per (host, tid).
    std::map<std::uint32_t, std::string> names;
    for (const auto& e : hs.spans) {
      if (!e.thread_name.empty()) names.emplace(e.tid, e.thread_name);
    }
    for (const auto& [tid, name] : names) {
      std::ostringstream m;
      m << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << hs.host << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << jsonEscaped(name) << "\"}}";
      emit(m.str());
    }
    for (const auto& e : hs.spans) {
      std::ostringstream l;
      l << "{\"name\":\"" << jsonEscaped(e.name) << "\",\"cat\":\"ags\",\"ph\":\"" << e.phase
        << "\",\"pid\":" << hs.host << ",\"tid\":" << e.tid
        << ",\"ts\":" << static_cast<double>(e.ts_ns + hs.offset_ns) / 1e3;
      if (e.phase == 'X') l << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
      if (e.phase == 'b' || e.phase == 'e' || e.phase == 'n') {
        l << ",\"id\":\"0x" << std::hex << e.id << std::dec << "\"";
      }
      l << ",\"args\":{\"trace_id\":" << e.id << ",\"host\":" << hs.host << "}}";
      emit(l.str());
    }
  }
  os << "\n]}\n";
  return os.str();
}

TraceReport analyze(const std::vector<HostSpans>& hosts) {
  struct PerAgs {
    std::int64_t e2e_begin = -1, e2e_end = -1;        // "ags" b/e (local preferred)
    std::int64_t rpc_begin = -1, rpc_end = -1;        // "ags.rpc" b/e (remote clients)
    std::map<std::string, std::int64_t> stage_dur;    // X stages + assembled b/e pairs
    std::map<std::string, std::int64_t> stage_start;  // offset-corrected starts
    std::map<std::string, std::int64_t> async_begin;  // pending b timestamps
    std::map<std::string, int> seen;                  // per-stage record count
  };
  std::map<std::uint64_t, PerAgs> by_id;

  // Events within one host's rings are windows over per-thread rings, not
  // globally ordered; sort each trace id's contributions by corrected time
  // implicitly by walking hosts then matching begin/end pairs.
  for (const auto& hs : hosts) {
    for (const auto& e : hs.spans) {
      if (e.id == 0) continue;
      // Only AGS-lifecycle events form rows: batch/bookkeeping spans
      // (sm.apply_batch keys on gseq, not trace id) must not fabricate
      // phantom AGS entries.
      if (e.name != "ags" && e.name != "ags.rpc" && stageRank(e.name) < 0) continue;
      const std::int64_t ts = e.ts_ns + hs.offset_ns;
      PerAgs& a = by_id[e.id];
      if (e.name == "ags") {
        if (e.phase == 'b') a.e2e_begin = ts;
        if (e.phase == 'e') a.e2e_end = ts;
        continue;
      }
      if (e.name == "ags.rpc") {
        if (e.phase == 'b') a.rpc_begin = ts;
        if (e.phase == 'e') a.rpc_end = ts;
        continue;
      }
      if (stageRank(e.name) < 0) continue;
      if (e.phase == 'X') {
        a.stage_dur[e.name] += e.dur_ns;
        a.stage_start.emplace(e.name, ts);
        a.seen[e.name] += 1;
      } else if (e.phase == 'b') {
        a.async_begin[e.name] = ts;
        a.stage_start.emplace(e.name, ts);
      } else if (e.phase == 'e') {
        auto it = a.async_begin.find(e.name);
        if (it != a.async_begin.end()) {
          a.stage_dur[e.name] += ts - it->second;
          a.async_begin.erase(it);
          a.seen[e.name] += 1;
        }
      }
    }
  }

  TraceReport r;
  double e2e_total = 0, sum_total = 0;
  std::uint64_t covered = 0;
  for (auto& [id, a] : by_id) {
    TraceReport::AgsRow row;
    row.trace_id = id;
    std::int64_t b = a.e2e_begin, e = a.e2e_end;
    if (b < 0 || e < 0) {
      b = a.rpc_begin;
      e = a.rpc_end;
    }
    if (b >= 0 && e >= 0) row.e2e_ns = e - b;
    row.stage_ns = a.stage_dur;
    for (const auto& [name, n] : a.seen) {
      if (n > 1) ++r.duplicate_stages;
      r.stages[name].count += 1;
      r.stages[name].total_ns += static_cast<double>(a.stage_dur[name]);
    }
    // Monotonicity of offset-corrected stage starts along the pipeline.
    int last_rank = -1;
    std::int64_t last_ts = std::numeric_limits<std::int64_t>::min();
    bool violated = false;
    for (const char* stage : kStageOrder) {
      auto it = a.stage_start.find(stage);
      if (it == a.stage_start.end()) continue;
      const int rank = stageRank(stage);
      if (rank > last_rank && it->second < last_ts) violated = true;
      last_rank = rank;
      last_ts = it->second;
    }
    if (violated) ++r.monotone_violations;
    if (row.e2e_ns > 0) {
      e2e_total += static_cast<double>(row.e2e_ns);
      sum_total += static_cast<double>(row.stageSumNs());
      ++covered;
    }
    r.ags.push_back(std::move(row));
  }
  if (covered > 0) {
    r.mean_e2e_ns = e2e_total / static_cast<double>(covered);
    r.mean_stage_sum_ns = sum_total / static_cast<double>(covered);
    if (e2e_total > 0) r.coverage = sum_total / e2e_total;
  }
  return r;
}

std::string reportText(const TraceReport& r) {
  std::ostringstream os;
  os << "cross-host critical path: " << r.ags.size() << " AGS traces\n";
  char buf[160];
  std::snprintf(buf, sizeof buf, "  mean e2e %.1fus, critical-path stage sum %.1fus (%.0f%%)\n",
                r.mean_e2e_ns / 1e3, r.mean_stage_sum_ns / 1e3, 100.0 * r.coverage);
  os << buf;
  os << "  monotone violations " << r.monotone_violations << ", duplicate stages "
     << r.duplicate_stages << "\n";
  os << "  stage                    count     mean\n";
  for (const auto& [name, st] : r.stages) {
    std::snprintf(buf, sizeof buf, "  %-22s %7llu %7.1fus%s\n", name.c_str(),
                  static_cast<unsigned long long>(st.count), st.meanNs() / 1e3,
                  onCriticalPath(name) ? "" : "  (overlaps, not summed)");
    os << buf;
  }
  return os.str();
}

std::string reportJson(const TraceReport& r) {
  std::ostringstream os;
  os << "{\n  \"ags_count\": " << r.ags.size() << ",\n";
  os << "  \"mean_e2e_ns\": " << r.mean_e2e_ns << ",\n";
  os << "  \"mean_stage_sum_ns\": " << r.mean_stage_sum_ns << ",\n";
  os << "  \"coverage\": " << r.coverage << ",\n";
  os << "  \"monotone_violations\": " << r.monotone_violations << ",\n";
  os << "  \"duplicate_stages\": " << r.duplicate_stages << ",\n";
  os << "  \"stages\": {";
  bool first = true;
  for (const auto& [name, st] : r.stages) {
    os << (first ? "\n" : ",\n") << "    \"" << jsonEscaped(name) << "\": {\"count\": " << st.count
       << ", \"mean_ns\": " << st.meanNs() << ", \"critical_path\": "
       << (onCriticalPath(name) ? "true" : "false") << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

}  // namespace ftl::obs::assemble

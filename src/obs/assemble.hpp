// ftl::obs::assemble — cross-host trace assembly (docs/OBSERVABILITY.md
// "Cross-host trace assembly").
//
// Each host traces into its own process-local rings (obs/trace.hpp) on its
// own monotonic clock. This module is the cluster-level layer on top:
//  - HostSpans: one host's exported span set plus the clock context needed
//    to place it on a shared timeline (capture-time clock reading and an
//    estimated offset onto the reference host's clock);
//  - a compact binary wire/file format (encode/decode) — the same blob the
//    tuple server's trace-dump RPC ships and that trace producers write as
//    a `.spans` sidecar next to Chrome JSON dumps;
//  - NTP-style offset estimation from request/reply clock samples;
//  - a merger producing one Chrome trace-event JSON with per-host pids and
//    offset-corrected timestamps;
//  - a critical-path analyzer that groups spans by trace id and attributes
//    each AGS's end-to-end latency to the named pipeline stages
//    (issue -> coalesce -> order -> apply -> reply -> future wake).
//
// All timestamps are monotonic nanoseconds on the ORIGINATING host's clock
// unless a HostSpans::offset_ns has been applied; the merger and analyzer
// apply offsets themselves, callers only fill them in.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/serde.hpp"
#include "obs/trace.hpp"

namespace ftl::obs::assemble {

/// One host's span export. `clock_ns` is that host's monotonic clock read
/// at capture time; `offset_ns` maps host-local timestamps onto the
/// reference clock (reference_ts = local_ts + offset_ns) and is 0 until an
/// estimate is filled in.
struct HostSpans {
  std::uint32_t host = 0;
  std::int64_t clock_ns = 0;
  std::int64_t offset_ns = 0;
  std::vector<trace::RawEvent> spans;
};

/// Snapshot this process's tracer rings as host `host`'s span set.
HostSpans captureLocal(std::uint32_t host);

/// Binary format, versioned: one HostSpans per blob. This is the payload of
/// the trace-dump RPC reply and the unit of a `.spans` sidecar file (which
/// simply concatenates encodeFile's framed blobs).
Bytes encode(const HostSpans& hs);
HostSpans decode(Reader& r);

/// Multi-host container: magic + count, then each host blob.
Bytes encodeFile(const std::vector<HostSpans>& hosts);
std::vector<HostSpans> decodeFile(BytesView bytes);

/// One clock-ping exchange: client sends at t0, server stamps server_ns,
/// client receives at t1 (all monotonic ns, client clock for t0/t1).
struct PingSample {
  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::int64_t server_ns = 0;
};

/// NTP-style offset of the server clock relative to the client clock
/// (client_ts + offset = server_ts), taken from the minimum-RTT sample —
/// queuing delay only ever inflates RTT, so the tightest exchange bounds
/// the true offset best. Empty input returns 0.
std::int64_t estimateOffset(const std::vector<PingSample>& samples);

/// Merge every host's spans into one Chrome trace-event JSON: pid = host id,
/// timestamps shifted by each host's offset_ns onto the shared timeline.
std::string mergedChromeJson(const std::vector<HostSpans>& hosts);

/// The ordering-path stage taxonomy the analyzer attributes latency to, in
/// pipeline order (docs/OBSERVABILITY.md "Stage taxonomy").
///  - ags.verify        X   static verify on the issuing thread
///  - ags.issue         X   encode + submit handoff on the issuing thread
///  - ags.order         b/e submit -> origin-side ordered delivery
///  - ags.coalesce      b/e broadcast enqueue -> first request-frame send
///                          (a sub-interval of order, so it ranks after it)
///  - ags.apply         X   state-machine apply at the origin replica
///  - ags.reply         X   reply decode/deposit -> future settled
///  - ags.future_wake   X   future settled -> blocked waiter resumed
/// `ags` (b/e) bounds the end-to-end span; `ags.rpc` (b/e) bounds it for
/// remote clients.
struct TraceReport {
  struct Stage {
    std::uint64_t count = 0;       // AGS that recorded this stage
    double total_ns = 0;           // summed duration
    double meanNs() const { return count ? total_ns / static_cast<double>(count) : 0.0; }
  };
  struct AgsRow {
    std::uint64_t trace_id = 0;
    std::int64_t e2e_ns = 0;                       // ags (or ags.rpc) b->e
    std::map<std::string, std::int64_t> stage_ns;  // per-stage durations
    std::int64_t stageSumNs() const;               // critical-path stages only
  };

  std::vector<AgsRow> ags;
  std::map<std::string, Stage> stages;
  double mean_e2e_ns = 0;
  double mean_stage_sum_ns = 0;
  /// mean_stage_sum / mean_e2e over AGS with a complete e2e span — how much
  /// of the measured latency the named stages account for.
  double coverage = 0;
  /// AGS whose offset-corrected stage start times run backwards relative to
  /// the pipeline order (clock offsets not monotone) — should be 0.
  std::size_t monotone_violations = 0;
  /// (stage name, count) for AGS that recorded a stage more than once.
  std::size_t duplicate_stages = 0;
};

/// Group spans by trace id across hosts (offsets applied) and attribute
/// end-to-end latency to stages. Events with id 0 are ignored.
TraceReport analyze(const std::vector<HostSpans>& hosts);

std::string reportText(const TraceReport& r);
std::string reportJson(const TraceReport& r);

}  // namespace ftl::obs::assemble

#include "obs/flight.hpp"

#include <cstdio>
#include <mutex>
#include <sstream>

#include "common/clock.hpp"

namespace ftl::obs::flight {

namespace {

constexpr std::size_t kCapacity = 8192;

struct Ring {
  std::mutex mutex;
  std::vector<Event> events;   // kCapacity once first used
  std::uint64_t written = 0;   // total events ever recorded
};

Ring& ring() {
  static Ring* r = new Ring();  // leaked: dumps may run during teardown
  return *r;
}

}  // namespace

const char* kindName(Kind k) {
  switch (k) {
    case Kind::ViewChange: return "view_change";
    case Kind::ViewInstalled: return "view_installed";
    case Kind::Retransmit: return "retransmit";
    case Kind::Nack: return "nack";
    case Kind::IncarnationFence: return "incarnation_fence";
    case Kind::ApplyBatch: return "apply_batch";
    case Kind::Drop: return "drop";
    case Kind::SnapshotInstall: return "snapshot_install";
    case Kind::WatchdogTrip: return "watchdog_trip";
    case Kind::Crash: return "crash";
    case Kind::Recover: return "recover";
    case Kind::Note: return "note";
  }
  return "unknown";
}

void record(Kind kind, std::uint32_t host, std::int64_t a, std::int64_t b, const char* note) {
  Event e;
  e.kind = kind;
  e.host = host;
  e.ts_ns = nowNanos();
  e.a = a;
  e.b = b;
  e.note = note;
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.events.empty()) r.events.resize(kCapacity);
  r.events[r.written % kCapacity] = e;
  ++r.written;
}

std::size_t eventCount() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  return static_cast<std::size_t>(std::min<std::uint64_t>(r.written, kCapacity));
}

std::vector<Event> snapshot() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint64_t n = std::min<std::uint64_t>(r.written, kCapacity);
  std::vector<Event> out;
  out.reserve(n);
  for (std::uint64_t i = r.written - n; i < r.written; ++i) {
    out.push_back(r.events[i % kCapacity]);
  }
  return out;
}

std::string dumpJson() {
  const std::vector<Event> events = snapshot();
  std::ostringstream os;
  os << "{\"flight\": [";
  bool first = true;
  for (const Event& e : events) {
    os << (first ? "\n" : ",\n") << "  {\"kind\": \"" << kindName(e.kind)
       << "\", \"host\": " << e.host << ", \"ts_ns\": " << e.ts_ns << ", \"a\": " << e.a
       << ", \"b\": " << e.b;
    if (e.note != nullptr) os << ", \"note\": \"" << e.note << "\"";
    os << "}";
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

bool writeDump(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = dumpJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

void clear() {
  Ring& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.written = 0;
  r.events.clear();
}

}  // namespace ftl::obs::flight

// ftl::obs::flight — per-process flight recorder (docs/OBSERVABILITY.md
// "Flight recorder").
//
// A fixed-size ring of recent structured protocol events — view changes,
// retransmits, incarnation fences, apply-batch boundaries, datagram drops —
// recorded unconditionally at a rate the control plane sets (every event
// here is already a rare or batched occurrence; the per-command data path
// never records). The ring is dumped as JSON on crash-path teardown, a
// watchdog trip, or an ftl-node signal, so a chaos-run post-mortem reads
// the last few thousand protocol decisions without reproducing the run.
//
// `note` arguments MUST be string literals: the recorder stores the
// pointer, exactly like the tracer, so recording never allocates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftl::obs::flight {

enum class Kind : std::uint8_t {
  ViewChange,        // a = coordinator-side view-change round started
  ViewInstalled,     // a = view gseq, b = member count
  Retransmit,        // a = unsent/resent frame or command count
  Nack,              // a = gap start gseq
  IncarnationFence,  // a = host fenced, b = new incarnation
  ApplyBatch,        // a = batch size, b = last gseq in batch
  Drop,              // a = src/dst context, note = reason
  SnapshotInstall,   // a = snapshot gseq
  WatchdogTrip,      // a = signal ordinal, note = signal name
  Crash,             // a = crashed host
  Recover,           // a = recovering host, b = incarnation
  Note,              // freeform marker
};

const char* kindName(Kind k);

/// One recorded event (host = recording host's id, ts_ns = monotonic).
struct Event {
  Kind kind = Kind::Note;
  std::uint32_t host = 0;
  std::int64_t ts_ns = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  const char* note = nullptr;  // string literal or nullptr
};

/// Append to the ring (oldest events overwritten). Thread-safe; cost is an
/// uncontended mutex plus a clock read — keep it off per-command paths.
void record(Kind kind, std::uint32_t host, std::int64_t a = 0, std::int64_t b = 0,
            const char* note = nullptr);

/// Number of events currently held (capped at the ring capacity).
std::size_t eventCount();

/// Oldest-to-newest snapshot of the ring.
std::vector<Event> snapshot();

/// The ring as a JSON document: {"flight": [{...}, ...]}.
std::string dumpJson();

/// Write dumpJson() to `path`; returns false if the file cannot be opened.
bool writeDump(const std::string& path);

/// Drop all recorded events (tests).
void clear();

}  // namespace ftl::obs::flight

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "common/assert.hpp"
#include "common/clock.hpp"

namespace ftl::obs {

namespace {

enum class Kind { Counter, Gauge, Histogram };

struct Entry {
  Kind kind;
  std::unique_ptr<Counter> c;
  std::unique_ptr<Gauge> g;
  std::unique_ptr<Histogram> h;
};

struct Registry {
  std::mutex mutex;
  // std::map: dumps come out name-sorted, so exports are diffable.
  std::map<std::string, Entry, std::less<>> metrics;
  std::map<std::uint64_t, SourceFn> sources;
  std::uint64_t next_source_token = 1;
};

Registry& registry() {
  // Leaked singleton: metric references handed out must stay valid through
  // static destruction (instrumented code may run during teardown).
  static Registry* r = new Registry();
  return *r;
}

Entry& entryFor(std::string_view name, Kind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.metrics.find(name);
  if (it == r.metrics.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::Counter: e.c = std::make_unique<Counter>(); break;
      case Kind::Gauge: e.g = std::make_unique<Gauge>(); break;
      case Kind::Histogram: e.h = std::make_unique<Histogram>(); break;
    }
    it = r.metrics.emplace(std::string(name), std::move(e)).first;
  }
  if (it->second.kind != kind) {
    throw Error("obs: metric '" + std::string(name) + "' already registered as a different kind");
  }
  return it->second;
}

/// Splits "name{label=...}" so histogram series can interpose suffixes
/// before the label set, Prometheus-style.
std::pair<std::string, std::string> splitLabels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  return {name.substr(0, brace), name.substr(brace)};
}

std::string seriesName(const std::string& base, const char* suffix, const std::string& labels) {
  return base + suffix + labels;
}

void appendHistogramSamples(const std::string& name, const Histogram::Snapshot& s,
                            std::vector<Sample>& out) {
  const auto [base, labels] = splitLabels(name);
  out.push_back({seriesName(base, "_count", labels), static_cast<double>(s.count)});
  out.push_back({seriesName(base, "_sum", labels), static_cast<double>(s.sum)});
  out.push_back({seriesName(base, "_p50", labels), static_cast<double>(s.percentile(50))});
  out.push_back({seriesName(base, "_p95", labels), static_cast<double>(s.percentile(95))});
  out.push_back({seriesName(base, "_p99", labels), static_cast<double>(s.percentile(99))});
}

std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  // Integral values (the common case: counters) print without a fraction.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
  return os.str();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

}  // namespace

std::uint64_t Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return upperBound(i);
  }
  return upperBound(kBuckets - 1);
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

ScopedTimerNs::ScopedTimerNs(Histogram& h) : h_(h), start_ns_(nowNanos()) {}
ScopedTimerNs::~ScopedTimerNs() {
  const std::int64_t dt = nowNanos() - start_ns_;
  h_.observe(dt > 0 ? static_cast<std::uint64_t>(dt) : 0);
}

Counter& counter(std::string_view name) { return *entryFor(name, Kind::Counter).c; }
Gauge& gauge(std::string_view name) { return *entryFor(name, Kind::Gauge).g; }
Histogram& histogram(std::string_view name) { return *entryFor(name, Kind::Histogram).h; }

std::uint64_t registerSource(SourceFn fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const std::uint64_t token = r.next_source_token++;
  r.sources.emplace(token, std::move(fn));
  return token;
}

void unregisterSource(std::uint64_t token) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.sources.erase(token);
}

std::vector<Sample> collect() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<Sample> out;
  out.reserve(r.metrics.size() * 2);
  for (const auto& [name, e] : r.metrics) {
    switch (e.kind) {
      case Kind::Counter:
        out.push_back({name, static_cast<double>(e.c->value())});
        break;
      case Kind::Gauge:
        out.push_back({name, static_cast<double>(e.g->value())});
        break;
      case Kind::Histogram:
        appendHistogramSamples(name, e.h->snapshot(), out);
        break;
    }
  }
  for (const auto& [token, fn] : r.sources) fn(out);
  return out;
}

std::string dumpPrometheus() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::ostringstream os;
  for (const auto& [name, e] : r.metrics) {
    const auto [base, labels] = splitLabels(name);
    switch (e.kind) {
      case Kind::Counter:
        os << "# TYPE " << base << " counter\n" << name << " " << e.c->value() << "\n";
        break;
      case Kind::Gauge:
        os << "# TYPE " << base << " gauge\n" << name << " " << e.g->value() << "\n";
        break;
      case Kind::Histogram: {
        const auto s = e.h->snapshot();
        os << "# TYPE " << base << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          cum += s.buckets[i];
          if (s.buckets[i] == 0 && i + 1 < Histogram::kBuckets) continue;  // sparse output
          const std::string le =
              i + 1 == Histogram::kBuckets ? "+Inf" : std::to_string(Histogram::upperBound(i));
          if (labels.empty()) {
            os << base << "_bucket{le=\"" << le << "\"} " << cum << "\n";
          } else {
            // Inject le into the existing label set: {a="b"} -> {a="b",le="..."}.
            os << base << "_bucket" << labels.substr(0, labels.size() - 1) << ",le=\"" << le
               << "\"} " << cum << "\n";
          }
        }
        os << base << "_sum" << labels << " " << s.sum << "\n";
        os << base << "_count" << labels << " " << s.count << "\n";
        break;
      }
    }
  }
  std::vector<Sample> src;
  for (const auto& [token, fn] : r.sources) fn(src);
  std::sort(src.begin(), src.end(), [](const Sample& a, const Sample& b) { return a.name < b.name; });
  for (const auto& s : src) {
    os << s.name << " " << jsonNumber(s.value) << "\n";
  }
  return os.str();
}

std::string dumpJson() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, e] : r.metrics) {
    if (e.kind != Kind::Counter) continue;
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(name) << "\": " << e.c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, e] : r.metrics) {
    if (e.kind != Kind::Gauge) continue;
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(name) << "\": " << e.g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, e] : r.metrics) {
    if (e.kind != Kind::Histogram) continue;
    const auto s = e.h->snapshot();
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(name) << "\": {\"count\": " << s.count
       << ", \"sum\": " << s.sum << ", \"p50\": " << s.percentile(50)
       << ", \"p95\": " << s.percentile(95) << ", \"p99\": " << s.percentile(99) << "}";
    first = false;
  }
  os << "\n  },\n  \"sources\": {";
  std::vector<Sample> src;
  for (const auto& [token, fn] : r.sources) fn(src);
  std::sort(src.begin(), src.end(), [](const Sample& a, const Sample& b) { return a.name < b.name; });
  first = true;
  for (const auto& s : src) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(s.name) << "\": " << jsonNumber(s.value);
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

void resetAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, e] : r.metrics) {
    switch (e.kind) {
      case Kind::Counter: e.c->reset(); break;
      case Kind::Gauge: e.g->reset(); break;
      case Kind::Histogram: e.h->reset(); break;
    }
  }
}

std::vector<Sample> snapshotAll() { return collect(); }

namespace {

/// A sample subtracts iff it is monotone: percentile series and gauges are
/// levels and always report current; everything else (counters, histogram
/// _count/_sum, source samples) is cumulative.
bool isLevelSample(const std::string& name, const std::set<std::string>& gauge_names) {
  if (gauge_names.count(name) != 0) return true;
  const auto [base, labels] = splitLabels(name);
  for (const char* suffix : {"_p50", "_p95", "_p99"}) {
    if (base.size() >= 4 && base.compare(base.size() - 4, 4, suffix) == 0) return true;
  }
  return false;
}

std::set<std::string> gaugeNames() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::set<std::string> out;
  for (const auto& [name, e] : r.metrics) {
    if (e.kind == Kind::Gauge) out.insert(name);
  }
  return out;
}

}  // namespace

std::vector<Sample> deltaSince(const std::vector<Sample>& baseline) {
  std::map<std::string, double> base;
  for (const auto& s : baseline) base[s.name] = s.value;
  const std::set<std::string> gauges = gaugeNames();
  std::vector<Sample> out = collect();
  for (auto& s : out) {
    if (isLevelSample(s.name, gauges)) continue;
    const auto it = base.find(s.name);
    if (it == base.end()) continue;
    // A source that reset underneath the baseline yields current < base;
    // report current rather than a negative delta.
    if (s.value >= it->second) s.value -= it->second;
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

double sampleValue(const std::vector<Sample>& samples, std::string_view name) {
  for (const auto& s : samples) {
    if (s.name == name) return s.value;
  }
  return 0;
}

std::string dumpDeltaJson(const std::vector<Sample>& baseline) {
  const std::vector<Sample> delta = deltaSince(baseline);
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& s : delta) {
    os << (first ? "" : ",") << "\n    \"" << jsonEscape(s.name) << "\": " << jsonNumber(s.value);
    first = false;
  }
  os << "\n  }";
  return os.str();
}

}  // namespace ftl::obs

// ftl::obs — process-wide metrics registry (docs/OBSERVABILITY.md).
//
// Three metric kinds, all safe to touch from any thread without locks:
//  - Counter:   monotone uint64, relaxed-atomic increment (~1ns);
//  - Gauge:     int64 level, relaxed-atomic set/add;
//  - Histogram: fixed power-of-two buckets (log-scale), relaxed-atomic
//    counts — observe() is two increments and a bit_width, no allocation.
//
// Registration (obs::counter("name") etc.) takes a mutex and is meant to be
// done ONCE per call site — cache the returned reference in a static local
// or a member. Metric objects are never deallocated, so cached references
// stay valid for the life of the process.
//
// Subsystems whose statistics already live under their own locks (the
// network's TrafficStats, Consul's protocol counters, the TS state machine's
// deterministic Metrics) fold into the same export through registered
// SOURCES: a callback that appends (name, value) samples to a snapshot.
// That keeps their hot paths exactly as cheap as before this layer existed.
//
// Export:
//  - collect(): every metric flattened to (name, value) samples;
//  - dumpPrometheus(): Prometheus text exposition (histograms with
//    cumulative `_bucket{le=...}` series);
//  - dumpJson() / dump(): one JSON object, the shared schema embedded in
//    every BENCH_*.json (bench/bench_util.hpp).
//
// Naming convention: ftl_<subsystem>_<metric>[{label="v"}]; durations are
// histograms in nanoseconds with an _ns suffix.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) noexcept { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-scale histogram with 4 sub-buckets per octave: bucket i counts
/// observations v with upperBound(i-1) < v <= upperBound(i). Values 0..3 get
/// their own exact buckets; above that, each power-of-two octave [2^(w-1),
/// 2^w) splits into 4 equal sub-ranges keyed by the two bits below the
/// leading one. Quartile-of-octave resolution keeps percentile upper bounds
/// within 25% of the true value (a plain bit_width scheme is off by up to
/// 2×, which collapsed p50 and p95 of sub-millisecond latencies into one
/// bound). 188 buckets cover [0, 2^48) — nanoseconds up to ~78 hours.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 188;

  void observe(std::uint64_t v) noexcept {
    std::size_t b;
    if (v < 4) {
      b = static_cast<std::size_t>(v);
    } else {
      const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
      const std::size_t sub = static_cast<std::size_t>((v >> (w - 3)) & 3);
      b = 4 * (w - 2) + sub;
    }
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t buckets[kBuckets] = {};

    /// Approximate percentile (upper bound of the bucket holding rank
    /// ceil(p/100*count)); 0 when empty. p in [0,100].
    std::uint64_t percentile(double p) const;
    double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
  };
  Snapshot snapshot() const noexcept;

  /// Inclusive upper bound of bucket i (the Prometheus `le` label): exact
  /// for i < 4, then 2^(w-1) + (sub+1)*2^(w-3) - 1 where w = i/4 + 2.
  static std::uint64_t upperBound(std::size_t i) {
    if (i < 4) return i;
    const std::size_t w = i / 4 + 2;
    const std::size_t sub = i % 4;
    if (w >= 64) return ~0ull;
    return (1ull << (w - 1)) + (static_cast<std::uint64_t>(sub) + 1) * (1ull << (w - 3)) - 1;
  }

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

/// Scope timer recording elapsed wall nanoseconds into a Histogram.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram& h);
  ~ScopedTimerNs();
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram& h_;
  std::int64_t start_ns_;
};

// ---- registry ----

/// Look up or create the named metric. The same name always returns the
/// same object; a name may only ever be one kind (ftl::Error otherwise).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// One flattened sample of the current state.
struct Sample {
  std::string name;  // full name, including any {label="v"} suffix
  double value = 0;
};

/// A source appends samples for state living under the subsystem's own
/// lock. Runs with the registry lock held: keep it quick and NEVER call
/// back into the registry from inside it.
using SourceFn = std::function<void(std::vector<Sample>&)>;

/// Register a snapshot source; returns a token for unregisterSource().
/// Sources must be unregistered before the state they read is destroyed.
std::uint64_t registerSource(SourceFn fn);
void unregisterSource(std::uint64_t token);

/// Every registered metric and source flattened to samples. Histograms
/// contribute <name>_count, <name>_sum, <name>_p50/_p95/_p99.
std::vector<Sample> collect();

/// Prometheus text exposition format.
std::string dumpPrometheus();

/// JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
/// {"count":..,"sum":..,"p50":..,"p95":..,"p99":..}},"sources":{...}}.
std::string dumpJson();

/// Alias for dumpJson() — the snapshot embedded in BENCH_*.json.
inline std::string dump() { return dumpJson(); }

/// Zero every registered counter/gauge/histogram (between bench phases).
/// Source-backed values are owned by their subsystems and are not touched.
void resetAll();

/// Epoch snapshot for between-phase deltas. resetAll() cannot reset
/// source-backed samples (the owning subsystem holds those numbers), so a
/// bench that wants per-phase counts snapshots before the phase and
/// subtracts afterwards instead of resetting.
std::vector<Sample> snapshotAll();

/// current − baseline, monotone-aware: counters, histogram _count/_sum
/// series, and source samples subtract (clamped to the current value when
/// the source was reset or replaced underneath the baseline); gauges and
/// percentile (_p50/_p95/_p99) series report the CURRENT value — a level or
/// quantile has no meaningful difference. Samples new since the baseline
/// pass through unchanged. Output is name-sorted.
std::vector<Sample> deltaSince(const std::vector<Sample>& baseline);

/// One sample by exact (full) name in a sample set; 0 when absent.
double sampleValue(const std::vector<Sample>& samples, std::string_view name);

/// The delta rendered as one flat JSON object {"name": value, ...} — what
/// bench_util::writeBenchJson's baseline overload embeds as "obs_delta".
std::string dumpDeltaJson(const std::vector<Sample>& baseline);

}  // namespace ftl::obs

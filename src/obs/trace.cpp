#include "obs/trace.hpp"

#include <bit>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/clock.hpp"

namespace ftl::obs::trace {

namespace {

struct Event {
  const char* name = nullptr;
  char phase = 0;  // 'X', 'b', 'e', 'n'
  std::uint64_t id = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
};

struct ThreadRing {
  std::uint32_t tid = 0;
  std::string thread_name;
  std::vector<Event> events;          // capacity-sized ring, power of two
  std::atomic<std::uint64_t> pos{0};  // total events ever written

  void record(const Event& e) {
    const std::uint64_t p = pos.load(std::memory_order_relaxed);
    events[p & (events.size() - 1)] = e;
    pos.store(p + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::size_t> capacity{1 << 16};
  std::mutex mutex;  // guards rings registration and thread names
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives static dtors
  return *s;
}

ThreadRing& myRing() {
  // The shared_ptr in the registry keeps rings of exited threads alive for
  // the dump; the thread_local holder keeps this thread's ring pinned.
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    r->tid = s.next_tid++;
    r->events.resize(std::bit_ceil(std::max<std::size_t>(s.capacity.load(), 16)));
    s.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void record(const char* name, char phase, std::uint64_t id, std::int64_t ts_ns,
            std::int64_t dur_ns) {
  Event e;
  e.name = name;
  e.phase = phase;
  e.id = id;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  myRing().record(e);
}

}  // namespace

bool enabled() noexcept { return state().enabled.load(std::memory_order_relaxed); }

void enable(std::size_t capacity_per_thread) {
  TraceState& s = state();
  s.capacity.store(std::bit_ceil(std::max<std::size_t>(capacity_per_thread, 16)));
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable() { state().enabled.store(false, std::memory_order_relaxed); }

void clear() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& r : s.rings) r->pos.store(0, std::memory_order_relaxed);
}

std::size_t eventCount() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t n = 0;
  for (const auto& r : s.rings) {
    n += std::min<std::uint64_t>(r->pos.load(std::memory_order_acquire), r->events.size());
  }
  return n;
}

std::int64_t nowNs() noexcept { return nowNanos(); }

void complete(const char* name, std::uint64_t id, std::int64_t start_ns, std::int64_t dur_ns) {
  if (!enabled()) return;
  record(name, 'X', id, start_ns, dur_ns);
}

void asyncBegin(const char* name, std::uint64_t id) {
  if (!enabled()) return;
  record(name, 'b', id, nowNanos(), 0);
}

void asyncEnd(const char* name, std::uint64_t id) {
  if (!enabled()) return;
  record(name, 'e', id, nowNanos(), 0);
}

void instant(const char* name, std::uint64_t id) {
  if (!enabled()) return;
  record(name, 'n', id, nowNanos(), 0);
}

void setThreadName(const std::string& name) {
  ThreadRing& r = myRing();
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  r.thread_name = name;
}

std::string chromeJson() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& line) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  };
  for (const auto& ring : s.rings) {
    if (!ring->thread_name.empty()) {
      std::ostringstream m;
      m << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << ring->tid
        << ",\"args\":{\"name\":\"" << ring->thread_name << "\"}}";
      emit(m.str());
    }
    const std::uint64_t written = ring->pos.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(written, ring->events.size());
    const std::uint64_t start = written - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Event& e = ring->events[(start + i) & (ring->events.size() - 1)];
      if (e.name == nullptr) continue;
      std::ostringstream l;
      // Chrome trace timestamps are MICROseconds (doubles).
      l << "{\"name\":\"" << e.name << "\",\"cat\":\"ags\",\"ph\":\"" << e.phase
        << "\",\"pid\":1,\"tid\":" << ring->tid << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1e3;
      if (e.phase == 'X') l << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
      if (e.phase == 'b' || e.phase == 'e' || e.phase == 'n') {
        l << ",\"id\":\"0x" << std::hex << e.id << std::dec << "\"";
      }
      l << ",\"args\":{\"trace_id\":" << e.id << "}}";
      emit(l.str());
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::vector<RawEvent> exportEvents() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<RawEvent> out;
  for (const auto& ring : s.rings) {
    const std::uint64_t written = ring->pos.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(written, ring->events.size());
    const std::uint64_t start = written - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Event& e = ring->events[(start + i) & (ring->events.size() - 1)];
      if (e.name == nullptr) continue;
      RawEvent r;
      r.name = e.name;
      r.phase = e.phase;
      r.id = e.id;
      r.ts_ns = e.ts_ns;
      r.dur_ns = e.dur_ns;
      r.tid = ring->tid;
      r.thread_name = ring->thread_name;
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace ftl::obs::trace

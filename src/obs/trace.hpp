// ftl::obs::trace — per-thread ring-buffer event tracer for the AGS
// lifecycle (docs/OBSERVABILITY.md).
//
// Design constraints, in order:
//  1. Disabled cost ~1ns: every record call starts with one relaxed atomic
//     load and returns. Tracing is OFF by default.
//  2. Enabled cost is one clock read plus a ring-buffer store. Each thread
//     writes its own fixed-capacity ring (oldest events overwritten), so
//     the hot path takes no locks and does no allocation after the first
//     event on a thread.
//  3. The dump is Chrome trace-event JSON (chromeJson()): write it to a
//     file and open it in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Event model:
//  - complete(name, id, start_ns, dur_ns): a duration on the CALLING
//    thread's track ("ph":"X") — use for work that starts and ends on one
//    thread (verify pass, applyBatch execution);
//  - asyncBegin/asyncEnd(name, id): one span of an async flow ("ph":"b"/
//    "e"), matched ACROSS threads by (name, id) — use for the AGS stages
//    that hop threads (submit -> ordered delivery -> apply -> reply);
//  - instant(name, id): a point marker ("ph":"n").
//
// `name` MUST be a string literal (the tracer stores the pointer).
// `id` is the trace id minted at AGS submission and propagated through
// protocol.hpp Commands; all spans of one AGS share it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ftl::obs::trace {

/// True when tracing is on. Exposed for call sites that want to skip
/// argument computation; the record functions all re-check internally.
bool enabled() noexcept;

/// Turn tracing on. Each thread that records gets its own ring of
/// `capacity_per_thread` events (rounded up to a power of two).
void enable(std::size_t capacity_per_thread = 1 << 16);

/// Turn tracing off (buffers are kept for dumping).
void disable();

/// Drop all recorded events (buffers stay registered with their threads).
void clear();

/// Number of events currently held across all thread rings.
std::size_t eventCount();

// Record functions: no-ops (one relaxed load) while disabled.
void complete(const char* name, std::uint64_t id, std::int64_t start_ns, std::int64_t dur_ns);
void asyncBegin(const char* name, std::uint64_t id);
void asyncEnd(const char* name, std::uint64_t id);
void instant(const char* name, std::uint64_t id);

/// Label the calling thread's track in the trace viewer ("consul/2",
/// "client/0", ...). Cheap; safe to call whether or not tracing is enabled.
void setThreadName(const std::string& name);

/// Monotonic nanoseconds on the tracer's clock (common/clock.hpp).
std::int64_t nowNs() noexcept;

/// Serialize every thread's ring as Chrome trace-event JSON. Call when the
/// traced workload is quiescent: the dump walks other threads' rings.
std::string chromeJson();

/// One recorded event with the name COPIED out of the ring, so it stays
/// valid across clear() and can cross a process boundary. This is the raw
/// form cross-host trace assembly ships over the trace-dump RPC
/// (obs/assemble.hpp).
struct RawEvent {
  std::string name;
  char phase = 0;  // 'X', 'b', 'e', 'n'
  std::uint64_t id = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::string thread_name;
};

/// Snapshot every thread's ring as raw events (the same window chromeJson
/// serializes). Call when the traced workload is quiescent.
std::vector<RawEvent> exportEvents();

/// RAII complete-event span on the calling thread's track.
class Span {
 public:
  Span(const char* name, std::uint64_t id) : name_(name), id_(id), start_(enabled() ? nowNs() : 0) {}
  ~Span() {
    if (start_ != 0) complete(name_, id_, start_, nowNs() - start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t id_;
  std::int64_t start_;
};

}  // namespace ftl::obs::trace

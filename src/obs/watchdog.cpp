#include "obs/watchdog.hpp"

#include <string>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::obs {

namespace {

std::string hostLabel(std::uint32_t host) { return "{host=\"" + std::to_string(host) + "\"}"; }

std::string tripName(std::uint32_t host, const char* signal) {
  return "ftl_watchdog_trips{host=\"" + std::to_string(host) + "\",signal=\"" + signal + "\"}";
}

}  // namespace

Watchdog::Watchdog(std::uint32_t host, WatchdogConfig cfg, Probes probes)
    : host_(host), cfg_(cfg), probes_(std::move(probes)) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] {
    trace::setThreadName("watchdog/" + std::to_string(host_));
    while (running_.load(std::memory_order_relaxed)) {
      pollOnce();
      // Sleep in small steps so stop() is prompt even with long periods.
      const auto deadline = Clock::now() + cfg_.poll_period;
      while (running_.load(std::memory_order_relaxed) && Clock::now() < deadline) {
        std::this_thread::sleep_for(Millis{10});
      }
    }
  });
}

void Watchdog::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
}

void Watchdog::trip(const char* signal, std::int64_t observed_ns) {
  trips_.fetch_add(1, std::memory_order_relaxed);
  counter(tripName(host_, signal)).inc();
  flight::record(flight::Kind::WatchdogTrip, host_, observed_ns, 0, signal);
  if (on_trip_) on_trip_(signal, observed_ns);
}

std::uint64_t Watchdog::pollOnce() {
  static Counter& polls = counter("ftl_watchdog_polls");
  polls.inc();
  polls_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t now = nowNanos();
  std::uint64_t fired = 0;

  if (probes_.oldest_future_age_ns) {
    const std::int64_t age = probes_.oldest_future_age_ns();
    gauge("ftl_watchdog_oldest_future_ns" + hostLabel(host_)).set(age);
    const bool stalled = age > cfg_.future_stall_ns;
    if (stalled && !future_stalled_) {
      trip("future_stall", age);
      ++fired;
    }
    future_stalled_ = stalled;
  }

  if (probes_.blocked_guards) {
    const BlockedGuardsProbe b = probes_.blocked_guards();
    gauge("ftl_watchdog_blocked_guards" + hostLabel(host_))
        .set(static_cast<std::int64_t>(b.count));
    const std::int64_t age = (b.count > 0 && b.oldest_ns > 0) ? now - b.oldest_ns : 0;
    // Only a stall if nothing even probed the wake index since last poll:
    // deposits against other signatures still show intent to make progress.
    const bool quiet = have_wake_probes_ && b.wake_probes == last_wake_probes_;
    const bool stalled = age > cfg_.blocked_guard_stall_ns && quiet;
    if (stalled && !guard_stalled_) {
      trip("guard_stall", age);
      ++fired;
    }
    guard_stalled_ = stalled;
    last_wake_probes_ = b.wake_probes;
    have_wake_probes_ = true;
  }

  if (probes_.order_progress) {
    const OrderProgressProbe o = probes_.order_progress();
    gauge("ftl_watchdog_order_pending" + hostLabel(host_))
        .set(static_cast<std::int64_t>(o.pending));
    if (o.pending == 0 || o.delivered != last_delivered_ || last_progress_ns_ == 0) {
      last_progress_ns_ = now;
      order_stalled_ = false;
    } else if (now - last_progress_ns_ > cfg_.order_stall_ns) {
      if (!order_stalled_) {
        trip("order_stall", now - last_progress_ns_);
        ++fired;
      }
      order_stalled_ = true;
    }
    last_delivered_ = o.delivered;
  }

  return fired;
}

}  // namespace ftl::obs

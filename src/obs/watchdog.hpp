// ftl::obs::Watchdog — per-host liveness monitor (docs/OBSERVABILITY.md
// "Stall watchdog").
//
// The chaos-harness correctness gate: a polling monitor that reads three
// cheap probes the runtime layers expose and flags the stall shapes a
// wedged FT-Linda host exhibits —
//  - future_stall:  an AGS future outstanding longer than the threshold
//    (reply lost, ordering wedged, or the origin fenced);
//  - guard_stall:   blocked guards whose oldest entry exceeds the threshold
//    while NO wake probes ran since the previous poll (nothing is even
//    attempting a matching deposit);
//  - order_stall:   the consul group has a submit backlog but the delivered
//    sequence number has not advanced within the threshold.
// Each signal is edge-triggered: one trip when it starts, re-armed when the
// condition clears. A trip bumps ftl_watchdog_trips{host,signal}, records a
// flight-recorder event, and invokes the on-trip hook (ftl-node uses it to
// write the flight dump to disk).
//
// Probes must be safe to call from the watchdog thread at any time and
// should cost no more than a mutex acquire; pollOnce() is public so tests
// drive the monitor synchronously without the thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/clock.hpp"

namespace ftl::obs {

struct WatchdogConfig {
  /// Age beyond which an outstanding AGS future counts as stalled.
  std::int64_t future_stall_ns = 5'000'000'000;
  /// Age beyond which the oldest blocked guard counts as stalled (only
  /// trips when no wake probes ran between polls — a long-blocked `in`
  /// with active deposits nearby is waiting, not stuck).
  std::int64_t blocked_guard_stall_ns = 10'000'000'000;
  /// How long the delivered gseq may sit still while submits are pending.
  std::int64_t order_stall_ns = 5'000'000'000;
  /// Poll period of the background thread (start()/stop()).
  Millis poll_period{500};
};

/// Blocked-guard probe result (TsStateMachine::blockedInfo).
struct BlockedGuardsProbe {
  std::uint64_t count = 0;      // guards currently blocked
  std::int64_t oldest_ns = 0;   // monotonic stamp of the oldest; 0 = none
  std::uint64_t wake_probes = 0;  // cumulative wake-index probe count
};

/// Ordering-progress probe result (Replica delivered + ConsulNode pending).
struct OrderProgressProbe {
  std::uint64_t delivered = 0;  // contiguous delivered gseq
  std::uint64_t pending = 0;    // commands submitted but not yet delivered
};

class Watchdog {
 public:
  struct Probes {
    /// Age in ns of the oldest outstanding AGS future; 0 = none.
    std::function<std::int64_t()> oldest_future_age_ns;
    std::function<BlockedGuardsProbe()> blocked_guards;
    std::function<OrderProgressProbe()> order_progress;
  };

  Watchdog(std::uint32_t host, WatchdogConfig cfg, Probes probes);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawn the polling thread / join it. start() is idempotent.
  void start();
  void stop();

  /// Run one poll synchronously; returns the number of trips fired by THIS
  /// poll. Tests call this directly with the thread never started.
  std::uint64_t pollOnce();

  /// Hook invoked on every trip with the signal name ("future_stall", ...)
  /// and the observed value (ns of stall). Set before start().
  void setOnTrip(std::function<void(const char* signal, std::int64_t observed_ns)> fn) {
    on_trip_ = std::move(fn);
  }

  std::uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  std::uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

 private:
  void trip(const char* signal, std::int64_t observed_ns);

  const std::uint32_t host_;
  const WatchdogConfig cfg_;
  Probes probes_;
  std::function<void(const char*, std::int64_t)> on_trip_;

  std::atomic<std::uint64_t> trips_{0};
  std::atomic<std::uint64_t> polls_{0};

  // Edge-trigger state, watchdog thread only.
  bool future_stalled_ = false;
  bool guard_stalled_ = false;
  bool order_stalled_ = false;
  std::uint64_t last_wake_probes_ = 0;
  bool have_wake_probes_ = false;
  std::uint64_t last_delivered_ = 0;
  std::int64_t last_progress_ns_ = 0;

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace ftl::obs

#include "rsm/replica.hpp"

#include "obs/metrics.hpp"

namespace ftl::rsm {

Replica::Replica(net::Transport& net, net::HostId self, std::vector<net::HostId> group,
                 consul::ConsulConfig cfg, StateMachine& sm, bool join_existing)
    : sm_(sm) {
  consul::ConsulNode::Callbacks cb;
  cb.on_deliver = [this](const consul::Delivery& d) {
    ApplyContext ctx;
    ctx.gseq = d.gseq;
    ctx.origin = d.origin;
    ctx.origin_seq = d.origin_seq;
    ctx.enq_ns = d.enq_ns;
    sm_.apply(ctx, d.payload);
  };
  cb.on_deliver_batch = [this](const std::vector<consul::Delivery>& ds) {
    std::vector<BatchItem> items;
    items.reserve(ds.size());
    for (const auto& d : ds) {
      items.push_back(BatchItem{ApplyContext{d.gseq, d.origin, d.origin_seq, d.enq_ns}, d.payload});
    }
    sm_.applyBatch(items);
  };
  cb.on_view = [this](const consul::ViewInfo& v) {
    sm_.onMembership(v.gseq, v.members, v.failed, v.joined);
  };
  cb.take_snapshot = [this]() { return sm_.snapshot(); };
  cb.install_snapshot = [this](const Bytes& b) { sm_.restore(b); };
  node_ = std::make_unique<consul::ConsulNode>(net, self, std::move(group), cfg, std::move(cb),
                                               join_existing);
}

void Replica::start() { node_->start(); }

void Replica::stop() { node_->stop(); }

std::uint64_t Replica::submit(Bytes command, std::uint64_t trace_id) {
  static obs::Counter& submits = obs::counter("ftl_rsm_submits");
  submits.inc();
  return node_->broadcast(std::move(command), trace_id);
}

void Replica::join(std::uint64_t incarnation) { node_->joinGroup(incarnation); }

}  // namespace ftl::rsm

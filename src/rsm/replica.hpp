// Replica: glues a ConsulNode to a StateMachine.
//
// Every simulated processor hosts one Replica. submit() multicasts a command
// into the group's total order; the state machine's apply() runs at every
// replica in that order. The state machine owns whatever reply path it needs
// (the FT-Linda TS manager completes local promises when it applies a
// request that originated here).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "consul/node.hpp"
#include "rsm/state_machine.hpp"

namespace ftl::rsm {

class Replica {
 public:
  /// The replica does not own `sm`; it must outlive the replica.
  /// `join_existing=true` constructs a recovering replica that must
  /// join() before participating.
  Replica(net::Transport& net, net::HostId self, std::vector<net::HostId> group,
          consul::ConsulConfig cfg, StateMachine& sm, bool join_existing = false);

  /// Register a handler for non-Consul messages at this host's endpoint
  /// (see ConsulNode::setForeignHandler). Call before start().
  void setForeignMessageHandler(std::function<void(const net::Message&)> handler) {
    node_->setForeignHandler(std::move(handler));
  }

  /// Start the underlying protocol node.
  void start();

  /// Graceful local stop (not a simulated crash).
  void stop();

  /// Stop and join the protocol thread (must precede endpoint reuse after
  /// recovery; see ConsulNode::shutdown).
  void shutdown() { node_->shutdown(); }

  /// Multicast a command into the total order (asynchronous). Returns the
  /// per-origin sequence number. A non-zero trace_id ties the ordering span
  /// to the originating AGS when tracing is enabled.
  std::uint64_t submit(Bytes command, std::uint64_t trace_id = 0);

  /// Begin rejoining after recovery; completes when the snapshot installs
  /// and the join view is delivered.
  void join(std::uint64_t incarnation);

  bool isMember() const { return node_->isMember(); }
  std::uint64_t delivered() const { return node_->delivered(); }
  std::size_t pendingCount() const { return node_->pendingCount(); }
  consul::ViewInfo currentView() const { return node_->currentView(); }
  net::HostId self() const { return node_->self(); }

 private:
  StateMachine& sm_;
  std::unique_ptr<consul::ConsulNode> node_;
};

}  // namespace ftl::rsm

// Replicated state machine interface (Schneider's SMA).
//
// The FT-Linda TS manager implements this interface; Replica (replica.hpp)
// drives it from the Consul total order. Determinism contract: two instances
// that apply the same command sequence from the same snapshot must reach
// byte-identical snapshots (DESIGN.md invariant 2) — apply() must not consult
// wall clocks, RNGs, addresses, or thread identity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serde.hpp"
#include "net/message.hpp"

namespace ftl::rsm {

/// Context passed with every command application.
struct ApplyContext {
  std::uint64_t gseq = 0;        // position in the total order
  net::HostId origin = 0;        // processor that issued the command
  std::uint64_t origin_seq = 0;  // its per-origin sequence number
  std::int64_t enq_ns = 0;       // origin broadcast-enqueue stamp (sampled; 0 off-origin)
};

/// One command of an apply batch. `command` views the delivery epoch's
/// arena (or buffer) and is valid only for the duration of the applyBatch()
/// call — decode what you need, never retain the view.
struct BatchItem {
  ApplyContext ctx;
  BytesView command;
};

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Apply one totally-ordered command. Must be deterministic. `command` is
  /// a borrowed view, valid only for the duration of the call.
  virtual void apply(const ApplyContext& ctx, BytesView command) = 0;

  /// Apply a run of CONSECUTIVE totally-ordered commands (items[i].ctx.gseq
  /// strictly increasing, no gaps filled by views). Batch boundaries are a
  /// LOCAL scheduling artifact — different replicas may see the same stream
  /// chopped differently — so an override must produce state byte-identical
  /// to applying the items one at a time; it may only amortize per-call
  /// overhead (locking, allocation), never reorder or fuse effects across
  /// items. Default: loop over apply().
  virtual void applyBatch(const std::vector<BatchItem>& items) {
    for (const auto& item : items) apply(item.ctx, item.command);
  }

  /// Membership event, delivered in the same total order as commands.
  /// `failed`/`joined` list the processors removed/added at this point.
  virtual void onMembership(std::uint64_t gseq, const std::vector<net::HostId>& members,
                            const std::vector<net::HostId>& failed,
                            const std::vector<net::HostId>& joined) = 0;

  /// Serialize complete state (covering everything applied so far).
  virtual Bytes snapshot() const = 0;

  /// Replace state from a snapshot (recovery).
  virtual void restore(const Bytes& snapshot) = 0;
};

}  // namespace ftl::rsm

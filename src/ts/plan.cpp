#include "ts/plan.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace ftl::ts {

namespace {

/// Quote a class name for the plan text format: wraps in '"' and escapes
/// '"' and '\' so round-tripping is exact for any byte string.
std::string quoteName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 2);
  out.push_back('"');
  for (const char c : name) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

[[noreturn]] void malformed(std::size_t line_no, const std::string& why) {
  throw Error("plan: line " + std::to_string(line_no) + ": " + why);
}

}  // namespace

const char* paradigmName(Paradigm p) {
  switch (p) {
    case Paradigm::Queue:
      return "queue";
    case Paradigm::DistributedVariable:
      return "distributed-variable";
    case Paradigm::Semaphore:
      return "semaphore";
    case Paradigm::Unknown:
      break;
  }
  return "unknown";
}

std::optional<Paradigm> paradigmFromName(std::string_view name) {
  for (const Paradigm p : {Paradigm::Unknown, Paradigm::Queue, Paradigm::DistributedVariable,
                           Paradigm::Semaphore}) {
    if (name == paradigmName(p)) return p;
  }
  return std::nullopt;
}

void StoragePlan::add(tuple::SignatureKey sig, std::string name, PlanEntry entry) {
  auto& vec = classes_[sig];
  const auto at = std::lower_bound(
      vec.begin(), vec.end(), name,
      [](const auto& pair, const std::string& n) { return pair.first < n; });
  if (at != vec.end() && at->first == name) {
    at->second = entry;
  } else {
    vec.insert(at, {std::move(name), entry});
  }
  // Rebuild the may-block bit for this sig: true unless every class says no.
  bool blocks = false;
  for (const auto& [_, e] : classes_[sig]) {
    if (!e.no_blocking_consumers) blocks = true;
  }
  if (blocks) {
    may_block_.insert(sig);
  } else {
    may_block_.erase(sig);
  }
}

const PlanEntry* StoragePlan::find(tuple::SignatureKey sig, std::string_view name) const {
  const auto it = classes_.find(sig);
  if (it == classes_.end()) return nullptr;
  const auto& vec = it->second;
  const auto at = std::lower_bound(
      vec.begin(), vec.end(), name,
      [](const auto& pair, std::string_view n) { return std::string_view(pair.first) < n; });
  if (at == vec.end() || std::string_view(at->first) != name) return nullptr;
  return &at->second;
}

bool StoragePlan::sigMayBlock(tuple::SignatureKey sig) const {
  const auto it = classes_.find(sig);
  if (it == classes_.end()) return true;  // unknown sig: assume the worst
  return may_block_.count(sig) != 0;
}

std::size_t StoragePlan::size() const {
  std::size_t n = 0;
  for (const auto& [_, vec] : classes_) n += vec.size();
  return n;
}

std::vector<std::pair<std::pair<tuple::SignatureKey, std::string>, PlanEntry>>
StoragePlan::entries() const {
  std::vector<std::pair<std::pair<tuple::SignatureKey, std::string>, PlanEntry>> out;
  out.reserve(size());
  for (const auto& [sig, vec] : classes_) {
    for (const auto& [name, entry] : vec) out.push_back({{sig, name}, entry});
  }
  return out;
}

std::string StoragePlan::toText() const {
  std::ostringstream os;
  os << "ftl-plan v1\n";
  for (const auto& [key, e] : entries()) {
    os << "class sig=0x" << std::hex << key.first << std::dec
       << " name=" << quoteName(key.second) << " paradigm=" << paradigmName(e.paradigm)
       << " fifo=" << (e.fifo ? 1 : 0) << " read_mostly=" << (e.read_mostly ? 1 : 0)
       << " no_blocking=" << (e.no_blocking_consumers ? 1 : 0)
       << " shard_field=" << e.shard_key_field << "\n";
  }
  return os.str();
}

StoragePlan StoragePlan::parseText(std::string_view text) {
  StoragePlan plan;
  std::size_t line_no = 0;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    // Trim leading/trailing whitespace.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) line.remove_prefix(1);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' || line.back() == '\r'))
      line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_header) {
      if (line != "ftl-plan v1") malformed(line_no, "expected header 'ftl-plan v1'");
      saw_header = true;
      continue;
    }
    if (line.substr(0, 6) != "class ") malformed(line_no, "expected 'class ...'");
    line.remove_prefix(6);

    tuple::SignatureKey sig{};
    std::string name;
    PlanEntry entry;
    bool have_sig = false, have_name = false;
    while (!line.empty()) {
      while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
      if (line.empty()) break;
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) malformed(line_no, "expected key=value");
      const std::string_view key = line.substr(0, eq);
      line.remove_prefix(eq + 1);
      if (key == "name") {
        if (line.empty() || line.front() != '"') malformed(line_no, "name must be quoted");
        line.remove_prefix(1);
        name.clear();
        bool closed = false;
        while (!line.empty()) {
          const char c = line.front();
          line.remove_prefix(1);
          if (c == '\\') {
            if (line.empty()) malformed(line_no, "dangling escape in name");
            name.push_back(line.front());
            line.remove_prefix(1);
          } else if (c == '"') {
            closed = true;
            break;
          } else {
            name.push_back(c);
          }
        }
        if (!closed) malformed(line_no, "unterminated name");
        have_name = true;
        continue;
      }
      const std::size_t sp = line.find(' ');
      const std::string_view val =
          line.substr(0, sp == std::string_view::npos ? std::string_view::npos : sp);
      line.remove_prefix(val.size());
      if (key == "sig") {
        if (val.substr(0, 2) != "0x") malformed(line_no, "sig must be 0x-hex");
        std::uint64_t v = 0;
        const auto* first = val.data() + 2;
        const auto* last = val.data() + val.size();
        const auto [ptr, ec] = std::from_chars(first, last, v, 16);
        if (ec != std::errc() || ptr != last) malformed(line_no, "bad sig value");
        sig = tuple::SignatureKey{v};
        have_sig = true;
      } else if (key == "paradigm") {
        const auto p = paradigmFromName(val);
        if (!p) malformed(line_no, "unknown paradigm '" + std::string(val) + "'");
        entry.paradigm = *p;
      } else if (key == "fifo" || key == "read_mostly" || key == "no_blocking") {
        if (val != "0" && val != "1") malformed(line_no, std::string(key) + " must be 0 or 1");
        const bool b = val == "1";
        if (key == "fifo") {
          entry.fifo = b;
        } else if (key == "read_mostly") {
          entry.read_mostly = b;
        } else {
          entry.no_blocking_consumers = b;
        }
      } else if (key == "shard_field") {
        std::int32_t v = 0;
        const auto* first = val.data();
        const auto* last = val.data() + val.size();
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec != std::errc() || ptr != last || v < -1) malformed(line_no, "bad shard_field");
        entry.shard_key_field = v;
      } else {
        malformed(line_no, "unknown key '" + std::string(key) + "'");
      }
    }
    if (!have_sig || !have_name) malformed(line_no, "class line needs sig= and name=");
    plan.add(sig, std::move(name), entry);
  }
  if (!saw_header && !plan.empty()) malformed(1, "missing header");
  return plan;
}

StoragePlan loadPlanFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("plan: cannot open '" + path + "'");
  std::stringstream buf;
  buf << in.rdbuf();
  return StoragePlan::parseText(buf.str());
}

}  // namespace ftl::ts

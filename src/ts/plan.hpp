// StoragePlan: per-signature-class storage and placement hints.
//
// The whole-program tuple-flow analyzer (ftlinda/analyze.hpp — the FT-lcc
// compile-time analysis the 1985 paper leans on, docs/ANALYZER.md) classifies
// every signature class a program touches into one of the paper's
// coordination paradigms and emits one PlanEntry per class. The runtime
// consumes the plan purely as a PERFORMANCE hint:
//
//  - ts::TupleSpace switches a FIFO (queue-paradigm) class's chains to a
//    ring-buffer representation and enables a read cache for read-mostly
//    (distributed-variable) classes;
//  - TsStateMachine skips wake-index probing for deposits into classes the
//    analyzer proved have no blocking consumers anywhere in the program.
//
// A plan NEVER changes semantics: matching results, replies, and snapshot
// bytes are identical with any plan (or none), so replicas loaded with
// different plans cannot diverge. The plan lives in the ts layer (below
// ftlinda) so the store can consume what the analyzer produces without a
// dependency cycle.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tuple/signature.hpp"

namespace ftl::ts {

/// The coordination paradigms of the paper's §2 a signature class can
/// realize: a bag-of-tasks queue, a distributed variable (read-mostly
/// state), or a semaphore/barrier token.
enum class Paradigm : std::uint8_t {
  Unknown = 0,
  Queue = 1,
  DistributedVariable = 2,
  Semaphore = 3,
};

/// Stable kebab-case paradigm name ("queue", "distributed-variable", ...).
const char* paradigmName(Paradigm p);
/// Inverse of paradigmName; nullopt for an unknown spelling.
std::optional<Paradigm> paradigmFromName(std::string_view name);

/// Hints for one signature class — identified by (signature key, leading
/// string name; empty name = unnamed or statically unknown leading field).
struct PlanEntry {
  Paradigm paradigm = Paradigm::Unknown;
  /// Consumers always match the oldest tuple (all-formal patterns): chains
  /// may use a ring buffer (O(1) append/pop-front, no node allocation).
  bool fifo = false;
  /// Reads dominate (distributed-variable idiom): enable the read cache.
  bool read_mostly = false;
  /// No in/rd guard anywhere in the program consumes this class: deposits
  /// never need to probe the blocked-statement wait index.
  bool no_blocking_consumers = false;
  /// Smallest field index that is a concrete value at EVERY site (producer
  /// literal / consumer actual) — the field a sharded kernel can route by.
  /// -1: no such field; consumers match any value, so any shard can serve
  /// the class (round-robin placement is safe).
  std::int32_t shard_key_field = -1;

  bool operator==(const PlanEntry& other) const = default;
};

class StoragePlan {
 public:
  /// Register (or overwrite) the entry for class (sig, name).
  void add(tuple::SignatureKey sig, std::string name, PlanEntry entry);

  /// Entry for (sig, name), or nullptr when the class is not in the plan.
  const PlanEntry* find(tuple::SignatureKey sig, std::string_view name) const;

  /// False ONLY when the plan covers `sig` and every class with that
  /// signature is marked no_blocking_consumers. Unknown signatures are
  /// conservatively assumed to block (the plan is a hint, not a contract).
  bool sigMayBlock(tuple::SignatureKey sig) const;

  bool empty() const { return classes_.empty(); }
  std::size_t size() const;

  /// All entries, deterministic order (sig, then name) — export and tests.
  std::vector<std::pair<std::pair<tuple::SignatureKey, std::string>, PlanEntry>> entries()
      const;

  /// Stable line-based text format ("ftl-plan v1"): one `class ...` line per
  /// entry. Inverse of parseText; what `ftl-analyze --plan-out` writes.
  std::string toText() const;
  /// Parse the toText format. Throws ftl::Error on malformed input.
  static StoragePlan parseText(std::string_view text);

 private:
  // sig -> [(name, entry)] sorted by name: deterministic and heterogeneous
  // string_view lookup without a transparent pair comparator.
  std::map<tuple::SignatureKey, std::vector<std::pair<std::string, PlanEntry>>> classes_;
  std::unordered_set<tuple::SignatureKey> may_block_;  // sigs with a blocking class
};

/// Read and parse a plan file (ftl-analyze --plan-out output). Throws
/// ftl::Error when the file is unreadable or malformed.
StoragePlan loadPlanFile(const std::string& path);

}  // namespace ftl::ts

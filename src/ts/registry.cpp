#include "ts/registry.hpp"

#include "common/assert.hpp"

namespace ftl::ts {

TsRegistry::TsRegistry(bool with_main, TsHandle handle_bits) : handle_bits_(handle_bits) {
  if (with_main) {
    Entry e;
    e.attrs = TsAttributes{/*stable=*/true, /*shared=*/true};
    spaces_.emplace(kTsMain, std::move(e));
  }
}

TsHandle TsRegistry::create(TsAttributes attrs) {
  const TsHandle h = handle_bits_ | next_id_++;
  Entry e;
  e.attrs = attrs;
  if (plan_) e.space.setPlan(plan_);
  spaces_.emplace(h, std::move(e));
  return h;
}

bool TsRegistry::destroy(TsHandle h) {
  if (h == kTsMain) return false;
  return spaces_.erase(h) > 0;
}

TupleSpace* TsRegistry::find(TsHandle h) {
  auto it = spaces_.find(h);
  return it == spaces_.end() ? nullptr : &it->second.space;
}

const TupleSpace* TsRegistry::find(TsHandle h) const {
  auto it = spaces_.find(h);
  return it == spaces_.end() ? nullptr : &it->second.space;
}

TupleSpace& TsRegistry::get(TsHandle h) {
  auto* p = find(h);
  FTL_CHECK(p != nullptr, "unknown tuple space handle");
  return *p;
}

const TupleSpace& TsRegistry::get(TsHandle h) const {
  const auto* p = find(h);
  FTL_CHECK(p != nullptr, "unknown tuple space handle");
  return *p;
}

const TsAttributes& TsRegistry::attrs(TsHandle h) const {
  auto it = spaces_.find(h);
  FTL_CHECK(it != spaces_.end(), "unknown tuple space handle");
  return it->second.attrs;
}

std::vector<TsHandle> TsRegistry::handles() const {
  std::vector<TsHandle> out;
  out.reserve(spaces_.size());
  for (const auto& [h, e] : spaces_) out.push_back(h);
  return out;
}

void TsRegistry::setPlan(std::shared_ptr<const StoragePlan> plan) {
  plan_ = std::move(plan);
  for (auto& [h, e] : spaces_) e.space.setPlan(plan_);
}

void TsRegistry::encode(Writer& w) const {
  w.u64(handle_bits_);
  w.u64(next_id_);
  w.u32(static_cast<std::uint32_t>(spaces_.size()));
  for (const auto& [h, e] : spaces_) {
    w.u64(h);
    e.attrs.encode(w);
    e.space.encode(w);
  }
}

TsRegistry TsRegistry::decode(Reader& r) {
  TsRegistry reg(/*with_main=*/false);
  reg.handle_bits_ = r.u64();
  reg.next_id_ = r.u64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const TsHandle h = r.u64();
    Entry e;
    e.attrs = TsAttributes::decode(r);
    e.space = TupleSpace::decode(r);
    reg.spaces_.emplace(h, std::move(e));
  }
  return reg;
}

bool TsRegistry::operator==(const TsRegistry& other) const {
  Writer a, b;
  encode(a);
  other.encode(b);
  return a.buffer() == b.buffer();
}

}  // namespace ftl::ts

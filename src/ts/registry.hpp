// TsRegistry: the collection of tuple spaces one context manages, addressed
// by handle (the paper's ts_create / ts_destroy with stability and scope
// attributes).
//
// Two registries exist per processor in a full FT-Linda system:
//  - the replicated registry inside the TS state machine holds STABLE
//    (replicated) tuple spaces — handle allocation there is deterministic
//    because creations flow through the total order;
//  - the runtime's local registry holds VOLATILE PRIVATE (scratch) spaces —
//    their handles carry kLocalHandleBit so the two namespaces never collide
//    and the AGS validator can tell them apart.
#pragma once

#include <cstdint>
#include <map>

#include "ts/tuple_space.hpp"

namespace ftl::ts {

/// Opaque tuple space handle.
using TsHandle = std::uint64_t;

/// The distinguished global stable shared TS every program starts with.
constexpr TsHandle kTsMain = 1;

/// Set on handles allocated by a processor-local (volatile) registry.
constexpr TsHandle kLocalHandleBit = 1ull << 63;

/// True if the handle names a processor-local volatile TS.
constexpr bool isLocalHandle(TsHandle h) { return (h & kLocalHandleBit) != 0; }

/// The paper's TS attributes: resilience and visibility.
struct TsAttributes {
  bool stable = true;  // survives failures (replicated)
  bool shared = true;  // visible to all processes vs. creator-private

  void encode(Writer& w) const {
    w.boolean(stable);
    w.boolean(shared);
  }
  static TsAttributes decode(Reader& r) {
    TsAttributes a;
    a.stable = r.boolean();
    a.shared = r.boolean();
    return a;
  }
};

class TsRegistry {
 public:
  /// `with_main=true` pre-creates TSmain (stable, shared) at kTsMain.
  /// `handle_bits` is OR-ed into every allocated handle (kLocalHandleBit for
  /// runtime-local registries, 0 for the replicated one).
  explicit TsRegistry(bool with_main, TsHandle handle_bits = 0);

  /// Create a new TS; deterministic handle allocation.
  TsHandle create(TsAttributes attrs);

  /// Destroy a TS and its contents. Returns false if no such handle.
  /// TSmain cannot be destroyed.
  bool destroy(TsHandle h);

  /// nullptr if the handle is unknown.
  TupleSpace* find(TsHandle h);
  const TupleSpace* find(TsHandle h) const;

  /// Throws ftl::Error if the handle is unknown.
  TupleSpace& get(TsHandle h);
  const TupleSpace& get(TsHandle h) const;

  const TsAttributes& attrs(TsHandle h) const;
  bool exists(TsHandle h) const { return spaces_.count(h) > 0; }
  std::size_t spaceCount() const { return spaces_.size(); }

  /// All live handles in ascending order.
  std::vector<TsHandle> handles() const;

  /// Attach a storage plan to every live space AND every space created
  /// later (nullptr clears). decode() returns a plan-less registry — the
  /// caller re-applies its plan after restoring a snapshot.
  void setPlan(std::shared_ptr<const StoragePlan> plan);

  /// Deterministic full serialization (used in replica snapshots).
  void encode(Writer& w) const;
  static TsRegistry decode(Reader& r);

  bool operator==(const TsRegistry& other) const;

 private:
  struct Entry {
    TsAttributes attrs;
    TupleSpace space;
  };
  std::map<TsHandle, Entry> spaces_;
  TsHandle handle_bits_ = 0;
  std::uint64_t next_id_ = 2;  // 1 is TSmain
  std::shared_ptr<const StoragePlan> plan_;
};

}  // namespace ftl::ts

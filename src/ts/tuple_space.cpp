#include "ts/tuple_space.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ftl::ts {

using tuple::nameOf;
using tuple::PatternField;
using tuple::signatureOf;

std::uint64_t TupleSpace::put(Tuple t) {
  const SignatureKey sig = signatureOf(t);
  const std::uint64_t seq = next_seq_++;
  auto& bucket = buckets_[sig];
  if (auto name = nameOf(t)) {
    bucket.named[*name].emplace(seq, std::move(t));
  } else {
    bucket.unnamed.emplace(seq, std::move(t));
  }
  ++size_;
  return seq;
}

template <typename Fn>
void TupleSpace::eachCandidateChain(SignatureKey sig, const Pattern& p, Fn&& fn) const {
  auto it = buckets_.find(sig);
  if (it == buckets_.end()) return;
  const Bucket& b = it->second;
  if (auto name = nameOf(p)) {
    // Leading string actual: exactly one chain can match.
    auto cit = b.named.find(*name);
    if (cit != b.named.end()) fn(cit->second);
    return;
  }
  // Leading field is a formal (or non-string): any chain in the bucket may
  // hold a match. Iterate deterministically (sorted by name, then unnamed).
  for (const auto& [name, chain] : b.named) {
    if (fn(chain)) return;
  }
  fn(b.unnamed);
}

void TupleSpace::pruneBucket(SignatureKey sig) {
  // Drop empty chains/buckets so snapshots stay canonical.
  auto bit = buckets_.find(sig);
  if (bit == buckets_.end()) return;
  Bucket& b = bit->second;
  for (auto nit = b.named.begin(); nit != b.named.end();) {
    nit = nit->second.empty() ? b.named.erase(nit) : std::next(nit);
  }
  if (b.named.empty() && b.unnamed.empty()) buckets_.erase(bit);
}

std::optional<Tuple> TupleSpace::take(const Pattern& p) {
  const SignatureKey sig = signatureOf(p);
  // Find the oldest match across candidate chains, then erase it.
  const Chain* best_chain = nullptr;
  std::uint64_t best_seq = 0;
  eachCandidateChain(sig, p, [&](const Chain& chain) {
    for (const auto& [seq, t] : chain) {
      if (best_chain && seq >= best_seq) break;  // no older match possible here
      if (p.matches(t)) {
        best_chain = &chain;
        best_seq = seq;
        break;
      }
    }
    return false;
  });
  if (!best_chain) return std::nullopt;
  auto& chain = *const_cast<Chain*>(best_chain);
  auto node = chain.extract(best_seq);
  FTL_ENSURE(!node.empty(), "matched tuple vanished");
  --size_;
  Tuple out = std::move(node.mapped());
  pruneBucket(sig);
  return out;
}

std::optional<Tuple> TupleSpace::read(const Pattern& p) const {
  const Tuple* best = nullptr;
  std::uint64_t best_seq = 0;
  eachCandidateChain(signatureOf(p), p, [&](const Chain& chain) {
    for (const auto& [seq, t] : chain) {
      if (best && seq >= best_seq) break;
      if (p.matches(t)) {
        best = &t;
        best_seq = seq;
        break;
      }
    }
    return false;
  });
  if (!best) return std::nullopt;
  return *best;
}

std::vector<Tuple> TupleSpace::takeAll(const Pattern& p) {
  const SignatureKey sig = signatureOf(p);
  // Collect (seq, tuple) matches across chains, oldest first.
  std::vector<std::pair<std::uint64_t, Tuple>> matches;
  eachCandidateChain(sig, p, [&](const Chain& chain) {
    for (const auto& [seq, t] : chain) {
      if (p.matches(t)) matches.emplace_back(seq, t);
    }
    return false;
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tuple> out;
  out.reserve(matches.size());
  for (auto& [seq, t] : matches) {
    out.push_back(std::move(t));
  }
  // Erase them (by seq) from the bucket.
  auto bit = buckets_.find(sig);
  if (bit != buckets_.end()) {
    Bucket& b = bit->second;
    for (const auto& [seq, t] : matches) {
      bool erased = false;
      for (auto& [name, chain] : b.named) {
        if (chain.erase(seq)) {
          erased = true;
          break;
        }
      }
      if (!erased) erased = b.unnamed.erase(seq) > 0;
      FTL_ENSURE(erased, "takeAll lost track of a matched tuple");
      --size_;
    }
    pruneBucket(sig);
  }
  return out;
}

std::vector<Tuple> TupleSpace::readAll(const Pattern& p) const {
  std::vector<std::pair<std::uint64_t, Tuple>> matches;
  eachCandidateChain(signatureOf(p), p, [&](const Chain& chain) {
    for (const auto& [seq, t] : chain) {
      if (p.matches(t)) matches.emplace_back(seq, t);
    }
    return false;
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tuple> out;
  out.reserve(matches.size());
  for (auto& [seq, t] : matches) out.push_back(std::move(t));
  return out;
}

std::size_t TupleSpace::count(const Pattern& p) const {
  std::size_t n = 0;
  eachCandidateChain(signatureOf(p), p, [&](const Chain& chain) {
    for (const auto& [seq, t] : chain) {
      if (p.matches(t)) ++n;
    }
    return false;
  });
  return n;
}

std::vector<Tuple> TupleSpace::contents() const {
  std::vector<std::pair<std::uint64_t, Tuple>> all;
  all.reserve(size_);
  for (const auto& [sig, b] : buckets_) {
    for (const auto& [name, chain] : b.named) {
      for (const auto& [seq, t] : chain) all.emplace_back(seq, t);
    }
    for (const auto& [seq, t] : b.unnamed) all.emplace_back(seq, t);
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tuple> out;
  out.reserve(all.size());
  for (auto& [seq, t] : all) out.push_back(std::move(t));
  return out;
}

void TupleSpace::encode(Writer& w) const {
  w.u64(next_seq_);
  w.u64(size_);
  // Flatten to (seq, tuple) pairs in seq order; decode re-buckets. This is
  // canonical: equal contents => identical bytes.
  std::vector<std::pair<std::uint64_t, const Tuple*>> all;
  all.reserve(size_);
  for (const auto& [sig, b] : buckets_) {
    for (const auto& [name, chain] : b.named) {
      for (const auto& [seq, t] : chain) all.emplace_back(seq, &t);
    }
    for (const auto& [seq, t] : b.unnamed) all.emplace_back(seq, &t);
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [seq, t] : all) {
    w.u64(seq);
    t->encode(w);
  }
}

TupleSpace TupleSpace::decode(Reader& r) {
  TupleSpace ts;
  ts.next_seq_ = r.u64();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seq = r.u64();
    Tuple t = Tuple::decode(r);
    const SignatureKey sig = signatureOf(t);
    auto& bucket = ts.buckets_[sig];
    if (auto name = nameOf(t)) {
      bucket.named[*name].emplace(seq, std::move(t));
    } else {
      bucket.unnamed.emplace(seq, std::move(t));
    }
    ++ts.size_;
  }
  return ts;
}

bool TupleSpace::operator==(const TupleSpace& other) const {
  Writer a, b;
  encode(a);
  other.encode(b);
  return a.buffer() == b.buffer();
}

}  // namespace ftl::ts

#include "ts/tuple_space.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace ftl::ts {

using tuple::nameOf;
using tuple::PatternField;
using tuple::signatureOf;
using tuple::ValueType;

namespace {

struct PlanCounters {
  obs::Counter& ring_chains = obs::counter("ftl_plan_ring_chains");
  obs::Counter& read_cache_hit = obs::counter("ftl_plan_read_cache_hit");
  obs::Counter& read_cache_miss = obs::counter("ftl_plan_read_cache_miss");
};

PlanCounters& planCounters() {
  static PlanCounters c;
  return c;
}

}  // namespace

// ---------------------------------------------------------------- Chain ---

void TupleSpace::Chain::makeRing() {
  if (ring_) return;
  for (auto& [seq, t] : map_rep_) ring_rep_.emplace_back(seq, std::move(t));
  map_rep_.clear();
  ring_ = true;
}

void TupleSpace::Chain::makeMap() {
  if (!ring_) return;
  for (auto& [seq, t] : ring_rep_) map_rep_.emplace(seq, std::move(t));
  ring_rep_.clear();
  ring_ = false;
}

void TupleSpace::Chain::append(std::uint64_t seq, Tuple t) {
  if (ring_) {
    FTL_ENSURE(ring_rep_.empty() || ring_rep_.back().first < seq,
               "chain appends must carry increasing seqs");
    ring_rep_.emplace_back(seq, std::move(t));
  } else {
    map_rep_.emplace(seq, std::move(t));
  }
}

Tuple TupleSpace::Chain::extract(std::uint64_t seq) {
  if (ring_) {
    // The common case for a FIFO class is popping the oldest element.
    if (!ring_rep_.empty() && ring_rep_.front().first == seq) {
      Tuple out = std::move(ring_rep_.front().second);
      ring_rep_.pop_front();
      return out;
    }
    const auto at = std::lower_bound(
        ring_rep_.begin(), ring_rep_.end(), seq,
        [](const auto& pair, std::uint64_t s) { return pair.first < s; });
    FTL_ENSURE(at != ring_rep_.end() && at->first == seq, "matched tuple vanished");
    Tuple out = std::move(at->second);
    ring_rep_.erase(at);
    return out;
  }
  auto node = map_rep_.extract(seq);
  FTL_ENSURE(!node.empty(), "matched tuple vanished");
  return std::move(node.mapped());
}

// ----------------------------------------------------------- TupleSpace ---

TupleSpace::TupleSpace(const TupleSpace& other)
    : buckets_(other.buckets_),
      next_seq_(other.next_seq_),
      size_(other.size_),
      plan_(other.plan_),
      mut_count_(other.mut_count_) {
  // rcache_ stays default: other's cached chain pointer targets its buckets.
}

TupleSpace& TupleSpace::operator=(const TupleSpace& other) {
  if (this == &other) return *this;
  buckets_ = other.buckets_;
  next_seq_ = other.next_seq_;
  size_ = other.size_;
  plan_ = other.plan_;
  mut_count_ = other.mut_count_;
  rcache_ = ReadCache{};
  return *this;
}

const std::string* TupleSpace::leadingName(const Pattern& p) { return tuple::nameRefOf(p); }

std::uint64_t TupleSpace::put(Tuple t) {
  const SignatureKey sig = signatureOf(t);
  const std::uint64_t seq = next_seq_++;
  noteMutation();
  auto& bucket = buckets_[sig];
  if (const std::string* name = tuple::nameRefOf(t)) {
    auto [cit, inserted] = bucket.named.try_emplace(*name);
    if (inserted && plan_) {
      // A freshly created chain of a plan-tagged FIFO class goes ring.
      if (const PlanEntry* e = plan_->find(sig, *name); e && e->fifo) {
        cit->second.makeRing();
        planCounters().ring_chains.inc();
      }
    }
    cit->second.append(seq, std::move(t));
  } else {
    bucket.unnamed.append(seq, std::move(t));
  }
  ++size_;
  return seq;
}

template <typename Fn>
void TupleSpace::eachCandidateChain(SignatureKey sig, const Pattern& p, Fn&& fn) const {
  auto it = buckets_.find(sig);
  if (it == buckets_.end()) return;
  const Bucket& b = it->second;
  if (const std::string* name = leadingName(p)) {
    // Leading string actual: exactly one chain can match.
    auto cit = b.named.find(*name);
    if (cit != b.named.end()) fn(cit->second);
    return;
  }
  // Leading field is a formal (or non-string): any chain in the bucket may
  // hold a match. Iterate deterministically (sorted by name, then unnamed).
  for (const auto& [name, chain] : b.named) {
    if (fn(chain)) return;
  }
  fn(b.unnamed);
}

void TupleSpace::pruneBucket(SignatureKey sig) {
  // Drop empty chains/buckets so snapshots stay canonical.
  auto bit = buckets_.find(sig);
  if (bit == buckets_.end()) return;
  Bucket& b = bit->second;
  for (auto nit = b.named.begin(); nit != b.named.end();) {
    nit = nit->second.empty() ? b.named.erase(nit) : std::next(nit);
  }
  if (b.named.empty() && b.unnamed.empty()) buckets_.erase(bit);
}

std::optional<Tuple> TupleSpace::take(const Pattern& p) {
  const SignatureKey sig = signatureOf(p);
  // Find the oldest match across candidate chains, then erase it.
  const Chain* best_chain = nullptr;
  std::uint64_t best_seq = 0;
  eachCandidateChain(sig, p, [&](const Chain& chain) {
    chain.scan([&](std::uint64_t seq, const Tuple& t) {
      if (best_chain && seq >= best_seq) return true;  // no older match possible here
      if (p.matches(t)) {
        best_chain = &chain;
        best_seq = seq;
        return true;
      }
      return false;
    });
    return false;
  });
  if (!best_chain) return std::nullopt;
  noteMutation();
  Tuple out = const_cast<Chain*>(best_chain)->extract(best_seq);
  --size_;
  pruneBucket(sig);
  return out;
}

std::optional<Tuple> TupleSpace::read(const Pattern& p) const {
  if (const Tuple* t = readRef(p)) return *t;
  return std::nullopt;
}

const Tuple* TupleSpace::readRef(const Pattern& p) const { return readRefImpl(p, true); }

const Tuple* TupleSpace::readRefShared(const Pattern& p) const {
  return readRefImpl(p, false);
}

const Tuple* TupleSpace::readRefImpl(const Pattern& p, bool use_cache) const {
  const SignatureKey sig = p.signature();
  const std::string* pname = plan_ ? leadingName(p) : nullptr;

  auto scanChain = [&](const Chain& chain) -> const Tuple* {
    const Tuple* found = nullptr;
    chain.scan([&](std::uint64_t, const Tuple& t) {
      if (p.matches(t)) {
        found = &t;
        return true;
      }
      return false;
    });
    return found;
  };

  if (pname) {
    // Read-cache fast path: same class as the last cached read and no
    // mutation since — skip the bucket and chain lookups.
    if (use_cache && rcache_.chain && rcache_.mut == mut_count_ && rcache_.sig == sig &&
        rcache_.name == *pname) {
      planCounters().read_cache_hit.inc();
      return scanChain(*rcache_.chain);
    }
    const auto bit = buckets_.find(sig);
    if (bit == buckets_.end()) return nullptr;
    const auto cit = bit->second.named.find(*pname);
    if (cit == bit->second.named.end()) return nullptr;
    if (use_cache) {
      if (const PlanEntry* e = plan_->find(sig, *pname); e && e->read_mostly) {
        planCounters().read_cache_miss.inc();
        rcache_ = ReadCache{sig, *pname, &cit->second, mut_count_};
      }
    }
    return scanChain(cit->second);
  }

  const Tuple* best = nullptr;
  std::uint64_t best_seq = 0;
  eachCandidateChain(sig, p, [&](const Chain& chain) {
    chain.scan([&](std::uint64_t seq, const Tuple& t) {
      if (best && seq >= best_seq) return true;
      if (p.matches(t)) {
        best = &t;
        best_seq = seq;
        return true;
      }
      return false;
    });
    return false;
  });
  return best;
}

const Tuple* TupleSpace::chainFront(SignatureKey sig, const std::string& name) const {
  const auto bit = buckets_.find(sig);
  if (bit == buckets_.end()) return nullptr;
  const auto cit = bit->second.named.find(name);
  if (cit == bit->second.named.end()) return nullptr;
  const Tuple* front = nullptr;
  cit->second.scan([&](std::uint64_t, const Tuple& t) {
    front = &t;
    return true;
  });
  return front;
}

std::vector<Tuple> TupleSpace::takeAll(const Pattern& p) {
  const SignatureKey sig = signatureOf(p);
  // Collect (seq, chain) matches across chains, oldest first, then extract.
  std::vector<std::pair<std::uint64_t, Chain*>> matches;
  eachCandidateChain(sig, p, [&](const Chain& chain) {
    chain.scan([&](std::uint64_t seq, const Tuple& t) {
      if (p.matches(t)) matches.emplace_back(seq, const_cast<Chain*>(&chain));
      return false;
    });
    return false;
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tuple> out;
  out.reserve(matches.size());
  if (!matches.empty()) noteMutation();
  for (auto& [seq, chain] : matches) {
    out.push_back(chain->extract(seq));
    --size_;
  }
  if (!matches.empty()) pruneBucket(sig);
  return out;
}

std::vector<Tuple> TupleSpace::readAll(const Pattern& p) const {
  std::vector<std::pair<std::uint64_t, Tuple>> matches;
  eachCandidateChain(signatureOf(p), p, [&](const Chain& chain) {
    chain.scan([&](std::uint64_t seq, const Tuple& t) {
      if (p.matches(t)) matches.emplace_back(seq, t);
      return false;
    });
    return false;
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tuple> out;
  out.reserve(matches.size());
  for (auto& [seq, t] : matches) out.push_back(std::move(t));
  return out;
}

std::size_t TupleSpace::count(const Pattern& p) const {
  std::size_t n = 0;
  eachCandidateChain(signatureOf(p), p, [&](const Chain& chain) {
    chain.scan([&](std::uint64_t, const Tuple& t) {
      if (p.matches(t)) ++n;
      return false;
    });
    return false;
  });
  return n;
}

std::vector<Tuple> TupleSpace::contents() const {
  std::vector<std::pair<std::uint64_t, Tuple>> all;
  all.reserve(size_);
  for (const auto& [sig, b] : buckets_) {
    for (const auto& [name, chain] : b.named) {
      chain.scan([&](std::uint64_t seq, const Tuple& t) {
        all.emplace_back(seq, t);
        return false;
      });
    }
    b.unnamed.scan([&](std::uint64_t seq, const Tuple& t) {
      all.emplace_back(seq, t);
      return false;
    });
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Tuple> out;
  out.reserve(all.size());
  for (auto& [seq, t] : all) out.push_back(std::move(t));
  return out;
}

void TupleSpace::setPlan(std::shared_ptr<const StoragePlan> plan) {
  plan_ = std::move(plan);
  rcache_ = ReadCache{};
  // Re-represent existing named chains to match the plan. (Unnamed chains
  // stay maps: plan FIFO hints are only emitted for named classes.)
  for (auto& [sig, b] : buckets_) {
    for (auto& [name, chain] : b.named) {
      const PlanEntry* e = plan_ ? plan_->find(sig, name) : nullptr;
      if (e && e->fifo) {
        if (!chain.ring()) {
          chain.makeRing();
          planCounters().ring_chains.inc();
        }
      } else {
        chain.makeMap();
      }
    }
  }
}

void TupleSpace::encode(Writer& w) const {
  w.u64(next_seq_);
  w.u64(size_);
  // Flatten to (seq, tuple) pairs in seq order; decode re-buckets. This is
  // canonical: equal contents => identical bytes.
  std::vector<std::pair<std::uint64_t, const Tuple*>> all;
  all.reserve(size_);
  for (const auto& [sig, b] : buckets_) {
    for (const auto& [name, chain] : b.named) {
      chain.scan([&](std::uint64_t seq, const Tuple& t) {
        all.emplace_back(seq, &t);
        return false;
      });
    }
    b.unnamed.scan([&](std::uint64_t seq, const Tuple& t) {
      all.emplace_back(seq, &t);
      return false;
    });
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [seq, t] : all) {
    w.u64(seq);
    t->encode(w);
  }
}

TupleSpace TupleSpace::decode(Reader& r) {
  TupleSpace ts;
  ts.next_seq_ = r.u64();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seq = r.u64();
    Tuple t = Tuple::decode(r);
    const SignatureKey sig = signatureOf(t);
    auto& bucket = ts.buckets_[sig];
    // Snapshot order is seq-ascending, so append preserves chain order.
    if (auto name = nameOf(t)) {
      bucket.named[*name].append(seq, std::move(t));
    } else {
      bucket.unnamed.append(seq, std::move(t));
    }
    ++ts.size_;
  }
  return ts;
}

bool TupleSpace::operator==(const TupleSpace& other) const {
  Writer a, b;
  encode(a);
  other.encode(b);
  return a.buffer() == b.buffer();
}

}  // namespace ftl::ts

// TupleSpace: the associative store backing one Linda tuple space.
//
// Storage is bucketed by signature (ordered type list — the FT-lcc catalog
// artifact) and, within a signature, by the conventional leading string
// "name". Matching therefore touches only same-signature candidates; the E9
// bench quantifies the win over a linear scan.
//
// A StoragePlan (ts/plan.hpp, emitted by the whole-program analyzer) can
// specialize storage per class WITHOUT changing observable behavior:
//  - queue-paradigm (FIFO) classes store their named chains in a ring buffer
//    (contiguous deque, O(1) oldest-pop) instead of a node-based map;
//  - read-mostly (distributed-variable) classes fill a one-entry read cache
//    so repeated rd's skip the bucket and chain lookups entirely.
// ftl_plan_* obs counters (docs/ANALYZER.md) report how often each
// specialized path fires.
//
// DETERMINISM: this container is part of the replicated TS state machine, so
// every operation must behave identically at every replica:
//  - insertion order is tracked with an explicit sequence counter that is
//    itself part of the state (and of snapshots);
//  - a match always selects the OLDEST matching tuple (lowest sequence);
//  - snapshots serialize buckets and chains in sorted order, so equal
//    contents produce byte-identical snapshots (DESIGN.md invariant 2) —
//    including across replicas loaded with DIFFERENT plans (the chain
//    representation is not observable).
//
// This class is NOT thread-safe; the owning state machine / runtime
// serializes access.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuple/signature.hpp"
#include "ts/plan.hpp"

namespace ftl::ts {

using tuple::Pattern;
using tuple::SignatureKey;
using tuple::Tuple;

class TupleSpace {
 public:
  TupleSpace() = default;
  // The read cache holds a pointer into this space's own buckets; copies
  // must not inherit it. Moves keep it (the nodes move wholesale).
  TupleSpace(const TupleSpace& other);
  TupleSpace& operator=(const TupleSpace& other);
  TupleSpace(TupleSpace&&) = default;
  TupleSpace& operator=(TupleSpace&&) = default;

  /// Deposit a copy of `t`; returns its insertion sequence number.
  std::uint64_t put(Tuple t);

  /// Remove and return the oldest tuple matching `p`, if any (inp / the
  /// destructive half of in).
  std::optional<Tuple> take(const Pattern& p);

  /// Return (without removing) the oldest tuple matching `p`, if any.
  /// Copies the match; prefer readRef() on the hot path.
  std::optional<Tuple> read(const Pattern& p) const;

  /// Zero-copy read: a borrowed pointer to the oldest match (nullptr if
  /// none). The pointer is invalidated by ANY subsequent mutation of this
  /// space — copy before mutating. May fill the plan read-cache, so it is
  /// NOT safe under a shared (reader-reader) lock; use readRefShared there.
  const Tuple* readRef(const Pattern& p) const;

  /// readRef without any cache write: every access is const in the machine
  /// sense, so concurrent calls from multiple reader threads are safe (the
  /// owner must still exclude writers, e.g. via a shared_mutex).
  const Tuple* readRefShared(const Pattern& p) const;

  /// Oldest tuple of the (sig, name) chain — regardless of any further
  /// actuals a probe may carry (nullptr if the chain is absent/empty).
  /// Cache-free and shared-lock safe. Used to publish lock-free read slots.
  const Tuple* chainFront(SignatureKey sig, const std::string& name) const;

  /// Bumped by every mutation; lets callers validate borrowed readRef
  /// pointers and published read slots.
  std::uint64_t mutationCount() const { return mut_count_; }

  /// Remove and return ALL tuples matching `p`, oldest first (move).
  std::vector<Tuple> takeAll(const Pattern& p);

  /// Return ALL tuples matching `p`, oldest first, without removing (copy).
  std::vector<Tuple> readAll(const Pattern& p) const;

  /// Number of tuples matching `p`.
  std::size_t count(const Pattern& p) const;

  /// Total number of tuples.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Distinct signatures currently stored (diagnostics / benches).
  std::size_t bucketCount() const { return buckets_.size(); }

  /// All tuples, oldest first (diagnostics and tests).
  std::vector<Tuple> contents() const;

  /// Attach (or clear, with nullptr) a storage plan. Existing chains are
  /// re-represented to match the plan; contents and matching behavior are
  /// unchanged.
  void setPlan(std::shared_ptr<const StoragePlan> plan);
  const StoragePlan* plan() const { return plan_.get(); }

  /// Deterministic full-state serialization. Plan-independent: two spaces
  /// with equal contents encode identically whatever their plans.
  void encode(Writer& w) const;
  static TupleSpace decode(Reader& r);

  bool operator==(const TupleSpace& other) const;

 private:
  /// Insertion-ordered tuples of one (signature, name) class. Two physical
  /// representations with identical observable order:
  ///  - Map (default): seq -> tuple, supports arbitrary-seq erase cheaply.
  ///  - Ring (plan: fifo classes): deque of (seq, tuple), O(1) append and
  ///    oldest-pop, contiguous scan. Seqs are strictly increasing in both
  ///    (appends always carry a fresh, larger seq).
  class Chain {
   public:
    bool ring() const { return ring_; }
    void makeRing();
    void makeMap();

    void append(std::uint64_t seq, Tuple t);
    /// Oldest-first scan; fn(seq, tuple) returns true to stop early.
    template <typename Fn>
    void scan(Fn&& fn) const {
      if (ring_) {
        for (const auto& [seq, t] : ring_rep_) {
          if (fn(seq, t)) return;
        }
      } else {
        for (const auto& [seq, t] : map_rep_) {
          if (fn(seq, t)) return;
        }
      }
    }
    /// Remove and return the tuple with sequence `seq` (must exist).
    Tuple extract(std::uint64_t seq);

    bool empty() const { return ring_ ? ring_rep_.empty() : map_rep_.empty(); }
    std::size_t size() const { return ring_ ? ring_rep_.size() : map_rep_.size(); }

   private:
    bool ring_ = false;
    std::map<std::uint64_t, Tuple> map_rep_;
    std::deque<std::pair<std::uint64_t, Tuple>> ring_rep_;
  };

  struct Bucket {
    std::map<std::string, Chain> named;  // leading string actual -> chain
    Chain unnamed;                       // everything else
  };

  template <typename Fn>  // Fn(const Chain&) -> bool (stop?)
  void eachCandidateChain(SignatureKey sig, const Pattern& p, Fn&& fn) const;
  /// Shared implementation of readRef/readRefShared.
  const Tuple* readRefImpl(const Pattern& p, bool use_cache) const;
  void pruneBucket(SignatureKey sig);
  /// Leading string actual of `p` without allocating, or nullptr.
  static const std::string* leadingName(const Pattern& p);
  void noteMutation() { ++mut_count_; }

  // Buckets hash by signature key: lookup is O(1) and nothing iterates this
  // map in storage order (contents/encode re-sort by insertion seq, so
  // snapshots stay canonical regardless of hash order).
  std::unordered_map<SignatureKey, Bucket> buckets_;
  std::uint64_t next_seq_ = 1;
  std::size_t size_ = 0;

  std::shared_ptr<const StoragePlan> plan_;
  // One-entry read cache for read-mostly classes: remembers the chain the
  // last cached rd resolved to. Valid only while mut == mut_count_ (any
  // mutation invalidates; chain pointers are node-stable until erased, and
  // every erase bumps mut_count_ first).
  struct ReadCache {
    SignatureKey sig = 0;
    std::string name;
    const Chain* chain = nullptr;
    std::uint64_t mut = 0;
  };
  mutable ReadCache rcache_;
  std::uint64_t mut_count_ = 0;
};

}  // namespace ftl::ts

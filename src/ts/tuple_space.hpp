// TupleSpace: the associative store backing one Linda tuple space.
//
// Storage is bucketed by signature (ordered type list — the FT-lcc catalog
// artifact) and, within a signature, by the conventional leading string
// "name". Matching therefore touches only same-signature candidates; the E9
// bench quantifies the win over a linear scan.
//
// DETERMINISM: this container is part of the replicated TS state machine, so
// every operation must behave identically at every replica:
//  - insertion order is tracked with an explicit sequence counter that is
//    itself part of the state (and of snapshots);
//  - a match always selects the OLDEST matching tuple (lowest sequence);
//  - snapshots serialize buckets and chains in sorted order, so equal
//    contents produce byte-identical snapshots (DESIGN.md invariant 2).
//
// This class is NOT thread-safe; the owning state machine / runtime
// serializes access.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tuple/signature.hpp"

namespace ftl::ts {

using tuple::Pattern;
using tuple::SignatureKey;
using tuple::Tuple;

class TupleSpace {
 public:
  /// Deposit a copy of `t`; returns its insertion sequence number.
  std::uint64_t put(Tuple t);

  /// Remove and return the oldest tuple matching `p`, if any (inp / the
  /// destructive half of in).
  std::optional<Tuple> take(const Pattern& p);

  /// Return (without removing) the oldest tuple matching `p`, if any.
  std::optional<Tuple> read(const Pattern& p) const;

  /// Remove and return ALL tuples matching `p`, oldest first (move).
  std::vector<Tuple> takeAll(const Pattern& p);

  /// Return ALL tuples matching `p`, oldest first, without removing (copy).
  std::vector<Tuple> readAll(const Pattern& p) const;

  /// Number of tuples matching `p`.
  std::size_t count(const Pattern& p) const;

  /// Total number of tuples.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Distinct signatures currently stored (diagnostics / benches).
  std::size_t bucketCount() const { return buckets_.size(); }

  /// All tuples, oldest first (diagnostics and tests).
  std::vector<Tuple> contents() const;

  /// Deterministic full-state serialization.
  void encode(Writer& w) const;
  static TupleSpace decode(Reader& r);

  bool operator==(const TupleSpace& other) const;

 private:
  // Chain: insertion-ordered tuples (seq -> tuple).
  using Chain = std::map<std::uint64_t, Tuple>;
  struct Bucket {
    std::map<std::string, Chain> named;  // leading string actual -> chain
    Chain unnamed;                       // everything else
  };

  template <typename Fn>  // Fn(const Chain&) -> bool (stop?)
  void eachCandidateChain(SignatureKey sig, const Pattern& p, Fn&& fn) const;
  void pruneBucket(SignatureKey sig);

  // Buckets hash by signature key: lookup is O(1) and nothing iterates this
  // map in storage order (contents/encode re-sort by insertion seq, so
  // snapshots stay canonical regardless of hash order).
  std::unordered_map<SignatureKey, Bucket> buckets_;
  std::uint64_t next_seq_ = 1;
  std::size_t size_ = 0;
};

}  // namespace ftl::ts

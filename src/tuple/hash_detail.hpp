// Shared hashing primitives for the owning (Value/Tuple) and view
// (ValueView/TupleView) layers. Both layers MUST produce bit-identical
// hashes and signature keys for equal content — keeping the constants and
// steps in one place is what guarantees it (view_test.cpp cross-checks).
#pragma once

#include <cstdint>
#include <cstring>

namespace ftl::tuple {

enum class ValueType : std::uint8_t;

namespace detail {

inline std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Streaming form of signature.cpp's hashTypes: FNV-1a over type tags,
/// salted with the arity. sigInit(arity) then sigStep per field type, in
/// field order, yields exactly hashTypes({types...}).
inline std::uint64_t sigInit(std::size_t arity) {
  return 0xcbf29ce484222325ULL ^ (arity * 0x9e3779b97f4a7c15ULL);
}

inline std::uint64_t sigStep(std::uint64_t h, std::uint8_t type_tag) {
  h ^= type_tag;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace detail
}  // namespace ftl::tuple

#include "tuple/parse.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "common/assert.hpp"

namespace ftl::tuple {

namespace {

/// Recursive-descent scanner over the input text.
class Scanner {
 public:
  explicit Scanner(std::string_view text, std::size_t start = 0)
      : text_(text), pos_(start) {}

  [[noreturn]] void fail(const std::string& what) const {
    std::ostringstream os;
    os << "parse error at offset " << pos_ << ": " << what;
    throw Error(os.str());
  }

  void skipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool tryTake(char c) {
    if (!atEnd() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consume an identifier-like word ([a-z0-9]+); a view into the input.
  std::string_view word() {
    skipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a word");
    return text_.substr(start, pos_ - start);
  }

  /// Quoted string content. Escape-free strings (the common case) come back
  /// as a view into the input; only escaped ones materialize into `buf`.
  std::string_view quotedString(std::string& buf) {
    expect('"');
    const std::size_t start = pos_;
    // Fast path: scan for the closing quote; bail to the slow path on '\\'.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        const std::string_view out = text_.substr(start, pos_ - start);
        ++pos_;
        return out;
      }
      if (c == '\\') break;
      ++pos_;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    buf.assign(text_.substr(start, pos_ - start));
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': buf.push_back('"'); break;
          case '\\': buf.push_back('\\'); break;
          case 'n': buf.push_back('\n'); break;
          case 't': buf.push_back('\t'); break;
          default: fail("unknown escape");
        }
      } else {
        buf.push_back(c);
      }
    }
    return buf;
  }

  Value number() {
    skipWs();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_real = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_real = true;
        ++pos_;
        if ((c == 'e' || c == 'E') && pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    const std::string_view lit = text_.substr(start, pos_ - start);
    if (lit.empty() || lit == "-" || lit == "+") fail("expected a number");
    // from_chars parses the view in place (no intermediate std::string, no
    // locale). It rejects a leading '+', which stoll/stod accepted — skip it.
    const std::string_view digits = lit.front() == '+' ? lit.substr(1) : lit;
    if (is_real) {
      double d = 0;
      const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), d);
      if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
        fail("bad numeric literal '" + std::string(lit) + "'");
      }
      return Value(d);
    }
    std::int64_t i = 0;
    const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), i);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      fail("bad numeric literal '" + std::string(lit) + "'");
    }
    return Value(i);
  }

  std::size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  std::size_t pos_;
};

int base64Digit(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

Bytes decodeBase64(Scanner& s, std::string_view text) {
  Bytes out;
  int acc = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=') break;
    const int d = base64Digit(c);
    if (d < 0) s.fail("bad base64 digit");
    acc = (acc << 6) | d;
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  return out;
}

Value parseValueFrom(Scanner& s) {
  const char c = s.peek();
  std::string buf;
  if (c == '"') return Value(s.quotedString(buf));
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') return s.number();
  const std::string_view w = s.word();
  if (w == "true") return Value(true);
  if (w == "false") return Value(false);
  if (w == "b64") {
    return Value(decodeBase64(s, s.quotedString(buf)));
  }
  s.fail("unknown value '" + std::string(w) + "'");
}

ValueType parseTypeName(Scanner& s) {
  const std::string_view w = s.word();
  if (w == "int") return ValueType::Int;
  if (w == "real") return ValueType::Real;
  if (w == "bool") return ValueType::Bool;
  if (w == "str") return ValueType::Str;
  if (w == "blob") return ValueType::Blob;
  s.fail("unknown type '" + std::string(w) + "' (want int/real/bool/str/blob)");
}

}  // namespace

Value parseValue(std::string_view text) {
  Scanner s(text);
  Value v = parseValueFrom(s);
  if (!s.atEnd()) s.fail("trailing input after value");
  return v;
}

Tuple parseTuple(std::string_view text) {
  Scanner s(text);
  s.expect('(');
  std::vector<Value> fields;
  if (!s.tryTake(')')) {
    do {
      fields.push_back(parseValueFrom(s));
    } while (s.tryTake(','));
    s.expect(')');
  }
  if (!s.atEnd()) s.fail("trailing input after tuple");
  return Tuple(std::move(fields));
}

namespace {

Pattern parsePatternFrom(Scanner& s) {
  s.expect('(');
  std::vector<PatternField> fields;
  if (!s.tryTake(')')) {
    do {
      if (s.peek() == '?') {
        s.take();
        fields.push_back(formal(parseTypeName(s)));
      } else {
        fields.push_back(actual(parseValueFrom(s)));
      }
    } while (s.tryTake(','));
    s.expect(')');
  }
  return Pattern(std::move(fields));
}

}  // namespace

Pattern parsePattern(std::string_view text) {
  Scanner s(text);
  Pattern p = parsePatternFrom(s);
  if (!s.atEnd()) s.fail("trailing input after pattern");
  return p;
}

Value parseValueAt(std::string_view text, std::size_t& pos) {
  Scanner s(text, pos);
  Value v = parseValueFrom(s);
  pos = s.pos();
  return v;
}

Pattern parsePatternAt(std::string_view text, std::size_t& pos) {
  Scanner s(text, pos);
  Pattern p = parsePatternFrom(s);
  pos = s.pos();
  return p;
}

}  // namespace ftl::tuple

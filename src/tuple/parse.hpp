// Text syntax for tuples and patterns — the notation the paper (and every
// Linda paper) writes:
//
//   tuple:    ("subtask", 17, 2.5, true, b64"AQID")
//   pattern:  ("subtask", ?int, ?real, ?bool, ?blob)
//
// Grammar (informal):
//   tuple   := '(' [value (',' value)*] ')'
//   pattern := '(' [field (',' field)*] ')'
//   field   := value | '?' type
//   value   := integer | real | 'true' | 'false' | string | blob
//   type    := 'int' | 'real' | 'bool' | 'str' | 'blob'
//   string  := '"' chars with \" \\ \n \t escapes '"'
//   blob    := 'b64"' base64 '"'
//   real    := requires '.' or exponent (else it is an integer)
//
// Parsing throws ftl::Error with a position-annotated message on bad input.
// Used by the interactive REPL example and handy for config/test fixtures.
#pragma once

#include <string_view>

#include "tuple/pattern.hpp"

namespace ftl::tuple {

/// Parse a single value, e.g. `42`, `2.5`, `"text"`, `true`, `b64"AQ=="`.
Value parseValue(std::string_view text);

/// Parse a tuple, e.g. `("job", 7)`.
Tuple parseTuple(std::string_view text);

/// Parse a pattern, e.g. `("job", ?int)`. A pattern with no formals is all
/// actuals (and vice versa a tuple literal is a valid pattern).
Pattern parsePattern(std::string_view text);

/// Render helpers already exist as Tuple::toString / Pattern::toString;
/// these parse functions are their inverses (round-trip tested).

// Prefix variants for embedding the tuple language inside larger grammars
// (the AGS text format of ftlinda/ags_text.hpp, the REPL). Each parses one
// item starting at `pos` and advances `pos` just past it; trailing input is
// the caller's business. Errors carry the absolute offset into `text`.

Value parseValueAt(std::string_view text, std::size_t& pos);
Pattern parsePatternAt(std::string_view text, std::size_t& pos);

}  // namespace ftl::tuple

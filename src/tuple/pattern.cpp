#include "tuple/pattern.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "tuple/hash_detail.hpp"
#include "tuple/view.hpp"

namespace ftl::tuple {

void Pattern::computeSig() {
  std::uint64_t h = detail::sigInit(fields_.size());
  for (const auto& f : fields_) h = detail::sigStep(h, static_cast<std::uint8_t>(f.type()));
  sig_ = h;
}

std::uint64_t Pattern::emptySig() { return detail::sigInit(0); }

PatternField formal(ValueType t) {
  PatternField f;
  f.kind = PatternField::Kind::Formal;
  f.formal_type = t;
  return f;
}

PatternField actual(Value v) {
  PatternField f;
  f.kind = PatternField::Kind::Actual;
  f.actual = std::move(v);
  return f;
}

void PatternField::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  if (kind == Kind::Actual) {
    actual.encode(w);
  } else {
    w.u8(static_cast<std::uint8_t>(formal_type));
  }
}

PatternField PatternField::decode(Reader& r) {
  PatternField f;
  const std::uint8_t kind = r.u8();
  FTL_CHECK(kind <= static_cast<std::uint8_t>(Kind::Formal),
            "corrupt pattern-field kind byte");
  f.kind = static_cast<Kind>(kind);
  if (f.kind == Kind::Actual) {
    f.actual = Value::decode(r);
  } else {
    const std::uint8_t type = r.u8();
    FTL_CHECK(type <= static_cast<std::uint8_t>(ValueType::Blob),
              "corrupt formal type byte");
    f.formal_type = static_cast<ValueType>(type);
  }
  return f;
}

const PatternField& Pattern::field(std::size_t i) const {
  FTL_REQUIRE(i < fields_.size(), "pattern field index out of range");
  return fields_[i];
}

std::size_t Pattern::formalCount() const {
  std::size_t n = 0;
  for (const auto& f : fields_) {
    if (f.kind == PatternField::Kind::Formal) ++n;
  }
  return n;
}

bool Pattern::matches(const Tuple& t) const {
  if (t.arity() != fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& f = fields_[i];
    const auto& v = t.field(i);
    if (f.kind == PatternField::Kind::Actual) {
      if (!(f.actual == v)) return false;
    } else {
      if (f.formal_type != v.type()) return false;
    }
  }
  return true;
}

bool Pattern::matches(const TupleView& t) const {
  if (t.arity() != fields_.size()) return false;
  bool ok = true;
  t.forEachField([&](std::size_t i, const ValueView& v) {
    const auto& f = fields_[i];
    if (f.kind == PatternField::Kind::Actual) {
      ok = v.equals(f.actual);
    } else {
      ok = (f.formal_type == v.type());
    }
    return ok;
  });
  return ok;
}

std::vector<Value> Pattern::bind(const Tuple& t) const {
  FTL_REQUIRE(matches(t), "bind() requires a matching tuple");
  std::vector<Value> bound;
  bound.reserve(formalCount());
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].kind == PatternField::Kind::Formal) bound.push_back(t.field(i));
  }
  return bound;
}

bool Pattern::operator==(const Pattern& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& a = fields_[i];
    const auto& b = other.fields_[i];
    if (a.kind != b.kind) return false;
    if (a.kind == PatternField::Kind::Actual) {
      if (!(a.actual == b.actual)) return false;
    } else {
      if (a.formal_type != b.formal_type) return false;
    }
  }
  return true;
}

void Pattern::encode(Writer& w) const {
  FTL_CHECK(fields_.size() <= UINT16_MAX, "pattern arity exceeds u16 prefix");
  w.u16(static_cast<std::uint16_t>(fields_.size()));
  for (const auto& f : fields_) f.encode(w);
}

Pattern Pattern::decode(Reader& r) {
  const std::uint16_t n = r.u16();
  std::vector<PatternField> fields;
  fields.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) fields.push_back(PatternField::decode(r));
  return Pattern(std::move(fields));
}

std::string Pattern::toString() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    if (fields_[i].kind == PatternField::Kind::Actual) {
      os << fields_[i].actual.toString();
    } else {
      os << '?' << valueTypeName(fields_[i].formal_type);
    }
  }
  os << ')';
  return os.str();
}

}  // namespace ftl::tuple

// Pattern: a tuple template used by in/rd/inp/rdp/move/copy.
//
// Each field is either an ACTUAL (a concrete value that must match exactly,
// type and value) or a FORMAL (a typed placeholder, written `?type` in
// Linda, that matches any value of that type and BINDS it). Bound formals
// are numbered left-to-right; an AGS body refers to them by slot index
// (this is exactly the artifact FT-lcc compiles `?x` references into).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tuple/tuple.hpp"

namespace ftl::tuple {

struct PatternField {
  enum class Kind : std::uint8_t { Actual = 0, Formal = 1 };
  Kind kind = Kind::Actual;
  Value actual;                          // valid when kind == Actual
  ValueType formal_type = ValueType::Int;  // valid when kind == Formal

  /// The type this field requires of the tuple field it matches.
  ValueType type() const { return kind == Kind::Actual ? actual.type() : formal_type; }

  void encode(Writer& w) const;
  static PatternField decode(Reader& r);
};

/// Typed formal placeholder, e.g. `formal(ValueType::Int)` for `?int`.
PatternField formal(ValueType t);
/// Actual field wrapper (implicit conversions usually suffice).
PatternField actual(Value v);

class TupleView;

class Pattern {
 public:
  Pattern() : sig_(emptySig()) {}
  explicit Pattern(std::vector<PatternField> fields) : fields_(std::move(fields)) {
    computeSig();
  }
  Pattern(std::initializer_list<PatternField> fields) : fields_(fields) { computeSig(); }

  std::size_t arity() const { return fields_.size(); }
  const PatternField& field(std::size_t i) const;
  const std::vector<PatternField>& fields() const { return fields_; }

  /// Number of formals (= number of binding slots, in field order).
  std::size_t formalCount() const;

  /// Cached signature key (tuple/signature.hpp), computed eagerly at
  /// construction — patterns are immutable, so every match/bucket lookup
  /// reuses it instead of re-hashing the type list.
  std::uint64_t signature() const { return sig_; }

  /// True iff `t` has the same arity, every actual equals the corresponding
  /// tuple field, and every formal's type matches.
  bool matches(const Tuple& t) const;
  /// Same relation, evaluated directly over an encoded tuple (no
  /// materialization).
  bool matches(const TupleView& t) const;

  /// Extract the values the formals bind against `t` (which must match),
  /// in formal order.
  std::vector<Value> bind(const Tuple& t) const;

  bool operator==(const Pattern& other) const;

  void encode(Writer& w) const;
  static Pattern decode(Reader& r);

  /// e.g. `("count", ?int)`.
  std::string toString() const;

 private:
  void computeSig();
  static std::uint64_t emptySig();

  std::vector<PatternField> fields_;
  std::uint64_t sig_ = 0;  // derived from fields_; not part of equality
};

/// Variadic builder mixing actuals and formals:
///   makePattern("count", formal(ValueType::Int))
template <typename... Args>
Pattern makePattern(Args&&... args) {
  std::vector<PatternField> fields;
  fields.reserve(sizeof...(Args));
  auto push = [&fields](auto&& a) {
    using A = std::decay_t<decltype(a)>;
    if constexpr (std::is_same_v<A, PatternField>) {
      fields.push_back(std::forward<decltype(a)>(a));
    } else {
      fields.push_back(actual(Value(std::forward<decltype(a)>(a))));
    }
  };
  (push(std::forward<Args>(args)), ...);
  return Pattern(std::move(fields));
}

/// Shorthand formals used throughout examples/tests: fInt(), fStr(), ...
inline PatternField fInt() { return formal(ValueType::Int); }
inline PatternField fReal() { return formal(ValueType::Real); }
inline PatternField fBool() { return formal(ValueType::Bool); }
inline PatternField fStr() { return formal(ValueType::Str); }
inline PatternField fBlob() { return formal(ValueType::Blob); }

}  // namespace ftl::tuple

#include "tuple/signature.hpp"

#include <algorithm>

#include "tuple/hash_detail.hpp"
#include "tuple/view.hpp"

namespace ftl::tuple {

SignatureKey signatureOf(const Tuple& t) {
  // Fused FNV-1a over the field types (no intermediate type vector).
  std::uint64_t h = detail::sigInit(t.arity());
  for (const auto& f : t.fields()) {
    h = detail::sigStep(h, static_cast<std::uint8_t>(f.type()));
  }
  return h;
}

SignatureKey signatureOf(const Pattern& p) { return p.signature(); }

SignatureKey signatureOf(const TupleView& t) { return t.signature(); }

SignatureKey signatureOf(const PatternView& p) { return p.signature(); }

std::optional<std::string> nameOf(const Tuple& t) {
  if (const std::string* n = nameRefOf(t)) return *n;
  return std::nullopt;
}

std::optional<std::string> nameOf(const Pattern& p) {
  if (const std::string* n = nameRefOf(p)) return *n;
  return std::nullopt;
}

const std::string* nameRefOf(const Tuple& t) {
  if (t.arity() > 0 && t.field(0).type() == ValueType::Str) return &t.field(0).asStr();
  return nullptr;
}

const std::string* nameRefOf(const Pattern& p) {
  if (p.arity() > 0 && p.field(0).kind == PatternField::Kind::Actual &&
      p.field(0).actual.type() == ValueType::Str) {
    return &p.field(0).actual.asStr();
  }
  return nullptr;
}

SignatureKey SignatureCatalog::add(const Pattern& p) {
  const SignatureKey k = signatureOf(p);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
  if (it == keys_.end() || *it != k) keys_.insert(it, k);
  return k;
}

bool SignatureCatalog::contains(SignatureKey k) const {
  return std::binary_search(keys_.begin(), keys_.end(), k);
}

}  // namespace ftl::tuple

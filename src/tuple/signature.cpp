#include "tuple/signature.hpp"

#include <algorithm>

namespace ftl::tuple {

namespace {

SignatureKey hashTypes(const std::vector<ValueType>& types) {
  // FNV-1a over the type tags, salted with the arity.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ (types.size() * 0x9e3779b97f4a7c15ULL);
  for (ValueType t : types) {
    h ^= static_cast<std::uint8_t>(t);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

SignatureKey signatureOf(const Tuple& t) {
  std::vector<ValueType> types;
  types.reserve(t.arity());
  for (const auto& f : t.fields()) types.push_back(f.type());
  return hashTypes(types);
}

SignatureKey signatureOf(const Pattern& p) {
  std::vector<ValueType> types;
  types.reserve(p.arity());
  for (const auto& f : p.fields()) types.push_back(f.type());
  return hashTypes(types);
}

std::optional<std::string> nameOf(const Tuple& t) {
  if (t.arity() > 0 && t.field(0).type() == ValueType::Str) return t.field(0).asStr();
  return std::nullopt;
}

std::optional<std::string> nameOf(const Pattern& p) {
  if (p.arity() > 0 && p.field(0).kind == PatternField::Kind::Actual &&
      p.field(0).actual.type() == ValueType::Str) {
    return p.field(0).actual.asStr();
  }
  return std::nullopt;
}

SignatureKey SignatureCatalog::add(const Pattern& p) {
  const SignatureKey k = signatureOf(p);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
  if (it == keys_.end() || *it != k) keys_.insert(it, k);
  return k;
}

bool SignatureCatalog::contains(SignatureKey k) const {
  return std::binary_search(keys_.begin(), keys_.end(), k);
}

}  // namespace ftl::tuple

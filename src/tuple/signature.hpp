// Signature catalog — our reproduction of FT-lcc's pattern analysis.
//
// The FT-Linda precompiler catalogs the ordered type list ("signature") of
// every pattern in the program so the runtime can bucket tuples and match
// against only same-signature candidates. We compute the same artifact at
// runtime: a signature is the ordered list of field types, hashed to a
// 64-bit key; the tuple space buckets its contents by it (and secondarily
// by a leading string actual — the conventional tuple "name").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tuple/pattern.hpp"

namespace ftl::tuple {

/// Hash key of an ordered type list. Equal signatures <=> possibly-matching
/// arity+types (strict: same types in same order).
using SignatureKey = std::uint64_t;

class TupleView;
class PatternView;

/// Signature of a concrete tuple.
SignatureKey signatureOf(const Tuple& t);

/// Signature of a pattern (actuals contribute their value's type; formals
/// their declared type). A pattern can only match tuples with an equal
/// signature key. O(1): patterns cache their signature at construction.
SignatureKey signatureOf(const Pattern& p);

/// View overloads: the key was already computed during the decode scan.
SignatureKey signatureOf(const TupleView& t);
SignatureKey signatureOf(const PatternView& p);

/// The leading string "name" convention: returns the first field if it is a
/// string actual (pattern) / string value (tuple), else nullopt. Used as a
/// secondary bucket key.
std::optional<std::string> nameOf(const Tuple& t);
std::optional<std::string> nameOf(const Pattern& p);

/// Zero-copy variants of nameOf: a pointer into the tuple/pattern's own
/// storage (nullptr when unnamed). Preferred on the hot path — no
/// std::string construction per lookup.
const std::string* nameRefOf(const Tuple& t);
const std::string* nameRefOf(const Pattern& p);

/// Statistics of a signature catalog built over a set of patterns (exposed
/// for the E9 matching bench and tests).
struct SignatureCatalog {
  /// Register a pattern; returns its signature key.
  SignatureKey add(const Pattern& p);

  /// Distinct signatures seen.
  std::size_t distinctSignatures() const { return keys_.size(); }

  bool contains(SignatureKey k) const;

 private:
  std::vector<SignatureKey> keys_;  // sorted unique
};

}  // namespace ftl::tuple

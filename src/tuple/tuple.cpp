#include "tuple/tuple.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace ftl::tuple {

const Value& Tuple::field(std::size_t i) const {
  FTL_REQUIRE(i < fields_.size(), "tuple field index out of range");
  return fields_[i];
}

void Tuple::encode(Writer& w) const {
  FTL_CHECK(fields_.size() <= UINT16_MAX, "tuple arity exceeds u16 prefix");
  w.u16(static_cast<std::uint16_t>(fields_.size()));
  for (const auto& f : fields_) f.encode(w);
}

Tuple Tuple::decode(Reader& r) {
  const std::uint16_t n = r.u16();
  std::vector<Value> fields;
  fields.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) fields.push_back(Value::decode(r));
  return Tuple(std::move(fields));
}

std::string Tuple::toString() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].toString();
  }
  os << ')';
  return os.str();
}

}  // namespace ftl::tuple

// Tuple: an ordered sequence of typed values — the unit of communication in
// Linda. By convention (followed by all of the paper's examples) the first
// field is a string naming the tuple's role, e.g. ("subtask", 17, blob).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "tuple/value.hpp"

namespace ftl::tuple {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> fields) : fields_(std::move(fields)) {}
  Tuple(std::initializer_list<Value> fields) : fields_(fields) {}

  std::size_t arity() const { return fields_.size(); }
  const Value& field(std::size_t i) const;
  const std::vector<Value>& fields() const { return fields_; }

  bool operator==(const Tuple& other) const { return fields_ == other.fields_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  void encode(Writer& w) const;
  static Tuple decode(Reader& r);

  /// e.g. `("subtask", 17, 3.5)`.
  std::string toString() const;

 private:
  std::vector<Value> fields_;
};

/// Variadic convenience constructor: makeTuple("count", 7).
template <typename... Args>
Tuple makeTuple(Args&&... args) {
  return Tuple({Value(std::forward<Args>(args))...});
}

}  // namespace ftl::tuple

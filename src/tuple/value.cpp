#include "tuple/value.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "tuple/hash_detail.hpp"

namespace ftl::tuple {

const char* valueTypeName(ValueType t) {
  switch (t) {
    case ValueType::Int: return "int";
    case ValueType::Real: return "real";
    case ValueType::Bool: return "bool";
    case ValueType::Str: return "str";
    case ValueType::Blob: return "blob";
  }
  return "?";
}

std::int64_t Value::asInt() const {
  FTL_REQUIRE(type() == ValueType::Int, "value is not an int");
  return std::get<std::int64_t>(v_);
}

double Value::asReal() const {
  FTL_REQUIRE(type() == ValueType::Real, "value is not a real");
  return std::get<double>(v_);
}

bool Value::asBool() const {
  FTL_REQUIRE(type() == ValueType::Bool, "value is not a bool");
  return std::get<bool>(v_);
}

const std::string& Value::asStr() const {
  FTL_REQUIRE(type() == ValueType::Str, "value is not a string");
  return std::get<std::string>(v_);
}

const Bytes& Value::asBlob() const {
  FTL_REQUIRE(type() == ValueType::Blob, "value is not a blob");
  return std::get<Bytes>(v_);
}

using detail::fnv1a;
using detail::mix;

std::uint64_t Value::hash() const {
  std::uint64_t h = mix(0, static_cast<std::uint64_t>(type()));
  switch (type()) {
    case ValueType::Int:
      return mix(h, static_cast<std::uint64_t>(std::get<std::int64_t>(v_)));
    case ValueType::Real: {
      const double d = std::get<double>(v_);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      return mix(h, bits);
    }
    case ValueType::Bool:
      return mix(h, std::get<bool>(v_) ? 1 : 0);
    case ValueType::Str: {
      const auto& s = std::get<std::string>(v_);
      return mix(h, fnv1a(s.data(), s.size()));
    }
    case ValueType::Blob: {
      const auto& b = std::get<Bytes>(v_);
      return mix(h, fnv1a(b.data(), b.size()));
    }
  }
  return h;
}

void Value::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::Int: w.i64(std::get<std::int64_t>(v_)); break;
    case ValueType::Real: w.f64(std::get<double>(v_)); break;
    case ValueType::Bool: w.boolean(std::get<bool>(v_)); break;
    case ValueType::Str: w.str(std::get<std::string>(v_)); break;
    case ValueType::Blob: w.bytes(std::get<Bytes>(v_)); break;
  }
}

Value Value::decode(Reader& r) {
  const auto t = static_cast<ValueType>(r.u8());
  switch (t) {
    case ValueType::Int: return Value(r.i64());
    case ValueType::Real: return Value(r.f64());
    case ValueType::Bool: return Value(r.boolean());
    case ValueType::Str: return Value(r.str());
    case ValueType::Blob: return Value(r.bytes());
  }
  throw Error("bad value type tag while decoding");
}

std::string Value::toString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::Int: os << std::get<std::int64_t>(v_); break;
    case ValueType::Real: os << std::get<double>(v_); break;
    case ValueType::Bool: os << (std::get<bool>(v_) ? "true" : "false"); break;
    case ValueType::Str: os << '"' << std::get<std::string>(v_) << '"'; break;
    case ValueType::Blob: os << "blob[" << std::get<Bytes>(v_).size() << "]"; break;
  }
  return os.str();
}

}  // namespace ftl::tuple

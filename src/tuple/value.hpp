// Value: one typed field of a Linda tuple.
//
// FT-Linda (like C-Linda) is typed: matching requires both type and, for
// actuals, value equality. We support the field types the paper's examples
// use (integers, reals, booleans, strings) plus an opaque blob for
// application payloads (subtask descriptors, result vectors, ...).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/serde.hpp"

namespace ftl::tuple {

enum class ValueType : std::uint8_t { Int = 0, Real = 1, Bool = 2, Str = 3, Blob = 4 };

/// Human-readable type name ("int", "real", ...).
const char* valueTypeName(ValueType t);

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}                       // NOLINT(google-explicit-constructor)
  Value(int v) : v_(static_cast<std::int64_t>(v)) {}     // NOLINT
  Value(unsigned v) : v_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : v_(v) {}                             // NOLINT
  Value(bool v) : v_(v) {}                               // NOLINT
  Value(std::string v) : v_(std::move(v)) {}             // NOLINT
  Value(std::string_view v) : v_(std::string(v)) {}      // NOLINT
  Value(const char* v) : v_(std::string(v)) {}           // NOLINT
  Value(Bytes v) : v_(std::move(v)) {}                   // NOLINT
  Value(BytesView v) : v_(v.toOwned()) {}                // NOLINT

  ValueType type() const { return static_cast<ValueType>(v_.index()); }

  std::int64_t asInt() const;
  double asReal() const;
  bool asBool() const;
  const std::string& asStr() const;
  const Bytes& asBlob() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Stable content hash (same across processes; used for bucket keys).
  std::uint64_t hash() const;

  void encode(Writer& w) const;
  static Value decode(Reader& r);

  /// Debug rendering, e.g. `"task"`, `42`, `3.5`, `true`, `blob[12]`.
  std::string toString() const;

 private:
  std::variant<std::int64_t, double, bool, std::string, Bytes> v_;
};

}  // namespace ftl::tuple

#include "tuple/view.hpp"

#include "common/assert.hpp"
#include "tuple/hash_detail.hpp"

namespace ftl::tuple {

// ------------------------------------------------------------ ValueView ---

std::int64_t ValueView::asInt() const {
  FTL_REQUIRE(type_ == ValueType::Int, "value is not an int");
  return int_;
}

double ValueView::asReal() const {
  FTL_REQUIRE(type_ == ValueType::Real, "value is not a real");
  return real_;
}

bool ValueView::asBool() const {
  FTL_REQUIRE(type_ == ValueType::Bool, "value is not a bool");
  return int_ != 0;
}

std::string_view ValueView::asStrView() const {
  FTL_REQUIRE(type_ == ValueType::Str, "value is not a string");
  return str_;
}

BytesView ValueView::asBlobView() const {
  FTL_REQUIRE(type_ == ValueType::Blob, "value is not a blob");
  return blob_;
}

bool ValueView::equals(const Value& v) const {
  if (type_ != v.type()) return false;
  switch (type_) {
    case ValueType::Int: return int_ == v.asInt();
    case ValueType::Real: return real_ == v.asReal();
    case ValueType::Bool: return (int_ != 0) == v.asBool();
    case ValueType::Str: return str_ == v.asStr();
    case ValueType::Blob: return blob_ == v.asBlob();
  }
  return false;
}

bool ValueView::operator==(const ValueView& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case ValueType::Int: return int_ == o.int_;
    case ValueType::Real: return real_ == o.real_;
    case ValueType::Bool: return (int_ != 0) == (o.int_ != 0);
    case ValueType::Str: return str_ == o.str_;
    case ValueType::Blob: return blob_ == o.blob_;
  }
  return false;
}

std::uint64_t ValueView::hash() const {
  using detail::fnv1a;
  using detail::mix;
  std::uint64_t h = mix(0, static_cast<std::uint64_t>(type_));
  switch (type_) {
    case ValueType::Int: return mix(h, static_cast<std::uint64_t>(int_));
    case ValueType::Real: {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &real_, sizeof(bits));
      return mix(h, bits);
    }
    case ValueType::Bool: return mix(h, int_ != 0 ? 1 : 0);
    case ValueType::Str: return mix(h, fnv1a(str_.data(), str_.size()));
    case ValueType::Blob: return mix(h, fnv1a(blob_.data, blob_.size));
  }
  return h;
}

Value ValueView::toOwned() const {
  switch (type_) {
    case ValueType::Int: return Value(int_);
    case ValueType::Real: return Value(real_);
    case ValueType::Bool: return Value(int_ != 0);
    case ValueType::Str: return Value(str_);
    case ValueType::Blob: return Value(blob_.toOwned());
  }
  throw Error("bad value type in view");
}

ValueView ValueView::of(const Value& v) {
  ValueView out;
  out.type_ = v.type();
  switch (v.type()) {
    case ValueType::Int: out.int_ = v.asInt(); break;
    case ValueType::Real: out.real_ = v.asReal(); break;
    case ValueType::Bool: out.int_ = v.asBool() ? 1 : 0; break;
    case ValueType::Str: out.str_ = v.asStr(); break;
    case ValueType::Blob: out.blob_ = BytesView(v.asBlob()); break;
  }
  return out;
}

ValueView ValueView::decode(Reader& r) {
  ValueView out;
  const std::uint8_t tag = r.u8();
  FTL_CHECK(tag <= static_cast<std::uint8_t>(ValueType::Blob),
            "bad value type tag while decoding");
  out.type_ = static_cast<ValueType>(tag);
  switch (out.type_) {
    case ValueType::Int: out.int_ = r.i64(); break;
    case ValueType::Real: out.real_ = r.f64(); break;
    case ValueType::Bool: out.int_ = r.boolean() ? 1 : 0; break;
    case ValueType::Str: out.str_ = r.readStrView(); break;
    case ValueType::Blob: out.blob_ = r.readBlobView(); break;
  }
  return out;
}

// ------------------------------------------------------------ TupleView ---

TupleView TupleView::decode(Reader& r) {
  TupleView out;
  out.data_ = r.cursor();
  const std::size_t start = r.position();
  out.arity_ = r.u16();
  std::uint64_t sig = detail::sigInit(out.arity_);
  for (std::uint16_t i = 0; i < out.arity_; ++i) {
    const ValueView v = ValueView::decode(r);  // validates field bounds
    sig = detail::sigStep(sig, static_cast<std::uint8_t>(v.type()));
  }
  out.sig_ = sig;
  out.size_ = r.position() - start;
  return out;
}

ValueView TupleView::field(std::size_t i) const {
  FTL_REQUIRE(i < arity_, "tuple field index out of range");
  Reader r(data_, size_);
  r.skip(2);
  for (std::size_t k = 0; k < i; ++k) (void)ValueView::decode(r);
  return ValueView::decode(r);
}

std::optional<std::string_view> TupleView::nameView() const {
  if (arity_ == 0) return std::nullopt;
  Reader r(data_, size_);
  r.skip(2);
  if (static_cast<ValueType>(r.u8()) != ValueType::Str) return std::nullopt;
  return r.readStrView();
}

bool TupleView::equals(const Tuple& t) const {
  if (t.arity() != arity_) return false;
  bool eq = true;
  forEachField([&](std::size_t i, const ValueView& v) {
    eq = v.equals(t.field(i));
    return eq;
  });
  return eq;
}

Tuple TupleView::toOwned() const {
  std::vector<Value> fields;
  fields.reserve(arity_);
  forEachField([&](std::size_t, const ValueView& v) {
    fields.push_back(v.toOwned());
    return true;
  });
  return Tuple(std::move(fields));
}

// ---------------------------------------------------------- PatternView ---

namespace {

/// Decode one encoded pattern field in place. Returns true for an actual
/// (with `actual` set) and false for a formal (with `ftype` set).
bool decodePatternField(Reader& r, ValueView& actual, ValueType& ftype) {
  const std::uint8_t kind = r.u8();
  FTL_CHECK(kind <= 1, "corrupt pattern-field kind byte");
  if (kind == 0) {  // Actual
    actual = ValueView::decode(r);
    return true;
  }
  const std::uint8_t type = r.u8();
  FTL_CHECK(type <= static_cast<std::uint8_t>(ValueType::Blob), "corrupt formal type byte");
  ftype = static_cast<ValueType>(type);
  return false;
}

}  // namespace

PatternView PatternView::decode(Reader& r) {
  PatternView out;
  out.data_ = r.cursor();
  const std::size_t start = r.position();
  out.arity_ = r.u16();
  std::uint64_t sig = detail::sigInit(out.arity_);
  for (std::uint16_t i = 0; i < out.arity_; ++i) {
    ValueView actual;
    ValueType ftype{};
    if (decodePatternField(r, actual, ftype)) {
      sig = detail::sigStep(sig, static_cast<std::uint8_t>(actual.type()));
    } else {
      sig = detail::sigStep(sig, static_cast<std::uint8_t>(ftype));
      ++out.formals_;
    }
  }
  out.sig_ = sig;
  out.size_ = r.position() - start;
  return out;
}

std::optional<std::string_view> PatternView::nameView() const {
  if (arity_ == 0) return std::nullopt;
  Reader r(data_, size_);
  r.skip(2);
  if (r.u8() != 0) return std::nullopt;  // formal
  if (static_cast<ValueType>(r.u8()) != ValueType::Str) return std::nullopt;
  return r.readStrView();
}

bool PatternView::matches(const TupleView& t) const {
  if (t.arity() != arity_) return false;
  Reader pr(data_, size_);
  pr.skip(2);
  bool ok = true;
  t.forEachField([&](std::size_t, const ValueView& v) {
    ValueView actual;
    ValueType ftype{};
    if (decodePatternField(pr, actual, ftype)) {
      ok = (actual == v);
    } else {
      ok = (ftype == v.type());
    }
    return ok;
  });
  return ok;
}

bool PatternView::matches(const Tuple& t) const {
  if (t.arity() != arity_) return false;
  Reader pr(data_, size_);
  pr.skip(2);
  for (std::size_t i = 0; i < arity_; ++i) {
    ValueView actual;
    ValueType ftype{};
    const Value& v = t.field(i);
    if (decodePatternField(pr, actual, ftype)) {
      if (!actual.equals(v)) return false;
    } else {
      if (ftype != v.type()) return false;
    }
  }
  return true;
}

void PatternView::bindInto(const TupleView& t, std::vector<Value>& out) const {
  FTL_REQUIRE(matches(t), "bindInto() requires a matching tuple");
  out.reserve(out.size() + formals_);
  Reader pr(data_, size_);
  pr.skip(2);
  t.forEachField([&](std::size_t, const ValueView& v) {
    ValueView actual;
    ValueType ftype{};
    if (!decodePatternField(pr, actual, ftype)) out.push_back(v.toOwned());
    return true;
  });
}

Pattern PatternView::toOwned() const {
  std::vector<PatternField> fields;
  fields.reserve(arity_);
  Reader pr(data_, size_);
  pr.skip(2);
  for (std::size_t i = 0; i < arity_; ++i) {
    ValueView a;
    ValueType ftype{};
    if (decodePatternField(pr, a, ftype)) {
      fields.push_back(actual(a.toOwned()));
    } else {
      fields.push_back(formal(ftype));
    }
  }
  return Pattern(std::move(fields));
}

}  // namespace ftl::tuple

// Non-owning views over ENCODED tuples and patterns: the zero-copy half of
// the tuple API (docs/API.md "View vs. owning").
//
// A ValueView/TupleView/PatternView borrows the wire bytes it was decoded
// from — a received datagram, a consul log entry, an arena block — and
// supports everything the match path needs (type inspection, signature,
// equality, matching, binding) without materializing a single std::string
// or std::vector. The owning Tuple/Value API remains the materialization
// boundary: call toOwned() when a value must outlive the buffer.
//
// Invariants the rest of the system relies on:
//  - ValueView::hash() is bit-identical to Value::hash() for equal content;
//  - TupleView::signature() equals tuple::signatureOf(decoded Tuple);
//  - decode() fully bounds-checks: a truncated or corrupt buffer throws
//    ftl::Error (never yields a view past the end of the buffer).
//
// LIFETIME: a view is valid only while the buffer it was decoded from is.
// Views must not be stored across the callback / arena epoch that produced
// them; tests/tuple/view_test.cpp and the ASan lifetime tests enforce this.
#pragma once

#include <string_view>

#include "tuple/signature.hpp"

namespace ftl::tuple {

/// One decoded-in-place tuple field.
class ValueView {
 public:
  ValueView() = default;

  ValueType type() const { return type_; }

  std::int64_t asInt() const;
  double asReal() const;
  bool asBool() const;
  std::string_view asStrView() const;
  BytesView asBlobView() const;

  /// Content equality against owning and view values (same relation as
  /// Value::operator==).
  bool equals(const Value& v) const;
  bool operator==(const ValueView& o) const;

  /// Bit-identical to Value::hash() of the same content.
  std::uint64_t hash() const;

  /// Materialize an owning Value (copies string/blob payloads).
  Value toOwned() const;

  /// View of an already-owning value (used by Reply::bound: borrow from the
  /// reply without copying).
  static ValueView of(const Value& v);

  /// Decode one encoded value, borrowing payload bytes from the reader's
  /// buffer. Throws ftl::Error on truncation or a bad type tag.
  static ValueView decode(Reader& r);

 private:
  ValueType type_ = ValueType::Int;
  std::int64_t int_ = 0;  // Int (also Bool: 0/1)
  double real_ = 0;       // Real
  std::string_view str_;  // Str
  BytesView blob_;        // Blob
};

/// A whole encoded tuple, validated and scanned once at decode time (the
/// scan computes arity and signature); fields are re-walked lazily.
class TupleView {
 public:
  TupleView() = default;

  std::size_t arity() const { return arity_; }
  /// Signature key — equal to signatureOf(toOwned()).
  SignatureKey signature() const { return sig_; }

  /// Field access re-scans the encoding from the front: O(i). Use
  /// forEachField for full iteration (O(arity) total).
  ValueView field(std::size_t i) const;

  /// fn(index, ValueView); returns false from fn to stop early.
  template <typename Fn>
  void forEachField(Fn&& fn) const {
    Reader r(data_, size_);
    r.skip(2);  // arity prefix (validated at decode)
    for (std::size_t i = 0; i < arity_; ++i) {
      if (!fn(i, ValueView::decode(r))) return;
    }
  }

  /// Leading string field (the conventional tuple "name"), if any.
  std::optional<std::string_view> nameView() const;

  /// The encoded bytes this view spans (arity prefix + fields).
  BytesView encoded() const { return BytesView(data_, size_); }

  bool equals(const Tuple& t) const;

  Tuple toOwned() const;

  /// Decode one encoded tuple starting at the reader's cursor; the reader
  /// advances past it. Validates every field (throws on corrupt input).
  static TupleView decode(Reader& r);

 private:
  const std::uint8_t* data_ = nullptr;  // start of the arity prefix
  std::size_t size_ = 0;                // bytes spanned by this tuple
  std::uint16_t arity_ = 0;
  SignatureKey sig_ = 0;
};

/// A whole encoded pattern (sequence of actual/formal fields), validated and
/// scanned once at decode time.
class PatternView {
 public:
  PatternView() = default;

  std::size_t arity() const { return arity_; }
  SignatureKey signature() const { return sig_; }
  std::size_t formalCount() const { return formals_; }

  /// Leading string ACTUAL (the name convention), if any.
  std::optional<std::string_view> nameView() const;

  /// Same relation as Pattern::matches(Tuple) on the decoded forms.
  bool matches(const TupleView& t) const;
  bool matches(const Tuple& t) const;

  /// Append the values the formals bind against `t` (which must match), in
  /// formal order. The appended Values are OWNING (materialized).
  void bindInto(const TupleView& t, std::vector<Value>& out) const;

  Pattern toOwned() const;

  static PatternView decode(Reader& r);

 private:
  /// fn(field kind byte, actual ValueView OR formal type); see .cpp.
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint16_t arity_ = 0;
  std::uint16_t formals_ = 0;
  SignatureKey sig_ = 0;
};

}  // namespace ftl::tuple

#include "net/network.hpp"
#include "baseline/central_server.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ftl::baseline {
namespace {

using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

struct CentralFixture : ::testing::Test {
  CentralFixture() : net(3), server(net, 0), c1(net, 1, 0, /*sync_out=*/true),
                     c2(net, 2, 0, /*sync_out=*/true) {
    server.start();
    c1.start();
    c2.start();
  }
  net::Network net;
  CentralServer server;
  CentralClient c1, c2;
};

TEST_F(CentralFixture, OutInAcrossClients) {
  c1.out(makeTuple("m", 7));
  EXPECT_EQ(c2.in(makePattern("m", fInt())).field(1).asInt(), 7);
  EXPECT_EQ(server.tupleCount(), 0u);
}

TEST_F(CentralFixture, RdKeepsTuple) {
  c1.out(makeTuple("m", 7));
  EXPECT_EQ(c2.rd(makePattern("m", fInt())).field(1).asInt(), 7);
  EXPECT_EQ(server.tupleCount(), 1u);
}

TEST_F(CentralFixture, InpMissAndHit) {
  EXPECT_EQ(c1.inp(makePattern("none")), std::nullopt);
  c2.out(makeTuple("none"));
  EXPECT_TRUE(c1.inp(makePattern("none")).has_value());
}

TEST_F(CentralFixture, BlockingInServedOnLaterOut) {
  std::thread waiter([&] {
    EXPECT_EQ(c1.in(makePattern("later", fInt())).field(1).asInt(), 3);
  });
  std::this_thread::sleep_for(Millis{20});
  EXPECT_EQ(server.blockedCount(), 1u);
  c2.out(makeTuple("later", 3));
  waiter.join();
}

TEST_F(CentralFixture, ServerCrashLosesEverything) {
  c1.out(makeTuple("gone", 1));
  net.crash(0);
  c2.setTimeout(Micros{50'000});
  EXPECT_THROW(c2.inp(makePattern("gone", fInt())), Error);
  EXPECT_TRUE(c2.serverLost());
}

TEST(CentralAsync, AsyncOutReturnsBeforeServerApplies) {
  // With asynchronous out (the conventional kernel behaviour), out() has no
  // ordering guarantee relative to other clients' inp — the weak-semantics
  // behaviour E7 quantifies. Here we only check async out works at all.
  net::NetworkConfig cfg;
  cfg.latency_mean = Micros{20'000};
  net::Network net(2, cfg);
  CentralServer server(net, 0);
  CentralClient client(net, 1, 0, /*sync_out=*/false);
  server.start();
  client.start();
  const auto start = Clock::now();
  client.out(makeTuple("x", 1));
  EXPECT_LT(Clock::now() - start, Micros{10'000});  // returned without waiting
  EXPECT_TRUE(client.in(makePattern("x", fInt())).field(1).asInt() == 1);
}

}  // namespace
}  // namespace ftl::baseline

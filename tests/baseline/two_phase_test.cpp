#include "net/network.hpp"
#include "baseline/two_phase.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ftl::baseline {
namespace {

using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

struct TwoPcFixture : ::testing::Test {
  static constexpr std::uint32_t kReplicas = 3;

  TwoPcFixture() : net(kReplicas + 1) {
    std::vector<net::HostId> rids;
    for (std::uint32_t i = 0; i < kReplicas; ++i) {
      replicas.push_back(std::make_unique<TwoPcReplica>(net, i));
      rids.push_back(i);
    }
    client = std::make_unique<TwoPcClient>(net, kReplicas, rids);
    for (auto& r : replicas) r->start();
    client->start();
  }

  void seedAll(const Tuple& t) {
    for (auto& r : replicas) r->seed(t);
  }

  net::Network net;
  std::vector<std::unique_ptr<TwoPcReplica>> replicas;
  std::unique_ptr<TwoPcClient> client;
};

TEST_F(TwoPcFixture, PutOnlyUpdateCommits) {
  UpdateSpec spec;
  spec.puts.push_back(makeTuple("x", 1));
  EXPECT_TRUE(client->atomicUpdate(spec));
  for (auto& r : replicas) EXPECT_EQ(r->tupleCount(), 1u);
}

TEST_F(TwoPcFixture, TakePutUpdateCommits) {
  seedAll(makeTuple("count", 5));
  UpdateSpec spec;
  spec.takes.push_back(makePattern("count", fInt()));
  spec.puts.push_back(makeTuple("count", 6));
  EXPECT_TRUE(client->atomicUpdate(spec));
  for (auto& r : replicas) EXPECT_EQ(r->tupleCount(), 1u);
}

TEST_F(TwoPcFixture, MissingTakeAborts) {
  UpdateSpec spec;
  spec.takes.push_back(makePattern("absent"));
  spec.puts.push_back(makeTuple("x"));
  EXPECT_FALSE(client->atomicUpdate(spec));
  for (auto& r : replicas) EXPECT_EQ(r->tupleCount(), 0u);  // abort applied nothing
}

TEST_F(TwoPcFixture, SequentialUpdatesAllApply) {
  seedAll(makeTuple("count", 0));
  for (int i = 0; i < 10; ++i) {
    UpdateSpec spec;
    spec.takes.push_back(makePattern("count", i));
    spec.puts.push_back(makeTuple("count", i + 1));
    EXPECT_TRUE(client->atomicUpdate(spec)) << "iteration " << i;
  }
  for (auto& r : replicas) EXPECT_EQ(r->tupleCount(), 1u);
}

TEST_F(TwoPcFixture, MessageCostIsMultipleRoundsPerUpdate) {
  // The property E4 quantifies: one lock/2PC update costs ≥ 6 one-way
  // messages per replica (3 rounds), versus FT-Linda's single multicast.
  net.resetStats();
  UpdateSpec spec;
  spec.puts.push_back(makeTuple("x", 1));
  ASSERT_TRUE(client->atomicUpdate(spec));
  const auto total = net.totalStats();
  EXPECT_GE(total.messages_sent, 6u * kReplicas);
}

}  // namespace
}  // namespace ftl::baseline

// Epoch arena (common/arena.hpp): bump allocation, bulk reset, retained
// blocks, and the liveness token the view-lifetime discipline hangs off.
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "common/assert.hpp"

namespace ftl {
namespace {

TEST(Arena, AllocationsAreDistinctAndWritable) {
  Arena a;
  auto* p1 = static_cast<std::uint8_t*>(a.allocate(16));
  auto* p2 = static_cast<std::uint8_t*>(a.allocate(16));
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p1, p2);
  std::memset(p1, 0xAA, 16);
  std::memset(p2, 0xBB, 16);
  EXPECT_EQ(p1[15], 0xAA);
  EXPECT_EQ(p2[0], 0xBB);
  EXPECT_GE(a.bytesAllocated(), 32u);
}

TEST(Arena, RespectsAlignment) {
  Arena a;
  (void)a.allocate(1, 1);  // misalign the bump pointer
  for (std::size_t align : {2u, 8u, 64u}) {
    auto p = reinterpret_cast<std::uintptr_t>(a.allocate(8, align));
    EXPECT_EQ(p % align, 0u) << "align " << align;
    (void)a.allocate(1, 1);
  }
}

TEST(Arena, OversizedAllocationGetsItsOwnBlock) {
  Arena a(/*block_size=*/64);
  auto* big = a.allocate(1000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 1000);  // ASan would flag an under-sized block
  EXPECT_GE(a.blockCount(), 1u);
}

TEST(Arena, ResetRetainsBlocksAndReusesThem) {
  Arena a(/*block_size=*/128);
  for (int i = 0; i < 10; ++i) (void)a.allocate(100);
  const std::size_t blocks_before = a.blockCount();
  a.reset();
  EXPECT_EQ(a.bytesAllocated(), 0u);
  EXPECT_EQ(a.blockCount(), blocks_before);  // retained, not freed
  // The next epoch reuses the same memory: no block growth.
  for (int i = 0; i < 10; ++i) (void)a.allocate(100);
  EXPECT_EQ(a.blockCount(), blocks_before);
}

TEST(Arena, CopyRoundTripsAndViewsArenaMemory) {
  Arena a;
  const Bytes src{1, 2, 3, 4, 5};
  const BytesView v = a.copy(BytesView(src));
  ASSERT_EQ(v.size, src.size());
  EXPECT_TRUE(v == src);
  EXPECT_NE(static_cast<const void*>(v.data), static_cast<const void*>(src.data()));
  // Empty copy: no allocation, empty view.
  const BytesView e = a.copy(BytesView());
  EXPECT_TRUE(e.empty());
}

TEST(ArenaToken, ExpiresAtReset) {
  Arena a;
  const ArenaToken t = a.token();
  EXPECT_TRUE(t.alive());
  EXPECT_NO_THROW(t.require("borrow"));
  a.reset();
  EXPECT_FALSE(t.alive());
  EXPECT_THROW(t.require("borrow held across epoch"), ContractViolation);
  // A token taken in the NEW epoch is alive until the next reset.
  const ArenaToken t2 = a.token();
  EXPECT_TRUE(t2.alive());
  a.reset();
  EXPECT_FALSE(t2.alive());
  EXPECT_EQ(a.resets(), 2u);
}

TEST(ArenaToken, DefaultConstructedIsDead) {
  const ArenaToken t;
  EXPECT_FALSE(t.alive());
}

TEST(ArenaAllocator, BacksStdContainers) {
  Arena a;
  std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>> v{ArenaAllocator<std::uint64_t>(a)};
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(a.bytesAllocated(), 0u);
  // Destroy the container BEFORE reset: its memory is arena-owned either
  // way, deallocate() is a no-op.
  v = std::vector<std::uint64_t, ArenaAllocator<std::uint64_t>>{ArenaAllocator<std::uint64_t>(a)};
}

TEST(Arena, ManySmallEpochsStayBounded) {
  // Steady-state apply loop: allocate a little, reset, repeat. Block count
  // must stabilize (zero heap traffic after warm-up).
  Arena a(/*block_size=*/4096);
  for (int epoch = 0; epoch < 100; ++epoch) {
    for (int i = 0; i < 32; ++i) (void)a.copy(BytesView(Bytes(64, 7)));
    a.reset();
  }
  EXPECT_LE(a.blockCount(), 2u);
}

}  // namespace
}  // namespace ftl

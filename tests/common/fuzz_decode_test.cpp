// Decoder robustness: random and truncated byte streams must raise
// ftl::Error (or decode cleanly) — never crash, hang, or over-read. The
// replicated state machine decodes peer-provided bytes, so this is a
// correctness property, not just hygiene.
#include <gtest/gtest.h>

#include <optional>

#include "common/rng.hpp"
#include "consul/messages.hpp"
#include "tuple/view.hpp"
#include "ftlinda/protocol.hpp"
#include "ftlinda/verify.hpp"
#include "ts/registry.hpp"

namespace ftl {
namespace {

Bytes randomBytes(Xoshiro256& rng, std::size_t max_len) {
  Bytes b(rng.below(max_len + 1));
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

template <typename Fn>
void expectNoCrash(Fn&& decode, std::uint64_t seed, int rounds = 300) {
  Xoshiro256 rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const Bytes b = randomBytes(rng, 200);
    try {
      decode(b);
    } catch (const Error&) {
      // rejected cleanly — fine
    } catch (const std::bad_alloc&) {
      // a huge bogus length prefix may exceed memory — also a clean reject
    }
  }
}

TEST(FuzzDecode, Tuple) {
  expectNoCrash([](const Bytes& b) { Reader r(b); (void)tuple::Tuple::decode(r); }, 11);
}

TEST(FuzzDecode, Pattern) {
  expectNoCrash([](const Bytes& b) { Reader r(b); (void)tuple::Pattern::decode(r); }, 12);
}

TEST(FuzzDecode, TupleSpace) {
  expectNoCrash([](const Bytes& b) { Reader r(b); (void)ts::TupleSpace::decode(r); }, 13);
}

TEST(FuzzDecode, Registry) {
  expectNoCrash([](const Bytes& b) { Reader r(b); (void)ts::TsRegistry::decode(r); }, 14);
}

TEST(FuzzDecode, TupleView) {
  expectNoCrash([](const Bytes& b) { Reader r(b); (void)tuple::TupleView::decode(r); }, 41);
}

TEST(FuzzDecode, PatternView) {
  expectNoCrash([](const Bytes& b) { Reader r(b); (void)tuple::PatternView::decode(r); }, 42);
}

TEST(FuzzDecode, ViewDecodeAgreesWithOwningDecode) {
  // Differential fuzz: on ANY input, the view decoder and the owning
  // decoder must agree — both reject, or both accept with identical
  // decoded content (same signature, equal tuples).
  Xoshiro256 rng(43);
  for (int i = 0; i < 2000; ++i) {
    const Bytes b = randomBytes(rng, 200);
    std::optional<tuple::Tuple> owned;
    std::optional<tuple::TupleView> viewed;
    std::size_t owned_end = 0;
    std::size_t view_end = 0;
    try {
      Reader r(b);
      owned = tuple::Tuple::decode(r);
      owned_end = r.position();
    } catch (const Error&) {
    } catch (const std::bad_alloc&) {
      continue;  // bogus length prefix: view path cannot over-allocate
    }
    try {
      Reader r(b);
      viewed = tuple::TupleView::decode(r);
      view_end = r.position();
    } catch (const Error&) {
    }
    ASSERT_EQ(owned.has_value(), viewed.has_value()) << "round " << i;
    if (owned) {
      ASSERT_EQ(owned_end, view_end) << "round " << i;
      ASSERT_TRUE(viewed->equals(*owned)) << "round " << i;
      ASSERT_EQ(viewed->signature(), tuple::signatureOf(*owned)) << "round " << i;
    }
  }
}

TEST(FuzzDecode, Command) {
  expectNoCrash([](const Bytes& b) { (void)ftlinda::Command::decode(b); }, 15);
}

TEST(FuzzDecode, Reply) {
  expectNoCrash([](const Bytes& b) { (void)ftlinda::Reply::decode(b); }, 16);
}

TEST(FuzzDecode, ConsulMessages) {
  expectNoCrash([](const Bytes& b) { (void)consul::OrderedMsg::decode(b); }, 17);
  expectNoCrash([](const Bytes& b) { (void)consul::NewViewMsg::decode(b); }, 18);
  expectNoCrash([](const Bytes& b) { (void)consul::ViewStateMsg::decode(b); }, 19);
  expectNoCrash([](const Bytes& b) { (void)consul::HeartbeatMsg::decode(b); }, 20);
}

TEST(FuzzDecode, TruncationsOfValidEncodings) {
  // Every strict prefix of a valid encoding must be rejected cleanly.
  Writer w;
  tuple::makeTuple("name", 42, 2.5, true, Bytes{1, 2, 3}).encode(w);
  const Bytes full = w.buffer();
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes prefix(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(len));
    Reader r(prefix);
    EXPECT_THROW((void)tuple::Tuple::decode(r), Error) << "prefix length " << len;
  }
}

TEST(FuzzDecode, RandomBytesThroughDecodeAndVerify) {
  // The replica-side contract: whatever survives Ags::decode is verified
  // before execution, and verify() itself never throws. Anything the
  // verifier passes holds the structural invariants execution relies on
  // (in-range enums and formal indices in every branch).
  using namespace ftlinda;
  Xoshiro256 rng(22);
  for (int i = 0; i < 2000; ++i) {
    const Bytes b = randomBytes(rng, 400);
    Ags ags;
    try {
      Reader r(b);
      ags = Ags::decode(r);
    } catch (const Error&) {
      continue;
    } catch (const std::bad_alloc&) {
      continue;
    }
    const VerifyResult vr = verify(ags);
    if (!vr.ok()) continue;
    for (const auto& br : ags.branches) {
      const std::size_t formals =
          br.guard.kind == Guard::Kind::True ? 0 : br.guard.pattern.formalCount();
      for (const auto& op : br.body) {
        ASSERT_LE(static_cast<unsigned>(op.op), static_cast<unsigned>(OpCode::DestroyTs));
        for (const auto& f : op.tmpl.fields) {
          if (f.kind != TemplateField::Kind::Literal) ASSERT_LT(f.formal_index, formals);
        }
        for (const auto& f : op.pattern.fields) {
          if (f.kind == PatternTemplateField::Kind::BoundRef) ASSERT_LT(f.ref, formals);
        }
      }
    }
  }
}

TEST(FuzzDecode, BitflipsOfValidAgs) {
  using namespace ftlinda;
  Ags ags = AgsBuilder()
                .when(guardIn(ts::kTsMain, tuple::makePattern("t", tuple::fInt())))
                .then(opOut(ts::kTsMain, makeTemplate("u", bound(0))))
                .build();
  Writer w;
  ags.encode(w);
  const Bytes full = w.buffer();
  Xoshiro256 rng(21);
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = full;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      Reader r(mutated);
      (void)Ags::decode(r);
    } catch (const Error&) {
    } catch (const std::bad_alloc&) {
    }
  }
}

}  // namespace
}  // namespace ftl

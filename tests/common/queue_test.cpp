#include "common/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ftl {
namespace {

TEST(BlockingQueue, PushPopSingleThread) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(BlockingQueue, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.tryPop(), std::nullopt);
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.popFor(std::chrono::milliseconds(20)), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(15));
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(BlockingQueue, CloseDrainsRemainingElementsFirst) {
  BlockingQueue<int> q;
  q.push(7);
  q.push(8);
  q.close();
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_EQ(q.pop().value(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, PushAfterCloseDrops) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, ReopenAfterClose) {
  BlockingQueue<int> q;
  q.close();
  q.reopen();
  EXPECT_TRUE(q.push(5));
  EXPECT_EQ(q.pop().value(), 5);
}

TEST(BlockingQueue, ClearDiscardsElements) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.closed());
}

TEST(BlockingQueue, FifoOrderUnderConcurrentProducers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    const int producer = *v / kPerProducer;
    const int seq = *v % kPerProducer;
    // Per-producer FIFO: each producer's elements arrive in its push order.
    EXPECT_GT(seq, last_seen[producer]);
    last_seen[producer] = seq;
    ++received;
  }
  for (auto& t : producers) t.join();
}

TEST(BlockingQueue, ManyConsumersEachElementDeliveredOnce) {
  BlockingQueue<int> q;
  constexpr int kCount = 4000;
  std::atomic<int> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  int expected = 0;
  for (int i = 1; i <= kCount; ++i) {
    q.push(i);
    expected += i;
  }
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace ftl

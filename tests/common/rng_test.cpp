#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ftl {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroRejected) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, Uniform01InUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(Rng, ChanceZeroAndOne) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace ftl

#include "common/serde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ftl {
namespace {

TEST(Serde, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.atEnd());
}

TEST(Serde, RoundTripExtremes) {
  Writer w;
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i64(std::numeric_limits<std::int64_t>::max());
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());

  Reader r(w.buffer());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Serde, RoundTripStringsAndBytes) {
  Writer w;
  w.str("");
  w.str("hello tuple space");
  w.str(std::string("embedded\0nul", 12));
  w.bytes(Bytes{0x00, 0xff, 0x7f});
  w.bytes(Bytes{});

  Reader r(w.buffer());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello tuple space");
  EXPECT_EQ(r.str(), std::string("embedded\0nul", 12));
  EXPECT_EQ(r.bytes(), (Bytes{0x00, 0xff, 0x7f}));
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.atEnd());
}

TEST(Serde, TruncatedBufferThrows) {
  Writer w;
  w.u64(1);
  Bytes truncated = w.buffer();
  truncated.pop_back();
  Reader r(truncated);
  EXPECT_THROW(r.u64(), Error);
}

TEST(Serde, TruncatedStringThrows) {
  Writer w;
  w.str("abcdef");
  Bytes truncated = w.buffer();
  truncated.resize(truncated.size() - 3);
  Reader r(truncated);
  EXPECT_THROW(r.str(), Error);
}

TEST(Serde, RawNesting) {
  Writer inner;
  inner.u32(99);
  Writer outer;
  outer.u8(1);
  outer.raw(inner.buffer());
  Reader r(outer.buffer());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u32(), 99u);
}

TEST(Serde, RemainingTracksPosition) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.buffer());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serde, EncodingIsDeterministic) {
  auto encode = [] {
    Writer w;
    w.str("abc");
    w.i64(-7);
    w.f64(2.5);
    return w.take();
  };
  EXPECT_EQ(encode(), encode());
}

}  // namespace
}  // namespace ftl

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ftl {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(LatencySamples, PercentilesExact) {
  LatencySamples ls;
  for (int i = 1; i <= 100; ++i) ls.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ls.percentile(50).value(), 50.0);
  EXPECT_DOUBLE_EQ(ls.percentile(95).value(), 95.0);
  EXPECT_DOUBLE_EQ(ls.percentile(99).value(), 99.0);
  EXPECT_DOUBLE_EQ(ls.percentile(99.9).value(), 100.0);
  EXPECT_DOUBLE_EQ(ls.percentile(100).value(), 100.0);
  EXPECT_DOUBLE_EQ(ls.percentile(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(ls.min(), 1.0);
  EXPECT_DOUBLE_EQ(ls.max(), 100.0);
  EXPECT_DOUBLE_EQ(ls.mean(), 50.5);
}

TEST(LatencySamples, AddAfterPercentileStillCorrect) {
  LatencySamples ls;
  ls.add(10);
  EXPECT_DOUBLE_EQ(ls.percentile(50).value(), 10.0);
  ls.add(1);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(ls.min(), 1.0);
  EXPECT_DOUBLE_EQ(ls.max(), 10.0);
}

TEST(LatencySamples, PercentileOutOfRangeThrows) {
  LatencySamples ls;
  ls.add(1);
  EXPECT_THROW(ls.percentile(101), ContractViolation);
  EXPECT_THROW(ls.percentile(-1), ContractViolation);
}

TEST(LatencySamples, EmptyPercentileIsNullopt) {
  LatencySamples ls;
  EXPECT_FALSE(ls.percentile(50).has_value());
  EXPECT_DOUBLE_EQ(ls.percentileOr0(99), 0.0);
}

TEST(LatencySamples, SummaryHasP999) {
  LatencySamples ls;
  for (int i = 0; i < 10; ++i) ls.add(static_cast<double>(i));
  EXPECT_NE(ls.summary().find("p99.9="), std::string::npos);
}

TEST(LatencySamples, SummaryMentionsCount) {
  LatencySamples ls;
  ls.add(5);
  ls.add(15);
  const std::string s = ls.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
}

TEST(ScopedTimer, RecordsPositiveDuration) {
  LatencySamples ls;
  {
    ScopedTimerUs t(ls);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  ASSERT_EQ(ls.count(), 1u);
  EXPECT_GE(ls.max(), 0.0);
}

}  // namespace
}  // namespace ftl

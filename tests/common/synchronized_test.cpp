#include "common/synchronized.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ftl {
namespace {

TEST(Synchronized, WithLockMutates) {
  Synchronized<int> s(5);
  s.withLock([](int& v) { v += 1; });
  EXPECT_EQ(s.copy(), 6);
}

TEST(Synchronized, WithLockReturnsValue) {
  Synchronized<std::vector<int>> s(std::vector<int>{1, 2, 3});
  const auto size = s.withLock([](const std::vector<int>& v) { return v.size(); });
  EXPECT_EQ(size, 3u);
}

TEST(Synchronized, ConcurrentIncrementsDoNotRace) {
  Synchronized<long> counter(0);
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) counter.withLock([](long& v) { ++v; });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.copy(), static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace ftl

// Sender-side multicast coalescing (docs/PROTOCOL.md "Coalesced request
// frames"): commands submitted while a Request is in flight are staged and
// packed into the next frame. Frame boundaries are a transport artifact —
// the sequencer assigns each packed payload its own gseq, so ordering,
// exactly-once delivery, and recovery behave exactly as with one frame per
// broadcast.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "net/network.hpp"
#include "consul/consul_test_util.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::fastConfig;
using testutil::waitUntil;

/// Latency high enough that a burst of broadcasts overlaps an in-flight
/// request frame (forcing the staging path), low enough for fast tests.
net::NetworkConfig slowLinks() {
  net::NetworkConfig net;
  net.latency_mean = Micros{1'500};
  return net;
}

std::vector<std::string> burst(Cluster& c, std::uint32_t node, const std::string& prefix,
                               int n) {
  std::vector<std::string> sent;
  for (int i = 0; i < n; ++i) sent.push_back(c.broadcastString(node, prefix + std::to_string(i)));
  return sent;
}

/// Per-origin subsequence of `history` (payloads are prefixed per origin).
std::vector<std::string> withPrefix(const std::vector<std::string>& history,
                                    const std::string& prefix) {
  std::vector<std::string> out;
  for (const auto& s : history) {
    if (s.rfind(prefix, 0) == 0) out.push_back(s);
  }
  return out;
}

TEST(Coalesce, BurstPacksIntoFewerFramesKeepingOrder) {
  Cluster c(3, slowLinks());
  constexpr int kN = 60;
  // Origin 1 is not the sequencer, so every command crosses the wire; the
  // first goes out immediately and the rest stage behind it.
  const auto sent = burst(c, 1, "p", kN);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == kN; }, Millis{10'000}))
        << "node " << n;
  }
  const auto st = c.node(1).stats();
  EXPECT_EQ(st.broadcasts, static_cast<std::uint64_t>(kN));
  EXPECT_LT(st.request_frames, st.broadcasts) << "burst should coalesce";
  // Submission order survives coalescing, identically at every member.
  for (int n = 0; n < 3; ++n) EXPECT_EQ(c.log(n).history(), sent) << "node " << n;
}

TEST(Coalesce, MaxSendBatchChunksFrames) {
  ConsulConfig cfg = fastConfig();
  cfg.max_send_batch = 4;
  Cluster c(3, slowLinks(), cfg);
  constexpr int kN = 40;
  const auto sent = burst(c, 2, "q", kN);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == kN; }, Millis{10'000}))
        << "node " << n;
  }
  // Never more than max_send_batch commands per frame.
  EXPECT_GE(c.node(2).stats().request_frames, static_cast<std::uint64_t>(kN / 4));
  for (int n = 0; n < 3; ++n) EXPECT_EQ(c.log(n).history(), sent) << "node " << n;
}

TEST(Coalesce, LossyLinksDeliverExactlyOnceInOrder) {
  // Dropped frames force whole-range retransmission; the sequencer must
  // accept only the unseen suffix of each (possibly stale) frame.
  net::NetworkConfig net = slowLinks();
  net.drop_probability = 0.15;
  net.duplicate_probability = 0.05;
  Cluster c(3, net, testutil::lossyConfig());
  const auto sent1 = burst(c, 1, "a", 30);
  const auto sent2 = burst(c, 2, "b", 30);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 60; }, Millis{20'000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto ref = c.log(0).history();
  for (int n = 1; n < 3; ++n) EXPECT_EQ(c.log(n).history(), ref) << "node " << n;
  // Exactly once, per-origin FIFO: each origin's subsequence is exactly what
  // it submitted (no duplicates from retransmitted frames).
  EXPECT_EQ(withPrefix(ref, "a"), sent1);
  EXPECT_EQ(withPrefix(ref, "b"), sent2);
}

TEST(Coalesce, SequencerFailoverResendsStagedWithoutDuplicates) {
  Cluster c(3, slowLinks());
  const auto pre = burst(c, 1, "pre", 10);
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 10; }, Millis{10'000}));
  // Kill the sequencer mid-burst: origin 1's staged + in-flight commands must
  // be retransmitted to the new sequencer exactly once.
  const auto mid = burst(c, 1, "mid", 20);
  c.network().crash(0);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(1).lastView().members == std::vector<net::HostId>{1, 2}; },
      Millis{10'000}));
  for (int n = 1; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() >= 30; }, Millis{10'000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  EXPECT_EQ(c.log(1).history(), c.log(2).history());
  EXPECT_EQ(withPrefix(c.log(1).history(), "pre"), pre);
  EXPECT_EQ(withPrefix(c.log(1).history(), "mid"), mid);
}

TEST(Coalesce, RejoinedNodeSeesCoalescedHistoryExactlyOnce) {
  // A recovering host installs a snapshot and then receives live traffic;
  // coalesced frames straddling the join must not double-apply.
  Cluster c(3, slowLinks());
  const auto pre = burst(c, 0, "pre", 15);
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 15; }, Millis{10'000}));
  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{10'000}));
  const auto mid = burst(c, 1, "mid", 25);
  c.restartAsJoiner(2, /*incarnation=*/1);
  ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{10'000}));
  const auto post = burst(c, 1, "post", 25);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 65; }, Millis{15'000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto joined = c.log(2).history();
  EXPECT_EQ(joined, c.log(0).history());
  EXPECT_EQ(withPrefix(joined, "pre"), pre);
  EXPECT_EQ(withPrefix(joined, "mid"), mid);
  EXPECT_EQ(withPrefix(joined, "post"), post);
  // Flat duplicate scan (all payloads are unique by construction).
  std::map<std::string, int> seen;
  for (const auto& s : joined) {
    EXPECT_EQ(++seen[s], 1) << "duplicate delivery of " << s;
  }
}

}  // namespace
}  // namespace ftl::consul

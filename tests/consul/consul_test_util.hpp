// Shared harness for Consul protocol tests: N nodes on one simulated
// network, each recording its delivery/view history.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "consul/node.hpp"
#include "net/network.hpp"

namespace ftl::consul::testutil {

/// Fast timeouts so failure-detection tests finish in tens of milliseconds.
inline ConsulConfig fastConfig() {
  ConsulConfig cfg;
  cfg.tick = Micros{2'000};
  cfg.heartbeat_interval = Micros{10'000};
  cfg.failure_timeout = Micros{60'000};
  cfg.request_retransmit = Micros{40'000};
  cfg.nack_timeout = Micros{10'000};
  cfg.ack_interval = Micros{15'000};
  cfg.view_change_timeout = Micros{150'000};
  return cfg;
}

/// For tests that inject message LOSS: the failure-detector timeout must be
/// scaled to the loss rate (p^k false-suspicion probability with k
/// heartbeats per timeout window), exactly as a production deployment would.
inline ConsulConfig lossyConfig() {
  ConsulConfig cfg = fastConfig();
  cfg.failure_timeout = Micros{250'000};  // 25 heartbeat periods
  cfg.view_change_timeout = Micros{400'000};
  return cfg;
}

/// Poll until `pred()` holds or `timeout` elapses; returns pred's final value.
inline bool waitUntil(const std::function<bool()>& pred,
                      Millis timeout = Millis{5000}) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(Millis{2});
  }
  return pred();
}

/// Per-node application log: the delivered payload sequence and view events.
struct AppLog {
  mutable std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::string>> delivered;  // (gseq, payload)
  std::vector<ViewInfo> views;
  std::vector<std::string> snapshot_installs;  // payload strings recovered from snapshots

  std::size_t deliveredCount() const {
    std::lock_guard<std::mutex> lock(mutex);
    return delivered.size() + snapshot_installs.size();
  }

  /// Full payload history: snapshot contents followed by live deliveries.
  std::vector<std::string> history() const {
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::string> out = snapshot_installs;
    for (const auto& [g, p] : delivered) out.push_back(p);
    return out;
  }

  std::size_t viewCount() const {
    std::lock_guard<std::mutex> lock(mutex);
    return views.size();
  }

  ViewInfo lastView() const {
    std::lock_guard<std::mutex> lock(mutex);
    return views.empty() ? ViewInfo{} : views.back();
  }
};

/// A cluster of ConsulNodes over one Transport. Node i runs on host i.
/// The default is the simulator; pass any Transport to run the same
/// protocol scenarios over real sockets (tests/consul/udp_failover_test.cpp).
class Cluster {
 public:
  Cluster(std::uint32_t n, net::NetworkConfig net_cfg = {}, ConsulConfig cfg = fastConfig())
      : Cluster(std::make_unique<net::SimTransport>(n, net_cfg), cfg) {}

  Cluster(std::unique_ptr<net::Transport> transport, ConsulConfig cfg = fastConfig())
      : net_(std::move(transport)), cfg_(cfg), logs_(net_->hostCount()) {
    const std::uint32_t n = net_->hostCount();
    std::vector<net::HostId> group;
    for (std::uint32_t i = 0; i < n; ++i) group.push_back(i);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<ConsulNode>(*net_, i, group, cfg_, callbacksFor(i)));
    }
    for (auto& node : nodes_) node->start();
  }

  ~Cluster() {
    nodes_.clear();  // endpoints die before the transport (lifetime rule)
  }

  ConsulNode& node(std::uint32_t i) { return *nodes_[i]; }
  AppLog& log(std::uint32_t i) { return logs_[i]; }
  net::Transport& network() { return *net_; }
  const ConsulConfig& config() const { return cfg_; }

  std::string broadcastString(std::uint32_t i, const std::string& s) {
    nodes_[i]->broadcast(Bytes(s.begin(), s.end()));
    return s;
  }

  /// Replace node i with a fresh recovering instance that joins the group.
  void restartAsJoiner(std::uint32_t i, std::uint64_t incarnation) {
    nodes_[i].reset();  // joins the old (dead) service thread
    net_->recover(i);
    std::vector<net::HostId> group;
    for (std::uint32_t h = 0; h < net_->hostCount(); ++h) group.push_back(h);
    nodes_[i] = std::make_unique<ConsulNode>(*net_, i, group, cfg_, callbacksFor(i),
                                             /*join_existing=*/true);
    nodes_[i]->start();
    nodes_[i]->joinGroup(incarnation);
  }

 private:
  ConsulNode::Callbacks callbacksFor(std::uint32_t i) {
    ConsulNode::Callbacks cb;
    AppLog* log = &logs_[i];
    cb.on_deliver = [log](const Delivery& d) {
      std::lock_guard<std::mutex> lock(log->mutex);
      log->delivered.emplace_back(d.gseq, std::string(d.payload.begin(), d.payload.end()));
    };
    cb.on_view = [log](const ViewInfo& v) {
      std::lock_guard<std::mutex> lock(log->mutex);
      log->views.push_back(v);
    };
    cb.take_snapshot = [log]() {
      std::lock_guard<std::mutex> lock(log->mutex);
      Writer w;
      w.u32(static_cast<std::uint32_t>(log->snapshot_installs.size() + log->delivered.size()));
      for (const auto& s : log->snapshot_installs) w.str(s);
      for (const auto& [g, p] : log->delivered) w.str(p);
      return w.take();
    };
    cb.install_snapshot = [log](const Bytes& b) {
      Reader r(b);
      std::lock_guard<std::mutex> lock(log->mutex);
      log->snapshot_installs.clear();
      log->delivered.clear();
      const std::uint32_t n = r.u32();
      for (std::uint32_t k = 0; k < n; ++k) log->snapshot_installs.push_back(r.str());
    };
    return cb;
  }

  std::unique_ptr<net::Transport> net_;
  ConsulConfig cfg_;
  std::vector<AppLog> logs_;
  std::vector<std::unique_ptr<ConsulNode>> nodes_;
};

}  // namespace ftl::consul::testutil

// Deterministic fault injection against specific protocol messages, using
// Network::setDropFilter. Each test kills one exact message class and
// verifies the corresponding repair path heals the group.
#include <gtest/gtest.h>

#include <atomic>

#include "consul/consul_test_util.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::waitUntil;

std::uint16_t msgType(MsgType t) { return static_cast<std::uint16_t>(t); }

TEST(FaultInjection, DroppedOrderedRepairedByNack) {
  Cluster c(3);
  // Drop the FIRST Ordered message to host 2, then let everything through.
  std::atomic<bool> dropped{false};
  c.network().setDropFilter([&](const net::Message& m) {
    if (m.type == msgType(MsgType::Ordered) && m.dst == 2 && !dropped.exchange(true)) {
      return true;
    }
    return false;
  });
  c.broadcastString(0, "first");
  c.broadcastString(0, "second");  // creates the gap that triggers the nack
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 2; }, Millis{10000}))
      << "node 2 got " << c.log(2).deliveredCount();
  EXPECT_TRUE(dropped.load());
  EXPECT_EQ(c.log(2).history(), c.log(0).history());
}

TEST(FaultInjection, DroppedTrailingOrderedRepairedByHeartbeatAdvertisement) {
  Cluster c(3);
  // Drop the first Ordered to host 2 with NO follow-up traffic: only the
  // sequencer heartbeat's last_gseq can reveal the loss.
  std::atomic<bool> dropped{false};
  c.network().setDropFilter([&](const net::Message& m) {
    if (m.type == msgType(MsgType::Ordered) && m.dst == 2 && !dropped.exchange(true)) {
      return true;
    }
    return false;
  });
  c.broadcastString(0, "only");
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 1; }, Millis{10000}));
  EXPECT_TRUE(dropped.load());
}

TEST(FaultInjection, DroppedRequestRetransmitted) {
  Cluster c(3);
  std::atomic<bool> dropped{false};
  c.network().setDropFilter([&](const net::Message& m) {
    if (m.type == msgType(MsgType::Request) && !dropped.exchange(true)) return true;
    return false;
  });
  c.broadcastString(1, "retry-me");
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 1; }, Millis{10000}))
        << "node " << n;
  }
}

TEST(FaultInjection, DroppedNewViewHealedByViewResync) {
  // The stranded-member scenario: host 2 misses the NewView after the
  // sequencer's crash. The higher-view heartbeat pull (view resync) must
  // bring it back without any further membership change.
  Cluster c(3);
  c.broadcastString(1, "pre");
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 1; }));
  c.network().setDropFilter([&](const net::Message& m) {
    return m.type == msgType(MsgType::NewView) && m.dst == 2;
  });
  c.network().crash(0);
  // Survivor 1 installs the failure view; host 2 never receives NewView.
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(1).lastView().members == std::vector<net::HostId>{1, 2}; },
      Millis{8000}));
  // Heal: host 2 learns of the newer view from host 1's heartbeats and
  // pulls the missing entries, including the view event.
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(2).lastView().members == std::vector<net::HostId>{1, 2}; },
      Millis{8000}))
      << "stranded member never resynced";
  // And the group remains fully operational for host 2 as an origin.
  c.network().setDropFilter(nullptr);
  c.broadcastString(2, "post");
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 2; }, Millis{8000}))
        << "node " << n;
  }
  EXPECT_EQ(c.log(2).history(), c.log(1).history());
}

TEST(FaultInjection, DroppedViewStateRetriedByCoordinator) {
  Cluster c(3);
  // Drop the first ViewState so the coordinator's view change stalls and
  // must restart after view_change_timeout.
  std::atomic<int> dropped{0};
  c.network().setDropFilter([&](const net::Message& m) {
    if (m.type == msgType(MsgType::ViewState) && dropped.fetch_add(1) == 0) return true;
    return false;
  });
  c.network().crash(0);
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil(
        [&] { return c.log(n).lastView().members == std::vector<net::HostId>{1, 2}; },
        Millis{10000}))
        << "node " << n;
  }
  EXPECT_GE(dropped.load(), 1);
}

TEST(FaultInjection, DroppedJoinRequestRetried) {
  Cluster c(3);
  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{8000}));
  std::atomic<int> dropped{0};
  c.network().setDropFilter([&](const net::Message& m) {
    if (m.type == msgType(MsgType::JoinRequest) && dropped.fetch_add(1) < 4) return true;
    return false;
  });
  c.restartAsJoiner(2, 1);
  ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{15000}));
  EXPECT_GE(dropped.load(), 1);
}

}  // namespace
}  // namespace ftl::consul

// Membership / view-change behaviour: crash detection, sequencer failover,
// ordered failure notification (DESIGN.md invariant 7).
#include <gtest/gtest.h>

#include <algorithm>

#include "net/network.hpp"
#include "consul/consul_test_util.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::waitUntil;

bool hasFailedView(testutil::AppLog& log, net::HostId failed) {
  std::lock_guard<std::mutex> lock(log.mutex);
  return std::any_of(log.views.begin(), log.views.end(), [&](const ViewInfo& v) {
    return std::find(v.failed.begin(), v.failed.end(), failed) != v.failed.end();
  });
}

TEST(Membership, CrashOfWorkerDetected) {
  Cluster c(3);
  c.network().crash(2);
  for (int n : {0, 1}) {
    ASSERT_TRUE(waitUntil([&] { return hasFailedView(c.log(n), 2); }, Millis{5000}))
        << "node " << n << " never saw the failure view";
    const auto v = c.log(n).lastView();
    EXPECT_EQ(v.members, (std::vector<net::HostId>{0, 1}));
  }
}

TEST(Membership, CrashOfSequencerFailsOver) {
  Cluster c(3);
  c.broadcastString(1, "before");
  ASSERT_TRUE(waitUntil([&] { return c.log(1).deliveredCount() == 1; }));
  c.network().crash(0);  // host 0 is the sequencer
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil([&] { return hasFailedView(c.log(n), 0); }, Millis{5000}))
        << "node " << n;
  }
  // The group keeps ordering under the new sequencer (host 1).
  c.broadcastString(2, "after");
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 2; }, Millis{5000}))
        << "node " << n;
    EXPECT_EQ(c.log(n).history().back(), "after");
  }
}

TEST(Membership, RequestInFlightAtSequencerCrashStillDelivered) {
  Cluster c(3);
  // Crash the sequencer, then immediately broadcast from a survivor before
  // the failure is detected: the request retransmission machinery must carry
  // the message into the new view.
  c.network().crash(0);
  c.broadcastString(1, "limbo");
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 1; }, Millis{10000}))
        << "node " << n;
    EXPECT_EQ(c.log(n).history().front(), "limbo");
  }
}

TEST(Membership, NoDuplicatesAcrossFailover) {
  Cluster c(3);
  for (int i = 0; i < 10; ++i) c.broadcastString(1, "pre" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 10; }));
  c.network().crash(0);
  for (int i = 0; i < 10; ++i) c.broadcastString(1, "post" + std::to_string(i));
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 20; }, Millis{10000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  auto h = c.log(1).history();
  EXPECT_EQ(c.log(2).history(), h);
  std::sort(h.begin(), h.end());
  EXPECT_EQ(std::unique(h.begin(), h.end()), h.end()) << "duplicate delivery across failover";
}

TEST(Membership, TwoSimultaneousCrashes) {
  Cluster c(5);
  c.network().crash(1);
  c.network().crash(3);
  for (int n : {0, 2, 4}) {
    ASSERT_TRUE(waitUntil(
        [&] {
          const auto v = c.log(n).lastView();
          return v.members == std::vector<net::HostId>{0, 2, 4};
        },
        Millis{8000}))
        << "node " << n;
  }
  c.broadcastString(4, "still-alive");
  for (int n : {0, 2, 4}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 1; }));
  }
}

TEST(Membership, CascadingCrashes) {
  Cluster c(4);
  c.network().crash(0);
  for (int n : {1, 2, 3}) {
    ASSERT_TRUE(waitUntil([&] { return hasFailedView(c.log(n), 0); }, Millis{8000}));
  }
  c.network().crash(1);  // crash the NEW sequencer too
  for (int n : {2, 3}) {
    ASSERT_TRUE(waitUntil([&] { return hasFailedView(c.log(n), 1); }, Millis{8000}))
        << "node " << n;
  }
  c.broadcastString(3, "two-failovers-later");
  for (int n : {2, 3}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 1; }, Millis{8000}));
  }
}

TEST(Membership, ViewEventOrderedIdenticallyAtAllSurvivors) {
  Cluster c(3);
  for (int i = 0; i < 5; ++i) c.broadcastString(1, "a" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 5; }));
  c.network().crash(0);
  for (int n : {1, 2}) {
    ASSERT_TRUE(waitUntil([&] { return hasFailedView(c.log(n), 0); }, Millis{5000}));
  }
  // The failure view must occupy the same gseq at both survivors.
  auto viewGseq = [&](int n) {
    std::lock_guard<std::mutex> lock(c.log(n).mutex);
    for (const auto& v : c.log(n).views) {
      if (!v.failed.empty()) return v.gseq;
    }
    return std::uint64_t{0};
  };
  EXPECT_EQ(viewGseq(1), viewGseq(2));
  EXPECT_GT(viewGseq(1), 0u);
}

TEST(Membership, LoneSurvivorKeepsWorking) {
  Cluster c(3);
  c.network().crash(1);
  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0}; }, Millis{8000}));
  c.broadcastString(0, "alone");
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 1; }));
}

TEST(Membership, CrashUnderLatencyProfile) {
  Cluster c(3, net::lanProfile(7));
  c.broadcastString(2, "m0");
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 1; }));
  c.network().crash(2);
  for (int n : {0, 1}) {
    ASSERT_TRUE(waitUntil([&] { return hasFailedView(c.log(n), 2); }, Millis{8000}));
  }
}

}  // namespace
}  // namespace ftl::consul

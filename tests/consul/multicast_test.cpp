// Atomic multicast properties: total order, exactly-once, gap repair under
// message loss (DESIGN.md invariant 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "net/network.hpp"
#include "consul/consul_test_util.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::waitUntil;

TEST(Multicast, SingleNodeDeliversToItself) {
  Cluster c(1);
  c.broadcastString(0, "hello");
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 1; }));
  EXPECT_EQ(c.log(0).history().front(), "hello");
}

TEST(Multicast, AllMembersDeliver) {
  Cluster c(3);
  c.broadcastString(0, "a");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(waitUntil([&] { return c.log(i).deliveredCount() == 1; })) << "node " << i;
  }
}

TEST(Multicast, NonSequencerBroadcastDelivers) {
  Cluster c(3);
  c.broadcastString(2, "from-two");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(waitUntil([&] { return c.log(i).deliveredCount() == 1; })) << "node " << i;
    EXPECT_EQ(c.log(i).history().front(), "from-two");
  }
}

TEST(Multicast, ConcurrentSendersTotalOrder) {
  constexpr int kNodes = 4;
  constexpr int kPerNode = 50;
  Cluster c(kNodes);
  std::vector<std::thread> senders;
  for (int n = 0; n < kNodes; ++n) {
    senders.emplace_back([&, n] {
      for (int i = 0; i < kPerNode; ++i) {
        c.broadcastString(n, "n" + std::to_string(n) + "-" + std::to_string(i));
      }
    });
  }
  for (auto& t : senders) t.join();
  const std::size_t total = kNodes * kPerNode;
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == total; },
                          Millis{10000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto reference = c.log(0).history();
  for (int n = 1; n < kNodes; ++n) {
    EXPECT_EQ(c.log(n).history(), reference) << "node " << n << " diverged from the total order";
  }
}

TEST(Multicast, FifoPerOrigin) {
  Cluster c(3);
  constexpr int kCount = 30;
  for (int i = 0; i < kCount; ++i) c.broadcastString(1, std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == kCount; }));
  const auto h = c.log(2).history();
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(h[i], std::to_string(i));
}

TEST(Multicast, GseqContiguousAndIdenticalAcrossMembers) {
  Cluster c(3);
  for (int i = 0; i < 20; ++i) c.broadcastString(i % 3, "m" + std::to_string(i));
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 20; }));
  }
  for (int n = 0; n < 3; ++n) {
    std::lock_guard<std::mutex> lock(c.log(n).mutex);
    const auto& d = c.log(n).delivered;
    for (std::size_t i = 1; i < d.size(); ++i) {
      EXPECT_EQ(d[i].first, d[i - 1].first + 1) << "gap in delivery at node " << n;
    }
  }
}

TEST(Multicast, SurvivesMessageLoss) {
  // 20% loss on every link: gap repair (nacks) and request retransmission
  // must still deliver everything everywhere, exactly once, in one order.
  net::NetworkConfig nc;
  nc.drop_probability = 0.20;
  nc.seed = 1234;
  Cluster c(3, nc, testutil::lossyConfig());
  constexpr int kCount = 40;
  for (int i = 0; i < kCount; ++i) c.broadcastString(i % 3, "x" + std::to_string(i));
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == kCount; },
                          Millis{20000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto reference = c.log(0).history();
  EXPECT_EQ(c.log(1).history(), reference);
  EXPECT_EQ(c.log(2).history(), reference);
  // Exactly-once: no payload appears twice.
  auto sorted_copy = reference;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  EXPECT_EQ(std::unique(sorted_copy.begin(), sorted_copy.end()), sorted_copy.end());
}

TEST(Multicast, WorksOverLatencyProfile) {
  Cluster c(3, net::lanProfile());
  c.broadcastString(1, "lan");
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 1; }));
  }
}

TEST(Multicast, InitialViewReportedToApp) {
  Cluster c(3);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).viewCount() >= 1; }));
    const auto v = c.log(n).lastView();
    EXPECT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.view_id, 1u);
  }
}

TEST(Multicast, BroadcastFromNonMemberRejected) {
  net::Network net(2);
  ConsulNode::Callbacks cb;
  cb.on_deliver = [](const Delivery&) {};
  cb.on_view = [](const ViewInfo&) {};
  ConsulNode joiner(net, 1, {0, 1}, testutil::fastConfig(), std::move(cb),
                    /*join_existing=*/true);
  joiner.start();
  EXPECT_THROW(joiner.broadcast(Bytes{1}), ContractViolation);
}

TEST(Multicast, EmptyPayloadDelivered) {
  Cluster c(2);
  c.node(0).broadcast(Bytes{});
  ASSERT_TRUE(waitUntil([&] { return c.log(1).deliveredCount() == 1; }));
  EXPECT_EQ(c.log(1).history().front(), "");
}

TEST(Multicast, LargePayloadDelivered) {
  Cluster c(2);
  const std::string big(1 << 16, 'z');
  c.broadcastString(1, big);
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 1; }));
  EXPECT_EQ(c.log(0).history().front(), big);
}

}  // namespace
}  // namespace ftl::consul

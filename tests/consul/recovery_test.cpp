// Recovery: a crashed processor rejoins via JoinRequest and receives a state
// snapshot plus a join view (DESIGN.md invariant 6).
#include <gtest/gtest.h>

#include <algorithm>

#include "consul/consul_test_util.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::waitUntil;

TEST(Recovery, RejoinedNodeGetsSnapshotAndCatchesUp) {
  Cluster c(3);
  for (int i = 0; i < 5; ++i) c.broadcastString(0, "pre" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 5; }));

  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{8000}));
  for (int i = 0; i < 5; ++i) c.broadcastString(1, "mid" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 10; }));

  c.restartAsJoiner(2, /*incarnation=*/1);
  ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{10000}));

  // The snapshot carried the full pre-crash history.
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 10; }, Millis{5000}));
  EXPECT_EQ(c.log(2).history(), c.log(0).history());

  // And new traffic reaches the rejoined node.
  c.broadcastString(0, "post");
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 11; }, Millis{5000}))
        << "node " << n;
  }
  EXPECT_EQ(c.log(2).history(), c.log(0).history());
}

TEST(Recovery, RejoinedNodeCanBroadcast) {
  Cluster c(3);
  c.network().crash(1);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 2}; },
      Millis{8000}));
  c.restartAsJoiner(1, 1);
  ASSERT_TRUE(waitUntil([&] { return c.node(1).isMember(); }, Millis{10000}));
  c.broadcastString(1, "back");
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil(
        [&] {
          auto h = c.log(n).history();
          return !h.empty() && h.back() == "back";
        },
        Millis{5000}))
        << "node " << n;
  }
}

TEST(Recovery, JoinViewListsJoiner) {
  Cluster c(3);
  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{8000}));
  c.restartAsJoiner(2, 1);
  ASSERT_TRUE(waitUntil(
      [&] {
        const auto v = c.log(0).lastView();
        return v.members == std::vector<net::HostId>{0, 1, 2} &&
               std::find(v.joined.begin(), v.joined.end(), 2u) != v.joined.end();
      },
      Millis{10000}));
}

TEST(Recovery, SequencerCrashThenRejoinAsWorker) {
  Cluster c(3);
  c.broadcastString(0, "a");
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 1; }));
  c.network().crash(0);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(1).lastView().members == std::vector<net::HostId>{1, 2}; },
      Millis{8000}));
  c.broadcastString(1, "b");
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 2; }));

  c.restartAsJoiner(0, 1);
  ASSERT_TRUE(waitUntil([&] { return c.node(0).isMember(); }, Millis{10000}));
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 2; }, Millis{5000}));
  EXPECT_EQ(c.log(0).history(), c.log(1).history());
  // Rejoined host 0 is the lowest id again: it resumes the sequencer role.
  c.broadcastString(2, "c");
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 3; }, Millis{8000}))
        << "node " << n;
  }
}

TEST(Recovery, RepeatedCrashRecoverCycles) {
  Cluster c(3);
  std::size_t expected = 0;
  for (int cycle = 1; cycle <= 3; ++cycle) {
    c.broadcastString(0, "c" + std::to_string(cycle));
    ++expected;
    ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == expected; }, Millis{8000}));
    c.network().crash(2);
    ASSERT_TRUE(waitUntil(
        [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
        Millis{8000}))
        << "cycle " << cycle;
    c.restartAsJoiner(2, static_cast<std::uint64_t>(cycle));
    ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{10000}))
        << "cycle " << cycle;
    ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == expected; }, Millis{5000}));
    EXPECT_EQ(c.log(2).history(), c.log(0).history()) << "cycle " << cycle;
  }
}

TEST(Recovery, HistoryIdenticalEverywhereAfterChurn) {
  Cluster c(4);
  for (int i = 0; i < 8; ++i) c.broadcastString(i % 4, "w" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(3).deliveredCount() == 8; }));
  c.network().crash(1);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 2, 3}; },
      Millis{8000}));
  for (int i = 0; i < 8; ++i) c.broadcastString((i % 2) ? 2u : 3u, "x" + std::to_string(i));
  c.restartAsJoiner(1, 1);
  ASSERT_TRUE(waitUntil([&] { return c.node(1).isMember(); }, Millis{10000}));
  for (int i = 0; i < 4; ++i) c.broadcastString(0, "y" + std::to_string(i));
  for (int n = 0; n < 4; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 20; }, Millis{10000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto ref = c.log(0).history();
  for (int n = 1; n < 4; ++n) EXPECT_EQ(c.log(n).history(), ref) << "node " << n;
}

}  // namespace
}  // namespace ftl::consul

// Consul robustness under combined adversity: message loss + crashes +
// recovery, trailing-loss repair, stability-driven log truncation.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "net/network.hpp"
#include "consul/consul_test_util.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::waitUntil;

TEST(ConsulStress, TrailingLossRepairedByHeartbeat) {
  // Drop ~half of everything, send a burst, then go silent: with no later
  // traffic only the sequencer heartbeat's last_gseq advertisement lets
  // members discover and nack the missing tail.
  net::NetworkConfig nc;
  nc.drop_probability = 0.5;
  nc.seed = 99;
  Cluster c(3, nc, testutil::lossyConfig());
  for (int i = 0; i < 10; ++i) c.broadcastString(0, "t" + std::to_string(i));
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 10; }, Millis{20000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  EXPECT_EQ(c.log(1).history(), c.log(0).history());
}

TEST(ConsulStress, LossPlusSequencerFailover) {
  net::NetworkConfig nc;
  nc.drop_probability = 0.15;
  nc.seed = 7;
  Cluster c(4, nc, testutil::lossyConfig());
  for (int i = 0; i < 15; ++i) c.broadcastString(i % 4, "a" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(3).deliveredCount() == 15; }, Millis{20000}));
  c.network().crash(0);
  for (int i = 0; i < 15; ++i) c.broadcastString(1 + (i % 3), "b" + std::to_string(i));
  for (int n : {1, 2, 3}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 30; }, Millis{30000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  auto h = c.log(1).history();
  EXPECT_EQ(c.log(2).history(), h);
  EXPECT_EQ(c.log(3).history(), h);
  std::sort(h.begin(), h.end());
  EXPECT_EQ(std::unique(h.begin(), h.end()), h.end());
}

TEST(ConsulStress, LossPlusRecovery) {
  net::NetworkConfig nc;
  nc.drop_probability = 0.10;
  nc.seed = 21;
  Cluster c(3, nc, testutil::lossyConfig());
  for (int i = 0; i < 10; ++i) c.broadcastString(1, "x" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 10; }, Millis{20000}));
  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{10000}));
  for (int i = 0; i < 10; ++i) c.broadcastString(0, "y" + std::to_string(i));
  c.restartAsJoiner(2, 1);
  ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{20000}));
  for (int i = 0; i < 5; ++i) c.broadcastString(2, "z" + std::to_string(i));
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 25; }, Millis{30000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  EXPECT_EQ(c.log(2).history(), c.log(0).history());
}

TEST(ConsulStress, StabilityTruncatesLogs) {
  Cluster c(3);
  for (int i = 0; i < 200; ++i) c.broadcastString(i % 3, std::to_string(i));
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 200; }));
  }
  // Once acks circulate, stability reaches the frontier and logs shrink to
  // (stable, last] — near-empty on a quiet group.
  ASSERT_TRUE(waitUntil([&] { return c.node(0).stableSeq() >= 200; }, Millis{5000}))
      << "stable=" << c.node(0).stableSeq();
  ASSERT_TRUE(waitUntil([&] { return c.node(0).logSize() == 0; }, Millis{5000}))
      << "sequencer log=" << c.node(0).logSize();
  for (int n = 1; n < 3; ++n) {
    EXPECT_TRUE(waitUntil([&] { return c.node(n).logSize() == 0; }, Millis{5000}))
        << "node " << n << " log=" << c.node(n).logSize();
  }
}

TEST(ConsulStress, HighConcurrencyManyRounds) {
  constexpr int kNodes = 5;
  constexpr int kPerNode = 120;
  Cluster c(kNodes);
  std::vector<std::thread> senders;
  for (int n = 0; n < kNodes; ++n) {
    senders.emplace_back([&, n] {
      for (int i = 0; i < kPerNode; ++i) {
        c.broadcastString(n, std::to_string(n) + ":" + std::to_string(i));
      }
    });
  }
  for (auto& t : senders) t.join();
  const std::size_t total = kNodes * kPerNode;
  for (int n = 0; n < kNodes; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == total; }, Millis{30000}))
        << "node " << n;
  }
  const auto ref = c.log(0).history();
  for (int n = 1; n < kNodes; ++n) EXPECT_EQ(c.log(n).history(), ref) << "node " << n;
}

TEST(ConsulStress, CrashDuringHeavyTraffic) {
  Cluster c(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> senders;
  for (int n = 1; n <= 2; ++n) {
    senders.emplace_back([&, n] {
      for (int i = 0; i < 500 && !stop.load(); ++i) {
        c.broadcastString(n, std::to_string(n * 1000 + i));
      }
    });
  }
  std::this_thread::sleep_for(Millis{10});
  c.network().crash(0);  // sequencer dies mid-storm
  for (auto& t : senders) t.join();
  stop.store(true);
  // Everything the survivors sent must eventually deliver identically.
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(1).deliveredCount() == 1000 && c.log(2).deliveredCount() == 1000 &&
                   c.log(3).deliveredCount() == 1000; },
      Millis{30000}))
      << c.log(1).deliveredCount() << "/" << c.log(2).deliveredCount() << "/"
      << c.log(3).deliveredCount();
  EXPECT_EQ(c.log(1).history(), c.log(2).history());
  EXPECT_EQ(c.log(2).history(), c.log(3).history());
}


TEST(ConsulStress, DuplicationPlusLossPlusFailover) {
  // UDP-realistic adversity: 20% duplication AND 10% loss, plus a sequencer
  // crash. Every dedup path (per-gseq, per-origin-seq, view-id staleness)
  // must hold: exactly-once delivery in one order at every survivor.
  net::NetworkConfig nc;
  nc.drop_probability = 0.10;
  nc.duplicate_probability = 0.20;
  nc.seed = 77;
  Cluster c(4, nc, testutil::lossyConfig());
  for (int i = 0; i < 15; ++i) c.broadcastString(i % 4, "a" + std::to_string(i));
  ASSERT_TRUE(waitUntil([&] { return c.log(3).deliveredCount() == 15; }, Millis{20000}));
  c.network().crash(0);
  for (int i = 0; i < 15; ++i) c.broadcastString(1 + (i % 3), "b" + std::to_string(i));
  for (int n : {1, 2, 3}) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 30; }, Millis{30000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  auto h = c.log(1).history();
  EXPECT_EQ(c.log(2).history(), h);
  EXPECT_EQ(c.log(3).history(), h);
  std::sort(h.begin(), h.end());
  EXPECT_EQ(std::unique(h.begin(), h.end()), h.end()) << "duplicate delivery";
}

TEST(ConsulStress, PureDuplicationHarmless) {
  net::NetworkConfig nc;
  nc.duplicate_probability = 0.5;
  nc.seed = 5;
  Cluster c(3, nc);
  for (int i = 0; i < 40; ++i) c.broadcastString(i % 3, std::to_string(i));
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 40; }, Millis{15000}));
  }
  auto h = c.log(0).history();
  EXPECT_EQ(c.log(1).history(), h);
  std::sort(h.begin(), h.end());
  EXPECT_EQ(std::unique(h.begin(), h.end()), h.end());
}

}  // namespace
}  // namespace ftl::consul

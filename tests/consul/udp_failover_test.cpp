// The Consul failover scenarios from recovery_test/coalesce_test replayed
// over REAL UDP sockets (loopback), including a deterministic drop schedule.
// Same protocol, same assertions — only the wire is different. Passing here
// means the stack's fault tolerance does not secretly depend on simulator
// conveniences (global in-flight purge, synchronous delivery).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "consul/consul_test_util.hpp"
#include "net/udp_transport.hpp"

namespace ftl::consul {
namespace {

using testutil::Cluster;
using testutil::waitUntil;

std::unique_ptr<net::UdpTransport> loopbackNet(std::uint32_t hosts) {
  // Ephemeral ports: parallel test binaries never collide.
  return std::make_unique<net::UdpTransport>(hosts, net::UdpTransportConfig{});
}

/// UDP timers: like testutil::lossyConfig() but with extra slack — loopback
/// delivery is fast, yet receiver threads wake on a 20ms poll granularity.
ConsulConfig udpConfig() {
  ConsulConfig cfg = testutil::lossyConfig();
  cfg.failure_timeout = Micros{400'000};
  cfg.view_change_timeout = Micros{600'000};
  return cfg;
}

std::vector<std::string> burst(Cluster& c, std::uint32_t origin, const std::string& prefix,
                               int n) {
  std::vector<std::string> sent;
  for (int i = 0; i < n; ++i) {
    sent.push_back(c.broadcastString(origin, prefix + std::to_string(i)));
  }
  return sent;
}

/// Per-origin subsequence of `history` (payloads are prefixed per origin).
std::vector<std::string> withPrefix(const std::vector<std::string>& history,
                                    const std::string& prefix) {
  std::vector<std::string> out;
  for (const auto& s : history) {
    if (s.rfind(prefix, 0) == 0) out.push_back(s);
  }
  return out;
}

TEST(UdpFailover, TotalOrderAcrossRealSockets) {
  Cluster c(loopbackNet(3), udpConfig());
  const auto sent = burst(c, 1, "m", 40);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 40; }, Millis{15'000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto ref = c.log(0).history();
  for (int n = 1; n < 3; ++n) EXPECT_EQ(c.log(n).history(), ref) << "node " << n;
  EXPECT_EQ(withPrefix(ref, "m"), sent);
}

TEST(UdpFailover, CrashRejoinSnapshotDigestMatches) {
  Cluster c(loopbackNet(3), udpConfig());
  const auto pre = burst(c, 0, "pre", 5);
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 5; }, Millis{15'000}));

  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{15'000}));
  const auto mid = burst(c, 1, "mid", 5);
  ASSERT_TRUE(waitUntil([&] { return c.log(0).deliveredCount() == 10; }, Millis{15'000}));

  c.restartAsJoiner(2, /*incarnation=*/1);
  ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{20'000}));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 10; }, Millis{15'000}));
  // Snapshot + live suffix must reconstruct the identical history (the
  // "digest equality on both backends" acceptance check).
  EXPECT_EQ(c.log(2).history(), c.log(0).history());
  EXPECT_EQ(withPrefix(c.log(2).history(), "pre"), pre);
  EXPECT_EQ(withPrefix(c.log(2).history(), "mid"), mid);

  c.broadcastString(0, "post");
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 11; }, Millis{15'000}))
        << "node " << n;
  }
  EXPECT_EQ(c.log(2).history(), c.log(0).history());
}

TEST(UdpFailover, DeterministicDropScheduleDeliversExactlyOnce) {
  Cluster c(loopbackNet(3), udpConfig());
  // Deterministic schedule: kill every 3rd non-heartbeat protocol frame.
  // Retransmission must fill the gaps without ever double-applying.
  auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  c.network().setDropFilter([counter](const net::Message& m) {
    if (m.type == static_cast<std::uint16_t>(MsgType::Heartbeat)) return false;
    return counter->fetch_add(1) % 3 == 2;  // no false suspicion, just loss
  });
  const auto sent1 = burst(c, 1, "a", 25);
  const auto sent2 = burst(c, 2, "b", 25);
  for (int n = 0; n < 3; ++n) {
    ASSERT_TRUE(waitUntil([&] { return c.log(n).deliveredCount() == 50; }, Millis{30'000}))
        << "node " << n << " got " << c.log(n).deliveredCount();
  }
  const auto ref = c.log(0).history();
  for (int n = 1; n < 3; ++n) EXPECT_EQ(c.log(n).history(), ref) << "node " << n;
  // Exactly once, per-origin FIFO, despite the dropped frames.
  EXPECT_EQ(withPrefix(ref, "a"), sent1);
  EXPECT_EQ(withPrefix(ref, "b"), sent2);
  EXPECT_GT(c.network().totalStats().messages_dropped, 0u);
}

TEST(UdpFailover, RejoinUnderDropScheduleIsExactlyOnce) {
  Cluster c(loopbackNet(3), udpConfig());
  const auto pre = burst(c, 0, "pre", 10);
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 10; }, Millis{15'000}));
  c.network().crash(2);
  ASSERT_TRUE(waitUntil(
      [&] { return c.log(0).lastView().members == std::vector<net::HostId>{0, 1}; },
      Millis{15'000}));
  const auto mid = burst(c, 1, "mid", 15);

  // The joiner comes back through a lossy wire: every 4th frame of the
  // snapshot/catch-up exchange dies, deterministically.
  auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  c.network().setDropFilter([counter](const net::Message& m) {
    if (m.type == static_cast<std::uint16_t>(MsgType::Heartbeat)) return false;
    return counter->fetch_add(1) % 4 == 3;
  });
  c.restartAsJoiner(2, /*incarnation=*/1);
  ASSERT_TRUE(waitUntil([&] { return c.node(2).isMember(); }, Millis{30'000}));
  ASSERT_TRUE(waitUntil([&] { return c.log(2).deliveredCount() == 25; }, Millis{30'000}))
      << "joiner got " << c.log(2).deliveredCount();
  c.network().setDropFilter(nullptr);

  EXPECT_EQ(c.log(2).history(), c.log(0).history());
  EXPECT_EQ(withPrefix(c.log(2).history(), "pre"), pre);
  EXPECT_EQ(withPrefix(c.log(2).history(), "mid"), mid);
}

}  // namespace
}  // namespace ftl::consul

// Round-trip and error-path tests for the AGS text format (ags_text.hpp),
// the surface ftl-lint consumes.
#include <gtest/gtest.h>

#include "ftlinda/ags_text.hpp"
#include "ftlinda/verify.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::fReal;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

Bytes encoded(const Ags& ags) {
  Writer w;
  ags.encode(w);
  return w.take();
}

/// text -> Ags -> text -> Ags must be a fixed point at the wire level.
void expectRoundTrip(const Ags& ags) {
  const std::string text = agsToText(ags);
  SCOPED_TRACE(text);
  const Ags reparsed = parseAgs(text);
  EXPECT_EQ(encoded(reparsed), encoded(ags));
  EXPECT_EQ(agsToText(reparsed), text);
}

TEST(AgsText, ParsesPaperStyleStatement) {
  const Ags ags = parseAgs(
      "< in TSmain (\"count\", ?int) => out TSmain (\"count\", ?0 + 1)\n"
      "  or true => out TSmain (\"count\", 0) >");
  ASSERT_EQ(ags.branches.size(), 2u);
  EXPECT_EQ(ags.branches[0].guard.kind, Guard::Kind::In);
  EXPECT_EQ(ags.branches[0].guard.ts, kTsMain);
  ASSERT_EQ(ags.branches[0].body.size(), 1u);
  EXPECT_EQ(ags.branches[0].body[0].op, OpCode::Out);
  EXPECT_EQ(ags.branches[0].body[0].tmpl.fields[1].kind, TemplateField::Kind::Expr);
  EXPECT_EQ(ags.branches[1].guard.kind, Guard::Kind::True);
  EXPECT_TRUE(verify(ags).ok());
}

TEST(AgsText, SkipAndCommentsParse) {
  const Ags ags = parseAgs(
      "# reader\n"
      "< rd TSmain (\"x\", ?int) # the guard\n"
      "  => skip >");
  ASSERT_EQ(ags.branches.size(), 1u);
  EXPECT_EQ(ags.branches[0].guard.kind, Guard::Kind::Rd);
  EXPECT_TRUE(ags.branches[0].body.empty());
}

TEST(AgsText, HandleSyntax) {
  EXPECT_EQ(handleToText(ts::kTsMain), "TSmain");
  EXPECT_EQ(handleToText(TsHandle{7}), "ts7");
  EXPECT_EQ(handleToText(ts::kLocalHandleBit | 3), "scratch3");
  const Ags ags = parseAgs("< true => move scratch3 ts7 (\"x\", ?int) >");
  EXPECT_EQ(ags.branches[0].body[0].ts, ts::kLocalHandleBit | 3);
  EXPECT_EQ(ags.branches[0].body[0].dst, TsHandle{7});
}

TEST(AgsText, RoundTripsEveryOpKind) {
  TsAttributes attrs;
  attrs.stable = true;
  attrs.shared = false;
  expectRoundTrip(AgsBuilder()
                      .when(guardIn(kTsMain, makePattern("job", fInt(), fStr())))
                      .then(opOut(TsHandle{4}, makeTemplate("done", bound(0), bound(1))))
                      .then(opInp(kTsMain, makePatternTemplate("lock", fInt())))
                      .then(opRdp(TsHandle{4}, makePatternTemplate("done", bound(0), fStr())))
                      .then(opMove(TsHandle{4}, ts::kLocalHandleBit | 2,
                                   makePatternTemplate("done", fInt(), fStr())))
                      .then(opCopy(kTsMain, TsHandle{4}, makePatternTemplate("audit", fInt())))
                      .then(opCreateTs(attrs))
                      .then(opDestroyTs(TsHandle{4}))
                      .orWhen(guardRdp(TsHandle{4}, makePattern("flag", fInt())))
                      .orWhen(guardTrue())
                      .then(opOut(kTsMain, makeTemplate("fallback", 1)))
                      .build());
}

TEST(AgsText, RoundTripsEveryValueType) {
  expectRoundTrip(AgsBuilder()
                      .when(guardTrue())
                      .then(opOut(kTsMain, makeTemplate("v", std::int64_t{-7}, 2.5, true, false,
                                                     std::string("a \"quoted\"\n str"),
                                                     Bytes{1, 2, 3, 255})))
                      .build());
}

TEST(AgsText, RoundTripsAwkwardReals) {
  // Whole-number and high-precision reals must re-parse as reals.
  expectRoundTrip(AgsBuilder()
                      .when(guardIn(kTsMain, makePattern("r", fReal())))
                      .then(opOut(kTsMain, makeTemplate("w", 3.0, 0.1, 1e-17, -2.0)))
                      .then(opOut(kTsMain, makeTemplate("s", boundExpr(0, ArithOp::Mul, 2.0))))
                      .build());
}

TEST(AgsText, RoundTripsArithOps) {
  for (const ArithOp op : {ArithOp::Add, ArithOp::Sub, ArithOp::Mul}) {
    expectRoundTrip(AgsBuilder()
                        .when(guardIn(kTsMain, makePattern("x", fInt())))
                        .then(opOut(kTsMain, makeTemplate("x", boundExpr(0, op, 10))))
                        .build());
  }
}

TEST(AgsText, RoundTripsEmptyTemplates) {
  expectRoundTrip(AgsBuilder()
                      .when(guardIn(kTsMain, makePattern("go")))
                      .then(opOut(kTsMain, TupleTemplate{}))
                      .build());
}

TEST(AgsText, ParseErrorsCarryOffsets) {
  EXPECT_THROW(parseAgs(""), Error);
  EXPECT_THROW(parseAgs("< true => skip"), Error);          // missing '>'
  EXPECT_THROW(parseAgs("< true => skip > trailing"), Error);
  EXPECT_THROW(parseAgs("< maybe TSmain (\"x\") => skip >"), Error);  // bad guard
  EXPECT_THROW(parseAgs("< true => frobnicate TSmain (\"x\") >"), Error);
  EXPECT_THROW(parseAgs("< true => out TSbogus (\"x\") >"), Error);
  EXPECT_THROW(parseAgs("< true => create_TS(stable) >"), Error);
  EXPECT_THROW(parseAgs("< in TSmain (\"x\", ?int) => out TSmain (\"x\", ?0 / 2) >"), Error);
}

TEST(AgsText, ParseAgsAtAdvancesAcrossStatements) {
  const std::string two =
      "< true => out TSmain (\"a\", 1) >  # first\n"
      "< true => out TSmain (\"b\", 2) >";
  std::size_t pos = 0;
  const Ags first = parseAgsAt(two, pos);
  EXPECT_EQ(first.branches[0].body[0].tmpl.fields[0].literal.asStr(), "a");
  const Ags second = parseAgsAt(two, pos);
  EXPECT_EQ(second.branches[0].body[0].tmpl.fields[0].literal.asStr(), "b");
}

}  // namespace
}  // namespace ftl::ftlinda

// Whole-program tuple-flow analyzer (ftlinda/analyze.hpp): paradigm
// classification, the V5xx rules, plan emission, and golden-file checks of
// the report format over the shipped paradigm examples.
//
// Programs are built from the ftl-analyze input language via
// parseProgramText, which keeps each case readable as the paper's notation.
// Golden files live in tools/testdata/golden/; regenerate with
//   FTL_UPDATE_GOLDEN=1 ./test_ftlinda --gtest_filter='Analyze.Golden*'
#include "ftlinda/analyze.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ts/plan.hpp"

namespace ftl::ftlinda {
namespace {

ProgramAnalysis analyzeText(std::string_view text) {
  return analyzeProgram(parseProgramText(text));
}

const ClassInfo* findClass(const ProgramAnalysis& a, std::string_view name) {
  for (const auto& c : a.classes) {
    if (c.id.name == name) return &c;
  }
  return nullptr;
}

// ------------------------------------------------------- classification --

TEST(Analyze, ClassifiesBagOfTasksAsQueue) {
  const auto a = analyzeText(R"(
    < true => out TSmain ("task", 1) >
    < in TSmain ("task", ?int) => out TSmain ("done", ?0) >
    < in TSmain ("done", ?int) => skip >
  )");
  EXPECT_TRUE(a.ok());
  const ClassInfo* task = findClass(a, "task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->paradigm, ts::Paradigm::Queue);
  EXPECT_EQ(task->producers, 1);
  EXPECT_EQ(task->takers, 1);
  EXPECT_EQ(task->blocking_guards, 1);
}

TEST(Analyze, ClassifiesDistributedVariable) {
  const auto a = analyzeText(R"(
    ("x", 0)
    < rd TSmain ("x", ?int) => skip >
    < in TSmain ("x", ?int) => out TSmain ("x", ?0 + 1) >
  )");
  EXPECT_TRUE(a.ok());
  const ClassInfo* x = findClass(a, "x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->paradigm, ts::Paradigm::DistributedVariable);
  // The increment takes but re-deposits the class in the same branch.
  EXPECT_TRUE(x->takers_redeposit);
}

TEST(Analyze, ClassifiesSemaphore) {
  const auto a = analyzeText(R"(
    ("sem")
    < in TSmain ("sem") => skip >
    < true => out TSmain ("sem") >
  )");
  EXPECT_TRUE(a.ok());
  const ClassInfo* sem = findClass(a, "sem");
  ASSERT_NE(sem, nullptr);
  EXPECT_EQ(sem->paradigm, ts::Paradigm::Semaphore);
  EXPECT_TRUE(sem->token_only);
}

TEST(Analyze, DataFlowDemotesSemaphoreToQueue) {
  // Same access shape as a semaphore, but values ride on the tuple: the
  // formal consumer breaks token_only.
  const auto a = analyzeText(R"(
    < in TSmain ("tok", ?int) => skip >
    < true => out TSmain ("tok", 3) >
  )");
  const ClassInfo* tok = findClass(a, "tok");
  ASSERT_NE(tok, nullptr);
  EXPECT_FALSE(tok->token_only);
  EXPECT_EQ(tok->paradigm, ts::Paradigm::Queue);
}

// --------------------------------------------------------------- rules --

TEST(Analyze, V500BlockedForeverIsError) {
  const auto a = analyzeText(R"(
    < in TSmain ("never", ?int) => skip >
    < true => out TSmain ("other", 1) >
  )");
  EXPECT_FALSE(a.ok());
  const ProgramDiagnostic* d = a.find(RuleId::GuardNeverSatisfied);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->diag.severity, Severity::Error);
  EXPECT_EQ(d->statement, 0);
  EXPECT_EQ(d->diag.branch, 0);
}

TEST(Analyze, V501DeadConditionalGuardIsWarning) {
  const auto a = analyzeText(R"(
    < inp TSmain ("ghost", ?int) => skip
      or true => skip >
  )");
  EXPECT_TRUE(a.ok());  // warnings never fail a program
  const ProgramDiagnostic* d = a.find(RuleId::DeadConditionalGuard);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->diag.severity, Severity::Warning);
}

TEST(Analyze, V502DeadBodyMatchIsWarning) {
  const auto a = analyzeText(R"(
    < true => move TSmain ts4 ("nothing", ?int) >
  )");
  const ProgramDiagnostic* d = a.find(RuleId::DeadBodyMatch);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->diag.severity, Severity::Warning);
  EXPECT_EQ(d->diag.op_index, 0);
}

TEST(Analyze, V510TupleLeakIsWarning) {
  const auto a = analyzeText(R"(< true => out TSmain ("orphan", 1) >)");
  EXPECT_TRUE(a.ok());
  const ProgramDiagnostic* d = a.find(RuleId::TupleLeak);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->diag.severity, Severity::Warning);
  EXPECT_EQ(d->statement, 0);
}

TEST(Analyze, V520TypeConflictBeatsGenericRules) {
  const auto a = analyzeText(R"(
    < true => out TSmain ("job", 1) >
    < in TSmain ("job", ?str) => skip >
  )");
  EXPECT_FALSE(a.ok());
  ASSERT_NE(a.find(RuleId::ClassTypeConflict), nullptr);
  // The conflict explains BOTH the unsatisfied guard and the unconsumed
  // deposit: neither generic rule may double-report.
  EXPECT_EQ(a.find(RuleId::GuardNeverSatisfied), nullptr);
  EXPECT_EQ(a.find(RuleId::TupleLeak), nullptr);
}

TEST(Analyze, FailureTuplesHaveImplicitProducer) {
  // The runtime deposits ("failure", host) into monitored spaces; a monitor
  // program is well-formed even though no statement produces the class.
  const auto a = analyzeText(R"(
    < in TSmain ("failure", ?int) => out TSmain ("alert", ?0) >
    < in TSmain ("alert", ?int) => skip >
  )");
  EXPECT_TRUE(a.ok()) << a.toText();
  EXPECT_EQ(a.find(RuleId::GuardNeverSatisfied), nullptr);
}

TEST(Analyze, DynamicNameSatisfiesAnyNameOfSignature) {
  // The producer's leading field flows from the guard: statically it may
  // carry ANY name, so the ("want", int) consumer is satisfiable.
  const auto a = analyzeText(R"(
    < in TSmain ("key", ?str) => out TSmain (?0, 1) >
    < true => out TSmain ("key", "want") >
    < in TSmain ("want", ?int) => skip >
  )");
  EXPECT_TRUE(a.ok()) << a.toText();
}

TEST(Analyze, InvalidStatementIsRecordedAndSkipped) {
  // ?2 is out of range: statement 0 fails the per-statement verifier and
  // must not contribute to the graph (so no ("bad", int) class appears).
  const auto a = analyzeText(R"(
    < in TSmain ("bad", ?int) => out TSmain ("bad", ?2) >
  )");
  EXPECT_FALSE(a.ok());
  ASSERT_EQ(a.invalid.size(), 1u);
  EXPECT_EQ(a.invalid[0].first, 0);
  EXPECT_TRUE(a.classes.empty());
}

TEST(Analyze, InitialTuplesAreProducers) {
  const auto a = analyzeText(R"(
    ("seed", 1)
    < in TSmain ("seed", ?int) => skip >
  )");
  EXPECT_TRUE(a.ok());
  const ClassInfo* seed = findClass(a, "seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->producers, 1);
}

// ----------------------------------------------------------------- plan --

TEST(Analyze, PlanMarksFifoAndReadMostly) {
  const auto a = analyzeText(R"(
    < true => out TSmain ("q", 1) >
    < in TSmain ("q", ?int) => skip >
    ("v", 0)
    < rd TSmain ("v", ?int) => skip >
  )");
  const auto* q = a.plan.find(findClass(a, "q")->id.sig, "q");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->paradigm, ts::Paradigm::Queue);
  EXPECT_TRUE(q->fifo);
  EXPECT_FALSE(q->no_blocking_consumers);
  const auto* v = a.plan.find(findClass(a, "v")->id.sig, "v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->paradigm, ts::Paradigm::DistributedVariable);
  EXPECT_TRUE(v->read_mostly);
}

TEST(Analyze, PlanPinnedConsumerYieldsShardKey) {
  // Every consumer pins field 1 to a concrete value: the plan advertises it
  // as the shard key.
  const auto a = analyzeText(R"(
    < true => out TSmain ("part", 3, 10) >
    < inp TSmain ("part", 3, ?int) => skip
      or true => skip >
  )");
  const auto* e = a.plan.find(findClass(a, "part")->id.sig, "part");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->shard_key_field, 1);
}

TEST(Analyze, PlanMergesAcrossSpacesConservatively) {
  // ("job", int) is a FIFO queue in TSmain but read-mostly-shaped in ts4;
  // the merged entry (plans are keyed by sig+name only) must drop both
  // specializations rather than mis-apply one.
  const auto a = analyzeText(R"(
    < true => out TSmain ("job", 1) >
    < in TSmain ("job", ?int) => skip >
    < true => out ts4 ("job", 2) >
    < rd ts4 ("job", ?int) => skip >
  )");
  const auto* e = a.plan.find(findClass(a, "job")->id.sig, "job");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->paradigm, ts::Paradigm::Unknown);
  EXPECT_FALSE(e->fifo);
  EXPECT_FALSE(e->read_mostly);
}

TEST(Analyze, PlanTextRoundTripsThroughParse) {
  const auto a = analyzeText(R"(
    < true => out TSmain ("q", 1) >
    < in TSmain ("q", ?int) => skip >
  )");
  const ts::StoragePlan back = ts::StoragePlan::parseText(a.plan.toText());
  EXPECT_EQ(back.toText(), a.plan.toText());
}

// --------------------------------------------------------------- golden --

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Analyze examples/ags/<name>.ftl and compare the full text report against
/// tools/testdata/golden/<name>.txt. FTL_UPDATE_GOLDEN=1 rewrites the
/// golden instead (then re-run without it).
void goldenCase(const std::string& name) {
  const std::string src = std::string(FTL_SOURCE_DIR) + "/examples/ags/" + name + ".ftl";
  const std::string gold = std::string(FTL_SOURCE_DIR) + "/tools/testdata/golden/" + name + ".txt";
  const ProgramAnalysis a = analyzeProgram(parseProgramText(readFile(src)));
  const std::string report = a.toText();
  if (std::getenv("FTL_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(gold);
    out << report;
    return;
  }
  EXPECT_EQ(report, readFile(gold)) << "golden mismatch for " << name
                                    << " (FTL_UPDATE_GOLDEN=1 regenerates)";
}

TEST(Analyze, GoldenBagOfTasks) { goldenCase("bag_of_tasks"); }
TEST(Analyze, GoldenDistributedVariable) { goldenCase("distributed_variable"); }
TEST(Analyze, GoldenSemaphore) { goldenCase("semaphore"); }
TEST(Analyze, GoldenReplicatedServer) { goldenCase("replicated_server"); }

// ----------------------------------------------------------------- misc --

TEST(Analyze, JsonReportIsWellFormedEnough) {
  const auto a = analyzeText(R"(< true => out TSmain ("orphan", 1) >)");
  const std::string json = a.toJson();
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"tuple-leak\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(Analyze, ParseProgramTextRejectsGarbage) {
  EXPECT_THROW(parseProgramText("what is this"), Error);
}

TEST(Analyze, EmptyProgramIsClean) {
  const auto a = analyzeText("");
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.classes.empty());
  EXPECT_TRUE(a.plan.empty());
}

}  // namespace
}  // namespace ftl::ftlinda

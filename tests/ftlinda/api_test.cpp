// LindaApi: one interface over both runtime flavours, Result-based error
// reporting (rule-tagged, no exceptions for deterministic refusals), and the
// range-checked Reply::bound accessors (docs/API.md).
#include "ftlinda/api.hpp"

#include <gtest/gtest.h>

#include "ftlinda/system.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

// Written once against LindaApi&, run against both backends.
std::int64_t counterWorkload(LindaApi& api, const std::string& key, int rounds) {
  api.out(kTsMain, makeTuple(key, 0));
  for (int i = 0; i < rounds; ++i) {
    Reply r = requireReply(api.tryExecute(
        AgsBuilder()
            .when(guardIn(kTsMain, makePattern(key, fInt())))
            .then(opOut(kTsMain, makeTemplate(key, boundExpr(0, ArithOp::Add, 1))))
            .build()));
    EXPECT_EQ(r.boundInt(0), i);
  }
  return api.in(kTsMain, makePattern(key, fInt())).field(1).asInt();
}

TEST(LindaApiTest, SameWorkloadOnBothBackends) {
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.replica_hosts = 2;  // host 2 is an RPC client of a tuple server
  FtLindaSystem sys(cfg);
  LindaApi& embedded = sys.runtime(0);
  LindaApi& remote = sys.remoteRuntime(2);
  EXPECT_EQ(counterWorkload(embedded, "emb", 4), 4);
  EXPECT_EQ(counterWorkload(remote, "rpc", 4), 4);
  EXPECT_EQ(embedded.host(), 0u);
  EXPECT_EQ(remote.host(), 2u);
}

TEST(LindaApiTest, TryExecuteTagsVerifierRejections) {
  SystemConfig cfg;
  cfg.hosts = 1;
  FtLindaSystem sys(cfg);
  const Ags bad = AgsBuilder().when(guardTrue()).then(opDestroyTs(kTsMain)).build();
  Result<Reply> r = sys.runtime(0).tryExecute(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().rule, "destroy-ts-main");
  EXPECT_EQ(r.error().message.rfind("AGS rejected by verifier: ", 0), 0u);
  // The throwing wrapper raises the identical message.
  try {
    requireReply(sys.runtime(0).tryExecute(bad));
    FAIL() << "execute() did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.what(), r.error().message);
  }
}

TEST(LindaApiTest, TryExecuteTagsRegistryErrors) {
  SystemConfig cfg;
  cfg.hosts = 1;
  FtLindaSystem sys(cfg);
  // Statically well-formed, but the handle does not exist at the replicas.
  const TsHandle bogus = 777;
  Result<Reply> r = sys.runtime(0).tryExecute(
      AgsBuilder().when(guardTrue()).then(opOut(bogus, makeTemplate("x", 1))).build());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().rule, "registry");
  EXPECT_FALSE(r.error().message.empty());
}

TEST(LindaApiTest, RemoteTryExecuteTagsMatchEmbedded) {
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.replica_hosts = 2;
  FtLindaSystem sys(cfg);
  const Ags bad = AgsBuilder().when(guardTrue()).then(opDestroyTs(kTsMain)).build();
  Result<Reply> emb = sys.runtime(0).tryExecute(bad);
  Result<Reply> rem = sys.remoteRuntime(2).tryExecute(bad);
  ASSERT_FALSE(emb.ok());
  ASSERT_FALSE(rem.ok());
  EXPECT_EQ(emb.error().rule, rem.error().rule);
  EXPECT_EQ(emb.error().message, rem.error().message);
}

TEST(LindaApiTest, ResultAccessorsEnforceState) {
  Result<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.valueOr(-1), 7);
  EXPECT_THROW(good.error(), ContractViolation);

  Result<int> bad = Result<int>::failure("registry", "no such space");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.valueOr(-1), -1);
  EXPECT_EQ(bad.error().rule, "registry");
  EXPECT_EQ(bad.error().toString(), "no such space");
  EXPECT_THROW(bad.value(), ContractViolation);
}

TEST(LindaApiTest, ReplyBoundIsRangeChecked) {
  SystemConfig cfg;
  cfg.hosts = 1;
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(0);
  rt.out(kTsMain, makeTuple("pair", 3, "s"));
  Reply r = requireReply(rt.tryExecute(
      AgsBuilder().when(guardIn(kTsMain, makePattern("pair", fInt(), fStr()))).build()));
  EXPECT_EQ(r.boundInt(0), 3);
  EXPECT_EQ(r.boundStr(1), "s");
  EXPECT_THROW(r.bound(2), Error);
  EXPECT_THROW(r.boundInt(99), Error);

  Reply none = requireReply(rt.tryExecute(
      AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("t", 1))).build()));
  EXPECT_THROW(none.bound(0), Error);
}

}  // namespace
}  // namespace ftl::ftlinda

// Pipelined async AGS execution: executeAsync() returns an AgsFuture the
// issuer can hold while submitting more statements. These tests pin down the
// contract: per-issuer FIFO within the total order, crash mid-window failing
// every outstanding future with ProcessorFailure, continuations, replica
// state staying byte-identical under pipelined load, and the RemoteRuntime
// request window.
#include "ftlinda/system.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

bool waitUntil(const std::function<bool()>& pred, Millis timeout = Millis{8000}) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(Millis{2});
  }
  return pred();
}

/// AGS i: <inp("next", i) => out("next", i+1)>. The inp guard is
/// NON-blocking, so the chain only completes end-to-end if the pipelined
/// statements are delivered in exactly submission order.
Ags chainLink(int i) {
  return AgsBuilder()
      .when(guardInp(kTsMain, makePattern("next", i)))
      .then(opOut(kTsMain, makeTemplate("next", i + 1)))
      .build();
}

TEST(AsyncPipeline, PipelinedIssuerKeepsFifoOrder) {
  FtLindaSystem sys({.hosts = 3});
  auto& rt = sys.runtime(0);
  rt.out(kTsMain, makeTuple("next", 0));
  constexpr int kN = 32;
  std::vector<AgsFuture> futures;
  futures.reserve(kN);
  for (int i = 0; i < kN; ++i) futures.push_back(rt.executeAsync(chainLink(i)));
  for (int i = 0; i < kN; ++i) {
    Result<Reply> r = futures[i].get();
    ASSERT_TRUE(r.ok()) << "statement " << i << ": " << r.error().message;
    EXPECT_TRUE(r.value().succeeded) << "statement " << i << " saw out-of-order state";
  }
  EXPECT_EQ(sys.runtime(1).in(kTsMain, makePattern("next", fInt())).field(1).asInt(), kN);
}

TEST(AsyncPipeline, FutureBasics) {
  FtLindaSystem sys({.hosts = 2});
  auto& rt = sys.runtime(0);
  // Default-constructed future is empty.
  AgsFuture empty;
  EXPECT_FALSE(empty.valid());
  // Verifier rejection settles the future before it is returned.
  AgsFuture bad = rt.executeAsync(Ags{});
  EXPECT_TRUE(bad.ready());
  Result<Reply> r = bad.get();
  EXPECT_FALSE(r.ok());
  // get() is single-shot.
  EXPECT_THROW((void)bad.get(), ContractViolation);
}

TEST(AsyncPipeline, ContinuationRunsOnCompletion) {
  FtLindaSystem sys({.hosts = 2});
  auto& rt = sys.runtime(0);
  std::atomic<int> branch{-2};
  rt.executeAsync(
        AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("done", 1))).build())
      .then([&](const Result<Reply>& r) { branch.store(r.ok() ? r.value().branch : -1); });
  ASSERT_TRUE(waitUntil([&] { return branch.load() != -2; }));
  EXPECT_EQ(branch.load(), 0);
  EXPECT_TRUE(sys.runtime(1).rdp(kTsMain, makePattern("done", fInt())).has_value());
  // A continuation attached to an already-settled future runs inline.
  std::atomic<bool> ran{false};
  AgsFuture ready = rt.executeAsync(Ags{});
  ready.then([&](const Result<Reply>& r) { ran.store(!r.ok()); });
  EXPECT_TRUE(ran.load());
}

TEST(AsyncPipeline, CrashMidWindowFailsEveryOutstandingFuture) {
  FtLindaSystem sys({.hosts = 3});
  auto& rt = sys.runtime(0);
  // Eight statements blocked at the replicas (their in() guards can never
  // fire), all outstanding from one issuer.
  constexpr int kWindow = 8;
  std::vector<AgsFuture> futures;
  for (int i = 0; i < kWindow; ++i) {
    futures.push_back(rt.executeAsync(
        AgsBuilder().when(guardIn(kTsMain, makePattern("never", i))).build()));
  }
  for (const auto& f : futures) EXPECT_FALSE(f.ready());
  sys.crash(0);
  for (int i = 0; i < kWindow; ++i) {
    EXPECT_THROW((void)futures[i].get(), ProcessorFailure) << "future " << i;
  }
  // New submissions fail immediately too.
  EXPECT_THROW((void)rt.executeAsync(chainLink(0)), ProcessorFailure);
}

TEST(AsyncPipeline, ContinuationSeesProcessorFailureResult) {
  FtLindaSystem sys({.hosts = 3});
  auto& rt = sys.runtime(0);
  std::atomic<bool> failed{false};
  rt.executeAsync(AgsBuilder().when(guardIn(kTsMain, makePattern("never"))).build())
      .then([&](const Result<Reply>& r) {
        failed.store(!r.ok() && r.error().rule == "processor-failure");
      });
  sys.crash(0);
  ASSERT_TRUE(waitUntil([&] { return failed.load(); }));
}

TEST(AsyncPipeline, ReplicaStateIdenticalAfterPipelinedLoad) {
  FtLindaSystem sys({.hosts = 3});
  constexpr int kPerIssuer = 40;
  constexpr std::size_t kWindow = 8;
  std::vector<std::thread> issuers;
  for (std::uint32_t h = 0; h < 2; ++h) {
    issuers.emplace_back([&sys, h] {
      auto& rt = sys.runtime(h);
      std::deque<AgsFuture> window;
      for (int i = 0; i < kPerIssuer; ++i) {
        window.push_back(rt.executeAsync(
            AgsBuilder()
                .when(guardTrue())
                .then(opOut(kTsMain, makeTemplate("load", static_cast<int>(h), i)))
                .build()));
        if (window.size() >= kWindow) {
          ASSERT_TRUE(window.front().get().ok());
          window.pop_front();
        }
      }
      while (!window.empty()) {
        ASSERT_TRUE(window.front().get().ok());
        window.pop_front();
      }
    });
  }
  for (auto& t : issuers) t.join();
  ASSERT_TRUE(waitUntil([&] {
    const Bytes d0 = sys.stateMachine(0).stateDigestBytes();
    return sys.stateMachine(1).stateDigestBytes() == d0 &&
           sys.stateMachine(2).stateDigestBytes() == d0;
  }));
}

TEST(AsyncPipeline, RemoteRuntimeWindowedPipeline) {
  // Tuple-server configuration: host 2 is an RPC client of a replica host.
  FtLindaSystem sys({.hosts = 3, .replica_hosts = 2});
  auto& rt = sys.remoteRuntime(2);
  rt.setPipelineWindow(4);
  EXPECT_EQ(rt.pipelineWindow(), 4u);
  rt.out(kTsMain, makeTuple("next", 0));
  constexpr int kN = 24;
  std::vector<AgsFuture> futures;
  for (int i = 0; i < kN; ++i) futures.push_back(rt.executeAsync(chainLink(i)));
  for (int i = 0; i < kN; ++i) {
    Result<Reply> r = futures[i].get();
    ASSERT_TRUE(r.ok()) << "statement " << i;
    EXPECT_TRUE(r.value().succeeded) << "statement " << i << " out of order over RPC";
  }
  EXPECT_EQ(sys.runtime(0).in(kTsMain, makePattern("next", fInt())).field(1).asInt(), kN);
}

TEST(AsyncPipeline, RemoteClientCrashFailsOutstandingFutures) {
  FtLindaSystem sys({.hosts = 3, .replica_hosts = 2});
  auto& rt = sys.remoteRuntime(2);
  std::vector<AgsFuture> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(rt.executeAsync(
        AgsBuilder().when(guardIn(kTsMain, makePattern("never", i))).build()));
  }
  sys.crash(2);
  for (auto& f : futures) EXPECT_THROW((void)f.get(), ProcessorFailure);
}

TEST(AsyncPipeline, RemoteServerCrashFailsOutstandingFutures) {
  FtLindaSystem sys({.hosts = 4, .replica_hosts = 3});
  auto& rt = sys.remoteRuntime(3);
  std::vector<AgsFuture> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(rt.executeAsync(
        AgsBuilder().when(guardIn(kTsMain, makePattern("never", i))).build()));
  }
  sys.crash(rt.server());
  // The server can never answer: futures fail with a transport error (the
  // client host itself is alive, so not ProcessorFailure).
  for (auto& f : futures) EXPECT_THROW((void)f.get(), Error);
}

}  // namespace
}  // namespace ftl::ftlinda

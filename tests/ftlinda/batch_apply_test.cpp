// Batched replica apply: a batch must be indistinguishable from the same
// commands applied one at a time (batch boundaries are local scheduling,
// never replicated state — rsm::StateMachine::applyBatch contract), and the
// consul-level coalescing knobs must preserve end-to-end semantics and
// cross-replica digest equality.
#include <gtest/gtest.h>

#include <thread>

#include "ftlinda/system.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

Ags outAgs(const Tuple& t) {
  TupleTemplate tmpl;
  for (const auto& v : t.fields()) {
    TemplateField f;
    f.literal = v;
    tmpl.fields.push_back(f);
  }
  return AgsBuilder().when(guardTrue()).then(opOut(kTsMain, tmpl)).build();
}

std::vector<Command> workloadCommands() {
  std::vector<Command> cmds;
  cmds.push_back(makeMonitor(1, kTsMain, true));
  for (int i = 0; i < 24; ++i) {
    // Alternate producers with blocking consumers so batches cross the
    // block/wake machinery, not just straight-line outs.
    if (i % 3 == 2) {
      cmds.push_back(makeExecute(
          100 + static_cast<std::uint64_t>(i),
          AgsBuilder().when(guardIn(kTsMain, makePattern("job", fInt()))).build()));
    } else {
      cmds.push_back(makeExecute(100 + static_cast<std::uint64_t>(i),
                                 outAgs(makeTuple("job", i))));
    }
  }
  return cmds;
}

TEST(BatchApply, BatchesMatchOneAtATimeExactly) {
  TsStateMachine one_by_one, batched;
  std::vector<std::pair<std::uint64_t, Reply>> replies_a, replies_b;
  one_by_one.setReplySink(
      [&](net::HostId, std::uint64_t rid, const Reply& r) { replies_a.emplace_back(rid, r); });
  batched.setReplySink(
      [&](net::HostId, std::uint64_t rid, const Reply& r) { replies_b.emplace_back(rid, r); });

  const std::vector<Command> cmds = workloadCommands();
  std::vector<Bytes> encoded;
  encoded.reserve(cmds.size());
  for (const auto& c : cmds) encoded.push_back(c.encode());

  std::uint64_t gseq = 0;
  for (const auto& e : encoded) {
    rsm::ApplyContext ctx;
    ctx.gseq = ++gseq;
    ctx.origin = 1;
    one_by_one.apply(ctx, e);
  }
  // Same stream, chopped into uneven batches (1, 2, 3, 4, 1, 2, ...).
  std::size_t i = 0, width = 1;
  gseq = 0;
  while (i < encoded.size()) {
    std::vector<rsm::BatchItem> items;
    for (std::size_t k = 0; k < width && i < encoded.size(); ++k, ++i) {
      rsm::ApplyContext ctx;
      ctx.gseq = ++gseq;
      ctx.origin = 1;
      items.push_back(rsm::BatchItem{ctx, encoded[i]});
    }
    batched.applyBatch(items);
    width = width % 4 + 1;
  }

  EXPECT_EQ(one_by_one.snapshot(), batched.snapshot());
  EXPECT_EQ(one_by_one.stateDigestBytes(), batched.stateDigestBytes());
  ASSERT_EQ(replies_a.size(), replies_b.size());
  for (std::size_t k = 0; k < replies_a.size(); ++k) {
    EXPECT_EQ(replies_a[k].first, replies_b[k].first);
    EXPECT_EQ(replies_a[k].second.encode(), replies_b[k].second.encode());
  }

  const auto stats = batched.batchStats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_EQ(stats.commands, encoded.size());
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(one_by_one.batchStats().batches, 0u);  // plain apply() path
}

void runCounterWorkload(FtLindaSystem& sys, int hosts, int per_host) {
  sys.runtime(0).out(kTsMain, makeTuple("acc", 0));
  for (int h = 0; h < hosts; ++h) {
    sys.spawnProcess(static_cast<net::HostId>(h), [per_host](LindaApi& rt) {
      for (int i = 0; i < per_host; ++i) {
        requireReply(rt.tryExecute(AgsBuilder()
                       .when(guardIn(kTsMain, makePattern("acc", fInt())))
                       .then(opOut(kTsMain, makeTemplate("acc", boundExpr(0, ArithOp::Add, 1))))
                       .build()));
      }
    });
  }
  sys.joinProcesses();
}

void expectConvergedAcc(FtLindaSystem& sys, int hosts, std::int64_t expect) {
  EXPECT_EQ(sys.runtime(0).rd(kTsMain, makePattern("acc", fInt())).field(1).asInt(), expect);
  auto allEqual = [&] {
    const Bytes d0 = sys.stateMachine(0).stateDigestBytes();
    for (net::HostId h = 1; h < static_cast<net::HostId>(hosts); ++h) {
      if (sys.stateMachine(h).stateDigestBytes() != d0) return false;
    }
    return true;
  };
  const auto deadline = Clock::now() + Millis{8000};
  while (!allEqual() && Clock::now() < deadline) std::this_thread::sleep_for(Millis{2});
  EXPECT_TRUE(allEqual()) << "replicas diverged under batched apply";
}

TEST(BatchApply, WindowedCoalescingPreservesSemantics) {
  constexpr int kHosts = 3, kPerHost = 20;
  SystemConfig cfg;
  cfg.hosts = kHosts;
  cfg.consul.max_apply_batch = 8;
  cfg.consul.apply_batch_window = Micros{2'000};
  FtLindaSystem sys(cfg);
  runCounterWorkload(sys, kHosts, kPerHost);
  expectConvergedAcc(sys, kHosts, kHosts * kPerHost);
  // Coalescing actually happened somewhere (per-replica stats are local
  // scheduling, so only the aggregate shape is asserted).
  const auto stats = sys.stateMachine(0).batchStats();
  EXPECT_GT(stats.commands, 0u);
  EXPECT_GE(stats.commands, stats.batches);
}

TEST(BatchApply, BatchSizeOneDisablesCoalescing) {
  constexpr int kHosts = 2, kPerHost = 10;
  SystemConfig cfg;
  cfg.hosts = kHosts;
  cfg.consul.max_apply_batch = 1;
  FtLindaSystem sys(cfg);
  runCounterWorkload(sys, kHosts, kPerHost);
  expectConvergedAcc(sys, kHosts, kHosts * kPerHost);
  const auto stats = sys.stateMachine(0).batchStats();
  EXPECT_GT(stats.commands, 0u);
  EXPECT_LE(stats.max_batch, 1u);  // every flush carried exactly one command
}

}  // namespace
}  // namespace ftl::ftlinda

// Chaos test: a conserved-token workload under randomized crash/recovery
// churn. Workers move tokens between two pools with atomic statements; no
// matter which processors die or return, the TOKEN COUNT is conserved and
// the replicas stay byte-identical (DESIGN.md invariants 3-6 under churn).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "ftlinda/system.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

constexpr int kTokens = 30;
constexpr int kHosts = 4;

void mover(Runtime& rt) {
  // Move a token A->B or B->A, atomically; stop on the shutdown signal.
  for (;;) {
    Reply r = requireReply(rt.tryExecute(AgsBuilder()
                             .when(guardIn(kTsMain, makePattern("stop")))
                             .then(opOut(kTsMain, makeTemplate("stop")))
                             .orWhen(guardInp(kTsMain, makePattern("poolA", fInt())))
                             .then(opOut(kTsMain, makeTemplate("poolB", bound(0))))
                             .orWhen(guardInp(kTsMain, makePattern("poolB", fInt())))
                             .then(opOut(kTsMain, makeTemplate("poolA", bound(0))))
                             .build()));
    if (r.branch == 0) return;
    std::this_thread::sleep_for(Micros{500});  // temper the offered load
  }
}

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, TokensConservedAcrossChurn) {
  Xoshiro256 rng(GetParam());
  FtLindaSystem sys({.hosts = kHosts, .monitor_main = true});
  for (int i = 0; i < kTokens; ++i) {
    sys.runtime(0).out(kTsMain, makeTuple("poolA", i));
  }
  for (net::HostId h = 0; h < kHosts; ++h) sys.spawnProcess(h, mover);

  // Churn hosts 2 and 3 (host 0 carries the final audit; keep a quorum-ish
  // core of 0 and 1 stable).
  for (int round = 0; round < 3; ++round) {
    const net::HostId victim = 2 + static_cast<net::HostId>(rng.below(2));
    std::this_thread::sleep_for(Millis{5 + rng.below(20)});
    if (sys.isUp(victim)) sys.crash(victim);
    std::this_thread::sleep_for(Millis{100 + rng.below(100)});
    if (!sys.isUp(victim) && sys.recover(victim)) {
      sys.spawnProcess(victim, mover);
    }
  }

  // Stop the movers and audit.
  sys.runtime(0).out(kTsMain, makeTuple("stop"));
  sys.joinProcesses();
  std::size_t a = 0, b = 0, other = 0;
  std::vector<int> seen(kTokens, 0);
  for (const auto& t : sys.stateMachine(0).spaceContents(kTsMain)) {
    const std::string& name = t.field(0).asStr();
    if (name == "poolA") {
      ++a;
      seen[static_cast<std::size_t>(t.field(1).asInt())] += 1;
    } else if (name == "poolB") {
      ++b;
      seen[static_cast<std::size_t>(t.field(1).asInt())] += 1;
    } else if (name != "stop" && name != "failure") {
      ++other;
    }
  }
  EXPECT_EQ(a + b, static_cast<std::size_t>(kTokens)) << "tokens not conserved";
  for (int i = 0; i < kTokens; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "token " << i << " duplicated or lost";
  }
  EXPECT_EQ(other, 0u);

  // Every live replica converges to byte-identical state. Re-read ALL
  // digests in the wait loop: any replica (including host 0) may still be
  // applying the tail of the ordered stream when we first look.
  auto allEqual = [&] {
    const Bytes d0 = sys.stateMachine(0).stateDigestBytes();
    for (net::HostId h = 1; h < kHosts; ++h) {
      if (sys.isUp(h) && sys.stateMachine(h).stateDigestBytes() != d0) return false;
    }
    return true;
  };
  const auto deadline = Clock::now() + Millis{8000};
  while (!allEqual() && Clock::now() < deadline) std::this_thread::sleep_for(Millis{2});
  EXPECT_TRUE(allEqual()) << "replicas diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos, ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace ftl::ftlinda

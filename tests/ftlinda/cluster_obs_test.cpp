// Cluster-wide observability over a simulated deployment: cross-host trace
// assembly out of a live run, the trace-dump RPC (types 44/45), and the
// stall watchdog wired through SystemConfig.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ftlinda/system.hpp"
#include "obs/assemble.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

class ClusterObs : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace::disable();
    obs::trace::clear();
  }
  void TearDown() override {
    obs::trace::disable();
    obs::trace::clear();
  }
};

double tripCount(std::uint32_t host, const char* signal) {
  return obs::counter("ftl_watchdog_trips{host=\"" + std::to_string(host) + "\",signal=\"" +
                      signal + "\"}")
      .value();
}

TEST_F(ClusterObs, TwoHostRunAssemblesEveryStageOncePerAgs) {
  SystemConfig cfg;
  cfg.hosts = 2;
  FtLindaSystem sys(cfg);
  obs::trace::enable();
  std::vector<AgsFuture> futs;
  for (int i = 0; i < 6; ++i) {
    auto& rt = sys.runtime(static_cast<net::HostId>(i % 2));
    futs.push_back(rt.executeAsync(
        AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("obs", i))).build()));
  }
  for (auto& f : futs) (void)f.get();
  obs::trace::disable();

  // Both simulated hosts share this process's rings; assemble them as one
  // host's span set and run the analyzer over the merged timeline.
  const obs::assemble::TraceReport r = obs::assemble::analyze({obs::assemble::captureLocal(0)});
  ASSERT_GE(r.ags.size(), 6u);
  EXPECT_EQ(r.duplicate_stages, 0u);
  EXPECT_EQ(r.monotone_violations, 0u);
  const char* required[] = {"ags.verify", "ags.issue", "ags.order", "ags.apply", "ags.reply"};
  std::size_t complete_rows = 0;
  for (const auto& row : r.ags) {
    if (row.e2e_ns <= 0) continue;  // ring-clipped tail
    ++complete_rows;
    for (const char* s : required) {
      EXPECT_EQ(row.stage_ns.count(s), 1u)
          << "trace " << row.trace_id << " missing stage " << s;
    }
    EXPECT_GT(row.stageSumNs(), 0);
    EXPECT_LE(row.stageSumNs(), row.e2e_ns);
  }
  EXPECT_GE(complete_rows, 6u);
  EXPECT_GT(r.coverage, 0.0);
  EXPECT_LE(r.coverage, 1.0);
}

TEST_F(ClusterObs, TraceDumpRpcServesClockPingsAndSpans) {
  // Tuple-server configuration: host 2 is an RPC client; its trace-dump
  // requests (type 44) hit host 0's server. The ping mode must return a
  // plausible clock sample, the span mode the server process's rings.
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.replica_hosts = 2;
  FtLindaSystem sys(cfg);

  obs::trace::enable();
  sys.remoteRuntime(2).out(kTsMain, makeTuple("ping", 1));
  (void)sys.remoteRuntime(2).inp(kTsMain, makePattern("ping", fInt()));
  obs::trace::disable();

  auto& rt = sys.remoteRuntime(2);
  std::vector<obs::assemble::PingSample> pings;
  for (int i = 0; i < 4; ++i) pings.push_back(rt.serverClockPing());
  for (const auto& p : pings) {
    EXPECT_GE(p.t1_ns, p.t0_ns);
    EXPECT_GT(p.server_ns, 0);
  }
  // Same process, same clock: the estimated offset is just RPC jitter.
  const std::int64_t offset = obs::assemble::estimateOffset(pings);
  EXPECT_LT(std::abs(offset), 500'000'000);

  obs::assemble::HostSpans hs = rt.serverTraceSpans();
  EXPECT_EQ(hs.host, 0u);
  EXPECT_GT(hs.clock_ns, 0);
  ASSERT_FALSE(hs.spans.empty());
  bool saw_rpc_stage = false;
  for (const auto& e : hs.spans) saw_rpc_stage = saw_rpc_stage || e.name == "ags.rpc";
  EXPECT_TRUE(saw_rpc_stage);
}

TEST_F(ClusterObs, NeverMatchingGuardTripsBlockedGuardSignal) {
  SystemConfig cfg;
  cfg.hosts = 1;
  cfg.watchdog = true;
  cfg.watchdog_cfg.future_stall_ns = 50'000'000;
  cfg.watchdog_cfg.blocked_guard_stall_ns = 50'000'000;
  cfg.watchdog_cfg.order_stall_ns = 3'600'000'000'000;  // not under test here
  cfg.watchdog_cfg.poll_period = Millis{20};
  const double guard_before = tripCount(0, "guard_stall");
  const double future_before = tripCount(0, "future_stall");
  {
    FtLindaSystem sys(cfg);
    auto fut = sys.runtime(0).executeAsync(
        AgsBuilder().when(guardIn(kTsMain, makePattern("never", fInt()))).build());
    const auto deadline = Clock::now() + Millis{10'000};
    while (tripCount(0, "guard_stall") == guard_before && Clock::now() < deadline) {
      std::this_thread::sleep_for(Millis{10});
    }
    EXPECT_GT(tripCount(0, "guard_stall"), guard_before);
    // The unanswered future also ages past its (smaller) threshold.
    EXPECT_GT(tripCount(0, "future_stall"), future_before);
    // Unblock so teardown joins cleanly.
    sys.runtime(0).out(kTsMain, makeTuple("never", 1));
    (void)fut.get();
  }
}

TEST_F(ClusterObs, HealthyPipelinedRunTripsNothing) {
  SystemConfig cfg;
  cfg.hosts = 2;
  cfg.watchdog = true;  // default multi-second thresholds
  cfg.watchdog_cfg.poll_period = Millis{10};
  const double before = tripCount(0, "guard_stall") + tripCount(0, "future_stall") +
                        tripCount(0, "order_stall") + tripCount(1, "guard_stall") +
                        tripCount(1, "future_stall") + tripCount(1, "order_stall");
  {
    FtLindaSystem sys(cfg);
    std::vector<AgsFuture> window;
    for (int i = 0; i < 200; ++i) {
      window.push_back(sys.runtime(i % 2).executeAsync(
          AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("h", i))).build()));
      if (window.size() == 16) {
        for (auto& f : window) (void)f.get();
        window.clear();
      }
    }
    for (auto& f : window) (void)f.get();
    // Let several poll cycles observe the now-idle system.
    std::this_thread::sleep_for(Millis{100});
    const double after = tripCount(0, "guard_stall") + tripCount(0, "future_stall") +
                         tripCount(0, "order_stall") + tripCount(1, "guard_stall") +
                         tripCount(1, "future_stall") + tripCount(1, "order_stall");
    EXPECT_EQ(after, before);
    EXPECT_GT(obs::counter("ftl_watchdog_polls").value(), 0.0);
  }
}

TEST_F(ClusterObs, WatchdogSurvivesCrashAndRecover) {
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.watchdog = true;
  cfg.watchdog_cfg.poll_period = Millis{10};
  cfg.consul = simulationConsulConfig();
  FtLindaSystem sys(cfg);
  sys.runtime(0).out(kTsMain, makeTuple("pre", 1));
  sys.crash(2);
  EXPECT_TRUE(sys.recover(2));
  // The recovered host's watchdog is live again and the system serves AGSes.
  sys.runtime(2).out(kTsMain, makeTuple("post", 2));
  EXPECT_TRUE(sys.runtime(1).inp(kTsMain, makePattern("post", fInt())).has_value());
}

}  // namespace
}  // namespace ftl::ftlinda

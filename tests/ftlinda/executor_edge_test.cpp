// Executor edge cases beyond the core semantics suite.
#include <gtest/gtest.h>

#include "ftlinda/executor.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using ts::TsRegistry;
using tuple::fBlob;
using tuple::fBool;
using tuple::fInt;
using tuple::fReal;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

struct EdgeTest : ::testing::Test {
  TsRegistry reg{true};

  ExecResult run(const Ags& a) { return tryExecuteAgs(a, reg, ExecMode::Replicated); }
};

TEST_F(EdgeTest, ZeroArityTuples) {
  auto out = AgsBuilder().when(guardTrue()).then(opOut(kTsMain, TupleTemplate{})).build();
  run(out);
  EXPECT_EQ(reg.get(kTsMain).count(Pattern{}), 1u);
  auto take = AgsBuilder().when(guardInp(kTsMain, Pattern{})).build();
  EXPECT_TRUE(run(take).reply.succeeded);
  EXPECT_FALSE(run(take).reply.succeeded);
}

TEST_F(EdgeTest, AllFormalTypesBindTogether) {
  reg.get(kTsMain).put(makeTuple("t", 1, 2.5, true, Bytes{9, 9}));
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern(fStr(), fInt(), fReal(), fBool(), fBlob())))
               .then(opOut(kTsMain, makeTemplate(bound(0), bound(1), bound(2), bound(3),
                                                 bound(4))))
               .build();
  auto res = run(a);
  ASSERT_TRUE(res.reply.succeeded);
  ASSERT_EQ(res.reply.bindings.size(), 5u);
  EXPECT_EQ(res.reply.bindings[0].asStr(), "t");
  EXPECT_EQ(res.reply.bindings[4].asBlob(), (Bytes{9, 9}));
  // The body re-deposited an identical tuple.
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("t", 1, 2.5, true, Bytes{9, 9})), 1u);
}

TEST_F(EdgeTest, CreatedHandleNotUsableInSameStatement) {
  // Handles allocated by CreateTs are returned in the reply; referencing
  // the not-yet-existing space inside the same statement is a deterministic
  // error (validation precedes execution).
  auto a = AgsBuilder()
               .when(guardTrue())
               .then(opCreateTs({true, true}))
               .then(opOut(2, makeTemplate("x")))  // 2 = the handle it WOULD get
               .build();
  auto res = run(a);
  EXPECT_FALSE(res.reply.error.empty());
  EXPECT_EQ(reg.spaceCount(), 1u);  // nothing created
}

TEST_F(EdgeTest, SameGuardTwiceInDisjunction) {
  reg.get(kTsMain).put(makeTuple("x", 1));
  auto a = AgsBuilder()
               .when(guardInp(kTsMain, makePattern("x", fInt())))
               .orWhen(guardInp(kTsMain, makePattern("x", fInt())))
               .build();
  auto res = run(a);
  EXPECT_EQ(res.reply.branch, 0);
  EXPECT_EQ(reg.get(kTsMain).size(), 0u);  // consumed exactly once
}

TEST_F(EdgeTest, GuardBindingFeedsMoveAndCopyAndInp) {
  const auto h = reg.create({true, true});
  reg.get(kTsMain).put(makeTuple("select", 7));
  for (int i = 0; i < 3; ++i) reg.get(kTsMain).put(makeTuple("item", 7, i));
  reg.get(kTsMain).put(makeTuple("item", 8, 99));
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern("select", fInt())))
               .then(opCopy(kTsMain, h, makePatternTemplate("item", bound(0), fInt())))
               .then(opMove(kTsMain, h, makePatternTemplate("item", bound(0), fInt())))
               .then(opInp(kTsMain, makePatternTemplate("item", bound(0), fInt())))
               .build();
  auto res = run(a);
  ASSERT_TRUE(res.reply.succeeded);
  EXPECT_EQ(reg.get(h).size(), 6u);  // 3 copied + 3 moved
  EXPECT_FALSE(res.reply.op_status[2]);  // the move already took them all
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("item", 8, fInt())), 1u);  // untouched
}

TEST_F(EdgeTest, MoveOfNothingSucceedsWithFalseStatus) {
  const auto h = reg.create({true, true});
  auto a = AgsBuilder()
               .when(guardTrue())
               .then(opMove(kTsMain, h, makePatternTemplate("ghost", fInt())))
               .build();
  auto res = run(a);
  EXPECT_TRUE(res.reply.succeeded);
  ASSERT_EQ(res.reply.op_status.size(), 1u);
  EXPECT_FALSE(res.reply.op_status[0]);
}

TEST_F(EdgeTest, CopyIntoSameSpaceDuplicates) {
  reg.get(kTsMain).put(makeTuple("d", 1));
  auto a = AgsBuilder()
               .when(guardTrue())
               .then(opCopy(kTsMain, kTsMain, makePatternTemplate("d", fInt())))
               .build();
  run(a);
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("d", fInt())), 2u);
}

TEST_F(EdgeTest, LargeBodyExecutesAtomically) {
  AgsBuilder b;
  b.when(guardTrue());
  for (int i = 0; i < 100; ++i) b.then(opOut(kTsMain, makeTemplate("bulk", i)));
  auto res = run(b.build());
  ASSERT_TRUE(res.reply.succeeded);
  EXPECT_EQ(res.reply.op_status.size(), 100u);
  EXPECT_EQ(reg.get(kTsMain).size(), 100u);
}

TEST_F(EdgeTest, ManyBranchDisjunctionPicksLast) {
  reg.get(kTsMain).put(makeTuple("only"));
  AgsBuilder b;
  for (int i = 0; i < 20; ++i) b.when(guardInp(kTsMain, makePattern("no", i)));
  b.when(guardInp(kTsMain, makePattern("only")));
  auto res = run(b.build());
  EXPECT_EQ(res.reply.branch, 20);
}

TEST_F(EdgeTest, GuardOnSecondarySpace) {
  const auto h = reg.create({true, true});
  reg.get(h).put(makeTuple("here"));
  auto a = AgsBuilder()
               .when(guardIn(h, makePattern("here")))
               .then(opOut(kTsMain, makeTemplate("moved")))
               .build();
  auto res = run(a);
  EXPECT_TRUE(res.reply.succeeded);
  EXPECT_EQ(reg.get(h).size(), 0u);
  EXPECT_EQ(reg.get(kTsMain).size(), 1u);
}

TEST_F(EdgeTest, DestroyedSpaceHandleFailsNextStatement) {
  const auto h = reg.create({true, true});
  run(AgsBuilder().when(guardTrue()).then(opDestroyTs(h)).build());
  auto res = run(AgsBuilder().when(guardRdp(h, makePattern("x"))).build());
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(EdgeTest, BoolAndBlobActualsMatchExactly) {
  reg.get(kTsMain).put(makeTuple("flag", true, Bytes{1, 2}));
  EXPECT_FALSE(run(AgsBuilder()
                       .when(guardInp(kTsMain, makePattern("flag", false, fBlob())))
                       .build())
                   .reply.succeeded);
  EXPECT_FALSE(run(AgsBuilder()
                       .when(guardInp(kTsMain, makePattern("flag", true, Bytes{1, 3})))
                       .build())
                   .reply.succeeded);
  EXPECT_TRUE(run(AgsBuilder()
                      .when(guardInp(kTsMain, makePattern("flag", true, Bytes{1, 2})))
                      .build())
                  .reply.succeeded);
}

}  // namespace
}  // namespace ftl::ftlinda

// AGS executor semantics: atomicity, disjunction, binding, blocking
// decisions, deterministic validation (DESIGN.md invariant 3).
#include "ftlinda/executor.hpp"

#include <gtest/gtest.h>

namespace ftl::ftlinda {
namespace {

using ts::kLocalHandleBit;
using ts::kTsMain;
using ts::TsRegistry;
using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

struct ExecutorTest : ::testing::Test {
  TsRegistry reg{/*with_main=*/true};
};

TEST_F(ExecutorTest, TrueGuardRunsBody) {
  auto a = AgsBuilder().when(guardTrue()).then(opOut(kTsMain, makeTemplate("x", 1))).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_TRUE(res.reply.succeeded);
  EXPECT_EQ(res.reply.branch, 0);
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("x", 1)), 1u);
}

TEST_F(ExecutorTest, InGuardRemovesAndBinds) {
  reg.get(kTsMain).put(makeTuple("count", 41));
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern("count", fInt())))
               .then(opOut(kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_TRUE(res.reply.succeeded);
  ASSERT_EQ(res.reply.bindings.size(), 1u);
  EXPECT_EQ(res.reply.bindings[0].asInt(), 41);
  EXPECT_EQ(res.reply.guard_tuple, makeTuple("count", 41));
  // The old tuple is gone; the incremented one is present — atomically.
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("count", 41)), 0u);
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("count", 42)), 1u);
}

TEST_F(ExecutorTest, RdGuardKeepsTuple) {
  reg.get(kTsMain).put(makeTuple("cfg", 5));
  auto a = AgsBuilder().when(guardRd(kTsMain, makePattern("cfg", fInt()))).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_TRUE(res.reply.succeeded);
  EXPECT_EQ(reg.get(kTsMain).size(), 1u);
}

TEST_F(ExecutorTest, BlockingGuardUnmatchedBlocks) {
  auto a = AgsBuilder().when(guardIn(kTsMain, makePattern("never"))).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.executed);
  EXPECT_EQ(reg.get(kTsMain).size(), 0u);
}

TEST_F(ExecutorTest, NonBlockingGuardUnmatchedFails) {
  auto a = AgsBuilder().when(guardInp(kTsMain, makePattern("never"))).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_FALSE(res.reply.succeeded);
  EXPECT_EQ(res.reply.branch, -1);
}

TEST_F(ExecutorTest, DisjunctionFirstSatisfiableBranchWins) {
  reg.get(kTsMain).put(makeTuple("b", 2));
  auto a = AgsBuilder()
               .when(guardInp(kTsMain, makePattern("a", fInt())))
               .then(opOut(kTsMain, makeTemplate("took", "a")))
               .orWhen(guardInp(kTsMain, makePattern("b", fInt())))
               .then(opOut(kTsMain, makeTemplate("took", "b")))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_EQ(res.reply.branch, 1);
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("took", "b")), 1u);
}

TEST_F(ExecutorTest, DisjunctionPrefersEarlierBranch) {
  reg.get(kTsMain).put(makeTuple("a", 1));
  reg.get(kTsMain).put(makeTuple("b", 2));
  auto a = AgsBuilder()
               .when(guardInp(kTsMain, makePattern("a", fInt())))
               .orWhen(guardInp(kTsMain, makePattern("b", fInt())))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_EQ(res.reply.branch, 0);
  // Branch 1's tuple untouched.
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("b", fInt())), 1u);
}

TEST_F(ExecutorTest, TrueFallbackBranch) {
  auto a = AgsBuilder()
               .when(guardInp(kTsMain, makePattern("missing")))
               .then(opOut(kTsMain, makeTemplate("found")))
               .orWhen(guardTrue())
               .then(opOut(kTsMain, makeTemplate("fallback")))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_EQ(res.reply.branch, 1);
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("fallback")), 1u);
}

TEST_F(ExecutorTest, BodyInpReportsStatus) {
  reg.get(kTsMain).put(makeTuple("hit"));
  auto a = AgsBuilder()
               .when(guardTrue())
               .then(opInp(kTsMain, makePatternTemplate("hit")))
               .then(opInp(kTsMain, makePatternTemplate("miss")))
               .then(opRdp(kTsMain, makePatternTemplate("hit")))  // already taken
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  ASSERT_EQ(res.reply.op_status.size(), 3u);
  EXPECT_TRUE(res.reply.op_status[0]);
  EXPECT_FALSE(res.reply.op_status[1]);
  EXPECT_FALSE(res.reply.op_status[2]);
}

TEST_F(ExecutorTest, MoveTransfersAllMatches) {
  const auto h = reg.create({true, true});
  for (int i = 0; i < 3; ++i) reg.get(kTsMain).put(makeTuple("r", i));
  reg.get(kTsMain).put(makeTuple("other"));
  auto a = AgsBuilder()
               .when(guardTrue())
               .then(opMove(kTsMain, h, makePatternTemplate("r", fInt())))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_EQ(reg.get(kTsMain).size(), 1u);
  EXPECT_EQ(reg.get(h).size(), 3u);
  // Order preserved oldest-first.
  EXPECT_EQ(reg.get(h).contents()[0], makeTuple("r", 0));
}

TEST_F(ExecutorTest, CopyKeepsSource) {
  const auto h = reg.create({true, true});
  reg.get(kTsMain).put(makeTuple("r", 1));
  auto a = AgsBuilder()
               .when(guardTrue())
               .then(opCopy(kTsMain, h, makePatternTemplate("r", fInt())))
               .build();
  tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_EQ(reg.get(kTsMain).size(), 1u);
  EXPECT_EQ(reg.get(h).size(), 1u);
}

TEST_F(ExecutorTest, MovePatternUsesGuardBindings) {
  const auto h = reg.create({true, true});
  reg.get(kTsMain).put(makeTuple("failure", 7));
  reg.get(kTsMain).put(makeTuple("in_progress", 7, 100));
  reg.get(kTsMain).put(makeTuple("in_progress", 8, 200));
  // The paper's failure-handler idiom: grab the failure tuple, sweep the
  // dead worker's in-progress tuples.
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern("failure", fInt())))
               .then(opMove(kTsMain, h, makePatternTemplate("in_progress", bound(0), fInt())))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_EQ(reg.get(h).size(), 1u);
  EXPECT_EQ(reg.get(h).contents()[0], makeTuple("in_progress", 7, 100));
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("in_progress", 8, fInt())), 1u);
}

TEST_F(ExecutorTest, CreateAndDestroyTsInBody) {
  auto a = AgsBuilder().when(guardTrue()).then(opCreateTs({true, true})).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_EQ(res.reply.created.size(), 1u);
  const auto h = res.reply.created[0];
  EXPECT_TRUE(reg.exists(h));
  auto d = AgsBuilder().when(guardTrue()).then(opDestroyTs(h)).build();
  tryExecuteAgs(d, reg, ExecMode::Replicated);
  EXPECT_FALSE(reg.exists(h));
}

TEST_F(ExecutorTest, LocalDepositCollectedNotApplied) {
  const TsHandle scratch = kLocalHandleBit | 42;
  reg.get(kTsMain).put(makeTuple("r", 5));
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern("r", fInt())))
               .then(opOut(scratch, makeTemplate("copy", bound(0))))
               .then(opMove(kTsMain, scratch, makePatternTemplate("r", fInt())))
               .build();
  reg.get(kTsMain).put(makeTuple("r", 6));  // for the move
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  ASSERT_EQ(res.reply.local_deposits.size(), 2u);
  EXPECT_EQ(res.reply.local_deposits[0].first, scratch);
  EXPECT_EQ(res.reply.local_deposits[0].second, makeTuple("copy", 5));
  EXPECT_EQ(res.reply.local_deposits[1].second, makeTuple("r", 6));
  EXPECT_EQ(reg.get(kTsMain).size(), 0u);
}

// ---- validation ----

TEST_F(ExecutorTest, UnknownHandleIsDeterministicError) {
  auto a = AgsBuilder().when(guardIn(12345, makePattern("x"))).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, LocalGuardInReplicatedModeRejected) {
  auto a = AgsBuilder().when(guardIn(kLocalHandleBit | 7, makePattern("x"))).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, ErrorLeavesStateUntouched) {
  reg.get(kTsMain).put(makeTuple("x", 1));
  // Guard is fine; second body op references an unknown handle — validation
  // must reject the whole statement before the guard consumes anything.
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern("x", fInt())))
               .then(opOut(kTsMain, makeTemplate("y")))
               .then(opInp(777, makePatternTemplate("z")))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  ASSERT_TRUE(res.executed);
  EXPECT_FALSE(res.reply.error.empty());
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("x", fInt())), 1u);
  EXPECT_EQ(reg.get(kTsMain).count(makePattern("y")), 0u);
}

TEST_F(ExecutorTest, TemplateRefBeyondGuardFormalsRejected) {
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern("x", fInt())))
               .then(opOut(kTsMain, makeTemplate(bound(1))))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, ArithOnStringFormalRejected) {
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern(tuple::fStr())))
               .then(opOut(kTsMain, makeTemplate(boundExpr(0, ArithOp::Add, 1))))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, ArithOperandTypeMismatchRejected) {
  auto a = AgsBuilder()
               .when(guardIn(kTsMain, makePattern(fInt())))
               .then(opOut(kTsMain, makeTemplate(boundExpr(0, ArithOp::Add, 1.5))))
               .build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, VolatileCreateInReplicatedModeRejected) {
  auto a = AgsBuilder().when(guardTrue()).then(opCreateTs({false, false})).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, DestroyMainRejected) {
  auto a = AgsBuilder().when(guardTrue()).then(opDestroyTs(kTsMain)).build();
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
  EXPECT_TRUE(reg.exists(kTsMain));
}

TEST_F(ExecutorTest, EmptyAgsRejected) {
  Ags a;
  auto res = tryExecuteAgs(a, reg, ExecMode::Replicated);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, LocalModeRequiresLocalHandles) {
  TsRegistry local(false, kLocalHandleBit);
  const auto h = local.create({false, false});
  // A stable handle inside a Local-mode AGS is unknown there.
  auto bad = AgsBuilder().when(guardIn(kTsMain, makePattern("x"))).build();
  auto res = tryExecuteAgs(bad, local, ExecMode::Local);
  EXPECT_FALSE(res.reply.error.empty());
  // All-local works, including blocking decision.
  local.get(h).put(makeTuple("x", 3));
  auto good = AgsBuilder().when(guardIn(h, makePattern("x", fInt()))).build();
  auto res2 = tryExecuteAgs(good, local, ExecMode::Local);
  ASSERT_TRUE(res2.executed);
  EXPECT_EQ(res2.reply.bindings[0].asInt(), 3);
}

TEST_F(ExecutorTest, StableCreateInLocalModeRejected) {
  TsRegistry local(false, kLocalHandleBit);
  auto a = AgsBuilder().when(guardTrue()).then(opCreateTs({true, true})).build();
  auto res = tryExecuteAgs(a, local, ExecMode::Local);
  EXPECT_FALSE(res.reply.error.empty());
}

TEST_F(ExecutorTest, DeterministicAcrossReplicas) {
  // Two registries fed the same AGS sequence end byte-identical, including
  // created handles and the strong inp verdicts.
  TsRegistry a(true), b(true);
  auto run = [](TsRegistry& reg) {
    std::vector<std::int32_t> branches;
    for (int i = 0; i < 50; ++i) {
      auto ags =
          AgsBuilder()
              .when(guardInp(kTsMain, makePattern("t", fInt())))
              .then(opOut(kTsMain, makeTemplate("seen", bound(0))))
              .orWhen(guardTrue())
              .then(opOut(kTsMain, makeTemplate("t", i)))
              .build();
      branches.push_back(tryExecuteAgs(ags, reg, ExecMode::Replicated).reply.branch);
    }
    return branches;
  };
  EXPECT_EQ(run(a), run(b));
  Writer wa, wb;
  a.encode(wa);
  b.encode(wb);
  EXPECT_EQ(wa.buffer(), wb.buffer());
}

}  // namespace
}  // namespace ftl::ftlinda

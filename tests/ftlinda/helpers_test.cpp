// FailureMonitor and StableCheckpoint helper libraries.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ftlinda/checkpoint.hpp"
#include "ftlinda/failure_monitor.hpp"
#include "ftlinda/system.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

TEST(FailureMonitorHelper, RegeneratesMarkersOfDeadHost) {
  FtLindaSystem sys({.hosts = 3});
  auto& rt = sys.runtime(0);
  // Host 2 claims two tasks then dies.
  for (int i = 0; i < 2; ++i) {
    requireReply(sys.runtime(2).tryExecute(
        AgsBuilder()
            .when(guardTrue())
            .then(opOut(kTsMain, makeTemplate("in_progress", 2, i, i * 100)))
            .build()));
  }
  std::atomic<int> handled_host{-1};
  std::atomic<int> regen_count{-1};
  FailureMonitor monitor(
      rt, kTsMain,
      FailureMonitor::RegenRule{"in_progress", {ValueType::Int, ValueType::Int}, "subtask"},
      [&](net::HostId h, int n) {
        handled_host = static_cast<int>(h);
        regen_count = n;
      });
  std::thread mon([&] {
    try {
      monitor.run();
    } catch (const ProcessorFailure&) {
    }
  });
  // Give the monitor time to register before the crash.
  std::this_thread::sleep_for(Millis{50});
  sys.crash(2);
  const auto deadline = Clock::now() + Millis{8000};
  while (regen_count.load() < 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(Millis{2});
  }
  EXPECT_EQ(handled_host.load(), 2);
  EXPECT_EQ(regen_count.load(), 2);
  // The regenerated subtasks carry the marker payloads.
  EXPECT_TRUE(rt.rdp(kTsMain, makePattern("subtask", 0, 0)).has_value());
  EXPECT_TRUE(rt.rdp(kTsMain, makePattern("subtask", 1, 100)).has_value());
  // No markers remain.
  EXPECT_EQ(rt.rdp(kTsMain, makePattern("in_progress", fInt(), fInt(), fInt())), std::nullopt);
  sys.crash(0);  // release the monitor
  mon.join();
}

TEST(FailureMonitorHelper, HandleOneReturnsFailedHost) {
  FtLindaSystem sys({.hosts = 3, .monitor_main = true});
  FailureMonitor monitor(sys.runtime(0), kTsMain,
                         FailureMonitor::RegenRule{"m", {ValueType::Int}, "w"});
  sys.crash(1);
  EXPECT_EQ(monitor.handleOne(), 1u);
}

TEST(CheckpointHelper, SaveLoadRoundTrip) {
  FtLindaSystem sys({.hosts = 2});
  StableCheckpoint cp(sys.runtime(0), kTsMain, "worker-state");
  EXPECT_EQ(cp.load(), std::nullopt);
  EXPECT_EQ(cp.save(Bytes{1, 2, 3}), 0);
  auto s = cp.load();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->version, 0);
  EXPECT_EQ(s->state, (Bytes{1, 2, 3}));
}

TEST(CheckpointHelper, SaveReplacesAtomically) {
  FtLindaSystem sys({.hosts = 2});
  StableCheckpoint cp(sys.runtime(0), kTsMain, "k");
  cp.save(Bytes{1});
  EXPECT_EQ(cp.save(Bytes{2}), 1);
  EXPECT_EQ(cp.save(Bytes{3}), 2);
  auto s = cp.load();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->version, 2);
  EXPECT_EQ(s->state, Bytes{3});
  // Exactly one checkpoint tuple exists.
  EXPECT_EQ(sys.stateMachine(0).tupleCount(kTsMain), 1u);
}

TEST(CheckpointHelper, IndependentKeys) {
  FtLindaSystem sys({.hosts = 2});
  StableCheckpoint a(sys.runtime(0), kTsMain, "a");
  StableCheckpoint b(sys.runtime(1), kTsMain, "b");
  a.save(Bytes{10});
  b.save(Bytes{20});
  EXPECT_EQ(a.load()->state, Bytes{10});
  EXPECT_EQ(b.load()->state, Bytes{20});
}

TEST(CheckpointHelper, SurvivesSaverCrashAndResumes) {
  // The paper's checkpoint/recovery story end-to-end: a process saves its
  // progress, its processor dies, the restarted incarnation resumes from
  // the last checkpoint.
  FtLindaSystem sys({.hosts = 3});
  {
    StableCheckpoint cp(sys.runtime(2), kTsMain, "job");
    Writer w;
    w.i64(7);  // "finished 7 of 10 steps"
    cp.save(w.take());
  }
  sys.crash(2);
  ASSERT_TRUE(sys.recover(2));
  StableCheckpoint cp2(sys.runtime(2), kTsMain, "job");
  auto s = cp2.load();
  ASSERT_TRUE(s.has_value());
  Reader r(s->state);
  EXPECT_EQ(r.i64(), 7);
  // And the resumed process can continue the version chain.
  Writer w2;
  w2.i64(10);
  EXPECT_EQ(cp2.save(w2.take()), 1);
}

TEST(CheckpointHelper, ClearRemoves) {
  FtLindaSystem sys({.hosts = 1});
  StableCheckpoint cp(sys.runtime(0), kTsMain, "x");
  EXPECT_FALSE(cp.clear());
  cp.save(Bytes{1});
  EXPECT_TRUE(cp.clear());
  EXPECT_EQ(cp.load(), std::nullopt);
}

TEST(CheckpointHelper, RejectsLocalSpace) {
  FtLindaSystem sys({.hosts = 1});
  const TsHandle scratch = sys.runtime(0).createScratch();
  EXPECT_THROW(StableCheckpoint(sys.runtime(0), scratch, "x"), ContractViolation);
}

TEST(CheckpointHelper, ConcurrentSaversVersionChainIntact) {
  FtLindaSystem sys({.hosts = 3});
  constexpr int kPerHost = 15;
  for (net::HostId h = 0; h < 3; ++h) {
    sys.spawnProcess(h, [](Runtime& rt) {
      StableCheckpoint cp(rt, kTsMain, "shared");
      for (int i = 0; i < kPerHost; ++i) cp.save(Bytes{static_cast<std::uint8_t>(i)});
    });
  }
  sys.joinProcesses();
  StableCheckpoint cp(sys.runtime(0), kTsMain, "shared");
  auto s = cp.load();
  ASSERT_TRUE(s.has_value());
  // 45 saves total; the first created version 0, so the last is 44.
  EXPECT_EQ(s->version, 3 * kPerHost - 1);
  EXPECT_EQ(sys.stateMachine(0).tupleCount(kTsMain), 1u);
}

}  // namespace
}  // namespace ftl::ftlinda

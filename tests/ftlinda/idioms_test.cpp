// Classic Linda coordination idioms (Gelernter, "Generative communication
// in Linda", 1985 — the base language FT-Linda extends), expressed on the
// FT-Linda runtime. Each idiom is exercised end-to-end on a live system.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ftlinda/system.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;
using tuple::makeTuple;

TEST(LindaIdioms, SemaphoreMutualExclusion) {
  // A semaphore is a token tuple: P = in, V = out. At most one process can
  // hold the token, so increments of an unprotected counter never race.
  FtLindaSystem sys({.hosts = 3});
  sys.runtime(0).out(kTsMain, makeTuple("sem"));
  std::atomic<int> in_section{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> total{0};
  for (net::HostId h = 0; h < 3; ++h) {
    sys.spawnProcess(h, [&](Runtime& rt) {
      for (int i = 0; i < 10; ++i) {
        rt.in(kTsMain, makePattern("sem"));  // P
        const int now = in_section.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        total.fetch_add(1);
        in_section.fetch_sub(1);
        rt.out(kTsMain, makeTuple("sem"));  // V
      }
    });
  }
  sys.joinProcesses();
  EXPECT_EQ(total.load(), 30);
  EXPECT_EQ(max_seen.load(), 1) << "mutual exclusion violated";
}

TEST(LindaIdioms, BarrierAllArriveBeforeAnyProceeds) {
  // Counting barrier: each arrival atomically decrements ("barrier", n);
  // processes proceed by rd-ing ("barrier", 0).
  constexpr int kN = 4;
  FtLindaSystem sys({.hosts = kN});
  sys.runtime(0).out(kTsMain, makeTuple("barrier", kN));
  std::atomic<int> arrived{0};
  std::atomic<int> proceeded{0};
  std::atomic<bool> order_ok{true};
  for (net::HostId h = 0; h < kN; ++h) {
    sys.spawnProcess(h, [&](Runtime& rt) {
      arrived.fetch_add(1);
      requireReply(rt.tryExecute(AgsBuilder()
                     .when(guardIn(kTsMain, makePattern("barrier", fInt())))
                     .then(opOut(kTsMain,
                                 makeTemplate("barrier", boundExpr(0, ArithOp::Sub, 1))))
                     .build()));
      rt.rd(kTsMain, makePattern("barrier", 0));
      if (arrived.load() != kN) order_ok.store(false);
      proceeded.fetch_add(1);
    });
  }
  sys.joinProcesses();
  EXPECT_EQ(proceeded.load(), kN);
  EXPECT_TRUE(order_ok.load()) << "a process passed the barrier before all arrived";
}

TEST(LindaIdioms, OrderedStreamViaIndexTuples) {
  // An ordered stream: producer tags elements with an index; the consumer
  // ins them by explicit index — order is data, not time.
  FtLindaSystem sys({.hosts = 2});
  constexpr int kLen = 25;
  sys.spawnProcess(0, [](Runtime& rt) {
    // Produce deliberately out of order.
    for (int i = kLen - 1; i >= 0; --i) {
      rt.out(kTsMain, makeTuple("stream", i, i * i));
    }
  });
  std::vector<std::int64_t> received;
  sys.spawnProcess(1, [&](Runtime& rt) {
    for (int i = 0; i < kLen; ++i) {
      const Tuple t = rt.in(kTsMain, makePattern("stream", i, fInt()));
      received.push_back(t.field(2).asInt());
    }
  });
  sys.joinProcesses();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kLen));
  for (int i = 0; i < kLen; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i * i);
}

TEST(LindaIdioms, PingPongAlternation) {
  // Two processes strictly alternate by exchanging a named token.
  FtLindaSystem sys({.hosts = 2});
  constexpr int kRounds = 15;
  std::vector<std::string> trace;
  std::mutex trace_m;
  auto player = [&](Runtime& rt, const std::string& mine, const std::string& other) {
    for (int i = 0; i < kRounds; ++i) {
      rt.in(kTsMain, makePattern(mine));
      {
        std::lock_guard<std::mutex> lock(trace_m);
        trace.push_back(mine);
      }
      rt.out(kTsMain, makeTuple(other));
    }
  };
  sys.spawnProcess(0, [&](Runtime& rt) { player(rt, "ping", "pong"); });
  sys.spawnProcess(1, [&](Runtime& rt) { player(rt, "pong", "ping"); });
  sys.runtime(0).out(kTsMain, makeTuple("ping"));  // serve
  sys.joinProcesses();
  ASSERT_EQ(trace.size(), 2u * kRounds);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], (i % 2 == 0) ? "ping" : "pong") << "at step " << i;
  }
}

TEST(LindaIdioms, MasterWorkerResultCollection) {
  // The 1985 paper's master/worker: master deposits jobs and collects
  // tagged results; workers are anonymous and interchangeable.
  constexpr int kJobs = 20;
  FtLindaSystem sys({.hosts = 3});
  for (int i = 0; i < kJobs; ++i) sys.runtime(0).out(kTsMain, makeTuple("job", i));
  for (net::HostId h = 1; h < 3; ++h) {
    sys.spawnProcess(h, [](Runtime& rt) {
      while (auto job = rt.inp(kTsMain, makePattern("job", fInt()))) {
        const std::int64_t id = job->field(1).asInt();
        rt.out(kTsMain, makeTuple("answer", id, id * 3));
      }
    });
  }
  auto& master = sys.runtime(0);
  std::int64_t sum = 0;
  for (int i = 0; i < kJobs; ++i) {
    sum += master.in(kTsMain, makePattern("answer", i, fInt())).field(2).asInt();
  }
  sys.joinProcesses();
  EXPECT_EQ(sum, 3 * (kJobs - 1) * kJobs / 2);
}

TEST(LindaIdioms, ReadersDoNotConsume) {
  // Many concurrent rd-ers of one configuration tuple never interfere.
  FtLindaSystem sys({.hosts = 3});
  sys.runtime(0).out(kTsMain, makeTuple("config", "threshold", 99));
  std::atomic<int> reads{0};
  for (net::HostId h = 0; h < 3; ++h) {
    sys.spawnProcess(h, [&](Runtime& rt) {
      for (int i = 0; i < 10; ++i) {
        const Tuple t = rt.rd(kTsMain, makePattern("config", fStr(), fInt()));
        if (t.field(2).asInt() == 99) reads.fetch_add(1);
      }
    });
  }
  sys.joinProcesses();
  EXPECT_EQ(reads.load(), 30);
  EXPECT_EQ(sys.stateMachine(0).tupleCount(kTsMain), 1u);
}

TEST(LindaIdioms, DistributedArrayUpdate) {
  // An "array in tuple space": elements ("A", index, value); an atomic
  // element update is one AGS.
  FtLindaSystem sys({.hosts = 2});
  auto& rt = sys.runtime(0);
  for (int i = 0; i < 8; ++i) rt.out(kTsMain, makeTuple("A", i, 0));
  // Both hosts add 1 to every element, concurrently.
  for (net::HostId h = 0; h < 2; ++h) {
    sys.spawnProcess(h, [](Runtime& r) {
      for (int i = 0; i < 8; ++i) {
        requireReply(r.tryExecute(AgsBuilder()
                      .when(guardIn(kTsMain, makePattern("A", i, fInt())))
                      .then(opOut(kTsMain,
                                  makeTemplate("A", i, boundExpr(0, ArithOp::Add, 1))))
                      .build()));
      }
    });
  }
  sys.joinProcesses();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sys.runtime(1).rd(kTsMain, makePattern("A", i, fInt())).field(2).asInt(), 2);
  }
}

}  // namespace
}  // namespace ftl::ftlinda

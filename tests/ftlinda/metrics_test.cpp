// TS state-machine metrics: deterministic counters over the ordered stream.
#include <gtest/gtest.h>

#include <thread>

#include "ftlinda/system.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

TEST(Metrics, CountsExecutedStatementsAndOps) {
  FtLindaSystem sys({.hosts = 2});
  auto& rt = sys.runtime(0);
  rt.out(kTsMain, makeTuple("a", 1));                         // 1 exec, 1 out
  rt.in(kTsMain, makePattern("a", fInt()));                   // 1 exec, 1 in-guard
  EXPECT_EQ(rt.inp(kTsMain, makePattern("a", fInt())), std::nullopt);  // 1 failed
  const auto m = sys.stateMachine(0).metrics();
  EXPECT_EQ(m.ags_executed, 2u);
  EXPECT_EQ(m.ags_failed, 1u);
  EXPECT_EQ(m.ops_out, 1u);
  EXPECT_EQ(m.guards_in, 1u);
  EXPECT_EQ(m.ags_errors, 0u);
}

TEST(Metrics, CountsBlockedAndWoken) {
  FtLindaSystem sys({.hosts = 2});
  std::thread waiter([&] { sys.runtime(1).in(kTsMain, makePattern("later")); });
  std::this_thread::sleep_for(Millis{40});
  EXPECT_EQ(sys.stateMachine(0).metrics().ags_blocked, 1u);
  sys.runtime(0).out(kTsMain, makeTuple("later"));
  waiter.join();
  const auto m = sys.stateMachine(0).metrics();
  EXPECT_EQ(m.ags_woken, 1u);
  EXPECT_EQ(m.ags_executed, 2u);  // the out and the woken in
}

TEST(Metrics, CountsErrors) {
  FtLindaSystem sys({.hosts = 1});
  EXPECT_THROW(sys.runtime(0).rdp(999, makePattern("x")), Error);
  EXPECT_EQ(sys.stateMachine(0).metrics().ags_errors, 1u);
}

TEST(Metrics, CountsFailureTuplesAndCancellations) {
  FtLindaSystem sys({.hosts = 3, .monitor_main = true});
  std::thread doomed([&] {
    try {
      sys.runtime(2).in(kTsMain, makePattern("never"));
    } catch (const ProcessorFailure&) {
    }
  });
  std::this_thread::sleep_for(Millis{40});
  sys.crash(2);
  doomed.join();
  const auto deadline = Clock::now() + Millis{8000};
  while (sys.stateMachine(0).metrics().failure_tuples == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(Millis{2});
  }
  const auto m = sys.stateMachine(0).metrics();
  EXPECT_EQ(m.failure_tuples, 1u);
  EXPECT_EQ(m.cancelled_blocked, 1u);
}

TEST(Metrics, IdenticalAcrossReplicas) {
  FtLindaSystem sys({.hosts = 3});
  for (int i = 0; i < 20; ++i) {
    sys.runtime(static_cast<net::HostId>(i % 3)).out(kTsMain, makeTuple("t", i));
  }
  for (int i = 0; i < 10; ++i) {
    sys.runtime(1).inp(kTsMain, makePattern("t", fInt()));
  }
  // Allow trailing applies to land everywhere.
  const auto deadline = Clock::now() + Millis{5000};
  auto same = [&] {
    const auto a = sys.stateMachine(0).metrics();
    const auto b = sys.stateMachine(2).metrics();
    return a.ags_executed == b.ags_executed && a.ops_out == b.ops_out &&
           a.guards_in == b.guards_in;
  };
  while (!same() && Clock::now() < deadline) std::this_thread::sleep_for(Millis{2});
  EXPECT_TRUE(same());
  EXPECT_EQ(sys.stateMachine(0).metrics().ops_out, 20u);
}

}  // namespace
}  // namespace ftl::ftlinda

// Observability through the full stack: one trace id follows an AGS from
// submission through ordering, apply and wake; registry counters and
// subsystem sources show up in the export; the tuple-server stats RPC
// round-trips a metrics snapshot (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ftlinda/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::makePattern;
using tuple::makeTuple;

// Tracing is process-global: scope it tightly and always clean up.
class ObsIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::trace::disable();
    obs::trace::clear();
  }
  void TearDown() override {
    obs::trace::disable();
    obs::trace::clear();
  }
};

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST_F(ObsIntegration, AgsLifecycleSpansShareOneTraceId) {
  obs::trace::enable();
  std::string json;
  {
    FtLindaSystem sys({.hosts = 2});
    sys.runtime(0).out(kTsMain, makeTuple("traced", 1));
    sys.runtime(0).in(kTsMain, makePattern("traced", fInt()));
    // Quiesce before walking other threads' rings.
  }
  obs::trace::disable();
  json = obs::trace::chromeJson();
  // The full lifecycle: submit span, ordering flow, apply on the origin
  // replica, verify pass, reply marker.
  EXPECT_TRUE(contains(json, "\"name\":\"ags\"")) << json;
  EXPECT_TRUE(contains(json, "\"name\":\"ags.order\""));
  EXPECT_TRUE(contains(json, "\"name\":\"ags.apply\""));
  EXPECT_TRUE(contains(json, "\"name\":\"ags.verify\""));
  EXPECT_TRUE(contains(json, "\"name\":\"ags.reply\""));
  EXPECT_TRUE(contains(json, "\"name\":\"sm.apply_batch\""));
  // Consul service threads labeled their tracks.
  EXPECT_TRUE(contains(json, "\"name\":\"consul/0\""));
}

TEST_F(ObsIntegration, BlockedAgsEmitsWakeMarker) {
  obs::trace::enable();
  {
    FtLindaSystem sys({.hosts = 2});
    std::atomic<bool> got{false};
    std::thread waiter([&] {
      sys.runtime(0).in(kTsMain, makePattern("later", fInt()));
      got = true;
    });
    while (sys.stateMachine(0).blockedCount() == 0) std::this_thread::sleep_for(Millis{1});
    sys.runtime(1).out(kTsMain, makeTuple("later", 3));
    waiter.join();
    EXPECT_TRUE(got.load());
  }
  obs::trace::disable();
  EXPECT_TRUE(contains(obs::trace::chromeJson(), "\"name\":\"ags.wake\""));
}

TEST(ObsIntegrationMetrics, RuntimeCountersAndSourcesExport) {
  const std::uint64_t submitted_before = obs::counter("ftl_ags_submitted").value();
  FtLindaSystem sys({.hosts = 2});
  sys.runtime(0).out(kTsMain, makeTuple("m", 1));
  sys.runtime(1).in(kTsMain, makePattern("m", fInt()));
  EXPECT_GE(obs::counter("ftl_ags_submitted").value(), submitted_before + 2);

  // Sources registered by the live system appear in the export with their
  // per-instance labels.
  const std::string prom = obs::dumpPrometheus();
  EXPECT_TRUE(contains(prom, "ftl_sm_ags_executed{host=\"0\"}"));
  EXPECT_TRUE(contains(prom, "ftl_sm_ags_executed{host=\"1\"}"));
  EXPECT_TRUE(contains(prom, "ftl_consul_broadcasts{host=\"0\"}"));
  EXPECT_TRUE(contains(prom, "ftl_net_messages_sent{net="));
  EXPECT_TRUE(contains(prom, "ftl_sm_tuples{host=\"0\",ts=\""));
}

TEST(ObsIntegrationMetrics, SourcesUnregisterOnTeardown) {
  {
    FtLindaSystem sys({.hosts = 2});
    EXPECT_TRUE(contains(obs::dumpPrometheus(), "ftl_consul_broadcasts{host=\"1\"}"));
  }
  // After teardown the per-instance source series are gone again (no dangling
  // source callbacks; a new dump must not touch destroyed state).
  std::string after = obs::dumpPrometheus();
  EXPECT_FALSE(contains(after, "ftl_sm_blocked_now"));
  EXPECT_FALSE(contains(after, "ftl_consul_pending"));
}

TEST(ObsIntegrationMetrics, StatsRpcRoundTrip) {
  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.replica_hosts = 2;
  FtLindaSystem sys(cfg);
  sys.remoteRuntime(2).out(kTsMain, makeTuple("via_rpc", 1));
  const std::string json = sys.remoteRuntime(2).serverStatsJson();
  // A well-formed obs::dumpJson() snapshot of the SERVER process.
  EXPECT_TRUE(contains(json, "\"counters\""));
  EXPECT_TRUE(contains(json, "\"sources\""));
  EXPECT_TRUE(contains(json, "ftl_rpc_requests"));
  EXPECT_TRUE(contains(json, "ftl_rpc_stats_requests"));
}

}  // namespace
}  // namespace ftl::ftlinda

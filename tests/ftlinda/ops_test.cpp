#include "ftlinda/ops.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace ftl::ftlinda {
namespace {

using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;

Ags roundTrip(const Ags& a) {
  Writer w;
  a.encode(w);
  Reader r(w.buffer());
  return Ags::decode(r);
}

Bytes encodeAgs(const Ags& a) {
  Writer w;
  a.encode(w);
  return w.take();
}

TEST(Ops, TemplateFieldLiteralEval) {
  const auto t = makeTemplate("x", 7, 2.5);
  const Tuple out = t.eval({});
  EXPECT_EQ(out, tuple::makeTuple("x", 7, 2.5));
}

TEST(Ops, TemplateFieldBoundRefEval) {
  const auto t = makeTemplate("got", bound(0), bound(1));
  const Tuple out = t.eval({Value(9), Value("abc")});
  EXPECT_EQ(out, tuple::makeTuple("got", 9, "abc"));
}

TEST(Ops, TemplateExprArithmetic) {
  const auto t = makeTemplate(boundExpr(0, ArithOp::Add, 1), boundExpr(0, ArithOp::Sub, 2),
                              boundExpr(0, ArithOp::Mul, 3));
  const Tuple out = t.eval({Value(10)});
  EXPECT_EQ(out.field(0).asInt(), 11);
  EXPECT_EQ(out.field(1).asInt(), 8);
  EXPECT_EQ(out.field(2).asInt(), 30);
}

TEST(Ops, TemplateExprRealArithmetic) {
  const auto t = makeTemplate(boundExpr(0, ArithOp::Mul, 0.5));
  EXPECT_DOUBLE_EQ(t.eval({Value(3.0)}).field(0).asReal(), 1.5);
}

TEST(Ops, TemplateUnboundRefThrows) {
  const auto t = makeTemplate(bound(2));
  EXPECT_THROW(t.eval({Value(1)}), Error);
}

TEST(Ops, TemplateExprTypeMismatchThrows) {
  const auto t = makeTemplate(boundExpr(0, ArithOp::Add, 1));
  EXPECT_THROW(t.eval({Value("str")}), Error);
  EXPECT_THROW(t.eval({Value(1.5)}), Error);  // int literal vs real binding
}

TEST(Ops, MaxFormalRef) {
  EXPECT_EQ(makeTemplate("a", 1).maxFormalRef(), 0u);
  EXPECT_EQ(makeTemplate(bound(0), bound(3)).maxFormalRef(), 4u);
}

TEST(Ops, PatternTemplateResolvesBoundRefs) {
  const auto pt = makePatternTemplate("in_progress", bound(0), fInt());
  const Pattern p = pt.resolve({Value(42)});
  EXPECT_TRUE(p.matches(tuple::makeTuple("in_progress", 42, 7)));
  EXPECT_FALSE(p.matches(tuple::makeTuple("in_progress", 43, 7)));
}

TEST(Ops, PatternTemplateEncodeDecode) {
  const auto pt = makePatternTemplate("x", bound(1), fStr(), 3.5);
  Writer w;
  pt.encode(w);
  Reader r(w.buffer());
  const auto pt2 = PatternTemplate::decode(r);
  const auto bindings = std::vector<Value>{Value(0), Value(7)};
  EXPECT_TRUE(pt2.resolve(bindings).matches(tuple::makeTuple("x", 7, "s", 3.5)));
}

TEST(Ops, GuardKinds) {
  EXPECT_FALSE(guardTrue().blocking());
  EXPECT_TRUE(guardIn(1, makePattern("a")).blocking());
  EXPECT_TRUE(guardRd(1, makePattern("a")).blocking());
  EXPECT_FALSE(guardInp(1, makePattern("a")).blocking());
  EXPECT_FALSE(guardRdp(1, makePattern("a")).blocking());
  EXPECT_TRUE(guardIn(1, makePattern("a")).destructive());
  EXPECT_FALSE(guardRd(1, makePattern("a")).destructive());
}

TEST(Ops, AgsBlockingIfAnyBranchBlocks) {
  Ags a = AgsBuilder()
              .when(guardInp(1, makePattern("a")))
              .orWhen(guardIn(1, makePattern("b")))
              .build();
  EXPECT_TRUE(a.blocking());
  Ags b = AgsBuilder().when(guardInp(1, makePattern("a"))).build();
  EXPECT_FALSE(b.blocking());
}

TEST(Ops, BuilderThenBeforeWhenThrows) {
  AgsBuilder b;
  EXPECT_THROW(b.then(opOut(1, makeTemplate("x"))), ContractViolation);
  AgsBuilder empty;
  EXPECT_THROW(empty.build(), ContractViolation);
}

TEST(Ops, AgsEncodeDecodeRoundTrip) {
  Ags a = AgsBuilder()
              .when(guardIn(1, makePattern("task", fInt())))
              .then(opOut(1, makeTemplate("in_progress", bound(0), 5)))
              .then(opMove(1, 2, makePatternTemplate("log", bound(0))))
              .orWhen(guardRdp(3, makePattern("done")))
              .then(opCreateTs(TsAttributes{true, true}))
              .then(opDestroyTs(3))
              .then(opInp(1, makePatternTemplate("x", fInt())))
              .then(opRdp(1, makePatternTemplate("y")))
              .then(opCopy(1, 2, makePatternTemplate(fStr())))
              .orWhen(guardTrue())
              .then(opOut(2, makeTemplate(boundExpr(0, ArithOp::Add, 0))))
              .build();
  EXPECT_EQ(encodeAgs(roundTrip(a)), encodeAgs(a));
}

TEST(Ops, EncodingDeterministic) {
  auto build = [] {
    return AgsBuilder()
        .when(guardIn(ts::kTsMain, makePattern("count", fInt())))
        .then(opOut(ts::kTsMain, makeTemplate("count", boundExpr(0, ArithOp::Add, 1))))
        .build();
  };
  EXPECT_EQ(encodeAgs(build()), encodeAgs(build()));
}

TEST(Ops, ToStringMentionsDisjunction) {
  Ags a = AgsBuilder()
              .when(guardIn(1, makePattern("a")))
              .orWhen(guardTrue())
              .build();
  const auto s = a.toString();
  EXPECT_NE(s.find("or"), std::string::npos);
  EXPECT_NE(s.find("in"), std::string::npos);
}

}  // namespace
}  // namespace ftl::ftlinda

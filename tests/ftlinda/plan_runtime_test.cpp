// Storage plans through the full replicated stack: SystemConfig::plan must
// reach every replica's state machine (including ones rebuilt by recovery),
// the specialized paths must fire (ftl_plan_* counters), and — the critical
// property — a WRONG plan may cost performance but never liveness or
// correctness: the state machine detects the violated no-blocking promise
// and falls back to unfiltered wakes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ftlinda/analyze.hpp"
#include "ftlinda/system.hpp"
#include "obs/metrics.hpp"
#include "ts/plan.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::fReal;
using tuple::makePattern;
using tuple::makeTuple;
using tuple::signatureOf;

/// The plan the analyzer would emit for the workload below: ("cfg", real)
/// is a read-mostly distributed variable nothing blocks on; ("job", int) is
/// a FIFO queue with blocking consumers. The two classes deliberately have
/// DIFFERENT signatures: the wake filter is keyed by signature, so a
/// no-blocking class sharing a signature with a blocking one gets no skips.
std::shared_ptr<const ts::StoragePlan> workloadPlan() {
  auto plan = std::make_shared<ts::StoragePlan>();
  ts::PlanEntry cfg;
  cfg.paradigm = ts::Paradigm::DistributedVariable;
  cfg.read_mostly = true;
  cfg.no_blocking_consumers = true;
  plan->add(signatureOf(makeTuple("cfg", 0.5)), "cfg", cfg);
  ts::PlanEntry job;
  job.paradigm = ts::Paradigm::Queue;
  job.fifo = true;
  plan->add(signatureOf(makeTuple("job", 0)), "job", job);
  return plan;
}

TEST(PlanRuntime, PlannedSystemMatchesUnplannedBehavior) {
  const auto run = [](std::shared_ptr<const ts::StoragePlan> plan) {
    SystemConfig cfg;
    cfg.hosts = 2;
    cfg.plan = std::move(plan);
    FtLindaSystem sys(cfg);
    auto& rt = sys.runtime(0);
    for (int i = 0; i < 6; ++i) rt.out(kTsMain, makeTuple("job", i));
    rt.out(kTsMain, makeTuple("cfg", 99.0));
    std::vector<std::int64_t> got;
    for (int i = 0; i < 6; ++i) {
      got.push_back(rt.in(kTsMain, makePattern("job", fInt())).field(1).asInt());
    }
    got.push_back(
        static_cast<std::int64_t>(rt.rd(kTsMain, makePattern("cfg", fReal())).field(1).asReal()));
    return got;
  };
  EXPECT_EQ(run(workloadPlan()), run(nullptr));
}

TEST(PlanRuntime, SpecializedPathCountersFire) {
  obs::Counter& ring = obs::counter("ftl_plan_ring_chains");
  obs::Counter& hits = obs::counter("ftl_plan_read_cache_hit");
  const std::uint64_t ring0 = ring.value();
  const std::uint64_t hits0 = hits.value();

  SystemConfig cfg;
  cfg.hosts = 2;
  cfg.plan = workloadPlan();
  FtLindaSystem sys(cfg);
  auto& rt = sys.runtime(0);
  rt.out(kTsMain, makeTuple("job", 1));   // ring chain created on 2 replicas
  rt.out(kTsMain, makeTuple("cfg", 7.0));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rt.rd(kTsMain, makePattern("cfg", fReal())).field(1).asReal(), 7.0);
  }
  EXPECT_GT(ring.value(), ring0);
  EXPECT_GT(hits.value(), hits0);
}

TEST(PlanRuntime, WakeSkipFiresForNonBlockingClasses) {
  obs::Counter& skips = obs::counter("ftl_plan_wake_skip");
  const std::uint64_t skips0 = skips.value();

  SystemConfig cfg;
  cfg.hosts = 2;
  cfg.plan = workloadPlan();
  FtLindaSystem sys(cfg);
  // Block a process on the queue class, then deposit into the no-blocking
  // "cfg" class: the deposit must skip the wait-index probe (counted),
  // while a "job" deposit must still wake the blocked in.
  sys.spawnProcess(0, [](Runtime& rt) {
    rt.in(kTsMain, makePattern("job", fInt()));
  });
  auto& rt1 = sys.runtime(1);
  for (int i = 0; i < 4; ++i) rt1.out(kTsMain, makeTuple("cfg", i + 0.5));
  rt1.out(kTsMain, makeTuple("job", 5));
  sys.joinProcesses();  // deadlocks here (until test timeout) if wakes broke
  EXPECT_GT(skips.value(), skips0);
}

TEST(PlanRuntime, LyingPlanLosesOptimizationNotLiveness) {
  obs::Counter& violations = obs::counter("ftl_plan_violation");
  const std::uint64_t v0 = violations.value();

  // The plan falsely promises nothing ever blocks on ("job", int).
  auto lying = std::make_shared<ts::StoragePlan>();
  ts::PlanEntry e;
  e.no_blocking_consumers = true;
  lying->add(signatureOf(makeTuple("job", 0)), "job", e);

  SystemConfig cfg;
  cfg.hosts = 2;
  cfg.plan = lying;
  FtLindaSystem sys(cfg);
  sys.spawnProcess(0, [](Runtime& rt) {
    rt.in(kTsMain, makePattern("job", fInt()));  // violates the promise
  });
  // Give the blocking in time to register in the wait index, then deposit.
  // The state machine must have flagged the violation and disabled the
  // wake filter, so this deposit wakes the blocked process.
  auto& rt1 = sys.runtime(1);
  for (int i = 0; i < 50 && violations.value() == v0; ++i) {
    std::this_thread::sleep_for(Millis{10});
  }
  rt1.out(kTsMain, makeTuple("job", 1));
  sys.joinProcesses();  // hangs until the 300s test timeout on regression
  EXPECT_GT(violations.value(), v0);
}

TEST(PlanRuntime, AnalyzerPlanSurvivesCrashRecovery) {
  // End-to-end: plan text from the analyzer, loaded via loadPlanFile, still
  // attached after a replica crash + rejoin (recover() rebuilds the ctx).
  const auto analysis = analyzeProgram(parseProgramText(R"(
    < true => out TSmain ("cfg", 1) >
    < rd TSmain ("cfg", ?int) => skip >
  )"));
  ASSERT_TRUE(analysis.ok());
  const std::string path = "plan_runtime_test.plan";
  {
    std::ofstream out(path);
    out << analysis.plan.toText();
  }
  const auto plan = std::make_shared<ts::StoragePlan>(ts::loadPlanFile(path));
  std::remove(path.c_str());
  ASSERT_TRUE(plan->find(signatureOf(makeTuple("cfg", 0)), "cfg") != nullptr);
  EXPECT_TRUE(plan->find(signatureOf(makeTuple("cfg", 0)), "cfg")->read_mostly);

  SystemConfig cfg;
  cfg.hosts = 3;
  cfg.plan = plan;
  FtLindaSystem sys(cfg);
  sys.runtime(0).out(kTsMain, makeTuple("cfg", 42));
  sys.crash(2);
  ASSERT_TRUE(sys.recover(2));
  EXPECT_EQ(sys.runtime(2).rd(kTsMain, makePattern("cfg", fInt())).field(1).asInt(), 42);
}

}  // namespace
}  // namespace ftl::ftlinda

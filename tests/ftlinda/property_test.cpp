// Parameterized property tests over randomized workloads.
//
// P1 (determinism, DESIGN.md invariant 2): two TS state machines fed an
//    identical randomized stream of commands and membership events end with
//    byte-identical snapshots, and a third machine restored from a snapshot
//    mid-stream converges to the same bytes.
// P2 (conservation): tuple counts change exactly as the op semantics say —
//    no tuple appears or disappears except through an executed operation.
// P3 (executor totality): any generated AGS either executes, blocks, or
//    reports a deterministic error; it never corrupts the registry.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ftlinda/ts_state_machine.hpp"

namespace ftl::ftlinda {
namespace {

using ts::kTsMain;
using tuple::fInt;
using tuple::fStr;
using tuple::makePattern;

/// Random AGS generator: small vocabulary of names/values so guards hit
/// often enough to exercise every path.
class AgsGen {
 public:
  explicit AgsGen(std::uint64_t seed) : rng_(seed) {}

  Ags next() {
    AgsBuilder b;
    const int branches = 1 + static_cast<int>(rng_.below(2));
    for (int i = 0; i < branches; ++i) {
      b.when(randomGuard());
      const int ops = static_cast<int>(rng_.below(3));
      for (int j = 0; j < ops; ++j) addRandomOp(b);
    }
    return b.build();
  }

  std::uint64_t below(std::uint64_t n) { return rng_.below(n); }

 private:
  std::string name() { return std::string("n") + std::to_string(rng_.below(4)); }
  int value() { return static_cast<int>(rng_.below(4)); }

  Pattern randomPattern() {
    switch (rng_.below(3)) {
      case 0: return makePattern(name(), value());
      case 1: return makePattern(name(), fInt());
      default: return makePattern(fStr(), fInt());
    }
  }

  Guard randomGuard() {
    switch (rng_.below(5)) {
      case 0: return guardTrue();
      case 1: return guardInp(kTsMain, randomPattern());
      case 2: return guardRdp(kTsMain, randomPattern());
      case 3: return guardRd(kTsMain, randomPattern());
      default: return guardIn(kTsMain, randomPattern());
    }
  }

  void addRandomOp(AgsBuilder& b) {
    switch (rng_.below(3)) {
      case 0:
        b.then(opOut(kTsMain, makeTemplate(name(), value())));
        break;
      case 1:
        b.then(opInp(kTsMain, makePatternTemplate(name(), fInt())));
        break;
      default:
        b.then(opRdp(kTsMain, makePatternTemplate(name(), fInt())));
        break;
    }
  }

  Xoshiro256 rng_;
};

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkload, ReplicaDeterminismWithMidstreamRestore) {
  const std::uint64_t seed = GetParam();
  AgsGen gen(seed);
  TsStateMachine a, b, late;
  std::uint64_t gseq = 0;
  bool late_restored = false;
  for (int step = 0; step < 400; ++step) {
    if (gen.below(40) == 0) {
      // A membership event: host (step%3) "fails" — all machines see it at
      // the same point in the stream.
      const net::HostId failed = static_cast<net::HostId>(step % 3 + 10);
      ++gseq;
      a.onMembership(gseq, {}, {failed}, {});
      b.onMembership(gseq, {}, {failed}, {});
      if (late_restored) late.onMembership(gseq, {}, {failed}, {});
      continue;
    }
    rsm::ApplyContext ctx;
    ctx.gseq = ++gseq;
    ctx.origin = static_cast<net::HostId>(gen.below(3));
    ctx.origin_seq = gseq;
    const Bytes cmd = (gen.below(30) == 0)
                          ? makeMonitor(gseq, kTsMain, gen.below(2) == 0).encode()
                          : makeExecute(gseq, gen.next()).encode();
    a.apply(ctx, cmd);
    b.apply(ctx, cmd);
    if (late_restored) late.apply(ctx, cmd);
    if (step == 200) {
      late.restore(a.snapshot());  // a replica joining mid-stream
      late_restored = true;
    }
    if (step % 97 == 0) {
      ASSERT_EQ(a.snapshot(), b.snapshot()) << "diverged at step " << step;
    }
  }
  EXPECT_EQ(a.snapshot(), b.snapshot());
  EXPECT_EQ(late.snapshot(), a.snapshot());
}

TEST_P(RandomWorkload, TupleConservation) {
  const std::uint64_t seed = GetParam() ^ 0xabcdef;
  AgsGen gen(seed);
  ts::TsRegistry reg(true);
  for (int step = 0; step < 600; ++step) {
    const std::size_t before = reg.get(kTsMain).size();
    const Ags ags = gen.next();
    ExecResult res = tryExecuteAgs(ags, reg, ExecMode::Replicated);
    const std::size_t after = reg.get(kTsMain).size();
    if (!res.executed || !res.reply.error.empty() || !res.reply.succeeded) {
      EXPECT_EQ(after, before) << "non-executing statement changed state at step " << step;
      continue;
    }
    // Accounting: guard In removes 1; each body Out adds 1; each body Inp
    // removes 1 when its status is true; Rd/Rdp never change counts.
    const Branch& br = ags.branches[static_cast<std::size_t>(res.reply.branch)];
    std::int64_t delta = 0;
    if (br.guard.kind == Guard::Kind::In || br.guard.kind == Guard::Kind::Inp) delta -= 1;
    if (br.guard.kind == Guard::Kind::Rd || br.guard.kind == Guard::Kind::Rdp ||
        br.guard.kind == Guard::Kind::True) {
      delta += 0;
    }
    for (std::size_t j = 0; j < br.body.size(); ++j) {
      if (br.body[j].op == OpCode::Out) delta += 1;
      if (br.body[j].op == OpCode::Inp && res.reply.op_status[j]) delta -= 1;
    }
    EXPECT_EQ(static_cast<std::int64_t>(after) - static_cast<std::int64_t>(before), delta)
        << "conservation violated at step " << step << " by " << ags.toString();
  }
}

TEST_P(RandomWorkload, ExecutorNeverCorruptsRegistry) {
  const std::uint64_t seed = GetParam() ^ 0x5eed;
  AgsGen gen(seed);
  ts::TsRegistry reg(true);
  for (int step = 0; step < 500; ++step) {
    tryExecuteAgs(gen.next(), reg, ExecMode::Replicated);
    // The registry must stay serializable and self-consistent throughout.
    Writer w;
    reg.encode(w);
    Reader r(w.buffer());
    const auto copy = ts::TsRegistry::decode(r);
    ASSERT_EQ(copy, reg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace ftl::ftlinda
